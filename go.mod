module github.com/trajcomp/bqs

go 1.22
