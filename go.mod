module github.com/trajcomp/bqs

go 1.22

// Pin the exact toolchain CI resolves: reproducible builds, and the
// bqslint loader type-checks against this compiler's export data.
toolchain go1.24.0
