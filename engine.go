package bqs

import (
	"github.com/trajcomp/bqs/internal/engine"
	"github.com/trajcomp/bqs/internal/stream"
)

// Ingestion engine: the server-side counterpart of the on-device
// compressors. An Engine manages thousands of concurrent device
// sessions, routing fixes to shard workers by a hash of the device ID so
// each device's stream is compressed in arrival order by exactly one
// goroutine, with key points flowing into per-shard trajectory stores.
//
//	e, err := bqs.NewEngine(bqs.EngineConfig{Compressor: "fbqs", Tolerance: 10})
//	if err != nil { ... }
//	defer e.Close()
//	err = e.Ingest([]bqs.Fix{{Device: "bat-7", Point: p}})

// Fix is one device observation to ingest.
type Fix = engine.Fix

// Engine is the sharded, goroutine-safe ingestion engine.
type Engine = engine.Engine

// EngineConfig parameterizes NewEngine; see the field docs in
// internal/engine.
type EngineConfig = engine.Config

// EngineStats is a merged snapshot of engine activity.
type EngineStats = engine.Stats

// ErrEngineClosed reports an operation on a closed engine.
var ErrEngineClosed = engine.ErrClosed

// NewEngine returns a started ingestion engine; Close it to flush every
// session and stop the shard workers.
func NewEngine(cfg EngineConfig) (*Engine, error) { return engine.New(cfg) }

// Compressor registry: streaming compressors are constructible by
// configuration string. The built-in names are "bqs", "fbqs", "dr"
// (dead reckoning), "timesensitive", "bdp" and "bgd"; RegisterCompressor
// adds custom ones, which the Engine can then run by name.

// RegisterCompressor makes a compressor constructible by name (e.g. for
// EngineConfig.Compressor). Registering an existing name is an error.
func RegisterCompressor(name string, factory func(tolerance float64) (StreamCompressor, error)) error {
	return stream.Register(name, factory)
}

// NewNamedCompressor constructs a registered compressor by name.
func NewNamedCompressor(name string, tolerance float64) (StreamCompressor, error) {
	return stream.New(name, tolerance)
}

// CompressorNames returns the registered compressor names, sorted.
func CompressorNames() []string { return stream.Names() }
