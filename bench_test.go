package bqs

import (
	"path/filepath"
	"strconv"
	"sync"
	"testing"

	"github.com/trajcomp/bqs/internal/core"
	"github.com/trajcomp/bqs/internal/eval"
)

// Benchmarks, one (at least) per table and figure of the paper's
// evaluation. They run on a reduced suite so `go test -bench=.` completes
// in minutes; `cmd/bqsbench` regenerates the full-scale numbers.

var (
	benchOnce  sync.Once
	benchSuite *eval.Suite
)

func suite() *eval.Suite {
	benchOnce.Do(func() { benchSuite = eval.NewSuite(eval.ScaleQuick) })
	return benchSuite
}

func benchAlgo(b *testing.B, algo eval.Algo, ds eval.Dataset, tol float64) {
	b.Helper()
	b.ReportAllocs()
	pts := int64(len(ds.Points))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := eval.Run(algo, ds, tol, suite().BufSize)
		if err != nil {
			b.Fatal(err)
		}
		if !r.BoundOK {
			b.Fatalf("%s violated its bound", algo)
		}
	}
	b.SetBytes(pts * 24) // three float64s per point: throughput context
}

// --- Figure 3: bound tracing overhead.

func BenchmarkFig3BoundsTrace(b *testing.B) {
	ds := suite().Bat
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Fig3(ds, 5, 100); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 6: pruning power sweeps.

func BenchmarkFig6PruningPowerBat(b *testing.B) {
	benchAlgo(b, eval.AlgoBQS, suite().Bat, 10)
}

func BenchmarkFig6PruningPowerVehicle(b *testing.B) {
	benchAlgo(b, eval.AlgoBQS, suite().Vehicle, 25)
}

// --- Figure 7: compression rate per algorithm, bat data (10 m).

func BenchmarkFig7BatBQS(b *testing.B)  { benchAlgo(b, eval.AlgoBQS, suite().Bat, 10) }
func BenchmarkFig7BatFBQS(b *testing.B) { benchAlgo(b, eval.AlgoFBQS, suite().Bat, 10) }
func BenchmarkFig7BatBDP(b *testing.B)  { benchAlgo(b, eval.AlgoBDP, suite().Bat, 10) }
func BenchmarkFig7BatBGD(b *testing.B)  { benchAlgo(b, eval.AlgoBGD, suite().Bat, 10) }
func BenchmarkFig7BatDP(b *testing.B)   { benchAlgo(b, eval.AlgoDP, suite().Bat, 10) }

// --- Figure 7(b): vehicle data (25 m mid-sweep).

func BenchmarkFig7VehicleBQS(b *testing.B)  { benchAlgo(b, eval.AlgoBQS, suite().Vehicle, 25) }
func BenchmarkFig7VehicleFBQS(b *testing.B) { benchAlgo(b, eval.AlgoFBQS, suite().Vehicle, 25) }
func BenchmarkFig7VehicleBDP(b *testing.B)  { benchAlgo(b, eval.AlgoBDP, suite().Vehicle, 25) }
func BenchmarkFig7VehicleBGD(b *testing.B)  { benchAlgo(b, eval.AlgoBGD, suite().Vehicle, 25) }
func BenchmarkFig7VehicleDP(b *testing.B)   { benchAlgo(b, eval.AlgoDP, suite().Vehicle, 25) }

// --- Figure 8: synthetic data, FBQS vs Dead Reckoning.

func BenchmarkFig8FBQS(b *testing.B) { benchAlgo(b, eval.AlgoFBQS, suite().Walk, 10) }
func BenchmarkFig8DR(b *testing.B)   { benchAlgo(b, eval.AlgoDR, suite().Walk, 10) }

// --- Table I: per-point cost of the core compressors on a long stream.

func benchPerPoint(b *testing.B, mode core.Mode) {
	b.Helper()
	ds := suite().Combined
	cfg := core.Config{Tolerance: 10, Mode: mode, RotationWarmup: -1}
	c, err := core.NewCompressor(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := ds.Points[i%len(ds.Points)]
		c.Push(p)
	}
}

func BenchmarkTable1PerPointFBQS(b *testing.B) { benchPerPoint(b, core.ModeFast) }
func BenchmarkTable1PerPointBQS(b *testing.B)  { benchPerPoint(b, core.ModeExact) }

func BenchmarkTable1ScalingCheck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := eval.Table1([]int{1000, 2000, 4000})
		if err != nil {
			b.Fatal(err)
		}
		if r.FBQSExponent > 0.6 {
			b.Fatalf("FBQS exponent %v", r.FBQSExponent)
		}
	}
}

// --- Table II: operational-time estimation pipeline.

func BenchmarkTable2OperationalTime(b *testing.B) {
	s := suite()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Table2(s); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table III: rate and run time vs. buffer size.

func BenchmarkTable3Buffer32BDP(b *testing.B)  { benchBuffered(b, eval.AlgoBDP, 32) }
func BenchmarkTable3Buffer256BDP(b *testing.B) { benchBuffered(b, eval.AlgoBDP, 256) }
func BenchmarkTable3Buffer32BGD(b *testing.B)  { benchBuffered(b, eval.AlgoBGD, 32) }
func BenchmarkTable3Buffer256BGD(b *testing.B) { benchBuffered(b, eval.AlgoBGD, 256) }
func BenchmarkTable3FBQS(b *testing.B)         { benchAlgo(b, eval.AlgoFBQS, suite().Combined, 10) }

func benchBuffered(b *testing.B, algo eval.Algo, buf int) {
	b.Helper()
	ds := suite().Combined
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Run(algo, ds, 10, buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(ds.Points)) * 24)
}

// --- Ablations: rotation and metric effects on the core loop.

func benchCore(b *testing.B, cfg core.Config) {
	b.Helper()
	ds := suite().Bat
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := core.NewCompressor(cfg)
		if err != nil {
			b.Fatal(err)
		}
		c.CompressBatch(ds.Points)
	}
	b.SetBytes(int64(len(ds.Points)) * 24)
}

func BenchmarkAblationRotationOn(b *testing.B) {
	benchCore(b, core.Config{Tolerance: 10, Mode: core.ModeFast, RotationWarmup: 5})
}

func BenchmarkAblationRotationOff(b *testing.B) {
	benchCore(b, core.Config{Tolerance: 10, Mode: core.ModeFast, RotationWarmup: 0})
}

func BenchmarkAblationSegmentMetric(b *testing.B) {
	benchCore(b, core.Config{Tolerance: 10, Mode: core.ModeFast, RotationWarmup: 5, Metric: core.MetricSegment})
}

// --- N-D core (the conclusion's 4-D extension).

func BenchmarkBQS4DPerPoint(b *testing.B) {
	c, err := core.NewCompressorN(core.Config{Tolerance: 10, Mode: core.ModeFast}, 4)
	if err != nil {
		b.Fatal(err)
	}
	ds := suite().Bat
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := ds.Points[i%len(ds.Points)]
		if _, _, err := c.Push(core.PointN{C: []float64{p.X, p.Y, float64(i % 300), p.T / 1e5}, T: p.T}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ingestion engine: fleet throughput at 1k and 10k devices.

// benchEngineIngest pushes pre-generated interleaved batches (one fix
// per device per batch, rotating through a small set of positions)
// through the engine; reported bytes/op is the 24-byte fix payload.
// With persist set, a segment log is attached, so the measured path
// includes the durability bookkeeping (per-session key accumulation);
// the sessions' durable flush happens in Close, timed separately by
// BenchmarkEnginePersistClose.
func benchEngineIngest(b *testing.B, devices int, persist bool) {
	cfg := EngineConfig{Compressor: "fbqs", Tolerance: 10, Shards: 0}
	if persist {
		lg, err := OpenSegmentLog(b.TempDir(), SegmentLogOptions{})
		if err != nil {
			b.Fatal(err)
		}
		cfg.Persister = lg
	}
	e, err := NewEngine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()

	const rounds = 8
	batches := make([][]Fix, rounds)
	for r := range batches {
		batch := make([]Fix, devices)
		for d := 0; d < devices; d++ {
			// A per-device zig-zag: advances each round so compressor
			// decisions (and some key-point emissions) actually happen.
			x := float64(r * 40)
			y := float64(d%50) + float64(r%2)*25
			batch[d] = Fix{
				Device: "dev-" + strconv.Itoa(d),
				Point:  Point{X: x, Y: y, T: float64(r)},
			}
		}
		batches[r] = batch
	}

	b.ReportAllocs()
	b.SetBytes(int64(devices) * 24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Ingest(batches[i%rounds]); err != nil {
			b.Fatal(err)
		}
	}
	if err := e.Sync(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
}

func BenchmarkEngineIngest1kDevices(b *testing.B)  { benchEngineIngest(b, 1000, false) }
func BenchmarkEngineIngest10kDevices(b *testing.B) { benchEngineIngest(b, 10000, false) }

// Same workload with the segment log attached: the delta vs the plain
// variants is the durability overhead on the ingest hot path.
func BenchmarkEngineIngestPersist1kDevices(b *testing.B)  { benchEngineIngest(b, 1000, true) }
func BenchmarkEngineIngestPersist10kDevices(b *testing.B) { benchEngineIngest(b, 10000, true) }

// BenchmarkEnginePersistClose measures the durable flush itself: each op
// ingests a small fleet and Closes the engine, which writes and fsyncs
// every finalized session trajectory through the segment log.
func BenchmarkEnginePersistClose(b *testing.B) {
	const devices, rounds = 200, 8
	batches := make([][]Fix, rounds)
	for r := range batches {
		batch := make([]Fix, devices)
		for d := 0; d < devices; d++ {
			batch[d] = Fix{
				Device: "dev-" + strconv.Itoa(d),
				Point:  Point{X: float64(r * 40), Y: float64(d%50) + float64(r%2)*25, T: float64(r)},
			}
		}
		batches[r] = batch
	}
	dir := b.TempDir()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lg, err := OpenSegmentLog(filepath.Join(dir, strconv.Itoa(i)), SegmentLogOptions{})
		if err != nil {
			b.Fatal(err)
		}
		e, err := NewEngine(EngineConfig{Compressor: "fbqs", Tolerance: 10, Shards: 0, Persister: lg})
		if err != nil {
			b.Fatal(err)
		}
		for _, batch := range batches {
			if err := e.Ingest(batch); err != nil {
				b.Fatal(err)
			}
		}
		if err := e.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- 3-D core (Section V-G).

func BenchmarkBQS3DPerPoint(b *testing.B) {
	c, err := core.NewCompressor3(core.Config{Tolerance: 10, Mode: core.ModeFast, RotationWarmup: -1})
	if err != nil {
		b.Fatal(err)
	}
	ds := suite().Bat
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := ds.Points[i%len(ds.Points)]
		c.Push(core.Point3{X: p.X, Y: p.Y, Z: float64(i % 100), T: p.T})
	}
}
