package bqs

import (
	"fmt"
	"testing"
)

// TestOpenDurableEngineRestart exercises the public durable path: ingest
// through OpenDurableEngine, close, reopen the log, query from disk.
func TestOpenDurableEngineRestart(t *testing.T) {
	dir := t.TempDir()
	e, err := OpenDurableEngine(dir, EngineConfig{Compressor: "fbqs", Tolerance: 10, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	const devices = 6
	for d := 0; d < devices; d++ {
		cfg := DefaultWalkConfig(int64(d) + 1)
		cfg.N = 80
		for _, p := range GenerateWalk(cfg).Points() {
			if err := e.IngestOne(fmt.Sprintf("dev-%d", d), p); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := e.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.Persisted != devices {
		t.Fatalf("Persisted = %d, want %d", s.Persisted, devices)
	}

	// Read-only: the handle stays open across the second engine below,
	// which needs the directory's write lock for itself.
	lg, err := OpenSegmentLog(dir, SegmentLogOptions{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	if got := len(lg.Devices()); got != devices {
		t.Fatalf("recovered %d devices, want %d", got, devices)
	}
	for d := 0; d < devices; d++ {
		dev := fmt.Sprintf("dev-%d", d)
		recs, err := lg.Query(dev, 0, ^uint32(0))
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 1 || len(recs[0].Keys) == 0 {
			t.Fatalf("%s: %d records", dev, len(recs))
		}
	}

	// A second engine over the same directory appends rather than
	// clobbering: restartability end to end.
	e2, err := OpenDurableEngine(dir, EngineConfig{Compressor: "fbqs", Tolerance: 10, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultWalkConfig(99)
	cfg.N = 40
	for _, p := range GenerateWalk(cfg).Points() {
		if err := e2.IngestOne("dev-0", p); err != nil {
			t.Fatal(err)
		}
	}
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
	lg2, err := OpenSegmentLog(dir, SegmentLogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer lg2.Close()
	recs, err := lg2.Query("dev-0", 0, ^uint32(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("dev-0 has %d records after restart, want 2", len(recs))
	}
}

// TestCompactLogFacade exercises the public compaction path: a durable
// engine with chunked sessions, CompactLog merging the chunks back, and
// the log staying queryable with fewer bytes.
func TestCompactLogFacade(t *testing.T) {
	dir := t.TempDir()
	e, err := OpenDurableEngineWithLog(dir,
		SegmentLogOptions{MaxSegmentBytes: 512},
		EngineConfig{Compressor: "fbqs", Tolerance: 5, Shards: 1, MaxTrailKeys: 8},
	)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultWalkConfig(42)
	cfg.N = 4000
	for _, p := range GenerateWalk(cfg).Points() {
		if err := e.IngestOne("roamer", p); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	lg, err := OpenSegmentLog(dir, SegmentLogOptions{MaxSegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	before := lg.Stats()
	res, err := CompactLog(lg, CompactionPolicy{MergeChunks: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Merged == 0 {
		t.Fatalf("no chunked records merged: %+v", res)
	}
	after := lg.Stats()
	if after.Bytes >= before.Bytes || after.Records >= before.Records {
		t.Fatalf("compaction did not shrink the log: %+v → %+v", before, after)
	}
	recs, err := lg.Query("roamer", 0, ^uint32(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("compacted log lost the device")
	}
	total := 0
	for _, r := range recs {
		total += len(r.Keys)
	}
	if total < 8 {
		t.Fatalf("suspiciously few keys after compaction: %d", total)
	}
}
