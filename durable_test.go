package bqs

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// TestOpenDurableEngineRestart exercises the public durable path: ingest
// through OpenDurableEngine, close, reopen the log, query from disk.
func TestOpenDurableEngineRestart(t *testing.T) {
	dir := t.TempDir()
	e, err := OpenDurableEngine(dir, EngineConfig{Compressor: "fbqs", Tolerance: 10, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	const devices = 6
	for d := 0; d < devices; d++ {
		cfg := DefaultWalkConfig(int64(d) + 1)
		cfg.N = 80
		for _, p := range GenerateWalk(cfg).Points() {
			if err := e.IngestOne(fmt.Sprintf("dev-%d", d), p); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := e.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.Persisted != devices {
		t.Fatalf("Persisted = %d, want %d", s.Persisted, devices)
	}

	// Read-only: the handle stays open across the second engine below,
	// which needs the directory's write lock for itself.
	lg, err := OpenShardedSegmentLog(dir, 0, SegmentLogOptions{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	if got := len(lg.Devices()); got != devices {
		t.Fatalf("recovered %d devices, want %d", got, devices)
	}
	for d := 0; d < devices; d++ {
		dev := fmt.Sprintf("dev-%d", d)
		recs, err := lg.Query(dev, 0, ^uint32(0))
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 1 || len(recs[0].Keys) == 0 {
			t.Fatalf("%s: %d records", dev, len(recs))
		}
	}

	// A second engine over the same directory appends rather than
	// clobbering: restartability end to end.
	e2, err := OpenDurableEngine(dir, EngineConfig{Compressor: "fbqs", Tolerance: 10, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultWalkConfig(99)
	cfg.N = 40
	for _, p := range GenerateWalk(cfg).Points() {
		if err := e2.IngestOne("dev-0", p); err != nil {
			t.Fatal(err)
		}
	}
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
	lg2, err := OpenShardedSegmentLog(dir, 0, SegmentLogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := lg2.NumShards(); got != 2 {
		t.Fatalf("persisted shard count = %d, want 2", got)
	}
	defer lg2.Close()
	recs, err := lg2.Query("dev-0", 0, ^uint32(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("dev-0 has %d records after restart, want 2", len(recs))
	}
}

// TestDurableShutdownRace pins the shutdown ordering: Close must wait
// for every shard's persist queue, the background compaction ticker and
// any in-flight CompactNow before closing the sharded log — so the
// directory's flock is never released under a live writer. The proof is
// twofold: the race detector sees no conflicting access while ingest
// and compaction race Close, and an immediate reopen succeeds because
// the lock really was free when Close returned.
func TestDurableShutdownRace(t *testing.T) {
	dir := t.TempDir()
	policy := CompactionPolicy{MergeChunks: true}
	e, err := OpenDurableEngineWithLog(dir,
		SegmentLogOptions{MaxSegmentBytes: 4 << 10, Compaction: &policy},
		EngineConfig{Compressor: "fbqs", Tolerance: 5, Shards: 4, MaxTrailKeys: 8,
			CompactInterval: time.Millisecond},
	)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cfg := DefaultWalkConfig(int64(g) + 1)
			cfg.N = 20000
			dev := fmt.Sprintf("dev-%d", g)
			for _, p := range GenerateWalk(cfg).Points() {
				if err := e.IngestOne(dev, p); err != nil {
					return // ErrClosed once Close wins the race
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for e.CompactNow() == nil {
		}
	}()

	time.Sleep(20 * time.Millisecond)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	// Close released the lock last: a fresh open must not find it held.
	e2, err := OpenDurableEngine(dir, EngineConfig{Compressor: "fbqs", Tolerance: 5, Shards: 4})
	if err != nil {
		t.Fatalf("reopen immediately after racy close: %v", err)
	}
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCompactLogFacade exercises the public compaction path: a durable
// engine with chunked sessions, CompactLog merging the chunks back, and
// the log staying queryable with fewer bytes.
func TestCompactLogFacade(t *testing.T) {
	dir := t.TempDir()
	e, err := OpenDurableEngineWithLog(dir,
		SegmentLogOptions{MaxSegmentBytes: 512},
		EngineConfig{Compressor: "fbqs", Tolerance: 5, Shards: 1, MaxTrailKeys: 8},
	)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultWalkConfig(42)
	cfg.N = 4000
	for _, p := range GenerateWalk(cfg).Points() {
		if err := e.IngestOne("roamer", p); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// Each shard subdirectory is a complete single log; CompactLog works
	// on it directly (the engine above had one shard, so shard-000 holds
	// everything).
	lg, err := OpenSegmentLog(filepath.Join(dir, "shard-000"), SegmentLogOptions{MaxSegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	before := lg.Stats()
	res, err := CompactLog(lg, CompactionPolicy{MergeChunks: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Merged == 0 {
		t.Fatalf("no chunked records merged: %+v", res)
	}
	after := lg.Stats()
	if after.Bytes >= before.Bytes || after.Records >= before.Records {
		t.Fatalf("compaction did not shrink the log: %+v → %+v", before, after)
	}
	recs, err := lg.Query("roamer", 0, ^uint32(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("compacted log lost the device")
	}
	total := 0
	for _, r := range recs {
		total += len(r.Keys)
	}
	if total < 8 {
		t.Fatalf("suspiciously few keys after compaction: %d", total)
	}
}
