package bqs

import (
	"fmt"
	"testing"
)

// TestOpenDurableEngineRestart exercises the public durable path: ingest
// through OpenDurableEngine, close, reopen the log, query from disk.
func TestOpenDurableEngineRestart(t *testing.T) {
	dir := t.TempDir()
	e, err := OpenDurableEngine(dir, EngineConfig{Compressor: "fbqs", Tolerance: 10, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	const devices = 6
	for d := 0; d < devices; d++ {
		cfg := DefaultWalkConfig(int64(d) + 1)
		cfg.N = 80
		for _, p := range GenerateWalk(cfg).Points() {
			if err := e.IngestOne(fmt.Sprintf("dev-%d", d), p); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := e.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.Persisted != devices {
		t.Fatalf("Persisted = %d, want %d", s.Persisted, devices)
	}

	lg, err := OpenSegmentLog(dir, SegmentLogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	if got := len(lg.Devices()); got != devices {
		t.Fatalf("recovered %d devices, want %d", got, devices)
	}
	for d := 0; d < devices; d++ {
		dev := fmt.Sprintf("dev-%d", d)
		recs, err := lg.Query(dev, 0, ^uint32(0))
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 1 || len(recs[0].Keys) == 0 {
			t.Fatalf("%s: %d records", dev, len(recs))
		}
	}

	// A second engine over the same directory appends rather than
	// clobbering: restartability end to end.
	e2, err := OpenDurableEngine(dir, EngineConfig{Compressor: "fbqs", Tolerance: 10, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultWalkConfig(99)
	cfg.N = 40
	for _, p := range GenerateWalk(cfg).Points() {
		if err := e2.IngestOne("dev-0", p); err != nil {
			t.Fatal(err)
		}
	}
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
	lg2, err := OpenSegmentLog(dir, SegmentLogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer lg2.Close()
	recs, err := lg2.Query("dev-0", 0, ^uint32(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("dev-0 has %d records after restart, want 2", len(recs))
	}
}
