package bqs

import (
	"errors"

	"github.com/trajcomp/bqs/internal/geo"
)

// GeoPoint is a raw GPS fix: WGS-84 degrees plus a timestamp in seconds.
type GeoPoint struct {
	Lat, Lon float64
	T        float64
}

// Projector converts GPS fixes into the projected metric plane the
// compressors operate on (the paper sets its axes "to the UTM projected x
// and y axes"). The UTM zone is fixed by the first projected fix so that
// trajectories straddling a zone boundary stay in one continuous plane.
//
// A Projector is not safe for concurrent use.
type Projector struct {
	zone  int
	south bool
	set   bool
}

// ErrNotProjected reports an Unproject call before any Project call.
var ErrNotProjected = errors.New("bqs: projector has no zone yet (call Project first)")

// Project converts a GPS fix to a projected Point.
func (pr *Projector) Project(g GeoPoint) (Point, error) {
	if !pr.set {
		u, err := geo.ToUTM(g.Lat, g.Lon)
		if err != nil {
			return Point{}, err
		}
		pr.zone, pr.south, pr.set = u.Zone, u.South, true
		return Point{X: u.Easting, Y: u.Northing, T: g.T}, nil
	}
	u, err := geo.ToUTMZone(g.Lat, g.Lon, pr.zone)
	if err != nil {
		return Point{}, err
	}
	// Keep the hemisphere of the first fix so northings stay continuous
	// across the equator.
	if u.South != pr.south {
		if pr.south {
			u.Northing += 10000000
		} else {
			u.Northing -= 10000000
		}
		u.South = pr.south
	}
	return Point{X: u.Easting, Y: u.Northing, T: g.T}, nil
}

// Unproject converts a projected Point back to a GPS fix.
func (pr *Projector) Unproject(p Point) (GeoPoint, error) {
	if !pr.set {
		return GeoPoint{}, ErrNotProjected
	}
	lat, lon, err := geo.FromUTM(geo.UTM{
		Easting: p.X, Northing: p.Y, Zone: pr.zone, South: pr.south,
	})
	if err != nil {
		return GeoPoint{}, err
	}
	return GeoPoint{Lat: lat, Lon: lon, T: p.T}, nil
}

// Zone returns the projector's UTM zone (0 before the first Project).
func (pr *Projector) Zone() int {
	if !pr.set {
		return 0
	}
	return pr.zone
}

// Haversine returns the great-circle distance in metres between two GPS
// fixes.
func Haversine(a, b GeoPoint) float64 {
	return geo.Haversine(a.Lat, a.Lon, b.Lat, b.Lon)
}
