package bqs

import (
	"math"
	"testing"
)

func TestPublicBQSN(t *testing.T) {
	c, err := NewBQSN(10, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	var pts []PointN
	for i := 0; i < 200; i++ {
		f := float64(i)
		pts = append(pts, PointN{C: []float64{f * 10, f * 5, f * 2, f}, T: f})
	}
	keys, err := c.CompressBatchN(pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 {
		t.Errorf("4-D straight line kept %d", len(keys))
	}
	if _, err := NewBQSN(10, 0, false); err == nil {
		t.Error("dim 0 accepted")
	}
}

func TestPublicMobilityPipeline(t *testing.T) {
	cfg := DefaultBatConfig(8)
	cfg.Days = 8
	tr := GenerateBat(cfg)
	c, err := NewBQS(10)
	if err != nil {
		t.Fatal(err)
	}
	keys := Compress(c, tr.Points())
	stays := DetectStays(keys, 150, 1800, 5)
	if len(stays) == 0 {
		t.Fatal("no stays")
	}
	wps := ClusterWaypoints(stays, 400)
	if len(wps) == 0 {
		t.Fatal("no waypoints")
	}
	trips := ExtractTrips(keys, stays, wps, 400, 300)
	pred, err := NewTripPredictor(len(wps))
	if err != nil {
		t.Fatal(err)
	}
	pred.Train(trips)
	// The camp (waypoint 0 by dwell) must be discoverable near the origin.
	if math.Hypot(wps[0].X, wps[0].Y) > 500 {
		t.Errorf("camp not at origin: %+v", wps[0])
	}
}

func TestPublicAdaptiveController(t *testing.T) {
	ctrl, err := NewAdaptiveController(DefaultStorageModel(), 60, 10, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	before := ctrl.Tolerance()
	for i := 0; i < 10; i++ {
		ctrl.Observe(200, 1000) // 20%: far over budget
	}
	if ctrl.Tolerance() <= before {
		t.Error("tolerance did not adapt")
	}
}

func TestPublicSTTrace(t *testing.T) {
	st, err := NewSTTrace(16, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr := GenerateWalk(func() WalkConfig { c := DefaultWalkConfig(2); c.N = 2000; return c }())
	for _, p := range tr.Points() {
		st.Push(p)
	}
	if got := st.Result(); len(got) != 16 {
		t.Errorf("kept %d, want 16", len(got))
	}
}

func TestPublicDroppedPointsStat(t *testing.T) {
	c, err := NewFBQS(10)
	if err != nil {
		t.Fatal(err)
	}
	c.Push(Point{X: 0, T: 0})
	c.Push(Point{X: math.NaN(), T: 1})
	c.Push(Point{X: 100, T: 2})
	if s := c.Stats(); s.DroppedPoints != 1 || s.Points != 2 {
		t.Errorf("stats = %+v", s)
	}
}
