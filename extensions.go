package bqs

import (
	"github.com/trajcomp/bqs/internal/baseline"
	"github.com/trajcomp/bqs/internal/core"
	"github.com/trajcomp/bqs/internal/device"
	"github.com/trajcomp/bqs/internal/mobility"
)

// Extensions beyond the paper's evaluation: the N-dimensional compressor
// (its conclusion's "4-D BQS" future work), waypoint/trip mining and
// prediction over compressed trajectories, the adaptive tolerance
// controller, and the STTrace ablation baseline.

// PointN is a k-dimensional trajectory sample for the generalized
// compressor.
type PointN = core.PointN

// BQSN is the k-dimensional streaming compressor; see NewBQSN.
type BQSN = core.CompressorN

// NewBQSN returns a k-dimensional compressor (e.g. k = 4 for
// <x, y, altitude, scaled time>). fast selects FBQS semantics. Bounds come
// from per-orthant axis-aligned boxes plus a movement-aligned box, both
// valid by convexity; see internal/core for the construction notes.
func NewBQSN(tolerance float64, dim int, fast bool, opts ...Option) (*BQSN, error) {
	mode := core.ModeExact
	if fast {
		mode = core.ModeFast
	}
	cfg := core.Config{Tolerance: tolerance, Mode: mode}
	for _, o := range opts {
		o(&cfg)
	}
	return core.NewCompressorN(cfg, dim)
}

// Stay is a dwell inferred from a compressed trajectory.
type Stay = mobility.Stay

// Waypoint is a recurring stay location.
type Waypoint = mobility.Waypoint

// Trip is the movement between two consecutive stays.
type Trip = mobility.Trip

// TripPredictor is a first-order Markov model over waypoint transitions
// with per-edge duration statistics.
type TripPredictor = mobility.Predictor

// DetectStays finds dwells in a compressed trajectory via the time-slack
// signal (segment durations unexplained by travel at travelSpeed).
func DetectStays(keys []Point, radius, minDur, travelSpeed float64) []Stay {
	return mobility.DetectStays(keys, radius, minDur, travelSpeed)
}

// ClusterWaypoints merges recurring stays into waypoints, sorted by total
// dwell time.
func ClusterWaypoints(stays []Stay, cellSize float64) []Waypoint {
	return mobility.ClusterWaypoints(stays, cellSize)
}

// ExtractTrips pairs consecutive stays into trips over the compressed key
// points.
func ExtractTrips(keys []Point, stays []Stay, wps []Waypoint, cellSize, minTripDur float64) []Trip {
	return mobility.ExtractTrips(keys, stays, wps, cellSize, minTripDur)
}

// NewTripPredictor returns an empty predictor over n waypoints.
func NewTripPredictor(n int) (*TripPredictor, error) { return mobility.NewPredictor(n) }

// AdaptiveController adjusts the compression tolerance to hit a target
// operational horizon on a storage budget.
type AdaptiveController = device.AdaptiveController

// NewAdaptiveController returns a tolerance controller for the storage
// model; see the device package for the control law.
func NewAdaptiveController(model StorageModel, targetDays, startTol, minTol, maxTol float64) (*AdaptiveController, error) {
	return device.NewAdaptiveController(model, targetDays, startTol, minTol, maxTol)
}

// STTrace is the fixed-memory sampling baseline (Potamias et al.) for
// ablation studies; it bounds memory, not error.
type STTrace = baseline.STTrace

// NewSTTrace returns an STTrace sampler with the given capacity and
// prediction-filter threshold (0 disables the filter).
func NewSTTrace(capacity int, threshold float64) (*STTrace, error) {
	return baseline.NewSTTrace(capacity, threshold)
}
