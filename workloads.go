package bqs

import (
	"github.com/trajcomp/bqs/internal/synth"
)

// Workload generation: statistically analogous stand-ins for the paper's
// proprietary datasets plus its synthetic model; see DESIGN.md for the
// substitution rationale.

// Trace is a generated workload with ground truth; Trace.Points yields the
// observed points to compress.
type Trace = synth.Trace

// TraceSample is one generated fix with ground-truth velocity and phase.
type TraceSample = synth.Sample

// BatConfig parameterizes the flying-fox workload; see DefaultBatConfig.
type BatConfig = synth.BatConfig

// VehicleConfig parameterizes the vehicle workload.
type VehicleConfig = synth.VehicleConfig

// WalkConfig parameterizes the paper's synthetic event-based correlated
// random walk (Section VI-A).
type WalkConfig = synth.WalkConfig

// DefaultBatConfig returns the flying-fox deployment model of the paper's
// Section III-A for the given seed.
func DefaultBatConfig(seed int64) BatConfig { return synth.DefaultBatConfig(seed) }

// DefaultVehicleConfig returns the two-week vehicle model.
func DefaultVehicleConfig(seed int64) VehicleConfig { return synth.DefaultVehicleConfig(seed) }

// DefaultWalkConfig returns the paper's synthetic-model parameters:
// 30,000 points in a 10 km × 10 km area, bat-like speeds, von Mises
// turning angles, exponential event durations.
func DefaultWalkConfig(seed int64) WalkConfig { return synth.DefaultWalkConfig(seed) }

// GenerateBat generates a flying-fox trace.
func GenerateBat(cfg BatConfig) Trace { return synth.Bat(cfg) }

// GenerateVehicle generates a vehicle trace.
func GenerateVehicle(cfg VehicleConfig) Trace { return synth.Vehicle(cfg) }

// GenerateWalk generates a trace from the paper's synthetic model.
func GenerateWalk(cfg WalkConfig) Trace { return synth.Walk(cfg) }
