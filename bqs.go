// Package bqs implements the Bounded Quadrant System (BQS), the online
// error-bounded trajectory compression algorithm of Liu, Zhao, Sommer,
// Shang, Kusy and Jurdak, "Bounded Quadrant System: Error-bounded
// Trajectory Compression on the Go" (ICDE 2015), together with everything
// needed to use and evaluate it: the constant-time/constant-space fast
// variant (FBQS), the 3-D and time-sensitive generalizations, the
// comparison baselines from the paper (Douglas-Peucker, Buffered DP,
// Buffered Greedy Deviation, Dead Reckoning, SQUISH-E), WGS-84/UTM
// projection, trajectory reconstruction, an on-device trajectory store
// with error-bounded merging and ageing, workload generators, and a
// tracker storage/energy model.
//
// # Quick start
//
//	c, err := bqs.NewBQS(10) // 10 m deviation bound
//	if err != nil { ... }
//	for _, p := range points {
//	    if kp, ok := c.Push(p); ok {
//	        emit(kp) // finalized key point
//	    }
//	}
//	if kp, ok := c.Flush(); ok {
//	    emit(kp)
//	}
//
// Every original point is guaranteed to lie within the tolerance of the
// compressed segment it belongs to. Use NewFBQS for the O(1)-per-point
// variant suited to microcontroller-class hardware.
package bqs

import (
	"github.com/trajcomp/bqs/internal/core"
)

// Point is a trajectory sample in a projected metric plane: X/Y in metres
// (e.g. UTM easting/northing — see Projector) and T in seconds.
type Point = core.Point

// Point3 is a 3-D trajectory sample for the altitude-aware compressor.
type Point3 = core.Point3

// Metric selects the deviation metric.
type Metric = core.Metric

// Deviation metrics: distance to the infinite path line (the paper's
// default) or to the closed path segment.
const (
	MetricLine    = core.MetricLine
	MetricSegment = core.MetricSegment
)

// Stats counts the per-point decision outcomes of a compressor; see
// Stats.PruningPower and Stats.CompressionRate.
type Stats = core.Stats

// TracePoint is one instrumented bound computation (Figure 3 of the
// paper); see WithTrace.
type TracePoint = core.TracePoint

// BQS is the streaming compressor. Obtain one with NewBQS or NewFBQS.
type BQS = core.Compressor

// BQS3D is the 3-D streaming compressor of Section V-G. Obtain one with
// NewBQS3D or NewFBQS3D.
type BQS3D = core.Compressor3

// TimeSensitive compresses 2-D points under the time-sensitive error
// metric (elapsed time scaled into a third axis). Obtain one with
// NewTimeSensitive.
type TimeSensitive = core.TimeSensitive

// Option customizes a compressor; see WithMetric, WithRotationWarmup,
// WithMaxBuffer and WithTrace.
type Option func(*core.Config)

// WithMetric selects the deviation metric (default MetricLine).
func WithMetric(m Metric) Option {
	return func(c *core.Config) { c.Metric = m }
}

// WithRotationWarmup sets the size of the data-centric-rotation warmup
// buffer (default 5, as suggested by the paper). 0 disables the rotation.
func WithRotationWarmup(n int) Option {
	return func(c *core.Config) { c.RotationWarmup = n }
}

// WithMaxBuffer caps the exact-mode deviation buffer; reaching the cap
// cuts the segment, exactly like the windowed baselines' buffer-full
// behaviour. 0 (default) means unlimited. FBQS ignores it.
func WithMaxBuffer(n int) Option {
	return func(c *core.Config) { c.MaxBuffer = n }
}

// WithTrace installs a per-point bound instrumentation callback. The
// callback receives the aggregated lower/upper bounds for every point that
// reaches the bounding structures, plus the true deviation in exact mode —
// the data behind Figure 3 of the paper.
func WithTrace(f func(TracePoint)) Option {
	return func(c *core.Config) { c.Trace = f }
}

// NewBQS returns the exact BQS compressor (Algorithm 1) with the given
// deviation tolerance in metres: when the error bounds are inconclusive it
// scans its buffer for the true deviation, achieving the best compression
// rate.
func NewBQS(tolerance float64, opts ...Option) (*BQS, error) {
	cfg := core.Config{Tolerance: tolerance, Mode: core.ModeExact, RotationWarmup: -1}
	for _, o := range opts {
		o(&cfg)
	}
	return core.NewCompressor(cfg)
}

// NewFBQS returns the fast BQS compressor (Section V-E): constant time and
// space per point — it keeps no buffer and conservatively cuts the segment
// whenever the bounds are inconclusive, trading a small amount of
// compression rate for O(1) complexity.
func NewFBQS(tolerance float64, opts ...Option) (*BQS, error) {
	cfg := core.Config{Tolerance: tolerance, Mode: core.ModeFast, RotationWarmup: -1}
	for _, o := range opts {
		o(&cfg)
	}
	return core.NewCompressor(cfg)
}

// NewBQS3D returns the exact 3-D compressor: deviations are measured to
// the 3-D path line through <x, y, z>, with z carrying altitude.
func NewBQS3D(tolerance float64, opts ...Option) (*BQS3D, error) {
	cfg := core.Config{Tolerance: tolerance, Mode: core.ModeExact, RotationWarmup: -1}
	for _, o := range opts {
		o(&cfg)
	}
	return core.NewCompressor3(cfg)
}

// NewFBQS3D returns the fast 3-D compressor.
func NewFBQS3D(tolerance float64, opts ...Option) (*BQS3D, error) {
	cfg := core.Config{Tolerance: tolerance, Mode: core.ModeFast, RotationWarmup: -1}
	for _, o := range opts {
		o(&cfg)
	}
	return core.NewCompressor3(cfg)
}

// NewTimeSensitive returns a compressor under the time-sensitive error
// metric of Section V-G: gamma (metres per second) scales temporal error
// into the spatial tolerance, so the reconstruction is accurate in both
// where and when. Use the fast flag to select FBQS semantics.
func NewTimeSensitive(tolerance, gamma float64, fast bool, opts ...Option) (*TimeSensitive, error) {
	mode := core.ModeExact
	if fast {
		mode = core.ModeFast
	}
	cfg := core.Config{Tolerance: tolerance, Mode: mode, RotationWarmup: -1}
	for _, o := range opts {
		o(&cfg)
	}
	return core.NewTimeSensitive(cfg, gamma)
}

// MaxDeviation returns the maximum deviation of pts from the path between
// s and e under the metric — the full computation the BQS bounds avoid.
func MaxDeviation(pts []Point, s, e Point, metric Metric) float64 {
	return core.MaxDeviation(pts, s, e, metric)
}
