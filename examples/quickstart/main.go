// Quickstart: project a handful of GPS fixes, compress them with FBQS,
// validate the error bound, and reconstruct an intermediate position.
package main

import (
	"fmt"
	"log"

	"github.com/trajcomp/bqs"
)

func main() {
	// A short drive through Brisbane, one fix per 30 s.
	fixes := []bqs.GeoPoint{
		{Lat: -27.4698, Lon: 153.0251, T: 0},
		{Lat: -27.4689, Lon: 153.0263, T: 30},
		{Lat: -27.4680, Lon: 153.0275, T: 60},
		{Lat: -27.4671, Lon: 153.0287, T: 90},
		{Lat: -27.4662, Lon: 153.0299, T: 120},
		{Lat: -27.4662, Lon: 153.0321, T: 150}, // right turn
		{Lat: -27.4662, Lon: 153.0343, T: 180},
		{Lat: -27.4662, Lon: 153.0365, T: 210},
	}

	// 1. Project into the UTM metric plane (the paper's coordinate system).
	var proj bqs.Projector
	points := make([]bqs.Point, 0, len(fixes))
	for _, g := range fixes {
		p, err := proj.Project(g)
		if err != nil {
			log.Fatal(err)
		}
		points = append(points, p)
	}

	// 2. Compress online with the fast Bounded Quadrant System: O(1) time
	// and space per point, 10 m deviation bound.
	c, err := bqs.NewFBQS(10)
	if err != nil {
		log.Fatal(err)
	}
	keys := bqs.Compress(c, points)
	fmt.Printf("compressed %d fixes to %d key points (rate %.0f%%)\n",
		len(points), len(keys), 100*float64(len(keys))/float64(len(points)))

	// 3. The guarantee: every original fix is within 10 m of its segment.
	worst, ok := bqs.ValidateErrorBound(points, keys, 10, bqs.MetricLine)
	fmt.Printf("worst deviation %.2f m, bound holds: %v\n", worst, ok)

	// 4. Reconstruct where the vehicle was at t = 45 s and map it back to
	// latitude/longitude.
	p45, err := bqs.Reconstruct(keys, 45, nil)
	if err != nil {
		log.Fatal(err)
	}
	g45, err := proj.Unproject(p45)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t=45s reconstruction: %.5f, %.5f\n", g45.Lat, g45.Lon)

	// 5. Decision statistics.
	st := c.Stats()
	fmt.Printf("%d points processed into %d segments, %d decided from bounds alone\n",
		st.Points, st.Segments+1, st.BoundIncludes+st.BoundRestarts)
}
