// Wildlife: the paper's motivating scenario. A Camazotz-class tracker on a
// flying fox acquires one GPS fix per minute during flight and must store
// months of movement in a 50 KB flash budget. This example generates a
// month of flying-fox movement, compresses it on the fly with FBQS, checks
// the memory ceilings the paper claims for the target microcontroller, and
// estimates the operational lifetime with and without compression
// (the Table II story).
package main

import (
	"fmt"
	"log"

	"github.com/trajcomp/bqs"
)

func main() {
	// One tracked bat, 30 days.
	cfg := bqs.DefaultBatConfig(7)
	cfg.Days = 30
	trace := bqs.GenerateBat(cfg)
	points := trace.Points()
	fmt.Printf("generated %d fixes over %d days (%.0f km flown, %.0f%% of fixes while moving)\n",
		len(points), cfg.Days, trace.PathLength()/1000, 100*trace.MovingFraction())

	// The tracker runs FBQS: constant time and space per fix.
	c, err := bqs.NewFBQS(10) // 10 m: "reasonable for animal tracking"
	if err != nil {
		log.Fatal(err)
	}

	var keys []bqs.Point
	maxState := 0
	for _, p := range points {
		if kp, ok := c.Push(p); ok {
			keys = append(keys, kp)
		}
		if n := c.SignificantPointCount(); n > maxState {
			maxState = n
		}
	}
	if kp, ok := c.Flush(); ok {
		keys = append(keys, kp)
	}

	rate := float64(len(keys)) / float64(len(points))
	fmt.Printf("FBQS kept %d of %d fixes (compression rate %.1f%%)\n",
		len(keys), len(points), 100*rate)
	worst, ok := bqs.ValidateErrorBound(points, keys, 10, bqs.MetricLine)
	fmt.Printf("worst deviation %.2f m (bound 10 m): %v\n", worst, ok)
	fmt.Printf("peak compressor state: %d significant points (paper's ceiling: 32)\n", maxState)

	// Storage lifetime on the Camazotz budget (Table II).
	model := bqs.DefaultStorageModel()
	raw := model.UncompressedDays()
	days, err := model.OperationalDays(rate)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("operational time on the 50 KB GPS budget: %.1f days compressed vs %.1f days raw (%.0f×)\n",
		days, raw, days/raw)

	// Wire cost of what would actually be written to flash.
	geoKeys := make([]bqs.GeoKey, len(keys))
	for i, k := range keys {
		// The tracker stores micro-degree fixes; here the generated trace
		// is already metric, so scale roughly for the size illustration.
		geoKeys[i] = bqs.GeoKey{Lat: k.Y / 111000, Lon: k.X / 111000, T: uint32(k.T)}
	}
	fixed, err := bqs.EncodeTrajectory(geoKeys)
	if err != nil {
		log.Fatal(err)
	}
	delta, err := bqs.DeltaEncodeTrajectory(geoKeys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flash cost of the month: %.1f KB fixed wire format, %.1f KB delta-encoded\n",
		float64(len(fixed))/1024, float64(len(delta))/1024)
}
