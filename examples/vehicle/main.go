// Vehicle: compress two weeks of urban driving, then feed the compressed
// trajectories through the historical store with error-bounded merging
// (recurring commutes deduplicate) and error-bounded ageing (old history
// re-compressed at a coarser tolerance) — the paper's Section V-F
// maintenance procedures.
package main

import (
	"fmt"
	"log"

	"github.com/trajcomp/bqs"
)

func main() {
	cfg := bqs.DefaultVehicleConfig(21)
	cfg.Days = 14
	trace := bqs.GenerateVehicle(cfg)
	points := trace.Points()
	fmt.Printf("generated %d fixes over %d days (%.0f km driven)\n",
		len(points), cfg.Days, trace.PathLength()/1000)

	// Compress day by day (one trajectory per day), inserting each into
	// the store.
	store, err := bqs.NewStore(bqs.StoreConfig{MergeTolerance: 15})
	if err != nil {
		log.Fatal(err)
	}
	const day = 24 * 3600.0
	totalKeys := 0
	start := 0
	for d := 0; start < len(points); d++ {
		end := start
		for end < len(points) && points[end].T < float64(d+1)*day {
			end++
		}
		if end == start {
			continue
		}
		c, err := bqs.NewBQS(10)
		if err != nil {
			log.Fatal(err)
		}
		keys := bqs.Compress(c, points[start:end])
		totalKeys += len(keys)
		store.InsertTrajectory(keys)
		start = end
	}

	inserted, merged := store.Stats()
	fmt.Printf("compressed to %d key points; store holds %d segments "+
		"(%d inserted, %d merged away as repeated routes)\n",
		totalKeys, store.Len(), inserted, merged)
	fmt.Printf("store wire size: %.1f KB\n", float64(store.StorageBytes())/1024)

	// Ageing: after a week, history older than day 7 is re-compressed at
	// 50 m — trading precision of old trips for space.
	before := store.StorageBytes()
	dropped, err := store.Age(7*day, 50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ageing (>7 days old, 50 m): dropped %d key points, %.1f KB → %.1f KB\n",
		dropped, float64(before)/1024, float64(store.StorageBytes())/1024)

	// Query: what do we know about the neighbourhood of the map origin?
	segs := store.Query(-5000, -5000, 5000, 5000)
	fmt.Printf("segments within 5 km of the origin: %d\n", len(segs))
	heaviest := 0
	for _, s := range segs {
		if s.Weight > heaviest {
			heaviest = s.Weight
		}
	}
	fmt.Printf("most-travelled stored segment seen %d times\n", heaviest)
}
