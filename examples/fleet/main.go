// Fleet: serve a whole fleet of trackers with the sharded ingestion
// engine — the server-side counterpart of the on-device compressor. Many
// producer goroutines (think gateway connections) batch fixes from
// hundreds of devices into one engine; each device gets its own
// compressor session, key points land in per-shard trajectory stores
// with error-bounded merging, and idle devices are evicted with a final
// flush.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"github.com/trajcomp/bqs"
)

const (
	devices   = 500
	gateways  = 8 // concurrent producer goroutines
	fixesPer  = 400
	tolerance = 10 // metres
)

func main() {
	e, err := bqs.NewEngine(bqs.EngineConfig{
		Compressor:  "fbqs", // any registered name: bqs.CompressorNames()
		Tolerance:   tolerance,
		Shards:      4,
		IdleTimeout: 30 * time.Second,
		Store:       bqs.StoreConfig{MergeTolerance: 5},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ingesting %d devices × %d fixes via %d gateways (registered compressors: %v)\n",
		devices, fixesPer, gateways, bqs.CompressorNames())

	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < gateways; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each gateway owns a slice of the fleet: per-device
			// trajectories from the paper's synthetic walk model,
			// reported in batched, interleaved arrival order.
			var ids []string
			var tracks [][]bqs.Point
			for d := g; d < devices; d += gateways {
				cfg := bqs.DefaultWalkConfig(int64(d))
				cfg.N = fixesPer
				ids = append(ids, fmt.Sprintf("bat-%03d", d))
				tracks = append(tracks, bqs.GenerateWalk(cfg).Points())
			}
			batch := make([]bqs.Fix, 0, len(ids))
			for i := 0; i < fixesPer; i++ {
				batch = batch[:0]
				for j := range ids {
					batch = append(batch, bqs.Fix{Device: ids[j], Point: tracks[j][i]})
				}
				if err := e.Ingest(batch); err != nil {
					log.Fatal(err)
				}
			}
		}(g)
	}
	wg.Wait()
	if err := e.Close(); err != nil { // flushes every session
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	s := e.Stats()
	fmt.Printf("ingested %d fixes in %v (%.0f fixes/s)\n",
		s.Fixes, elapsed.Round(time.Millisecond), float64(s.Fixes)/elapsed.Seconds())
	fmt.Printf("sessions: %d opened, %d active after close\n", s.SessionsOpened, s.ActiveSessions)
	fmt.Printf("compressed to %d key points (rate %.4f)\n", s.KeyPoints, s.CompressionRate())
	fmt.Printf("store: %d segments (%d merged as duplicates), %.1f KiB wire format\n",
		s.Store.Segments, s.Store.Merged, float64(e.Stores().StorageBytes())/1024)

	// The stores answer fleet-wide queries: who crossed this rectangle?
	hits := e.Stores().Query(4000, 4000, 6000, 6000)
	fmt.Printf("central 2 km × 2 km window intersects %d stored segments\n", len(hits))
}
