// Mobility: the paper's closing vision — "online and individualized smart
// systems for long-term tracking ... real-time trip prediction or
// trip-duration estimation". This example compresses two months of
// flying-fox movement with an ADAPTIVE tolerance (the controller holds a
// 90-day storage horizon), then mines the compressed trajectory for
// waypoints and trips and trains a next-destination predictor.
package main

import (
	"fmt"
	"log"
	"math"

	"github.com/trajcomp/bqs"
)

func main() {
	cfg := bqs.DefaultBatConfig(2024)
	cfg.Days = 60
	trace := bqs.GenerateBat(cfg)
	points := trace.Points()
	fmt.Printf("generated %d fixes over %d days (%.0f km flown)\n",
		len(points), cfg.Days, trace.PathLength()/1000)

	// Adaptive tolerance: aim the 50 KB budget at a 90-day horizon,
	// re-tuning once per day of data.
	ctrl, err := bqs.NewAdaptiveController(bqs.DefaultStorageModel(), 90, 10, 2, 100)
	if err != nil {
		log.Fatal(err)
	}
	var keys []bqs.Point
	const day = 24 * 3600.0
	start := 0
	for d := 0; start < len(points); d++ {
		end := start
		for end < len(points) && points[end].T < float64(d+1)*day {
			end++
		}
		if end == start {
			continue
		}
		c, err := bqs.NewFBQS(ctrl.Tolerance())
		if err != nil {
			log.Fatal(err)
		}
		dayKeys := bqs.Compress(c, points[start:end])
		keys = append(keys, dayKeys...)
		ctrl.Observe(len(dayKeys), end-start)
		start = end
	}
	fmt.Printf("adaptive compression kept %d key points (%.1f%%); tolerance settled at %.1f m;\n"+
		"projected storage horizon %.0f days (target 90)\n",
		len(keys), 100*float64(len(keys))/float64(len(points)),
		ctrl.Tolerance(), ctrl.ProjectedDays())

	// Mine the compressed trajectory.
	stays := bqs.DetectStays(keys, 150, 30*60, 5)
	wps := bqs.ClusterWaypoints(stays, 400)
	fmt.Printf("discovered %d stays clustering into %d waypoints\n", len(stays), len(wps))
	for i, w := range wps {
		if i >= 4 {
			break
		}
		kind := "foraging site"
		if math.Hypot(w.X, w.Y) < 400 {
			kind = "camp (roost)"
		}
		fmt.Printf("  waypoint %d: (%6.0f, %6.0f) — %3d visits, %5.1f h total dwell  [%s]\n",
			w.ID, w.X, w.Y, w.Visits, w.TotalDuration/3600, kind)
	}

	trips := bqs.ExtractTrips(keys, stays, wps, 400, 300)
	// Keep real site-to-site journeys; drop micro-excursions that return
	// to the same waypoint.
	journeys := trips[:0:0]
	for _, tr := range trips {
		if tr.From != tr.To {
			journeys = append(journeys, tr)
		}
	}
	fmt.Printf("extracted %d trips between waypoints (%d site-to-site journeys)\n",
		len(trips), len(journeys))

	pred, err := bqs.NewTripPredictor(len(wps))
	if err != nil {
		log.Fatal(err)
	}
	pred.Train(journeys)

	// The question a smart tracking system answers at dusk: where will the
	// animal go next, and for how long will it be in the air?
	camp := wps[0].ID
	if next, prob, ok := pred.PredictNext(camp); ok {
		mean, std, _ := pred.EstimateDuration(camp, next)
		fmt.Printf("leaving the camp, the bat most likely heads to waypoint %d "+
			"(%.0f%% of departures), trip time %.0f ± %.0f min\n",
			next, 100*prob, mean/60, std/60)
	}
}
