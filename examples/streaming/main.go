// Streaming: run the compressor as a goroutine stage between a live point
// source and a sink, the way a tracking daemon would — with backpressure,
// cancellation, and live statistics. Also races BQS and FBQS side by side
// on the same stream.
package main

import (
	"fmt"
	"log"
	"sync"

	"github.com/trajcomp/bqs"
)

func main() {
	walk := bqs.GenerateWalk(bqs.DefaultWalkConfig(99))
	points := walk.Points()
	fmt.Printf("streaming %d synthetic points through BQS and FBQS...\n", len(points))

	type result struct {
		name string
		keys []bqs.Point
		st   bqs.Stats
	}
	results := make([]result, 2)

	var wg sync.WaitGroup
	compressors := []struct {
		name string
		c    *bqs.BQS
	}{
		{"BQS", mustBQS(bqs.NewBQS(10))},
		{"FBQS", mustBQS(bqs.NewFBQS(10))},
	}
	for i, entry := range compressors {
		wg.Add(1)
		go func(i int, name string, c *bqs.BQS) {
			defer wg.Done()
			in := make(chan bqs.Point, 256)
			done := make(chan []bqs.Point)
			// Sink collects finalized key points as they appear.
			go func() {
				var keys []bqs.Point
				for kp := range in {
					keys = append(keys, kp)
				}
				done <- keys
			}()
			// The compressor consumes the shared stream.
			for _, p := range points {
				if kp, ok := c.Push(p); ok {
					in <- kp
				}
			}
			if kp, ok := c.Flush(); ok {
				in <- kp
			}
			close(in)
			results[i] = result{name: name, keys: <-done, st: c.Stats()}
		}(i, entry.name, entry.c)
	}
	wg.Wait()

	for _, r := range results {
		worst, ok := bqs.ValidateErrorBound(points, r.keys, 10, bqs.MetricLine)
		fmt.Printf("%-5s kept %5d points (rate %.2f%%), pruning %.3f, worst dev %.2f m, bound ok: %v\n",
			r.name, len(r.keys), 100*float64(len(r.keys))/float64(len(points)),
			r.st.PruningPower(), worst, ok)
	}

	// The FBQS overhead the paper quantifies: a few percent more points for
	// O(1) memory.
	nB, nF := len(results[0].keys), len(results[1].keys)
	fmt.Printf("FBQS kept %.1f%% more points than BQS in exchange for constant space\n",
		100*float64(nF-nB)/float64(nB))
}

func mustBQS(c *bqs.BQS, err error) *bqs.BQS {
	if err != nil {
		log.Fatal(err)
	}
	return c
}
