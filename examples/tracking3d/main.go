// Tracking3D: the Section V-G generalizations. First compress a simulated
// aerial trajectory in full 3-D (altitude matters: a spiral climb is
// invisible to a 2-D compressor), then compress a 2-D commute under the
// time-sensitive metric, where pausing mid-segment must be preserved.
package main

import (
	"fmt"
	"log"
	"math"

	"github.com/trajcomp/bqs"
)

func main() {
	// --- 3-D: a drone flies a climbing helix, then a straight descent.
	var pts3 []bqs.Point3
	t := 0.0
	for i := 0; i < 300; i++ { // helix: constant XY radius, steady climb
		ang := float64(i) * 2 * math.Pi / 60
		pts3 = append(pts3, bqs.Point3{
			X: 200 * math.Cos(ang),
			Y: 200 * math.Sin(ang),
			Z: 2 * float64(i),
			T: t,
		})
		t += 5
	}
	for i := 0; i < 100; i++ { // straight descent
		pts3 = append(pts3, bqs.Point3{
			X: 200 + 10*float64(i),
			Y: 0,
			Z: 600 - 6*float64(i),
			T: t,
		})
		t += 5
	}

	c3, err := bqs.NewFBQS3D(15)
	if err != nil {
		log.Fatal(err)
	}
	keys3 := c3.CompressBatch3(pts3)
	fmt.Printf("3-D flight: %d fixes → %d key points (rate %.1f%%)\n",
		len(pts3), len(keys3), 100*float64(len(keys3))/float64(len(pts3)))
	// The helix cannot be compressed flat; the descent collapses to 2.
	fmt.Printf("the straight descent leg compresses to its endpoints; the helix keeps enough\n" +
		"key points to stay within 15 m in all three axes\n")

	// --- Time-sensitive: a commuter drives, waits at road works, drives on.
	var pts []bqs.Point
	tt := 0.0
	for i := 0; i <= 40; i++ {
		pts = append(pts, bqs.Point{X: float64(i) * 100, Y: 0, T: tt})
		tt += 10
	}
	for i := 0; i < 30; i++ { // 5 minutes stopped at x = 4 km
		pts = append(pts, bqs.Point{X: 4000, Y: 0, T: tt})
		tt += 10
	}
	for i := 1; i <= 80; i++ { // a longer second leg, so the stop is NOT at
		pts = append(pts, bqs.Point{X: 4000 + float64(i)*100, Y: 0, T: tt})
		tt += 10 // the temporal midpoint of the trip
	}

	spatial, err := bqs.NewBQS(20)
	if err != nil {
		log.Fatal(err)
	}
	spatialKeys := bqs.Compress(spatial, pts)

	// gamma = 5 m/s: one second of temporal error counts like 5 m of
	// spatial error.
	tsc, err := bqs.NewTimeSensitive(20, 5, false)
	if err != nil {
		log.Fatal(err)
	}
	var tsKeys []bqs.Point
	for _, p := range pts {
		if kp, ok := tsc.Push(p); ok {
			tsKeys = append(tsKeys, kp)
		}
	}
	if kp, ok := tsc.Flush(); ok {
		tsKeys = append(tsKeys, kp)
	}

	fmt.Printf("\ncommute with a 5-minute stop, spatial metric: %d key points "+
		"(the stop vanishes — the whole drive is one straight line)\n", len(spatialKeys))
	fmt.Printf("time-sensitive metric (γ = 5 m/s): %d key points — the stop's start and\n"+
		"end survive, so reconstruction knows when the car was waiting\n", len(tsKeys))

	// Show it: where does each reconstruction think the car was mid-stop?
	mid := 40.0*10 + 150 // halfway through the stop
	ps, _ := bqs.Reconstruct(spatialKeys, mid, nil)
	pt, _ := bqs.Reconstruct(tsKeys, mid, nil)
	fmt.Printf("true position at t=%.0fs: x=4000; spatial says x=%.0f, time-sensitive says x=%.0f\n",
		mid, ps.X, pt.X)
}
