// Durable: the restartable fleet server. Phase 1 ingests a fleet through
// a durable engine whose finalized sessions land in an append-only,
// CRC-checksummed segment log. Phase 2 simulates a crash by chopping
// bytes off the log's tail. Phase 3 reopens the directory — recovery
// truncates the torn record, keeps everything synced before it — and
// answers device/time-range queries straight from disk, then resumes
// ingesting into the same log.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/trajcomp/bqs"
)

const (
	devices  = 20
	fixesPer = 200
)

func main() {
	dir, err := os.MkdirTemp("", "bqs-durable-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Phase 1: durable ingest. Close flushes every session into the log.
	e, err := bqs.OpenDurableEngine(dir, bqs.EngineConfig{
		Compressor: "fbqs",
		Tolerance:  10,
		Shards:     4,
	})
	if err != nil {
		log.Fatal(err)
	}
	for d := 0; d < devices; d++ {
		cfg := bqs.DefaultWalkConfig(int64(d) + 1)
		cfg.N = fixesPer
		id := fmt.Sprintf("bat-%03d", d)
		for _, p := range bqs.GenerateWalk(cfg).Points() {
			if err := e.IngestOne(id, p); err != nil {
				log.Fatal(err)
			}
		}
	}
	if err := e.Close(); err != nil {
		log.Fatal(err)
	}
	s := e.Stats()
	fmt.Printf("ingested %d fixes, persisted %d trajectories (%d key points)\n",
		s.Fixes, s.Persisted, s.KeyPoints)

	// Phase 2: crash. Tear the last 11 bytes off the newest segment —
	// the tail record is now incomplete, exactly what a power cut
	// mid-write leaves behind. The durable engine stripes the log one
	// subdirectory per shard, so the torn file lives under shard-NNN/.
	segs, err := filepath.Glob(filepath.Join(dir, "shard-*", "seg-*.log"))
	if err != nil || len(segs) == 0 {
		log.Fatalf("no segment files: %v", err)
	}
	last := segs[len(segs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-11); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated crash: tore 11 bytes off %s\n", filepath.Base(last))

	// Phase 3: reopen. Only the torn shard re-scans; the torn record is
	// dropped and every other trajectory survives byte-identically.
	lg, err := bqs.OpenShardedSegmentLog(dir, 0, bqs.SegmentLogOptions{})
	if err != nil {
		log.Fatal(err)
	}
	ls := lg.Stats()
	fmt.Printf("recovered: %d trajectories intact, %d torn bytes dropped\n",
		ls.Records, ls.Truncated)

	// Query the recovered log from disk: where was bat-007?
	recs, err := lg.Query("bat-007", 0, ^uint32(0))
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range recs {
		fmt.Printf("bat-007: %d key points over time [%d, %d], first at (%.7f, %.7f)\n",
			len(r.Keys), r.T0, r.T1, r.Keys[0].Lat, r.Keys[0].Lon)
	}
	if err := lg.Close(); err != nil {
		log.Fatal(err)
	}

	// The same directory keeps serving: a restarted engine appends after
	// the recovered prefix.
	e2, err := bqs.OpenDurableEngine(dir, bqs.EngineConfig{Compressor: "fbqs", Tolerance: 10, Shards: 2})
	if err != nil {
		log.Fatal(err)
	}
	cfg := bqs.DefaultWalkConfig(777)
	cfg.N = 50
	for _, p := range bqs.GenerateWalk(cfg).Points() {
		if err := e2.IngestOne("bat-new", p); err != nil {
			log.Fatal(err)
		}
	}
	if err := e2.Close(); err != nil {
		log.Fatal(err)
	}
	lg2, err := bqs.OpenShardedSegmentLog(dir, 0, bqs.SegmentLogOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer lg2.Close()
	fmt.Printf("after restart: %d trajectories from %d devices on disk\n",
		lg2.Stats().Records, lg2.Stats().Devices)
}
