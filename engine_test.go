package bqs_test

import (
	"errors"
	"fmt"
	"testing"

	"github.com/trajcomp/bqs"
)

// TestEngineFacade exercises the public engine surface end to end:
// named-compressor construction, ingestion, store queries via the
// sharded-store facade, and a custom registry entry driving the engine.
func TestEngineFacade(t *testing.T) {
	e, err := bqs.NewEngine(bqs.EngineConfig{
		Compressor: "fbqs",
		Tolerance:  10,
		Shards:     4,
		Store:      bqs.StoreConfig{MergeTolerance: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	var fixes []bqs.Fix
	for d := 0; d < 50; d++ {
		dev := fmt.Sprintf("dev-%d", d)
		for i := 0; i < 40; i++ {
			fixes = append(fixes, bqs.Fix{Device: dev, Point: bqs.Point{
				X: float64(i * 30), Y: float64(d % 7 * 25), T: float64(i),
			}})
		}
	}
	if err := e.Ingest(fixes); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.Fixes != 50*40 || s.SessionsOpened != 50 {
		t.Fatalf("stats: %+v", s)
	}
	if s.KeyPoints == 0 || s.CompressionRate() >= 1 {
		t.Fatalf("no compression: %+v", s)
	}
	var stores *bqs.ShardedStore = e.Stores()
	if stores.Len() == 0 {
		t.Fatal("no segments stored")
	}
	var merged bqs.StoreStats = stores.MergedStats()
	if merged.Merged == 0 {
		t.Fatalf("collinear duplicate paths did not merge: %+v", merged)
	}
	if err := e.IngestOne("late", bqs.Point{X: 1, Y: 1, T: 1}); !errors.Is(err, bqs.ErrEngineClosed) {
		t.Fatalf("ingest after close = %v, want ErrEngineClosed", err)
	}
}

// TestEngineCustomCompressor registers a custom compressor and runs the
// engine with it by name.
func TestEngineCustomCompressor(t *testing.T) {
	err := bqs.RegisterCompressor("facade-test-bqs-seg", func(tol float64) (bqs.StreamCompressor, error) {
		c, err := bqs.NewBQS(tol, bqs.WithMetric(bqs.MetricSegment))
		if err != nil {
			return nil, err
		}
		return c, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range bqs.CompressorNames() {
		if n == "facade-test-bqs-seg" {
			found = true
		}
	}
	if !found {
		t.Fatal("registered name missing from CompressorNames")
	}
	c, err := bqs.NewNamedCompressor("facade-test-bqs-seg", 5)
	if err != nil {
		t.Fatal(err)
	}
	pts := []bqs.Point{{X: 0, Y: 0, T: 0}, {X: 100, Y: 0, T: 1}, {X: 200, Y: 50, T: 2}}
	if keys := bqs.Compress(c, pts); len(keys) < 2 {
		t.Fatalf("keys = %v", keys)
	}

	e, err := bqs.NewEngine(bqs.EngineConfig{Compressor: "facade-test-bqs-seg", Tolerance: 5, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		if err := e.IngestOne("d", p); err != nil {
			t.Fatal(i, err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.KeyPoints < 2 {
		t.Fatalf("custom compressor emitted %d keys", s.KeyPoints)
	}
}
