package bqs

import (
	"math"
	"testing"
)

func TestPublicQuickstart(t *testing.T) {
	c, err := NewBQS(10)
	if err != nil {
		t.Fatal(err)
	}
	tr := GenerateWalk(DefaultWalkConfig(1))
	pts := tr.Points()[:5000]
	keys := Compress(c, pts)
	if len(keys) < 2 || len(keys) >= len(pts) {
		t.Fatalf("keys = %d of %d", len(keys), len(pts))
	}
	worst, ok := ValidateErrorBound(pts, keys, 10, MetricLine)
	if !ok {
		t.Errorf("error bound violated: worst = %v", worst)
	}
}

func TestPublicFBQSOptions(t *testing.T) {
	var traces int
	c, err := NewFBQS(5,
		WithMetric(MetricSegment),
		WithRotationWarmup(3),
		WithTrace(func(TracePoint) { traces++ }),
	)
	if err != nil {
		t.Fatal(err)
	}
	cfg := c.Config()
	if cfg.Metric != MetricSegment || cfg.RotationWarmup != 3 {
		t.Errorf("options not applied: %+v", cfg)
	}
	tr := GenerateBat(func() BatConfig { c := DefaultBatConfig(3); c.Days = 2; return c }())
	keys := Compress(c, tr.Points())
	if len(keys) < 2 {
		t.Fatal("no compression output")
	}
	if traces == 0 {
		t.Error("trace callback never fired")
	}
}

func TestPublicValidation(t *testing.T) {
	if _, err := NewBQS(0); err == nil {
		t.Error("zero tolerance accepted")
	}
	if _, err := NewFBQS(math.NaN()); err == nil {
		t.Error("NaN tolerance accepted")
	}
	if _, err := NewBQS3D(-1); err == nil {
		t.Error("negative tolerance accepted (3-D)")
	}
	if _, err := NewTimeSensitive(5, 0, false); err == nil {
		t.Error("zero gamma accepted")
	}
}

func TestPublicMaxBufferOption(t *testing.T) {
	c, err := NewBQS(10, WithMaxBuffer(16))
	if err != nil {
		t.Fatal(err)
	}
	if c.Config().MaxBuffer != 16 {
		t.Error("MaxBuffer option not applied")
	}
}

func TestPublic3D(t *testing.T) {
	c, err := NewBQS3D(5)
	if err != nil {
		t.Fatal(err)
	}
	var pts []Point3
	for i := 0; i < 200; i++ {
		pts = append(pts, Point3{X: float64(i) * 10, Y: 0, Z: float64(i), T: float64(i)})
	}
	keys := c.CompressBatch3(pts)
	if len(keys) != 2 {
		t.Errorf("3-D straight line kept %d points", len(keys))
	}
	f, err := NewFBQS3D(5)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.CompressBatch3(pts); len(got) != 2 {
		t.Errorf("fast 3-D straight line kept %d points", len(got))
	}
}

func TestPublicBaselines(t *testing.T) {
	tr := GenerateWalk(func() WalkConfig { c := DefaultWalkConfig(4); c.N = 3000; return c }())
	pts := tr.Points()

	dp, err := DouglasPeucker(pts, 10, MetricLine)
	if err != nil {
		t.Fatal(err)
	}
	if len(dp) >= len(pts) || len(dp) < 2 {
		t.Errorf("DP kept %d", len(dp))
	}

	bdp, err := NewBufferedDP(10, 32, MetricLine)
	if err != nil {
		t.Fatal(err)
	}
	keys := Compress(AdaptBufferedDP(bdp), pts)
	if len(keys) < 2 {
		t.Error("adapted BDP produced nothing")
	}
	worst, ok := ValidateErrorBound(pts, keys, 10, MetricLine)
	if !ok {
		t.Errorf("BDP bound violated: %v", worst)
	}

	bgd, err := NewBufferedGreedy(10, 32, MetricLine)
	if err != nil {
		t.Fatal(err)
	}
	keys2 := Compress(bgd, pts)
	if _, ok := ValidateErrorBound(pts, keys2, 10, MetricLine); !ok {
		t.Error("BGD bound violated")
	}

	dr, err := NewDeadReckoning(10)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, s := range tr.Samples {
		if _, ok := dr.PushV(s.P, s.VX, s.VY); ok {
			n++
		}
	}
	if n == 0 || n >= len(pts) {
		t.Errorf("DR reported %d", n)
	}

	sq, err := SquishELambda(pts, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(sq) > len(pts)/20+2 {
		t.Errorf("SQUISH-E(λ) kept %d", len(sq))
	}
	mu, err := SquishEMu(pts, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(mu) >= len(pts) {
		t.Error("SQUISH-E(μ) kept everything")
	}
	us, err := UniformSample(pts, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(us) < len(pts)/7 {
		t.Errorf("uniform kept %d", len(us))
	}
}

func TestProjectorRoundTrip(t *testing.T) {
	var pr Projector
	if _, err := pr.Unproject(Point{}); err != ErrNotProjected {
		t.Errorf("unprojected error = %v", err)
	}
	g := GeoPoint{Lat: -27.4698, Lon: 153.0251, T: 42}
	p, err := pr.Project(g)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Zone() != 56 {
		t.Errorf("zone = %d", pr.Zone())
	}
	back, err := pr.Unproject(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(back.Lat-g.Lat) > 1e-6 || math.Abs(back.Lon-g.Lon) > 1e-6 || back.T != 42 {
		t.Errorf("round trip: %+v", back)
	}
	// A second fix across the zone boundary stays in the same plane.
	p2, err := pr.Project(GeoPoint{Lat: -27.47, Lon: 150.1, T: 43})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p2.X-p.X) > 400e3 {
		t.Errorf("cross-zone projection jumped: %v vs %v", p2.X, p.X)
	}
	if pr.Zone() != 56 {
		t.Error("zone changed")
	}
	if _, err := pr.Project(GeoPoint{Lat: 95, Lon: 0}); err == nil {
		t.Error("bad fix accepted")
	}
}

func TestProjectorCompressGeoTrack(t *testing.T) {
	// End-to-end: project a small geographic track, compress, reconstruct.
	var pr Projector
	var pts []Point
	for i := 0; i <= 60; i++ {
		g := GeoPoint{
			Lat: -27.4698 + float64(i)*0.0005,
			Lon: 153.0251 + float64(i)*0.0005,
			T:   float64(i * 60),
		}
		p, err := pr.Project(g)
		if err != nil {
			t.Fatal(err)
		}
		pts = append(pts, p)
	}
	c, err := NewFBQS(15)
	if err != nil {
		t.Fatal(err)
	}
	keys := Compress(c, pts)
	if len(keys) < 2 || len(keys) > 10 {
		t.Errorf("geo track kept %d keys", len(keys))
	}
	if _, ok := ValidateErrorBound(pts, keys, 15, MetricLine); !ok {
		t.Error("bound violated on geo track")
	}
}

func TestReconstructAPI(t *testing.T) {
	keys := []Point{{X: 0, Y: 0, T: 0}, {X: 100, Y: 0, T: 100}}
	p, err := Reconstruct(keys, 50, nil)
	if err != nil || math.Abs(p.X-50) > 1e-9 {
		t.Errorf("Reconstruct = %v, %v", p, err)
	}
	series := ReconstructSeries(keys, []float64{10, 20, 1000}, Uniform())
	if len(series) != 2 {
		t.Errorf("series = %v", series)
	}
	var fit GaussianFit
	fit.Add(0.5)
	fit.Add(0.6)
	if _, err := Reconstruct(keys, 50, fit.Fit()); err != nil {
		t.Errorf("gaussian reconstruct: %v", err)
	}
	maxE, meanE := ReconstructionError(keys, keys, nil)
	if maxE != 0 || meanE != 0 {
		t.Errorf("self reconstruction error = %v, %v", maxE, meanE)
	}
}

func TestStoreAPI(t *testing.T) {
	st, err := NewStore(StoreConfig{MergeTolerance: 10})
	if err != nil {
		t.Fatal(err)
	}
	keys := []Point{{X: 0, Y: 0, T: 0}, {X: 500, Y: 0, T: 60}}
	st.InsertTrajectory(keys)
	if st.Len() != 1 {
		t.Errorf("store len = %d", st.Len())
	}
	gk := []GeoKey{{Lat: -27.5, Lon: 153.0, T: 1000}}
	enc, err := EncodeTrajectory(gk)
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := DecodeTrajectory(enc)
	if err != nil || len(dec) != 1 {
		t.Fatalf("decode: %v %v", dec, err)
	}
	denc, err := DeltaEncodeTrajectory(gk)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DeltaDecodeTrajectory(denc); err != nil {
		t.Fatal(err)
	}
}

func TestDeviceAPI(t *testing.T) {
	m := DefaultStorageModel()
	days, err := m.OperationalDays(0.048)
	if err != nil {
		t.Fatal(err)
	}
	if math.Round(days) != 62 {
		t.Errorf("BQS days = %v, want 62", days)
	}
	e := DefaultEnergyModel()
	if e.EnergyLimitedDays(1) <= 0 {
		t.Error("energy model degenerate")
	}
}

func TestTimeSensitivePublic(t *testing.T) {
	ts, err := NewTimeSensitive(5, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	var n int
	for i := 0; i < 100; i++ {
		if _, ok := ts.Push(Point{X: float64(i) * 10, T: float64(i) * 10}); ok {
			n++
		}
	}
	if _, ok := ts.Flush(); ok {
		n++
	}
	if n < 2 {
		t.Errorf("time-sensitive kept %d", n)
	}
}
