// Package cache provides a byte-budgeted LRU used by the read side of
// the store: decoded segment-log records are cached keyed by (manifest
// generation, segment, offset), so a compaction's generation bump
// orphans stale entries instead of requiring a flush protocol — they
// simply stop being looked up and age out of the LRU tail.
//
// The design follows the "LRU with hooks and metrics" shape: a single
// mutex, an intrusive recency list, a byte budget measured by a
// caller-supplied size function (an entry count budget is the
// degenerate size ≡ 1), an optional eviction hook, and counters cheap
// enough to read on every scrape.
package cache

import (
	"container/list"
	"sync"
)

// Stats is a point-in-time snapshot of a cache's counters. Hits,
// Misses, Evictions and Invalidations are cumulative since New;
// Entries and Bytes are current occupancy against Capacity.
type Stats struct {
	Entries       int
	Bytes         int64
	Capacity      int64
	Hits          uint64
	Misses        uint64
	Evictions     uint64
	Invalidations uint64
}

// Add accumulates another snapshot into s, for merging per-shard or
// per-tenant caches into one report. Capacity sums too: the result
// describes the aggregate budget.
func (s *Stats) Add(o Stats) {
	s.Entries += o.Entries
	s.Bytes += o.Bytes
	s.Capacity += o.Capacity
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.Invalidations += o.Invalidations
}

type entry[K comparable, V any] struct {
	key  K
	val  V
	size int64
}

// Cache is a thread-safe LRU bounded by a byte budget rather than an
// entry count: Put charges each value the size the constructor's size
// function reports, and evicts from the cold end until the budget
// holds. A nil *Cache is a valid no-op cache (Get always misses, Put
// and Invalidate do nothing, Stats is zero), so callers can leave
// caching unconfigured without branching.
type Cache[K comparable, V any] struct {
	mu      sync.Mutex
	max     int64
	bytes   int64
	size    func(K, V) int64
	onEvict func(K, V)
	ll      *list.List // front = most recent; elements hold *entry[K, V]
	idx     map[K]*list.Element

	hits, misses, evictions, invalidations uint64
}

// Option configures optional cache behavior at construction.
type Option[K comparable, V any] func(*Cache[K, V])

// WithEvict registers a hook called (outside any hot path, but under
// the cache lock) for every entry removed by budget pressure or
// Invalidate. The hook must not call back into the cache.
func WithEvict[K comparable, V any](fn func(K, V)) Option[K, V] {
	return func(c *Cache[K, V]) { c.onEvict = fn }
}

// New builds a cache with the given byte budget. size reports the
// charge for one entry and is called once per Put; it must be
// positive, and a single entry larger than the whole budget is
// rejected by Put rather than evicting everything else. A maxBytes
// ≤ 0 returns nil — the no-op cache.
func New[K comparable, V any](maxBytes int64, size func(K, V) int64, opts ...Option[K, V]) *Cache[K, V] {
	if maxBytes <= 0 {
		return nil
	}
	c := &Cache[K, V]{
		max:  maxBytes,
		size: size,
		ll:   list.New(),
		idx:  make(map[K]*list.Element),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Get returns the cached value and whether it was present, promoting
// a hit to most-recently-used.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.idx[key]
	if !ok {
		c.misses++
		return zero, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*entry[K, V]).val, true
}

// Put inserts or replaces the value for key, evicting cold entries
// until the byte budget holds. A value whose size exceeds the whole
// budget is not cached (and does not disturb resident entries).
func (c *Cache[K, V]) Put(key K, val V) {
	if c == nil {
		return
	}
	sz := c.size(key, val)
	if sz <= 0 {
		sz = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if sz > c.max {
		return
	}
	if el, ok := c.idx[key]; ok {
		e := el.Value.(*entry[K, V])
		c.bytes += sz - e.size
		e.val, e.size = val, sz
		c.ll.MoveToFront(el)
	} else {
		c.idx[key] = c.ll.PushFront(&entry[K, V]{key: key, val: val, size: sz})
		c.bytes += sz
	}
	for c.bytes > c.max {
		c.removeLocked(c.ll.Back(), &c.evictions)
	}
}

// Invalidate removes key if present, reporting whether it was. Bulk
// invalidation is deliberately absent: generation-keyed users never
// need it, because a generation bump changes the keys being looked up
// and the orphans age out on their own.
func (c *Cache[K, V]) Invalidate(key K) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.idx[key]
	if !ok {
		return false
	}
	c.removeLocked(el, &c.invalidations)
	return true
}

func (c *Cache[K, V]) removeLocked(el *list.Element, counter *uint64) {
	e := el.Value.(*entry[K, V])
	c.ll.Remove(el)
	delete(c.idx, e.key)
	c.bytes -= e.size
	*counter++
	if c.onEvict != nil {
		c.onEvict(e.key, e.val)
	}
}

// Stats snapshots the counters. Safe on a nil cache (all zero).
func (c *Cache[K, V]) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Entries:       c.ll.Len(),
		Bytes:         c.bytes,
		Capacity:      c.max,
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
	}
}
