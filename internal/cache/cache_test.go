package cache

import (
	"fmt"
	"sync"
	"testing"
)

// sizeLen charges each string value its length, so byte-budget
// eviction is exercised with readable numbers.
func sizeLen(_ int, v string) int64 { return int64(len(v)) }

func TestGetPutAndCounters(t *testing.T) {
	c := New[int, string](100, sizeLen)
	if _, ok := c.Get(1); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(1, "aaaa")
	if v, ok := c.Get(1); !ok || v != "aaaa" {
		t.Fatalf("got %q, %v; want aaaa, true", v, ok)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 || s.Bytes != 4 || s.Capacity != 100 {
		t.Fatalf("stats %+v; want 1 hit, 1 miss, 1 entry, 4 bytes, cap 100", s)
	}
}

func TestEvictsColdestUnderByteBudget(t *testing.T) {
	var evicted []int
	c := New(10, sizeLen, WithEvict(func(k int, _ string) { evicted = append(evicted, k) }))
	c.Put(1, "aaaa") // 4 bytes
	c.Put(2, "bbbb") // 8 bytes
	c.Get(1)         // promote 1; now 2 is coldest
	c.Put(3, "cccc") // 12 bytes: must evict 2
	if len(evicted) != 1 || evicted[0] != 2 {
		t.Fatalf("evicted %v; want [2]", evicted)
	}
	if _, ok := c.Get(2); ok {
		t.Fatal("evicted entry still present")
	}
	for _, k := range []int{1, 3} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("key %d missing after eviction of 2", k)
		}
	}
	s := c.Stats()
	if s.Evictions != 1 || s.Bytes != 8 {
		t.Fatalf("stats %+v; want 1 eviction, 8 bytes", s)
	}
}

func TestReplaceAdjustsBytes(t *testing.T) {
	c := New[int, string](100, sizeLen)
	c.Put(1, "aa")
	c.Put(1, "aaaaaa")
	if s := c.Stats(); s.Entries != 1 || s.Bytes != 6 {
		t.Fatalf("stats %+v; want 1 entry, 6 bytes after replace", s)
	}
	if v, _ := c.Get(1); v != "aaaaaa" {
		t.Fatalf("got %q after replace", v)
	}
}

func TestOversizedValueNotCached(t *testing.T) {
	c := New[int, string](4, sizeLen)
	c.Put(1, "ok")
	c.Put(2, "way too large for the budget")
	if _, ok := c.Get(2); ok {
		t.Fatal("oversized value was cached")
	}
	if _, ok := c.Get(1); !ok {
		t.Fatal("resident entry evicted by an uncacheable value")
	}
}

func TestInvalidate(t *testing.T) {
	c := New[int, string](100, sizeLen)
	c.Put(1, "aaaa")
	if !c.Invalidate(1) {
		t.Fatal("Invalidate reported absent for present key")
	}
	if c.Invalidate(1) {
		t.Fatal("Invalidate reported present for absent key")
	}
	s := c.Stats()
	if s.Invalidations != 1 || s.Evictions != 0 || s.Entries != 0 || s.Bytes != 0 {
		t.Fatalf("stats %+v; want exactly 1 invalidation and empty cache", s)
	}
}

func TestNilCacheIsNoop(t *testing.T) {
	var c *Cache[int, string]
	if c2 := New[int, string](0, sizeLen); c2 != nil {
		t.Fatal("New with zero budget should return the nil no-op cache")
	}
	c.Put(1, "x")
	if _, ok := c.Get(1); ok {
		t.Fatal("nil cache returned a hit")
	}
	if c.Invalidate(1) {
		t.Fatal("nil cache invalidated something")
	}
	if s := c.Stats(); s != (Stats{}) {
		t.Fatalf("nil cache stats %+v; want zero", s)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Entries: 1, Bytes: 10, Capacity: 100, Hits: 2, Misses: 3, Evictions: 4, Invalidations: 5}
	b := Stats{Entries: 2, Bytes: 20, Capacity: 200, Hits: 20, Misses: 30, Evictions: 40, Invalidations: 50}
	a.Add(b)
	want := Stats{Entries: 3, Bytes: 30, Capacity: 300, Hits: 22, Misses: 33, Evictions: 44, Invalidations: 55}
	if a != want {
		t.Fatalf("Add = %+v; want %+v", a, want)
	}
}

// TestConcurrentAccess is a -race smoke test: readers, writers and
// invalidators share the cache, and the byte accounting must still
// balance afterwards.
func TestConcurrentAccess(t *testing.T) {
	c := New[int, string](1<<10, sizeLen)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := (g*31 + i) % 64
				switch i % 3 {
				case 0:
					c.Put(k, fmt.Sprintf("value-%d-%d", g, i))
				case 1:
					c.Get(k)
				default:
					c.Invalidate(k)
				}
			}
		}(g)
	}
	wg.Wait()
	s := c.Stats()
	if s.Bytes < 0 || s.Bytes > 1<<10 {
		t.Fatalf("byte accounting out of range after concurrent use: %+v", s)
	}
	if s.Entries < 0 || int64(s.Entries) > s.Bytes {
		t.Fatalf("entry/byte mismatch: %+v", s)
	}
}
