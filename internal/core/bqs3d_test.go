package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/trajcomp/bqs/internal/geom"
)

func TestOctantOf(t *testing.T) {
	cases := []struct {
		v    geom.Vec3
		want int
	}{
		{geom.V3(1, 1, 1), 0},
		{geom.V3(-1, 1, 1), 1},
		{geom.V3(-1, -1, 1), 2},
		{geom.V3(1, -1, 1), 3},
		{geom.V3(1, 1, -1), 4},
		{geom.V3(-1, 1, -1), 5},
		{geom.V3(-1, -1, -1), 6},
		{geom.V3(1, -1, -1), 7},
		{geom.V3(0, 0, 0), 0},
	}
	for _, c := range cases {
		if got := octantOf(c.v); got != c.want {
			t.Errorf("octantOf(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestOctantInclination(t *testing.T) {
	// inclinationPair represents φ = atan2(a, den); evaluate the angle it
	// encodes to pin the representation to the paper's definition.
	phi := func(o *octant, v geom.Vec3) float64 {
		den, a := o.inclinationPair(v)
		return math.Atan2(a, den)
	}
	var o octant
	o.reset(0)
	// A point in the XY plane has inclination 0.
	if got := phi(&o, geom.V3(1, 1, 0)); !almostEq(got, 0, 1e-12) {
		t.Errorf("planar inclination = %v", got)
	}
	// A point on the z axis has inclination π/2.
	if got := phi(&o, geom.V3(0, 0, 5)); !almostEq(got, math.Pi/2, 1e-12) {
		t.Errorf("axial inclination = %v", got)
	}
	// Symmetric point: z = (x+y)/√2 gives 45°.
	if got := phi(&o, geom.V3(1, 1, math.Sqrt2)); !almostEq(got, math.Pi/4, 1e-12) {
		t.Errorf("45° inclination = %v", got)
	}
	// Bottom octant: negative z maps positively.
	var ob octant
	ob.reset(4)
	if got := phi(&ob, geom.V3(1, 1, -math.Sqrt2)); !almostEq(got, math.Pi/4, 1e-12) {
		t.Errorf("bottom 45° inclination = %v", got)
	}
}

// Every tracked point must satisfy every emitted half-space constraint.
func TestOctantHalfSpacesContainPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 2000; trial++ {
		idx := rng.Intn(8)
		sx := []float64{1, -1, -1, 1}[idx%4]
		sy := []float64{1, 1, -1, -1}[idx%4]
		sz := 1.0
		if idx >= 4 {
			sz = -1
		}
		var o octant
		o.reset(idx)
		n := 1 + rng.Intn(15)
		pts := make([]geom.Vec3, n)
		for i := range pts {
			p := geom.V3(sx*rng.Float64()*50, sy*rng.Float64()*50, sz*rng.Float64()*50)
			if octantOf(p) != idx {
				p = geom.V3(sx*(rng.Float64()*50+0.01), sy*(rng.Float64()*50+0.01), sz*(rng.Float64()*50+0.01))
			}
			pts[i] = p
			o.insert(p)
		}
		for _, h := range o.halfSpaces() {
			for _, p := range pts {
				if h.Eval(p) > 1e-6*(1+p.Norm()) {
					t.Fatalf("trial %d oct %d: point %v violates half-space %+v (eval %v)",
						trial, idx, p, h, h.Eval(p))
				}
			}
		}
	}
}

// 3-D analogue of the bound sandwich property.
func TestOctantBoundsSandwich(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for trial := 0; trial < 8000; trial++ {
		idx := rng.Intn(8)
		sx := []float64{1, -1, -1, 1}[idx%4]
		sy := []float64{1, 1, -1, -1}[idx%4]
		sz := 1.0
		if idx >= 4 {
			sz = -1
		}
		var o octant
		o.reset(idx)
		n := 1 + rng.Intn(15)
		pts := make([]geom.Vec3, n)
		for i := range pts {
			x, y, z := rng.Float64()*50, rng.Float64()*50, rng.Float64()*50
			if rng.Intn(15) == 0 {
				x, y = 0, 0 // on the z axis
			}
			if rng.Intn(15) == 0 {
				z = 0 // in the XY plane
			}
			p := geom.V3(sx*x, sy*y, sz*z)
			if octantOf(p) != idx {
				p = geom.V3(sx*(x+0.01), sy*(y+0.01), sz*(z+0.01))
			}
			pts[i] = p
			o.insert(p)
		}
		e := geom.V3(rng.NormFloat64()*40, rng.NormFloat64()*40, rng.NormFloat64()*40)
		if rng.Intn(10) == 0 {
			e = geom.V3(0, 0, 0)
		}
		for _, m := range []Metric{MetricLine, MetricSegment} {
			lb, ub := o.bounds(e, m)
			var truth float64
			for _, p := range pts {
				var d float64
				if m == MetricSegment {
					d = geom.DistToSegment3(p, geom.Vec3{}, e)
				} else {
					d = geom.DistToLine3(p, geom.Vec3{}, e)
				}
				if d > truth {
					truth = d
				}
			}
			tol := 1e-6 * (1 + truth)
			if lb > truth+tol {
				t.Fatalf("trial %d oct %d metric %v: lb %v > truth %v", trial, idx, m, lb, truth)
			}
			if ub < truth-tol {
				t.Fatalf("trial %d oct %d metric %v: ub %v < truth %v (pts %v, e %v)",
					trial, idx, m, ub, truth, pts, e)
			}
		}
	}
}

// The significant-point count stays within the paper's budget: at most 4
// intersections per bounding plane (4 planes) plus the prism summary. We
// allow the full clipped-polyhedron vertex set, which is still O(1).
func TestOctantSignificantPointsBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 500; trial++ {
		var o octant
		o.reset(0)
		for i := 0; i < 50; i++ {
			o.insert(geom.V3(rng.Float64()*50+0.01, rng.Float64()*50+0.01, rng.Float64()*50+0.01))
		}
		n := len(o.significantPoints3())
		if n == 0 || n > 64 {
			t.Fatalf("significant point count = %d", n)
		}
	}
}

func randomWalk3(rng *rand.Rand, n int, step float64) []Point3 {
	pts := make([]Point3, n)
	x, y, z := 0.0, 0.0, 100.0
	heading := rng.Float64() * 2 * math.Pi
	climb := 0.0
	for i := 0; i < n; i++ {
		heading += rng.NormFloat64() * 0.3
		climb += rng.NormFloat64() * 0.1
		climb = math.Max(-0.5, math.Min(0.5, climb))
		speed := step * (0.2 + rng.Float64())
		x += math.Cos(heading) * speed
		y += math.Sin(heading) * speed
		z += climb * speed
		pts[i] = Point3{X: x, Y: y, Z: z, T: float64(i)}
	}
	return pts
}

func maxSegmentError3(orig, keys []Point3, metric Metric) float64 {
	var worst float64
	for ki := 0; ki+1 < len(keys); ki++ {
		s, e := keys[ki], keys[ki+1]
		var interior []Point3
		for _, p := range orig {
			if p.T > s.T && p.T < e.T {
				interior = append(interior, p)
			}
		}
		if d := MaxDeviation3(interior, s, e, metric); d > worst {
			worst = d
		}
	}
	return worst
}

func TestErrorBoundInvariant3D(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		pts := randomWalk3(rng, 300+rng.Intn(300), 10)
		tol := []float64{2, 5, 10, 20}[rng.Intn(4)]
		for _, mode := range []Mode{ModeExact, ModeFast} {
			for _, metric := range []Metric{MetricLine, MetricSegment} {
				for _, w := range []int{0, 5} {
					c, err := NewCompressor3(Config{Tolerance: tol, Mode: mode, Metric: metric, RotationWarmup: w})
					if err != nil {
						t.Fatal(err)
					}
					keys := c.CompressBatch3(pts)
					if got := maxSegmentError3(pts, keys, metric); got > tol*(1+1e-9) {
						t.Fatalf("trial %d mode %v metric %v warmup %d: error %v > %v",
							trial, mode, metric, w, got, tol)
					}
					if len(keys) < 2 {
						t.Fatalf("keys = %v", keys)
					}
					if !keys[0].Equal(pts[0]) || !keys[len(keys)-1].Equal(pts[len(pts)-1]) {
						t.Fatal("endpoints not preserved")
					}
				}
			}
		}
	}
}

func TestStraightLine3DCompressesToTwoPoints(t *testing.T) {
	for _, mode := range []Mode{ModeExact, ModeFast} {
		c, err := NewCompressor3(Config{Tolerance: 5, Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		var pts []Point3
		for i := 0; i < 500; i++ {
			pts = append(pts, Point3{X: float64(i) * 10, Y: float64(i) * 3, Z: float64(i) * 2, T: float64(i)})
		}
		keys := c.CompressBatch3(pts)
		if len(keys) != 2 {
			t.Errorf("mode %v: 3-D straight line kept %d points", mode, len(keys))
		}
	}
}

func TestCompressor3FastConstantSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := randomWalk3(rng, 3000, 15)
	c, err := NewCompressor3(Config{Tolerance: 5, Mode: ModeFast})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		c.Push(p)
		if got := c.BufferedPoints(); got > DefaultRotationWarmup {
			t.Fatalf("fast 3-D mode buffered %d points", got)
		}
	}
}

func TestCompressor3Validation(t *testing.T) {
	if _, err := NewCompressor3(Config{Tolerance: -2}); err == nil {
		t.Error("negative tolerance accepted")
	}
}

func TestCompressor3ResetAndFlush(t *testing.T) {
	c, err := NewCompressor3(Config{Tolerance: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Flush(); ok {
		t.Error("flush of empty 3-D stream emitted")
	}
	c.Push(Point3{X: 1, T: 0})
	c.Push(Point3{X: 100, T: 1})
	kp, ok := c.Flush()
	if !ok || kp.X != 100 {
		t.Errorf("flush = (%v,%v)", kp, ok)
	}
	c.Reset()
	if c.Stats().Points != 0 {
		t.Error("stats survive reset")
	}
}

func TestTimeSensitiveMetric(t *testing.T) {
	// An object that pauses mid-segment is invisible to the spatial metric
	// but must force extra key points under the time-sensitive metric.
	var pts []Point
	tt := 0.0
	for i := 0; i <= 20; i++ { // steady motion
		pts = append(pts, Point{X: float64(i) * 10, Y: 0, T: tt})
		tt += 10
	}
	for i := 0; i < 20; i++ { // long pause at x = 200
		pts = append(pts, Point{X: 200, Y: 0, T: tt})
		tt += 10
	}
	for i := 1; i <= 20; i++ { // steady motion again
		pts = append(pts, Point{X: 200 + float64(i)*10, Y: 0, T: tt})
		tt += 10
	}

	spatial, err := NewCompressor(Config{Tolerance: 5})
	if err != nil {
		t.Fatal(err)
	}
	nSpatial := len(spatial.CompressBatch(pts))

	tsc, err := NewTimeSensitive(Config{Tolerance: 5}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	var nTS int
	for _, p := range pts {
		if _, ok := tsc.Push(p); ok {
			nTS++
		}
	}
	if _, ok := tsc.Flush(); ok {
		nTS++
	}
	if nSpatial != 2 {
		t.Errorf("spatial metric kept %d points, want 2 (straight line)", nSpatial)
	}
	if nTS <= nSpatial {
		t.Errorf("time-sensitive metric kept %d points, want > %d", nTS, nSpatial)
	}
}

func TestTimeSensitiveValidation(t *testing.T) {
	if _, err := NewTimeSensitive(Config{Tolerance: 5}, 0); err == nil {
		t.Error("gamma 0 accepted")
	}
	if _, err := NewTimeSensitive(Config{Tolerance: 5}, math.NaN()); err == nil {
		t.Error("gamma NaN accepted")
	}
	if _, err := NewTimeSensitive(Config{Tolerance: 0}, 1); err == nil {
		t.Error("bad inner config accepted")
	}
}
