package core

import (
	"math"

	"github.com/trajcomp/bqs/internal/geom"
)

// octant is one 3-D Bounded Quadrant System (Section V-G): the bounding
// structure for tracked points falling into one octant of the local
// coordinate system. It maintains
//
//   - the bounding right rectangular prism (minimal 3-D box) with witness
//     data points for all six extremes,
//   - the pair of "vertical" bounding planes Θmin/Θmax, which contain the z
//     axis and bound the azimuth of every point, and
//   - the pair of "inclined" bounding planes Φmin/Φmax through the octant's
//     two anchor points (sign(x)·1, −sign(y)·1, 0) and (−sign(x)·1,
//     sign(y)·1, 0), which bound the elevation of every point above the XY
//     plane.
//
// Like the 2-D quadrant, the angular machinery is trig-free: azimuth
// ordering within one XY quadrant is the cross-product sign of the XY
// projections, and inclination φ = atan2(√2·|z|, |x|+|y|) is ordered by
// comparing the (|x|+|y|, √2·|z|) ratio pairs — both components are
// non-negative inside an octant, so the cross-product sign again decides
// the atan2 ordering exactly. The bounding-plane normals are later rebuilt
// directly from the witness coordinates (one Sqrt each) instead of
// Sincos/Tan of stored angles.
//
// The prism clipped by the four plane half-spaces is a convex polyhedron
// that contains every tracked point; its vertices (the paper's ≤ 17
// significant points, computed here by polygon clipping as the paper
// suggests doing with GEOS/CGAL) drive the upper bound, while the tracked
// witness data points drive the lower bound.
type octant struct {
	idx int // 0..7: quadrantOf(x,y) + 4 if z < 0
	n   int

	prism geom.Box3
	// Witness data points attaining each prism extreme.
	wMinX, wMaxX, wMinY, wMaxY, wMinZ, wMaxZ geom.Vec3

	wPsiMin, wPsiMax geom.Vec3 // witnesses attaining the azimuth extremes
	psiSet           bool      // at least one off-axis point seen

	// Inclination extremes as (den, a) = (|x|+|y|, √2·|z|) ratio pairs of
	// the witnesses; tan(φ) = a/den, so the pairs carry everything the
	// bounding planes need without evaluating an angle.
	phiMinDen, phiMinA float64
	phiMaxDen, phiMaxA float64
	wPhiMin, wPhiMax   geom.Vec3

	// The significant points and witnesses depend only on the structure,
	// not on the candidate end point; cache them between inserts.
	sigValid bool
	sigCache []geom.Vec3
	witCache []geom.Vec3
}

// octantOf returns the octant index of a local 3-D point.
func octantOf(v geom.Vec3) int {
	idx := quadrantOf(v.XY())
	if v.Z < 0 {
		idx += 4
	}
	return idx
}

var (
	octSX = [4]float64{1, -1, -1, 1}
	octSY = [4]float64{1, 1, -1, -1}
)

// signs returns the octant's coordinate signs (+1 or -1).
func (o *octant) signs() (sx, sy, sz float64) {
	sx, sy, sz = octSX[o.idx&3], octSY[o.idx&3], 1
	if o.idx >= 4 {
		sz = -1
	}
	return sx, sy, sz
}

// inclinationPair returns the (den, a) ratio pair representing the
// elevation angle of p in this octant: φ = atan2(a, den) with
// a = √2·|z| ≥ 0 and den = |x|+|y| ≥ 0 inside the octant.
func (o *octant) inclinationPair(p geom.Vec3) (den, a float64) {
	sx, sy, sz := o.signs()
	return sx*p.X + sy*p.Y, math.Sqrt2 * sz * p.Z
}

func (o *octant) reset(idx int) {
	*o = octant{idx: idx, prism: geom.EmptyBox3()}
}

// insert adds a local point to the bounding structure.
func (o *octant) insert(p geom.Vec3) {
	if o.n == 0 {
		o.wMinX, o.wMaxX, o.wMinY, o.wMaxY, o.wMinZ, o.wMaxZ = p, p, p, p, p, p
	} else {
		if p.X < o.prism.Min.X {
			o.wMinX = p
		}
		if p.X > o.prism.Max.X {
			o.wMaxX = p
		}
		if p.Y < o.prism.Min.Y {
			o.wMinY = p
		}
		if p.Y > o.prism.Max.Y {
			o.wMaxY = p
		}
		if p.Z < o.prism.Min.Z {
			o.wMinZ = p
		}
		if p.Z > o.prism.Max.Z {
			o.wMaxZ = p
		}
	}
	o.prism.Extend(p)

	// Azimuth: skip points on (or numerically at) the z axis; the vertical
	// plane constraints hold for them regardless. Within one XY quadrant
	// the azimuth ordering is the cross-product sign of the projections,
	// exactly as in the 2-D quadrant.
	xy := p.XY()
	if xy.Norm() > geom.Eps {
		if !o.psiSet {
			o.wPsiMin, o.wPsiMax = p, p
			o.psiSet = true
		} else {
			if o.wPsiMin.XY().Cross(xy) < 0 {
				o.wPsiMin = p
			}
			if o.wPsiMax.XY().Cross(xy) > 0 {
				o.wPsiMax = p
			}
		}
	}

	// Inclination: φ1 < φ2 ⟺ a1·den2 < a2·den1 (cross-product sign of
	// the first-quadrant ratio pairs).
	den, a := o.inclinationPair(p)
	if o.n == 0 {
		o.phiMinDen, o.phiMinA = den, a
		o.phiMaxDen, o.phiMaxA = den, a
		o.wPhiMin, o.wPhiMax = p, p
	} else {
		if a*o.phiMinDen < o.phiMinA*den {
			o.phiMinDen, o.phiMinA, o.wPhiMin = den, a, p
		}
		if a*o.phiMaxDen > o.phiMaxA*den {
			o.phiMaxDen, o.phiMaxA, o.wPhiMax = den, a, p
		}
	}
	o.n++
	o.sigValid = false
}

// halfSpaces returns the bounding-plane half-space constraints in the form
// N·p ≤ 0, suitable for ClipPolygonPlane3. Constraints that are vacuous
// (full azimuth/elevation span to the octant boundary) are omitted. The
// normals are built from the witness coordinates — sin ψ and cos ψ are the
// witness's normalized XY components, tan φ is the witness's a/den ratio —
// and normalized to unit length so the clipper's Eps classification keeps
// its metric meaning.
func (o *octant) halfSpaces() []geom.Plane {
	var hs []geom.Plane
	if o.psiSet {
		// Azimuth ψ ≥ ψmin: (−sin ψmin, cos ψmin, 0)·p ≥ 0 → negate.
		w := o.wPsiMin.XY()
		r := math.Hypot(w.X, w.Y)
		hs = append(hs, geom.Plane{N: geom.V3(w.Y/r, -w.X/r, 0)})
		// Azimuth ψ ≤ ψmax.
		w = o.wPsiMax.XY()
		r = math.Hypot(w.X, w.Y)
		hs = append(hs, geom.Plane{N: geom.V3(-w.Y/r, w.X/r, 0)})
	}
	sx, sy, sz := o.signs()
	// Elevation φ ≤ φmax: √2·sz·z − tan(φmax)·(sx·x + sy·y) ≤ 0, scaled by
	// den(φmax) > 0 to avoid the tangent; vacuous as φmax → π/2 (den → 0).
	if o.phiMaxDen > 1e-9*o.phiMaxA {
		n := geom.V3(-o.phiMaxA*sx, -o.phiMaxA*sy, math.Sqrt2*sz*o.phiMaxDen)
		hs = append(hs, geom.Plane{N: n.Unit()})
	}
	// Elevation φ ≥ φmin: negated; vacuous as φmin → 0 (a → 0).
	if o.phiMinA > 1e-9*o.phiMinDen {
		n := geom.V3(o.phiMinA*sx, o.phiMinA*sy, -math.Sqrt2*sz*o.phiMinDen)
		hs = append(hs, geom.Plane{N: n.Unit()})
	}
	return hs
}

// significantPoints3 returns the (cached) vertex candidates of the prism
// clipped by the bounding half-spaces: the paper's significant points for
// the 3-D case. The set always contains the polyhedron's true vertices
// (every vertex lies on a prism face, except possibly the origin, through
// which all four cutting planes pass).
func (o *octant) significantPoints3() []geom.Vec3 {
	if o.n == 0 {
		return nil
	}
	if !o.sigValid {
		o.sigCache = o.computeSignificant()
		o.witCache = o.computeWitnesses()
		o.sigValid = true
	}
	return o.sigCache
}

// computeSignificant performs the actual clipping.
func (o *octant) computeSignificant() []geom.Vec3 {
	hs := o.halfSpaces()
	var out []geom.Vec3
	for _, face := range o.prism.Faces() {
		poly := face
		for _, h := range hs {
			poly = geom.ClipPolygonPlane3(poly, h)
			if len(poly) == 0 {
				break
			}
		}
		out = append(out, poly...)
	}
	if len(out) == 0 {
		// All faces clipped away numerically; fall back to the prism
		// corners (always a valid, if looser, enclosure).
		c := o.prism.Corners()
		return c[:]
	}
	if o.prism.Contains(geom.Vec3{}) {
		out = append(out, geom.Vec3{})
	}
	return out
}

// witnesses returns the (cached) tracked witness data points (≤ 10).
func (o *octant) witnesses() []geom.Vec3 {
	if o.n == 0 {
		return nil
	}
	if !o.sigValid {
		o.sigCache = o.computeSignificant()
		o.witCache = o.computeWitnesses()
		o.sigValid = true
	}
	return o.witCache
}

func (o *octant) computeWitnesses() []geom.Vec3 {
	w := []geom.Vec3{o.wMinX, o.wMaxX, o.wMinY, o.wMaxY, o.wMinZ, o.wMaxZ,
		o.wPhiMin, o.wPhiMax}
	if o.psiSet {
		w = append(w, o.wPsiMin, o.wPsiMax)
	}
	return w
}

// bounds computes the per-octant lower and upper bounds on the maximum
// deviation from the 3-D path line origin→le.
//
// The lower bound is the largest deviation among the tracked witness data
// points — every witness is a real data point, so this is always a valid
// floor, and it touches every face and bounding plane of the enclosure.
// The upper bound is the largest deviation among the significant points,
// whose convex hull contains every tracked point.
func (o *octant) bounds(le geom.Vec3, metric Metric) (dlb, dub float64) {
	if o.n == 0 {
		return 0, 0
	}
	origin := geom.Vec3{}
	distLB := func(p geom.Vec3) float64 { return geom.DistToLine3(p, origin, le) }
	distUB := distLB
	if metric == MetricSegment {
		distUB = func(p geom.Vec3) float64 { return geom.DistToSegment3(p, origin, le) }
	}
	for _, w := range o.witnesses() {
		if d := distLB(w); d > dlb {
			dlb = d
		}
	}
	for _, s := range o.significantPoints3() {
		if d := distUB(s); d > dub {
			dub = d
		}
	}
	// Guard against clip-rounding: the upper bound may never undercut the
	// witnessed lower bound.
	if metric == MetricLine && dub < dlb {
		dub = dlb
	} else if metric == MetricSegment {
		for _, w := range o.witnesses() {
			if d := distUB(w); d > dub {
				dub = d
			}
		}
	}
	return dlb, dub
}
