package core

import (
	"math"

	"github.com/trajcomp/bqs/internal/geom"
)

// octant is one 3-D Bounded Quadrant System (Section V-G): the bounding
// structure for tracked points falling into one octant of the local
// coordinate system. It maintains
//
//   - the bounding right rectangular prism (minimal 3-D box) with witness
//     data points for all six extremes,
//   - the pair of "vertical" bounding planes Θmin/Θmax, which contain the z
//     axis and bound the azimuth of every point, and
//   - the pair of "inclined" bounding planes Φmin/Φmax through the octant's
//     two anchor points (sign(x)·1, −sign(y)·1, 0) and (−sign(x)·1,
//     sign(y)·1, 0), which bound the elevation of every point above the XY
//     plane.
//
// The prism clipped by the four plane half-spaces is a convex polyhedron
// that contains every tracked point; its vertices (the paper's ≤ 17
// significant points, computed here by polygon clipping as the paper
// suggests doing with GEOS/CGAL) drive the upper bound, while the tracked
// witness data points drive the lower bound.
type octant struct {
	idx int // 0..7: quadrantOf(x,y) + 4 if z < 0
	n   int

	prism geom.Box3
	// Witness data points attaining each prism extreme.
	wMinX, wMaxX, wMinY, wMaxY, wMinZ, wMaxZ geom.Vec3

	psiMin, psiMax   float64 // azimuth range (canonical, within the XY quadrant)
	wPsiMin, wPsiMax geom.Vec3
	psiSet           bool // at least one off-axis point seen

	phiMin, phiMax   float64 // inclination range in [0, π/2]
	wPhiMin, wPhiMax geom.Vec3

	// The significant points and witnesses depend only on the structure,
	// not on the candidate end point; cache them between inserts.
	sigValid bool
	sigCache []geom.Vec3
	witCache []geom.Vec3
}

// octantOf returns the octant index of a local 3-D point.
func octantOf(v geom.Vec3) int {
	idx := quadrantOf(v.XY())
	if v.Z < 0 {
		idx += 4
	}
	return idx
}

// signs returns the octant's coordinate signs (+1 or -1).
func (o *octant) signs() (sx, sy, sz float64) {
	sx = []float64{1, -1, -1, 1}[o.idx%4]
	sy = []float64{1, 1, -1, -1}[o.idx%4]
	sz = 1
	if o.idx >= 4 {
		sz = -1
	}
	return sx, sy, sz
}

// inclination returns the signed-normalized elevation angle of p in this
// octant: atan2(√2·|z|, |x|+|y|) ∈ [0, π/2].
func (o *octant) inclination(p geom.Vec3) float64 {
	sx, sy, sz := o.signs()
	den := sx*p.X + sy*p.Y // = |x| + |y| within the octant
	return math.Atan2(math.Sqrt2*sz*p.Z, den)
}

func (o *octant) reset(idx int) {
	*o = octant{idx: idx, prism: geom.EmptyBox3()}
}

// insert adds a local point to the bounding structure.
func (o *octant) insert(p geom.Vec3) {
	if o.n == 0 {
		o.wMinX, o.wMaxX, o.wMinY, o.wMaxY, o.wMinZ, o.wMaxZ = p, p, p, p, p, p
	} else {
		if p.X < o.prism.Min.X {
			o.wMinX = p
		}
		if p.X > o.prism.Max.X {
			o.wMaxX = p
		}
		if p.Y < o.prism.Min.Y {
			o.wMinY = p
		}
		if p.Y > o.prism.Max.Y {
			o.wMaxY = p
		}
		if p.Z < o.prism.Min.Z {
			o.wMinZ = p
		}
		if p.Z > o.prism.Max.Z {
			o.wMaxZ = p
		}
	}
	o.prism.Extend(p)

	// Azimuth: skip points on (or numerically at) the z axis; the vertical
	// plane constraints hold for them regardless.
	if p.XY().Norm() > geom.Eps {
		psi := p.XY().Angle()
		if !o.psiSet {
			o.psiMin, o.psiMax = psi, psi
			o.wPsiMin, o.wPsiMax = p, p
			o.psiSet = true
		} else {
			if psi < o.psiMin {
				o.psiMin, o.wPsiMin = psi, p
			}
			if psi > o.psiMax {
				o.psiMax, o.wPsiMax = psi, p
			}
		}
	}

	phi := o.inclination(p)
	if o.n == 0 {
		o.phiMin, o.phiMax = phi, phi
		o.wPhiMin, o.wPhiMax = p, p
	} else {
		if phi < o.phiMin {
			o.phiMin, o.wPhiMin = phi, p
		}
		if phi > o.phiMax {
			o.phiMax, o.wPhiMax = phi, p
		}
	}
	o.n++
	o.sigValid = false
}

// halfSpaces returns the bounding-plane half-space constraints in the form
// N·p ≤ 0, suitable for ClipPolygonPlane3. Constraints that are vacuous
// (full azimuth/elevation span to the octant boundary) are omitted.
func (o *octant) halfSpaces() []geom.Plane {
	var hs []geom.Plane
	if o.psiSet {
		// Azimuth ψ ≥ ψmin: (−sin ψmin, cos ψmin, 0)·p ≥ 0 → negate.
		sMin, cMin := math.Sincos(o.psiMin)
		hs = append(hs, geom.Plane{N: geom.V3(sMin, -cMin, 0)})
		// Azimuth ψ ≤ ψmax.
		sMax, cMax := math.Sincos(o.psiMax)
		hs = append(hs, geom.Plane{N: geom.V3(-sMax, cMax, 0)})
	}
	sx, sy, sz := o.signs()
	// Elevation φ ≤ φmax: √2·sz·z − tan(φmax)·(sx·x + sy·y) ≤ 0.
	if o.phiMax < math.Pi/2-1e-9 {
		t := math.Tan(o.phiMax)
		hs = append(hs, geom.Plane{N: geom.V3(-t*sx, -t*sy, math.Sqrt2*sz)})
	}
	// Elevation φ ≥ φmin: negated.
	if o.phiMin > 1e-9 {
		t := math.Tan(o.phiMin)
		hs = append(hs, geom.Plane{N: geom.V3(t*sx, t*sy, -math.Sqrt2*sz)})
	}
	return hs
}

// significantPoints3 returns the (cached) vertex candidates of the prism
// clipped by the bounding half-spaces: the paper's significant points for
// the 3-D case. The set always contains the polyhedron's true vertices
// (every vertex lies on a prism face, except possibly the origin, through
// which all four cutting planes pass).
func (o *octant) significantPoints3() []geom.Vec3 {
	if o.n == 0 {
		return nil
	}
	if !o.sigValid {
		o.sigCache = o.computeSignificant()
		o.witCache = o.computeWitnesses()
		o.sigValid = true
	}
	return o.sigCache
}

// computeSignificant performs the actual clipping.
func (o *octant) computeSignificant() []geom.Vec3 {
	hs := o.halfSpaces()
	var out []geom.Vec3
	for _, face := range o.prism.Faces() {
		poly := face
		for _, h := range hs {
			poly = geom.ClipPolygonPlane3(poly, h)
			if len(poly) == 0 {
				break
			}
		}
		out = append(out, poly...)
	}
	if len(out) == 0 {
		// All faces clipped away numerically; fall back to the prism
		// corners (always a valid, if looser, enclosure).
		c := o.prism.Corners()
		return c[:]
	}
	if o.prism.Contains(geom.Vec3{}) {
		out = append(out, geom.Vec3{})
	}
	return out
}

// witnesses returns the (cached) tracked witness data points (≤ 10).
func (o *octant) witnesses() []geom.Vec3 {
	if o.n == 0 {
		return nil
	}
	if !o.sigValid {
		o.sigCache = o.computeSignificant()
		o.witCache = o.computeWitnesses()
		o.sigValid = true
	}
	return o.witCache
}

func (o *octant) computeWitnesses() []geom.Vec3 {
	w := []geom.Vec3{o.wMinX, o.wMaxX, o.wMinY, o.wMaxY, o.wMinZ, o.wMaxZ,
		o.wPhiMin, o.wPhiMax}
	if o.psiSet {
		w = append(w, o.wPsiMin, o.wPsiMax)
	}
	return w
}

// bounds computes the per-octant lower and upper bounds on the maximum
// deviation from the 3-D path line origin→le.
//
// The lower bound is the largest deviation among the tracked witness data
// points — every witness is a real data point, so this is always a valid
// floor, and it touches every face and bounding plane of the enclosure.
// The upper bound is the largest deviation among the significant points,
// whose convex hull contains every tracked point.
func (o *octant) bounds(le geom.Vec3, metric Metric) (dlb, dub float64) {
	if o.n == 0 {
		return 0, 0
	}
	origin := geom.Vec3{}
	distLB := func(p geom.Vec3) float64 { return geom.DistToLine3(p, origin, le) }
	distUB := distLB
	if metric == MetricSegment {
		distUB = func(p geom.Vec3) float64 { return geom.DistToSegment3(p, origin, le) }
	}
	for _, w := range o.witnesses() {
		if d := distLB(w); d > dlb {
			dlb = d
		}
	}
	for _, s := range o.significantPoints3() {
		if d := distUB(s); d > dub {
			dub = d
		}
	}
	// Guard against clip-rounding: the upper bound may never undercut the
	// witnessed lower bound.
	if metric == MetricLine && dub < dlb {
		dub = dlb
	} else if metric == MetricSegment {
		for _, w := range o.witnesses() {
			if d := distUB(w); d > dub {
				dub = d
			}
		}
	}
	return dlb, dub
}
