package core

import (
	"math"

	"github.com/trajcomp/bqs/internal/geom"
)

// quadrant is one Bounded Quadrant System: the bounding structure for the
// tracked points of the current segment that fall into one quadrant of the
// local (segment-start-anchored, optionally rotated) coordinate system.
//
// It maintains the minimal bounding box, the two angular bounding lines
// (as min/max angle from the +x axis of any origin→point ray, Section V-B)
// and the extreme-angle witness points used as a numerically robust
// fallback when a bounding line's clip against the box degenerates.
type quadrant struct {
	idx                int // 0..3, fixed at init
	n                  int // tracked points
	box                geom.Box
	thetaMin, thetaMax float64  // canonical angles in [0, 2π)
	pMin, pMax         geom.Vec // witness points attaining the extreme angles

	// Significant points are a function of the structure only (not of the
	// candidate end point), so they are cached and recomputed lazily after
	// inserts. This keeps the per-point decision to a handful of distance
	// evaluations.
	sigValid       bool
	l1, l2, u1, u2 geom.Vec
	clipOK         bool
	cn, cf         geom.Vec
}

// quadrantOf returns the quadrant index of a local point: 0 for x≥0∧y≥0,
// 1 for x<0∧y≥0, 2 for x<0∧y<0, 3 for x≥0∧y<0. The conventions on the axes
// are arbitrary but must be stable, which these are.
func quadrantOf(v geom.Vec) int {
	if v.Y >= 0 {
		if v.X >= 0 {
			return 0
		}
		return 1
	}
	if v.X < 0 {
		return 2
	}
	return 3
}

// reset empties the quadrant.
func (q *quadrant) reset(idx int) {
	*q = quadrant{idx: idx, box: geom.EmptyBox()}
}

// insert adds a local point to the bounding structure. Within one quadrant
// canonical angles are contiguous (no 0/2π wraparound is possible), so the
// min/max update is safe.
func (q *quadrant) insert(v geom.Vec) {
	a := v.Angle()
	if q.n == 0 {
		q.thetaMin, q.thetaMax = a, a
		q.pMin, q.pMax = v, v
	} else {
		if a < q.thetaMin {
			q.thetaMin, q.pMin = a, v
		}
		if a > q.thetaMax {
			q.thetaMax, q.pMax = a, v
		}
	}
	q.box.Extend(v)
	q.n++
	q.sigValid = false
}

// refreshSignificant recomputes the cached significant points.
func (q *quadrant) refreshSignificant() {
	q.l1, q.l2, q.u1, q.u2, q.clipOK = q.computeIntersections()
	q.cn, q.cf = q.nearFarCorners()
	q.sigValid = true
}

// nearFarCorners returns the bounding-box corners nearest to and farthest
// from the origin; which corners those are is fixed by the quadrant
// (Section V, "Near-far Corner Distances").
func (q *quadrant) nearFarCorners() (cn, cf geom.Vec) {
	b := q.box
	switch q.idx {
	case 0:
		return b.Min, b.Max
	case 1:
		return geom.Vec{X: b.Max.X, Y: b.Min.Y}, geom.Vec{X: b.Min.X, Y: b.Max.Y}
	case 2:
		return b.Max, b.Min
	default: // 3
		return geom.Vec{X: b.Min.X, Y: b.Max.Y}, geom.Vec{X: b.Max.X, Y: b.Min.Y}
	}
}

// lineInQuadrant reports whether a path line with direction angle theta
// (any representative) is "in" this quadrant per the paper's definition:
// the angle mod π falls inside the quadrant's half-open angular range.
// A line is therefore in exactly two opposite quadrants.
func (q *quadrant) lineInQuadrant(theta float64) bool {
	m := math.Mod(geom.NormalizeAngle(theta), math.Pi)
	if q.idx == 0 || q.idx == 2 {
		return m < math.Pi/2
	}
	return m >= math.Pi/2
}

// intersections returns the (cached) entry/exit points of the lower and
// upper bounding lines with the bounding box (the significant points l1,
// l2, u1, u2). When a clip degenerates numerically the extreme witness
// point is substituted and ok is false, signalling that the caller must
// fall back to the corner-based upper bound.
func (q *quadrant) intersections() (l1, l2, u1, u2 geom.Vec, ok bool) {
	if !q.sigValid {
		q.refreshSignificant()
	}
	return q.l1, q.l2, q.u1, q.u2, q.clipOK
}

// computeIntersections clips both bounding lines against the box.
func (q *quadrant) computeIntersections() (l1, l2, u1, u2 geom.Vec, ok bool) {
	ok = true
	dirMin := geom.Vec{X: math.Cos(q.thetaMin), Y: math.Sin(q.thetaMin)}
	dirMax := geom.Vec{X: math.Cos(q.thetaMax), Y: math.Sin(q.thetaMax)}
	var okL, okU bool
	l1, l2, okL = q.box.ClipLineThroughOrigin(dirMin)
	if !okL {
		l1, l2, ok = q.pMin, q.pMin, false
	}
	u1, u2, okU = q.box.ClipLineThroughOrigin(dirMax)
	if !okU {
		u1, u2, ok = q.pMax, q.pMax, false
	}
	return l1, l2, u1, u2, ok
}

// bounds computes the per-quadrant lower and upper bounds on the maximum
// deviation of the tracked points from the path line through the local
// origin and the local end point le (Theorems 5.3, 5.4 and 5.5).
//
// Lower-bound terms always use the point-to-line distance: a witness data
// point p with line-distance ≥ dlb also has segment-distance ≥ dlb, so the
// same dlb is valid under both metrics. Upper-bound terms use the active
// metric; under MetricSegment the near/far corners join the intersection
// points per Equation 11, which together span the convex hull that contains
// every tracked point.
//
// An empty quadrant contributes (0, 0).
func (q *quadrant) bounds(le geom.Vec, metric Metric) (dlb, dub float64) {
	return q.boundsTheta(le, le.Angle(), metric)
}

// boundsTheta is bounds with the path-line angle precomputed by the caller
// (it is shared across all four quadrants, so the compressor computes it
// once per point).
func (q *quadrant) boundsTheta(le geom.Vec, theta float64, metric Metric) (dlb, dub float64) {
	if q.n == 0 {
		return 0, 0
	}
	// The path line passes through the local origin, so the point-to-line
	// distance is |le × p| / |le|; hoist the 1/|le| factor out of the ~10
	// distance evaluations this function performs.
	norm := math.Hypot(le.X, le.Y)
	degenerate := norm < geom.Eps
	var inv float64
	if !degenerate {
		inv = 1 / norm
	}
	distLine := func(p geom.Vec) float64 {
		if degenerate {
			return math.Hypot(p.X, p.Y)
		}
		return math.Abs(le.X*p.Y-le.Y*p.X) * inv
	}
	distUB := distLine
	if metric == MetricSegment {
		distUB = func(p geom.Vec) float64 { return geom.DistToSegment(p, geom.Vec{}, le) }
	}
	if !q.sigValid {
		q.refreshSignificant()
	}
	cn, cf := q.cn, q.cf
	l1, l2, u1, u2, clipOK := q.l1, q.l2, q.u1, q.u2, q.clipOK

	// Lower bound: a data point lies on each bounding line's chord and on
	// each box edge, all on one side of any line through the origin (two
	// origin lines only meet at the origin), so the distance function is
	// affine over each chord/edge and endpoint minima are valid witnesses.
	dlb = math.Max(
		math.Min(distLine(l1), distLine(l2)),
		math.Min(distLine(u1), distLine(u2)),
	)

	corners := q.box.Corners()
	if !degenerate && q.lineInQuadrant(theta) {
		// Theorems 5.3 / 5.4: line in the quadrant.
		dlb = math.Max(dlb, math.Max(distLine(cn), distLine(cf)))
		if clipOK {
			dub = max4(distUB(l1), distUB(l2), distUB(u1), distUB(u2))
			if metric == MetricSegment {
				dub = math.Max(dub, math.Max(distUB(cn), distUB(cf)))
			}
		} else {
			// Clip fallback: the substituted witness points are not hull
			// vertices, so revert to the always-valid Theorem 5.2 corners.
			dub = max4(distUB(corners[0]), distUB(corners[1]), distUB(corners[2]), distUB(corners[3]))
		}
		return dlb, dub
	}

	// Theorem 5.5: line not in the quadrant (or degenerate path line, for
	// which only the convex corner bound is safe).
	d0, d1, d2, d3 := distLine(corners[0]), distLine(corners[1]), distLine(corners[2]), distLine(corners[3])
	if !degenerate {
		dlb = math.Max(dlb, thirdLargest(d0, d1, d2, d3))
	} else {
		// Degenerate path line: distances are to the origin point; the
		// chord-endpoint argument no longer applies. Within one quadrant
		// the near corner is the closest point of the whole box region to
		// the origin, so it floors every tracked point's distance.
		dlb = distLine(cn)
	}
	dub = max4(distUB(corners[0]), distUB(corners[1]), distUB(corners[2]), distUB(corners[3]))
	return dlb, dub
}

// significantPoints returns the up-to-eight significant points of the
// quadrant (four corners plus four bounding-line intersections); used for
// diagnostics and to verify the paper's ≤ 32-point state claim.
func (q *quadrant) significantPoints() []geom.Vec {
	if q.n == 0 {
		return nil
	}
	c := q.box.Corners()
	l1, l2, u1, u2, _ := q.intersections()
	return []geom.Vec{c[0], c[1], c[2], c[3], l1, l2, u1, u2}
}

func max4(a, b, c, d float64) float64 {
	return math.Max(math.Max(a, b), math.Max(c, d))
}

func min4(a, b, c, d float64) float64 {
	return math.Min(math.Min(a, b), math.Min(c, d))
}

// thirdLargest returns the third largest of four values.
func thirdLargest(a, b, c, d float64) float64 {
	v := [4]float64{a, b, c, d}
	// Insertion sort of four elements, descending.
	for i := 1; i < 4; i++ {
		for j := i; j > 0 && v[j] > v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
	return v[2]
}
