package core

import (
	"math"

	"github.com/trajcomp/bqs/internal/geom"
)

// quadrant is one Bounded Quadrant System: the bounding structure for the
// tracked points of the current segment that fall into one quadrant of the
// local (segment-start-anchored, optionally rotated) coordinate system.
//
// It maintains the minimal bounding box and the two angular bounding lines
// (Section V-B) represented by their extreme-angle witness data points pMin
// and pMax: the witness itself is a point on the bounding ray through the
// origin, so no angle value is ever materialized. Angle ordering within one
// quadrant is decided by cross-product sign — the angular span of a
// quadrant is under π/2, so for tracked points u and v the canonical angle
// of v is smaller than that of u exactly when u × v < 0. This keeps the
// per-point hot path free of trigonometric calls (no Atan2 on insert, no
// Sincos when clipping the bounding lines).
type quadrant struct {
	idx        int // 0..3, fixed at init
	n          int // tracked points
	box        geom.Box
	pMin, pMax geom.Vec // witness points attaining the extreme angles

	// Significant points are a function of the structure only (not of the
	// candidate end point), so they are cached and recomputed lazily after
	// inserts. This keeps the per-point decision to a handful of distance
	// evaluations.
	sigValid       bool
	l1, l2, u1, u2 geom.Vec
	clipOK         bool
	cn, cf         geom.Vec
}

// quadrantOf returns the quadrant index of a local point: 0 for x≥0∧y≥0,
// 1 for x<0∧y≥0, 2 for x<0∧y<0, 3 for x≥0∧y<0. The conventions on the axes
// are arbitrary but must be stable, which these are.
func quadrantOf(v geom.Vec) int {
	if v.Y >= 0 {
		if v.X >= 0 {
			return 0
		}
		return 1
	}
	if v.X < 0 {
		return 2
	}
	return 3
}

// reset empties the quadrant. Only the fields consulted while n == 0 are
// cleared: witnesses and cached significant points are rewritten before
// first use (insert seeds them at n == 0, refreshSignificant recomputes
// them behind sigValid), so a full struct wipe per segment restart would
// be wasted copying on the cut-heavy hot path.
func (q *quadrant) reset(idx int) {
	q.idx = idx
	q.n = 0
	q.box = geom.EmptyBox()
	q.sigValid = false
}

// insert adds a local point to the bounding structure. Within one quadrant
// canonical angles are contiguous (no 0/2π wraparound is possible) and the
// angular span is below π/2, so the cross-product sign decides the min/max
// ordering exactly, with no Atan2.
func (q *quadrant) insert(v geom.Vec) {
	if q.n == 0 {
		q.pMin, q.pMax = v, v
	} else {
		if q.pMin.Cross(v) < 0 {
			q.pMin = v
		}
		if q.pMax.Cross(v) > 0 {
			q.pMax = v
		}
	}
	q.box.Extend(v)
	q.n++
	q.sigValid = false
}

// refreshSignificant recomputes the cached significant points.
func (q *quadrant) refreshSignificant() {
	q.l1, q.l2, q.u1, q.u2, q.clipOK = q.computeIntersections()
	q.cn, q.cf = q.nearFarCorners()
	q.sigValid = true
}

// nearFarCorners returns the bounding-box corners nearest to and farthest
// from the origin; which corners those are is fixed by the quadrant
// (Section V, "Near-far Corner Distances").
func (q *quadrant) nearFarCorners() (cn, cf geom.Vec) {
	b := q.box
	switch q.idx {
	case 0:
		return b.Min, b.Max
	case 1:
		return geom.Vec{X: b.Max.X, Y: b.Min.Y}, geom.Vec{X: b.Min.X, Y: b.Max.Y}
	case 2:
		return b.Max, b.Min
	default: // 3
		return geom.Vec{X: b.Min.X, Y: b.Max.Y}, geom.Vec{X: b.Max.X, Y: b.Min.Y}
	}
}

// lineInQuadrant reports whether a path line with direction dir (any
// nonzero representative) is "in" this quadrant per the paper's
// definition: the direction angle mod π falls inside the quadrant's
// half-open angular range. A line is therefore in exactly two opposite
// quadrants. The test is exact sign arithmetic instead of angle folding:
// the reduced angle lies in [0, π/2) — quadrants 0/2 — iff the components
// share a sign or the direction is on the x axis, and in [π/2, π) —
// quadrants 1/3 — iff the signs differ or the direction is on the y axis.
func (q *quadrant) lineInQuadrant(dir geom.Vec) bool {
	prod := dir.X * dir.Y
	if q.idx == 0 || q.idx == 2 {
		return prod > 0 || dir.Y == 0
	}
	return prod < 0 || dir.X == 0
}

// intersections returns the (cached) entry/exit points of the lower and
// upper bounding lines with the bounding box (the significant points l1,
// l2, u1, u2). When a clip degenerates numerically the extreme witness
// point is substituted and ok is false, signalling that the caller must
// fall back to the corner-based upper bound.
func (q *quadrant) intersections() (l1, l2, u1, u2 geom.Vec, ok bool) {
	if !q.sigValid {
		q.refreshSignificant()
	}
	return q.l1, q.l2, q.u1, q.u2, q.clipOK
}

// computeIntersections clips both bounding lines against the box. The
// extreme witness points double as the ray directions: the clip is
// scale-invariant along the ray, so reconstructing a unit direction from
// the bounding angle (a Sincos per refresh) is unnecessary.
func (q *quadrant) computeIntersections() (l1, l2, u1, u2 geom.Vec, ok bool) {
	ok = true
	var okL, okU bool
	l1, l2, okL = q.box.ClipLineThroughOrigin(q.pMin)
	if !okL {
		l1, l2, ok = q.pMin, q.pMin, false
	}
	u1, u2, okU = q.box.ClipLineThroughOrigin(q.pMax)
	if !okU {
		u1, u2, ok = q.pMax, q.pMax, false
	}
	return l1, l2, u1, u2, ok
}

// bounds computes the per-quadrant lower and upper bounds on the maximum
// deviation of the tracked points from the path line through the local
// origin and the local end point le (Theorems 5.3, 5.4 and 5.5).
//
// Lower-bound terms always use the point-to-line distance: a witness data
// point p with line-distance ≥ dlb also has segment-distance ≥ dlb, so the
// same dlb is valid under both metrics. Upper-bound terms use the active
// metric; under MetricSegment the near/far corners join the intersection
// points per Equation 11, which together span the convex hull that contains
// every tracked point.
//
// The path line passes through the local origin, so the point-to-line
// distance is |le × p| / |le|; the 1/|le| factor is hoisted and the ~10
// distance evaluations are written out inline — the closure-based
// formulation kept the compiler from flattening them and is the other
// reason (besides the trig) this function used to dominate the decision
// loop.
//
// An empty quadrant contributes (0, 0).
func (q *quadrant) bounds(le geom.Vec, metric Metric) (dlb, dub float64) {
	if q.n == 0 {
		return 0, 0
	}
	norm := math.Hypot(le.X, le.Y)
	if norm < geom.Eps {
		return q.boundsDegenerate()
	}
	if !q.sigValid {
		q.refreshSignificant()
	}
	inv := 1 / norm

	dl1 := lineDist(le, inv, q.l1)
	dl2 := lineDist(le, inv, q.l2)
	du1 := lineDist(le, inv, q.u1)
	du2 := lineDist(le, inv, q.u2)

	// Lower bound: a data point lies on each bounding line's chord and on
	// each box edge, all on one side of any line through the origin (two
	// origin lines only meet at the origin), so the distance function is
	// affine over each chord/edge and endpoint minima are valid witnesses.
	dlb = math.Max(
		math.Min(dl1, dl2),
		math.Min(du1, du2),
	)

	if q.lineInQuadrant(le) {
		// Theorems 5.3 / 5.4: line in the quadrant.
		dcn := lineDist(le, inv, q.cn)
		dcf := lineDist(le, inv, q.cf)
		dlb = math.Max(dlb, math.Max(dcn, dcf))
		if !q.clipOK {
			// Clip fallback: the substituted witness points are not hull
			// vertices, so revert to the always-valid Theorem 5.2 corners.
			return dlb, q.cornerUB(le, inv, metric)
		}
		if metric == MetricSegment {
			dub = max4(
				geom.DistToSegment(q.l1, geom.Vec{}, le),
				geom.DistToSegment(q.l2, geom.Vec{}, le),
				geom.DistToSegment(q.u1, geom.Vec{}, le),
				geom.DistToSegment(q.u2, geom.Vec{}, le),
			)
			dub = math.Max(dub, math.Max(
				geom.DistToSegment(q.cn, geom.Vec{}, le),
				geom.DistToSegment(q.cf, geom.Vec{}, le),
			))
			return dlb, dub
		}
		return dlb, max4(dl1, dl2, du1, du2)
	}

	// Theorem 5.5: line not in the quadrant.
	c1 := geom.Vec{X: q.box.Max.X, Y: q.box.Min.Y}
	c3 := geom.Vec{X: q.box.Min.X, Y: q.box.Max.Y}
	d0 := lineDist(le, inv, q.box.Min)
	d1 := lineDist(le, inv, c1)
	d2 := lineDist(le, inv, q.box.Max)
	d3 := lineDist(le, inv, c3)
	dlb = math.Max(dlb, thirdLargest(d0, d1, d2, d3))
	if metric == MetricSegment {
		return dlb, q.cornerUB(le, inv, metric)
	}
	return dlb, max4(d0, d1, d2, d3)
}

// boundsDegenerate handles a degenerate path line (|le| below Eps), for
// which only the convex corner bound is safe: every distance degrades to
// the distance from the origin point — both metrics agree there, since the
// point-to-segment distance of a sub-Eps segment is its anchor distance.
// The chord-endpoint argument no longer applies, but within one quadrant
// the near corner is the closest point of the whole box region to the
// origin, so it floors every tracked point's distance.
func (q *quadrant) boundsDegenerate() (dlb, dub float64) {
	if !q.sigValid {
		q.refreshSignificant()
	}
	dlb = math.Hypot(q.cn.X, q.cn.Y)
	dub = max4(
		math.Hypot(q.box.Min.X, q.box.Min.Y),
		math.Hypot(q.box.Max.X, q.box.Min.Y),
		math.Hypot(q.box.Max.X, q.box.Max.Y),
		math.Hypot(q.box.Min.X, q.box.Max.Y),
	)
	return dlb, dub
}

// lineDist is the point-to-line distance |le × p| / |le| with the 1/|le|
// factor hoisted by the caller; small enough to inline, so the bound
// evaluations stay straight-line code while the formula lives in one
// place.
func lineDist(le geom.Vec, inv float64, p geom.Vec) float64 {
	return math.Abs(le.X*p.Y-le.Y*p.X) * inv
}

// cornerUB is the always-valid Theorem 5.2 upper bound over the four box
// corners under the active metric, with 1/|le| precomputed by the caller.
func (q *quadrant) cornerUB(le geom.Vec, inv float64, metric Metric) float64 {
	c1 := geom.Vec{X: q.box.Max.X, Y: q.box.Min.Y}
	c3 := geom.Vec{X: q.box.Min.X, Y: q.box.Max.Y}
	if metric == MetricSegment {
		return max4(
			geom.DistToSegment(q.box.Min, geom.Vec{}, le),
			geom.DistToSegment(c1, geom.Vec{}, le),
			geom.DistToSegment(q.box.Max, geom.Vec{}, le),
			geom.DistToSegment(c3, geom.Vec{}, le),
		)
	}
	return max4(
		lineDist(le, inv, q.box.Min),
		lineDist(le, inv, c1),
		lineDist(le, inv, q.box.Max),
		lineDist(le, inv, c3),
	)
}

// significantPoints returns the up-to-eight significant points of the
// quadrant (four corners plus four bounding-line intersections); used for
// diagnostics and to verify the paper's ≤ 32-point state claim.
func (q *quadrant) significantPoints() []geom.Vec {
	if q.n == 0 {
		return nil
	}
	c := q.box.Corners()
	l1, l2, u1, u2, _ := q.intersections()
	return []geom.Vec{c[0], c[1], c[2], c[3], l1, l2, u1, u2}
}

func max4(a, b, c, d float64) float64 {
	return math.Max(math.Max(a, b), math.Max(c, d))
}

// thirdLargest returns the third largest of four values.
func thirdLargest(a, b, c, d float64) float64 {
	v := [4]float64{a, b, c, d}
	// Insertion sort of four elements, descending.
	for i := 1; i < 4; i++ {
		for j := i; j > 0 && v[j] > v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
	return v[2]
}
