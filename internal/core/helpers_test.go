package core

import (
	"math"
	"math/rand"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// randomWalk generates a correlated random walk with n points, step scale
// step metres and occasional dwell phases, timestamps 1 s apart. It is the
// shared workload for correctness property tests.
func randomWalk(rng *rand.Rand, n int, step float64) []Point {
	pts := make([]Point, n)
	x, y := rng.NormFloat64()*100, rng.NormFloat64()*100
	heading := rng.Float64() * 2 * math.Pi
	dwell := 0
	for i := 0; i < n; i++ {
		if dwell > 0 {
			dwell--
			// GPS jitter around the dwell location.
			pts[i] = Point{X: x + rng.NormFloat64()*step/10, Y: y + rng.NormFloat64()*step/10, T: float64(i)}
			continue
		}
		if rng.Intn(40) == 0 {
			dwell = rng.Intn(20)
		}
		heading += rng.NormFloat64() * 0.4
		speed := step * (0.2 + rng.Float64())
		x += math.Cos(heading) * speed
		y += math.Sin(heading) * speed
		pts[i] = Point{X: x, Y: y, T: float64(i)}
	}
	return pts
}

// segmentsOf splits the original points into compressed segments using the
// key points (matched by timestamp, which the generators keep unique) and
// returns, for each consecutive key pair, the slice of original points with
// timestamps in between (exclusive).
func segmentsOf(orig, keys []Point) [][3]interface{} {
	var out [][3]interface{}
	ki := 0
	for ki+1 < len(keys) {
		s, e := keys[ki], keys[ki+1]
		var interior []Point
		for _, p := range orig {
			if p.T > s.T && p.T < e.T {
				interior = append(interior, p)
			}
		}
		out = append(out, [3]interface{}{s, e, interior})
		ki++
	}
	return out
}

// maxSegmentError returns the largest deviation of any original point from
// its compressed segment, over the whole trajectory.
func maxSegmentError(orig, keys []Point, metric Metric) float64 {
	var worst float64
	for _, seg := range segmentsOf(orig, keys) {
		s := seg[0].(Point)
		e := seg[1].(Point)
		interior := seg[2].([]Point)
		if d := MaxDeviation(interior, s, e, metric); d > worst {
			worst = d
		}
	}
	return worst
}
