package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/trajcomp/bqs/internal/geom"
)

// This file pins the trig-free quadrant rewrite to the original
// angle-based formulation: refQuadrant is a faithful copy of the previous
// implementation (Atan2 on insert, Sincos when clipping the bounding
// lines, angle folding for the line-in-quadrant test, closure-based
// distance evaluations). Fuzzed traces must produce the same extreme
// witnesses, the same bounds and — decisive for the emitted key points —
// the same include/cut decisions.

// refQuadrant is the pre-rewrite angle-based bounding structure.
type refQuadrant struct {
	idx                int
	n                  int
	box                geom.Box
	thetaMin, thetaMax float64
	pMin, pMax         geom.Vec
}

func (q *refQuadrant) reset(idx int) {
	*q = refQuadrant{idx: idx, box: geom.EmptyBox()}
}

func (q *refQuadrant) insert(v geom.Vec) {
	a := v.Angle()
	if q.n == 0 {
		q.thetaMin, q.thetaMax = a, a
		q.pMin, q.pMax = v, v
	} else {
		if a < q.thetaMin {
			q.thetaMin, q.pMin = a, v
		}
		if a > q.thetaMax {
			q.thetaMax, q.pMax = a, v
		}
	}
	q.box.Extend(v)
	q.n++
}

func (q *refQuadrant) lineInQuadrant(theta float64) bool {
	m := math.Mod(geom.NormalizeAngle(theta), math.Pi)
	if q.idx == 0 || q.idx == 2 {
		return m < math.Pi/2
	}
	return m >= math.Pi/2
}

func (q *refQuadrant) computeIntersections() (l1, l2, u1, u2 geom.Vec, ok bool) {
	ok = true
	dirMin := geom.Vec{X: math.Cos(q.thetaMin), Y: math.Sin(q.thetaMin)}
	dirMax := geom.Vec{X: math.Cos(q.thetaMax), Y: math.Sin(q.thetaMax)}
	var okL, okU bool
	l1, l2, okL = q.box.ClipLineThroughOrigin(dirMin)
	if !okL {
		l1, l2, ok = q.pMin, q.pMin, false
	}
	u1, u2, okU = q.box.ClipLineThroughOrigin(dirMax)
	if !okU {
		u1, u2, ok = q.pMax, q.pMax, false
	}
	return l1, l2, u1, u2, ok
}

func (q *refQuadrant) nearFarCorners() (cn, cf geom.Vec) {
	b := q.box
	switch q.idx {
	case 0:
		return b.Min, b.Max
	case 1:
		return geom.Vec{X: b.Max.X, Y: b.Min.Y}, geom.Vec{X: b.Min.X, Y: b.Max.Y}
	case 2:
		return b.Max, b.Min
	default:
		return geom.Vec{X: b.Min.X, Y: b.Max.Y}, geom.Vec{X: b.Max.X, Y: b.Min.Y}
	}
}

func (q *refQuadrant) bounds(le geom.Vec, metric Metric) (dlb, dub float64) {
	if q.n == 0 {
		return 0, 0
	}
	theta := le.Angle()
	norm := math.Hypot(le.X, le.Y)
	degenerate := norm < geom.Eps
	var inv float64
	if !degenerate {
		inv = 1 / norm
	}
	distLine := func(p geom.Vec) float64 {
		if degenerate {
			return math.Hypot(p.X, p.Y)
		}
		return math.Abs(le.X*p.Y-le.Y*p.X) * inv
	}
	distUB := distLine
	if metric == MetricSegment {
		distUB = func(p geom.Vec) float64 { return geom.DistToSegment(p, geom.Vec{}, le) }
	}
	l1, l2, u1, u2, clipOK := q.computeIntersections()
	cn, cf := q.nearFarCorners()

	dlb = math.Max(
		math.Min(distLine(l1), distLine(l2)),
		math.Min(distLine(u1), distLine(u2)),
	)

	corners := q.box.Corners()
	if !degenerate && q.lineInQuadrant(theta) {
		dlb = math.Max(dlb, math.Max(distLine(cn), distLine(cf)))
		if clipOK {
			dub = max4(distUB(l1), distUB(l2), distUB(u1), distUB(u2))
			if metric == MetricSegment {
				dub = math.Max(dub, math.Max(distUB(cn), distUB(cf)))
			}
		} else {
			dub = max4(distUB(corners[0]), distUB(corners[1]), distUB(corners[2]), distUB(corners[3]))
		}
		return dlb, dub
	}

	d0, d1, d2, d3 := distLine(corners[0]), distLine(corners[1]), distLine(corners[2]), distLine(corners[3])
	if !degenerate {
		dlb = math.Max(dlb, thirdLargest(d0, d1, d2, d3))
	} else {
		dlb = distLine(cn)
	}
	dub = max4(distUB(corners[0]), distUB(corners[1]), distUB(corners[2]), distUB(corners[3]))
	return dlb, dub
}

// quadrantPoint draws a random point inside quadrant idx, occasionally on
// an axis to exercise boundary handling.
func quadrantPoint(rng *rand.Rand, idx int) geom.Vec {
	sx := []float64{1, -1, -1, 1}[idx]
	sy := []float64{1, 1, -1, -1}[idx]
	for {
		x := rng.Float64() * 100
		y := rng.Float64() * 100
		if rng.Intn(16) == 0 {
			x = 0
		}
		if rng.Intn(16) == 0 {
			y = 0
		}
		p := geom.V(sx*x, sy*y)
		if p != (geom.Vec{}) && quadrantOf(p) == idx {
			return p
		}
	}
}

// relClose compares two bound values with a relative tolerance that
// absorbs the last-ulp differences between the Sincos round-trip of the
// reference and the direct witness arithmetic of the rewrite.
func relClose(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Max(math.Abs(a), math.Abs(b)))
}

// TestQuadrantDifferentialBounds fuzzes insert sequences and end points
// through both implementations and requires matching witnesses and bounds.
func TestQuadrantDifferentialBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(20260726))
	for trial := 0; trial < 20000; trial++ {
		idx := rng.Intn(4)
		var q quadrant
		var r refQuadrant
		q.reset(idx)
		r.reset(idx)
		n := 1 + rng.Intn(16)
		for i := 0; i < n; i++ {
			p := quadrantPoint(rng, idx)
			q.insert(p)
			r.insert(p)
		}
		if q.pMin != r.pMin || q.pMax != r.pMax {
			t.Fatalf("trial %d quad %d: witnesses diverge: cross (%v,%v) vs angle (%v,%v)",
				trial, idx, q.pMin, q.pMax, r.pMin, r.pMax)
		}
		e := geom.V(rng.NormFloat64()*80, rng.NormFloat64()*80)
		switch rng.Intn(12) {
		case 0:
			e = geom.Vec{}
		case 1:
			e = e.Scale(1e-8)
		case 2:
			e = geom.V(e.X, 0)
		case 3:
			e = geom.V(0, e.Y)
		}
		for _, m := range []Metric{MetricLine, MetricSegment} {
			lb, ub := q.bounds(e, m)
			rlb, rub := r.bounds(e, m)
			if !relClose(lb, rlb) || !relClose(ub, rub) {
				t.Fatalf("trial %d quad %d metric %v e=%v: bounds diverge: cross (%v,%v) vs angle (%v,%v)",
					trial, idx, m, e, lb, ub, rlb, rub)
			}
		}
	}
}

// TestQuadrantDifferentialDecisions replays fuzzed random-walk traces
// through a minimal copy of the compressor decision loop, once backed by
// the cross-based quadrants and once by the angle-based reference, and
// requires the exact same include/cut sequence — the property that makes
// the emitted key points identical.
func TestQuadrantDifferentialDecisions(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const tol = 10.0
	for trial := 0; trial < 40; trial++ {
		pts := randomWalk(rng, 2000, 5+rng.Float64()*20)
		metric := []Metric{MetricLine, MetricSegment}[trial%2]

		var quads [4]quadrant
		var refs [4]refQuadrant
		resetAll := func() {
			for i := range quads {
				quads[i].reset(i)
				refs[i].reset(i)
			}
		}
		resetAll()

		origin := pts[0].Vec()
		for i, p := range pts[1:] {
			le := p.Vec().Sub(origin)
			var lb, ub, rlb, rub float64
			for qi := range quads {
				if quads[qi].n > 0 {
					l, u := quads[qi].bounds(le, metric)
					lb, ub = math.Max(lb, l), math.Max(ub, u)
				}
				if refs[qi].n > 0 {
					l, u := refs[qi].bounds(le, metric)
					rlb, rub = math.Max(rlb, l), math.Max(rub, u)
				}
			}
			// FBQS decision: include iff ub ≤ d, cut otherwise (covering
			// both the dlb > d and the conservative uncertain branches).
			include := ub <= tol
			refInclude := rub <= tol
			if include != refInclude {
				t.Fatalf("trial %d point %d: decisions diverge (cross ub=%v, angle ub=%v, lb %v vs %v)",
					trial, i, ub, rub, lb, rlb)
			}
			if include {
				if le.Norm() > tol { // Theorem 5.1: near points are never tracked
					qi := quadrantOf(le)
					quads[qi].insert(le)
					refs[qi].insert(le)
				}
			} else {
				origin = p.Vec()
				resetAll()
			}
		}
	}
}
