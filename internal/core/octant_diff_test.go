package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/trajcomp/bqs/internal/geom"
)

// refOctant is the pre-rewrite angle-based 3-D bounding structure: Atan2
// per insert for azimuth and inclination, Sincos/Tan when building the
// bounding-plane normals. The trig-free octant must agree with it on the
// witnesses it selects and (up to clip rounding at the normals' last ulp)
// on the bounds it produces.
type refOctant struct {
	idx int
	n   int

	prism                                    geom.Box3
	wMinX, wMaxX, wMinY, wMaxY, wMinZ, wMaxZ geom.Vec3

	psiMin, psiMax   float64
	wPsiMin, wPsiMax geom.Vec3
	psiSet           bool

	phiMin, phiMax   float64
	wPhiMin, wPhiMax geom.Vec3
}

func (o *refOctant) signs() (sx, sy, sz float64) {
	sx = []float64{1, -1, -1, 1}[o.idx%4]
	sy = []float64{1, 1, -1, -1}[o.idx%4]
	sz = 1
	if o.idx >= 4 {
		sz = -1
	}
	return sx, sy, sz
}

func (o *refOctant) inclination(p geom.Vec3) float64 {
	sx, sy, sz := o.signs()
	den := sx*p.X + sy*p.Y
	return math.Atan2(math.Sqrt2*sz*p.Z, den)
}

func (o *refOctant) reset(idx int) {
	*o = refOctant{idx: idx, prism: geom.EmptyBox3()}
}

func (o *refOctant) insert(p geom.Vec3) {
	if o.n == 0 {
		o.wMinX, o.wMaxX, o.wMinY, o.wMaxY, o.wMinZ, o.wMaxZ = p, p, p, p, p, p
	} else {
		if p.X < o.prism.Min.X {
			o.wMinX = p
		}
		if p.X > o.prism.Max.X {
			o.wMaxX = p
		}
		if p.Y < o.prism.Min.Y {
			o.wMinY = p
		}
		if p.Y > o.prism.Max.Y {
			o.wMaxY = p
		}
		if p.Z < o.prism.Min.Z {
			o.wMinZ = p
		}
		if p.Z > o.prism.Max.Z {
			o.wMaxZ = p
		}
	}
	o.prism.Extend(p)

	if p.XY().Norm() > geom.Eps {
		psi := p.XY().Angle()
		if !o.psiSet {
			o.psiMin, o.psiMax = psi, psi
			o.wPsiMin, o.wPsiMax = p, p
			o.psiSet = true
		} else {
			if psi < o.psiMin {
				o.psiMin, o.wPsiMin = psi, p
			}
			if psi > o.psiMax {
				o.psiMax, o.wPsiMax = psi, p
			}
		}
	}

	phi := o.inclination(p)
	if o.n == 0 {
		o.phiMin, o.phiMax = phi, phi
		o.wPhiMin, o.wPhiMax = p, p
	} else {
		if phi < o.phiMin {
			o.phiMin, o.wPhiMin = phi, p
		}
		if phi > o.phiMax {
			o.phiMax, o.wPhiMax = phi, p
		}
	}
	o.n++
}

func (o *refOctant) halfSpaces() []geom.Plane {
	var hs []geom.Plane
	if o.psiSet {
		sMin, cMin := math.Sincos(o.psiMin)
		hs = append(hs, geom.Plane{N: geom.V3(sMin, -cMin, 0)})
		sMax, cMax := math.Sincos(o.psiMax)
		hs = append(hs, geom.Plane{N: geom.V3(-sMax, cMax, 0)})
	}
	sx, sy, sz := o.signs()
	if o.phiMax < math.Pi/2-1e-9 {
		t := math.Tan(o.phiMax)
		hs = append(hs, geom.Plane{N: geom.V3(-t*sx, -t*sy, math.Sqrt2*sz)})
	}
	if o.phiMin > 1e-9 {
		t := math.Tan(o.phiMin)
		hs = append(hs, geom.Plane{N: geom.V3(t*sx, t*sy, -math.Sqrt2*sz)})
	}
	return hs
}

func (o *refOctant) computeSignificant() []geom.Vec3 {
	hs := o.halfSpaces()
	var out []geom.Vec3
	for _, face := range o.prism.Faces() {
		poly := face
		for _, h := range hs {
			poly = geom.ClipPolygonPlane3(poly, h)
			if len(poly) == 0 {
				break
			}
		}
		out = append(out, poly...)
	}
	if len(out) == 0 {
		c := o.prism.Corners()
		return c[:]
	}
	if o.prism.Contains(geom.Vec3{}) {
		out = append(out, geom.Vec3{})
	}
	return out
}

func (o *refOctant) witnessSet() []geom.Vec3 {
	w := []geom.Vec3{o.wMinX, o.wMaxX, o.wMinY, o.wMaxY, o.wMinZ, o.wMaxZ,
		o.wPhiMin, o.wPhiMax}
	if o.psiSet {
		w = append(w, o.wPsiMin, o.wPsiMax)
	}
	return w
}

func (o *refOctant) bounds(le geom.Vec3, metric Metric) (dlb, dub float64) {
	if o.n == 0 {
		return 0, 0
	}
	origin := geom.Vec3{}
	distLB := func(p geom.Vec3) float64 { return geom.DistToLine3(p, origin, le) }
	distUB := distLB
	if metric == MetricSegment {
		distUB = func(p geom.Vec3) float64 { return geom.DistToSegment3(p, origin, le) }
	}
	for _, w := range o.witnessSet() {
		if d := distLB(w); d > dlb {
			dlb = d
		}
	}
	for _, s := range o.computeSignificant() {
		if d := distUB(s); d > dub {
			dub = d
		}
	}
	if metric == MetricLine && dub < dlb {
		dub = dlb
	} else if metric == MetricSegment {
		for _, w := range o.witnessSet() {
			if d := distUB(w); d > dub {
				dub = d
			}
		}
	}
	return dlb, dub
}

// octantPoint draws a random point inside octant idx, occasionally on an
// axis or in the XY plane.
func octantPoint(rng *rand.Rand, idx int) geom.Vec3 {
	sx := []float64{1, -1, -1, 1}[idx%4]
	sy := []float64{1, 1, -1, -1}[idx%4]
	sz := 1.0
	if idx >= 4 {
		sz = -1
	}
	for {
		x := rng.Float64() * 50
		y := rng.Float64() * 50
		z := rng.Float64() * 50
		switch rng.Intn(10) {
		case 0:
			z = 0
		case 1:
			x, y = 0, 0
		case 2:
			x = 0
		}
		p := geom.V3(sx*x, sy*y, sz*z)
		if p != (geom.Vec3{}) && octantOf(p) == idx {
			return p
		}
	}
}

// TestOctantDifferentialBounds fuzzes insert sequences through the
// trig-free octant and the angle-based reference. Witness selection must
// match exactly; bounds must match up to the clip rounding introduced by
// the (differently scaled but identically oriented) plane normals.
func TestOctantDifferentialBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 4000; trial++ {
		idx := rng.Intn(8)
		var o octant
		var r refOctant
		o.reset(idx)
		r.reset(idx)
		n := 1 + rng.Intn(12)
		for i := 0; i < n; i++ {
			p := octantPoint(rng, idx)
			o.insert(p)
			r.insert(p)
		}
		if o.wPsiMin != r.wPsiMin || o.wPsiMax != r.wPsiMax {
			t.Fatalf("trial %d oct %d: azimuth witnesses diverge: (%v,%v) vs (%v,%v)",
				trial, idx, o.wPsiMin, o.wPsiMax, r.wPsiMin, r.wPsiMax)
		}
		if o.wPhiMin != r.wPhiMin || o.wPhiMax != r.wPhiMax {
			t.Fatalf("trial %d oct %d: inclination witnesses diverge: (%v,%v) vs (%v,%v)",
				trial, idx, o.wPhiMin, o.wPhiMax, r.wPhiMin, r.wPhiMax)
		}
		le := geom.V3(rng.NormFloat64()*40, rng.NormFloat64()*40, rng.NormFloat64()*40)
		if rng.Intn(10) == 0 {
			le = geom.Vec3{}
		}
		for _, m := range []Metric{MetricLine, MetricSegment} {
			lb, ub := o.bounds(le, m)
			rlb, rub := r.bounds(le, m)
			tol := 1e-6 * (1 + math.Max(ub, rub))
			if math.Abs(lb-rlb) > tol || math.Abs(ub-rub) > tol {
				t.Fatalf("trial %d oct %d metric %v le=%v: bounds diverge: (%v,%v) vs (%v,%v)",
					trial, idx, m, le, lb, ub, rlb, rub)
			}
		}
	}
}
