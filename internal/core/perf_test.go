package core

import (
	"math/rand"
	"testing"

	"github.com/trajcomp/bqs/internal/geom"
)

// The "on the go" promise requires the steady-state decision loop to stay
// off the allocator entirely: these assertions pin fast-mode Push and the
// quadrant bound evaluation at 0 allocs/op, so an accidental closure or
// escaping slice shows up as a test failure, not just a benchmark drift.

func TestPushFastZeroAllocs(t *testing.T) {
	c, err := NewCompressor(Config{Tolerance: 10, Mode: ModeFast, RotationWarmup: -1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	pts := randomWalk(rng, 4096, 15)
	// Reach steady state: the warmup slice is at capacity and a few
	// segments (including cuts) have been processed.
	for _, p := range pts {
		c.Push(p)
	}
	i := 0
	allocs := testing.AllocsPerRun(2000, func() {
		c.Push(pts[i%len(pts)])
		i++
	})
	if allocs != 0 {
		t.Fatalf("steady-state fast-mode Push = %v allocs/op, want 0", allocs)
	}
}

func TestQuadrantBoundsZeroAllocs(t *testing.T) {
	var q quadrant
	q.reset(0)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 12; i++ {
		q.insert(quadrantPoint(rng, 0))
	}
	ends := [4]geom.Vec{geom.V(30, 40), geom.V(-25, 60), geom.V(80, 0), geom.V(1e-12, 0)}
	i := 0
	allocs := testing.AllocsPerRun(2000, func() {
		e := ends[i%len(ends)]
		q.bounds(e, MetricLine)
		q.bounds(e, MetricSegment)
		i++
	})
	if allocs != 0 {
		t.Fatalf("quadrant bounds = %v allocs/op, want 0", allocs)
	}
}

// benchmarkCorePush drives a single compressor over a pre-generated
// correlated random walk, one fix per op; SetBytes(24) makes the reported
// MB/s convertible to fixes/s (24 bytes per fix) for the benchmark JSON
// emitter.
func benchmarkCorePush(b *testing.B, mode Mode) {
	b.Helper()
	rng := rand.New(rand.NewSource(3))
	pts := randomWalk(rng, 1<<14, 15)
	c, err := NewCompressor(Config{Tolerance: 10, Mode: mode, RotationWarmup: -1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Push(pts[i&(1<<14-1)])
	}
}

func BenchmarkCorePushFast(b *testing.B)  { benchmarkCorePush(b, ModeFast) }
func BenchmarkCorePushExact(b *testing.B) { benchmarkCorePush(b, ModeExact) }

func BenchmarkQuadrantBounds(b *testing.B) {
	var q quadrant
	q.reset(0)
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 12; i++ {
		q.insert(quadrantPoint(rng, 0))
	}
	ends := make([]geom.Vec, 64)
	for i := range ends {
		ends[i] = geom.V(rng.NormFloat64()*60, rng.NormFloat64()*60)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.bounds(ends[i&63], MetricLine)
	}
}
