package core

import (
	"math"

	"github.com/trajcomp/bqs/internal/geom"
)

// Compressor is the streaming BQS/FBQS trajectory compressor. Feed points
// in temporal order with Push; each Push returns at most one finalized key
// point. Flush terminates the trajectory, emitting the final key point, and
// leaves the compressor ready for a new trajectory (statistics accumulate
// across trajectories; use Reset to clear everything).
//
// The emitted key points, in order, form the compressed trajectory: the
// first pushed point, every segment cut, and the flush point. Consecutive
// key points delimit segments that satisfy the configured deviation bound.
//
// A Compressor is not safe for concurrent use.
type Compressor struct {
	cfg   Config
	stats Stats

	started  bool
	origin   Point // current segment start s (local coordinate origin)
	lastInc  Point // last point verified as a valid segment end
	lastEmit Point
	haveEmit bool

	rot            float64 // data-centric rotation angle φ
	rotSin, rotCos float64 // cached Sincos(-rot)
	warmupDone     bool    // quadrant structures active
	warmup         []Point // far points buffered before rotation is fixed

	quads  [4]quadrant
	buffer []Point // exact mode: tracked far points for deviation scans
}

// NewCompressor returns a Compressor for the given configuration.
func NewCompressor(cfg Config) (*Compressor, error) {
	cfg, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	c := &Compressor{cfg: cfg}
	if cfg.RotationWarmup > 0 {
		c.warmup = make([]Point, 0, cfg.RotationWarmup)
	}
	c.startSegment(Point{})
	c.started = false
	return c, nil
}

// Config returns the effective configuration.
func (c *Compressor) Config() Config { return c.cfg }

// Stats returns the accumulated decision statistics.
func (c *Compressor) Stats() Stats { return c.stats }

// Tolerance returns the deviation bound in metres.
func (c *Compressor) Tolerance() float64 { return c.cfg.Tolerance }

// BufferedPoints returns the number of points currently buffered for exact
// deviation scans (always ≤ RotationWarmup in fast mode).
func (c *Compressor) BufferedPoints() int { return len(c.buffer) + len(c.warmup) }

// SignificantPointCount returns the number of significant points currently
// held across all quadrant structures; the paper bounds this by 32
// (≤ 4 corners + 4 intersections per quadrant).
func (c *Compressor) SignificantPointCount() int {
	n := 0
	for i := range c.quads {
		n += len(c.quads[i].significantPoints())
	}
	return n
}

// Reset clears all state and statistics.
func (c *Compressor) Reset() {
	c.stats = Stats{}
	c.haveEmit = false
	c.startSegment(Point{})
	c.started = false
}

// startSegment re-anchors the local coordinate system at p and clears all
// per-segment state.
func (c *Compressor) startSegment(p Point) {
	c.started = true
	c.origin = p
	c.lastInc = p
	c.rot, c.rotSin, c.rotCos = 0, 0, 1
	c.warmupDone = c.cfg.RotationWarmup == 0
	c.warmup = c.warmup[:0]
	c.buffer = c.buffer[:0]
	for i := range c.quads {
		c.quads[i].reset(i)
	}
}

// emit records kp as an emitted key point.
func (c *Compressor) emit(kp Point) {
	c.lastEmit = kp
	c.haveEmit = true
	c.stats.KeyPoints++
}

// local maps a raw point into the segment's local (translated, rotated)
// frame. The rotation's sin/cos are cached when the rotation is fixed.
func (c *Compressor) local(p Point) geom.Vec {
	x := p.X - c.origin.X
	y := p.Y - c.origin.Y
	if c.rot != 0 {
		x, y = x*c.rotCos-y*c.rotSin, x*c.rotSin+y*c.rotCos
	}
	return geom.Vec{X: x, Y: y}
}

// Push feeds the next point of the stream. It returns a finalized key point
// and true when a key point was emitted by this push (the first point of a
// trajectory, a segment cut, or an exact-mode buffer overflow cut).
// Non-finite points (NaN/Inf coordinates or timestamps — a failed GPS fix)
// are dropped and counted in Stats.DroppedPoints; they would otherwise
// poison every subsequent geometric decision.
func (c *Compressor) Push(p Point) (Point, bool) {
	if !p.IsFinite() {
		c.stats.DroppedPoints++
		return Point{}, false
	}
	c.stats.Points++
	if !c.started {
		c.startSegment(p)
		c.emit(p)
		return p, true
	}
	return c.process(p)
}

// Flush terminates the current trajectory, returning the final key point if
// one is due. The compressor is left ready for a new trajectory.
func (c *Compressor) Flush() (Point, bool) {
	if !c.started {
		return Point{}, false
	}
	kp := c.lastInc
	emit := !(c.haveEmit && c.lastEmit.Equal(kp))
	if emit {
		c.emit(kp)
	}
	c.startSegment(Point{})
	c.started = false
	return kp, emit
}

// process runs the BQS decision procedure for point e against the current
// segment.
func (c *Compressor) process(e Point) (Point, bool) {
	d := c.cfg.Tolerance

	if !c.warmupDone {
		return c.processWarmup(e)
	}

	// Compute the aggregated bounds over all non-empty quadrants
	// (Algorithm 1, lines 4-5).
	le := c.local(e)
	var dlb, dub float64
	tracked := 0
	for i := range c.quads {
		q := &c.quads[i]
		if q.n == 0 {
			continue
		}
		tracked += q.n
		qlb, qub := q.bounds(le, c.cfg.Metric)
		dlb = math.Max(dlb, qlb)
		dub = math.Max(dub, qub)
	}

	if c.cfg.Trace != nil && tracked > 0 {
		actual := math.NaN()
		if c.cfg.Mode == ModeExact {
			actual = MaxDeviation(c.buffer, c.origin, e, c.cfg.Metric)
		}
		c.cfg.Trace(TracePoint{Index: c.stats.Points, LB: dlb, UB: dub, Actual: actual})
	}

	switch {
	case dub <= d:
		// Algorithm 1 lines 6-7: no tracked point can deviate beyond d.
		c.stats.BoundIncludes++
		return c.include(e)
	case dlb > d:
		// Algorithm 1 lines 8-9: some tracked point must deviate beyond d.
		c.stats.BoundRestarts++
		return c.restartAt(e)
	}

	// dlb ≤ d < dub: uncertain.
	if c.cfg.Mode == ModeFast {
		// FBQS: cut conservatively instead of scanning a buffer.
		c.stats.UncertainRestarts++
		return c.restartAt(e)
	}
	c.stats.FullComputations++
	if MaxDeviation(c.buffer, c.origin, e, c.cfg.Metric) <= d {
		c.stats.ExactIncludes++
		return c.include(e)
	}
	c.stats.ExactRestarts++
	return c.restartAt(e)
}

// processWarmup handles points while the data-centric rotation buffer is
// still filling: decisions are exact scans over the tiny warmup buffer
// (constant work, ≤ RotationWarmup points).
func (c *Compressor) processWarmup(e Point) (Point, bool) {
	d := c.cfg.Tolerance
	if len(c.warmup) > 0 {
		c.stats.FullComputations++
		if MaxDeviation(c.warmup, c.origin, e, c.cfg.Metric) > d {
			c.stats.ExactRestarts++
			return c.restartAt(e)
		}
		c.stats.ExactIncludes++
	} else {
		c.stats.BoundIncludes++ // trivially safe: nothing tracked yet
	}
	return c.include(e)
}

// include accepts e into the current segment. Near points (within the
// tolerance of the segment start, Theorem 5.1) are never tracked: they can
// not push any future deviation beyond the tolerance. Far points enter the
// warmup buffer or the quadrant structures, and the exact-mode deviation
// buffer. Returns a key point when a MaxBuffer overflow forces a cut.
func (c *Compressor) include(e Point) (Point, bool) {
	c.lastInc = e
	ev := e.Vec().Sub(c.origin.Vec())
	if ev.Norm() <= c.cfg.Tolerance {
		return Point{}, false // Theorem 5.1: safe interior forever; untracked.
	}

	if !c.warmupDone {
		c.warmup = append(c.warmup, e)
		if len(c.warmup) >= c.cfg.RotationWarmup {
			c.finishWarmup()
		}
		return Point{}, false
	}

	lv := c.local(e)
	c.quads[quadrantOf(lv)].insert(lv)
	if c.cfg.Mode == ModeExact {
		c.buffer = append(c.buffer, e)
		if c.cfg.MaxBuffer > 0 && len(c.buffer) >= c.cfg.MaxBuffer {
			// Forced cut at the just-verified point, mirroring the windowed
			// baselines' buffer-full behaviour.
			c.stats.BufferOverflows++
			c.stats.Segments++
			c.emit(e)
			c.startSegment(e)
			return e, true
		}
	}
	return Point{}, false
}

// finishWarmup fixes the data-centric rotation from the centroid of the
// warmup points (Section V-D) and replays them into the quadrant
// structures.
func (c *Compressor) finishWarmup() {
	var centroid geom.Vec
	for _, w := range c.warmup {
		centroid = centroid.Add(w.Vec().Sub(c.origin.Vec()))
	}
	centroid = centroid.Scale(1 / float64(len(c.warmup)))
	if centroid.Norm() > geom.Eps {
		c.rot = centroid.Angle()
		c.rotSin, c.rotCos = math.Sincos(-c.rot)
	}
	c.warmupDone = true
	for _, w := range c.warmup {
		lw := c.local(w)
		c.quads[quadrantOf(lw)].insert(lw)
		if c.cfg.Mode == ModeExact {
			c.buffer = append(c.buffer, w)
		}
	}
	c.warmup = c.warmup[:0]
}

// restartAt ends the current segment at the last verified point, emits it,
// and opens a fresh segment there that absorbs e. In the fresh segment e is
// always includable: either it is within tolerance of the new origin or
// nothing is tracked yet, so no recursion is possible.
func (c *Compressor) restartAt(e Point) (Point, bool) {
	kp := c.lastInc
	c.stats.Segments++
	c.emit(kp)
	c.startSegment(kp)
	if _, emitted := c.include(e); emitted {
		// Unreachable: a fresh segment cannot overflow, but keep the
		// contract honest if configurations change.
		return kp, true
	}
	return kp, true
}

// CompressBatch runs a fresh pass over pts and returns the compressed key
// points. It is a convenience wrapper over Push/Flush that does not disturb
// accumulated statistics semantics (statistics keep accumulating).
func (c *Compressor) CompressBatch(pts []Point) []Point {
	if len(pts) == 0 {
		return nil
	}
	out := make([]Point, 0, 16)
	for _, p := range pts {
		if kp, ok := c.Push(p); ok {
			out = append(out, kp)
		}
	}
	if kp, ok := c.Flush(); ok {
		out = append(out, kp)
	}
	return out
}
