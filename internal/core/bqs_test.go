package core

import (
	"math"
	"math/rand"
	"testing"
)

func mustCompressor(t *testing.T, cfg Config) *Compressor {
	t.Helper()
	c, err := NewCompressor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewCompressorValidation(t *testing.T) {
	bad := []Config{
		{Tolerance: 0},
		{Tolerance: -1},
		{Tolerance: math.NaN()},
		{Tolerance: math.Inf(1)},
		{Tolerance: 1e-10}, // at/under geom.Eps: clipper-regime tolerances are rejected
		{Tolerance: 5, Mode: Mode(9)},
		{Tolerance: 5, Metric: Metric(9)},
		{Tolerance: 5, MaxBuffer: -1},
		{Tolerance: 5, RotationWarmup: 100000},
	}
	for i, cfg := range bad {
		if _, err := NewCompressor(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	c := mustCompressor(t, Config{Tolerance: 5, RotationWarmup: -1})
	if got := c.Config().RotationWarmup; got != DefaultRotationWarmup {
		t.Errorf("default warmup = %d, want %d", got, DefaultRotationWarmup)
	}
}

func TestEmptyAndSinglePoint(t *testing.T) {
	c := mustCompressor(t, Config{Tolerance: 5})
	if _, ok := c.Flush(); ok {
		t.Error("flush of empty stream emitted a point")
	}
	p := Point{X: 1, Y: 2, T: 3}
	kp, ok := c.Push(p)
	if !ok || !kp.Equal(p) {
		t.Fatalf("first push emitted (%v,%v), want the point itself", kp, ok)
	}
	if _, ok := c.Flush(); ok {
		t.Error("flush after single point emitted a duplicate")
	}
	if got := c.Stats().KeyPoints; got != 1 {
		t.Errorf("key points = %d, want 1", got)
	}
}

func TestStraightLineCompressesToTwoPoints(t *testing.T) {
	for _, mode := range []Mode{ModeExact, ModeFast} {
		for _, warmup := range []int{0, 5} {
			c := mustCompressor(t, Config{Tolerance: 5, Mode: mode, RotationWarmup: warmup})
			var keys []Point
			for i := 0; i < 1000; i++ {
				p := Point{X: float64(i) * 10, Y: 0, T: float64(i)}
				if kp, ok := c.Push(p); ok {
					keys = append(keys, kp)
				}
			}
			if kp, ok := c.Flush(); ok {
				keys = append(keys, kp)
			}
			if len(keys) != 2 {
				t.Errorf("mode %v warmup %d: straight line kept %d points, want 2", mode, warmup, len(keys))
			}
		}
	}
}

func TestNoisyStraightLineWithinTolerance(t *testing.T) {
	// Noise below the tolerance must still compress to 2 points under the
	// line metric when the noise never exceeds d.
	rng := rand.New(rand.NewSource(4))
	c := mustCompressor(t, Config{Tolerance: 10})
	var keys []Point
	n := 500
	for i := 0; i < n; i++ {
		p := Point{X: float64(i) * 10, Y: rng.Float64()*8 - 4, T: float64(i)}
		if kp, ok := c.Push(p); ok {
			keys = append(keys, kp)
		}
	}
	if kp, ok := c.Flush(); ok {
		keys = append(keys, kp)
	}
	// The end point's own y offset can push interior deviations slightly;
	// allow a small number of cuts but require massive compression.
	if len(keys) > 6 {
		t.Errorf("noisy line kept %d key points", len(keys))
	}
}

func TestRightAngleTurnKeepsCorner(t *testing.T) {
	c := mustCompressor(t, Config{Tolerance: 2, RotationWarmup: 0})
	var pts []Point
	for i := 0; i <= 100; i++ {
		pts = append(pts, Point{X: float64(i), Y: 0, T: float64(i)})
	}
	for i := 1; i <= 100; i++ {
		pts = append(pts, Point{X: 100, Y: float64(i), T: float64(100 + i)})
	}
	keys := c.CompressBatch(pts)
	if len(keys) < 3 {
		t.Fatalf("right angle compressed to %d points, want ≥ 3", len(keys))
	}
	// One key point must be near the corner (100, 0).
	found := false
	for _, k := range keys {
		if math.Hypot(k.X-100, k.Y) <= 4 {
			found = true
		}
	}
	if !found {
		t.Errorf("no key point near the corner; keys = %v", keys)
	}
	if err := maxSegmentError(pts, keys, MetricLine); err > 2+1e-9 {
		t.Errorf("corner trajectory error %v > tolerance", err)
	}
}

// The paper's central claim: the compressed trajectory is error-bounded.
// Exercise every mode/metric/rotation combination on many random walks.
func TestErrorBoundInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	modes := []Mode{ModeExact, ModeFast}
	metrics := []Metric{MetricLine, MetricSegment}
	warmups := []int{0, 3, 5}
	for trial := 0; trial < 60; trial++ {
		n := 200 + rng.Intn(400)
		step := []float64{2, 10, 50}[rng.Intn(3)]
		pts := randomWalk(rng, n, step)
		tol := []float64{2, 5, 10, 20}[rng.Intn(4)]
		for _, mode := range modes {
			for _, metric := range metrics {
				for _, w := range warmups {
					c := mustCompressor(t, Config{
						Tolerance: tol, Mode: mode, Metric: metric, RotationWarmup: w,
					})
					keys := c.CompressBatch(pts)
					if len(keys) < 1 {
						t.Fatalf("no key points")
					}
					if !keys[0].Equal(pts[0]) {
						t.Fatalf("first key point %v != first point %v", keys[0], pts[0])
					}
					if !keys[len(keys)-1].Equal(pts[len(pts)-1]) {
						t.Fatalf("last key point %v != last point %v (mode %v)", keys[len(keys)-1], pts[len(pts)-1], mode)
					}
					err := maxSegmentError(pts, keys, metric)
					if err > tol*(1+1e-9) {
						t.Fatalf("trial %d mode %v metric %v warmup %d tol %v: error %v exceeds bound",
							trial, mode, metric, w, tol, err)
					}
				}
			}
		}
	}
}

// FBQS takes at least as many points as BQS (it cuts on uncertainty), and
// both respect the bound.
func TestFastTakesAtLeastAsManyPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		pts := randomWalk(rng, 500, 10)
		exact := mustCompressor(t, Config{Tolerance: 10, Mode: ModeExact})
		fast := mustCompressor(t, Config{Tolerance: 10, Mode: ModeFast})
		ke := exact.CompressBatch(pts)
		kf := fast.CompressBatch(pts)
		if len(kf) < len(ke) {
			t.Errorf("trial %d: fast kept %d < exact %d", trial, len(kf), len(ke))
		}
	}
}

func TestStatsConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts := randomWalk(rng, 2000, 10)
	for _, mode := range []Mode{ModeExact, ModeFast} {
		c := mustCompressor(t, Config{Tolerance: 10, Mode: mode})
		keys := c.CompressBatch(pts)
		s := c.Stats()
		if s.Points != len(pts) {
			t.Errorf("mode %v: points = %d, want %d", mode, s.Points, len(pts))
		}
		if s.KeyPoints != len(keys) {
			t.Errorf("mode %v: key points = %d, want %d", mode, s.KeyPoints, len(keys))
		}
		// Every pushed point lands in exactly one decision bucket; the first
		// push of each trajectory is its own implicit bucket.
		decisions := s.BoundIncludes + s.BoundRestarts + s.UncertainRestarts +
			s.ExactIncludes + s.ExactRestarts
		if got, want := decisions, s.Points-1; got != want {
			t.Errorf("mode %v: decisions = %d, want %d", mode, got, want)
		}
		if s.FullComputations != s.ExactIncludes+s.ExactRestarts {
			t.Errorf("mode %v: full computations %d != exact outcomes %d",
				mode, s.FullComputations, s.ExactIncludes+s.ExactRestarts)
		}
		if mode == ModeFast && s.ExactRestarts+s.ExactIncludes > 0 && c.Config().RotationWarmup == 0 {
			t.Errorf("fast mode without warmup performed exact scans")
		}
		if pp := s.PruningPower(); pp < 0 || pp > 1 {
			t.Errorf("pruning power out of range: %v", pp)
		}
		if cr := s.CompressionRate(); cr <= 0 || cr > 1 {
			t.Errorf("compression rate out of range: %v", cr)
		}
	}
}

func TestFastModeConstantSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	pts := randomWalk(rng, 5000, 20)
	c := mustCompressor(t, Config{Tolerance: 5, Mode: ModeFast})
	for _, p := range pts {
		c.Push(p)
		if got := c.BufferedPoints(); got > DefaultRotationWarmup {
			t.Fatalf("fast mode buffered %d points", got)
		}
		if got := c.SignificantPointCount(); got > 32 {
			t.Fatalf("significant points = %d > 32", got)
		}
	}
}

func TestMaxBufferForcesCuts(t *testing.T) {
	// A long straight line of far-apart points never violates the bound, so
	// without a cap the buffer would grow without limit.
	var pts []Point
	for i := 0; i < 2000; i++ {
		pts = append(pts, Point{X: float64(i) * 100, Y: 0, T: float64(i)})
	}
	c := mustCompressor(t, Config{Tolerance: 10, Mode: ModeExact, MaxBuffer: 32, RotationWarmup: 0})
	keys := c.CompressBatch(pts)
	s := c.Stats()
	if s.BufferOverflows == 0 {
		t.Error("straight far-apart stream with tiny buffer should overflow")
	}
	if len(keys) < 2000/32 {
		t.Errorf("expected ≥ %d keys from forced cuts, got %d", 2000/32, len(keys))
	}
	if err := maxSegmentError(pts, keys, MetricLine); err > 10 {
		t.Errorf("error bound broken under overflow cuts: %v", err)
	}

	// Without the cap the same stream must keep only two points and the
	// buffer is allowed to grow.
	c2 := mustCompressor(t, Config{Tolerance: 10, Mode: ModeExact, RotationWarmup: 0})
	keys2 := c2.CompressBatch(pts)
	if len(keys2) != 2 {
		t.Errorf("uncapped straight line kept %d keys, want 2", len(keys2))
	}
}

func TestTraceCallback(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := randomWalk(rng, 500, 10)
	var traces []TracePoint
	c := mustCompressor(t, Config{
		Tolerance: 10, Mode: ModeExact, RotationWarmup: 0,
		Trace: func(tp TracePoint) { traces = append(traces, tp) },
	})
	c.CompressBatch(pts)
	if len(traces) == 0 {
		t.Fatal("no trace points recorded")
	}
	for _, tp := range traces {
		if tp.LB > tp.UB+1e-9 {
			t.Errorf("trace %d: lb %v > ub %v", tp.Index, tp.LB, tp.UB)
		}
		if !math.IsNaN(tp.Actual) && (tp.Actual < tp.LB-1e-6 || tp.Actual > tp.UB+1e-6) {
			t.Errorf("trace %d: actual %v outside [%v, %v]", tp.Index, tp.Actual, tp.LB, tp.UB)
		}
	}
}

func TestResetClearsState(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pts := randomWalk(rng, 200, 10)
	c := mustCompressor(t, Config{Tolerance: 10})
	c.CompressBatch(pts)
	c.Reset()
	if s := c.Stats(); s.Points != 0 || s.KeyPoints != 0 {
		t.Errorf("stats after reset: %+v", s)
	}
	keys := c.CompressBatch(pts)
	if len(keys) == 0 {
		t.Error("compressor unusable after reset")
	}
}

func TestFlushStartsNewTrajectory(t *testing.T) {
	c := mustCompressor(t, Config{Tolerance: 5})
	a := []Point{{0, 0, 0}, {100, 0, 1}, {200, 0, 2}}
	for _, p := range a {
		c.Push(p)
	}
	kp, ok := c.Flush()
	if !ok || !kp.Equal(a[2]) {
		t.Fatalf("flush = (%v,%v)", kp, ok)
	}
	// Next push must start a fresh trajectory and emit its first point.
	b := Point{X: 500, Y: 500, T: 10}
	kp, ok = c.Push(b)
	if !ok || !kp.Equal(b) {
		t.Errorf("push after flush = (%v,%v), want the point", kp, ok)
	}
}

func TestDuplicatePointsHandled(t *testing.T) {
	c := mustCompressor(t, Config{Tolerance: 5})
	pts := []Point{
		{0, 0, 0}, {0, 0, 1}, {0, 0, 2}, {100, 0, 3}, {100, 0, 4}, {200, 0, 5},
	}
	keys := c.CompressBatch(pts)
	if len(keys) < 2 {
		t.Fatalf("keys = %v", keys)
	}
	if err := maxSegmentError(pts, keys, MetricLine); err > 5 {
		t.Errorf("duplicate-point stream error %v", err)
	}
}

func TestReturnToStartSplitsSegment(t *testing.T) {
	// Out-and-back along the same line with a large lateral excursion:
	// coming back near the start must not corrupt the bound (the
	// theorem-5.1 corner case described in DESIGN.md).
	c := mustCompressor(t, Config{Tolerance: 2, RotationWarmup: 0})
	pts := []Point{
		{0, 0, 0},
		{50, 0, 1},
		{50, 50, 2},
		{1, 0.5, 3}, // near the start again
		{-50, 0, 4},
	}
	keys := c.CompressBatch(pts)
	if err := maxSegmentError(pts, keys, MetricLine); err > 2+1e-9 {
		t.Fatalf("error %v > 2; keys = %v", err, keys)
	}
}

func TestCompressBatchEmpty(t *testing.T) {
	c := mustCompressor(t, Config{Tolerance: 5})
	if got := c.CompressBatch(nil); got != nil {
		t.Errorf("CompressBatch(nil) = %v", got)
	}
}

func TestSegmentMetricNeverWorseThanLineForClosedPaths(t *testing.T) {
	// With the segment metric, deviations are measured to the closed
	// segment, which is ≥ the line distance, so segment-metric compression
	// keeps at least as many points on adversarial loops.
	rng := rand.New(rand.NewSource(5))
	totalLine, totalSeg := 0, 0
	for trial := 0; trial < 10; trial++ {
		pts := randomWalk(rng, 400, 15)
		cl := mustCompressor(t, Config{Tolerance: 10, Metric: MetricLine})
		cs := mustCompressor(t, Config{Tolerance: 10, Metric: MetricSegment})
		totalLine += len(cl.CompressBatch(pts))
		totalSeg += len(cs.CompressBatch(pts))
	}
	if totalSeg < totalLine {
		t.Errorf("segment metric kept fewer points (%d) than line metric (%d)", totalSeg, totalLine)
	}
}

func TestKeyPointsAreStreamPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	pts := randomWalk(rng, 300, 10)
	byT := map[float64]Point{}
	for _, p := range pts {
		byT[p.T] = p
	}
	c := mustCompressor(t, Config{Tolerance: 8})
	keys := c.CompressBatch(pts)
	for _, k := range keys {
		orig, ok := byT[k.T]
		if !ok || !orig.Equal(k) {
			t.Errorf("key point %v is not a stream point", k)
		}
	}
	// Key points must be strictly increasing in time.
	for i := 1; i < len(keys); i++ {
		if keys[i].T <= keys[i-1].T {
			t.Errorf("key points out of order: %v then %v", keys[i-1], keys[i])
		}
	}
}
