package core

import (
	"math"

	"github.com/trajcomp/bqs/internal/geom"
)

// Point3 is a trajectory sample in 3-space. Z carries altitude in metres
// for 3-D tracking, or scaled time for the time-sensitive error metric
// (Section V-G describes both uses).
type Point3 struct {
	X, Y, Z float64
	T       float64
}

// Vec3 returns the spatial components of p.
func (p Point3) Vec3() geom.Vec3 { return geom.V3(p.X, p.Y, p.Z) }

// Equal reports whether two samples coincide in space and time.
func (p Point3) Equal(o Point3) bool {
	return p.X == o.X && p.Y == o.Y && p.Z == o.Z && p.T == o.T
}

// MaxDeviation3 returns the maximum 3-D deviation of pts from the path
// between s and e under the given metric.
func MaxDeviation3(pts []Point3, s, e Point3, metric Metric) float64 {
	var maxD float64
	for _, p := range pts {
		var d float64
		if metric == MetricSegment {
			d = geom.DistToSegment3(p.Vec3(), s.Vec3(), e.Vec3())
		} else {
			d = geom.DistToLine3(p.Vec3(), s.Vec3(), e.Vec3())
		}
		if d > maxD {
			maxD = d
		}
	}
	return maxD
}

// Compressor3 is the 3-D BQS/FBQS streaming compressor (Section V-G). Its
// interface mirrors Compressor: Push points in temporal order, collect the
// emitted key points, Flush at the end of the trajectory.
//
// The data-centric rotation generalizes to an azimuthal rotation about the
// z axis towards the warmup centroid, which keeps the same
// bound-tightening effect for predominantly planar movement.
//
// A Compressor3 is not safe for concurrent use.
type Compressor3 struct {
	cfg   Config
	stats Stats

	started  bool
	origin   Point3
	lastInc  Point3
	lastEmit Point3
	haveEmit bool

	rot        float64
	warmupDone bool
	warmup     []Point3

	octs   [8]octant
	buffer []Point3
}

// NewCompressor3 returns a 3-D compressor for the given configuration.
// Config.Trace is ignored (no 3-D bound tracing).
func NewCompressor3(cfg Config) (*Compressor3, error) {
	cfg, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	c := &Compressor3{cfg: cfg}
	if cfg.RotationWarmup > 0 {
		c.warmup = make([]Point3, 0, cfg.RotationWarmup)
	}
	c.startSegment(Point3{})
	c.started = false
	return c, nil
}

// Config returns the effective configuration.
func (c *Compressor3) Config() Config { return c.cfg }

// Stats returns the accumulated decision statistics.
func (c *Compressor3) Stats() Stats { return c.stats }

// BufferedPoints returns the number of points currently buffered.
func (c *Compressor3) BufferedPoints() int { return len(c.buffer) + len(c.warmup) }

// Reset clears all state and statistics.
func (c *Compressor3) Reset() {
	c.stats = Stats{}
	c.haveEmit = false
	c.startSegment(Point3{})
	c.started = false
}

func (c *Compressor3) startSegment(p Point3) {
	c.started = true
	c.origin = p
	c.lastInc = p
	c.rot = 0
	c.warmupDone = c.cfg.RotationWarmup == 0
	c.warmup = c.warmup[:0]
	c.buffer = c.buffer[:0]
	for i := range c.octs {
		c.octs[i].reset(i)
	}
}

func (c *Compressor3) emit(kp Point3) {
	c.lastEmit = kp
	c.haveEmit = true
	c.stats.KeyPoints++
}

// local maps a raw point into the segment frame (translated, azimuthally
// rotated).
func (c *Compressor3) local(p Point3) geom.Vec3 {
	v := p.Vec3().Sub(c.origin.Vec3())
	if c.rot != 0 {
		xy := v.XY().Rotate(-c.rot)
		v = geom.V3(xy.X, xy.Y, v.Z)
	}
	return v
}

// Push feeds the next point; it returns a finalized key point when one is
// emitted. Non-finite points are dropped and counted in
// Stats.DroppedPoints.
func (c *Compressor3) Push(p Point3) (Point3, bool) {
	if !p.Vec3().IsFinite() || math.IsNaN(p.T) || math.IsInf(p.T, 0) {
		c.stats.DroppedPoints++
		return Point3{}, false
	}
	c.stats.Points++
	if !c.started {
		c.startSegment(p)
		c.emit(p)
		return p, true
	}
	return c.process(p)
}

// Flush terminates the trajectory, returning the final key point if due.
func (c *Compressor3) Flush() (Point3, bool) {
	if !c.started {
		return Point3{}, false
	}
	kp := c.lastInc
	emit := !(c.haveEmit && c.lastEmit.Equal(kp))
	if emit {
		c.emit(kp)
	}
	c.startSegment(Point3{})
	c.started = false
	return kp, emit
}

func (c *Compressor3) process(e Point3) (Point3, bool) {
	d := c.cfg.Tolerance

	if !c.warmupDone {
		if len(c.warmup) > 0 {
			c.stats.FullComputations++
			if MaxDeviation3(c.warmup, c.origin, e, c.cfg.Metric) > d {
				c.stats.ExactRestarts++
				return c.restartAt(e)
			}
			c.stats.ExactIncludes++
		} else {
			c.stats.BoundIncludes++
		}
		return c.include(e)
	}

	le := c.local(e)
	var dlb, dub float64
	for i := range c.octs {
		o := &c.octs[i]
		if o.n == 0 {
			continue
		}
		olb, oub := o.bounds(le, c.cfg.Metric)
		dlb = math.Max(dlb, olb)
		dub = math.Max(dub, oub)
	}

	switch {
	case dub <= d:
		c.stats.BoundIncludes++
		return c.include(e)
	case dlb > d:
		c.stats.BoundRestarts++
		return c.restartAt(e)
	}
	if c.cfg.Mode == ModeFast {
		c.stats.UncertainRestarts++
		return c.restartAt(e)
	}
	c.stats.FullComputations++
	if MaxDeviation3(c.buffer, c.origin, e, c.cfg.Metric) <= d {
		c.stats.ExactIncludes++
		return c.include(e)
	}
	c.stats.ExactRestarts++
	return c.restartAt(e)
}

func (c *Compressor3) include(e Point3) (Point3, bool) {
	c.lastInc = e
	ev := e.Vec3().Sub(c.origin.Vec3())
	if ev.Norm() <= c.cfg.Tolerance {
		return Point3{}, false // Theorem 5.1 carries over to 3-D verbatim.
	}
	if !c.warmupDone {
		c.warmup = append(c.warmup, e)
		if len(c.warmup) >= c.cfg.RotationWarmup {
			c.finishWarmup()
		}
		return Point3{}, false
	}
	lp := c.local(e)
	c.octs[octantOf(lp)].insert(lp)
	if c.cfg.Mode == ModeExact {
		c.buffer = append(c.buffer, e)
		if c.cfg.MaxBuffer > 0 && len(c.buffer) >= c.cfg.MaxBuffer {
			c.stats.BufferOverflows++
			c.stats.Segments++
			c.emit(e)
			c.startSegment(e)
			return e, true
		}
	}
	return Point3{}, false
}

func (c *Compressor3) finishWarmup() {
	var centroid geom.Vec
	for _, w := range c.warmup {
		centroid = centroid.Add(w.Vec3().Sub(c.origin.Vec3()).XY())
	}
	centroid = centroid.Scale(1 / float64(len(c.warmup)))
	if centroid.Norm() > geom.Eps {
		c.rot = centroid.Angle()
	}
	c.warmupDone = true
	for _, w := range c.warmup {
		lp := c.local(w)
		c.octs[octantOf(lp)].insert(lp)
		if c.cfg.Mode == ModeExact {
			c.buffer = append(c.buffer, w)
		}
	}
	c.warmup = c.warmup[:0]
}

func (c *Compressor3) restartAt(e Point3) (Point3, bool) {
	kp := c.lastInc
	c.stats.Segments++
	c.emit(kp)
	c.startSegment(kp)
	c.include(e)
	return kp, true
}

// CompressBatch3 runs a fresh pass over pts and returns the compressed key
// points.
func (c *Compressor3) CompressBatch3(pts []Point3) []Point3 {
	if len(pts) == 0 {
		return nil
	}
	out := make([]Point3, 0, 16)
	for _, p := range pts {
		if kp, ok := c.Push(p); ok {
			out = append(out, kp)
		}
	}
	if kp, ok := c.Flush(); ok {
		out = append(out, kp)
	}
	return out
}

// TimeSensitive wraps a Compressor3 to compress 2-D points under the
// time-sensitive error metric of Section V-G: the z axis carries elapsed
// time scaled by gamma (metres per second), so the deviation accounts for
// when the object was where, not just where it went.
type TimeSensitive struct {
	inner *Compressor3
	gamma float64
	t0    float64
	open  bool
}

// NewTimeSensitive returns a time-sensitive compressor. gamma converts
// seconds of temporal error into metres of spatial error; it must be
// positive and finite.
func NewTimeSensitive(cfg Config, gamma float64) (*TimeSensitive, error) {
	if math.IsNaN(gamma) || math.IsInf(gamma, 0) || gamma <= 0 {
		return nil, errInvalidGamma
	}
	inner, err := NewCompressor3(cfg)
	if err != nil {
		return nil, err
	}
	return &TimeSensitive{inner: inner, gamma: gamma}, nil
}

var errInvalidGamma = errValue("core: gamma must be a positive finite m/s scale")

type errValue string

func (e errValue) Error() string { return string(e) }

// Push feeds the next 2-D point.
func (ts *TimeSensitive) Push(p Point) (Point, bool) {
	if !ts.open {
		ts.t0 = p.T
		ts.open = true
	}
	kp3, ok := ts.inner.Push(ts.lift(p))
	return ts.lower(kp3), ok
}

// Flush terminates the trajectory.
func (ts *TimeSensitive) Flush() (Point, bool) {
	kp3, ok := ts.inner.Flush()
	ts.open = false
	return ts.lower(kp3), ok
}

// Stats returns the accumulated statistics.
func (ts *TimeSensitive) Stats() Stats { return ts.inner.Stats() }

func (ts *TimeSensitive) lift(p Point) Point3 {
	return Point3{X: p.X, Y: p.Y, Z: (p.T - ts.t0) * ts.gamma, T: p.T}
}

func (ts *TimeSensitive) lower(p Point3) Point {
	return Point{X: p.X, Y: p.Y, T: p.T}
}
