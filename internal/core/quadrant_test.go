package core

import (
	"math/rand"
	"testing"

	"github.com/trajcomp/bqs/internal/geom"
)

func TestQuadrantOf(t *testing.T) {
	cases := []struct {
		v    geom.Vec
		want int
	}{
		{geom.V(1, 1), 0},
		{geom.V(-1, 1), 1},
		{geom.V(-1, -1), 2},
		{geom.V(1, -1), 3},
		{geom.V(0, 0), 0},
		{geom.V(0, 1), 0},
		{geom.V(-1, 0), 1},
		{geom.V(0, -1), 3},
		{geom.V(1, 0), 0},
	}
	for _, c := range cases {
		if got := quadrantOf(c.v); got != c.want {
			t.Errorf("quadrantOf(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestQuadrantInsertMaintainsExtremes(t *testing.T) {
	var q quadrant
	q.reset(0)
	pts := []geom.Vec{geom.V(4, 1), geom.V(1, 4), geom.V(3, 3), geom.V(2, 1)}
	for _, p := range pts {
		q.insert(p)
	}
	if q.n != 4 {
		t.Fatalf("n = %d", q.n)
	}
	if q.pMin != geom.V(4, 1) {
		t.Errorf("pMin = %v, want (4,1)", q.pMin)
	}
	if q.pMax != geom.V(1, 4) {
		t.Errorf("pMax = %v, want (1,4)", q.pMax)
	}
	if !q.box.Contains(geom.V(2, 2)) {
		t.Error("box misses interior point")
	}
}

func TestNearFarCorners(t *testing.T) {
	mk := func(idx int, pts ...geom.Vec) quadrant {
		var q quadrant
		q.reset(idx)
		for _, p := range pts {
			q.insert(p)
		}
		return q
	}
	q0 := mk(0, geom.V(1, 2), geom.V(3, 5))
	cn, cf := q0.nearFarCorners()
	if cn != geom.V(1, 2) || cf != geom.V(3, 5) {
		t.Errorf("Q0 near/far = %v %v", cn, cf)
	}
	q1 := mk(1, geom.V(-1, 2), geom.V(-3, 5))
	cn, cf = q1.nearFarCorners()
	if cn != geom.V(-1, 2) || cf != geom.V(-3, 5) {
		t.Errorf("Q1 near/far = %v %v", cn, cf)
	}
	q2 := mk(2, geom.V(-1, -2), geom.V(-3, -5))
	cn, cf = q2.nearFarCorners()
	if cn != geom.V(-1, -2) || cf != geom.V(-3, -5) {
		t.Errorf("Q2 near/far = %v %v", cn, cf)
	}
	q3 := mk(3, geom.V(1, -2), geom.V(3, -5))
	cn, cf = q3.nearFarCorners()
	if cn != geom.V(1, -2) || cf != geom.V(3, -5) {
		t.Errorf("Q3 near/far = %v %v", cn, cf)
	}
}

func TestLineInQuadrant(t *testing.T) {
	var q0, q1 quadrant
	q0.reset(0)
	q1.reset(1)
	// 45° line: in Q0 (and Q2), not in Q1 (or Q3).
	if !q0.lineInQuadrant(geom.V(1, 1)) {
		t.Error("45° line should be in Q0")
	}
	if q1.lineInQuadrant(geom.V(1, 1)) {
		t.Error("45° line should not be in Q1")
	}
	// 135° line: in Q1/Q3 only.
	if q0.lineInQuadrant(geom.V(-1, 1)) {
		t.Error("135° line should not be in Q0")
	}
	if !q1.lineInQuadrant(geom.V(-1, 1)) {
		t.Error("135° line should be in Q1")
	}
	// Opposite representative (225° ≡ 45° mod π).
	if !q0.lineInQuadrant(geom.V(-1, -1)) {
		t.Error("225° representative should be in Q0")
	}
	// Boundary: 0° in Q0/Q2; 90° in Q1/Q3 (half-open ranges).
	if !q0.lineInQuadrant(geom.V(1, 0)) {
		t.Error("0° should be in Q0")
	}
	if q0.lineInQuadrant(geom.V(0, 1)) {
		t.Error("90° should not be in Q0")
	}
	if !q1.lineInQuadrant(geom.V(0, 1)) {
		t.Error("90° should be in Q1")
	}
	// The opposite y-axis representative (270°) must also read as 90°.
	if q0.lineInQuadrant(geom.V(0, -1)) {
		t.Error("270° representative should not be in Q0")
	}
	if !q1.lineInQuadrant(geom.V(0, -1)) {
		t.Error("270° representative should be in Q1")
	}
	// And the 180° x-axis representative as 0°.
	if !q0.lineInQuadrant(geom.V(-1, 0)) {
		t.Error("180° representative should be in Q0")
	}
}

func TestThirdLargest(t *testing.T) {
	if got := thirdLargest(1, 2, 3, 4); got != 2 {
		t.Errorf("thirdLargest(1,2,3,4) = %v", got)
	}
	if got := thirdLargest(4, 3, 2, 1); got != 2 {
		t.Errorf("thirdLargest(4,3,2,1) = %v", got)
	}
	if got := thirdLargest(5, 5, 5, 5); got != 5 {
		t.Errorf("thirdLargest(5,5,5,5) = %v", got)
	}
	if got := thirdLargest(1, 7, 3, 7); got != 3 {
		t.Errorf("thirdLargest(1,7,3,7) = %v", got)
	}
}

func TestQuadrantSingletonBoundsAreExact(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 500; trial++ {
		p := geom.V(rng.Float64()*100+0.1, rng.Float64()*100+0.1)
		var q quadrant
		q.reset(quadrantOf(p))
		q.insert(p)
		e := geom.V(rng.NormFloat64()*100, rng.NormFloat64()*100)
		lb, ub := q.bounds(e, MetricLine)
		truth := geom.DistToLine(p, geom.Line{B: e})
		if lb > truth+1e-9 || ub < truth-1e-9 {
			t.Fatalf("singleton bounds [%v,%v] miss truth %v (p=%v e=%v)", lb, ub, truth, p, e)
		}
	}
}

// The central structural property (Theorems 5.2-5.5): for any set of points
// inserted into the quadrant matching their location, and any candidate end
// point, the aggregated bounds sandwich the true maximum deviation.
func TestQuadrantBoundsSandwich(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	metrics := []Metric{MetricLine, MetricSegment}
	violations := 0
	for trial := 0; trial < 20000; trial++ {
		quadIdx := rng.Intn(4)
		sx := []float64{1, -1, -1, 1}[quadIdx]
		sy := []float64{1, 1, -1, -1}[quadIdx]
		n := 1 + rng.Intn(20)
		var q quadrant
		q.reset(quadIdx)
		pts := make([]geom.Vec, n)
		for i := range pts {
			// Positive magnitudes, signs from the quadrant. Occasionally put
			// points exactly on the axes to exercise boundary handling.
			x := rng.Float64() * 100
			y := rng.Float64() * 100
			if rng.Intn(20) == 0 {
				x = 0
			}
			if rng.Intn(20) == 0 {
				y = 0
			}
			p := geom.V(sx*x, sy*y)
			if quadrantOf(p) != quadIdx {
				// Axis point that belongs to a neighbouring quadrant by
				// convention; nudge it inside.
				p = geom.V(sx*(x+0.001), sy*(y+0.001))
			}
			pts[i] = p
			q.insert(p)
		}
		// Candidate end point anywhere in the plane, sometimes tiny,
		// sometimes on an axis.
		e := geom.V(rng.NormFloat64()*80, rng.NormFloat64()*80)
		switch rng.Intn(10) {
		case 0:
			e = geom.V(0, 0)
		case 1:
			e = e.Scale(1e-7)
		case 2:
			e = geom.V(e.X, 0)
		case 3:
			e = geom.V(0, e.Y)
		}
		for _, m := range metrics {
			lb, ub := q.bounds(e, m)
			var truth float64
			if m == MetricSegment {
				truth, _ = geom.MaxDistToSegment(pts, geom.Vec{}, e)
			} else {
				truth, _ = geom.MaxDistToLine(pts, geom.Line{B: e})
			}
			tol := 1e-6 * (1 + truth)
			if lb > truth+tol {
				violations++
				t.Errorf("trial %d quad %d metric %v: lb %v > truth %v (e=%v pts=%v)",
					trial, quadIdx, m, lb, truth, e, pts)
			}
			if ub < truth-tol {
				violations++
				t.Errorf("trial %d quad %d metric %v: ub %v < truth %v (e=%v pts=%v)",
					trial, quadIdx, m, ub, truth, e, pts)
			}
			if violations > 5 {
				t.Fatal("too many violations, stopping")
			}
		}
	}
}

// The significant points must contain every tracked point in their convex
// hull (the claim behind Equation 11 and the appendix discussion).
func TestSignificantPointsHullContainsAll(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 2000; trial++ {
		quadIdx := rng.Intn(4)
		sx := []float64{1, -1, -1, 1}[quadIdx]
		sy := []float64{1, 1, -1, -1}[quadIdx]
		var q quadrant
		q.reset(quadIdx)
		n := 1 + rng.Intn(15)
		pts := make([]geom.Vec, n)
		for i := range pts {
			p := geom.V(sx*(rng.Float64()*50+1e-6), sy*(rng.Float64()*50+1e-6))
			pts[i] = p
			q.insert(p)
		}
		sig := q.significantPoints()
		hull := geom.ConvexHull(sig)
		for _, p := range pts {
			if !geom.InConvexPolygon(p, hull, 1e-6) {
				t.Fatalf("trial %d quad %d: significant-point hull %v misses %v",
					trial, quadIdx, hull, p)
			}
		}
	}
}

func TestBoundsEmptyQuadrant(t *testing.T) {
	var q quadrant
	q.reset(0)
	lb, ub := q.bounds(geom.V(1, 1), MetricLine)
	if lb != 0 || ub != 0 {
		t.Errorf("empty quadrant bounds = %v,%v", lb, ub)
	}
	if q.significantPoints() != nil {
		t.Error("empty quadrant has significant points")
	}
}
