package core

import (
	"math"
	"math/rand"
	"testing"
)

func randomWalkN(rng *rand.Rand, n, k int, step float64) []PointN {
	pts := make([]PointN, n)
	pos := make([]float64, k)
	vel := make([]float64, k)
	for i := range vel {
		vel[i] = rng.NormFloat64() * step
	}
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			vel[j] += rng.NormFloat64() * step * 0.2
			pos[j] += vel[j]
		}
		c := make([]float64, k)
		copy(c, pos)
		pts[i] = PointN{C: c, T: float64(i)}
	}
	return pts
}

func maxSegmentErrorN(orig, keys []PointN, metric Metric) float64 {
	var worst float64
	for ki := 0; ki+1 < len(keys); ki++ {
		s, e := keys[ki], keys[ki+1]
		var interior []PointN
		for _, p := range orig {
			if p.T > s.T && p.T < e.T {
				interior = append(interior, p)
			}
		}
		if d := MaxDeviationN(interior, s, e, metric); d > worst {
			worst = d
		}
	}
	return worst
}

func TestDistToLineN(t *testing.T) {
	// 4-D line along the first axis: distance is the norm of the rest.
	a := []float64{0, 0, 0, 0}
	b := []float64{10, 0, 0, 0}
	p := []float64{5, 1, 2, 2}
	if got := distToLineN(p, a, b); !almostEq(got, 3, 1e-12) {
		t.Errorf("distToLineN = %v, want 3", got)
	}
	// Degenerate line.
	if got := distToLineN(p, a, a); !almostEq(got, math.Sqrt(25+1+4+4), 1e-12) {
		t.Errorf("degenerate = %v", got)
	}
}

func TestDistToSegmentN(t *testing.T) {
	a := []float64{0, 0, 0, 0}
	b := []float64{10, 0, 0, 0}
	if got := distToSegmentN([]float64{-3, 4, 0, 0}, a, b); !almostEq(got, 5, 1e-12) {
		t.Errorf("before a = %v, want 5", got)
	}
	if got := distToSegmentN([]float64{13, 0, 4, 0}, a, b); !almostEq(got, 5, 1e-12) {
		t.Errorf("after b = %v, want 5", got)
	}
	if got := distToSegmentN([]float64{5, 3, 0, 0}, a, b); !almostEq(got, 3, 1e-12) {
		t.Errorf("mid = %v, want 3", got)
	}
}

func TestCompressorNValidation(t *testing.T) {
	if _, err := NewCompressorN(Config{Tolerance: 5}, 0); err == nil {
		t.Error("dim 0 accepted")
	}
	if _, err := NewCompressorN(Config{Tolerance: 5}, 9); err == nil {
		t.Error("dim 9 accepted")
	}
	if _, err := NewCompressorN(Config{Tolerance: 0}, 4); err == nil {
		t.Error("bad tolerance accepted")
	}
	c, err := NewCompressorN(Config{Tolerance: 5}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Push(PointN{C: []float64{1, 2, 3}, T: 0}); err != ErrDimensionMismatch {
		t.Errorf("mismatched push: %v", err)
	}
	if c.Dim() != 4 {
		t.Errorf("Dim = %d", c.Dim())
	}
}

func TestCompressorNStraightLine(t *testing.T) {
	for _, mode := range []Mode{ModeExact, ModeFast} {
		c, err := NewCompressorN(Config{Tolerance: 5, Mode: mode}, 4)
		if err != nil {
			t.Fatal(err)
		}
		var pts []PointN
		for i := 0; i < 300; i++ {
			f := float64(i)
			pts = append(pts, PointN{C: []float64{f * 10, f * 3, f * 2, f}, T: f})
		}
		keys, err := c.CompressBatchN(pts)
		if err != nil {
			t.Fatal(err)
		}
		if len(keys) != 2 {
			t.Errorf("mode %v: 4-D straight line kept %d points", mode, len(keys))
		}
	}
}

func TestErrorBoundInvariantND(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 15; trial++ {
		k := 2 + rng.Intn(4) // dimensions 2-5
		pts := randomWalkN(rng, 300, k, 5)
		tol := []float64{5, 10, 20}[rng.Intn(3)]
		for _, mode := range []Mode{ModeExact, ModeFast} {
			for _, metric := range []Metric{MetricLine, MetricSegment} {
				c, err := NewCompressorN(Config{Tolerance: tol, Mode: mode, Metric: metric}, k)
				if err != nil {
					t.Fatal(err)
				}
				keys, err := c.CompressBatchN(pts)
				if err != nil {
					t.Fatal(err)
				}
				if got := maxSegmentErrorN(pts, keys, metric); got > tol*(1+1e-9) {
					t.Fatalf("trial %d k=%d mode %v metric %v: error %v > %v",
						trial, k, mode, metric, got, tol)
				}
				if !keys[0].Equal(pts[0]) || !keys[len(keys)-1].Equal(pts[len(pts)-1]) {
					t.Fatal("endpoints not preserved")
				}
			}
		}
	}
}

// N-D orthant bound sandwich against brute force.
func TestOrthantNBoundsSandwich(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 3000; trial++ {
		k := 2 + rng.Intn(3)
		o := newOrthantN(k)
		// All points in the positive orthant.
		n := 1 + rng.Intn(12)
		pts := make([][]float64, n)
		for i := range pts {
			p := make([]float64, k)
			for j := range p {
				p[j] = rng.Float64() * 50
			}
			pts[i] = p
			o.insert(p)
		}
		le := make([]float64, k)
		for j := range le {
			le[j] = rng.NormFloat64() * 40
		}
		origin := make([]float64, k)
		for _, m := range []Metric{MetricLine, MetricSegment} {
			lb, ub := o.bounds(le, m, origin)
			var truth float64
			for _, p := range pts {
				var d float64
				if m == MetricSegment {
					d = distToSegmentN(p, origin, le)
				} else {
					d = distToLineN(p, origin, le)
				}
				if d > truth {
					truth = d
				}
			}
			tol := 1e-6 * (1 + truth)
			if lb > truth+tol {
				t.Fatalf("trial %d k=%d metric %v: lb %v > truth %v", trial, k, m, lb, truth)
			}
			if ub < truth-tol {
				t.Fatalf("trial %d k=%d metric %v: ub %v < truth %v", trial, k, m, ub, truth)
			}
		}
	}
}

func TestCompressorNFastConstantSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := randomWalkN(rng, 2000, 4, 5)
	c, err := NewCompressorN(Config{Tolerance: 10, Mode: ModeFast}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if _, _, err := c.Push(p); err != nil {
			t.Fatal(err)
		}
		if c.BufferedPoints() != 0 {
			t.Fatal("fast N-D mode buffered points")
		}
	}
}

func TestCompressorNFlushAndStats(t *testing.T) {
	c, _ := NewCompressorN(Config{Tolerance: 5}, 2)
	if _, ok := c.Flush(); ok {
		t.Error("empty flush emitted")
	}
	c.Push(PointN{C: []float64{0, 0}, T: 0})
	c.Push(PointN{C: []float64{100, 0}, T: 1})
	kp, ok := c.Flush()
	if !ok || kp.C[0] != 100 {
		t.Errorf("flush = %v %v", kp, ok)
	}
	if s := c.Stats(); s.Points != 2 || s.KeyPoints != 2 {
		t.Errorf("stats = %+v", s)
	}
}
