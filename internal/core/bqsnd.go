package core

import (
	"errors"
	"fmt"
	"math"
)

// This file implements the N-dimensional generalization the paper's
// conclusion poses as future work ("Exploring the potential of a 4-D BQS
// could be another interesting extension"). The construction follows the
// same recipe as the 2-D quadrants and 3-D octants: split the local space
// around the segment start into orthants, maintain a minimal bounding box
// per orthant, and derive deviation bounds from it.
//
// In k dimensions the angular bounding machinery does not generalize
// cheaply, so this variant uses the two parts that do:
//
//   - upper bound: the maximum deviation over the box's 2^k corners — the
//     box contains every tracked point and the deviation is convex, so the
//     corner maximum is a valid (Theorem 5.2-style) bound;
//   - lower bound: the maximum deviation over the 2k witness data points
//     that attain the box extremes — witnesses are real data points, so
//     any of their deviations floors the true maximum.
//
// The per-point cost is O(2^k) with k fixed and small (the intended use is
// k = 4: <x, y, z, scaled time>), preserving the constant-time/space story.

// PointN is a trajectory sample in k spatial dimensions plus a timestamp.
// All points fed to one CompressorN must share the same dimension.
type PointN struct {
	C []float64 // coordinates, len == k
	T float64
}

// Clone returns a deep copy of p.
func (p PointN) Clone() PointN {
	c := make([]float64, len(p.C))
	copy(c, p.C)
	return PointN{C: c, T: p.T}
}

// Equal reports whether two samples coincide in space and time.
func (p PointN) Equal(o PointN) bool {
	if p.T != o.T || len(p.C) != len(o.C) {
		return false
	}
	for i := range p.C {
		if p.C[i] != o.C[i] {
			return false
		}
	}
	return true
}

// distToLineN returns the distance from p to the line through a and b in
// R^k (distance to a when the line is degenerate).
func distToLineN(p, a, b []float64) float64 {
	k := len(p)
	var dir2, dot, diff2 float64
	for i := 0; i < k; i++ {
		d := b[i] - a[i]
		w := p[i] - a[i]
		dir2 += d * d
		dot += d * w
		diff2 += w * w
	}
	if dir2 < 1e-18 {
		return math.Sqrt(diff2)
	}
	perp2 := diff2 - dot*dot/dir2
	if perp2 < 0 {
		return 0
	}
	return math.Sqrt(perp2)
}

// distToSegmentN returns the distance from p to the closed segment [a, b].
func distToSegmentN(p, a, b []float64) float64 {
	k := len(p)
	var dir2, dot float64
	for i := 0; i < k; i++ {
		d := b[i] - a[i]
		dir2 += d * d
		dot += d * (p[i] - a[i])
	}
	t := 0.0
	if dir2 > 1e-18 {
		t = dot / dir2
		if t < 0 {
			t = 0
		} else if t > 1 {
			t = 1
		}
	}
	var sum float64
	for i := 0; i < k; i++ {
		q := a[i] + t*(b[i]-a[i])
		w := p[i] - q
		sum += w * w
	}
	return math.Sqrt(sum)
}

// MaxDeviationN returns the maximum deviation of pts from the path between
// s and e under the metric.
func MaxDeviationN(pts []PointN, s, e PointN, metric Metric) float64 {
	var maxD float64
	for _, p := range pts {
		var d float64
		if metric == MetricSegment {
			d = distToSegmentN(p.C, s.C, e.C)
		} else {
			d = distToLineN(p.C, s.C, e.C)
		}
		if d > maxD {
			maxD = d
		}
	}
	return maxD
}

// orthantN is the bounding structure for one orthant of the local space.
type orthantN struct {
	n        int
	min, max []float64
	// witnesses[2i] attains min in dimension i; witnesses[2i+1] the max.
	witnesses [][]float64
}

func newOrthantN(k int) *orthantN {
	o := &orthantN{min: make([]float64, k), max: make([]float64, k)}
	for i := 0; i < k; i++ {
		o.min[i] = math.Inf(1)
		o.max[i] = math.Inf(-1)
	}
	o.witnesses = make([][]float64, 2*k)
	return o
}

func (o *orthantN) insert(p []float64) {
	for i, v := range p {
		if v < o.min[i] {
			o.min[i] = v
			o.witnesses[2*i] = p
		}
		if v > o.max[i] {
			o.max[i] = v
			o.witnesses[2*i+1] = p
		}
	}
	o.n++
}

// bounds computes the orthant's deviation bounds for the local path line
// origin→le.
func (o *orthantN) bounds(le []float64, metric Metric, origin []float64) (dlb, dub float64) {
	if o.n == 0 {
		return 0, 0
	}
	k := len(o.min)
	distLB := func(p []float64) float64 { return distToLineN(p, origin, le) }
	distUB := distLB
	if metric == MetricSegment {
		distUB = func(p []float64) float64 { return distToSegmentN(p, origin, le) }
	}
	for _, w := range o.witnesses {
		if w == nil {
			continue
		}
		if d := distLB(w); d > dlb {
			dlb = d
		}
	}
	// Enumerate the 2^k corners.
	corner := make([]float64, k)
	for mask := 0; mask < 1<<k; mask++ {
		for i := 0; i < k; i++ {
			if mask&(1<<i) != 0 {
				corner[i] = o.max[i]
			} else {
				corner[i] = o.min[i]
			}
		}
		if d := distUB(corner); d > dub {
			dub = d
		}
	}
	if metric == MetricLine && dub < dlb {
		dub = dlb
	}
	return dlb, dub
}

// CompressorN is the k-dimensional streaming compressor. Its interface
// mirrors Compressor. The data-centric rotation generalizes as a second,
// movement-aligned bounding box: an orthonormal basis is anchored to the
// segment's first far point, and the upper bound takes the tighter of the
// axis-aligned and movement-aligned corner bounds (both valid by
// convexity). Without it, diagonal motion would inflate the axis-aligned
// box's corners and cripple the fast variant.
//
// Not safe for concurrent use.
type CompressorN struct {
	cfg Config
	dim int

	stats Stats

	started  bool
	origin   PointN
	lastInc  PointN
	lastEmit PointN
	haveEmit bool

	orthants map[uint32]*orthantN

	basis   [][]float64 // orthonormal rows; nil until the first far point
	aligned *orthantN   // box over basis coordinates (UB only)

	buffer []PointN
}

// MaxDimensions caps the supported dimensionality: the corner enumeration
// is O(2^k) per decision.
const MaxDimensions = 8

// NewCompressorN returns a k-dimensional compressor. RotationWarmup is
// ignored.
func NewCompressorN(cfg Config, dim int) (*CompressorN, error) {
	cfg, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	if dim < 1 || dim > MaxDimensions {
		return nil, fmt.Errorf("core: dimension %d outside [1, %d]", dim, MaxDimensions)
	}
	c := &CompressorN{cfg: cfg, dim: dim, orthants: make(map[uint32]*orthantN)}
	return c, nil
}

// ErrDimensionMismatch reports a pushed point with the wrong number of
// coordinates.
var ErrDimensionMismatch = errors.New("core: point dimension does not match the compressor")

// Stats returns the accumulated decision statistics.
func (c *CompressorN) Stats() Stats { return c.stats }

// Dim returns the compressor's spatial dimensionality.
func (c *CompressorN) Dim() int { return c.dim }

// BufferedPoints returns the exact-mode buffer occupancy.
func (c *CompressorN) BufferedPoints() int { return len(c.buffer) }

func (c *CompressorN) startSegment(p PointN) {
	c.started = true
	c.origin = p.Clone()
	c.lastInc = c.origin
	c.orthants = make(map[uint32]*orthantN, 4)
	c.basis = nil
	c.aligned = nil
	c.buffer = c.buffer[:0]
}

// buildBasis constructs an orthonormal basis whose first vector points
// along dir, completing it with Gram-Schmidt over the standard axes.
func buildBasis(dir []float64) [][]float64 {
	k := len(dir)
	basis := make([][]float64, 0, k)
	u0 := make([]float64, k)
	var norm float64
	for _, v := range dir {
		norm += v * v
	}
	norm = math.Sqrt(norm)
	if norm < 1e-12 {
		return nil
	}
	for i, v := range dir {
		u0[i] = v / norm
	}
	basis = append(basis, u0)
	for axis := 0; axis < k && len(basis) < k; axis++ {
		v := make([]float64, k)
		v[axis] = 1
		for _, b := range basis {
			var dot float64
			for i := range v {
				dot += v[i] * b[i]
			}
			for i := range v {
				v[i] -= dot * b[i]
			}
		}
		var n float64
		for _, x := range v {
			n += x * x
		}
		n = math.Sqrt(n)
		if n < 1e-9 {
			continue // axis (nearly) parallel to an existing basis vector
		}
		for i := range v {
			v[i] /= n
		}
		basis = append(basis, v)
	}
	if len(basis) != k {
		return nil
	}
	return basis
}

// toBasis expresses v in the aligned basis.
func (c *CompressorN) toBasis(v []float64) []float64 {
	out := make([]float64, c.dim)
	for i, b := range c.basis {
		var dot float64
		for j := range v {
			dot += v[j] * b[j]
		}
		out[i] = dot
	}
	return out
}

func (c *CompressorN) emit(kp PointN) {
	c.lastEmit = kp
	c.haveEmit = true
	c.stats.KeyPoints++
}

// local maps p into the segment frame (translation only).
func (c *CompressorN) local(p PointN) []float64 {
	out := make([]float64, c.dim)
	for i := 0; i < c.dim; i++ {
		out[i] = p.C[i] - c.origin.C[i]
	}
	return out
}

func orthantIndexN(v []float64) uint32 {
	var idx uint32
	for i, x := range v {
		if x < 0 {
			idx |= 1 << i
		}
	}
	return idx
}

// Push feeds the next point; it returns a finalized key point when one is
// emitted. Points of the wrong dimension yield an error.
func (c *CompressorN) Push(p PointN) (PointN, bool, error) {
	if len(p.C) != c.dim {
		return PointN{}, false, ErrDimensionMismatch
	}
	c.stats.Points++
	if !c.started {
		c.startSegment(p)
		c.emit(c.origin)
		return c.origin, true, nil
	}
	kp, ok := c.process(p)
	return kp, ok, nil
}

// Flush terminates the trajectory.
func (c *CompressorN) Flush() (PointN, bool) {
	if !c.started {
		return PointN{}, false
	}
	kp := c.lastInc
	emit := !(c.haveEmit && c.lastEmit.Equal(kp))
	if emit {
		c.emit(kp)
	}
	c.started = false
	return kp, emit
}

func (c *CompressorN) process(e PointN) (PointN, bool) {
	d := c.cfg.Tolerance
	le := c.local(e)

	origin := make([]float64, c.dim)
	var dlb, dub float64
	for _, o := range c.orthants {
		olb, oub := o.bounds(le, c.cfg.Metric, origin)
		dlb = math.Max(dlb, olb)
		dub = math.Max(dub, oub)
	}
	if c.aligned != nil && c.aligned.n > 0 {
		// The movement-aligned box yields an independent valid upper bound
		// (distances are invariant under the orthonormal change of basis);
		// keep the tighter one.
		_, alignedUB := c.aligned.bounds(c.toBasis(le), c.cfg.Metric, origin)
		dub = math.Min(dub, alignedUB)
		if dub < dlb {
			dub = dlb // both bounds are valid; keep the pair consistent
		}
	}

	switch {
	case dub <= d:
		c.stats.BoundIncludes++
		return c.include(e, le)
	case dlb > d:
		c.stats.BoundRestarts++
		return c.restartAt(e)
	}
	if c.cfg.Mode == ModeFast {
		c.stats.UncertainRestarts++
		return c.restartAt(e)
	}
	c.stats.FullComputations++
	if MaxDeviationN(c.buffer, c.origin, e, c.cfg.Metric) <= d {
		c.stats.ExactIncludes++
		return c.include(e, le)
	}
	c.stats.ExactRestarts++
	return c.restartAt(e)
}

func (c *CompressorN) include(e PointN, le []float64) (PointN, bool) {
	e = e.Clone()
	c.lastInc = e
	var norm2 float64
	for _, v := range le {
		norm2 += v * v
	}
	if math.Sqrt(norm2) <= c.cfg.Tolerance {
		return PointN{}, false // Theorem 5.1 holds in any dimension.
	}
	idx := orthantIndexN(le)
	o := c.orthants[idx]
	if o == nil {
		o = newOrthantN(c.dim)
		c.orthants[idx] = o
	}
	o.insert(le)
	if c.basis == nil {
		c.basis = buildBasis(le)
		if c.basis != nil {
			c.aligned = newOrthantN(c.dim)
		}
	}
	if c.aligned != nil {
		c.aligned.insert(c.toBasis(le))
	}
	if c.cfg.Mode == ModeExact {
		c.buffer = append(c.buffer, e)
		if c.cfg.MaxBuffer > 0 && len(c.buffer) >= c.cfg.MaxBuffer {
			c.stats.BufferOverflows++
			c.stats.Segments++
			c.emit(e)
			c.startSegment(e)
			return e, true
		}
	}
	return PointN{}, false
}

func (c *CompressorN) restartAt(e PointN) (PointN, bool) {
	kp := c.lastInc
	c.stats.Segments++
	c.emit(kp)
	c.startSegment(kp)
	c.include(e, c.local(e))
	return kp, true
}

// CompressBatchN runs a fresh pass over pts and returns the compressed key
// points. Points with mismatched dimensions yield an error.
func (c *CompressorN) CompressBatchN(pts []PointN) ([]PointN, error) {
	if len(pts) == 0 {
		return nil, nil
	}
	out := make([]PointN, 0, 16)
	for _, p := range pts {
		kp, ok, err := c.Push(p)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, kp)
		}
	}
	if kp, ok := c.Flush(); ok {
		out = append(out, kp)
	}
	return out, nil
}
