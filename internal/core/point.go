// Package core implements the Bounded Quadrant System (BQS) online
// trajectory compression algorithm of Liu et al. (ICDE 2015), including the
// exact variant (Algorithm 1), the constant-time/constant-space fast variant
// (FBQS, Section V-E), the data-centric rotation refinement (Section V-D)
// and the 3-D octant generalization (Section V-G).
//
// The algorithm consumes a stream of projected points and emits the key
// points of an error-bounded compressed trajectory: every point of the
// original stream lies within the configured tolerance of the compressed
// segment it falls into. Decisions are made from a per-quadrant convex-hull
// bounding structure (a minimal bounding box plus two angular bounding
// lines) whose at most eight significant points yield a lower bound dlb and
// an upper bound dub on the maximum deviation, so that the expensive full
// deviation scan is needed only when the tolerance falls between the bounds
// — and never in the fast variant, which conservatively cuts the segment
// instead.
package core

import (
	"errors"
	"fmt"
	"math"

	"github.com/trajcomp/bqs/internal/geom"
)

// Point is a trajectory sample in the projected metric plane.
type Point struct {
	X, Y float64 // projected coordinates in metres (e.g. UTM easting/northing)
	T    float64 // timestamp in seconds (any monotonic epoch)
}

// Vec returns the spatial components of p.
func (p Point) Vec() geom.Vec { return geom.Vec{X: p.X, Y: p.Y} }

// Equal reports whether two points coincide in space and time.
func (p Point) Equal(o Point) bool { return p.X == o.X && p.Y == o.Y && p.T == o.T }

// IsFinite reports whether all components are finite numbers.
func (p Point) IsFinite() bool {
	return p.Vec().IsFinite() && !math.IsNaN(p.T) && !math.IsInf(p.T, 0)
}

// Metric selects the deviation metric. The paper defines deviation with the
// point-to-line distance "for simplicity of the proof" and notes that the
// point-to-segment distance "can be easily used within BQS too"
// (Equation 11); both are supported.
type Metric int

const (
	// MetricLine measures deviation as distance to the infinite line
	// through the segment endpoints (the paper's default).
	MetricLine Metric = iota
	// MetricSegment measures deviation as distance to the closed segment
	// between the endpoints.
	MetricSegment
)

// String returns the metric name.
func (m Metric) String() string {
	switch m {
	case MetricLine:
		return "line"
	case MetricSegment:
		return "segment"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// Mode selects between the exact BQS algorithm and the fast variant.
type Mode int

const (
	// ModeExact is Algorithm 1: when the tolerance falls between the
	// bounds, the true deviation is computed over the buffered points.
	ModeExact Mode = iota
	// ModeFast is FBQS: uncertainty triggers a conservative segment cut,
	// eliminating the buffer and making each step O(1) time and space.
	ModeFast
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeExact:
		return "bqs"
	case ModeFast:
		return "fbqs"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// DefaultRotationWarmup is the size of the tiny buffer used by the
// data-centric rotation step; the paper suggests "the first few points
// (e.g. 5)".
const DefaultRotationWarmup = 5

// Config parameterizes a Compressor.
type Config struct {
	// Tolerance is the deviation bound d in metres. Must be positive.
	Tolerance float64
	// Mode selects exact BQS or fast BQS. Default ModeExact.
	Mode Mode
	// Metric selects the deviation metric. Default MetricLine.
	Metric Metric
	// RotationWarmup is the number of far points buffered before the
	// data-centric rotation is fixed. 0 disables rotation; negative values
	// select DefaultRotationWarmup.
	RotationWarmup int
	// MaxBuffer caps the exact-mode deviation buffer; when the cap is
	// reached the segment is cut at the current point, mirroring the
	// buffer-full behaviour of the windowed baselines. 0 means unlimited.
	// Ignored in ModeFast, which keeps no buffer.
	MaxBuffer int
	// Trace, when non-nil, receives the bound pair computed for every
	// point that reaches the bounding structure, along with the true
	// deviation when it is available (exact mode only; NaN otherwise).
	// Used to regenerate Figure 3 of the paper.
	Trace func(TracePoint)
}

// TracePoint is one instrumented decision, as plotted in Figure 3.
type TracePoint struct {
	Index  int     // 1-based index of the point in the stream
	LB     float64 // aggregated lower bound dlb
	UB     float64 // aggregated upper bound dub
	Actual float64 // true max deviation (NaN in fast mode)
}

// Stats counts per-point decision outcomes. The paper's pruning power is
// 1 - FullComputations/Points: the fraction of points decided from bounds
// alone.
type Stats struct {
	Points            int // points pushed
	KeyPoints         int // key points emitted (including flushes)
	Segments          int // segment cuts (restarts)
	BoundIncludes     int // included because dub ≤ d
	BoundRestarts     int // cut because dlb > d
	FullComputations  int // exact deviation scans (warmup + uncertain cases)
	ExactIncludes     int // uncertain cases resolved to include
	ExactRestarts     int // uncertain cases resolved to cut
	UncertainRestarts int // fast-mode conservative cuts
	BufferOverflows   int // exact-mode forced cuts due to MaxBuffer
	DroppedPoints     int // non-finite inputs rejected at Push
}

// PruningPower returns the fraction of points decided without a full
// deviation computation (Section VI-C1). It returns 1 for an empty stream.
func (s Stats) PruningPower() float64 {
	if s.Points == 0 {
		return 1
	}
	return 1 - float64(s.FullComputations)/float64(s.Points)
}

// CompressionRate returns KeyPoints/Points, the paper's compression-rate
// metric (lower is better). It returns 0 for an empty stream.
func (s Stats) CompressionRate() float64 {
	if s.Points == 0 {
		return 0
	}
	return float64(s.KeyPoints) / float64(s.Points)
}

// Validate checks the configuration and applies defaults, returning the
// effective configuration.
func (c Config) Validate() (Config, error) {
	if math.IsNaN(c.Tolerance) || math.IsInf(c.Tolerance, 0) || c.Tolerance <= 0 {
		return c, errors.New("core: tolerance must be a positive finite number of metres")
	}
	if c.Tolerance <= geom.Eps {
		// The geometry layer resolves degeneracies at geom.Eps (1e-9 m,
		// far below GPS noise); a tolerance at or under it is meaningless
		// and would let tracked witness directions fall into the clipper's
		// epsilon regime. A tolerance this small usually means raw degrees
		// were fed in instead of projected metre coordinates.
		return c, errors.New("core: tolerance must exceed 1e-9 m — feed projected metre coordinates, not raw degrees")
	}
	if c.Mode != ModeExact && c.Mode != ModeFast {
		return c, fmt.Errorf("core: unknown mode %d", int(c.Mode))
	}
	if c.Metric != MetricLine && c.Metric != MetricSegment {
		return c, fmt.Errorf("core: unknown metric %d", int(c.Metric))
	}
	if c.RotationWarmup < 0 {
		c.RotationWarmup = DefaultRotationWarmup
	}
	if c.RotationWarmup > 1024 {
		return c, fmt.Errorf("core: rotation warmup %d unreasonably large", c.RotationWarmup)
	}
	if c.MaxBuffer < 0 {
		return c, errors.New("core: MaxBuffer must be ≥ 0")
	}
	return c, nil
}

// MaxDeviation returns the maximum deviation of pts from the path between
// s and e under the given metric. It is the full computation the bounds are
// designed to avoid.
func MaxDeviation(pts []Point, s, e Point, metric Metric) float64 {
	line := geom.Line{A: s.Vec(), B: e.Vec()}
	var maxD float64
	for _, p := range pts {
		var d float64
		if metric == MetricSegment {
			d = geom.DistToSegment(p.Vec(), s.Vec(), e.Vec())
		} else {
			d = geom.DistToLine(p.Vec(), line)
		}
		if d > maxD {
			maxD = d
		}
	}
	return maxD
}
