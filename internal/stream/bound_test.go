package stream

import (
	"math"
	"testing"

	"github.com/trajcomp/bqs/internal/baseline"
	"github.com/trajcomp/bqs/internal/core"
	"github.com/trajcomp/bqs/internal/synth"
)

// TestRegistryErrorBound asserts the paper's core guarantee for EVERY
// registered compressor at once, rather than per-algorithm: on synthetic
// vehicle and walk traces, every original point must lie within the
// tolerance of the decompressed polyline. The deviation is measured per
// algorithm family — perpendicular distance to the enclosing compressed
// segment (the line metric every built-in is configured with) for the
// polyline compressors, and the dead-reckoning prediction error for
// "dr", whose guarantee is against the extrapolated position rather
// than the key-point polyline.
//
// Any future Register'd compressor is automatically held to the default
// polyline bound.
func TestRegistryErrorBound(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-trace sweep")
	}
	traces := registryTraces()
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			for _, tol := range []float64{5, 25} {
				for _, tr := range traces {
					if name == "dr" {
						checkDeadReckoningBound(t, tr, tol)
						continue
					}
					checkPolylineBound(t, name, tr, tol)
				}
			}
		})
	}
}

type boundTrace struct {
	name string
	pts  []core.Point
}

func registryTraces() []boundTrace {
	vcfg := synth.DefaultVehicleConfig(11)
	vcfg.Days = 1
	wcfg := synth.DefaultWalkConfig(12)
	wcfg.N = 4000
	return []boundTrace{
		{"vehicle", synth.Vehicle(vcfg).Points()},
		{"walk", synth.Walk(wcfg).Points()},
	}
}

// checkPolylineBound runs the named compressor over the trace and
// verifies every point against its timestamp-matched compressed segment
// with the line metric.
func checkPolylineBound(t *testing.T, name string, tr boundTrace, tol float64) {
	t.Helper()
	c, err := New(name, tol)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	keys := Compress(c, tr.pts)
	if len(keys) == 0 {
		t.Fatalf("%s/%s: no key points from %d samples", name, tr.name, len(tr.pts))
	}
	worst := 0.0
	ki := 0
	for _, p := range tr.pts {
		for ki+1 < len(keys) && keys[ki+1].T < p.T {
			ki++
		}
		if ki+1 >= len(keys) {
			break
		}
		if p.T <= keys[ki].T || p.T >= keys[ki+1].T {
			continue
		}
		if d := core.MaxDeviation([]core.Point{p}, keys[ki], keys[ki+1], core.MetricLine); d > worst {
			worst = d
		}
	}
	if worst > tol*(1+1e-9) {
		t.Errorf("%s/%s tol %g: worst deviation %g exceeds the bound", name, tr.name, tol, worst)
	}
}

// checkDeadReckoningBound replays the trace through the registry's "dr"
// compressor while shadow-tracking the anchor state it must be using
// (finite-difference velocities, exactly as DeadReckoning.Push
// computes them) and verifies the paper's DR guarantee: every
// non-reporting sample lies within the tolerance of the position
// extrapolated from the last report.
func checkDeadReckoningBound(t *testing.T, tr boundTrace, tol float64) {
	t.Helper()
	c, err := New("dr", tol)
	if err != nil {
		t.Fatal(err)
	}
	var (
		anchor         core.Point
		avx, avy       float64
		prev           core.Point
		havePrev, open bool
	)
	worst := 0.0
	for _, p := range tr.pts {
		var vx, vy float64
		if havePrev {
			if dt := p.T - prev.T; dt > 0 && !math.IsInf(dt, 0) {
				vx = (p.X - prev.X) / dt
				vy = (p.Y - prev.Y) / dt
			}
		}
		_, reported := c.Push(p)
		if reported || !open {
			if !reported {
				t.Fatalf("dr/%s: first sample was not reported", tr.name)
			}
			anchor, avx, avy, open = p, vx, vy, true
		} else {
			rec := baseline.ReconstructAt(anchor, avx, avy, p.T)
			d := math.Hypot(p.X-rec.X, p.Y-rec.Y)
			if d > worst {
				worst = d
			}
		}
		prev, havePrev = p, true
	}
	if worst > tol*(1+1e-9) {
		t.Errorf("dr/%s tol %g: worst prediction error %g exceeds the bound", tr.name, tol, worst)
	}
}
