package stream

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// Golden-file regression tests: the exact key-point output of the core
// compressors on a checked-in fixture trace is frozen, so a refactor
// that changes compression behavior — even by one rounding step — fails
// loudly instead of silently shifting results.
//
// Regenerate after an INTENTIONAL behavior change with:
//
//	go test ./internal/stream -run TestGolden -update
//
// and review the diff of testdata/ like any other code change.

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

const goldenTolerance = 10.0

// goldenAlgos are the frozen (name, file) pairs.
var goldenAlgos = []string{"bqs", "fbqs", "dr"}

func goldenFixture(t *testing.T) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "golden_trace.csv"))
	if err != nil {
		t.Fatalf("missing fixture (its provenance is documented in its own header comment): %v", err)
	}
	return data
}

func TestGoldenKeyPoints(t *testing.T) {
	raw := goldenFixture(t)
	pts, err := ReadCSV(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("empty fixture")
	}
	for _, name := range goldenAlgos {
		name := name
		t.Run(name, func(t *testing.T) {
			c, err := New(name, goldenTolerance)
			if err != nil {
				t.Fatal(err)
			}
			keys := Compress(c, pts)
			var buf bytes.Buffer
			if err := WriteCSV(&buf, keys); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "golden_"+name+".csv")
			if *updateGolden {
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("rewrote %s (%d key points)", path, len(keys))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update once): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("%s output changed on the fixture trace (%d key points now).\n"+
					"If this is an intentional algorithm change, regenerate with -update and review the diff;\n"+
					"otherwise a refactor silently altered compression behavior.", name, len(keys))
			}
		})
	}
}
