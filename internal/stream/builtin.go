package stream

import (
	"github.com/trajcomp/bqs/internal/baseline"
	"github.com/trajcomp/bqs/internal/core"
)

// Built-in registrations: every online algorithm in the repository is
// constructible by config string. Buffer sizes and the time-sensitive
// gamma use the paper's defaults; callers needing other parameters
// register their own closure under a new name.
const (
	// DefaultBufferSize is the window for the buffered baselines (mid
	// range of the paper's Table III sweep 32–256).
	DefaultBufferSize = 128
	// DefaultGamma converts temporal error to spatial error for the
	// "timesensitive" registration, in metres per second.
	DefaultGamma = 1.0
)

func init() {
	MustRegister("bqs", func(tol float64) (Compressor, error) {
		c, err := core.NewCompressor(core.Config{Tolerance: tol, Mode: core.ModeExact, RotationWarmup: -1})
		if err != nil {
			return nil, err
		}
		return c, nil
	})
	MustRegister("fbqs", func(tol float64) (Compressor, error) {
		c, err := core.NewCompressor(core.Config{Tolerance: tol, Mode: core.ModeFast, RotationWarmup: -1})
		if err != nil {
			return nil, err
		}
		return c, nil
	})
	MustRegister("timesensitive", func(tol float64) (Compressor, error) {
		c, err := core.NewTimeSensitive(core.Config{Tolerance: tol, Mode: core.ModeFast, RotationWarmup: -1}, DefaultGamma)
		if err != nil {
			return nil, err
		}
		return c, nil
	})
	MustRegister("dr", func(tol float64) (Compressor, error) {
		c, err := baseline.NewDeadReckoning(tol)
		if err != nil {
			return nil, err
		}
		return c, nil
	})
	MustRegister("bgd", func(tol float64) (Compressor, error) {
		c, err := baseline.NewBufferedGreedy(tol, DefaultBufferSize, core.MetricLine)
		if err != nil {
			return nil, err
		}
		return c, nil
	})
	MustRegister("bdp", func(tol float64) (Compressor, error) {
		c, err := baseline.NewBufferedDP(tol, DefaultBufferSize, core.MetricLine)
		if err != nil {
			return nil, err
		}
		return Adapt(c), nil
	})
}
