// Package stream provides the streaming plumbing around the compressors:
// a common interface for all online algorithms, a goroutine pipeline for
// running compressors against live point sources, and CSV trace IO.
//
// The paper's target platform consumes GPS fixes "in a stream fashion";
// this package is the Go-native equivalent of that acquisition loop.
package stream

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/trajcomp/bqs/internal/core"
)

// Compressor is the common streaming interface: every online algorithm in
// this repository (BQS, FBQS, BGD, DR, time-sensitive 3-D wrappers)
// satisfies it directly or through a thin adapter.
type Compressor interface {
	// Push feeds the next point and returns a finalized key point, if any.
	Push(core.Point) (core.Point, bool)
	// Flush terminates the trajectory and returns the final key point, if
	// one is due.
	Flush() (core.Point, bool)
}

// MultiEmitter adapts compressors that can emit several key points per
// push (e.g. Buffered Douglas-Peucker) to pipeline use.
type MultiEmitter interface {
	Push(core.Point) []core.Point
	Flush() []core.Point
}

// multiAdapter converts a MultiEmitter into a Compressor by queueing
// multi-point emissions. The queue is drained by a moving head index and
// its backing array is reused once empty — re-slicing the front off
// (queue = queue[1:]) would strand the consumed prefix's capacity and
// force a fresh allocation per emission burst.
type multiAdapter struct {
	inner MultiEmitter
	queue []core.Point
	head  int
}

// Adapt wraps a MultiEmitter as a queue-draining Compressor. Each Push
// returns at most one key point; remaining emissions are surfaced by
// subsequent pushes (order is preserved and nothing is lost as long as the
// caller drains with Flush at the end).
func Adapt(m MultiEmitter) Compressor { return &multiAdapter{inner: m} }

// pop surfaces the next queued key point, recycling the buffer when the
// queue empties.
func (a *multiAdapter) pop() (core.Point, bool) {
	if a.head >= len(a.queue) {
		a.queue = a.queue[:0]
		a.head = 0
		return core.Point{}, false
	}
	kp := a.queue[a.head]
	a.head++
	if a.head == len(a.queue) {
		a.queue = a.queue[:0]
		a.head = 0
	}
	return kp, true
}

func (a *multiAdapter) Push(p core.Point) (core.Point, bool) {
	a.queue = append(a.queue, a.inner.Push(p)...)
	return a.pop()
}

// Flush surfaces one queued key point per call (the wrapped flush may
// produce several); call repeatedly — or use FlushAll — until it returns
// false. The wrapped MultiEmitter's Flush is only effectful once, so
// repeated calls are safe.
func (a *multiAdapter) Flush() (core.Point, bool) {
	a.queue = append(a.queue, a.inner.Flush()...)
	return a.pop()
}

// FlushAll drains a Compressor completely: it calls Flush repeatedly until
// no more key points are emitted (at most a bounded number of times) and
// returns them all.
func FlushAll(c Compressor) []core.Point {
	var out []core.Point
	for i := 0; i < 1<<20; i++ {
		kp, ok := c.Flush()
		if !ok {
			return out
		}
		out = append(out, kp)
	}
	return out
}

// Run drives a compressor over a point channel until the channel closes or
// the context is cancelled, sending key points to out. It closes out when
// done and returns the number of points consumed. Flush key points are
// included.
func Run(ctx context.Context, c Compressor, in <-chan core.Point, out chan<- core.Point) (int, error) {
	defer close(out)
	n := 0
	for {
		select {
		case <-ctx.Done():
			return n, ctx.Err()
		case p, ok := <-in:
			if !ok {
				for _, kp := range FlushAll(c) {
					select {
					case out <- kp:
					case <-ctx.Done():
						return n, ctx.Err()
					}
				}
				return n, nil
			}
			n++
			if kp, emitted := c.Push(p); emitted {
				select {
				case out <- kp:
				case <-ctx.Done():
					return n, ctx.Err()
				}
			}
		}
	}
}

// Compress is the batch convenience wrapper: it runs the compressor over
// pts and returns all key points including the flush.
func Compress(c Compressor, pts []core.Point) []core.Point {
	out := make([]core.Point, 0, min(len(pts)/8+2, 1024))
	for _, p := range pts {
		if kp, ok := c.Push(p); ok {
			out = append(out, kp)
		}
	}
	out = append(out, FlushAll(c)...)
	return out
}

// ErrBadRecord reports a malformed CSV record.
var ErrBadRecord = errors.New("stream: malformed record (want x,y,t per line)")

// WriteCSV writes points as "x,y,t" lines.
func WriteCSV(w io.Writer, pts []core.Point) error {
	bw := bufio.NewWriter(w)
	for _, p := range pts {
		if _, err := fmt.Fprintf(bw, "%.6f,%.6f,%.3f\n", p.X, p.Y, p.T); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV reads "x,y,t" lines (blank lines and #-comments skipped).
func ReadCSV(r io.Reader) ([]core.Point, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var pts []core.Point
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) < 3 {
			return nil, fmt.Errorf("%w: line %d", ErrBadRecord, lineNo)
		}
		x, err1 := strconv.ParseFloat(strings.TrimSpace(fields[0]), 64)
		y, err2 := strconv.ParseFloat(strings.TrimSpace(fields[1]), 64)
		t, err3 := strconv.ParseFloat(strings.TrimSpace(fields[2]), 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("%w: line %d", ErrBadRecord, lineNo)
		}
		pts = append(pts, core.Point{X: x, Y: y, T: t})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return pts, nil
}
