package stream

import (
	"fmt"
	"sort"
	"sync"
)

// Factory constructs a Compressor with the given deviation tolerance in
// metres. Factories are registered under a name with Register and looked
// up with New, so compressors are constructible from configuration
// strings ("fbqs", "dr", ...) without the caller importing the
// implementing package.
type Factory func(tolerance float64) (Compressor, error)

// ErrUnknownCompressor reports a New call with an unregistered name.
var ErrUnknownCompressor = fmt.Errorf("stream: unknown compressor")

// ErrDuplicateCompressor reports a Register call with an already-taken
// name.
var ErrDuplicateCompressor = fmt.Errorf("stream: compressor already registered")

// ErrNilFactory reports a Register call with a nil factory.
var ErrNilFactory = fmt.Errorf("stream: nil compressor factory")

var (
	regMu    sync.RWMutex
	registry = make(map[string]Factory)
)

// Register makes a compressor constructible by name. Names are
// case-sensitive and must be non-empty; registering a name twice is an
// error (the first registration wins). Safe for concurrent use.
func Register(name string, f Factory) error {
	if f == nil {
		return fmt.Errorf("%w: %q", ErrNilFactory, name)
	}
	if name == "" {
		return fmt.Errorf("stream: empty compressor name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateCompressor, name)
	}
	registry[name] = f
	return nil
}

// MustRegister is Register for package init paths: it panics on error.
func MustRegister(name string, f Factory) {
	if err := Register(name, f); err != nil {
		panic(err)
	}
}

// New constructs a registered compressor by name. The error distinguishes
// an unknown name (ErrUnknownCompressor, listing the registered names)
// from a factory failure (e.g. an invalid tolerance).
func New(name string, tolerance float64) (Compressor, error) {
	regMu.RLock()
	f, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q (registered: %v)", ErrUnknownCompressor, name, Names())
	}
	return f(tolerance)
}

// Names returns the registered compressor names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Resetter is implemented by compressors whose state can be cleared for
// reuse without reallocation; the ingestion engine pools such compressors
// across device sessions.
type Resetter interface {
	Reset()
}
