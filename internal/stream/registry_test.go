package stream

import (
	"errors"
	"testing"

	"github.com/trajcomp/bqs/internal/core"
)

func TestRegistryBuiltins(t *testing.T) {
	names := Names()
	for _, want := range []string{"bqs", "fbqs", "dr", "timesensitive", "bdp", "bgd"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("builtin %q not registered (have %v)", want, names)
		}
	}
	// Every builtin constructs and round-trips a tiny stream within its
	// error bound contract (smoke: emits at least first point).
	pts := []core.Point{
		{X: 0, Y: 0, T: 0}, {X: 10, Y: 1, T: 1}, {X: 20, Y: -1, T: 2}, {X: 30, Y: 0, T: 3},
	}
	for _, n := range names {
		c, err := New(n, 5)
		if err != nil {
			t.Errorf("New(%q): %v", n, err)
			continue
		}
		keys := Compress(c, pts)
		if len(keys) == 0 {
			t.Errorf("%q: no key points from %d-point stream", n, len(pts))
		}
		if len(keys) > 0 && !keys[0].Equal(pts[0]) {
			t.Errorf("%q: first key %v, want first point %v", n, keys[0], pts[0])
		}
	}
}

func TestRegistryUnknownName(t *testing.T) {
	_, err := New("definitely-not-registered", 5)
	if !errors.Is(err, ErrUnknownCompressor) {
		t.Fatalf("err = %v, want ErrUnknownCompressor", err)
	}
}

func TestRegistryDuplicateRegister(t *testing.T) {
	f := func(tol float64) (Compressor, error) {
		c, err := core.NewCompressor(core.Config{Tolerance: tol})
		if err != nil {
			return nil, err
		}
		return c, nil
	}
	if err := Register("dup-test", f); err != nil {
		t.Fatal(err)
	}
	if err := Register("dup-test", f); !errors.Is(err, ErrDuplicateCompressor) {
		t.Fatalf("second Register = %v, want ErrDuplicateCompressor", err)
	}
}

func TestRegistryNilFactoryAndEmptyName(t *testing.T) {
	if err := Register("nil-test", nil); !errors.Is(err, ErrNilFactory) {
		t.Fatalf("nil factory: err = %v, want ErrNilFactory", err)
	}
	if err := Register("", func(float64) (Compressor, error) { return nil, nil }); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestRegistryFactoryError(t *testing.T) {
	// A registered factory's own validation error must pass through
	// (and not be confused with an unknown name).
	_, err := New("fbqs", -1)
	if err == nil {
		t.Fatal("negative tolerance accepted")
	}
	if errors.Is(err, ErrUnknownCompressor) {
		t.Fatalf("factory error mislabeled as unknown name: %v", err)
	}
}
