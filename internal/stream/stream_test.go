package stream

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/trajcomp/bqs/internal/baseline"
	"github.com/trajcomp/bqs/internal/core"
)

func line(n int, spacing float64) []core.Point {
	pts := make([]core.Point, n)
	for i := range pts {
		pts[i] = core.Point{X: float64(i) * spacing, Y: 0, T: float64(i)}
	}
	return pts
}

func TestCompressWithCoreCompressor(t *testing.T) {
	c, err := core.NewCompressor(core.Config{Tolerance: 5})
	if err != nil {
		t.Fatal(err)
	}
	keys := Compress(c, line(100, 10))
	if len(keys) != 2 {
		t.Errorf("keys = %d, want 2", len(keys))
	}
}

func TestAdaptBufferedDP(t *testing.T) {
	bdp, err := baseline.NewBufferedDP(5, 8, core.MetricLine)
	if err != nil {
		t.Fatal(err)
	}
	a := Adapt(bdp)
	keys := Compress(a, line(50, 10))
	// Straight line with buffer 8: ≈ ⌈49/7⌉+1 points, all surfaced.
	want := (50-2)/7 + 2
	if len(keys) != want {
		t.Errorf("adapted BDP keys = %d, want %d", len(keys), want)
	}
	// All key points must be original stream points in order.
	for i := 1; i < len(keys); i++ {
		if keys[i].T <= keys[i-1].T {
			t.Fatalf("keys out of order at %d", i)
		}
	}
}

func TestFlushAllIdempotent(t *testing.T) {
	c, _ := core.NewCompressor(core.Config{Tolerance: 5})
	c.Push(core.Point{X: 0, T: 0})
	c.Push(core.Point{X: 100, T: 1})
	out := FlushAll(c)
	if len(out) != 1 {
		t.Fatalf("FlushAll = %v", out)
	}
	if len(FlushAll(c)) != 0 {
		t.Error("second FlushAll emitted points")
	}
}

func TestRunPipeline(t *testing.T) {
	c, _ := core.NewCompressor(core.Config{Tolerance: 5})
	in := make(chan core.Point)
	out := make(chan core.Point, 64)
	done := make(chan struct{})
	var got []core.Point
	go func() {
		defer close(done)
		for kp := range out {
			got = append(got, kp)
		}
	}()
	go func() {
		for _, p := range line(100, 10) {
			in <- p
		}
		close(in)
	}()
	n, err := Run(context.Background(), c, in, out)
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if n != 100 {
		t.Errorf("consumed %d points", n)
	}
	if len(got) != 2 {
		t.Errorf("pipeline emitted %d keys, want 2", len(got))
	}
}

func TestRunCancellation(t *testing.T) {
	c, _ := core.NewCompressor(core.Config{Tolerance: 5})
	ctx, cancel := context.WithCancel(context.Background())
	in := make(chan core.Point)
	out := make(chan core.Point) // unbuffered, nobody reads
	errCh := make(chan error, 1)
	go func() {
		_, err := Run(ctx, c, in, out)
		errCh <- err
	}()
	in <- core.Point{X: 0, T: 0} // first push emits; Run blocks sending
	cancel()
	select {
	case err := <-errCh:
		if err != context.Canceled {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	pts := []core.Point{
		{X: 1.5, Y: -2.25, T: 100},
		{X: 0, Y: 0, T: 101.5},
	}
	var sb strings.Builder
	if err := WriteCSV(&sb, pts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d points", len(got))
	}
	for i := range pts {
		if dx := got[i].X - pts[i].X; dx > 1e-6 || dx < -1e-6 {
			t.Errorf("point %d: %v vs %v", i, got[i], pts[i])
		}
	}
}

func TestReadCSVCommentsAndErrors(t *testing.T) {
	in := "# header\n\n1,2,3\n  4 , 5 , 6 \n"
	pts, err := ReadCSV(strings.NewReader(in))
	if err != nil || len(pts) != 2 {
		t.Fatalf("pts=%v err=%v", pts, err)
	}
	if _, err := ReadCSV(strings.NewReader("1,2\n")); err == nil {
		t.Error("short record accepted")
	}
	if _, err := ReadCSV(strings.NewReader("a,b,c\n")); err == nil {
		t.Error("non-numeric record accepted")
	}
}
