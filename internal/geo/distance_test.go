package geo

import (
	"math"
	"math/rand"
	"testing"
)

func TestHaversineKnownDistances(t *testing.T) {
	// One degree of longitude on the equator ≈ 111.19 km for the mean
	// sphere radius.
	if d := Haversine(0, 0, 0, 1); math.Abs(d-111195) > 10 {
		t.Errorf("equator degree = %v m", d)
	}
	// Coincident points.
	if d := Haversine(47.1, 8.5, 47.1, 8.5); d != 0 {
		t.Errorf("zero distance = %v", d)
	}
	// Antipodal points ≈ half the circumference.
	want := math.Pi * EarthRadius
	if d := Haversine(0, 0, 0, 180); math.Abs(d-want) > 1 {
		t.Errorf("antipodal = %v, want %v", d, want)
	}
	// Symmetry.
	if d1, d2 := Haversine(12, 34, -56, 78), Haversine(-56, 78, 12, 34); d1 != d2 {
		t.Errorf("asymmetric: %v vs %v", d1, d2)
	}
}

// PathLength reuses each step's latitude cosine as the next step's; the
// reordered arithmetic must stay bit-identical to summing Haversine calls.
func TestPathLengthMatchesHaversineSum(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(50)
		lats := make([]float64, n)
		lons := make([]float64, n)
		lat, lon := rng.Float64()*160-80, rng.Float64()*360-180
		for i := range lats {
			lat += rng.NormFloat64() * 0.01
			lon += rng.NormFloat64() * 0.01
			lats[i], lons[i] = lat, lon
		}
		var want float64
		for i := 1; i < n; i++ {
			want += Haversine(lats[i-1], lons[i-1], lats[i], lons[i])
		}
		if got := PathLength(lats, lons); got != want {
			t.Fatalf("trial %d: PathLength = %v, Haversine sum = %v (diff %v)",
				trial, got, want, got-want)
		}
	}
}

func TestPathLengthDegenerateInputs(t *testing.T) {
	if PathLength(nil, nil) != 0 {
		t.Error("nil slices")
	}
	if PathLength([]float64{1}, []float64{2}) != 0 {
		t.Error("single point")
	}
	if PathLength([]float64{1, 2}, []float64{3}) != 0 {
		t.Error("mismatched lengths")
	}
}

func BenchmarkPathLength(b *testing.B) {
	const n = 1024
	lats := make([]float64, n)
	lons := make([]float64, n)
	rng := rand.New(rand.NewSource(4))
	lat, lon := 47.0, 8.0
	for i := range lats {
		lat += rng.NormFloat64() * 0.001
		lon += rng.NormFloat64() * 0.001
		lats[i], lons[i] = lat, lon
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PathLength(lats, lons)
	}
}
