package geo

import (
	"math"
	"math/rand"
	"testing"
)

// Reference values computed with established UTM implementations.
func TestToUTMKnownPoints(t *testing.T) {
	cases := []struct {
		name     string
		lat, lon float64
		zone     int
		south    bool
		easting  float64
		northing float64
		tol      float64
	}{
		// Brisbane (flying-fox country, the paper's deployment region).
		{"brisbane", -27.4698, 153.0251, 56, true, 502479, 6961528, 2},
		// CN Tower, Toronto (reference vector from the UTM literature).
		{"cntower", 43.642566, -79.387139, 17, false, 630084, 4833438, 2},
		// Equator / central meridian of zone 31.
		{"origin31", 0, 3, 31, false, 500000, 0, 0.5},
	}
	for _, c := range cases {
		u, err := ToUTM(c.lat, c.lon)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if u.Zone != c.zone || u.South != c.south {
			t.Errorf("%s: zone = %d south=%v, want %d %v", c.name, u.Zone, u.South, c.zone, c.south)
		}
		if math.Abs(u.Easting-c.easting) > c.tol {
			t.Errorf("%s: easting = %.1f, want %.1f±%.1f", c.name, u.Easting, c.easting, c.tol)
		}
		if math.Abs(u.Northing-c.northing) > c.tol {
			t.Errorf("%s: northing = %.1f, want %.1f±%.1f", c.name, u.Northing, c.northing, c.tol)
		}
	}
}

func TestUTMRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 2000; i++ {
		lat := rng.Float64()*160 - 80 // stay within the UTM domain
		lon := rng.Float64()*360 - 180
		u, err := ToUTM(lat, lon)
		if err != nil {
			t.Fatalf("ToUTM(%v,%v): %v", lat, lon, err)
		}
		lat2, lon2, err := FromUTM(u)
		if err != nil {
			t.Fatalf("FromUTM(%v): %v", u, err)
		}
		if math.Abs(lat2-lat) > 1e-7 {
			t.Fatalf("lat round trip %v -> %v", lat, lat2)
		}
		dLon := math.Abs(lon2 - lon)
		if dLon > 180 {
			dLon = 360 - dLon
		}
		if dLon > 1e-7 {
			t.Fatalf("lon round trip %v -> %v", lon, lon2)
		}
	}
}

func TestUTMLocalDistancePreserved(t *testing.T) {
	// Within a zone, UTM distances should match great-circle distances to
	// within the combined slack of the 0.9996 scale factor and the
	// sphere-vs-ellipsoid difference (< 0.7% in total).
	lat, lon := -27.4698, 153.0251
	for _, d := range []struct{ dLat, dLon float64 }{
		{0.01, 0}, {0, 0.01}, {0.005, 0.005}, {-0.02, 0.01},
	} {
		u1, _ := ToUTM(lat, lon)
		u2, _ := ToUTM(lat+d.dLat, lon+d.dLon)
		utmDist := math.Hypot(u2.Easting-u1.Easting, u2.Northing-u1.Northing)
		hav := Haversine(lat, lon, lat+d.dLat, lon+d.dLon)
		if rel := math.Abs(utmDist-hav) / hav; rel > 7e-3 {
			t.Errorf("distance mismatch: utm=%v hav=%v rel=%v", utmDist, hav, rel)
		}
	}
}

func TestUTMMeridianArc(t *testing.T) {
	// On the central meridian the northing is k0 times the meridian arc
	// length; the WGS-84 arc from the equator to 45°N is 4,984,944.4 m.
	u, err := ToUTM(45, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.9996 * 4984944.4
	if math.Abs(u.Northing-want) > 1.0 {
		t.Errorf("northing at 45N = %.1f, want %.1f", u.Northing, want)
	}
	if math.Abs(u.Easting-500000) > 1e-6 {
		t.Errorf("easting on central meridian = %.6f, want 500000", u.Easting)
	}
}

func TestUTMScaleFactorOnCentralMeridian(t *testing.T) {
	// Small east-west displacements across the central meridian must be
	// scaled by k0 = 0.9996 within a few ppm.
	lat := -27.0
	u1, _ := ToUTM(lat, 152.999)
	u2, _ := ToUTM(lat, 153.001)
	utmDist := math.Hypot(u2.Easting-u1.Easting, u2.Northing-u1.Northing)
	// Ellipsoidal parallel arc: 0.002° × cos(lat) × normal curvature radius.
	e2 := Flattening * (2 - Flattening)
	sin := math.Sin(lat * math.Pi / 180)
	nu := SemiMajorAxis / math.Sqrt(1-e2*sin*sin)
	arc := 0.002 * math.Pi / 180 * nu * math.Cos(lat*math.Pi/180)
	if rel := math.Abs(utmDist-0.9996*arc) / arc; rel > 1e-5 {
		t.Errorf("scale factor off: utm=%v arc=%v rel=%v", utmDist, arc, rel)
	}
}

func TestToUTMZoneConsistency(t *testing.T) {
	// A point near a zone boundary projected into the neighbouring zone must
	// invert to the same lat/lon.
	lat, lon := -27.5, 150.01 // zone 56 starts at 150E
	u, err := ToUTMZone(lat, lon, 55)
	if err != nil {
		t.Fatal(err)
	}
	if u.Zone != 55 {
		t.Fatalf("zone = %d, want 55", u.Zone)
	}
	lat2, lon2, err := FromUTM(u)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lat2-lat) > 1e-6 || math.Abs(lon2-lon) > 1e-6 {
		t.Errorf("cross-zone round trip: (%v,%v) -> (%v,%v)", lat, lon, lat2, lon2)
	}
}

func TestToUTMErrors(t *testing.T) {
	if _, err := ToUTM(85.1, 0); err == nil {
		t.Error("latitude beyond UTM domain accepted")
	}
	if _, err := ToUTM(math.NaN(), 0); err == nil {
		t.Error("NaN latitude accepted")
	}
	if _, err := ToUTM(0, 181); err == nil {
		t.Error("longitude beyond domain accepted")
	}
	if _, err := ToUTMZone(0, 0, 0); err == nil {
		t.Error("zone 0 accepted")
	}
	if _, err := ToUTMZone(0, 0, 61); err == nil {
		t.Error("zone 61 accepted")
	}
	if _, _, err := FromUTM(UTM{Zone: 0}); err == nil {
		t.Error("FromUTM zone 0 accepted")
	}
}

func TestZoneFor(t *testing.T) {
	cases := []struct {
		lon  float64
		want int
	}{
		{-180, 1}, {-174.0001, 1}, {-174, 2}, {0, 31}, {3, 31}, {6, 32},
		{153.02, 56}, {179.99, 60}, {180, 1}, // +180° wraps into zone 1

	}
	for _, c := range cases {
		if got := ZoneFor(c.lon); got != c.want {
			t.Errorf("ZoneFor(%v) = %d, want %d", c.lon, got, c.want)
		}
	}
}

func TestCentralMeridian(t *testing.T) {
	if got := CentralMeridian(31); got != 3 {
		t.Errorf("CentralMeridian(31) = %v, want 3", got)
	}
	if got := CentralMeridian(56); got != 153 {
		t.Errorf("CentralMeridian(56) = %v, want 153", got)
	}
}

func TestUTMString(t *testing.T) {
	u := UTM{Easting: 1234.56, Northing: 7890.12, Zone: 56, South: true}
	if got := u.String(); got != "zone 56S 1234.6E 7890.1N" {
		t.Errorf("String = %q", got)
	}
}

func TestHaversineKnown(t *testing.T) {
	// Brisbane to Sydney is about 733 km great-circle.
	d := Haversine(-27.4698, 153.0251, -33.8568, 151.2153)
	if d < 720e3 || d > 745e3 {
		t.Errorf("Brisbane-Sydney = %v m", d)
	}
	if d := Haversine(10, 20, 10, 20); d != 0 {
		t.Errorf("identical points = %v", d)
	}
	// One degree of latitude ≈ 111 km.
	d = Haversine(0, 0, 1, 0)
	if math.Abs(d-111195) > 200 {
		t.Errorf("1° latitude = %v", d)
	}
}

func TestPathLength(t *testing.T) {
	lats := []float64{0, 0, 0}
	lons := []float64{0, 1, 2}
	d := PathLength(lats, lons)
	want := 2 * Haversine(0, 0, 0, 1)
	if math.Abs(d-want) > 1 {
		t.Errorf("PathLength = %v, want %v", d, want)
	}
	if PathLength(lats[:1], lons[:1]) != 0 {
		t.Error("single point path has nonzero length")
	}
	if PathLength(lats, lons[:2]) != 0 {
		t.Error("mismatched slices should yield 0")
	}
}

func TestMetersPerDegree(t *testing.T) {
	perLat, perLon := MetersPerDegree(0)
	if math.Abs(perLat-110574) > 100 {
		t.Errorf("equator lat scale = %v", perLat)
	}
	if math.Abs(perLon-111320) > 100 {
		t.Errorf("equator lon scale = %v", perLon)
	}
	_, perLon60 := MetersPerDegree(60)
	if math.Abs(perLon60-55800) > 300 {
		t.Errorf("60° lon scale = %v", perLon60)
	}
}
