package geo

import "math"

// EarthRadius is the mean Earth radius in metres (IUGG).
const EarthRadius = 6371008.8

// Haversine returns the great-circle distance in metres between two WGS-84
// coordinates. It is used for travel-distance bookkeeping, not for the
// compression metric (which lives in the projected plane).
func Haversine(lat1, lon1, lat2, lon2 float64) float64 {
	const deg = math.Pi / 180
	phi1, phi2 := lat1*deg, lat2*deg
	dPhi := (lat2 - lat1) * deg
	dLam := (lon2 - lon1) * deg
	s1 := math.Sin(dPhi / 2)
	s2 := math.Sin(dLam / 2)
	h := s1*s1 + math.Cos(phi1)*math.Cos(phi2)*s2*s2
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadius * math.Asin(math.Sqrt(h))
}

// PathLength returns the summed haversine length in metres of a lat/lon
// polyline given as parallel slices. Mismatched or short inputs yield 0.
func PathLength(lats, lons []float64) float64 {
	if len(lats) != len(lons) || len(lats) < 2 {
		return 0
	}
	var total float64
	for i := 1; i < len(lats); i++ {
		total += Haversine(lats[i-1], lons[i-1], lats[i], lons[i])
	}
	return total
}

// MetersPerDegree returns the approximate metres per degree of latitude and
// longitude at a given latitude; handy for quick synthetic-data scaling.
func MetersPerDegree(lat float64) (perLatDeg, perLonDeg float64) {
	const deg = math.Pi / 180
	perLatDeg = 111132.92 - 559.82*math.Cos(2*lat*deg) + 1.175*math.Cos(4*lat*deg)
	perLonDeg = 111412.84*math.Cos(lat*deg) - 93.5*math.Cos(3*lat*deg)
	return perLatDeg, perLonDeg
}
