package geo

import "math"

// EarthRadius is the mean Earth radius in metres (IUGG).
const EarthRadius = 6371008.8

// degToRad converts degrees to radians; hoisted to package level so every
// conversion site shares the one constant.
const degToRad = math.Pi / 180

// Haversine returns the great-circle distance in metres between two WGS-84
// coordinates. It is used for travel-distance bookkeeping, not for the
// compression metric (which lives in the projected plane).
func Haversine(lat1, lon1, lat2, lon2 float64) float64 {
	return haversineCos(math.Cos(lat1*degToRad), math.Cos(lat2*degToRad), lat2-lat1, lon2-lon1)
}

// haversineCos is the haversine kernel with the latitude cosines
// precomputed by the caller and the deltas still in degrees. PathLength
// feeds it one fresh cosine per step, reusing the previous step's — the
// arithmetic is ordered exactly as in Haversine, so the incremental sum
// is bit-identical to summing Haversine calls.
func haversineCos(cosPhi1, cosPhi2, dLatDeg, dLonDeg float64) float64 {
	dPhi := dLatDeg * degToRad
	dLam := dLonDeg * degToRad
	s1 := math.Sin(dPhi / 2)
	s2 := math.Sin(dLam / 2)
	h := s1*s1 + cosPhi1*cosPhi2*s2*s2
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadius * math.Asin(math.Sqrt(h))
}

// PathLength returns the summed haversine length in metres of a lat/lon
// polyline given as parallel slices. Mismatched or short inputs yield 0.
// Each step reuses the previous point's latitude cosine, halving the
// trigonometric work of the naive per-pair evaluation.
func PathLength(lats, lons []float64) float64 {
	if len(lats) != len(lons) || len(lats) < 2 {
		return 0
	}
	var total float64
	cosPrev := math.Cos(lats[0] * degToRad)
	for i := 1; i < len(lats); i++ {
		cosCur := math.Cos(lats[i] * degToRad)
		total += haversineCos(cosPrev, cosCur, lats[i]-lats[i-1], lons[i]-lons[i-1])
		cosPrev = cosCur
	}
	return total
}

// MetersPerDegree returns the approximate metres per degree of latitude and
// longitude at a given latitude; handy for quick synthetic-data scaling.
func MetersPerDegree(lat float64) (perLatDeg, perLonDeg float64) {
	perLatDeg = 111132.92 - 559.82*math.Cos(2*lat*degToRad) + 1.175*math.Cos(4*lat*degToRad)
	perLonDeg = 111412.84*math.Cos(lat*degToRad) - 93.5*math.Cos(3*lat*degToRad)
	return perLatDeg, perLonDeg
}
