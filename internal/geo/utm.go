// Package geo converts GPS fixes (WGS-84 latitude/longitude) into the
// projected metric plane the BQS algorithms operate on. The paper sets the
// virtual coordinate axes of each quadrant system to "the UTM (Universal
// Transverse Mercator) projected x and y axes", so this package implements
// the WGS-84 ↔ UTM transverse Mercator transform (Krüger series, sub-cm
// accuracy within a zone), plus haversine great-circle distance for
// travel-distance bookkeeping.
package geo

import (
	"errors"
	"fmt"
	"math"
)

// WGS-84 ellipsoid constants.
const (
	// SemiMajorAxis is the WGS-84 equatorial radius in metres.
	SemiMajorAxis = 6378137.0
	// Flattening is the WGS-84 ellipsoid flattening.
	Flattening = 1 / 298.257223563
	// utmScale is the UTM central-meridian scale factor k0.
	utmScale = 0.9996
	// utmFalseEasting is added to easting so coordinates stay positive.
	utmFalseEasting = 500000.0
	// utmFalseNorthing is added to southern-hemisphere northings.
	utmFalseNorthing = 10000000.0
)

// Derived ellipsoid quantities (third flattening series, Karney 2011).
var (
	n1  = Flattening / (2 - Flattening) // third flattening n
	aSM = SemiMajorAxis / (1 + n1) * (1 + n1*n1/4 + n1*n1*n1*n1/64)

	// Forward series coefficients alpha.
	alpha = [3]float64{
		n1/2 - 2.0/3.0*n1*n1 + 5.0/16.0*n1*n1*n1,
		13.0/48.0*n1*n1 - 3.0/5.0*n1*n1*n1,
		61.0 / 240.0 * n1 * n1 * n1,
	}
	// Inverse series coefficients beta.
	beta = [3]float64{
		n1/2 - 2.0/3.0*n1*n1 + 37.0/96.0*n1*n1*n1,
		1.0/48.0*n1*n1 + 1.0/15.0*n1*n1*n1,
		17.0 / 480.0 * n1 * n1 * n1,
	}
	// Latitude recovery series delta.
	delta = [3]float64{
		2*n1 - 2.0/3.0*n1*n1 - 2*n1*n1*n1,
		7.0/3.0*n1*n1 - 8.0/5.0*n1*n1*n1,
		56.0 / 15.0 * n1 * n1 * n1,
	}
)

// ErrOutOfRange reports a latitude/longitude outside the UTM domain.
var ErrOutOfRange = errors.New("geo: coordinate outside the UTM domain (|lat| ≤ 84°, |lon| ≤ 180°)")

// UTM is a projected position: easting/northing in metres within a zone.
type UTM struct {
	Easting  float64
	Northing float64
	Zone     int  // 1..60
	South    bool // southern hemisphere
}

// String formats the position in the conventional "55H 334543E 6251678N" style.
func (u UTM) String() string {
	h := "N"
	if u.South {
		h = "S"
	}
	return fmt.Sprintf("zone %d%s %.1fE %.1fN", u.Zone, h, u.Easting, u.Northing)
}

// ZoneFor returns the standard UTM zone number for a longitude.
func ZoneFor(lon float64) int {
	lon = math.Mod(lon+180, 360)
	if lon < 0 {
		lon += 360
	}
	z := int(lon/6) + 1
	if z > 60 {
		z = 60
	}
	return z
}

// CentralMeridian returns the central meridian (degrees) of a UTM zone.
func CentralMeridian(zone int) float64 { return float64(zone)*6 - 183 }

// ToUTM projects a WGS-84 coordinate into UTM using the zone implied by the
// longitude. Latitudes beyond ±84° (the UTM domain) return ErrOutOfRange.
func ToUTM(lat, lon float64) (UTM, error) {
	if math.IsNaN(lat) || math.IsNaN(lon) || math.Abs(lat) > 84 || math.Abs(lon) > 180 {
		return UTM{}, ErrOutOfRange
	}
	zone := ZoneFor(lon)
	e, n := project(lat, lon, CentralMeridian(zone))
	u := UTM{Easting: e + utmFalseEasting, Northing: n, Zone: zone, South: lat < 0}
	if u.South {
		u.Northing += utmFalseNorthing
	}
	return u, nil
}

// ToUTMZone projects into a caller-fixed zone. Trajectories that straddle a
// zone boundary must be projected into a single zone so that the metric
// plane stays continuous; pick the zone of the first fix.
func ToUTMZone(lat, lon float64, zone int) (UTM, error) {
	if math.IsNaN(lat) || math.IsNaN(lon) || math.Abs(lat) > 84 || math.Abs(lon) > 180 {
		return UTM{}, ErrOutOfRange
	}
	if zone < 1 || zone > 60 {
		return UTM{}, fmt.Errorf("geo: invalid UTM zone %d", zone)
	}
	e, n := project(lat, lon, CentralMeridian(zone))
	u := UTM{Easting: e + utmFalseEasting, Northing: n, Zone: zone, South: lat < 0}
	if u.South {
		u.Northing += utmFalseNorthing
	}
	return u, nil
}

// FromUTM inverts the projection back to WGS-84 latitude/longitude.
func FromUTM(u UTM) (lat, lon float64, err error) {
	if u.Zone < 1 || u.Zone > 60 {
		return 0, 0, fmt.Errorf("geo: invalid UTM zone %d", u.Zone)
	}
	northing := u.Northing
	if u.South {
		northing -= utmFalseNorthing
	}
	return unproject(u.Easting-utmFalseEasting, northing, CentralMeridian(u.Zone))
}

// project implements the forward Krüger-series transverse Mercator
// transform around the given central meridian. Returns raw easting (no
// false easting) and northing in metres.
func project(lat, lon, lon0 float64) (easting, northing float64) {
	phi := lat * math.Pi / 180
	lam := (lon - lon0) * math.Pi / 180

	// Conformal latitude.
	e := math.Sqrt(Flattening * (2 - Flattening))
	sinPhi := math.Sin(phi)
	t := math.Sinh(math.Atanh(sinPhi) - e*math.Atanh(e*sinPhi))
	xiP := math.Atan2(t, math.Cos(lam))
	etaP := math.Asinh(math.Sin(lam) / math.Hypot(t, math.Cos(lam)))

	xi, eta := xiP, etaP
	for j := 0; j < 3; j++ {
		k := float64(2 * (j + 1))
		xi += alpha[j] * math.Sin(k*xiP) * math.Cosh(k*etaP)
		eta += alpha[j] * math.Cos(k*xiP) * math.Sinh(k*etaP)
	}
	return utmScale * aSM * eta, utmScale * aSM * xi
}

// unproject implements the inverse Krüger-series transform.
func unproject(easting, northing, lon0 float64) (lat, lon float64, err error) {
	xi := northing / (utmScale * aSM)
	eta := easting / (utmScale * aSM)

	xiP, etaP := xi, eta
	for j := 0; j < 3; j++ {
		k := float64(2 * (j + 1))
		xiP -= beta[j] * math.Sin(k*xi) * math.Cosh(k*eta)
		etaP -= beta[j] * math.Cos(k*xi) * math.Sinh(k*eta)
	}

	chi := math.Asin(math.Sin(xiP) / math.Cosh(etaP))
	phi := chi
	for j := 0; j < 3; j++ {
		k := float64(2 * (j + 1))
		phi += delta[j] * math.Sin(k*chi)
	}
	lam := math.Atan2(math.Sinh(etaP), math.Cos(xiP))

	lat = phi * 180 / math.Pi
	lon = lon0 + lam*180/math.Pi
	if math.IsNaN(lat) || math.IsNaN(lon) {
		return 0, 0, errors.New("geo: inverse projection did not converge")
	}
	return lat, lon, nil
}
