// Package synth generates the evaluation workloads. The paper's two real
// datasets (flying-fox trackers and a vehicle dashboard node, 138,798 GPS
// samples total) are proprietary CSIRO deployments, so this package
// provides statistically analogous generators — a camp-anchored flying-fox
// model, a road-network vehicle model — plus a faithful implementation of
// the paper's own synthetic model (Section VI-A): an event-based correlated
// random walk alternating exponentially-timed waiting and moving events,
// with von Mises turning angles and empirical speeds, bounded to a
// 10 km × 10 km area.
//
// All generators are deterministic given a seed.
package synth

import (
	"math"
	"math/rand"
	"sort"
)

// VonMises is the circular distribution the paper draws turning angles
// from: mean direction Mu, concentration Kappa (Kappa → 0 is uniform,
// large Kappa concentrates near Mu).
type VonMises struct {
	Mu    float64
	Kappa float64
}

// Sample draws one angle in radians using the Best-Fisher (1979) rejection
// algorithm.
func (v VonMises) Sample(rng *rand.Rand) float64 {
	if v.Kappa < 1e-9 {
		return v.Mu + (rng.Float64()*2-1)*math.Pi
	}
	tau := 1 + math.Sqrt(1+4*v.Kappa*v.Kappa)
	rho := (tau - math.Sqrt(2*tau)) / (2 * v.Kappa)
	r := (1 + rho*rho) / (2 * rho)
	for {
		u1 := rng.Float64()
		u2 := rng.Float64()
		z := math.Cos(math.Pi * u1)
		f := (1 + r*z) / (r + z)
		c := v.Kappa * (r - f)
		if c*(2-c)-u2 > 0 || math.Log(c/u2)+1-c >= 0 {
			theta := math.Acos(f)
			if rng.Float64() < 0.5 {
				theta = -theta
			}
			return v.Mu + theta
		}
	}
}

// Exponential is the waiting/moving event-duration distribution (the
// paper's move times are "exponentially distributed, corresponding to the
// Poisson process").
type Exponential struct {
	Mean float64
}

// Sample draws one duration ≥ 0.
func (e Exponential) Sample(rng *rand.Rand) float64 {
	return rng.ExpFloat64() * e.Mean
}

// Empirical is a piecewise-constant empirical distribution built from
// weighted buckets; the synthetic model uses it for "the empirical
// distribution of speed" of the bat data.
type Empirical struct {
	values []float64
	cum    []float64 // cumulative weights, last element = total
}

// NewEmpirical builds an empirical distribution from parallel value/weight
// slices. Non-positive weights are dropped; an empty distribution samples
// zero.
func NewEmpirical(values, weights []float64) Empirical {
	var e Empirical
	n := len(values)
	if len(weights) < n {
		n = len(weights)
	}
	total := 0.0
	for i := 0; i < n; i++ {
		if weights[i] <= 0 || math.IsNaN(weights[i]) {
			continue
		}
		total += weights[i]
		e.values = append(e.values, values[i])
		e.cum = append(e.cum, total)
	}
	return e
}

// Sample draws one value, jittered uniformly within ±half the local bucket
// spacing so the output is continuous.
func (e Empirical) Sample(rng *rand.Rand) float64 {
	if len(e.values) == 0 {
		return 0
	}
	u := rng.Float64() * e.cum[len(e.cum)-1]
	i := sort.SearchFloat64s(e.cum, u)
	if i >= len(e.values) {
		i = len(e.values) - 1
	}
	v := e.values[i]
	// Jitter towards the neighbouring bucket for continuity.
	if len(e.values) > 1 {
		var span float64
		if i+1 < len(e.values) {
			span = e.values[i+1] - v
		} else {
			span = v - e.values[i-1]
		}
		v += (rng.Float64() - 0.5) * span
	}
	if v < 0 {
		v = 0
	}
	return v
}

// BatSpeeds is the empirical flying-fox airspeed distribution used by the
// synthetic model: common continuous flight ≈ 35 km/h, maximum ≈ 50 km/h
// (Section VI-A), with a tail of slower foraging movement.
func BatSpeeds() Empirical {
	// m/s buckets with weights shaped after the paper's description.
	return NewEmpirical(
		[]float64{1, 2, 4, 6, 8, 9, 10, 11, 12, 13, 14},
		[]float64{2, 3, 5, 8, 14, 20, 18, 12, 8, 6, 4},
	)
}

// CircularMean returns the circular mean of angles in radians.
func CircularMean(angles []float64) float64 {
	var s, c float64
	for _, a := range angles {
		s += math.Sin(a)
		c += math.Cos(a)
	}
	return math.Atan2(s, c)
}

// CircularConcentration returns the mean resultant length R ∈ [0, 1] of
// angles; R → 1 means tight concentration (large kappa).
func CircularConcentration(angles []float64) float64 {
	if len(angles) == 0 {
		return 0
	}
	var s, c float64
	for _, a := range angles {
		s += math.Sin(a)
		c += math.Cos(a)
	}
	return math.Hypot(s, c) / float64(len(angles))
}
