package synth

import (
	"math"
	"math/rand"
	"testing"

	"github.com/trajcomp/bqs/internal/core"
)

func TestVonMisesCircularMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, kappa := range []float64{0.5, 2, 8, 50} {
		vm := VonMises{Mu: 1.0, Kappa: kappa}
		angles := make([]float64, 20000)
		for i := range angles {
			angles[i] = vm.Sample(rng)
		}
		mean := CircularMean(angles)
		if d := math.Abs(math.Atan2(math.Sin(mean-1.0), math.Cos(mean-1.0))); d > 0.05 {
			t.Errorf("kappa %v: circular mean %v, want ≈ 1.0", kappa, mean)
		}
		r := CircularConcentration(angles)
		// R ≈ 1 - 1/(2κ) for large κ; grows with κ.
		want := 1 - 1/(2*kappa)
		if kappa >= 2 && math.Abs(r-want) > 0.08 {
			t.Errorf("kappa %v: concentration %v, want ≈ %v", kappa, r, want)
		}
	}
}

func TestVonMisesUniformWhenKappaZero(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vm := VonMises{Mu: 0, Kappa: 0}
	angles := make([]float64, 20000)
	for i := range angles {
		angles[i] = vm.Sample(rng)
	}
	if r := CircularConcentration(angles); r > 0.03 {
		t.Errorf("kappa 0 concentration = %v, want ≈ 0", r)
	}
}

func TestExponentialMean(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	e := Exponential{Mean: 42}
	var sum float64
	n := 50000
	for i := 0; i < n; i++ {
		v := e.Sample(rng)
		if v < 0 {
			t.Fatal("negative duration")
		}
		sum += v
	}
	if got := sum / float64(n); math.Abs(got-42) > 1 {
		t.Errorf("mean = %v, want ≈ 42", got)
	}
}

func TestEmpiricalDistribution(t *testing.T) {
	e := NewEmpirical([]float64{1, 10}, []float64{1, 3})
	rng := rand.New(rand.NewSource(4))
	nHigh := 0
	n := 20000
	for i := 0; i < n; i++ {
		v := e.Sample(rng)
		if v < 0 {
			t.Fatal("negative sample")
		}
		if v > 5 {
			nHigh++
		}
	}
	frac := float64(nHigh) / float64(n)
	if math.Abs(frac-0.75) > 0.03 {
		t.Errorf("high-bucket fraction = %v, want ≈ 0.75", frac)
	}
	// Degenerate cases.
	if v := (Empirical{}).Sample(rng); v != 0 {
		t.Errorf("empty empirical sampled %v", v)
	}
	bad := NewEmpirical([]float64{1, 2}, []float64{-1, 0})
	if v := bad.Sample(rng); v != 0 {
		t.Errorf("all-dropped empirical sampled %v", v)
	}
}

func TestBatSpeedsShape(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sp := BatSpeeds()
	var sum, maxV float64
	n := 20000
	for i := 0; i < n; i++ {
		v := sp.Sample(rng)
		sum += v
		if v > maxV {
			maxV = v
		}
	}
	mean := sum / float64(n)
	// Common continuous flight ≈ 35 km/h ≈ 9.7 m/s; allow the foraging tail
	// to pull the mean down.
	if mean < 6 || mean > 11 {
		t.Errorf("mean speed = %v m/s", mean)
	}
	// Max ≈ 50 km/h ≈ 14 m/s.
	if maxV > 16 {
		t.Errorf("max speed = %v m/s, want ≲ 14", maxV)
	}
}

func checkTrace(t *testing.T, tr Trace, wantN int) {
	t.Helper()
	if tr.Len() == 0 {
		t.Fatal("empty trace")
	}
	if wantN > 0 && tr.Len() != wantN {
		t.Errorf("%s: %d samples, want %d", tr.Name, tr.Len(), wantN)
	}
	prevT := math.Inf(-1)
	for i, s := range tr.Samples {
		if !s.P.IsFinite() {
			t.Fatalf("%s sample %d not finite: %+v", tr.Name, i, s)
		}
		if s.P.T <= prevT {
			t.Fatalf("%s sample %d: time not strictly increasing", tr.Name, i)
		}
		prevT = s.P.T
	}
}

func TestWalkMatchesPaperSetup(t *testing.T) {
	tr := Walk(DefaultWalkConfig(7))
	checkTrace(t, tr, 30000)
	minX, minY, maxX, maxY := tr.Extent()
	if minX < -1 || minY < -1 || maxX > 10001 || maxY > 10001 {
		t.Errorf("walk escaped the 10 km bound: [%v %v %v %v]", minX, minY, maxX, maxY)
	}
	mf := tr.MovingFraction()
	if mf < 0.3 || mf > 0.9 {
		t.Errorf("moving fraction = %v", mf)
	}
	// Ground-truth velocities must be consistent with displacement during
	// moving samples (no noise in the default config). Boundary reflections
	// fold the displacement mid-step, so a small fraction of mismatches is
	// expected.
	mismatches, checked := 0, 0
	for i := 1; i < tr.Len(); i++ {
		s := tr.Samples[i]
		if !s.Moving {
			continue
		}
		prev := tr.Samples[i-1]
		dt := s.P.T - prev.P.T
		gotV := math.Hypot(s.P.X-prev.P.X, s.P.Y-prev.P.Y) / dt
		wantV := math.Hypot(s.VX, s.VY)
		checked++
		if math.Abs(gotV-wantV) > 0.5 {
			mismatches++
		}
	}
	if frac := float64(mismatches) / float64(checked); frac > 0.02 {
		t.Errorf("velocity/displacement mismatch fraction = %v", frac)
	}
}

func TestWalkDeterminism(t *testing.T) {
	a := Walk(DefaultWalkConfig(42))
	b := Walk(DefaultWalkConfig(42))
	if a.Len() != b.Len() {
		t.Fatal("lengths differ")
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("sample %d differs", i)
		}
	}
	c := Walk(DefaultWalkConfig(43))
	same := true
	for i := 0; i < 100 && i < c.Len(); i++ {
		if a.Samples[i] != c.Samples[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestWalkDegenerate(t *testing.T) {
	if tr := Walk(WalkConfig{N: 0}); tr.Len() != 0 {
		t.Error("zero-N walk produced samples")
	}
	tr := Walk(WalkConfig{Seed: 1, N: 100, Speeds: BatSpeeds()})
	checkTrace(t, tr, 100)
}

func TestBatTraceShape(t *testing.T) {
	cfg := DefaultBatConfig(11)
	cfg.Days = 10
	tr := Bat(cfg)
	checkTrace(t, tr, 0)
	// Dwell samples dominate (the paper: "bats perform stays as well as
	// small movement around certain locations, making those points easily
	// discardable"), with a meaningful flight share from 1/min sampling.
	if mf := tr.MovingFraction(); mf < 0.03 || mf > 0.5 {
		t.Errorf("bat moving fraction = %v, want dwell-dominated mix", mf)
	}
	// Trips reach foraging distance: ≈ 10 km scale.
	minX, minY, maxX, maxY := tr.Extent()
	span := math.Max(maxX-minX, maxY-minY)
	if span < 5000 || span > 60000 {
		t.Errorf("bat range span = %v m", span)
	}
	// Nightly travel ≈ 20-40 km over 10 days (the paper's bats average
	// ≈ 8 km/day of recorded travel; ours fly every night they go out).
	if l := tr.PathLength(); l < 50e3 || l > 600e3 {
		t.Errorf("bat path length = %v m over 10 days", l)
	}
	t.Logf("bat: %d samples, moving %.2f, span %.0f m, path %.0f km",
		tr.Len(), tr.MovingFraction(), span, tr.PathLength()/1000)
}

func TestVehicleTraceShape(t *testing.T) {
	cfg := DefaultVehicleConfig(12)
	cfg.Days = 5
	tr := Vehicle(cfg)
	checkTrace(t, tr, 0)
	mf := tr.MovingFraction()
	if mf < 0.3 || mf > 0.95 {
		t.Errorf("vehicle moving fraction = %v, want trip-gated (driving-dominated)", mf)
	}
	// Speeds in the driving range.
	var maxSpeed float64
	for _, s := range tr.Samples {
		if v := math.Hypot(s.VX, s.VY); v > maxSpeed {
			maxSpeed = v
		}
	}
	if maxSpeed < 15 || maxSpeed > 31 {
		t.Errorf("vehicle max speed = %v m/s, want ≈ 27.8 (100 km/h)", maxSpeed)
	}
	t.Logf("vehicle: %d samples, moving %.2f, path %.0f km",
		tr.Len(), mf, tr.PathLength()/1000)
}

func TestTraceHelpers(t *testing.T) {
	tr := Trace{Samples: []Sample{
		{P: core.Point{X: 0, Y: 0, T: 0}, Moving: false},
		{P: core.Point{X: 3, Y: 4, T: 1}, Moving: true},
		{P: core.Point{X: 3, Y: 8, T: 2}, Moving: true},
	}}
	if got := tr.MovingFraction(); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("MovingFraction = %v", got)
	}
	if got := tr.PathLength(); got != 9 {
		t.Errorf("PathLength = %v, want 9", got)
	}
	pts := tr.Points()
	if len(pts) != 3 || pts[1].X != 3 {
		t.Errorf("Points = %v", pts)
	}
	minX, minY, maxX, maxY := tr.Extent()
	if minX != 0 || minY != 0 || maxX != 3 || maxY != 8 {
		t.Errorf("Extent = %v %v %v %v", minX, minY, maxX, maxY)
	}
	empty := Trace{}
	if empty.MovingFraction() != 0 {
		t.Error("empty MovingFraction")
	}
}

// Calibration: the generated workloads must land in the paper's measured
// regime, otherwise every figure reproduction is built on sand.
func TestBatCalibration(t *testing.T) {
	cfg := DefaultBatConfig(99)
	cfg.Days = 15
	pts := Bat(cfg).Points()

	bqs, err := core.NewCompressor(core.Config{Tolerance: 10, Mode: core.ModeExact})
	if err != nil {
		t.Fatal(err)
	}
	keys := bqs.CompressBatch(pts)
	s := bqs.Stats()
	rate := float64(len(keys)) / float64(len(pts))
	t.Logf("bat: n=%d rate=%.3f pruning=%.3f", len(pts), rate, s.PruningPower())
	// Paper: compression rate ≈ 3.9-6.3% at 10 m; pruning power ≈ 0.9.
	if rate < 0.01 || rate > 0.12 {
		t.Errorf("bat compression rate at 10 m = %v, want the paper's few-percent regime", rate)
	}
	if pp := s.PruningPower(); pp < 0.85 {
		t.Errorf("bat pruning power = %v, want ≥ 0.85", pp)
	}
}

func TestVehicleCalibration(t *testing.T) {
	cfg := DefaultVehicleConfig(98)
	cfg.Days = 7
	pts := Vehicle(cfg).Points()

	bqs, err := core.NewCompressor(core.Config{Tolerance: 10, Mode: core.ModeExact})
	if err != nil {
		t.Fatal(err)
	}
	keys := bqs.CompressBatch(pts)
	s := bqs.Stats()
	rate := float64(len(keys)) / float64(len(pts))
	t.Logf("vehicle: n=%d rate=%.3f pruning=%.3f", len(pts), rate, s.PruningPower())
	if rate < 0.01 || rate > 0.15 {
		t.Errorf("vehicle compression rate at 10 m = %v", rate)
	}
	if pp := s.PruningPower(); pp < 0.85 {
		t.Errorf("vehicle pruning power = %v, want ≥ 0.85", pp)
	}
}
