package synth

import (
	"math"
	"math/rand"

	"github.com/trajcomp/bqs/internal/core"
)

// Sample is one generated GPS fix with its ground truth.
type Sample struct {
	P      core.Point // observed (noisy) position, metres / seconds
	VX, VY float64    // ground-truth velocity in m/s at the sample instant
	Moving bool       // ground-truth phase (false during dwells/waits)
}

// Trace is a generated trajectory with metadata.
type Trace struct {
	Name    string
	Samples []Sample
}

// Points extracts the observed points.
func (t Trace) Points() []core.Point {
	pts := make([]core.Point, len(t.Samples))
	for i, s := range t.Samples {
		pts[i] = s.P
	}
	return pts
}

// Len returns the number of samples.
func (t Trace) Len() int { return len(t.Samples) }

// MovingFraction returns the fraction of samples in a moving phase.
func (t Trace) MovingFraction() float64 {
	if len(t.Samples) == 0 {
		return 0
	}
	n := 0
	for _, s := range t.Samples {
		if s.Moving {
			n++
		}
	}
	return float64(n) / float64(len(t.Samples))
}

// PathLength returns the total ground-truth travel distance in metres
// (sum of consecutive observed displacements during moving phases).
func (t Trace) PathLength() float64 {
	var total float64
	for i := 1; i < len(t.Samples); i++ {
		if t.Samples[i].Moving {
			total += t.Samples[i].P.Vec().Dist(t.Samples[i-1].P.Vec())
		}
	}
	return total
}

// Extent returns the bounding rectangle of the observed points.
func (t Trace) Extent() (minX, minY, maxX, maxY float64) {
	minX, minY = math.Inf(1), math.Inf(1)
	maxX, maxY = math.Inf(-1), math.Inf(-1)
	for _, s := range t.Samples {
		minX = math.Min(minX, s.P.X)
		minY = math.Min(minY, s.P.Y)
		maxX = math.Max(maxX, s.P.X)
		maxY = math.Max(maxY, s.P.Y)
	}
	return minX, minY, maxX, maxY
}

// noise applies isotropic Gaussian GPS noise with standard deviation sigma
// to a true position.
func noise(rng *rand.Rand, x, y, sigma float64) (float64, float64) {
	return x + rng.NormFloat64()*sigma, y + rng.NormFloat64()*sigma
}

// gpsNoise models GPS observation error as an AR(1) process: multipath and
// atmospheric errors drift slowly rather than re-rolling white noise every
// fix, which is what lets real stationary clusters compress even at small
// tolerances. The stationary standard deviation is Sigma; Rho is the
// per-sample correlation.
type gpsNoise struct {
	rng    *rand.Rand
	sigma  float64
	rho    float64
	ex, ey float64
}

func newGPSNoise(rng *rand.Rand, sigma, rho float64) *gpsNoise {
	return &gpsNoise{rng: rng, sigma: sigma, rho: rho}
}

// apply advances the error process and returns the observed position.
func (g *gpsNoise) apply(x, y float64) (float64, float64) {
	if g.sigma <= 0 {
		return x, y
	}
	inno := g.sigma * math.Sqrt(1-g.rho*g.rho)
	g.ex = g.rho*g.ex + g.rng.NormFloat64()*inno
	g.ey = g.rho*g.ey + g.rng.NormFloat64()*inno
	return x + g.ex, y + g.ey
}
