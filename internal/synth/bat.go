package synth

import (
	"math"
	"math/rand"

	"github.com/trajcomp/bqs/internal/core"
)

// BatConfig parameterizes the flying-fox model that stands in for the
// paper's proprietary bat dataset (five Camazotz nodes on Pteropus bats,
// six months, ~7,206 km of travel). The model reproduces the properties the
// paper attributes to that data:
//
//   - long roosting dwells at a camp and feeding dwells while foraging,
//     which dominate the sample stream ("bats perform stays as well as
//     small movement around certain locations, making those points easily
//     discardable. Hence the room for compression is larger for the bat
//     tracking data");
//   - nightly commutes to foraging sites ≈ 10 km away, flown in nearly
//     straight lines at 20–50 km/h, with unconstrained 2-D headings and
//     arbitrary turns while foraging (lower pruning power than vehicles);
//   - 1-minute GPS sampling during flight, sparser heartbeats while
//     roosting (Camazotz duty-cycles from accelerometer activity);
//   - time-correlated GPS observation noise.
type BatConfig struct {
	Seed         int64
	Days         int     // tracking days
	FlightStep   float64 // seconds between fixes while flying (1/min)
	ForageStep   float64 // seconds between fixes during feeding dwells
	RoostStep    float64 // seconds between heartbeat fixes while roosting
	NoiseSigma   float64 // stationary GPS noise σ in metres
	NoiseRho     float64 // per-sample noise correlation
	CampJitter   float64 // animal movement scale while dwelling, metres
	NumSites     int     // foraging sites around the camp
	SiteRadiusM  float64 // mean camp→site distance in metres
	CommuteKappa float64 // heading persistence while commuting (large = straight)
}

// DefaultBatConfig models the deployment described in Section III-A.
func DefaultBatConfig(seed int64) BatConfig {
	return BatConfig{
		Seed:         seed,
		Days:         30,
		FlightStep:   60,
		ForageStep:   120,
		RoostStep:    300,
		NoiseSigma:   2,
		NoiseRho:     0.97,
		CampJitter:   1.0,
		NumSites:     8,
		SiteRadiusM:  9000,
		CommuteKappa: 1500,
	}
}

// Bat generates a flying-fox trace. Each day: roost through daylight,
// depart around dusk, commute to a foraging site, alternate feeding dwells
// and local hops through the night, commute home before dawn.
func Bat(cfg BatConfig) Trace {
	if cfg.Days <= 0 {
		return Trace{Name: "bat"}
	}
	if cfg.FlightStep <= 0 {
		cfg.FlightStep = 60
	}
	if cfg.ForageStep <= 0 {
		cfg.ForageStep = 120
	}
	if cfg.RoostStep <= 0 {
		cfg.RoostStep = 300
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	gps := newGPSNoise(rng, cfg.NoiseSigma, cfg.NoiseRho)
	tr := Trace{Name: "bat"}

	// Foraging sites scattered around the camp.
	type site struct{ x, y float64 }
	sites := make([]site, max(1, cfg.NumSites))
	for i := range sites {
		ang := rng.Float64() * 2 * math.Pi
		r := cfg.SiteRadiusM * (0.5 + rng.Float64())
		sites[i] = site{math.Cos(ang) * r, math.Sin(ang) * r}
	}

	now := 0.0
	x, y := 0.0, 0.0 // camp at the origin

	emit := func(step, vx, vy float64, moving bool) {
		ox, oy := gps.apply(x, y)
		tr.Samples = append(tr.Samples, Sample{
			P: core.Point{X: ox, Y: oy, T: now}, VX: vx, VY: vy, Moving: moving,
		})
		now += step
	}

	// dwell keeps the animal around the current position for dur seconds;
	// the animal itself wanders slightly (branch changes) while the
	// correlated GPS noise provides most of the observed scatter.
	dwell := func(dur, step float64) {
		cx, cy := x, y
		for elapsed := 0.0; elapsed < dur; elapsed += step {
			if rng.Intn(10) == 0 { // occasional branch shift
				cx += rng.NormFloat64() * cfg.CampJitter
				cy += rng.NormFloat64() * cfg.CampJitter
			}
			x, y = cx, cy
			emit(step, 0, 0, false)
		}
	}

	// fly moves towards (tx, ty) with heading persistence and bat speeds;
	// arrival is declared within one sample step so the loop cannot
	// oscillate across the target.
	fly := func(tx, ty, meanSpeed float64) {
		wobble := VonMises{Mu: 0, Kappa: cfg.CommuteKappa}
		for {
			dx, dy := tx-x, ty-y
			dist := math.Hypot(dx, dy)
			if dist <= meanSpeed*1.2*cfg.FlightStep {
				x, y = tx, ty
				return
			}
			base := math.Atan2(dy, dx)
			h := base + wobble.Sample(rng)
			speed := meanSpeed * (0.9 + 0.2*rng.Float64())
			vx := math.Cos(h) * speed
			vy := math.Sin(h) * speed
			x += vx * cfg.FlightStep
			y += vy * cfg.FlightStep
			emit(cfg.FlightStep, vx, vy, true)
		}
	}

	const day = 24 * 3600.0
	for d := 0; d < cfg.Days; d++ {
		dayStart := float64(d) * day
		// Roost from wherever the night ended until dusk (≈ 19:00 ± 40 min).
		dusk := dayStart + 19*3600 + rng.NormFloat64()*2400
		if dusk > now {
			dwell(dusk-now, cfg.RoostStep)
		}
		// Some nights the bat stays home.
		if rng.Float64() < 0.15 {
			continue
		}
		s := sites[rng.Intn(len(sites))]
		fly(s.x, s.y, 9.5) // ≈ 34 km/h commute

		// Forage for 3-6 hours: feeding dwells with local hops.
		forageEnd := now + (3+3*rng.Float64())*3600
		for now < forageEnd {
			dwell((15+30*rng.Float64())*60, cfg.ForageStep)
			// Hop to a nearby tree.
			ang := rng.Float64() * 2 * math.Pi
			hop := 150 + rng.Float64()*800
			fly(x+math.Cos(ang)*hop, y+math.Sin(ang)*hop, 7)
		}
		// Commute home before dawn.
		fly(0, 0, 9.5)
		x, y = 0, 0
	}
	return tr
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
