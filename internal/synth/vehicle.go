package synth

import (
	"math"
	"math/rand"

	"github.com/trajcomp/bqs/internal/core"
)

// VehicleConfig parameterizes the vehicle model that stands in for the
// paper's dashboard-node dataset (one Camazotz node on a car, two weeks,
// 1,187 km). The model reproduces the properties the paper attributes to
// that data: physically constrained, smooth headings from a road network
// ("more consistency in the heading angles due to the physical constraints
// of the road networks"), larger spatial scale and speeds (60 km/h urban /
// 100 km/h highway), trip-gated sampling like the activity-gated tracker,
// and parking dwells between trips.
type VehicleConfig struct {
	Seed        int64
	Days        int
	DriveStep   float64 // seconds between fixes while driving
	ParkStep    float64 // seconds between heartbeat fixes while parked
	NoiseSigma  float64 // GPS noise σ in metres
	GridSize    int     // road-grid dimension (intersections per side)
	BlockM      float64 // block edge length in metres
	TripsPerDay int
}

// DefaultVehicleConfig models two weeks of urban commuting with occasional
// arterial/highway legs.
func DefaultVehicleConfig(seed int64) VehicleConfig {
	return VehicleConfig{
		Seed:        seed,
		Days:        14,
		DriveStep:   30,
		ParkStep:    600,
		NoiseSigma:  2.5,
		GridSize:    40,
		BlockM:      800,
		TripsPerDay: 3,
	}
}

// Vehicle generates a car trace over a grid road network with arterial
// (every 5th) roads at highway speed. Trips follow Manhattan routes with
// occasional intersection stops; between trips the car is parked.
func Vehicle(cfg VehicleConfig) Trace {
	if cfg.Days <= 0 {
		return Trace{Name: "vehicle"}
	}
	if cfg.DriveStep <= 0 {
		cfg.DriveStep = 15
	}
	if cfg.ParkStep <= 0 {
		cfg.ParkStep = 900
	}
	if cfg.GridSize < 4 {
		cfg.GridSize = 4
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	gps := newGPSNoise(rng, cfg.NoiseSigma, 0.97)
	tr := Trace{Name: "vehicle"}

	now := 0.0
	// Home at a random intersection.
	hi, hj := rng.Intn(cfg.GridSize), rng.Intn(cfg.GridSize)
	x, y := float64(hi)*cfg.BlockM, float64(hj)*cfg.BlockM

	emit := func(step, vx, vy float64, moving bool) {
		ox, oy := gps.apply(x, y)
		tr.Samples = append(tr.Samples, Sample{
			P: core.Point{X: ox, Y: oy, T: now}, VX: vx, VY: vy, Moving: moving,
		})
		now += step
	}

	park := func(dur float64) {
		cx, cy := x, y
		for elapsed := 0.0; elapsed < dur; elapsed += cfg.ParkStep {
			x = cx + rng.NormFloat64()*1.5
			y = cy + rng.NormFloat64()*1.5
			emit(cfg.ParkStep, 0, 0, false)
		}
		x, y = cx, cy
	}

	stop := func(dur float64) {
		cx, cy := x, y
		for elapsed := 0.0; elapsed < dur; elapsed += cfg.DriveStep {
			x = cx + rng.NormFloat64()*1.0
			y = cy + rng.NormFloat64()*1.0
			emit(cfg.DriveStep, 0, 0, false)
		}
		x, y = cx, cy
	}

	// arterial reports whether grid line k is an arterial (highway-speed).
	arterial := func(k int) bool { return k%5 == 0 }

	// drive drives straight to the target coordinate at the road-class
	// speed, with mild speed variation.
	drive := func(tx, ty float64, fast bool) {
		base := 60.0 / 3.6
		if fast {
			base = 100.0 / 3.6
		}
		for {
			dx, dy := tx-x, ty-y
			dist := math.Hypot(dx, dy)
			speed := base * (0.9 + 0.2*rng.Float64())
			step := speed * cfg.DriveStep
			if dist <= step {
				x, y = tx, ty
				return
			}
			vx := dx / dist * speed
			vy := dy / dist * speed
			x += vx * cfg.DriveStep
			y += vy * cfg.DriveStep
			emit(cfg.DriveStep, vx, vy, true)
		}
	}

	const day = 24 * 3600.0
	ci, cj := hi, hj // current intersection
	for d := 0; d < cfg.Days; d++ {
		dayEnd := float64(d+1) * day
		for trip := 0; trip < cfg.TripsPerDay && now < dayEnd; trip++ {
			// Park until the next trip.
			park(1800 + rng.Float64()*2.5*3600)
			// Destination intersection.
			ti := rng.Intn(cfg.GridSize)
			tj := rng.Intn(cfg.GridSize)
			if ti == ci && tj == cj {
				continue
			}
			// Manhattan route with 1-3 staircase corners (urban routes
			// rarely run the whole distance on just two roads).
			legs := 1 + rng.Intn(3)
			for leg := 0; leg < legs; leg++ {
				mi := ci + (ti-ci)*(leg+1)/legs
				mj := cj + (tj-cj)*(leg+1)/legs
				drive(float64(mi)*cfg.BlockM, float64(cj)*cfg.BlockM, arterial(cj))
				if rng.Float64() < 0.4 { // red light at the turn
					stop(20 + rng.Float64()*60)
				}
				drive(float64(mi)*cfg.BlockM, float64(mj)*cfg.BlockM, arterial(mi))
				ci, cj = mi, mj
			}
			ci, cj = ti, tj
		}
		// Overnight parking.
		if now < dayEnd {
			park(dayEnd - now)
		}
	}
	return tr
}
