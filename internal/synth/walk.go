package synth

import (
	"math"
	"math/rand"

	"github.com/trajcomp/bqs/internal/core"
)

// WalkConfig parameterizes the paper's synthetic model (Section VI-A): "an
// event-based correlated random walk ... waiting events and moving events
// are executed alternately. The object stays at its previous location
// during a waiting event, and it moves in a randomly selected speed and
// turning angle for a randomly selected time," with the speed following the
// empirical bat distribution, the turning angle drawn from von Mises, the
// move time exponential, and the trajectory bounded by 10 km × 10 km.
type WalkConfig struct {
	Seed       int64
	N          int     // samples to generate (the paper uses 30,000)
	SampleStep float64 // seconds between samples (high-frequency, for DR)
	AreaSize   float64 // bounding square side in metres
	TurnKappa  float64 // von Mises concentration of turning angles
	MeanMove   float64 // mean moving-event duration, seconds
	MeanWait   float64 // mean waiting-event duration, seconds
	Speeds     Empirical
	NoiseSigma float64 // GPS noise σ in metres (0 = perfect fixes)
}

// DefaultWalkConfig mirrors the paper's setup: 30,000 points in a
// 10 km × 10 km area with bat-like speeds and turning angles, sampled at
// 1 Hz with ground-truth velocities (Dead Reckoning requires "continuous
// high-frequency samples with speed readings").
func DefaultWalkConfig(seed int64) WalkConfig {
	return WalkConfig{
		Seed:       seed,
		N:          30000,
		SampleStep: 1,
		AreaSize:   10000,
		TurnKappa:  4,
		MeanMove:   20,
		MeanWait:   8,
		Speeds:     BatSpeeds(),
		NoiseSigma: 0,
	}
}

// Walk generates a trace from the event-based correlated random walk model.
func Walk(cfg WalkConfig) Trace {
	if cfg.N <= 0 {
		return Trace{Name: "walk"}
	}
	if cfg.SampleStep <= 0 {
		cfg.SampleStep = 1
	}
	if cfg.AreaSize <= 0 {
		cfg.AreaSize = 10000
	}
	// Zero-duration events would make no progress; fall back to defaults.
	if cfg.MeanMove <= 0 {
		cfg.MeanMove = 20
	}
	if cfg.MeanWait <= 0 {
		cfg.MeanWait = 8
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	turn := VonMises{Mu: 0, Kappa: cfg.TurnKappa}
	moveDur := Exponential{Mean: cfg.MeanMove}
	waitDur := Exponential{Mean: cfg.MeanWait}

	tr := Trace{Name: "walk", Samples: make([]Sample, 0, cfg.N)}
	// Start somewhere in the middle of the area.
	x := cfg.AreaSize * (0.35 + 0.3*rng.Float64())
	y := cfg.AreaSize * (0.35 + 0.3*rng.Float64())
	heading := rng.Float64() * 2 * math.Pi
	now := 0.0

	emit := func(vx, vy float64, moving bool) {
		ox, oy := noise(rng, x, y, cfg.NoiseSigma)
		tr.Samples = append(tr.Samples, Sample{
			P:  core.Point{X: ox, Y: oy, T: now},
			VX: vx, VY: vy,
			Moving: moving,
		})
		now += cfg.SampleStep
	}

	for len(tr.Samples) < cfg.N {
		// Waiting event.
		wait := waitDur.Sample(rng)
		for elapsed := 0.0; elapsed < wait && len(tr.Samples) < cfg.N; elapsed += cfg.SampleStep {
			emit(0, 0, false)
		}
		if len(tr.Samples) >= cfg.N {
			break
		}
		// Moving event: one speed and heading per event.
		heading += turn.Sample(rng)
		speed := cfg.Speeds.Sample(rng)
		dur := moveDur.Sample(rng)
		vx := math.Cos(heading) * speed
		vy := math.Sin(heading) * speed
		for elapsed := 0.0; elapsed < dur && len(tr.Samples) < cfg.N; elapsed += cfg.SampleStep {
			x += vx * cfg.SampleStep
			y += vy * cfg.SampleStep
			// Reflect at the area boundary, flipping the heading component.
			if x < 0 {
				x = -x
				vx = -vx
				heading = math.Atan2(vy, vx)
			} else if x > cfg.AreaSize {
				x = 2*cfg.AreaSize - x
				vx = -vx
				heading = math.Atan2(vy, vx)
			}
			if y < 0 {
				y = -y
				vy = -vy
				heading = math.Atan2(vy, vx)
			} else if y > cfg.AreaSize {
				y = 2*cfg.AreaSize - y
				vy = -vy
				heading = math.Atan2(vy, vx)
			}
			emit(vx, vy, true)
		}
	}
	return tr
}
