package baseline

import (
	"container/heap"
	"errors"
	"math"

	"github.com/trajcomp/bqs/internal/core"
	"github.com/trajcomp/bqs/internal/geom"
)

// SQUISH-E (Muckell et al., GeoInformatica 2013) is the related-work
// priority-queue compressor the paper discusses: each interior point
// carries a priority estimating the error introduced by removing it
// (its SED — synchronized Euclidean distance — to the segment between its
// live neighbours, plus the accumulated error of points already removed
// between them). SQUISH-E(λ) bounds the compression ratio and runs online;
// SQUISH-E(μ) bounds the error but needs the whole stream, matching the
// paper's observation that "the error-bound version runs offline only".
//
// It is provided as an extension baseline for ablation studies; the paper's
// own evaluation compares BQS against DP/BDP/BGD/DR.

// sqPoint is a doubly-linked priority-queue node.
type sqPoint struct {
	p          core.Point
	pri        float64 // removal priority (estimated introduced error)
	acc        float64 // max accumulated error of removed neighbours
	prev, next int     // linked-list indices, -1 at ends
	heapIdx    int     // position in the heap, -1 when removed
}

type sqHeap struct {
	nodes []*sqPoint
}

func (h sqHeap) Len() int           { return len(h.nodes) }
func (h sqHeap) Less(i, j int) bool { return h.nodes[i].pri < h.nodes[j].pri }
func (h sqHeap) Swap(i, j int) {
	h.nodes[i], h.nodes[j] = h.nodes[j], h.nodes[i]
	h.nodes[i].heapIdx = i
	h.nodes[j].heapIdx = j
}
func (h *sqHeap) Push(x interface{}) {
	n := x.(*sqPoint)
	n.heapIdx = len(h.nodes)
	h.nodes = append(h.nodes, n)
}
func (h *sqHeap) Pop() interface{} {
	old := h.nodes
	n := old[len(old)-1]
	n.heapIdx = -1
	h.nodes = old[:len(old)-1]
	return n
}

// sed returns the synchronized Euclidean distance of p from the segment
// (a, b): the distance between p and the point of (a, b) at p's timestamp.
func sed(p, a, b core.Point) float64 {
	dt := b.T - a.T
	if dt <= 0 {
		return p.Vec().Dist(a.Vec())
	}
	f := (p.T - a.T) / dt
	if f < 0 {
		f = 0
	} else if f > 1 {
		f = 1
	}
	proj := geom.Lerp(a.Vec(), b.Vec(), f)
	return p.Vec().Dist(proj)
}

// squish is the shared machinery: maintain a buffer of capacity cap; when
// full, remove the minimum-priority interior point, inflating neighbours'
// accumulated error.
type squish struct {
	all  []*sqPoint
	h    sqHeap
	head int
	tail int
	cap  int
}

func newSquish(capacity int) *squish {
	return &squish{head: -1, tail: -1, cap: capacity}
}

func (s *squish) push(p core.Point) {
	n := &sqPoint{p: p, pri: 0, prev: s.tail, next: -1, heapIdx: -1}
	idx := len(s.all)
	s.all = append(s.all, n)
	if s.tail >= 0 {
		s.all[s.tail].next = idx
	} else {
		s.head = idx
	}
	s.tail = idx
	heap.Push(&s.h, n)
	// A new tail makes the previous tail an interior point: set its real
	// priority now that both neighbours exist.
	if n.prev >= 0 && s.all[n.prev].prev >= 0 {
		s.refresh(n.prev)
	}
	if s.cap > 0 && s.h.Len() > s.cap {
		s.removeMin()
	}
}

// refresh recomputes the priority of interior node i.
func (s *squish) refresh(i int) {
	n := s.all[i]
	if n.prev < 0 || n.next < 0 || n.heapIdx < 0 {
		return
	}
	n.pri = n.acc + sed(n.p, s.all[n.prev].p, s.all[n.next].p)
	heap.Fix(&s.h, n.heapIdx)
}

// removeMin evicts the lowest-priority interior point. Endpoints (infinite
// effective priority) are protected by skipping nodes without two
// neighbours; they are pushed with priority 0 but never interior when the
// heap holds > 2 nodes... they are instead given maximal priority here.
func (s *squish) removeMin() {
	// Endpoints must never be evicted: temporarily treat them as infinite.
	// Simplest robust approach: pop until an interior node is found,
	// keeping the popped endpoints aside.
	var kept []*sqPoint
	var victim *sqPoint
	for s.h.Len() > 0 {
		n := heap.Pop(&s.h).(*sqPoint)
		if n.prev >= 0 && n.next >= 0 {
			victim = n
			break
		}
		kept = append(kept, n)
	}
	for _, k := range kept {
		heap.Push(&s.h, k)
	}
	if victim == nil {
		return
	}
	p, nx := victim.prev, victim.next
	s.all[p].next = nx
	s.all[nx].prev = p
	s.all[p].acc = maxf(s.all[p].acc, victim.pri)
	s.all[nx].acc = maxf(s.all[nx].acc, victim.pri)
	s.refresh(p)
	s.refresh(nx)
}

// minInteriorPriority returns the smallest interior priority, or +Inf.
func (s *squish) minInteriorPriority() float64 {
	best := math.Inf(1)
	for _, n := range s.h.nodes {
		if n.prev >= 0 && n.next >= 0 && n.pri < best {
			best = n.pri
		}
	}
	return best
}

func (s *squish) result() []core.Point {
	var out []core.Point
	for i := s.head; i >= 0; i = s.all[i].next {
		out = append(out, s.all[i].p)
	}
	return out
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// SquishELambda compresses pts online with a bounded compression ratio
// lambda ≥ 1: the buffer capacity is ⌈n/λ⌉ and the lowest-priority point is
// evicted whenever the buffer overflows. The error is unbounded (the
// trade-off the paper criticizes).
func SquishELambda(pts []core.Point, lambda float64) ([]core.Point, error) {
	if lambda < 1 {
		return nil, errors.New("baseline: lambda must be ≥ 1")
	}
	if len(pts) <= 2 {
		out := make([]core.Point, len(pts))
		copy(out, pts)
		return out, nil
	}
	capacity := int(float64(len(pts))/lambda + 0.999999)
	if capacity < 2 {
		capacity = 2
	}
	s := newSquish(capacity)
	for _, p := range pts {
		s.push(p)
	}
	return s.result(), nil
}

// SquishEMu compresses pts with a bounded SED error mu: points are evicted
// greedily while the cheapest eviction stays within the bound. As the paper
// notes, this flavour requires the whole trajectory (offline).
func SquishEMu(pts []core.Point, mu float64) ([]core.Point, error) {
	if err := checkTolerance(mu); err != nil {
		return nil, err
	}
	if len(pts) <= 2 {
		out := make([]core.Point, len(pts))
		copy(out, pts)
		return out, nil
	}
	s := newSquish(0) // unbounded buffer: load everything first
	for _, p := range pts {
		s.push(p)
	}
	for s.minInteriorPriority() <= mu {
		s.removeMin()
	}
	return s.result(), nil
}
