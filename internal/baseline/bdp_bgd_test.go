package baseline

import (
	"math"
	"math/rand"
	"testing"

	"github.com/trajcomp/bqs/internal/core"
)

func runBDP(t *testing.T, pts []core.Point, tol float64, size int) []core.Point {
	t.Helper()
	c, err := NewBufferedDP(tol, size, core.MetricLine)
	if err != nil {
		t.Fatal(err)
	}
	var keys []core.Point
	for _, p := range pts {
		keys = append(keys, c.Push(p)...)
	}
	keys = append(keys, c.Flush()...)
	return keys
}

func runBGD(t *testing.T, pts []core.Point, tol float64, size int) []core.Point {
	t.Helper()
	c, err := NewBufferedGreedy(tol, size, core.MetricLine)
	if err != nil {
		t.Fatal(err)
	}
	var keys []core.Point
	for _, p := range pts {
		if kp, ok := c.Push(p); ok {
			keys = append(keys, kp)
		}
	}
	if kp, ok := c.Flush(); ok {
		keys = append(keys, kp)
	}
	return keys
}

func TestBufferedDPStraightLineOverhead(t *testing.T) {
	// The paper's structural argument: on a straight line of N points with
	// buffer M, BDP keeps ≈ ⌊N/M⌋+1 points instead of 2. With the seed
	// point each buffer consumes M-1 new points, so the exact count is
	// ⌈(N-1)/(M-1)⌉+1.
	var pts []core.Point
	n, m := 320, 32
	for i := 0; i < n; i++ {
		pts = append(pts, core.Point{X: float64(i) * 10, Y: 0, T: float64(i)})
	}
	keys := runBDP(t, pts, 5, m)
	want := (n-2)/(m-1) + 2
	if len(keys) != want {
		t.Errorf("straight-line BDP kept %d points, want %d", len(keys), want)
	}
}

func TestBufferedDPErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		pts := randomWalk(rng, 400, 10)
		keys := runBDP(t, pts, 10, 32)
		if got := maxSegmentError(pts, keys, core.MetricLine); got > 10*(1+1e-9) {
			t.Fatalf("trial %d: BDP error %v > 10", trial, got)
		}
		if !keys[0].Equal(pts[0]) || !keys[len(keys)-1].Equal(pts[len(pts)-1]) {
			t.Fatal("BDP endpoints not preserved")
		}
		for i := 1; i < len(keys); i++ {
			if keys[i].T <= keys[i-1].T {
				t.Fatalf("BDP keys out of order at %d", i)
			}
		}
	}
}

func TestBufferedDPStats(t *testing.T) {
	pts := randomWalk(rand.New(rand.NewSource(3)), 200, 10)
	c, err := NewBufferedDP(10, 32, core.MetricLine)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, p := range pts {
		n += len(c.Push(p))
	}
	n += len(c.Flush())
	points, keys := c.Stats()
	if points != len(pts) || keys != n {
		t.Errorf("stats = (%d,%d), want (%d,%d)", points, keys, len(pts), n)
	}
}

func TestBufferedDPValidation(t *testing.T) {
	if _, err := NewBufferedDP(0, 32, core.MetricLine); err == nil {
		t.Error("zero tolerance accepted")
	}
	if _, err := NewBufferedDP(5, 2, core.MetricLine); err == nil {
		t.Error("buffer of 2 accepted")
	}
}

func TestBufferedDPReusableAfterFlush(t *testing.T) {
	c, err := NewBufferedDP(5, 8, core.MetricLine)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		c.Push(core.Point{X: float64(i), T: float64(i)})
	}
	first := c.Flush()
	if len(first) == 0 {
		t.Fatal("no flush output")
	}
	// Second trajectory must re-emit its own first point.
	out := c.Push(core.Point{X: 100, Y: 100, T: 100})
	if len(out) != 1 || out[0].X != 100 {
		t.Errorf("second trajectory start = %v", out)
	}
}

func TestBufferedGreedyErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		pts := randomWalk(rng, 400, 10)
		keys := runBGD(t, pts, 10, 32)
		if got := maxSegmentError(pts, keys, core.MetricLine); got > 10*(1+1e-9) {
			t.Fatalf("trial %d: BGD error %v > 10", trial, got)
		}
		if !keys[0].Equal(pts[0]) || !keys[len(keys)-1].Equal(pts[len(pts)-1]) {
			t.Fatal("BGD endpoints not preserved")
		}
	}
}

func TestBufferedGreedyStraightLineBufferCuts(t *testing.T) {
	// BGD on a straight line cuts on every buffer fill: ~N/M extra points.
	var pts []core.Point
	n, m := 320, 32
	for i := 0; i < n; i++ {
		pts = append(pts, core.Point{X: float64(i) * 10, Y: 0, T: float64(i)})
	}
	keys := runBGD(t, pts, 5, m)
	if len(keys) < n/m {
		t.Errorf("straight-line BGD kept %d points, want ≥ %d from buffer cuts", len(keys), n/m)
	}
	if len(keys) > n/m+3 {
		t.Errorf("straight-line BGD kept %d points, want ≈ %d", len(keys), n/m+1)
	}
}

func TestBufferedGreedyScansGrowWithBuffer(t *testing.T) {
	// The O(nL) cost story of Table III: total deviation-scan work grows
	// with the buffer size. Here we just verify scans happen on every push.
	pts := randomWalk(rand.New(rand.NewSource(5)), 300, 10)
	c, err := NewBufferedGreedy(10, 64, core.MetricLine)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		c.Push(p)
	}
	points, _, scans := c.Stats()
	if points != len(pts) {
		t.Errorf("points = %d", points)
	}
	if scans != len(pts)-1 {
		t.Errorf("scans = %d, want %d", scans, len(pts)-1)
	}
}

func TestBufferedGreedyValidation(t *testing.T) {
	if _, err := NewBufferedGreedy(-1, 32, core.MetricLine); err == nil {
		t.Error("negative tolerance accepted")
	}
	if _, err := NewBufferedGreedy(5, 0, core.MetricLine); err == nil {
		t.Error("zero buffer accepted")
	}
}

func TestBufferedGreedySinglePointFlush(t *testing.T) {
	c, _ := NewBufferedGreedy(5, 32, core.MetricLine)
	p := core.Point{X: 1, Y: 2, T: 3}
	kp, ok := c.Push(p)
	if !ok || !kp.Equal(p) {
		t.Fatalf("first push = (%v,%v)", kp, ok)
	}
	if _, ok := c.Flush(); ok {
		t.Error("single-point flush emitted a duplicate")
	}
	if _, ok := c.Flush(); ok {
		t.Error("double flush emitted")
	}
}

// smoothTrace generates a GPS-like trace in the regime of the paper's real
// datasets: most samples sit in dwell phases (roosting animals, parked
// vehicles) with metre-scale jitter, interleaved with movement legs. Dwells
// are where BQS's Theorem 5.1 shines and where buffer-full cuts penalize
// the windowed baselines.
func smoothTrace(rng *rand.Rand, n int) []core.Point {
	pts := make([]core.Point, 0, n)
	x, y := 0.0, 0.0
	heading := rng.Float64() * 2 * math.Pi
	for len(pts) < n {
		if rng.Intn(3) > 0 { // dwell (the dominant phase)
			for j := 0; j < 100+rng.Intn(200) && len(pts) < n; j++ {
				pts = append(pts, core.Point{
					X: x + rng.NormFloat64()*2, Y: y + rng.NormFloat64()*2,
					T: float64(len(pts)),
				})
			}
			heading = rng.Float64() * 2 * math.Pi
			continue
		}
		leg := 20 + rng.Intn(60)
		for j := 0; j < leg && len(pts) < n; j++ {
			heading += rng.NormFloat64() * 0.05
			sp := 300 + rng.Float64()*300
			x += math.Cos(heading) * sp
			y += math.Sin(heading) * sp
			pts = append(pts, core.Point{
				X: x + rng.NormFloat64()*3, Y: y + rng.NormFloat64()*3,
				T: float64(len(pts)),
			})
		}
	}
	return pts
}

// The ordering behind Figure 7: BQS ≤ FBQS ≤ {BGD, BDP} in kept points on
// GPS-like workloads (long smooth legs plus dwells).
func TestOnlineAlgorithmOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var nBQS, nFBQS, nBGD, nBDP int
	for trial := 0; trial < 10; trial++ {
		pts := smoothTrace(rng, 600)
		bqs, err := core.NewCompressor(core.Config{Tolerance: 10, Mode: core.ModeExact})
		if err != nil {
			t.Fatal(err)
		}
		fbqs, err := core.NewCompressor(core.Config{Tolerance: 10, Mode: core.ModeFast})
		if err != nil {
			t.Fatal(err)
		}
		nBQS += len(bqs.CompressBatch(pts))
		nFBQS += len(fbqs.CompressBatch(pts))
		nBGD += len(runBGD(t, pts, 10, 32))
		nBDP += len(runBDP(t, pts, 10, 32))
	}
	if nBQS > nFBQS {
		t.Errorf("BQS %d > FBQS %d", nBQS, nFBQS)
	}
	if nFBQS > nBGD {
		t.Errorf("FBQS %d > BGD %d", nFBQS, nBGD)
	}
	if nFBQS > nBDP {
		t.Errorf("FBQS %d > BDP %d", nFBQS, nBDP)
	}
	t.Logf("points kept: BQS=%d FBQS=%d BGD=%d BDP=%d", nBQS, nFBQS, nBGD, nBDP)
}
