package baseline

import (
	"errors"

	"github.com/trajcomp/bqs/internal/core"
)

// UniformSample keeps every k-th point (plus the first and last). It is the
// ablation strawman: constant time and space like FBQS, but with no error
// guarantee whatsoever — the gap between its error and its compression rate
// against FBQS's is what motivates error-bounded compression.
func UniformSample(pts []core.Point, k int) ([]core.Point, error) {
	if k < 1 {
		return nil, errors.New("baseline: sampling stride must be ≥ 1")
	}
	if len(pts) == 0 {
		return nil, nil
	}
	out := make([]core.Point, 0, len(pts)/k+2)
	for i := 0; i < len(pts); i += k {
		out = append(out, pts[i])
	}
	if last := pts[len(pts)-1]; !out[len(out)-1].Equal(last) {
		out = append(out, last)
	}
	return out, nil
}
