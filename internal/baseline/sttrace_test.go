package baseline

import (
	"math/rand"
	"testing"

	"github.com/trajcomp/bqs/internal/core"
)

func TestSTTraceCapacityRespected(t *testing.T) {
	st, err := NewSTTrace(32, 0)
	if err != nil {
		t.Fatal(err)
	}
	pts := randomWalk(rand.New(rand.NewSource(1)), 1000, 10)
	for _, p := range pts {
		st.Push(p)
	}
	out := st.Result()
	if len(out) != 32 {
		t.Errorf("kept %d points, want 32", len(out))
	}
	points, kept := st.Stats()
	if points != 1000 || kept != 32 {
		t.Errorf("stats = (%d,%d)", points, kept)
	}
	// Endpoints preserved, order monotone.
	if !out[0].Equal(pts[0]) || !out[len(out)-1].Equal(pts[len(pts)-1]) {
		t.Error("endpoints not preserved")
	}
	for i := 1; i < len(out); i++ {
		if out[i].T <= out[i-1].T {
			t.Fatalf("out of order at %d", i)
		}
	}
}

func TestSTTracePredictionFilter(t *testing.T) {
	// A constant-velocity stream is perfectly predictable: with the filter
	// on, almost everything after the first two points is dropped.
	st, err := NewSTTrace(100, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		st.Push(core.Point{X: float64(i) * 10, Y: 0, T: float64(i)})
	}
	if _, kept := st.Stats(); kept > 3 {
		t.Errorf("predictable stream kept %d points", kept)
	}
	// A zig-zag stream defeats the prediction and fills the buffer.
	st2, _ := NewSTTrace(50, 5)
	for i := 0; i < 500; i++ {
		y := 0.0
		if i%2 == 1 {
			y = 100
		}
		st2.Push(core.Point{X: float64(i) * 10, Y: y, T: float64(i)})
	}
	if _, kept := st2.Stats(); kept != 50 {
		t.Errorf("zig-zag kept %d, want full 50", kept)
	}
}

func TestSTTraceKeepsCorners(t *testing.T) {
	// On an L-shaped path the corner must survive eviction pressure.
	st, _ := NewSTTrace(8, 0)
	var pts []core.Point
	for i := 0; i <= 50; i++ {
		pts = append(pts, core.Point{X: float64(i) * 10, Y: 0, T: float64(i)})
	}
	for i := 1; i <= 50; i++ {
		pts = append(pts, core.Point{X: 500, Y: float64(i) * 10, T: float64(50 + i)})
	}
	for _, p := range pts {
		st.Push(p)
	}
	found := false
	for _, p := range st.Result() {
		if p.X == 500 && p.Y == 0 {
			found = true
		}
	}
	if !found {
		t.Error("corner evicted")
	}
}

func TestSTTraceValidation(t *testing.T) {
	if _, err := NewSTTrace(2, 0); err == nil {
		t.Error("capacity 2 accepted")
	}
	if _, err := NewSTTrace(10, -1); err == nil {
		t.Error("negative threshold accepted")
	}
	st, _ := NewSTTrace(10, 0)
	if out := st.Result(); out != nil {
		t.Errorf("empty result = %v", out)
	}
}

func TestSTTraceUnboundedErrorVsBQS(t *testing.T) {
	// The ablation story: at the same memory budget STTrace has no error
	// guarantee, while FBQS (which holds ≤ 32 significant points) does.
	rng := rand.New(rand.NewSource(3))
	pts := smoothTrace(rng, 2000)
	st, _ := NewSTTrace(32, 0)
	for _, p := range pts {
		st.Push(p)
	}
	stErr := maxSegmentError(pts, st.Result(), core.MetricLine)

	fb, err := core.NewCompressor(core.Config{Tolerance: 10, Mode: core.ModeFast})
	if err != nil {
		t.Fatal(err)
	}
	keys := fb.CompressBatch(pts)
	fbErr := maxSegmentError(pts, keys, core.MetricLine)
	if fbErr > 10*(1+1e-9) {
		t.Errorf("FBQS bound broken: %v", fbErr)
	}
	if stErr <= 10 {
		t.Logf("note: STTrace happened to stay within 10 m on this trace (%.1f)", stErr)
	}
	t.Logf("32-point STTrace error %.1f m vs FBQS guaranteed ≤ 10 m (%d keys)", stErr, len(keys))
}
