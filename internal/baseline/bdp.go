package baseline

import "github.com/trajcomp/bqs/internal/core"

// BufferedDP is the paper's Buffered Douglas-Peucker (Section III-B1): the
// online adaptation that accumulates points in a fixed buffer and runs
// Douglas-Peucker on the buffer whenever it fills. Both the first and last
// buffered points are kept on every run, which is exactly the structural
// weakness the paper attributes to it — on a straight line it keeps
// ⌊N/M⌋+1 points where the optimum is 2.
//
// Not safe for concurrent use.
type BufferedDP struct {
	tolerance float64
	metric    core.Metric
	size      int

	buf    []core.Point
	points int
	keys   int
	opened bool
}

// NewBufferedDP returns a Buffered Douglas-Peucker compressor with the
// given buffer capacity in points (≥ 3; the paper uses 32 to match the
// FBQS state budget).
func NewBufferedDP(tolerance float64, bufSize int, metric core.Metric) (*BufferedDP, error) {
	if err := checkTolerance(tolerance); err != nil {
		return nil, err
	}
	if bufSize < 3 {
		return nil, ErrBadBuffer
	}
	return &BufferedDP{
		tolerance: tolerance,
		metric:    metric,
		size:      bufSize,
		buf:       make([]core.Point, 0, bufSize),
	}, nil
}

// Push feeds the next point and returns any key points finalized by this
// push (zero or more: a full buffer flushes a whole DP result at once).
func (c *BufferedDP) Push(p core.Point) []core.Point {
	c.points++
	var out []core.Point
	if !c.opened {
		c.opened = true
		out = append(out, p) // the stream's first point is always kept
		c.keys++
	}
	c.buf = append(c.buf, p)
	if len(c.buf) >= c.size {
		out = append(out, c.drain()...)
	}
	return out
}

// Flush compresses the remaining buffered points and returns the final key
// points. The compressor is left ready for a new trajectory (statistics
// accumulate).
func (c *BufferedDP) Flush() []core.Point {
	out := c.drain()
	c.buf = c.buf[:0] // drop the seed point: the trajectory is over
	c.opened = false
	return out
}

// drain runs DP on the buffer, emits everything but the already-emitted
// first point, and seeds the next buffer with the last point (the segment
// chain stays connected).
func (c *BufferedDP) drain() []core.Point {
	if len(c.buf) < 2 {
		c.buf = c.buf[:0]
		return nil
	}
	kept, err := DouglasPeucker(c.buf, c.tolerance, c.metric)
	if err != nil {
		// Unreachable: tolerance was validated at construction.
		panic(err)
	}
	out := kept[1:] // buffer head was emitted by the previous drain (or Push)
	c.keys += len(out)
	last := c.buf[len(c.buf)-1]
	c.buf = c.buf[:0]
	c.buf = append(c.buf, last)
	return out
}

// Stats returns points consumed and key points emitted so far.
func (c *BufferedDP) Stats() (points, keyPoints int) { return c.points, c.keys }
