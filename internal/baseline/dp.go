// Package baseline implements the trajectory compression algorithms the
// paper evaluates BQS against: offline Douglas-Peucker (DP), Buffered
// Douglas-Peucker (BDP), Buffered Greedy Deviation (BGD, the generic
// sliding-window algorithm), Dead Reckoning (DR), plus the related-work
// SQUISH-E family and a uniform-sampling strawman for ablations.
//
// All error-bounded algorithms in this package share the deviation
// semantics of the core package: a compressed segment between key points
// must keep every interior original point within the tolerance of the
// segment's path line (or closed segment, under core.MetricSegment).
package baseline

import (
	"errors"
	"math"

	"github.com/trajcomp/bqs/internal/core"
	"github.com/trajcomp/bqs/internal/geom"
)

// ErrBadTolerance reports a non-positive or non-finite tolerance.
var ErrBadTolerance = errors.New("baseline: tolerance must be a positive finite number of metres")

// ErrBadBuffer reports an unusable buffer size.
var ErrBadBuffer = errors.New("baseline: buffer size must be at least 3 points")

func checkTolerance(d float64) error {
	if math.IsNaN(d) || math.IsInf(d, 0) || d <= 0 {
		return ErrBadTolerance
	}
	return nil
}

// DouglasPeucker compresses pts offline with the classic Douglas-Peucker
// algorithm under the given metric: it keeps the first and last points and
// recursively keeps the point of maximum deviation until every deviation is
// within the tolerance. The result preserves input order and always
// includes both endpoints (single-point inputs are returned as-is).
//
// The implementation uses an explicit stack, so adversarial inputs cannot
// overflow the goroutine stack; worst-case time is O(n²) as in Table I.
func DouglasPeucker(pts []core.Point, tolerance float64, metric core.Metric) ([]core.Point, error) {
	if err := checkTolerance(tolerance); err != nil {
		return nil, err
	}
	n := len(pts)
	if n <= 2 {
		out := make([]core.Point, n)
		copy(out, pts)
		return out, nil
	}
	keep := make([]bool, n)
	keep[0], keep[n-1] = true, true

	type span struct{ lo, hi int }
	stack := []span{{0, n - 1}}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if s.hi-s.lo < 2 {
			continue
		}
		a, b := pts[s.lo], pts[s.hi]
		maxD, arg := 0.0, -1
		for i := s.lo + 1; i < s.hi; i++ {
			d := deviation(pts[i], a, b, metric)
			if d > maxD {
				maxD, arg = d, i
			}
		}
		if maxD > tolerance {
			keep[arg] = true
			stack = append(stack, span{s.lo, arg}, span{arg, s.hi})
		}
	}

	out := make([]core.Point, 0, 16)
	for i, k := range keep {
		if k {
			out = append(out, pts[i])
		}
	}
	return out, nil
}

func deviation(p, a, b core.Point, metric core.Metric) float64 {
	if metric == core.MetricSegment {
		return geom.DistToSegment(p.Vec(), a.Vec(), b.Vec())
	}
	return geom.DistToLine(p.Vec(), geom.Line{A: a.Vec(), B: b.Vec()})
}
