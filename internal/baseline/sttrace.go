package baseline

import (
	"container/heap"

	"github.com/trajcomp/bqs/internal/core"
	"github.com/trajcomp/bqs/internal/geom"
)

// STTrace (Potamias, Patroumpas, Sellis — SSDBM 2006) is the fixed-memory
// sampling baseline the paper cites as beyond its target hardware: it keeps
// a bounded buffer of samples and, when a new point arrives on a full
// buffer, evicts the buffered point whose removal distorts the kept
// polyline least (smallest synchronized distance to the line between its
// buffer neighbours). A velocity-prediction filter drops points that dead
// reckoning from the kept tail already predicts well.
//
// Like SQUISH it bounds memory, not error; it is provided for ablation
// studies against the error-bounded family.
//
// Not safe for concurrent use.
type STTrace struct {
	capacity  int
	threshold float64 // prediction-deviation filter (0 keeps every sample)

	nodes   []*stNode
	h       stHeap
	lastIdx int // most recent kept node (an endpoint: never evicted)

	points int
}

type stNode struct {
	p          core.Point
	pri        float64
	prev, next int
	heapIdx    int
}

type stHeap struct{ nodes []*stNode }

func (h stHeap) Len() int           { return len(h.nodes) }
func (h stHeap) Less(i, j int) bool { return h.nodes[i].pri < h.nodes[j].pri }
func (h stHeap) Swap(i, j int) {
	h.nodes[i], h.nodes[j] = h.nodes[j], h.nodes[i]
	h.nodes[i].heapIdx = i
	h.nodes[j].heapIdx = j
}
func (h *stHeap) Push(x interface{}) {
	n := x.(*stNode)
	n.heapIdx = len(h.nodes)
	h.nodes = append(h.nodes, n)
}
func (h *stHeap) Pop() interface{} {
	old := h.nodes
	n := old[len(old)-1]
	n.heapIdx = -1
	h.nodes = old[:len(old)-1]
	return n
}

// NewSTTrace returns an STTrace sampler holding at most capacity points.
// threshold is the prediction-error filter in metres; 0 disables it.
func NewSTTrace(capacity int, threshold float64) (*STTrace, error) {
	if capacity < 3 {
		return nil, ErrBadBuffer
	}
	if threshold < 0 {
		return nil, ErrBadTolerance
	}
	return &STTrace{capacity: capacity, threshold: threshold, lastIdx: -1}, nil
}

// Push feeds the next sample. Points filtered by the prediction test are
// dropped; otherwise the point joins the sample and the least-significant
// interior point is evicted once the capacity is exceeded.
func (c *STTrace) Push(p core.Point) {
	c.points++
	if c.threshold > 0 && c.lastIdx >= 0 {
		last := c.nodes[c.lastIdx]
		if last.prev >= 0 {
			prev := c.nodes[last.prev]
			dt := last.p.T - prev.p.T
			if dt > 0 {
				vx := (last.p.X - prev.p.X) / dt
				vy := (last.p.Y - prev.p.Y) / dt
				dtp := p.T - last.p.T
				pred := geom.V(last.p.X+vx*dtp, last.p.Y+vy*dtp)
				if pred.Dist(p.Vec()) < c.threshold {
					return // predictable: not interesting
				}
			}
		}
	}
	idx := len(c.nodes)
	n := &stNode{p: p, prev: c.lastIdx, next: -1, heapIdx: -1}
	if c.lastIdx >= 0 {
		c.nodes[c.lastIdx].next = idx
	}
	c.nodes = append(c.nodes, n)
	c.lastIdx = idx
	heap.Push(&c.h, n)
	// The previous tail just became interior: give it its real priority.
	if n.prev >= 0 && c.nodes[n.prev].prev >= 0 {
		c.refresh(n.prev)
	}
	if c.h.Len() > c.capacity {
		c.evict()
	}
}

func (c *STTrace) refresh(i int) {
	n := c.nodes[i]
	if n.prev < 0 || n.next < 0 || n.heapIdx < 0 {
		return
	}
	n.pri = sed(n.p, c.nodes[n.prev].p, c.nodes[n.next].p)
	heap.Fix(&c.h, n.heapIdx)
}

// evict removes the lowest-priority interior node from the kept polyline.
// The two endpoints (head: prev == -1; tail: next == -1) are protected.
func (c *STTrace) evict() {
	var endpoints []*stNode
	var victim *stNode
	for c.h.Len() > 0 {
		n := heap.Pop(&c.h).(*stNode)
		if n.prev >= 0 && n.next >= 0 {
			victim = n
			break
		}
		endpoints = append(endpoints, n)
	}
	for _, k := range endpoints {
		heap.Push(&c.h, k)
	}
	if victim == nil {
		return
	}
	p, nx := victim.prev, victim.next
	c.nodes[p].next = nx
	c.nodes[nx].prev = p
	c.refresh(p)
	c.refresh(nx)
}

// Result returns the kept sample in temporal order.
func (c *STTrace) Result() []core.Point {
	if len(c.nodes) == 0 {
		return nil
	}
	var out []core.Point
	for i := 0; i >= 0; i = c.nodes[i].next {
		out = append(out, c.nodes[i].p)
	}
	return out
}

// Stats returns samples consumed and currently kept.
func (c *STTrace) Stats() (points, kept int) { return c.points, c.h.Len() }
