package baseline

import "github.com/trajcomp/bqs/internal/core"

// BufferedGreedy is the paper's Buffered Greedy Deviation (Section III-B2),
// a variant of the generic sliding-window algorithm: every arriving point
// is appended to the buffer and the full deviation of the buffered points
// from the line between the segment start and the new point is recomputed
// (hence O(nL) time). When the deviation exceeds the tolerance the segment
// is closed at the previous point — the same verified-end semantics as the
// core package, so the output is error-bounded. When the buffer fills, the
// segment is cut at the newest point, which is the compression-rate
// weakness the paper describes.
//
// Not safe for concurrent use.
type BufferedGreedy struct {
	tolerance float64
	metric    core.Metric
	size      int

	opened  bool
	start   core.Point
	lastInc core.Point
	buf     []core.Point // interior far candidates of the current segment

	points, keys, devScans int
}

// NewBufferedGreedy returns a Buffered Greedy Deviation compressor with the
// given buffer capacity in points (≥ 3; the paper uses 32).
func NewBufferedGreedy(tolerance float64, bufSize int, metric core.Metric) (*BufferedGreedy, error) {
	if err := checkTolerance(tolerance); err != nil {
		return nil, err
	}
	if bufSize < 3 {
		return nil, ErrBadBuffer
	}
	return &BufferedGreedy{
		tolerance: tolerance,
		metric:    metric,
		size:      bufSize,
		buf:       make([]core.Point, 0, bufSize),
	}, nil
}

// Push feeds the next point; it returns a finalized key point and true when
// this push closed a segment.
func (c *BufferedGreedy) Push(p core.Point) (core.Point, bool) {
	c.points++
	if !c.opened {
		c.opened = true
		c.start = p
		c.lastInc = p
		c.keys++
		return p, true
	}
	c.devScans++
	if core.MaxDeviation(c.buf, c.start, p, c.metric) > c.tolerance {
		// Close the segment at the last verified point and restart there;
		// p becomes the first candidate of the new segment.
		kp := c.lastInc
		c.keys++
		c.start = kp
		c.buf = c.buf[:0]
		c.buf = append(c.buf, p)
		c.lastInc = p
		return kp, true
	}
	// Unlike BQS, the windowed baseline buffers every point — it has no
	// Theorem 5.1 to exempt near points, which is why dwell phases fill the
	// buffer and force the extra cuts the paper describes.
	c.buf = append(c.buf, p)
	c.lastInc = p
	if len(c.buf) >= c.size {
		// Buffer full: cut at the newest (already verified) point.
		c.keys++
		c.start = p
		c.buf = c.buf[:0]
		return p, true
	}
	return core.Point{}, false
}

// Flush closes the trajectory, returning the final key point if one is due.
func (c *BufferedGreedy) Flush() (core.Point, bool) {
	if !c.opened {
		return core.Point{}, false
	}
	c.opened = false
	kp := c.lastInc
	c.buf = c.buf[:0]
	if kp.Equal(c.start) {
		return core.Point{}, false // single-point trajectory: already emitted
	}
	c.keys++
	return kp, true
}

// Stats returns points consumed, key points emitted, and full deviation
// scans performed.
func (c *BufferedGreedy) Stats() (points, keyPoints, devScans int) {
	return c.points, c.keys, c.devScans
}
