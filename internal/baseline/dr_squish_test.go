package baseline

import (
	"math"
	"math/rand"
	"testing"

	"github.com/trajcomp/bqs/internal/core"
)

func TestDeadReckoningConstantVelocityNeverReports(t *testing.T) {
	c, err := NewDeadReckoning(5)
	if err != nil {
		t.Fatal(err)
	}
	reports := 0
	for i := 0; i < 100; i++ {
		p := core.Point{X: float64(i) * 10, Y: 0, T: float64(i)}
		if _, ok := c.PushV(p, 10, 0); ok {
			reports++
		}
	}
	if reports != 1 {
		t.Errorf("constant velocity produced %d reports, want 1", reports)
	}
}

func TestDeadReckoningTurnTriggersReport(t *testing.T) {
	c, _ := NewDeadReckoning(5)
	c.PushV(core.Point{X: 0, Y: 0, T: 0}, 10, 0)
	// Turn 90°: position drifts from prediction quickly.
	reported := false
	for i := 1; i <= 10; i++ {
		p := core.Point{X: 0, Y: float64(i) * 10, T: float64(i)}
		if _, ok := c.PushV(p, 0, 10); ok {
			reported = true
			break
		}
	}
	if !reported {
		t.Error("90° turn never triggered a report")
	}
}

func TestDeadReckoningReconstructionErrorBounded(t *testing.T) {
	// At each sample instant the DR reconstruction (linear extrapolation
	// from the last report) is within tolerance by construction.
	rng := rand.New(rand.NewSource(9))
	tol := 10.0
	c, _ := NewDeadReckoning(tol)
	x, y := 0.0, 0.0
	heading := 0.0
	var anchor core.Point
	var avx, avy float64
	for i := 0; i < 2000; i++ {
		heading += rng.NormFloat64() * 0.2
		vx := math.Cos(heading) * 10
		vy := math.Sin(heading) * 10
		x += vx
		y += vy
		p := core.Point{X: x, Y: y, T: float64(i)}
		if kp, ok := c.PushV(p, vx, vy); ok {
			anchor, avx, avy = kp, vx, vy
		}
		rec := ReconstructAt(anchor, avx, avy, p.T)
		if err := math.Hypot(rec.X-p.X, rec.Y-p.Y); err > tol+1e-9 {
			t.Fatalf("step %d: reconstruction error %v > %v", i, err, tol)
		}
	}
}

func TestDeadReckoningFiniteDifferenceFallback(t *testing.T) {
	c, _ := NewDeadReckoning(5)
	var reports int
	for i := 0; i < 50; i++ {
		p := core.Point{X: float64(i) * 10, Y: 0, T: float64(i)}
		if _, ok := c.Push(p); ok {
			reports++
		}
	}
	// First report anchors with zero velocity (no previous sample), so the
	// second sample drifts and re-anchors; afterwards the estimate is right.
	if reports > 3 {
		t.Errorf("finite-difference DR on a line reported %d times", reports)
	}
	points, got := c.Stats()
	if points != 50 || got != reports {
		t.Errorf("stats = (%d,%d)", points, got)
	}
}

func TestDeadReckoningValidation(t *testing.T) {
	if _, err := NewDeadReckoning(0); err == nil {
		t.Error("zero tolerance accepted")
	}
}

func TestDeadReckoningNeedsMorePointsThanFBQS(t *testing.T) {
	// Figure 8(b)'s shape: DR reports ≈ 40-50% more points than FBQS on
	// twisty motion with dwells.
	rng := rand.New(rand.NewSource(10))
	var nDR, nFBQS int
	for trial := 0; trial < 5; trial++ {
		n := 3000
		pts := make([]core.Point, 0, n)
		vxs := make([]float64, 0, n)
		vys := make([]float64, 0, n)
		x, y, heading := 0.0, 0.0, rng.Float64()*2*math.Pi
		for i := 0; i < n; i++ {
			if rng.Intn(60) == 0 { // waiting event
				for j := 0; j < 10 && i < n; j++ {
					pts = append(pts, core.Point{X: x, Y: y, T: float64(i)})
					vxs = append(vxs, 0)
					vys = append(vys, 0)
					i++
				}
				i--
				continue
			}
			heading += rng.NormFloat64() * 0.3
			sp := 5 + rng.Float64()*10
			vx, vy := math.Cos(heading)*sp, math.Sin(heading)*sp
			x += vx
			y += vy
			pts = append(pts, core.Point{X: x, Y: y, T: float64(i)})
			vxs = append(vxs, vx)
			vys = append(vys, vy)
		}
		dr, _ := NewDeadReckoning(10)
		for i, p := range pts {
			dr.PushV(p, vxs[i], vys[i])
		}
		_, reports := dr.Stats()
		nDR += reports

		fbqs, err := core.NewCompressor(core.Config{Tolerance: 10, Mode: core.ModeFast})
		if err != nil {
			t.Fatal(err)
		}
		nFBQS += len(fbqs.CompressBatch(pts))
	}
	if nDR <= nFBQS {
		t.Errorf("DR reports %d ≤ FBQS %d; expected DR to need more", nDR, nFBQS)
	}
	t.Logf("DR=%d FBQS=%d (+%.0f%%)", nDR, nFBQS, 100*float64(nDR-nFBQS)/float64(nFBQS))
}

func TestSquishELambdaRespectsRatio(t *testing.T) {
	pts := randomWalk(rand.New(rand.NewSource(11)), 1000, 10)
	out, err := SquishELambda(pts, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := len(pts) / 10
	if len(out) > want+2 {
		t.Errorf("SQUISH-E(λ=10) kept %d points, want ≤ %d", len(out), want+2)
	}
	if !out[0].Equal(pts[0]) || !out[len(out)-1].Equal(pts[len(pts)-1]) {
		t.Error("endpoints not preserved")
	}
	for i := 1; i < len(out); i++ {
		if out[i].T <= out[i-1].T {
			t.Fatal("output out of order")
		}
	}
}

func TestSquishEMuBoundsSED(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	pts := randomWalk(rng, 500, 10)
	mu := 15.0
	out, err := SquishEMu(pts, mu)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) >= len(pts) {
		t.Errorf("SQUISH-E(μ) kept everything (%d of %d)", len(out), len(pts))
	}
	// The SQUISH-E priority is an upper bound on the true SED introduced by
	// the removals: verify the actual SED of every removed point.
	ki := 0
	for _, p := range pts {
		for ki+1 < len(out) && out[ki+1].T < p.T {
			ki++
		}
		if ki+1 >= len(out) {
			break
		}
		if p.T <= out[ki].T || p.T >= out[ki+1].T {
			continue
		}
		if d := sed(p, out[ki], out[ki+1]); d > mu*(1+1e-9) {
			t.Fatalf("removed point %v has SED %v > μ=%v", p, d, mu)
		}
	}
}

func TestSquishDegenerate(t *testing.T) {
	if _, err := SquishELambda(nil, 0.5); err == nil {
		t.Error("λ < 1 accepted")
	}
	if _, err := SquishEMu(nil, -1); err == nil {
		t.Error("μ < 0 accepted")
	}
	two := []core.Point{{X: 0, T: 0}, {X: 1, T: 1}}
	out, err := SquishELambda(two, 5)
	if err != nil || len(out) != 2 {
		t.Errorf("two-point λ: %v %v", out, err)
	}
	out, err = SquishEMu(two, 5)
	if err != nil || len(out) != 2 {
		t.Errorf("two-point μ: %v %v", out, err)
	}
}

func TestSedBasic(t *testing.T) {
	a := core.Point{X: 0, Y: 0, T: 0}
	b := core.Point{X: 10, Y: 0, T: 10}
	// On-time point on the path: SED 0.
	if d := sed(core.Point{X: 5, Y: 0, T: 5}, a, b); !almostEq(d, 0, 1e-12) {
		t.Errorf("on-path SED = %v", d)
	}
	// Spatially on the path but temporally early: SED is the along-track gap.
	if d := sed(core.Point{X: 5, Y: 0, T: 2}, a, b); !almostEq(d, 3, 1e-12) {
		t.Errorf("early SED = %v, want 3", d)
	}
	// Degenerate time span falls back to anchor distance.
	if d := sed(core.Point{X: 3, Y: 4, T: 0}, a, core.Point{X: 1, Y: 1, T: 0}); !almostEq(d, 5, 1e-12) {
		t.Errorf("degenerate SED = %v, want 5", d)
	}
}

func TestUniformSample(t *testing.T) {
	pts := randomWalk(rand.New(rand.NewSource(13)), 100, 10)
	out, err := UniformSample(pts, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 11 {
		t.Errorf("kept %d, want 11", len(out))
	}
	if !out[len(out)-1].Equal(pts[len(pts)-1]) {
		t.Error("last point missing")
	}
	if _, err := UniformSample(pts, 0); err == nil {
		t.Error("stride 0 accepted")
	}
	if out, err := UniformSample(nil, 3); err != nil || out != nil {
		t.Errorf("nil input: %v %v", out, err)
	}
}

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
