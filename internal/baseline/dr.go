package baseline

import (
	"math"

	"github.com/trajcomp/bqs/internal/core"
	"github.com/trajcomp/bqs/internal/geom"
)

// DeadReckoning implements the dead-reckoning location-update policy
// (Trajcevski et al., MobiDE'06) the paper compares FBQS against on the
// synthetic dataset: the tracker reports a point together with its current
// velocity; afterwards the reconstructed position is extrapolated linearly,
// and a new report is issued only when the true position drifts more than
// the tolerance away from the extrapolation. The reconstruction error is
// therefore bounded by the tolerance at every sample instant.
//
// Velocities may be supplied with each sample (the synthetic generator
// provides ground-truth velocities, which the paper's setting requires:
// "continuous high-frequency samples with speed readings"); when absent
// they are estimated by finite differences of consecutive samples.
//
// Note each report carries position, timestamp and velocity, so a DR
// "point" costs more storage than a BQS key point; the paper compares raw
// point counts, and so does this implementation.
//
// Not safe for concurrent use.
type DeadReckoning struct {
	tolerance float64

	opened   bool
	anchor   core.Point // last reported point
	vx, vy   float64    // velocity at the anchor
	prev     core.Point // previous raw sample (finite-difference state)
	havePrev bool

	points, reports int
}

// NewDeadReckoning returns a dead-reckoning reporter with the given
// tolerance in metres.
func NewDeadReckoning(tolerance float64) (*DeadReckoning, error) {
	if err := checkTolerance(tolerance); err != nil {
		return nil, err
	}
	return &DeadReckoning{tolerance: tolerance}, nil
}

// PushV feeds the next sample with its instantaneous velocity in m/s.
// It returns the reported point and true when this sample triggered a
// report.
func (c *DeadReckoning) PushV(p core.Point, vx, vy float64) (core.Point, bool) {
	c.points++
	if !c.opened {
		c.opened = true
		c.anchor, c.vx, c.vy = p, vx, vy
		c.prev, c.havePrev = p, true
		c.reports++
		return p, true
	}
	dt := p.T - c.anchor.T
	predX := c.anchor.X + c.vx*dt
	predY := c.anchor.Y + c.vy*dt
	drift := geom.V(p.X-predX, p.Y-predY).Norm()
	c.prev, c.havePrev = p, true
	if drift > c.tolerance {
		c.anchor, c.vx, c.vy = p, vx, vy
		c.reports++
		return p, true
	}
	return core.Point{}, false
}

// Push feeds the next sample, estimating its velocity from the previous
// raw sample.
func (c *DeadReckoning) Push(p core.Point) (core.Point, bool) {
	var vx, vy float64
	if c.havePrev {
		dt := p.T - c.prev.T
		if dt > 0 && !math.IsInf(dt, 0) {
			vx = (p.X - c.prev.X) / dt
			vy = (p.Y - c.prev.Y) / dt
		}
	}
	return c.PushV(p, vx, vy)
}

// Flush closes the trajectory; dead reckoning has no pending state, so it
// only resets for the next trajectory and reports whether a final point was
// due (never: the last report already anchors the tail).
func (c *DeadReckoning) Flush() (core.Point, bool) {
	c.opened = false
	c.havePrev = false
	return core.Point{}, false
}

// Stats returns samples consumed and reports issued.
func (c *DeadReckoning) Stats() (points, reports int) { return c.points, c.reports }

// ReconstructAt returns the dead-reckoned position estimate at time t for
// an anchor report (p, vx, vy); exposed for reconstruction-error tests.
func ReconstructAt(p core.Point, vx, vy, t float64) core.Point {
	dt := t - p.T
	return core.Point{X: p.X + vx*dt, Y: p.Y + vy*dt, T: t}
}
