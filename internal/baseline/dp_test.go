package baseline

import (
	"math"
	"math/rand"
	"testing"

	"github.com/trajcomp/bqs/internal/core"
)

// randomWalk mirrors the core test generator: correlated walk with dwells.
func randomWalk(rng *rand.Rand, n int, step float64) []core.Point {
	pts := make([]core.Point, n)
	x, y := rng.NormFloat64()*100, rng.NormFloat64()*100
	heading := rng.Float64() * 2 * math.Pi
	dwell := 0
	for i := 0; i < n; i++ {
		if dwell > 0 {
			dwell--
			pts[i] = core.Point{X: x + rng.NormFloat64()*step/10, Y: y + rng.NormFloat64()*step/10, T: float64(i)}
			continue
		}
		if rng.Intn(40) == 0 {
			dwell = rng.Intn(20)
		}
		heading += rng.NormFloat64() * 0.4
		speed := step * (0.2 + rng.Float64())
		x += math.Cos(heading) * speed
		y += math.Sin(heading) * speed
		pts[i] = core.Point{X: x, Y: y, T: float64(i)}
	}
	return pts
}

// maxSegmentError mirrors the core test helper: worst deviation of any
// original point from its compressed segment (matched by timestamp).
func maxSegmentError(orig, keys []core.Point, metric core.Metric) float64 {
	var worst float64
	for ki := 0; ki+1 < len(keys); ki++ {
		s, e := keys[ki], keys[ki+1]
		var interior []core.Point
		for _, p := range orig {
			if p.T > s.T && p.T < e.T {
				interior = append(interior, p)
			}
		}
		if d := core.MaxDeviation(interior, s, e, metric); d > worst {
			worst = d
		}
	}
	return worst
}

func TestDouglasPeuckerStraightLine(t *testing.T) {
	var pts []core.Point
	for i := 0; i < 100; i++ {
		pts = append(pts, core.Point{X: float64(i), Y: 0, T: float64(i)})
	}
	out, err := DouglasPeucker(pts, 1, core.MetricLine)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Errorf("straight line kept %d points", len(out))
	}
}

func TestDouglasPeuckerKeepsCorner(t *testing.T) {
	pts := []core.Point{
		{X: 0, Y: 0, T: 0}, {X: 5, Y: 0, T: 1}, {X: 10, Y: 0, T: 2},
		{X: 10, Y: 5, T: 3}, {X: 10, Y: 10, T: 4},
	}
	out, err := DouglasPeucker(pts, 1, core.MetricLine)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("corner path kept %d points: %v", len(out), out)
	}
	if out[1].X != 10 || out[1].Y != 0 {
		t.Errorf("kept wrong interior point: %v", out[1])
	}
}

func TestDouglasPeuckerErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		pts := randomWalk(rng, 300, 10)
		for _, metric := range []core.Metric{core.MetricLine, core.MetricSegment} {
			tol := []float64{2, 5, 10}[rng.Intn(3)]
			out, err := DouglasPeucker(pts, tol, metric)
			if err != nil {
				t.Fatal(err)
			}
			if got := maxSegmentError(pts, out, metric); got > tol*(1+1e-9) {
				t.Fatalf("trial %d metric %v: error %v > %v", trial, metric, got, tol)
			}
			if !out[0].Equal(pts[0]) || !out[len(out)-1].Equal(pts[len(pts)-1]) {
				t.Fatal("endpoints not preserved")
			}
		}
	}
}

func TestDouglasPeuckerDegenerate(t *testing.T) {
	if out, err := DouglasPeucker(nil, 1, core.MetricLine); err != nil || len(out) != 0 {
		t.Errorf("nil input: %v %v", out, err)
	}
	one := []core.Point{{X: 1, Y: 1, T: 0}}
	if out, err := DouglasPeucker(one, 1, core.MetricLine); err != nil || len(out) != 1 {
		t.Errorf("one point: %v %v", out, err)
	}
	two := []core.Point{{X: 1, Y: 1, T: 0}, {X: 2, Y: 2, T: 1}}
	if out, err := DouglasPeucker(two, 1, core.MetricLine); err != nil || len(out) != 2 {
		t.Errorf("two points: %v %v", out, err)
	}
	// Identical points collapse to endpoints.
	same := []core.Point{{X: 1, Y: 1, T: 0}, {X: 1, Y: 1, T: 1}, {X: 1, Y: 1, T: 2}}
	if out, err := DouglasPeucker(same, 1, core.MetricLine); err != nil || len(out) != 2 {
		t.Errorf("identical points: %v %v", out, err)
	}
	if _, err := DouglasPeucker(two, 0, core.MetricLine); err == nil {
		t.Error("zero tolerance accepted")
	}
	if _, err := DouglasPeucker(two, math.NaN(), core.MetricLine); err == nil {
		t.Error("NaN tolerance accepted")
	}
}

func TestDouglasPeuckerOptimalVsOnline(t *testing.T) {
	// DP is offline/greedy and usually keeps fewer points than the windowed
	// online baselines at the same tolerance — sanity-check the ordering the
	// paper's Figure 7 relies on (BDP worst).
	rng := rand.New(rand.NewSource(7))
	var dpTotal, bdpTotal int
	for trial := 0; trial < 10; trial++ {
		pts := randomWalk(rng, 500, 10)
		out, err := DouglasPeucker(pts, 10, core.MetricLine)
		if err != nil {
			t.Fatal(err)
		}
		dpTotal += len(out)

		bdp, err := NewBufferedDP(10, 32, core.MetricLine)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, p := range pts {
			n += len(bdp.Push(p))
		}
		n += len(bdp.Flush())
		bdpTotal += n
	}
	if dpTotal >= bdpTotal {
		t.Errorf("DP kept %d ≥ BDP %d; expected DP to win", dpTotal, bdpTotal)
	}
}
