package engine

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/trajcomp/bqs/internal/core"
	"github.com/trajcomp/bqs/internal/stream"
	"github.com/trajcomp/bqs/internal/synth"
	"github.com/trajcomp/bqs/internal/trajstore"
)

// deviceTrack generates a deterministic per-device trajectory from the
// paper's synthetic walk model; the same seed always yields the same
// trajectory.
func deviceTrack(seed int64, n int) []core.Point {
	cfg := synth.DefaultWalkConfig(seed)
	cfg.N = n
	return synth.Walk(cfg).Points()
}

// keyCollector gathers per-device key points from the OnKey callback.
type keyCollector struct {
	mu sync.Mutex
	m  map[string][]core.Point
}

func newKeyCollector() *keyCollector {
	return &keyCollector{m: make(map[string][]core.Point)}
}

func (kc *keyCollector) add(device string, kp core.Point) {
	kc.mu.Lock()
	kc.m[device] = append(kc.m[device], kp)
	kc.mu.Unlock()
}

func (kc *keyCollector) get(device string) []core.Point {
	kc.mu.Lock()
	defer kc.mu.Unlock()
	return kc.m[device]
}

// csvBytes renders key points in the wire CSV format used for the
// byte-identity comparison.
func csvBytes(t *testing.T, pts []core.Point) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := stream.WriteCSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestEngineByteIdenticalConcurrent drives 1200 concurrent device
// sessions through the engine from 16 goroutines and checks every
// session's compressed output is byte-identical to running its
// compressor single-threaded.
func TestEngineByteIdenticalConcurrent(t *testing.T) {
	const (
		devices = 1200
		perDev  = 64
		workers = 16
		step    = 4
		tol     = 10.0
	)
	tracks := make([][]core.Point, devices)
	for d := range tracks {
		tracks[d] = deviceTrack(int64(d)+1, perDev)
	}
	name := func(d int) string { return fmt.Sprintf("dev-%04d", d) }

	kc := newKeyCollector()
	e, err := New(Config{
		Compressor: "fbqs",
		Tolerance:  tol,
		Shards:     8,
		OnKey:      kc.add,
		Store:      trajstore.Config{MergeTolerance: 0},
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker owns a disjoint set of devices and pushes
			// their fixes in order, in mixed-device batches.
			for lo := 0; lo < perDev; lo += step {
				var batch []Fix
				for d := w; d < devices; d += workers {
					for k := lo; k < lo+step; k++ {
						batch = append(batch, Fix{Device: name(d), Point: tracks[d][k]})
					}
				}
				if err := e.Ingest(batch); err != nil {
					t.Errorf("Ingest: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	totalKeys := uint64(0)
	for d := 0; d < devices; d++ {
		c, err := stream.New("fbqs", tol)
		if err != nil {
			t.Fatal(err)
		}
		want := stream.Compress(c, tracks[d])
		got := kc.get(name(d))
		if !bytes.Equal(csvBytes(t, want), csvBytes(t, got)) {
			t.Fatalf("device %d: engine output differs from single-threaded run:\nwant %d keys %v\ngot  %d keys %v",
				d, len(want), want[:min(3, len(want))], len(got), got[:min(3, len(got))])
		}
		totalKeys += uint64(len(want))
	}

	s := e.Stats()
	if s.SessionsOpened != devices {
		t.Errorf("SessionsOpened = %d, want %d", s.SessionsOpened, devices)
	}
	if s.ActiveSessions != 0 {
		t.Errorf("ActiveSessions = %d after Close, want 0", s.ActiveSessions)
	}
	if s.Fixes != devices*perDev {
		t.Errorf("Fixes = %d, want %d", s.Fixes, devices*perDev)
	}
	if s.KeyPoints != totalKeys {
		t.Errorf("KeyPoints = %d, want %d", s.KeyPoints, totalKeys)
	}
	// Every session's N key points form N-1 stored segments.
	if want := int(totalKeys) - devices; s.Store.Inserted != want {
		t.Errorf("Store.Inserted = %d, want %d", s.Store.Inserted, want)
	}
}

// TestEngineIdleEviction drives eviction with a fake clock and checks the
// evicted session was flushed exactly like a single-threaded run.
func TestEngineIdleEviction(t *testing.T) {
	const tol = 5.0
	var now atomic.Int64
	clock := func() time.Time { return time.Unix(now.Load(), 0) }

	kc := newKeyCollector()
	e, err := New(Config{
		Compressor:  "bqs",
		Tolerance:   tol,
		Shards:      2,
		IdleTimeout: 10 * time.Second,
		Clock:       clock,
		OnKey:       kc.add,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	track := deviceTrack(42, 80)
	fixes := make([]Fix, len(track))
	for i, p := range track {
		fixes[i] = Fix{Device: "a", Point: p}
	}
	if err := e.Ingest(fixes); err != nil {
		t.Fatal(err)
	}
	if err := e.IngestOne("b", core.Point{X: 1, Y: 2, T: 3}); err != nil {
		t.Fatal(err)
	}
	if err := e.Sync(); err != nil {
		t.Fatal(err)
	}

	// Nothing is idle yet: the sweep must evict nothing.
	if err := e.EvictIdle(); err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.SessionsEvicted != 0 || s.ActiveSessions != 2 {
		t.Fatalf("premature eviction: %+v", s)
	}

	// Advance past the idle timeout, keep "b" fresh, sweep.
	now.Store(11)
	if err := e.IngestOne("b", core.Point{X: 2, Y: 2, T: 4}); err != nil {
		t.Fatal(err)
	}
	if err := e.EvictIdle(); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.SessionsEvicted != 1 {
		t.Fatalf("SessionsEvicted = %d, want 1", s.SessionsEvicted)
	}
	if s.ActiveSessions != 1 {
		t.Fatalf("ActiveSessions = %d, want 1 (only b)", s.ActiveSessions)
	}

	// The evicted session's output must include the final Flush, i.e.
	// match a full single-threaded Compress of the same track.
	c, err := stream.New("bqs", tol)
	if err != nil {
		t.Fatal(err)
	}
	want := stream.Compress(c, track)
	if !bytes.Equal(csvBytes(t, want), csvBytes(t, kc.get("a"))) {
		t.Fatalf("evicted session output not flushed correctly:\nwant %v\ngot  %v", want, kc.get("a"))
	}

	// Re-contact after eviction opens a fresh session (exercising the
	// compressor pool).
	if err := e.IngestOne("a", core.Point{X: 9, Y: 9, T: 100}); err != nil {
		t.Fatal(err)
	}
	if err := e.Sync(); err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.SessionsOpened != 3 || s.ActiveSessions != 2 {
		t.Fatalf("re-contact after eviction: %+v", s)
	}
}

// TestEngineClosed checks shutdown semantics.
func TestEngineClosed(t *testing.T) {
	e, err := New(Config{Compressor: "fbqs", Tolerance: 10, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.IngestOne("a", core.Point{X: 1, Y: 1, T: 1}); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal("second Close should be a no-op, got", err)
	}
	if err := e.IngestOne("a", core.Point{X: 2, Y: 2, T: 2}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Ingest after Close = %v, want ErrClosed", err)
	}
	if err := e.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sync after Close = %v, want ErrClosed", err)
	}
	if err := e.EvictIdle(); !errors.Is(err, ErrClosed) {
		t.Fatalf("EvictIdle after Close = %v, want ErrClosed", err)
	}
	// Close flushed the single session: its only point is its only key.
	if s := e.Stats(); s.KeyPoints != 1 || s.ActiveSessions != 0 {
		t.Fatalf("post-close stats: %+v", s)
	}
}

// TestEngineConfigValidation checks that bad configurations fail at
// construction, not on the first fix.
func TestEngineConfigValidation(t *testing.T) {
	if _, err := New(Config{Compressor: "no-such-algo", Tolerance: 10}); !errors.Is(err, stream.ErrUnknownCompressor) {
		t.Fatalf("unknown compressor: err = %v", err)
	}
	if _, err := New(Config{Compressor: "fbqs", Tolerance: -1}); err == nil {
		t.Fatal("negative tolerance accepted")
	}
	if _, err := New(Config{Compressor: "fbqs", Tolerance: 10, IdleTimeout: -time.Second}); err == nil {
		t.Fatal("negative IdleTimeout accepted")
	}
	if _, err := New(Config{Compressor: "fbqs", Tolerance: 10, Store: trajstore.Config{MergeTolerance: math.NaN()}}); err == nil {
		t.Fatal("NaN merge tolerance accepted")
	}
}

// TestEngineChaos hammers one engine from many goroutines — overlapping
// devices, concurrent Stats/Sync/EvictIdle, a live idle ticker — to give
// the race detector surface area. Determinism is not checked here.
func TestEngineChaos(t *testing.T) {
	e, err := New(Config{
		Compressor:  "fbqs",
		Tolerance:   10,
		Shards:      4,
		IdleTimeout: 20 * time.Millisecond,
		Store:       trajstore.Config{MergeTolerance: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 12
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			track := deviceTrack(int64(w), 300)
			for i, p := range track {
				dev := fmt.Sprintf("shared-%d", i%40) // overlap across workers
				if err := e.IngestOne(dev, p); err != nil {
					t.Errorf("Ingest: %v", err)
					return
				}
				switch i % 100 {
				case 50:
					e.Stats()
				case 75:
					if err := e.Sync(); err != nil {
						t.Errorf("Sync: %v", err)
						return
					}
				case 99:
					if err := e.EvictIdle(); err != nil {
						t.Errorf("EvictIdle: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.Fixes != workers*300 {
		t.Fatalf("Fixes = %d, want %d", s.Fixes, workers*300)
	}
	if s.ActiveSessions != 0 {
		t.Fatalf("ActiveSessions = %d after Close", s.ActiveSessions)
	}
}
