package engine

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"github.com/trajcomp/bqs/internal/core"
	"github.com/trajcomp/bqs/internal/trajstore"
	"github.com/trajcomp/bqs/internal/trajstore/segmentlog"
)

// gridWalk builds a random walk for device d snapped to the wire
// format's resolution (0.01 m at the default 1e5 m/°) with whole-second
// timestamps, so every emitted key point survives the persist round
// trip bit-exactly and the in-memory and durable ground truths can be
// compared as equal sets. Device d walks inside its own ~2 km cell.
func gridWalk(d, n int, rng *rand.Rand) []core.Point {
	snap := func(v float64) float64 { return math.Round(v*100) / 100 }
	x := float64(d%4) * 2000
	y := float64(d/4) * 2000
	t := 1000.0
	pts := make([]core.Point, n)
	for i := range pts {
		x += rng.Float64()*20 - 10
		y += rng.Float64()*20 - 10
		t += float64(rng.Intn(4) + 1)
		pts[i] = core.Point{X: snap(x), Y: snap(y), T: t}
	}
	return pts
}

// pairSet reduces segments to a set of wire-resolution pair keys.
func pairSet(segs []trajstore.Segment, m float64) map[pairKey]bool {
	out := make(map[pairKey]bool, len(segs))
	for _, s := range segs {
		out[pairKeyOf(s.A, s.B, m)] = true
	}
	return out
}

// diffSets reports the asymmetric differences between two pair sets.
func diffSets(a, b map[pairKey]bool) (onlyA, onlyB int) {
	for k := range a {
		if !b[k] {
			onlyA++
		}
	}
	for k := range b {
		if !a[k] {
			onlyB++
		}
	}
	return onlyA, onlyB
}

// durablePairSet derives the exact-filtered pair set from a raw log's
// window query — the durable side of the differential comparison.
func durablePairSet(t *testing.T, lg *segmentlog.Log, minX, minY, maxX, maxY float64, t0, t1 uint32, m float64) map[pairKey]bool {
	t.Helper()
	recs, err := lg.QueryWindow(minX/m, minY/m, maxX/m, maxY/m, t0, t1)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[pairKey]bool)
	for _, rec := range recs {
		for i := 0; i+1 < len(rec.Keys); i++ {
			a, b := geoPoint(rec.Keys[i], m), geoPoint(rec.Keys[i+1], m)
			if pairInWindow(a, b, minX, minY, maxX, maxY, float64(t0), float64(t1)) {
				out[pairKeyOf(a, b, m)] = true
			}
		}
	}
	return out
}

// diffWindows are the randomized-plus-corner windows of the
// differential test. Boundaries sit at x.5 cm offsets, half a quantum
// off the snapped coordinate grid, so inclusion can never be decided
// by floating-point luck on either side.
func diffWindows(rng *rand.Rand) [][6]float64 {
	ws := [][6]float64{
		{-1e6, -1e6, 1e6, 1e6, 0, math.MaxUint32},               // everything
		{0.005, 0.005, 1900.005, 1900.005, 0, math.MaxUint32},   // one cell
		{-1e6, -1e6, 1e6, 1e6, 1000, 1200},                      // early time slice
		{123456.005, 123456.005, 123466.005, 123466.005, 0, 10}, // empty
	}
	for i := 0; i < 8; i++ {
		x0 := math.Floor(rng.Float64()*6000)*1 - 1000 + 0.005
		y0 := math.Floor(rng.Float64()*6000)*1 - 1000 + 0.005
		w := math.Floor(rng.Float64()*3000) + 1
		t0 := uint32(1000 + rng.Intn(400))
		t1 := t0 + uint32(rng.Intn(600))
		ws = append(ws, [6]float64{x0, y0, x0 + w, y0 + w, float64(t0), float64(t1)})
	}
	return ws
}

// TestDifferentialWindowQueries is the ground-truth property test: on
// a randomized multi-device fleet ingested with chunking, the durable
// log's QueryWindow must return exactly the trajectory segments the
// in-memory Store.Query ∩ QueryTime ground truth returns — at wire
// resolution, across randomized windows, and again after
// crash-recovery and after compaction.
func TestDifferentialWindowQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dir := t.TempDir()
	lg, err := segmentlog.Open(dir, segmentlog.Options{MaxSegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	const m = 1e5
	e, err := New(Config{
		Compressor:   "fbqs",
		Tolerance:    5,
		Shards:       4,
		MaxTrailKeys: 7, // force chunked records with the 1-key overlap
		Persister:    lg,
		Store:        trajstore.Config{}, // MergeTolerance 0: every pair stored verbatim
	})
	if err != nil {
		t.Fatal(err)
	}

	const devices, fixesPer = 12, 300
	tracks := make([][]core.Point, devices)
	for d := range tracks {
		tracks[d] = gridWalk(d, fixesPer, rng)
	}
	var fixes []Fix
	for i := 0; i < fixesPer; i++ {
		for d := range tracks {
			fixes = append(fixes, Fix{Device: fmt.Sprintf("dev-%02d", d), Point: tracks[d][i]})
		}
	}
	for lo := 0; lo < len(fixes); lo += 512 {
		hi := min(lo+512, len(fixes))
		if err := e.Ingest(fixes[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil { // flushes every session to the log
		t.Fatal(err)
	}

	windows := diffWindows(rng)
	truth := make([]map[pairKey]bool, len(windows))
	nonEmpty := 0
	for i, w := range windows {
		truth[i] = pairSet(e.Stores().QueryWindow(w[0], w[1], w[2], w[3], w[4], w[5]), m)
		if len(truth[i]) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 3 {
		t.Fatalf("degenerate windows: only %d non-empty ground truths", nonEmpty)
	}

	compare := func(stage string, lg *segmentlog.Log) {
		t.Helper()
		for i, w := range windows {
			got := durablePairSet(t, lg, w[0], w[1], w[2], w[3], uint32(w[4]), uint32(w[5]), m)
			if onlyMem, onlyLog := diffSets(truth[i], got); onlyMem != 0 || onlyLog != 0 {
				t.Fatalf("%s window %d: %d segments only in memory, %d only in log (truth %d)",
					stage, i, onlyMem, onlyLog, len(truth[i]))
			}
		}
	}

	// Leg 1: clean reopen (block-index load path).
	lg2, err := segmentlog.Open(dir, segmentlog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	compare("reopen", lg2)
	if err := lg2.Close(); err != nil {
		t.Fatal(err)
	}

	// Leg 2: crash recovery — a torn append on the active segment is
	// truncated on reopen without disturbing any committed record.
	man, err := os.ReadFile(filepath.Join(dir, "MANIFEST"))
	if err != nil {
		t.Fatal(err)
	}
	last := ""
	for _, line := range splitLines(string(man)) {
		if len(line) > 4 && line[:4] == "seg " {
			last = line[4:]
			if i := indexByte(last, ' '); i >= 0 {
				last = last[:i]
			}
		}
	}
	f, err := os.OpenFile(filepath.Join(dir, last), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x55, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	lg3, err := segmentlog.Open(dir, segmentlog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if lg3.Stats().Truncated == 0 {
		t.Fatal("torn tail not detected")
	}
	compare("crash-recovery", lg3)

	// Leg 3: compaction (chunk merge + dedup — polyline-preserving).
	if _, err := lg3.Compact(segmentlog.CompactionPolicy{MergeChunks: true}); err != nil {
		t.Fatal(err)
	}
	compare("compacted", lg3)
	if err := lg3.Close(); err != nil {
		t.Fatal(err)
	}

	// Leg 4: reopen of the compacted log.
	lg4, err := segmentlog.Open(dir, segmentlog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer lg4.Close()
	compare("compacted-reopen", lg4)
}

func splitLines(s string) []string {
	var out []string
	for len(s) > 0 {
		i := indexByte(s, '\n')
		if i < 0 {
			out = append(out, s)
			break
		}
		out = append(out, s[:i])
		s = s[i+1:]
	}
	return out
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// TestEngineQueryWindowMergesLiveAndDurable: one Engine.QueryWindow
// call sees un-persisted session tails (live stores), persisted
// history (durable log), and never double-reports a segment present in
// both.
func TestEngineQueryWindowMergesLiveAndDurable(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	dir := t.TempDir()
	const m = 1e5
	newEngine := func() (*Engine, *segmentlog.Log) {
		t.Helper()
		lg, err := segmentlog.Open(dir, segmentlog.Options{})
		if err != nil {
			t.Fatal(err)
		}
		e, err := New(Config{
			Compressor: "fbqs", Tolerance: 5, Shards: 2,
			IdleTimeout: time.Hour, Persister: lg,
			Clock: func() time.Time { return time.Unix(0, 0) },
		})
		if err != nil {
			t.Fatal(err)
		}
		return e, lg
	}
	e, _ := newEngine()
	track := gridWalk(0, 400, rng)
	for i := range track {
		if err := e.IngestOne("roamer", track[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Sync(); err != nil {
		t.Fatal(err)
	}

	// Mid-session: nothing persisted yet, the live side answers alone.
	all := func(e *Engine) []trajstore.Segment {
		t.Helper()
		segs, err := e.QueryWindow(-1e6, -1e6, 1e6, 1e6, 0, math.MaxUint32)
		if err != nil {
			t.Fatal(err)
		}
		return segs
	}
	liveOnly := all(e)
	if len(liveOnly) == 0 {
		t.Fatal("no live segments")
	}
	if n := len(pairSet(liveOnly, m)); n != len(liveOnly) {
		t.Fatalf("live result has duplicate pairs: %d unique of %d", n, len(liveOnly))
	}

	// After a full flush the same segments are also durable. Close
	// flushes the compressor, which may emit tail key points beyond the
	// mid-session snapshot; the post-close stores are the ground truth.
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	flushed := pairSet(e.Stores().QueryWindow(-1e6, -1e6, 1e6, 1e6, 0, math.MaxUint32), m)
	if len(flushed) < len(liveOnly) {
		t.Fatalf("post-close ground truth shrank: %d < %d", len(flushed), len(liveOnly))
	}
	e2, _ := newEngine()
	// Restart: the stores are empty, history must come from the log.
	fromLog := all(e2)
	if onlyMem, onlyLog := diffSets(flushed, pairSet(fromLog, m)); onlyMem != 0 || onlyLog != 0 {
		t.Fatalf("restarted engine durable view diverges: %d only in memory, %d only in log", onlyMem, onlyLog)
	}
	// Re-ingest the same walk: every pair is now both live and durable;
	// dedup must keep the count stable.
	for i := range track {
		if err := e2.IngestOne("roamer", track[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := e2.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := e2.EvictIdle(); err != nil { // IdleTimeout not elapsed: sessions stay
		t.Fatal(err)
	}
	merged := all(e2)
	if got, want := len(pairSet(merged, m)), len(flushed); got != want {
		t.Fatalf("merged live+durable set has %d unique pairs, want %d", got, want)
	}
	if len(merged) != len(pairSet(merged, m)) {
		t.Fatalf("merged result double-reports: %d rows, %d unique", len(merged), len(pairSet(merged, m)))
	}

	// A spatial sub-window agrees with the in-memory ground truth.
	xs := make([]float64, 0, len(track))
	for _, p := range track {
		xs = append(xs, p.X)
	}
	sort.Float64s(xs)
	midX := xs[len(xs)/2] + 0.005
	sub, err := e2.QueryWindow(-1e6, -1e6, midX, 1e6, 0, math.MaxUint32)
	if err != nil {
		t.Fatal(err)
	}
	wantSub := pairSet(e2.Stores().QueryWindow(-1e6, -1e6, midX, 1e6, 0, math.MaxUint32), m)
	if onlyMem, onlyMerged := diffSets(wantSub, pairSet(sub, m)); onlyMem != 0 || onlyMerged != 0 {
		t.Fatalf("sub-window merge diverges: %d only in memory, %d extra", onlyMem, onlyMerged)
	}
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := e2.QueryWindow(0, 0, 1, 1, 0, 1); err != ErrClosed {
		t.Fatalf("QueryWindow on closed engine = %v, want ErrClosed", err)
	}
}
