package engine

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/trajcomp/bqs/internal/trajstore"
	"github.com/trajcomp/bqs/internal/trajstore/segmentlog"
)

// windowFailPersister accepts appends but cannot answer window queries
// — the durable half of QueryWindow fails while the live half works.
type windowFailPersister struct{}

var errWindowBoom = errors.New("window boom")

func (windowFailPersister) Append(string, []trajstore.GeoKey) error { return nil }
func (windowFailPersister) Sync() error                             { return nil }
func (windowFailPersister) Close() error                            { return nil }
func (windowFailPersister) QueryWindow(minX, minY, maxX, maxY float64, t0, t1 uint32) ([]trajstore.PersistedRecord, error) {
	return nil, errWindowBoom
}

// TestEngineQueryWindowPartialResult pins the error contract: when the
// durable side fails, QueryWindow returns the live-side answer AND an
// error matching ErrPartialResult that wraps the underlying failure —
// never a silent partial slice, never an empty result with an error.
func TestEngineQueryWindowPartialResult(t *testing.T) {
	e, err := New(Config{
		Compressor: "fbqs", Tolerance: 5, Shards: 2,
		IdleTimeout: time.Hour, Persister: windowFailPersister{},
		Clock: func() time.Time { return time.Unix(0, 0) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	rng := rand.New(rand.NewSource(3))
	track := gridWalk(0, 200, rng)
	for i := range track {
		if err := e.IngestOne("roamer", track[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Sync(); err != nil {
		t.Fatal(err)
	}

	out, err := e.QueryWindow(-1e6, -1e6, 1e6, 1e6, 0, math.MaxUint32)
	if !errors.Is(err, ErrPartialResult) {
		t.Fatalf("QueryWindow error = %v, want ErrPartialResult", err)
	}
	if !errors.Is(err, errWindowBoom) {
		t.Fatalf("QueryWindow error = %v, does not wrap the durable failure", err)
	}
	if len(out) == 0 {
		t.Fatal("partial result dropped the live-side answer")
	}
}

// TestEngineQueryWindowCloseRace loops QueryWindow against a real
// segment-log persister while Close tears the engine down: every call
// must return either a successful answer or ErrClosed — never a partial
// result manufactured by racing the persister's teardown, and never a
// use of a closed log (the old closed-check TOCTOU). Run with -race.
func TestEngineQueryWindowCloseRace(t *testing.T) {
	for iter := 0; iter < 5; iter++ {
		dir := t.TempDir()
		lg, err := segmentlog.Open(dir, segmentlog.Options{CacheBytes: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		e, err := New(Config{
			Compressor: "fbqs", Tolerance: 5, Shards: 2,
			IdleTimeout: time.Hour, Persister: lg,
			Clock: func() time.Time { return time.Unix(0, 0) },
		})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(iter)))
		track := gridWalk(0, 150, rng)
		for i := range track {
			if err := e.IngestOne("roamer", track[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Sync(); err != nil {
			t.Fatal(err)
		}

		start := make(chan struct{})
		var wg sync.WaitGroup
		fail := make(chan error, 8)
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 50; i++ {
					_, err := e.QueryWindow(-1e6, -1e6, 1e6, 1e6, 0, math.MaxUint32)
					if err != nil {
						if err != ErrClosed {
							fail <- err
						}
						return
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if err := e.Close(); err != nil {
				fail <- err
			}
		}()
		close(start)
		wg.Wait()
		select {
		case err := <-fail:
			t.Fatalf("iter %d: %v", iter, err)
		default:
		}
	}
}

// TestEngineStatsCacheCounters: the engine surfaces the persister's
// read-cache counters through Stats, and Stats stays callable after
// Close (the persister is detached; cache stats read as absent).
func TestEngineStatsCacheCounters(t *testing.T) {
	dir := t.TempDir()
	lg, err := segmentlog.Open(dir, segmentlog.Options{CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{
		Compressor: "fbqs", Tolerance: 5, Shards: 2,
		IdleTimeout: time.Hour, Persister: lg,
		Clock: func() time.Time { return time.Unix(0, 0) },
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	track := gridWalk(0, 300, rng)
	for i := range track {
		if err := e.IngestOne("roamer", track[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Flush the session durably, then reopen so the window query must
	// read (and cache) from the log rather than the live stores.
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	lg2, err := segmentlog.Open(dir, segmentlog.Options{CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := New(Config{
		Compressor: "fbqs", Tolerance: 5, Shards: 2,
		IdleTimeout: time.Hour, Persister: lg2,
		Clock: func() time.Time { return time.Unix(0, 0) },
	})
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 20; i++ { // some live traffic so post-Close counters are nonzero
		if err := e2.IngestOne("walker", track[i]); err != nil {
			t.Fatal(err)
		}
	}
	query := func() {
		t.Helper()
		if _, err := e2.QueryWindow(-1e6, -1e6, 1e6, 1e6, 0, math.MaxUint32); err != nil {
			t.Fatal(err)
		}
	}
	query()
	s := e2.Stats()
	if s.Cache.Capacity == 0 {
		t.Fatal("Stats does not surface the cache capacity")
	}
	if s.Cache.Misses == 0 || s.Cache.Entries == 0 {
		t.Fatalf("cold query left no cache footprint in Stats: %+v", s.Cache)
	}
	query()
	s2 := e2.Stats()
	if s2.Cache.Hits <= s.Cache.Hits {
		t.Fatalf("warm query did not advance Stats cache hits: %d -> %d", s.Cache.Hits, s2.Cache.Hits)
	}

	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
	post := e2.Stats() // must not panic or race; persister is detached
	if post.Cache.Capacity != 0 {
		t.Fatalf("post-Close Stats still reports a cache: %+v", post.Cache)
	}
	if post.Fixes == 0 {
		t.Fatal("post-Close Stats lost the ingest counters")
	}
}
