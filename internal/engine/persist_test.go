package engine

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"github.com/trajcomp/bqs/internal/core"
	"github.com/trajcomp/bqs/internal/stream"
	"github.com/trajcomp/bqs/internal/trajstore"
	"github.com/trajcomp/bqs/internal/trajstore/segmentlog"
)

// quantize maps a GeoKey to its wire-format quantization (1e-7°), the
// value a persist→decode round trip yields.
func quantize(k trajstore.GeoKey) trajstore.GeoKey {
	return trajstore.GeoKey{
		Lat: math.Round(k.Lat*1e7) / 1e7,
		Lon: math.Round(k.Lon*1e7) / 1e7,
		T:   k.T,
	}
}

// expectGeo runs the reference single-threaded compression of a track
// and converts it to quantized wire keys, the exact content the log
// must hold for that device.
func expectGeo(t *testing.T, comp string, tol float64, track []core.Point) []trajstore.GeoKey {
	t.Helper()
	c, err := stream.New(comp, tol)
	if err != nil {
		t.Fatal(err)
	}
	keys := stream.Compress(c, track)
	geo := trajstore.PointKeysToGeo(keys, 1e5, 1e5)
	for i := range geo {
		geo[i] = quantize(geo[i])
	}
	return geo
}

// TestEnginePersistDurableAcrossRestart is the end-to-end durability
// test: ingest a fleet, Close (flushing every session into the log),
// reopen the log directory cold, and check each device's persisted
// trajectory equals the single-threaded reference compression.
func TestEnginePersistDurableAcrossRestart(t *testing.T) {
	const (
		devices = 40
		perDev  = 120
		tol     = 10.0
	)
	dir := t.TempDir()
	lg, err := segmentlog.Open(dir, segmentlog.Options{MaxSegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{
		Compressor: "fbqs",
		Tolerance:  tol,
		Shards:     4,
		Persister:  lg,
	})
	if err != nil {
		t.Fatal(err)
	}

	tracks := make([][]core.Point, devices)
	name := func(d int) string { return fmt.Sprintf("dev-%03d", d) }
	for d := range tracks {
		tracks[d] = deviceTrack(int64(d)+1, perDev)
	}
	for i := 0; i < perDev; i++ {
		var batch []Fix
		for d := range tracks {
			batch = append(batch, Fix{Device: name(d), Point: tracks[d][i]})
		}
		if err := e.Ingest(batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil { // flushes sessions, persists, closes the log
		t.Fatal(err)
	}
	if s := e.Stats(); s.Persisted != devices {
		t.Fatalf("Persisted = %d, want %d", s.Persisted, devices)
	}

	// Cold restart: reopen the directory and compare per-device content.
	lg2, err := segmentlog.Open(dir, segmentlog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer lg2.Close()
	if s := lg2.Stats(); s.Records != devices || s.Truncated != 0 {
		t.Fatalf("reopened log stats = %+v", s)
	}
	for d := 0; d < devices; d++ {
		recs, err := lg2.Query(name(d), 0, ^uint32(0))
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 1 {
			t.Fatalf("device %d: %d records, want 1", d, len(recs))
		}
		want := expectGeo(t, "fbqs", tol, tracks[d])
		got := recs[0].Keys
		if len(got) != len(want) {
			t.Fatalf("device %d: %d keys, want %d", d, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("device %d key %d: got %+v, want %+v", d, i, got[i], want[i])
			}
		}
	}
}

// TestEnginePersistOnEviction checks the eviction path persists too, and
// that Sync is the durability barrier (queryable immediately after).
func TestEnginePersistOnEviction(t *testing.T) {
	var now atomic.Int64
	clock := func() time.Time { return time.Unix(now.Load(), 0) }

	dir := t.TempDir()
	lg, err := segmentlog.Open(dir, segmentlog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{
		Compressor:  "fbqs",
		Tolerance:   5,
		Shards:      2,
		IdleTimeout: 10 * time.Second,
		Clock:       clock,
		Persister:   lg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	track := deviceTrack(7, 90)
	for _, p := range track {
		if err := e.IngestOne("roamer", p); err != nil {
			t.Fatal(err)
		}
	}
	// Drain the queue before advancing the clock: lastSeen is stamped at
	// processing time, not enqueue time.
	if err := e.Sync(); err != nil {
		t.Fatal(err)
	}
	now.Store(100)
	if err := e.EvictIdle(); err != nil {
		t.Fatal(err)
	}
	if err := e.Sync(); err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.Persisted != 1 {
		t.Fatalf("Persisted = %d after eviction, want 1", s.Persisted)
	}
	recs, err := lg.Query("roamer", 0, ^uint32(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("%d records after eviction+sync, want 1", len(recs))
	}
	want := expectGeo(t, "fbqs", 5, track)
	if len(recs[0].Keys) != len(want) {
		t.Fatalf("evicted trajectory has %d keys, want %d", len(recs[0].Keys), len(want))
	}
	for i := range want {
		if recs[0].Keys[i] != want[i] {
			t.Fatalf("key %d: got %+v, want %+v", i, recs[0].Keys[i], want[i])
		}
	}
}

// TestEnginePersistTrailChunking checks that a long-lived session's
// trail is flushed in bounded chunks (MaxTrailKeys) that overlap by one
// key point, and that concatenating the chunks reproduces the reference
// compression exactly.
func TestEnginePersistTrailChunking(t *testing.T) {
	const tol = 5.0
	dir := t.TempDir()
	lg, err := segmentlog.Open(dir, segmentlog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{
		Compressor:   "fbqs",
		Tolerance:    tol,
		Shards:       1,
		Persister:    lg,
		MaxTrailKeys: 8, // tiny: force several chunks
	})
	if err != nil {
		t.Fatal(err)
	}
	track := deviceTrack(13, 2000)
	for _, p := range track {
		if err := e.IngestOne("long", p); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	lg2, err := segmentlog.Open(dir, segmentlog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer lg2.Close()
	recs, err := lg2.Query("long", 0, ^uint32(0))
	if err != nil {
		t.Fatal(err)
	}
	want := expectGeo(t, "fbqs", tol, track)
	if len(want) <= 8 {
		t.Fatalf("reference produced only %d keys; test needs > MaxTrailKeys", len(want))
	}
	wantRecords := (len(want) + 6) / 7 // 8-key chunks overlapping by 1 ⇒ 7 new keys each
	if len(recs) < 2 {
		t.Fatalf("expected chunked records, got %d (want about %d)", len(recs), wantRecords)
	}
	// Stitch: drop each subsequent record's first (overlap) key.
	var got []trajstore.GeoKey
	for i, r := range recs {
		if len(r.Keys) > 8 {
			t.Fatalf("record %d has %d keys, exceeding MaxTrailKeys", i, len(r.Keys))
		}
		keys := r.Keys
		if i > 0 {
			if keys[0] != got[len(got)-1] {
				t.Fatalf("record %d does not start with the previous chunk's last key", i)
			}
			keys = keys[1:]
		}
		got = append(got, keys...)
	}
	if len(got) != len(want) {
		t.Fatalf("stitched %d keys, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stitched key %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// failingPersister errors on every operation after n successful appends.
type failingPersister struct {
	left atomic.Int64
}

var errPersistBoom = errors.New("boom")

func (f *failingPersister) Append(string, []trajstore.GeoKey) error {
	if f.left.Add(-1) < 0 {
		return errPersistBoom
	}
	return nil
}
func (f *failingPersister) Sync() error  { return nil }
func (f *failingPersister) Close() error { return nil }

// TestEnginePersistErrorSurfaced checks an async persister failure in a
// shard worker is latched and reported by Sync/Close.
func TestEnginePersistErrorSurfaced(t *testing.T) {
	fp := &failingPersister{}
	e, err := New(Config{Compressor: "fbqs", Tolerance: 10, Shards: 2, Persister: fp})
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 4; d++ {
		for i := 0; i < 3; i++ {
			if err := e.IngestOne(fmt.Sprintf("d%d", d), core.Point{X: float64(i * 30), Y: float64(d), T: float64(i)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := e.Close(); !errors.Is(err, errPersistBoom) {
		t.Fatalf("Close = %v, want errPersistBoom", err)
	}
}

// TestEnginePersistValidation checks config validation of the new field.
func TestEnginePersistValidation(t *testing.T) {
	if _, err := New(Config{Compressor: "fbqs", Tolerance: 10, MetersPerDegree: -1}); err == nil {
		t.Fatal("negative MetersPerDegree accepted")
	}
	if _, err := New(Config{Compressor: "fbqs", Tolerance: 10, MetersPerDegree: math.NaN()}); err == nil {
		t.Fatal("NaN MetersPerDegree accepted")
	}
	if _, err := New(Config{Compressor: "fbqs", Tolerance: 10, MetersPerDegree: math.Inf(1)}); err == nil {
		t.Fatal("infinite MetersPerDegree accepted")
	}
	if _, err := New(Config{Compressor: "fbqs", Tolerance: 10, MaxTrailKeys: -3}); err == nil {
		t.Fatal("negative MaxTrailKeys accepted")
	}
}

// closeFailPersister fails Append after n successes AND fails Close,
// to prove neither error masks the other.
type closeFailPersister struct {
	failingPersister
}

var errPersistClose = errors.New("close boom")

func (f *closeFailPersister) Close() error { return errPersistClose }

// TestEngineCloseJoinsErrors is the swallowed-error bugfix test: when a
// shard worker latched an async persist failure AND the persister's
// Close fails, Engine.Close must report both.
func TestEngineCloseJoinsErrors(t *testing.T) {
	fp := &closeFailPersister{}
	e, err := New(Config{Compressor: "fbqs", Tolerance: 10, Shards: 2, Persister: fp})
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 4; d++ {
		for i := 0; i < 3; i++ {
			if err := e.IngestOne(fmt.Sprintf("d%d", d), core.Point{X: float64(i * 30), Y: float64(d), T: float64(i)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	err = e.Close()
	if !errors.Is(err, errPersistBoom) {
		t.Fatalf("Close = %v, does not surface the latched append failure", err)
	}
	if !errors.Is(err, errPersistClose) {
		t.Fatalf("Close = %v, does not surface the close failure", err)
	}
}

// compactingPersister counts CompactNow calls (trajstore.Compacter).
type compactingPersister struct {
	compactions atomic.Int64
	fail        atomic.Bool
}

var errCompactBoom = errors.New("compact boom")

func (p *compactingPersister) Append(string, []trajstore.GeoKey) error { return nil }
func (p *compactingPersister) Sync() error                             { return nil }
func (p *compactingPersister) Close() error                            { return nil }
func (p *compactingPersister) CompactNow() error {
	p.compactions.Add(1)
	if p.fail.Load() {
		return errCompactBoom
	}
	return nil
}

// TestEngineCompactInterval checks the periodic compaction hook fires,
// CompactNow works on demand, and a compaction failure is latched and
// surfaced like any persister failure.
func TestEngineCompactInterval(t *testing.T) {
	p := &compactingPersister{}
	e, err := New(Config{
		Compressor:      "fbqs",
		Tolerance:       10,
		Shards:          1,
		Persister:       p,
		CompactInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.compactions.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if p.compactions.Load() == 0 {
		t.Fatal("periodic compaction never fired")
	}
	if err := e.CompactNow(); err != nil {
		t.Fatal(err)
	}

	p.fail.Store(true)
	for e.CompactErr() == nil && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := e.CompactErr(); !errors.Is(err, errCompactBoom) {
		t.Fatalf("CompactErr = %v, want the compaction failure", err)
	}
	// A compaction failure is NOT a durability event: Sync stays clean.
	if err := e.Sync(); err != nil {
		t.Fatalf("Sync poisoned by a compaction failure: %v", err)
	}
	// It self-heals once a pass succeeds again...
	p.fail.Store(false)
	for e.CompactErr() != nil && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := e.CompactErr(); err != nil {
		t.Fatalf("CompactErr did not clear after a successful pass: %v", err)
	}
	// ...and a still-standing one is reported by Close.
	p.fail.Store(true)
	for e.CompactErr() == nil && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := e.Close(); !errors.Is(err, errCompactBoom) {
		t.Fatalf("Close = %v, want standing compaction failure", err)
	}

	// Validation of the new field.
	if _, err := New(Config{Compressor: "fbqs", Tolerance: 10, CompactInterval: -time.Second}); err == nil {
		t.Fatal("negative CompactInterval accepted")
	}
}

// TestEngineDurableCompaction is the end-to-end periodic path: a real
// segment log with a compaction policy, chunked sessions, and the
// engine's own hook shrinking it.
func TestEngineDurableCompaction(t *testing.T) {
	dir := t.TempDir()
	lg, err := segmentlog.Open(dir, segmentlog.Options{
		MaxSegmentBytes: 256,
		Compaction:      &segmentlog.CompactionPolicy{MergeChunks: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{
		Compressor:   "fbqs",
		Tolerance:    5,
		Shards:       1,
		Persister:    lg,
		MaxTrailKeys: 8, // force chunked records
	})
	if err != nil {
		t.Fatal(err)
	}
	track := deviceTrack(21, 3000)
	for _, p := range track {
		if err := e.IngestOne("long", p); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Sync(); err != nil {
		t.Fatal(err)
	}
	before := lg.Stats()
	if before.Segments < 2 {
		t.Fatalf("no sealed segments to compact: %+v", before)
	}
	if err := e.CompactNow(); err != nil {
		t.Fatal(err)
	}
	after := lg.Stats()
	if after.Records >= before.Records || after.Bytes >= before.Bytes {
		t.Fatalf("compaction did not shrink the log: %+v → %+v", before, after)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// The merged log still reproduces the reference compression.
	lg2, err := segmentlog.Open(dir, segmentlog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer lg2.Close()
	recs, err := lg2.Query("long", 0, ^uint32(0))
	if err != nil {
		t.Fatal(err)
	}
	want := expectGeo(t, "fbqs", 5, track)
	var got []trajstore.GeoKey
	for i, r := range recs {
		keys := r.Keys
		if i > 0 && len(got) > 0 && len(keys) > 0 && keys[0] == got[len(got)-1] {
			keys = keys[1:]
		}
		got = append(got, keys...)
	}
	if len(got) != len(want) {
		t.Fatalf("stitched %d keys after compaction, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("key %d diverged after compaction: %+v != %+v", i, got[i], want[i])
		}
	}
}
