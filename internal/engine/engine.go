// Package engine is the server-side ingestion layer: a sharded,
// goroutine-safe engine that manages many thousands of concurrent device
// sessions, each owning a streaming compressor from the stream registry
// and feeding its key points into a per-shard historical trajectory
// store.
//
// Fixes are batched into Ingest and routed to a shard worker by an
// FNV-1a hash of the device ID, so each device's stream is processed by
// exactly one goroutine in arrival order — per-device output is
// byte-identical to running the same compressor single-threaded, while
// distinct devices scale across shards without locks on the hot path.
// Sessions are created on first fix, evicted (with a final Flush) after
// an idle timeout, and their compressor state is recycled through a
// sync.Pool.
package engine

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/trajcomp/bqs/internal/cache"
	"github.com/trajcomp/bqs/internal/core"
	"github.com/trajcomp/bqs/internal/stream"
	"github.com/trajcomp/bqs/internal/trajstore"
)

// Fix is one device observation: a point of the device's trajectory
// stream in the projected metric plane.
type Fix struct {
	Device string
	Point  core.Point
}

// Config parameterizes an Engine.
type Config struct {
	// Compressor names the registered compressor each session runs
	// (see stream.Names). Default "fbqs" — the O(1)-per-point variant.
	Compressor string
	// Tolerance is the deviation bound in metres handed to every
	// session's compressor. Required.
	Tolerance float64
	// Shards is the number of worker goroutines (and trajectory-store
	// shards). Default GOMAXPROCS.
	Shards int
	// QueueDepth is the per-shard ingest queue depth in batches;
	// senders block when a shard falls this far behind (backpressure).
	// Default 256.
	QueueDepth int
	// IdleTimeout evicts a session — flushing its compressor — after
	// this long without a fix. 0 disables idle eviction: sessions then
	// live until Close.
	IdleTimeout time.Duration
	// Store configures the per-shard trajectory stores that receive
	// every session's compressed segments.
	Store trajstore.Config
	// OnKey, when non-nil, receives every finalized key point in
	// per-device order. It is called from shard worker goroutines —
	// distinct devices may call it concurrently.
	OnKey func(device string, kp core.Point)
	// Persister, when non-nil, durably records every finalized session
	// trajectory (on idle eviction and on Close) in the delta-varint
	// wire format. The engine takes ownership: Sync doubles as the
	// durability barrier and Close closes the persister. See
	// trajstore.Persister and trajstore/segmentlog.
	Persister trajstore.Persister
	// MetersPerDegree converts the projected metric plane to the wire
	// format's degrees when persisting (GeoKeys quantize at 1e-7°, so
	// the default 1e5 m/° stores positions at 1 cm resolution with a
	// ±9000 km range).
	MetersPerDegree float64
	// CompactInterval, when > 0 and the Persister implements
	// trajstore.Compacter (segmentlog.Log does, when opened with a
	// compaction policy), runs a background compaction pass on the
	// persister this often. A failed pass leaves the published data
	// intact, so it does not poison the Sync durability barrier; it is
	// reported by CompactErr (self-healing on the next successful pass)
	// and by Close if still standing. Zero disables periodic
	// compaction; CompactNow remains available.
	CompactInterval time.Duration
	// PersistRetry bounds the retry loop applied to persister append
	// failures that trajstore.TransientErr classifies as transient (I/O
	// hiccups, timeouts, interrupted syscalls). Terminal failures — a
	// full disk, corruption, anything unrecognized — and exhausted
	// retries instead flip the engine into degraded mode (ErrDegraded).
	// The zero value selects the defaults documented on RetryPolicy.
	PersistRetry RetryPolicy
	// MaxTrailKeys bounds the per-session key-point trail kept for
	// persistence: a session that accumulates this many key points is
	// chunked — the trail is persisted as a record and restarted from
	// its last key point, so long-lived sessions (IdleTimeout 0) use
	// bounded memory and no record approaches the log's record-size
	// cap. Consecutive chunks share one overlapping key point so the
	// polyline stays reconstructable. Default 8192.
	MaxTrailKeys int
	// Clock substitutes the idle-eviction time source; nil means
	// time.Now. Tests use it to drive eviction deterministically.
	Clock func() time.Time
}

// RetryPolicy bounds the transient-persist-failure retry loop: up to
// Max retries per append, sleeping an exponentially growing, jittered
// delay that starts near BaseDelay and is capped at MaxDelay. Zero
// fields take the defaults (4 retries, 10ms base, 500ms cap); Max < 0
// disables retrying entirely — the first failure of any kind degrades
// the engine.
type RetryPolicy struct {
	Max       int
	BaseDelay time.Duration
	MaxDelay  time.Duration
}

// ErrClosed reports an operation on a closed engine.
var ErrClosed = errors.New("engine: closed")

// ErrDegraded reports that the engine is in degraded read-only mode: a
// terminal persister failure (or one that outlived the PersistRetry
// budget) means new fixes cannot be made durable, so Ingest/TryIngest
// reject them while queries keep answering from the data already
// stored. Errors carrying it (match with errors.Is) wrap the root
// cause. Heal re-arms ingestion once the fault is cleared; trajectory
// trails that finalized while degraded are parked in memory and
// re-appended then, so nothing accepted before the fault is lost.
var ErrDegraded = errors.New("engine: degraded: persistence failing, ingest suspended (queries still served; call Heal after clearing the fault)")

// ErrBackpressure reports that TryIngest found a shard queue full: the
// engine is processing slower than fixes arrive (typically a persister
// stalled on disk). Callers should back off and retry rather than
// buffer unboundedly — the server layer turns this into a reject frame
// with a retry-after hint.
var ErrBackpressure = errors.New("engine: shard queue full (backpressure)")

// Stats is a point-in-time snapshot of engine activity, merged across
// shards. It is safe to read after Close: every field comes from
// atomics, the in-memory stores, or — for the persister-backed fields
// (Cache, CompactReclaimed) — degrades to zero once the persister is
// detached.
type Stats struct {
	ActiveSessions  int             // sessions currently open
	SessionsOpened  uint64          // sessions ever created
	SessionsEvicted uint64          // sessions closed by idle eviction
	Fixes           uint64          // fixes accepted by Ingest
	KeyPoints       uint64          // key points emitted by all sessions
	Persisted       uint64          // finalized trajectories handed to the persister
	ParkedTrails    uint64          // trajectories parked in memory by degraded mode, awaiting Heal
	Rejected        uint64          // fixes refused by TryIngest backpressure or degraded mode
	PersistFailures uint64          // failed persister append/sync attempts (retried ones included)
	CompactFailures uint64          // failed compaction passes (periodic or CompactNow)
	CompactReclaim  int64           // net disk bytes freed by published compactions
	Cache           cache.Stats     // read-side record cache counters (zero without a cache)
	Store           trajstore.Stats // merged per-shard store statistics
}

// CompressionRate returns KeyPoints/Fixes (lower is better), 0 when no
// fixes were ingested.
func (s Stats) CompressionRate() float64 {
	if s.Fixes == 0 {
		return 0
	}
	return float64(s.KeyPoints) / float64(s.Fixes)
}

// Engine is the sharded ingestion engine. All exported methods are safe
// for concurrent use.
type Engine struct {
	cfg    Config
	clock  func() time.Time
	shards []*shard
	stores *trajstore.Sharded
	pool   sync.Pool // recycled stream.Compressor values (all Resetters)

	// Ingest staging: per-shard fix slices and the scatter table that
	// distributes a caller batch over them are pooled, so the steady-state
	// ingest path performs no allocation — shard workers return each batch
	// to batchPool once it has been drained.
	batchPool   sync.Pool // *fixBatch
	scatterPool sync.Pool // *scatter, byShard sized to len(shards)

	mu     sync.RWMutex // guards closed against Ingest/Sync racing Close
	closed bool
	wg     sync.WaitGroup

	// closing is closed when Close begins; senders parked on a full
	// shard queue select on it so a stalled shard (wedged persister,
	// full disk) cannot wedge shutdown. ingestWG counts in-flight
	// senders — registered under mu like compactWG — so Close can wait
	// for them to retire before closing the shard channels.
	closing  chan struct{}
	ingestWG sync.WaitGroup

	// stopCompact ends the periodic compaction goroutine (nil when
	// CompactInterval is 0); the goroutine is counted in wg. compactWG
	// tracks every external caller still inside a persister operation —
	// CompactNow, Heal's probe, QueryWindow's durable read — registered
	// under mu's read lock before the closed check releases it, so
	// Close (which waits on it before ClosePersist) can never detach
	// the persister out from under an admitted call.
	stopCompact chan struct{}
	compactWG   sync.WaitGroup

	// persistErr latches the first asynchronous persister failure (shard
	// workers append during eviction); Sync and Close surface it.
	persistErr atomic.Pointer[error]
	// degraded latches the composed ErrDegraded (wrapping the root
	// cause) once a persist failure proves terminal or exhausts the
	// retry budget. While set, Ingest/TryIngest reject new fixes and
	// shard workers park finalized trails instead of appending them.
	// Heal clears it after a successful persister probe.
	degraded atomic.Pointer[error]
	// retry is cfg.PersistRetry with defaults resolved by New.
	retry RetryPolicy
	// compactErr holds the most recent background-compaction failure.
	// Unlike persistErr it does NOT poison Sync — a failed compaction
	// pass leaves the published generation (and every durable record)
	// intact, so it is no durability event. It self-heals: a later
	// successful pass clears it. Close reports a still-standing one.
	compactErr atomic.Pointer[error]
	persisting bool    // cfg.Persister != nil, cached for the hot path
	mPerDegree float64 // metres per degree for GeoKey conversion

	// Failure/reject tallies for Stats. Engine-global atomics, not
	// per-shard stripes: every increment is on a slow path (a refused
	// batch, a failed append attempt, a failed compaction pass).
	rejected     atomic.Uint64
	persistFails atomic.Uint64
	compactFails atomic.Uint64
}

// session is the per-device state, owned by exactly one shard worker.
type session struct {
	comp     stream.Compressor
	lastKey  core.Point // previous key point: segment start for the store
	haveKey  bool
	lastSeen time.Time
	keys     []core.Point // key-point trail, kept only when persisting; capped at MaxTrailKeys
	chunked  bool         // the trail starts with the previous chunk's last key
}

// shard is one worker: a queue, a session table and a trajectory store.
// The activity counters live here, not on the Engine: every counter is
// written by exactly one worker goroutine, so striping them per shard
// keeps the multi-core hot path free of shared-cache-line contention
// (profiling at GOMAXPROCS>1 showed the global keys/fixes atomics
// bouncing between cores on every key point). Stats sums them.
type shard struct {
	eng      *Engine
	in       chan shardMsg
	store    *trajstore.Store
	sessions map[string]*session

	// parked holds finalized trajectories whose persister append failed
	// terminally (degraded mode), in append order. They are retained so
	// acked data survives the outage and re-appended by drainParked when
	// Heal succeeds; order matters because a device's chunked records
	// must land in trail order. Owned by this worker goroutine; parkedN
	// mirrors len(parked) for the Stats reader.
	parked  []parkedTrail
	parkedN atomic.Uint64

	// persist, when non-nil, is this shard's private slice of a sharded
	// persister (trajstore.ShardedPersister with a shard count matching
	// the engine's): both route devices through trajstore.ShardIndex, so
	// this worker is the only goroutine appending to it — the write
	// skips the shared persistHolder lock and the second routing hash.
	persist trajstore.Persister

	active    atomic.Int64
	opened    atomic.Uint64
	evicted   atomic.Uint64
	fixes     atomic.Uint64
	keys      atomic.Uint64
	persisted atomic.Uint64
}

// shardMsg is a unit of work for a shard worker. Exactly one of the
// fields drives an action; barrier (when non-nil) is closed once the
// message — and everything queued before it — has been processed. batch,
// when non-nil, is the pooled buffer backing fixes; the worker returns it
// to the engine's batch pool after draining.
type shardMsg struct {
	fixes    []Fix
	batch    *fixBatch
	evict    bool
	flushAll bool
	drain    bool // re-append parked trails (Heal)
	barrier  chan struct{}
}

// parkedTrail is one finalized trajectory held in memory while the
// engine is degraded, awaiting re-append after Heal.
type parkedTrail struct {
	device string
	keys   []trajstore.GeoKey
}

// fixBatch is a pooled per-shard staging buffer for Ingest.
type fixBatch struct {
	fixes []Fix
}

// scatter is a pooled table distributing one caller batch over the shards.
type scatter struct {
	byShard []*fixBatch
}

// getBatch returns a pooled (or fresh) staging buffer, emptied.
func (e *Engine) getBatch() *fixBatch {
	if v := e.batchPool.Get(); v != nil {
		b := v.(*fixBatch)
		b.fixes = b.fixes[:0]
		return b
	}
	return &fixBatch{}
}

// getScatter returns a pooled (or fresh) scatter table with all-nil slots.
func (e *Engine) getScatter() *scatter {
	if v := e.scatterPool.Get(); v != nil {
		return v.(*scatter)
	}
	return &scatter{byShard: make([]*fixBatch, len(e.shards))}
}

// New returns a started engine; callers must Close it to flush sessions
// and release the workers. The configuration is validated eagerly: the
// named compressor is constructed once up front, so a bad name or
// tolerance fails here rather than on the first fix.
func New(cfg Config) (*Engine, error) {
	if cfg.Compressor == "" {
		cfg.Compressor = "fbqs"
	}
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.IdleTimeout < 0 {
		return nil, errors.New("engine: IdleTimeout must be ≥ 0")
	}
	if cfg.CompactInterval < 0 {
		return nil, errors.New("engine: CompactInterval must be ≥ 0")
	}
	probe, err := stream.New(cfg.Compressor, cfg.Tolerance)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	stores, err := trajstore.NewSharded(cfg.Shards, cfg.Store)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	if cfg.MetersPerDegree == 0 {
		cfg.MetersPerDegree = 1e5
	}
	if !(cfg.MetersPerDegree > 0) || math.IsInf(cfg.MetersPerDegree, 0) { // also rejects NaN
		return nil, errors.New("engine: MetersPerDegree must be a finite positive number")
	}
	if cfg.MaxTrailKeys < 0 {
		return nil, errors.New("engine: MaxTrailKeys must be ≥ 0")
	}
	if cfg.MaxTrailKeys == 0 {
		cfg.MaxTrailKeys = 8192
	}
	retry := cfg.PersistRetry
	if retry.Max == 0 {
		retry.Max = 4
	}
	if retry.Max < 0 {
		retry.Max = 0 // explicit opt-out: no transient retries
	}
	if retry.BaseDelay <= 0 {
		retry.BaseDelay = 10 * time.Millisecond
	}
	if retry.MaxDelay <= 0 {
		retry.MaxDelay = 500 * time.Millisecond
	}
	if retry.MaxDelay < retry.BaseDelay {
		retry.MaxDelay = retry.BaseDelay
	}
	e := &Engine{
		cfg: cfg, clock: cfg.Clock, stores: stores,
		persisting: cfg.Persister != nil, mPerDegree: cfg.MetersPerDegree,
		closing: make(chan struct{}), retry: retry,
	}
	stores.SetPersister(cfg.Persister)
	if e.clock == nil {
		e.clock = time.Now
	}
	if _, ok := probe.(stream.Resetter); ok {
		e.pool.Put(probe) // the probe seeds the pool instead of being wasted
	}
	// When the persister is itself sharded by the same routing function
	// and count, bind each worker to its own slice of it.
	sp, spOK := cfg.Persister.(trajstore.ShardedPersister)
	spOK = spOK && sp.NumShards() == cfg.Shards
	e.shards = make([]*shard, cfg.Shards)
	for i := range e.shards {
		sh := &shard{
			eng:      e,
			in:       make(chan shardMsg, cfg.QueueDepth),
			store:    stores.Shard(i),
			sessions: make(map[string]*session),
		}
		if spOK {
			sh.persist = sp.ShardPersister(i)
		}
		e.shards[i] = sh
		e.wg.Add(1)
		go sh.run()
	}
	if cfg.CompactInterval > 0 && e.persisting {
		e.stopCompact = make(chan struct{})
		e.wg.Add(1)
		go e.compactLoop(cfg.CompactInterval)
	}
	return e, nil
}

// compactLoop periodically compacts the persister until Close. A failed
// pass is latched like an asynchronous persist failure — the log's
// published generation is unaffected, so the engine keeps running.
func (e *Engine) compactLoop(every time.Duration) {
	defer e.wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := e.stores.CompactPersist(); err != nil {
				e.compactFails.Add(1)
				e.compactErr.Store(&err)
			} else {
				e.compactErr.Store(nil)
			}
		case <-e.stopCompact:
			return
		}
	}
}

// CompactErr returns the most recent background-compaction failure, nil
// after a subsequent successful pass. Compaction failures do not affect
// durability (the published generation is untouched), so they are
// reported here and from Close rather than poisoning the Sync barrier.
func (e *Engine) CompactErr() error {
	if p := e.compactErr.Load(); p != nil {
		return fmt.Errorf("engine: compact: %w", *p)
	}
	return nil
}

// CompactNow runs one synchronous compaction pass on the persister; a
// no-op when there is no persister or it cannot compact. The engine
// lock is NOT held across the pass — a compaction can take minutes and
// holding even the read lock would let a pending Close writer stall
// every Ingest/Sync behind it. In-flight passes are tracked in
// compactWG (registered under the same lock as the closed check) so
// Close can wait for them before closing the persister.
func (e *Engine) CompactNow() error {
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return ErrClosed
	}
	e.compactWG.Add(1)
	e.mu.RUnlock()
	defer e.compactWG.Done()
	err := e.stores.CompactPersist()
	if err != nil {
		e.compactFails.Add(1)
	}
	return err
}

// shardIndex routes a device ID to a shard. The hash lives in
// trajstore.ShardIndex so the sharded segment log routes identically —
// the alignment the per-shard persister fast path depends on.
func (e *Engine) shardIndex(device string) int {
	return trajstore.ShardIndex(device, len(e.shards))
}

// beginSend registers the caller as an in-flight queue sender. The
// closed check and the ingestWG registration happen under the same lock
// Close writes closed under, so Close's ingestWG.Wait() observes every
// sender admitted before it; the lock is NOT held while the caller then
// parks on a shard queue.
func (e *Engine) beginSend() error {
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return ErrClosed
	}
	e.ingestWG.Add(1)
	e.mu.RUnlock()
	return nil
}

// send enqueues msg on the shard, parking WITHOUT any engine lock when
// the queue is full. A send in flight when Close begins aborts with
// ErrClosed (recycling the batch) instead of wedging shutdown behind a
// stalled shard. The non-blocking fast path keeps the common case a
// single channel operation.
func (e *Engine) send(sh *shard, msg shardMsg) error {
	select {
	case sh.in <- msg:
		return nil
	default:
	}
	select {
	case sh.in <- msg:
		return nil
	case <-e.closing:
		if msg.batch != nil {
			e.batchPool.Put(msg.batch)
		}
		return ErrClosed
	}
}

// scatterFixes distributes a caller batch over per-shard staging buffers.
// The returned scatter table must go back to scatterPool with all slots
// nil.
func (e *Engine) scatterFixes(fixes []Fix) *scatter {
	sc := e.getScatter()
	for _, f := range fixes {
		i := e.shardIndex(f.Device)
		b := sc.byShard[i]
		if b == nil {
			b = e.getBatch()
			sc.byShard[i] = b
		}
		b.fixes = append(b.fixes, f)
	}
	return sc
}

// Ingest routes a batch of fixes to their shards. Fixes for the same
// device are processed in slice order; the engine does not retain the
// slice. It blocks when a target shard's queue is full — without
// holding the engine lock, so a blocked Ingest never delays Close — and
// returns ErrClosed after (or during) Close. Fixes already handed to a
// shard before an ErrClosed abort are still processed by the shutdown
// flush. While the engine is degraded the batch is rejected whole with
// an error matching ErrDegraded (new fixes could not be made durable).
// TryIngest is the non-blocking variant.
func (e *Engine) Ingest(fixes []Fix) error {
	if len(fixes) == 0 {
		return nil
	}
	if err := e.beginSend(); err != nil {
		return err
	}
	defer e.ingestWG.Done()
	if derr := e.degradedErr(); derr != nil {
		e.rejected.Add(uint64(len(fixes)))
		return derr
	}
	if len(e.shards) == 1 {
		b := e.getBatch()
		b.fixes = append(b.fixes, fixes...)
		return e.send(e.shards[0], shardMsg{fixes: b.fixes, batch: b})
	}
	sc := e.scatterFixes(fixes)
	var err error
	for i, b := range sc.byShard {
		if b == nil {
			continue
		}
		sc.byShard[i] = nil
		if err != nil { // aborted mid-scatter: recycle the rest unsent
			e.batchPool.Put(b)
			continue
		}
		err = e.send(e.shards[i], shardMsg{fixes: b.fixes, batch: b})
	}
	e.scatterPool.Put(sc)
	return err
}

// TryIngest is the non-blocking Ingest: fixes whose shard queue has
// room are enqueued, fixes bound for a full shard are dropped as a unit
// (per-shard granularity — a batch routed entirely to one shard is
// accepted or rejected whole). It returns how many fixes were accepted
// and ErrBackpressure when any were not; callers own retrying the
// remainder after a backoff. A degraded engine (terminal persister
// failure — see ErrDegraded) rejects the whole batch with an error
// matching ErrDegraded, and a standing asynchronous persister failure
// is returned in place of ErrBackpressure — before the Sync durability
// barrier would surface it — so a caller streaming fixes learns the
// backend is sick on the next call, not at the next checkpoint; calling
// TryIngest(nil) is a cheap health probe. The server layer builds its
// reject-with-retry-after frames on this.
func (e *Engine) TryIngest(fixes []Fix) (accepted int, err error) {
	if err := e.beginSend(); err != nil {
		return 0, err
	}
	defer e.ingestWG.Done()
	if derr := e.degradedErr(); derr != nil {
		e.rejected.Add(uint64(len(fixes)))
		return 0, derr
	}
	full := false
	trySend := func(i int, b *fixBatch) {
		select {
		case e.shards[i].in <- shardMsg{fixes: b.fixes, batch: b}:
			accepted += len(b.fixes)
		default:
			full = true
			e.rejected.Add(uint64(len(b.fixes)))
			e.batchPool.Put(b)
		}
	}
	switch {
	case len(fixes) == 0:
	case len(e.shards) == 1:
		b := e.getBatch()
		b.fixes = append(b.fixes, fixes...)
		trySend(0, b)
	default:
		sc := e.scatterFixes(fixes)
		for i, b := range sc.byShard {
			if b != nil {
				sc.byShard[i] = nil
				trySend(i, b)
			}
		}
		e.scatterPool.Put(sc)
	}
	if perr := e.loadPersistErr(); perr != nil {
		return accepted, perr
	}
	if full {
		return accepted, ErrBackpressure
	}
	return accepted, nil
}

// IngestOne routes a single fix; a convenience wrapper over Ingest.
func (e *Engine) IngestOne(device string, p core.Point) error {
	return e.Ingest([]Fix{{Device: device, Point: p}})
}

// barrier sends msg to every shard with a fresh barrier channel and
// waits until all shards have drained up to it. Like Ingest, the engine
// lock is not held across the queue sends, and both the sends and the
// waits abort with ErrClosed when Close begins — barriers already
// enqueued are still honoured by the workers' shutdown drain, so
// abandoning the wait leaks nothing.
func (e *Engine) barrier(msg shardMsg) error {
	if err := e.beginSend(); err != nil {
		return err
	}
	defer e.ingestWG.Done()
	waits := make([]chan struct{}, 0, len(e.shards))
	var err error
	for _, sh := range e.shards {
		m := msg
		m.barrier = make(chan struct{})
		if err = e.send(sh, m); err != nil {
			break
		}
		waits = append(waits, m.barrier)
	}
	for _, w := range waits {
		select {
		case <-w:
		case <-e.closing:
			return ErrClosed
		}
	}
	return err
}

// Sync blocks until every fix ingested before the call has been fully
// processed (compressed and stored). With a Persister configured it is
// also the durability barrier: every trajectory finalized before the
// call is on disk when Sync returns. A degraded engine reports the
// cause: the returned error matches ErrDegraded and wraps the persist
// failure that triggered it. Useful before reading Stats or the stores
// in tests and benchmarks.
func (e *Engine) Sync() error {
	if err := e.barrier(shardMsg{}); err != nil {
		return err
	}
	syncErr := e.stores.SyncPersist()
	if syncErr != nil {
		e.persistFails.Add(1)
		syncErr = fmt.Errorf("engine: persister sync: %w", syncErr)
		// A terminal failure at the durability barrier means acked
		// fixes cannot be made durable: latch degraded so clients stop
		// streaming into a backend that can only lose their data. A
		// transient hiccup just reports — the log's own salvage already
		// absorbed anything it could, and the next barrier retries.
		if !trajstore.TransientErr(syncErr) {
			e.enterDegraded(syncErr)
		}
	}
	if derr := e.degradedErr(); derr != nil {
		return errors.Join(derr, syncErr)
	}
	if syncErr != nil {
		return syncErr
	}
	return e.loadPersistErr()
}

// setPersistErr latches the first asynchronous persister failure.
func (e *Engine) setPersistErr(err error) {
	e.persistErr.CompareAndSwap(nil, &err)
}

// loadPersistErr returns the latched persister failure, if any.
func (e *Engine) loadPersistErr() error {
	if p := e.persistErr.Load(); p != nil {
		return fmt.Errorf("engine: persist: %w", *p)
	}
	return nil
}

// enterDegraded latches degraded mode with its root cause. The persist
// error latch is set too, so Sync/Close report the cause even after a
// later Heal clears only the degraded state.
func (e *Engine) enterDegraded(cause error) {
	e.setPersistErr(cause)
	derr := fmt.Errorf("%w: %w", ErrDegraded, cause)
	e.degraded.CompareAndSwap(nil, &derr)
}

// degradedErr returns the latched degraded error (matching ErrDegraded
// and wrapping the root cause), nil when the engine is healthy.
func (e *Engine) degradedErr() error {
	if p := e.degraded.Load(); p != nil {
		return *p
	}
	return nil
}

// Degraded reports whether the engine is in degraded read-only mode.
func (e *Engine) Degraded() bool { return e.degraded.Load() != nil }

// Heal attempts to bring a degraded engine back to full service once
// the underlying fault is believed cleared (space freed, device back).
// It probes the persister with a durability barrier — a poisoned
// segment log salvages itself into a fresh file here — and, only if the
// probe succeeds, clears the degraded and persist-error latches and
// re-appends the trails parked while degraded, preserving per-device
// order. A probe failure leaves the engine degraded and reports why; a
// failure while re-appending parked trails re-enters degraded mode with
// the new cause. Heal is safe to call on a healthy engine (a cheap
// no-op) and concurrently with ingest and queries.
func (e *Engine) Heal() error {
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return ErrClosed
	}
	e.compactWG.Add(1) // holds ClosePersist off the probe, like CompactNow
	e.mu.RUnlock()
	probeErr := e.stores.SyncPersist()
	e.compactWG.Done()
	if probeErr != nil {
		return fmt.Errorf("engine: heal: persister still failing: %w", probeErr)
	}
	if e.degraded.Load() == nil && e.persistErr.Load() == nil {
		return nil
	}
	e.persistErr.Store(nil)
	e.degraded.Store(nil)
	if err := e.barrier(shardMsg{drain: true}); err != nil {
		return err
	}
	return e.degradedErr()
}

// EvictIdle forces an idle-eviction sweep on every shard now, regardless
// of the automatic eviction ticker, and waits for it to complete.
// Sessions idle for at least IdleTimeout are flushed and closed; with
// IdleTimeout 0 the sweep is a no-op.
func (e *Engine) EvictIdle() error { return e.barrier(shardMsg{evict: true}) }

// FlushSessions finalizes every open session now — emitting each
// compressor's pending tail key points and, with a Persister
// configured, handing the finalized trails to it — without closing the
// engine. The next fix for a flushed device opens a fresh session (its
// compression restarts). Combined with Sync this makes everything
// ingested before the call durable and queryable from the log; the
// server's drain and its flush-and-sync frame are built on it.
func (e *Engine) FlushSessions() error { return e.barrier(shardMsg{flushAll: true}) }

// Err reports the engine's standing asynchronous failures without a
// barrier: the first latched persister error (also surfaced by
// Sync/Close and TryIngest) joined with any standing background-
// compaction failure. nil means healthy.
func (e *Engine) Err() error {
	return errors.Join(e.loadPersistErr(), e.CompactErr())
}

// QueueStats is a point-in-time snapshot of the per-shard ingest queue
// occupancy, in batches. A shard pinned at Cap is applying
// backpressure: Ingest would block and TryIngest rejects.
type QueueStats struct {
	Cap int   // per-shard queue capacity (Config.QueueDepth)
	Len []int // queued batches per shard
}

// Fullness returns the worst shard's occupancy fraction in [0, 1] —
// the server scales its retry-after hint by it.
func (q QueueStats) Fullness() float64 {
	if q.Cap == 0 {
		return 0
	}
	m := 0
	for _, n := range q.Len {
		if n > m {
			m = n
		}
	}
	return float64(m) / float64(q.Cap)
}

// QueueStats samples the ingest queue depths. Like Stats, the snapshot
// is advisory — depths move concurrently.
func (e *Engine) QueueStats() QueueStats {
	qs := QueueStats{Cap: e.cfg.QueueDepth, Len: make([]int, len(e.shards))}
	for i, sh := range e.shards {
		qs.Len[i] = len(sh.in)
	}
	return qs
}

// Stats returns a merged snapshot of engine activity. Counters are read
// atomically but not mutually consistent; call Sync first for a quiescent
// reading. Unlike the mutating entry points, Stats deliberately skips
// the closed check: every source it reads is safe after Close (shard
// atomics, the in-memory stores, and the persistHolder, which answers
// "not attached" once ClosePersist has detached the persister), so a
// monitoring scrape racing shutdown gets a coherent final snapshot
// instead of an error.
func (e *Engine) Stats() Stats {
	s := Stats{Store: e.stores.MergedStats()}
	for _, sh := range e.shards {
		s.ActiveSessions += int(sh.active.Load())
		s.SessionsOpened += sh.opened.Load()
		s.SessionsEvicted += sh.evicted.Load()
		s.Fixes += sh.fixes.Load()
		s.KeyPoints += sh.keys.Load()
		s.Persisted += sh.persisted.Load()
		s.ParkedTrails += sh.parkedN.Load()
	}
	s.Rejected = e.rejected.Load()
	s.PersistFailures = e.persistFails.Load()
	s.CompactFailures = e.compactFails.Load()
	s.CompactReclaim = e.stores.ReclaimedPersist()
	if cs, ok := e.stores.CacheStatsPersist(); ok {
		s.Cache = cs
	}
	return s
}

// Stores exposes the per-shard trajectory stores for querying.
func (e *Engine) Stores() *trajstore.Sharded { return e.stores }

// Close flushes every open session (emitting final key points and
// persisting the finalized trajectories when a Persister is configured),
// stops the workers, waits for them, and closes the persister. Further
// Ingest/Sync calls return ErrClosed; Close is idempotent.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	close(e.closing) // aborts senders parked on full shard queues
	if e.stopCompact != nil {
		close(e.stopCompact)
	}
	e.mu.Unlock()
	// Every sender registered before closed was set is in ingestWG and
	// either completes its sends or aborts on closing, so after Wait the
	// shard channels have no writers and closing them is safe.
	e.ingestWG.Wait()
	for _, sh := range e.shards {
		close(sh.in)
	}
	e.wg.Wait()
	e.compactWG.Wait() // external CompactNow callers still in flight
	// Join the persister's close error with any latched asynchronous
	// persist failure: a failed ClosePersist must not mask the (often
	// root-cause) append error latched earlier, and vice versa.
	closeErr := e.stores.ClosePersist()
	if closeErr != nil {
		closeErr = fmt.Errorf("engine: persister close: %w", closeErr)
	}
	return errors.Join(closeErr, e.loadPersistErr(), e.CompactErr())
}

// run is the shard worker loop: single-goroutine ownership of the
// session table makes every per-device operation lock-free.
func (sh *shard) run() {
	defer sh.eng.wg.Done()
	var tick <-chan time.Time
	if d := sh.eng.cfg.IdleTimeout; d > 0 {
		t := time.NewTicker(max(d/2, 10*time.Millisecond))
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case msg, ok := <-sh.in:
			if !ok {
				sh.closeAll()
				return
			}
			if msg.evict {
				sh.evictIdle()
			}
			if msg.drain {
				sh.drainParked()
			}
			if msg.flushAll {
				sh.closeAll()
			}
			if len(msg.fixes) > 0 {
				sh.ingestBatch(msg.fixes)
			}
			if msg.batch != nil {
				sh.eng.batchPool.Put(msg.batch)
			}
			if msg.barrier != nil {
				close(msg.barrier)
			}
		case <-tick:
			sh.evictIdle()
		}
	}
}

// ingestBatch feeds a shard batch into its sessions, creating sessions on
// first contact. The clock is read once per batch — idle eviction only
// needs batch-level granularity — and the session lookup is hoisted
// across runs of consecutive fixes for the same device, so a device
// reporting a burst of fixes costs a single map hit.
func (sh *shard) ingestBatch(fixes []Fix) {
	now := sh.eng.clock()
	sh.fixes.Add(uint64(len(fixes)))
	var (
		device string
		s      *session
	)
	for i := range fixes {
		f := &fixes[i]
		if s == nil || f.Device != device {
			device = f.Device
			s = sh.sessions[device]
			if s == nil {
				s = sh.newSession()
				sh.sessions[device] = s
				sh.active.Add(1)
				sh.opened.Add(1)
			}
		}
		s.lastSeen = now
		if kp, ok := s.comp.Push(f.Point); ok {
			sh.emit(device, s, kp)
		}
	}
}

// newSession builds a session, reusing pooled compressor state when
// available.
func (sh *shard) newSession() *session {
	if v := sh.eng.pool.Get(); v != nil {
		return &session{comp: v.(stream.Compressor)}
	}
	comp, err := stream.New(sh.eng.cfg.Compressor, sh.eng.cfg.Tolerance)
	if err != nil {
		// Unreachable: New validated the (name, tolerance) pair.
		panic(fmt.Sprintf("engine: compressor factory failed after validation: %v", err))
	}
	return &session{comp: comp}
}

// emit records a finalized key point: consecutive key points form a
// compressed segment inserted into the shard's store.
func (sh *shard) emit(device string, s *session, kp core.Point) {
	if s.haveKey {
		sh.store.Insert(s.lastKey, kp)
	}
	s.lastKey = kp
	s.haveKey = true
	if sh.eng.persisting {
		s.keys = append(s.keys, kp)
		if len(s.keys) >= sh.eng.cfg.MaxTrailKeys {
			sh.persistTrail(device, s, false)
		}
	}
	sh.keys.Add(1)
	if sh.eng.cfg.OnKey != nil {
		sh.eng.cfg.OnKey(device, kp)
	}
}

// persistTrail writes the session's accumulated key-point trail to the
// persister. A non-final (chunking) flush restarts the trail from its
// last key point so consecutive records overlap by one key and the
// polyline stays reconstructable; a final flush skips a trail that is
// only that overlap (nothing new to record).
func (sh *shard) persistTrail(device string, s *session, final bool) {
	if len(s.keys) == 0 || (final && s.chunked && len(s.keys) == 1) {
		s.keys, s.chunked = nil, false
		return
	}
	m := sh.eng.mPerDegree
	geo := trajstore.PointKeysToGeo(s.keys, m, m)
	if len(geo) > 0 {
		sh.persistGeo(device, geo)
	}
	if final {
		s.keys, s.chunked = nil, false
		return
	}
	last := s.keys[len(s.keys)-1]
	s.keys = append(s.keys[:0], last)
	s.chunked = true
}

// persistGeo hands one finalized trajectory to the persister. Transient
// failures are retried by appendGeo; a terminal failure (or exhausted
// retries) flips the engine into degraded mode and parks the trajectory
// on the shard, so data the engine already accepted survives the outage
// in memory and is re-appended — in order — when Heal succeeds. While
// anything is parked (or the engine is degraded) new trails join the
// park queue rather than jumping it: a device's chunked records must
// reach the log in trail order.
func (sh *shard) persistGeo(device string, geo []trajstore.GeoKey) {
	if len(sh.parked) > 0 || sh.eng.degraded.Load() != nil {
		sh.park(device, geo)
		return
	}
	if err := sh.appendGeo(device, geo); err != nil {
		sh.eng.enterDegraded(err)
		sh.park(device, geo)
		return
	}
	sh.persisted.Add(1)
}

// park retains a finalized trajectory in memory for re-append after
// Heal. geo is freshly allocated per trail (PointKeysToGeo), so holding
// it aliases nothing.
func (sh *shard) park(device string, geo []trajstore.GeoKey) {
	sh.parked = append(sh.parked, parkedTrail{device: device, keys: geo})
	sh.parkedN.Add(1)
}

// drainParked re-appends the trails parked while degraded, oldest
// first. A failure re-enters degraded mode (keeping the remainder
// parked) so a premature Heal downgrades gracefully.
func (sh *shard) drainParked() {
	for len(sh.parked) > 0 {
		p := sh.parked[0]
		if err := sh.appendGeo(p.device, p.keys); err != nil {
			sh.eng.enterDegraded(err)
			return
		}
		sh.parked[0] = parkedTrail{} // release the drained trail's memory
		sh.parked = sh.parked[1:]
		sh.parkedN.Add(^uint64(0))
		sh.persisted.Add(1)
	}
	sh.parked = nil
}

// appendGeo is one persister append wrapped in the transient-failure
// retry loop: trajstore.TransientErr failures are retried up to
// retry.Max times behind capped exponential backoff with jitter, and
// the sleep aborts when Close begins. Terminal failures return
// immediately. Blocking briefly here is fine — the worker owns its
// queue, so backpressure propagates naturally to senders.
func (sh *shard) appendGeo(device string, geo []trajstore.GeoKey) error {
	e := sh.eng
	for attempt := 0; ; attempt++ {
		var err error
		if sh.persist != nil {
			err = sh.persist.Append(device, geo)
		} else {
			err = e.stores.Persist(device, geo)
		}
		if err != nil {
			e.persistFails.Add(1)
		}
		if err == nil || attempt >= e.retry.Max || !trajstore.TransientErr(err) {
			return err
		}
		select {
		case <-time.After(e.retry.backoff(attempt)):
		case <-e.closing:
			return err
		}
	}
}

// backoff computes the sleep before retry attempt+1: an exponentially
// grown base capped at MaxDelay, with the upper half jittered so
// retries across shard workers decorrelate.
func (r RetryPolicy) backoff(attempt int) time.Duration {
	d := r.BaseDelay
	for i := 0; i < attempt && d < r.MaxDelay; i++ {
		d *= 2
	}
	if d > r.MaxDelay {
		d = r.MaxDelay
	}
	if half := int64(d / 2); half > 0 {
		d = d/2 + time.Duration(rand.Int63n(half+1))
	}
	return d
}

// closeSession flushes the session's compressor, emits the tail key
// points, persists the finalized trajectory when durability is on, and
// recycles resettable compressor state into the pool.
func (sh *shard) closeSession(device string, s *session) {
	for _, kp := range stream.FlushAll(s.comp) {
		sh.emit(device, s, kp)
	}
	if sh.eng.persisting {
		sh.persistTrail(device, s, true)
	}
	if r, ok := s.comp.(stream.Resetter); ok {
		r.Reset()
		sh.eng.pool.Put(s.comp)
	}
	delete(sh.sessions, device)
	sh.active.Add(-1)
}

// evictIdle closes every session idle for at least IdleTimeout.
func (sh *shard) evictIdle() {
	d := sh.eng.cfg.IdleTimeout
	if d <= 0 {
		return
	}
	now := sh.eng.clock()
	for device, s := range sh.sessions {
		if now.Sub(s.lastSeen) >= d {
			sh.closeSession(device, s)
			sh.evicted.Add(1)
		}
	}
}

// closeAll flushes and closes every session (engine shutdown).
func (sh *shard) closeAll() {
	for device, s := range sh.sessions {
		sh.closeSession(device, s)
	}
}
