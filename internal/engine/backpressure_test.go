package engine

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/trajcomp/bqs/internal/core"
	"github.com/trajcomp/bqs/internal/trajstore"
	"github.com/trajcomp/bqs/internal/trajstore/segmentlog"
)

// wedgedPersister simulates a persister stuck in the kernel (full disk,
// hung fsync): Append parks until release is closed, then returns err.
// entered is signalled once per Append so tests can wait until a shard
// worker is provably wedged inside the persist call.
type wedgedPersister struct {
	entered chan struct{}
	release chan struct{}

	mu  sync.Mutex
	err error
}

func newWedgedPersister() *wedgedPersister {
	return &wedgedPersister{
		entered: make(chan struct{}, 64),
		release: make(chan struct{}),
	}
}

func (w *wedgedPersister) Append(string, []trajstore.GeoKey) error {
	select {
	case w.entered <- struct{}{}:
	default:
	}
	<-w.release
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

func (w *wedgedPersister) Sync() error  { return nil }
func (w *wedgedPersister) Close() error { return nil }

// releaseWith unwedges every current and future Append, making them
// return err.
func (w *wedgedPersister) releaseWith(err error) {
	w.mu.Lock()
	w.err = err
	w.mu.Unlock()
	close(w.release)
}

// wedgeTrack is a fix stream whose every point is a key point at the
// given tolerance (large jumps), so a tiny MaxTrailKeys forces the
// shard worker into Append quickly.
func wedgeTrack(n int) []core.Point {
	pts := make([]core.Point, n)
	for i := range pts {
		x := float64(i * 500)
		y := float64((i % 2) * 400)
		pts[i] = core.Point{X: x, Y: y, T: float64(i)}
	}
	return pts
}

// wedgeEngine builds a 1-shard, depth-1 engine on a wedged persister and
// drives it until the worker is parked inside Append and the shard
// queue is full: the exact state in which the old Ingest deadlocked
// Close. It returns the engine and the wedged persister.
func wedgeEngine(t *testing.T, wp *wedgedPersister) *Engine {
	t.Helper()
	e, err := New(Config{
		Compressor:   "fbqs",
		Tolerance:    1,
		Shards:       1,
		QueueDepth:   1,
		Persister:    wp,
		MaxTrailKeys: 2, // persist after every 2 key points
	})
	if err != nil {
		t.Fatal(err)
	}
	track := wedgeTrack(8)
	batch := make([]Fix, len(track))
	for i, p := range track {
		batch[i] = Fix{Device: "wedge", Point: p}
	}
	if err := e.Ingest(batch); err != nil {
		t.Fatal(err)
	}
	select {
	case <-wp.entered: // worker is now parked inside Append
	case <-time.After(5 * time.Second):
		t.Fatal("worker never reached the persister")
	}
	// Fill the queue behind the wedged worker.
	if err := e.Ingest(batch); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestEngineCloseUnderWedgedPersister is the shutdown-liveness
// regression test: with a shard worker stuck inside the persister and
// the shard queue full, a blocked Ingest used to hold e.mu.RLock
// forever, deadlocking Close on e.mu.Lock. Now the blocked Ingest
// aborts with ErrClosed as soon as Close begins — while the persister
// is still wedged — and Close completes once the worker drains,
// returning the latched persist error.
func TestEngineCloseUnderWedgedPersister(t *testing.T) {
	wp := newWedgedPersister()
	e := wedgeEngine(t, wp)

	// Park an Ingest on the full queue, lock-free.
	track := wedgeTrack(8)
	batch := make([]Fix, len(track))
	for i, p := range track {
		batch[i] = Fix{Device: "wedge", Point: p}
	}
	ingestDone := make(chan error, 1)
	go func() { ingestDone <- e.Ingest(batch) }()
	select {
	case err := <-ingestDone:
		t.Fatalf("Ingest returned %v with a full queue; expected it to block", err)
	case <-time.After(100 * time.Millisecond):
	}

	closeDone := make(chan error, 1)
	go func() { closeDone <- e.Close() }()

	// The parked Ingest must abort promptly even though the persister is
	// still wedged — this is where the old code deadlocked.
	select {
	case err := <-ingestDone:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("parked Ingest = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Ingest still parked after Close began: shutdown-liveness regression")
	}
	// New senders are refused immediately too.
	if _, err := e.TryIngest(batch); !errors.Is(err, ErrClosed) {
		t.Fatalf("TryIngest during Close = %v, want ErrClosed", err)
	}

	// Close still owes the worker a drain (durability): it must be
	// waiting, not returning early with unflushed sessions.
	select {
	case err := <-closeDone:
		t.Fatalf("Close returned %v while the persister was still wedged", err)
	case <-time.After(100 * time.Millisecond):
	}

	// Unwedge with a failure: the worker latches it, drains, and Close
	// completes reporting it.
	errWedge := errors.New("disk went away")
	wp.releaseWith(errWedge)
	select {
	case err := <-closeDone:
		if !errors.Is(err, errWedge) {
			t.Fatalf("Close = %v, want the latched persist error", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close never completed after the persister unwedged")
	}
}

// TestEngineSyncAbortsOnClose pins the same liveness property for the
// barrier path: a Sync waiting behind a wedged shard returns ErrClosed
// when Close begins instead of delaying shutdown.
func TestEngineSyncAbortsOnClose(t *testing.T) {
	wp := newWedgedPersister()
	e := wedgeEngine(t, wp)

	syncDone := make(chan error, 1)
	go func() { syncDone <- e.Sync() }()
	select {
	case err := <-syncDone:
		t.Fatalf("Sync returned %v behind a wedged shard; expected it to block", err)
	case <-time.After(100 * time.Millisecond):
	}

	closeDone := make(chan error, 1)
	go func() { closeDone <- e.Close() }()
	select {
	case err := <-syncDone:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("Sync = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Sync still parked after Close began")
	}

	wp.releaseWith(nil)
	select {
	case err := <-closeDone:
		if err != nil {
			t.Fatalf("Close = %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close never completed")
	}
}

// TestTryIngestBackpressure checks the non-blocking path end to end:
// accepted counts are exact, a full shard queue rejects with
// ErrBackpressure instead of blocking, QueueStats reports the
// occupancy, and the queue drains back to accepting once the stall
// clears.
func TestTryIngestBackpressure(t *testing.T) {
	wp := newWedgedPersister()
	e := wedgeEngine(t, wp) // worker wedged, queue full

	track := wedgeTrack(8)
	batch := make([]Fix, len(track))
	for i, p := range track {
		batch[i] = Fix{Device: "wedge", Point: p}
	}

	if qs := e.QueueStats(); qs.Cap != 1 || len(qs.Len) != 1 || qs.Len[0] != 1 {
		t.Fatalf("QueueStats = %+v, want Cap 1, Len [1]", qs)
	} else if qs.Fullness() != 1 {
		t.Fatalf("Fullness = %v, want 1", qs.Fullness())
	}

	start := time.Now()
	n, err := e.TryIngest(batch)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("TryIngest took %v; must not block", elapsed)
	}
	if n != 0 || !errors.Is(err, ErrBackpressure) {
		t.Fatalf("TryIngest on full queue = (%d, %v), want (0, ErrBackpressure)", n, err)
	}

	// Unwedge cleanly: the queue drains and the same batch is accepted.
	wp.releaseWith(nil)
	deadline := time.Now().Add(10 * time.Second)
	for {
		n, err = e.TryIngest(batch)
		if err == nil {
			break
		}
		if !errors.Is(err, ErrBackpressure) || time.Now().After(deadline) {
			t.Fatalf("TryIngest after unwedge = (%d, %v)", n, err)
		}
		time.Sleep(time.Millisecond)
	}
	if n != len(batch) {
		t.Fatalf("accepted %d fixes, want %d", n, len(batch))
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTryIngestSurfacesPersistError is the sick-backend bugfix test: a
// persist failure latched mid-stream used to surface only at the next
// Sync/Close; TryIngest must report it on the very next call so a
// client (or the server acking its frames) learns before the
// durability barrier.
func TestTryIngestSurfacesPersistError(t *testing.T) {
	fp := &failingPersister{} // fails from the first Append
	e, err := New(Config{
		Compressor:   "fbqs",
		Tolerance:    1,
		Shards:       2,
		Persister:    fp,
		MaxTrailKeys: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	track := wedgeTrack(16)
	batch := make([]Fix, len(track))
	for i, p := range track {
		batch[i] = Fix{Device: "sick", Point: p}
	}
	if _, err := e.TryIngest(batch); err != nil {
		t.Fatalf("first TryIngest = %v before any persist could fail", err)
	}
	// The failure latches asynchronously in the shard worker; poll with
	// the empty-batch health probe, never through Sync.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err = e.TryIngest(nil); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("TryIngest never surfaced the latched persist error")
		}
		time.Sleep(time.Millisecond)
	}
	if !errors.Is(err, errPersistBoom) {
		t.Fatalf("TryIngest = %v, want the persist failure", err)
	}
	if err := e.Err(); !errors.Is(err, errPersistBoom) {
		t.Fatalf("Err() = %v, want the persist failure", err)
	}
	// A terminal persist failure degrades the engine: further batches
	// are rejected whole with a distinguishable ErrDegraded that still
	// wraps the root cause.
	if n, err := e.TryIngest(batch); n != 0 || !errors.Is(err, ErrDegraded) || !errors.Is(err, errPersistBoom) {
		t.Fatalf("TryIngest while degraded = (%d, %v), want (0, ErrDegraded wrapping the cause)", n, err)
	}
	if !e.Degraded() {
		t.Fatal("Degraded() = false after a terminal persist failure")
	}
	if err := e.Close(); !errors.Is(err, errPersistBoom) {
		t.Fatalf("Close = %v, want the latched persist error", err)
	}
}

// TestFlushSessions checks the explicit flush barrier: every open
// session is finalized and persisted without closing the engine, and a
// device's next fix starts a fresh session.
func TestFlushSessions(t *testing.T) {
	dir := t.TempDir()
	lg, err := segmentlog.Open(dir, segmentlog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{Compressor: "fbqs", Tolerance: 5, Shards: 2, Persister: lg})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	const devices = 6
	for d := 0; d < devices; d++ {
		track := deviceTrack(int64(d)+1, 80)
		for _, p := range track {
			if err := e.IngestOne(fmt.Sprintf("dev-%d", d), p); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := e.FlushSessions(); err != nil {
		t.Fatal(err)
	}
	if err := e.Sync(); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.ActiveSessions != 0 {
		t.Fatalf("ActiveSessions = %d after FlushSessions, want 0", s.ActiveSessions)
	}
	if s.Persisted != devices {
		t.Fatalf("Persisted = %d, want %d", s.Persisted, devices)
	}
	for d := 0; d < devices; d++ {
		recs, err := lg.Query(fmt.Sprintf("dev-%d", d), 0, ^uint32(0))
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 1 {
			t.Fatalf("dev-%d: %d records after flush, want 1", d, len(recs))
		}
	}
	// The engine stays usable; a flushed device reopens a session.
	if err := e.IngestOne("dev-0", core.Point{X: 1, Y: 1, T: 1}); err != nil {
		t.Fatal(err)
	}
	if err := e.Sync(); err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.SessionsOpened != devices+1 {
		t.Fatalf("SessionsOpened = %d, want %d", s.SessionsOpened, devices+1)
	}
}
