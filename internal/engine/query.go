// Spatio-temporal window queries over the engine's storage: the live
// in-memory shard stores merged with the durable segment log, so one
// call sees both persisted history (which survives restarts) and the
// un-persisted tails of sessions that are still streaming (which only
// the stores hold until eviction or Close flushes them to the log).
package engine

import (
	"errors"
	"fmt"
	"math"

	"github.com/trajcomp/bqs/internal/core"
	"github.com/trajcomp/bqs/internal/trajstore"
)

// ErrPartialResult reports that QueryWindow could answer from the live
// in-memory stores but not from the durable log: the returned segments
// are the live side only, and persisted history (from before a restart,
// or of already-evicted sessions) is missing. Errors carrying it (match
// with errors.Is) wrap the durable side's failure. Callers wanting
// fail-fast semantics treat it as any other error; callers serving
// best-effort dashboards may use the partial slice knowingly.
var ErrPartialResult = errors.New("engine: partial window result (live data only; durable side failed)")

// pairKey identifies one trajectory segment (a consecutive key-point
// pair) at the wire format's resolution — 1e-7° coordinates, whole
// seconds — which is exactly what survives the persist round trip. Live
// and durable copies of the same segment therefore collide, and the
// merge drops the durable duplicate.
type pairKey [6]int64

// quantT clamps a metric-plane timestamp to the wire format's uint32
// seconds, matching trajstore.PointKeysToGeo.
func quantT(t float64) int64 {
	if t < 0 {
		return 0
	}
	if t > math.MaxUint32 {
		return math.MaxUint32
	}
	return int64(uint32(t))
}

// pairKeyOf quantizes a metric-plane segment. m is metres per degree.
func pairKeyOf(a, b core.Point, m float64) pairKey {
	return pairKey{
		int64(math.Round(a.Y / m * 1e7)), int64(math.Round(a.X / m * 1e7)), quantT(a.T),
		int64(math.Round(b.Y / m * 1e7)), int64(math.Round(b.X / m * 1e7)), quantT(b.T),
	}
}

// geoPoint maps a persisted key back into the projected metric plane.
func geoPoint(k trajstore.GeoKey, m float64) core.Point {
	return core.Point{X: k.Lon * m, Y: k.Lat * m, T: float64(k.T)}
}

// pairInWindow is the in-memory ground-truth predicate applied to one
// metric-plane segment: bounding boxes intersect (boundaries inclusive,
// matching geom.Box.Intersects) and the time spans overlap.
func pairInWindow(a, b core.Point, minX, minY, maxX, maxY, t0, t1 float64) bool {
	loX, hiX := a.X, b.X
	if loX > hiX {
		loX, hiX = hiX, loX
	}
	loY, hiY := a.Y, b.Y
	if loY > hiY {
		loY, hiY = hiY, loY
	}
	loT, hiT := a.T, b.T
	if loT > hiT {
		loT, hiT = hiT, loT
	}
	return loX <= maxX && hiX >= minX && loY <= maxY && hiY >= minY && loT <= t1 && hiT >= t0
}

// QueryWindow answers a spatio-temporal window query in the projected
// metric plane: every stored trajectory segment whose bounding box
// intersects [minX, maxX] × [minY, maxY] and whose observation time
// overlaps [t0, t1]. Results merge the live in-memory stores with the
// durable log (when the configured Persister can answer window
// queries): durable records are split into their consecutive key-point
// pairs, filtered exactly, and deduplicated against the live set at
// wire resolution — so a segment both in memory and on disk is
// reported once, persisted history from before a restart is reported
// from disk, and a still-streaming session's tail is reported from
// memory. Durable-only segments come back with ID 0 and Weight 1.
//
// Like Stats, the snapshot is not a barrier: fixes still queued for a
// shard worker are invisible until processed. Call Sync first for a
// quiescent view. Results from live stores that were merged under a
// MergeTolerance, or aged, may not exactly coincide with their durable
// counterparts; such near-duplicates are reported from both sides.
//
// When the durable side fails, the error matches ErrPartialResult
// (wrapping the underlying failure) and the returned slice holds the
// live-side answer only — a documented partial view, not a silent one.
func (e *Engine) QueryWindow(minX, minY, maxX, maxY float64, t0, t1 uint32) ([]trajstore.Segment, error) {
	// Register in compactWG under the same lock the closed check reads,
	// exactly like CompactNow/Heal: Close waits on compactWG before
	// ClosePersist, so an admitted query can never race the persister's
	// teardown and report a spurious partial result against itself.
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return nil, ErrClosed
	}
	e.compactWG.Add(1)
	e.mu.RUnlock()
	defer e.compactWG.Done()

	ft0, ft1 := float64(t0), float64(t1)
	out := e.stores.QueryWindow(minX, minY, maxX, maxY, ft0, ft1)
	m := e.mPerDegree
	durable, ok, err := e.stores.QueryWindowPersist(minX/m, minY/m, maxX/m, maxY/m, t0, t1)
	if err != nil {
		return out, fmt.Errorf("%w: %w", ErrPartialResult, err)
	}
	if !ok {
		return out, nil
	}
	seen := make(map[pairKey]bool, len(out))
	for _, s := range out {
		seen[pairKeyOf(s.A, s.B, m)] = true
	}
	for _, rec := range durable {
		for i := 0; i+1 < len(rec.Keys); i++ {
			a := geoPoint(rec.Keys[i], m)
			b := geoPoint(rec.Keys[i+1], m)
			if !pairInWindow(a, b, minX, minY, maxX, maxY, ft0, ft1) {
				continue
			}
			k := pairKeyOf(a, b, m)
			if seen[k] {
				continue
			}
			seen[k] = true
			out = append(out, trajstore.Segment{A: a, B: b, Weight: 1, FirstT: a.T, LastT: b.T})
		}
	}
	return out, nil
}
