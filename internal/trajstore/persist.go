package trajstore

import (
	"errors"
	"sync"
	"syscall"

	"github.com/trajcomp/bqs/internal/cache"
)

// TransientErr classifies a persist-path failure: true for errors that
// plausibly clear on their own (an I/O hiccup, an interrupted or timed
// out syscall) and are worth retrying with backoff; false for terminal
// conditions — a full disk (ENOSPC/EDQUOT), corruption, or anything
// unrecognized — where retrying the same append can only burn time
// while the engine should be flipping into degraded mode. The
// classifier lives here rather than in the engine so it can be applied
// to any Persister implementation's errors.
func TransientErr(err error) bool {
	for _, t := range []error{syscall.EIO, syscall.ETIMEDOUT, syscall.EINTR, syscall.EAGAIN} {
		if errors.Is(err, t) {
			return true
		}
	}
	return false
}

// Persister is the durability hook of the storage layer: finalized
// (flushed or evicted) session trajectories are handed to it as wire
// GeoKeys, and Sync acts as a durability barrier — every Append that
// returned before Sync must survive a crash once Sync returns. The
// segmentlog package provides the append-only file implementation;
// tests substitute in-memory fakes. Implementations must be safe for
// concurrent use (shard workers append concurrently).
type Persister interface {
	Append(device string, keys []GeoKey) error
	Sync() error
	Close() error
}

// ShardIndex routes a device ID to one of n shards by FNV-1a. It is THE
// routing function of the system: the ingestion engine's shard workers
// and the sharded segment log both use it, so when their shard counts
// agree a device's session worker appends straight into the shard log
// it owns — no cross-shard handoff, no second hash. Callers guarantee
// n ≥ 1.
func ShardIndex(device string, n int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(device); i++ {
		h ^= uint64(device[i])
		h *= prime64
	}
	return int(h % uint64(n))
}

// ShardedPersister is optionally implemented by Persisters that are
// internally sharded by ShardIndex over the device ID (the sharded
// segment log is). ShardPersister(i) exposes shard i's private
// persister; appends routed to it must only carry devices for which
// ShardIndex(device, NumShards()) == i. The engine uses this to bind
// each shard worker directly to its own log shard when the shard
// counts line up.
type ShardedPersister interface {
	Persister
	NumShards() int
	ShardPersister(i int) Persister
}

// Compacter is optionally implemented by Persisters that can rewrite
// their sealed storage smaller (merging, ageing — see
// segmentlog.Compact). CompactNow runs one compaction pass with the
// implementation's configured policy; it must be safe to call
// concurrently with Append/Sync.
type Compacter interface {
	CompactNow() error
}

// PersistedRecord is one durably stored trajectory as read back from a
// Persister's log: the decoded key points plus the indexed time bounds.
// segmentlog.Record is an alias of this type.
type PersistedRecord struct {
	Device string
	T0, T1 uint32   // indexed observation time bounds, seconds
	Keys   []GeoKey // the compressed trajectory's key points
}

// WindowQuerier is optionally implemented by Persisters that can answer
// spatio-temporal window queries over their durable storage
// (segmentlog.Log does, via its block indexes). Coordinates are the
// wire format's degrees — X longitude, Y latitude; QueryWindow returns
// every record with at least one consecutive key-point pair whose
// bounding box intersects [minX, maxX] × [minY, maxY] and whose time
// span overlaps [t0, t1], in log order. It must be safe to call
// concurrently with Append/Sync/CompactNow.
type WindowQuerier interface {
	QueryWindow(minX, minY, maxX, maxY float64, t0, t1 uint32) ([]PersistedRecord, error)
}

// CacheStatser is optionally implemented by Persisters with a
// read-side cache (the segment log's record cache). CacheStats
// snapshots its counters; it must be safe to call concurrently with
// every other operation.
type CacheStatser interface {
	CacheStats() cache.Stats
}

// Reclaimer is optionally implemented by Persisters whose compaction
// reports cumulative reclaimed disk bytes (net: an upgrade pass that
// grows the data subtracts).
type Reclaimer interface {
	ReclaimedBytes() int64
}

// persistHolder is the optional persister attachment shared by Store
// wrappers; Sharded embeds one so the engine can thread durability
// through the existing storage object without new plumbing types.
type persistHolder struct {
	mu sync.RWMutex
	p  Persister
}

// SetPersister attaches (or, with nil, detaches) the durability hook.
func (h *persistHolder) SetPersister(p Persister) {
	h.mu.Lock()
	h.p = p
	h.mu.Unlock()
}

// Persister returns the attached durability hook, nil when none.
func (h *persistHolder) Persister() Persister {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.p
}

// Persist forwards a finalized trajectory to the attached persister; a
// no-op without one or with an empty trajectory.
func (h *persistHolder) Persist(device string, keys []GeoKey) error {
	p := h.Persister()
	if p == nil || len(keys) == 0 {
		return nil
	}
	return p.Append(device, keys)
}

// SyncPersist is the durability barrier: a no-op without a persister.
func (h *persistHolder) SyncPersist() error {
	p := h.Persister()
	if p == nil {
		return nil
	}
	return p.Sync()
}

// CompactPersist runs one compaction pass on the attached persister; a
// no-op when none is attached or it does not implement Compacter.
func (h *persistHolder) CompactPersist() error {
	if c, ok := h.Persister().(Compacter); ok {
		return c.CompactNow()
	}
	return nil
}

// QueryWindowPersist forwards a spatio-temporal window query (degree
// coordinates: X longitude, Y latitude) to the attached persister; ok
// is false when none is attached or it cannot answer window queries.
func (h *persistHolder) QueryWindowPersist(minX, minY, maxX, maxY float64, t0, t1 uint32) (recs []PersistedRecord, ok bool, err error) {
	q, isQ := h.Persister().(WindowQuerier)
	if !isQ {
		return nil, false, nil
	}
	recs, err = q.QueryWindow(minX, minY, maxX, maxY, t0, t1)
	return recs, true, err
}

// CacheStatsPersist snapshots the attached persister's read-cache
// counters; ok is false when none is attached or it has no cache
// statistics to report.
func (h *persistHolder) CacheStatsPersist() (cache.Stats, bool) {
	if c, isC := h.Persister().(CacheStatser); isC {
		return c.CacheStats(), true
	}
	return cache.Stats{}, false
}

// ReclaimedPersist reports the attached persister's cumulative
// compaction reclaim; zero when unattached or unsupported.
func (h *persistHolder) ReclaimedPersist() int64 {
	if r, isR := h.Persister().(Reclaimer); isR {
		return r.ReclaimedBytes()
	}
	return 0
}

// ClosePersist closes the attached persister, if any, and detaches it.
func (h *persistHolder) ClosePersist() error {
	h.mu.Lock()
	p := h.p
	h.p = nil
	h.mu.Unlock()
	if p == nil {
		return nil
	}
	return p.Close()
}
