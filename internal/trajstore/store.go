package trajstore

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"github.com/trajcomp/bqs/internal/baseline"
	"github.com/trajcomp/bqs/internal/core"
	"github.com/trajcomp/bqs/internal/geom"
)

// Segment is one stored compressed trajectory segment: two key points plus
// merge bookkeeping. Weight counts how many observed traversals the
// segment represents; FirstT/LastT span the times it was observed.
type Segment struct {
	ID     uint64
	A, B   core.Point
	Weight int
	FirstT float64
	LastT  float64
}

// length returns the spatial length of the segment.
func (s Segment) length() float64 { return s.A.Vec().Dist(s.B.Vec()) }

// Config parameterizes a Store.
type Config struct {
	// MergeTolerance is the maximum symmetric deviation at which a new
	// segment is considered a duplicate of a stored one and merged into it
	// (Section V-F: "If any existing compressed segment could represent
	// the same path with a minor error, the new segment is considered
	// duplicate information and is merged"). 0 disables merging.
	MergeTolerance float64
	// CellSize is the spatial-index grid cell size in metres; defaults to
	// 4× MergeTolerance or 100 m, whichever is larger.
	CellSize float64
}

// Store is an in-memory historical trajectory database with error-bounded
// merging and ageing. It is safe for concurrent use.
type Store struct {
	mu     sync.RWMutex
	cfg    Config
	nextID uint64
	segs   map[uint64]Segment
	index  *gridIndex

	inserted int
	merged   int
}

// NewStore returns an empty store.
func NewStore(cfg Config) (*Store, error) {
	if cfg.MergeTolerance < 0 || math.IsNaN(cfg.MergeTolerance) || math.IsInf(cfg.MergeTolerance, 0) {
		return nil, errors.New("trajstore: merge tolerance must be a finite number ≥ 0")
	}
	if cfg.CellSize <= 0 {
		cfg.CellSize = math.Max(100, 4*cfg.MergeTolerance)
	}
	return &Store{
		cfg:   cfg,
		segs:  make(map[uint64]Segment),
		index: newGridIndex(cfg.CellSize),
	}, nil
}

// Len returns the number of stored segments.
func (st *Store) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.segs)
}

// Stats returns how many segments were inserted and how many of those were
// merged into existing ones.
func (st *Store) Stats() (inserted, merged int) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.inserted, st.merged
}

// InsertTrajectory inserts every segment of a compressed trajectory
// (consecutive key-point pairs), merging duplicates. It returns the number
// of segments merged rather than newly stored.
func (st *Store) InsertTrajectory(keys []core.Point) int {
	merged := 0
	for i := 0; i+1 < len(keys); i++ {
		if st.Insert(keys[i], keys[i+1]) {
			merged++
		}
	}
	return merged
}

// Insert stores the segment (a, b), merging it into a similar historical
// segment when one exists. It reports whether a merge happened.
func (st *Store) Insert(a, b core.Point) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.inserted++
	if st.cfg.MergeTolerance > 0 {
		if id, ok := st.findSimilar(a, b); ok {
			s := st.segs[id]
			s.Weight++
			s.FirstT = math.Min(s.FirstT, a.T)
			s.LastT = math.Max(s.LastT, b.T)
			st.segs[id] = s
			st.merged++
			return true
		}
	}
	st.nextID++
	s := Segment{ID: st.nextID, A: a, B: b, Weight: 1, FirstT: a.T, LastT: b.T}
	st.segs[s.ID] = s
	st.index.insert(s.ID, segBox(a, b))
	return false
}

// findSimilar looks for a stored segment that represents the same path as
// (a, b) within the merge tolerance: endpoints within tolerance of the
// stored segment (and vice versa for the stored endpoints), i.e. a
// symmetric Hausdorff-style test on the two 2-point polylines.
func (st *Store) findSimilar(a, b core.Point) (uint64, bool) {
	tol := st.cfg.MergeTolerance
	box := segBox(a, b).Inflate(tol)
	for _, id := range st.index.query(box) {
		s, ok := st.segs[id]
		if !ok {
			continue
		}
		if symmetricSegmentDistance(a.Vec(), b.Vec(), s.A.Vec(), s.B.Vec()) <= tol {
			return id, true
		}
	}
	return 0, false
}

// symmetricSegmentDistance returns the symmetric Hausdorff distance
// between segments (a1, b1) and (a2, b2): the farthest any endpoint lies
// from the other segment. For 2-point polylines the endpoint set realizes
// the Hausdorff maximum.
func symmetricSegmentDistance(a1, b1, a2, b2 geom.Vec) float64 {
	d := geom.DistToSegment(a1, a2, b2)
	if v := geom.DistToSegment(b1, a2, b2); v > d {
		d = v
	}
	if v := geom.DistToSegment(a2, a1, b1); v > d {
		d = v
	}
	if v := geom.DistToSegment(b2, a1, b1); v > d {
		d = v
	}
	return d
}

// Query returns the segments intersecting the axis-aligned rectangle
// [minX, maxX] × [minY, maxY] (by bounding box).
func (st *Store) Query(minX, minY, maxX, maxY float64) []Segment {
	st.mu.RLock()
	defer st.mu.RUnlock()
	box := geom.Box{Min: geom.V(minX, minY), Max: geom.V(maxX, maxY)}
	var out []Segment
	for _, id := range st.index.query(box) {
		s, ok := st.segs[id]
		if !ok {
			continue
		}
		if segBox(s.A, s.B).Intersects(box) {
			out = append(out, s)
		}
	}
	return out
}

// QueryTime returns the segments whose observation window overlaps
// [t0, t1].
func (st *Store) QueryTime(t0, t1 float64) []Segment {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var out []Segment
	for _, s := range st.segs {
		if s.FirstT <= t1 && s.LastT >= t0 {
			out = append(out, s)
		}
	}
	return out
}

// Segments returns a snapshot of all stored segments.
func (st *Store) Segments() []Segment {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]Segment, 0, len(st.segs))
	for _, s := range st.segs {
		out = append(out, s)
	}
	return out
}

// Age re-compresses chains of stored segments with a coarser tolerance
// (Section V-F: "the ageing procedure re-runs the compression algorithm on
// the existing trajectories that are already compressed, but with a
// greater error tolerance"). Segments whose observation ended before
// cutoffT are grouped into temporally contiguous chains, each chain's key
// points are re-compressed with Douglas-Peucker at the given tolerance,
// and the chain is replaced. It returns how many key points were dropped.
func (st *Store) Age(cutoffT, tolerance float64) (dropped int, err error) {
	if tolerance <= 0 || math.IsNaN(tolerance) {
		return 0, errors.New("trajstore: ageing tolerance must be positive")
	}
	st.mu.Lock()
	defer st.mu.Unlock()

	// Collect aged segments and chain them by shared endpoints.
	var chains [][]core.Point
	used := make(map[uint64]bool)
	for id, s := range st.segs {
		if used[id] || s.LastT >= cutoffT {
			continue
		}
		// Grow a chain forward and backward through matching endpoints.
		chain := []core.Point{s.A, s.B}
		used[id] = true
		for extended := true; extended; {
			extended = false
			for id2, s2 := range st.segs {
				if used[id2] || s2.LastT >= cutoffT {
					continue
				}
				last := chain[len(chain)-1]
				first := chain[0]
				switch {
				case s2.A.Equal(last):
					chain = append(chain, s2.B)
					used[id2] = true
					extended = true
				case s2.B.Equal(first):
					chain = append([]core.Point{s2.A}, chain...)
					used[id2] = true
					extended = true
				}
			}
		}
		chains = append(chains, chain)
	}

	for _, chain := range chains {
		kept, dpErr := baseline.DouglasPeucker(chain, tolerance, core.MetricLine)
		if dpErr != nil {
			return dropped, fmt.Errorf("trajstore: ageing failed: %w", dpErr)
		}
		dropped += len(chain) - len(kept)
		// Replace the chain's segments.
		st.removeChainLocked(chain)
		for i := 0; i+1 < len(kept); i++ {
			st.nextID++
			s := Segment{ID: st.nextID, A: kept[i], B: kept[i+1], Weight: 1,
				FirstT: kept[i].T, LastT: kept[i+1].T}
			st.segs[s.ID] = s
			st.index.insert(s.ID, segBox(s.A, s.B))
		}
	}
	return dropped, nil
}

// removeChainLocked deletes every stored segment whose endpoints are
// consecutive points of the chain. Callers hold the write lock.
func (st *Store) removeChainLocked(chain []core.Point) {
	for i := 0; i+1 < len(chain); i++ {
		for id, s := range st.segs {
			if s.A.Equal(chain[i]) && s.B.Equal(chain[i+1]) {
				st.index.remove(id, segBox(s.A, s.B))
				delete(st.segs, id)
			}
		}
	}
}

// StorageBytes returns the wire-format size of the store's contents: each
// distinct chain point costs WireSize bytes. It is the quantity the
// device's flash budget constrains.
func (st *Store) StorageBytes() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	// Count distinct endpoints: consecutive segments share points.
	seen := make(map[[3]float64]bool, len(st.segs)*2)
	n := 0
	for _, s := range st.segs {
		for _, p := range [2]core.Point{s.A, s.B} {
			k := [3]float64{p.X, p.Y, p.T}
			if !seen[k] {
				seen[k] = true
				n++
			}
		}
	}
	return n * WireSize
}

func segBox(a, b core.Point) geom.Box {
	box := geom.EmptyBox()
	box.Extend(a.Vec())
	box.Extend(b.Vec())
	return box
}
