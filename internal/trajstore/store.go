package trajstore

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"github.com/trajcomp/bqs/internal/baseline"
	"github.com/trajcomp/bqs/internal/core"
	"github.com/trajcomp/bqs/internal/geom"
)

// Segment is one stored compressed trajectory segment: two key points plus
// merge bookkeeping. Weight counts how many observed traversals the
// segment represents; FirstT/LastT span the times it was observed.
type Segment struct {
	ID     uint64
	A, B   core.Point
	Weight int
	FirstT float64
	LastT  float64
}

// length returns the spatial length of the segment.
func (s Segment) length() float64 { return s.A.Vec().Dist(s.B.Vec()) }

// Config parameterizes a Store.
type Config struct {
	// MergeTolerance is the maximum symmetric deviation at which a new
	// segment is considered a duplicate of a stored one and merged into it
	// (Section V-F: "If any existing compressed segment could represent
	// the same path with a minor error, the new segment is considered
	// duplicate information and is merged"). 0 disables merging.
	MergeTolerance float64
	// CellSize is the spatial-index grid cell size in metres; defaults to
	// 4× MergeTolerance or 100 m, whichever is larger.
	CellSize float64
}

// Store is an in-memory historical trajectory database with error-bounded
// merging and ageing. It is safe for concurrent use.
//
// Segment IDs are allocated sequentially, so the segment table is a dense
// chunked vector indexed by ID-1 rather than a map: the per-key-point
// insert on the ingestion hot path is an append into a fixed-size chunk
// (no reallocation ever copies existing segments, unlike a flat slice
// whose growth would move the whole table) and ID lookups from the
// spatial index are two direct loads. A deleted slot keeps a zero Segment
// (ID 0) as a tombstone; only ageing deletes, so tombstones stay rare and
// bounded by the segments ever replaced.
type Store struct {
	mu     sync.RWMutex
	cfg    Config
	nextID uint64
	segs   [][]Segment // chunks of segChunkSize; slot for ID at (id-1)>>bits, (id-1)&mask
	live   int         // segments currently stored (allocated slots minus tombstones)
	index  *gridIndex

	inserted int
	merged   int
}

const (
	segChunkBits = 12
	segChunkSize = 1 << segChunkBits // 4096 segments (256 KiB) per chunk
)

// segAt returns a pointer to the live segment with the given ID, or nil.
// Callers hold the lock.
func (st *Store) segAt(id uint64) *Segment {
	if id == 0 || id > st.nextID {
		return nil
	}
	i := id - 1
	s := &st.segs[i>>segChunkBits][i&(segChunkSize-1)]
	if s.ID == 0 {
		return nil
	}
	return s
}

// appendSeg stores s under the just-allocated st.nextID. Callers hold the
// lock and have incremented nextID.
func (st *Store) appendSeg(s Segment) {
	if n := len(st.segs); n == 0 || len(st.segs[n-1]) == segChunkSize {
		st.segs = append(st.segs, make([]Segment, 0, segChunkSize))
	}
	n := len(st.segs) - 1
	st.segs[n] = append(st.segs[n], s)
	st.live++
}

// forEachSeg calls fn for every live segment. Callers hold the lock; fn
// may tombstone the segment it is handed but must not append.
func (st *Store) forEachSeg(fn func(*Segment)) {
	for _, chunk := range st.segs {
		for i := range chunk {
			if chunk[i].ID != 0 {
				fn(&chunk[i])
			}
		}
	}
}

// NewStore returns an empty store.
func NewStore(cfg Config) (*Store, error) {
	if cfg.MergeTolerance < 0 || math.IsNaN(cfg.MergeTolerance) || math.IsInf(cfg.MergeTolerance, 0) {
		return nil, errors.New("trajstore: merge tolerance must be a finite number ≥ 0")
	}
	if cfg.CellSize <= 0 {
		cfg.CellSize = math.Max(100, 4*cfg.MergeTolerance)
	}
	return &Store{
		cfg:   cfg,
		index: newGridIndex(cfg.CellSize),
	}, nil
}

// Len returns the number of stored segments.
func (st *Store) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.live
}

// Stats returns how many segments were inserted and how many of those were
// merged into existing ones.
func (st *Store) Stats() (inserted, merged int) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.inserted, st.merged
}

// InsertTrajectory inserts every segment of a compressed trajectory
// (consecutive key-point pairs), merging duplicates. It returns the number
// of segments merged rather than newly stored.
func (st *Store) InsertTrajectory(keys []core.Point) int {
	merged := 0
	for i := 0; i+1 < len(keys); i++ {
		if st.Insert(keys[i], keys[i+1]) {
			merged++
		}
	}
	return merged
}

// Insert stores the segment (a, b), merging it into a similar historical
// segment when one exists. It reports whether a merge happened.
func (st *Store) Insert(a, b core.Point) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.inserted++
	if st.cfg.MergeTolerance > 0 {
		if s := st.findSimilar(a, b); s != nil {
			s.Weight++
			s.FirstT = math.Min(s.FirstT, a.T)
			s.LastT = math.Max(s.LastT, b.T)
			st.merged++
			return true
		}
	}
	st.nextID++
	st.appendSeg(Segment{ID: st.nextID, A: a, B: b, Weight: 1, FirstT: a.T, LastT: b.T})
	st.index.insert(st.nextID, segBox(a, b))
	return false
}

// findSimilar looks for a stored segment that represents the same path as
// (a, b) within the merge tolerance: endpoints within tolerance of the
// stored segment (and vice versa for the stored endpoints), i.e. a
// symmetric Hausdorff-style test on the two 2-point polylines. It returns
// the resolved live segment (nil when none matches) so the caller does
// not repeat the table lookup.
func (st *Store) findSimilar(a, b core.Point) *Segment {
	tol := st.cfg.MergeTolerance
	box := segBox(a, b).Inflate(tol)
	for _, id := range st.index.query(box) {
		s := st.segAt(id)
		if s == nil {
			continue
		}
		if symmetricSegmentDistance(a.Vec(), b.Vec(), s.A.Vec(), s.B.Vec()) <= tol {
			return s
		}
	}
	return nil
}

// symmetricSegmentDistance returns the symmetric Hausdorff distance
// between segments (a1, b1) and (a2, b2): the farthest any endpoint lies
// from the other segment. For 2-point polylines the endpoint set realizes
// the Hausdorff maximum.
func symmetricSegmentDistance(a1, b1, a2, b2 geom.Vec) float64 {
	d := geom.DistToSegment(a1, a2, b2)
	if v := geom.DistToSegment(b1, a2, b2); v > d {
		d = v
	}
	if v := geom.DistToSegment(a2, a1, b1); v > d {
		d = v
	}
	if v := geom.DistToSegment(b2, a1, b1); v > d {
		d = v
	}
	return d
}

// Query returns the segments intersecting the axis-aligned rectangle
// [minX, maxX] × [minY, maxY] (by bounding box).
func (st *Store) Query(minX, minY, maxX, maxY float64) []Segment {
	st.mu.RLock()
	defer st.mu.RUnlock()
	box := geom.Box{Min: geom.V(minX, minY), Max: geom.V(maxX, maxY)}
	var out []Segment
	for _, id := range st.index.query(box) {
		s := st.segAt(id)
		if s == nil {
			continue
		}
		if segBox(s.A, s.B).Intersects(box) {
			out = append(out, *s)
		}
	}
	return out
}

// QueryWindow returns the segments intersecting the axis-aligned
// rectangle (by bounding box) whose observation window also overlaps
// [t0, t1] — Query ∩ QueryTime in one indexed pass. It is the
// in-memory ground truth the durable log's window queries are tested
// against.
func (st *Store) QueryWindow(minX, minY, maxX, maxY, t0, t1 float64) []Segment {
	st.mu.RLock()
	defer st.mu.RUnlock()
	box := geom.Box{Min: geom.V(minX, minY), Max: geom.V(maxX, maxY)}
	var out []Segment
	for _, id := range st.index.query(box) {
		s := st.segAt(id)
		if s == nil {
			continue
		}
		if s.FirstT <= t1 && s.LastT >= t0 && segBox(s.A, s.B).Intersects(box) {
			out = append(out, *s)
		}
	}
	return out
}

// QueryTime returns the segments whose observation window overlaps
// [t0, t1].
func (st *Store) QueryTime(t0, t1 float64) []Segment {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var out []Segment
	st.forEachSeg(func(s *Segment) {
		if s.FirstT <= t1 && s.LastT >= t0 {
			out = append(out, *s)
		}
	})
	return out
}

// Segments returns a snapshot of all stored segments.
func (st *Store) Segments() []Segment {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]Segment, 0, st.live)
	st.forEachSeg(func(s *Segment) { out = append(out, *s) })
	return out
}

// Age re-compresses chains of stored segments with a coarser tolerance
// (Section V-F: "the ageing procedure re-runs the compression algorithm on
// the existing trajectories that are already compressed, but with a
// greater error tolerance"). Segments whose observation ended before
// cutoffT are grouped into temporally contiguous chains, each chain's key
// points are re-compressed with Douglas-Peucker at the given tolerance,
// and the chain is replaced. It returns how many key points were dropped.
func (st *Store) Age(cutoffT, tolerance float64) (dropped int, err error) {
	if tolerance <= 0 || math.IsNaN(tolerance) {
		return 0, errors.New("trajstore: ageing tolerance must be positive")
	}
	st.mu.Lock()
	defer st.mu.Unlock()

	// Collect aged segments and chain them by shared endpoints. The aged
	// subset is gathered once; the chain growing re-scans only it.
	var aged []*Segment
	st.forEachSeg(func(s *Segment) {
		if s.LastT < cutoffT {
			aged = append(aged, s)
		}
	})
	var chains [][]core.Point
	used := make(map[uint64]bool)
	for _, s := range aged {
		if used[s.ID] {
			continue
		}
		// Grow a chain forward and backward through matching endpoints.
		chain := []core.Point{s.A, s.B}
		used[s.ID] = true
		for extended := true; extended; {
			extended = false
			for _, s2 := range aged {
				if used[s2.ID] {
					continue
				}
				last := chain[len(chain)-1]
				first := chain[0]
				switch {
				case s2.A.Equal(last):
					chain = append(chain, s2.B)
					used[s2.ID] = true
					extended = true
				case s2.B.Equal(first):
					chain = append([]core.Point{s2.A}, chain...)
					used[s2.ID] = true
					extended = true
				}
			}
		}
		chains = append(chains, chain)
	}

	for _, chain := range chains {
		kept, dpErr := baseline.DouglasPeucker(chain, tolerance, core.MetricLine)
		if dpErr != nil {
			return dropped, fmt.Errorf("trajstore: ageing failed: %w", dpErr)
		}
		dropped += len(chain) - len(kept)
		// Replace the chain's segments.
		st.removeChainLocked(chain)
		for i := 0; i+1 < len(kept); i++ {
			st.nextID++
			st.appendSeg(Segment{ID: st.nextID, A: kept[i], B: kept[i+1], Weight: 1,
				FirstT: kept[i].T, LastT: kept[i+1].T})
			st.index.insert(st.nextID, segBox(kept[i], kept[i+1]))
		}
	}
	return dropped, nil
}

// removeChainLocked deletes every stored segment whose endpoints are
// consecutive points of the chain. Callers hold the write lock.
func (st *Store) removeChainLocked(chain []core.Point) {
	for i := 0; i+1 < len(chain); i++ {
		st.forEachSeg(func(s *Segment) {
			if s.A.Equal(chain[i]) && s.B.Equal(chain[i+1]) {
				st.index.remove(s.ID, segBox(s.A, s.B))
				*s = Segment{} // tombstone
				st.live--
			}
		})
	}
}

// StorageBytes returns the wire-format size of the store's contents: each
// distinct chain point costs WireSize bytes. It is the quantity the
// device's flash budget constrains.
func (st *Store) StorageBytes() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	// Count distinct endpoints: consecutive segments share points.
	seen := make(map[[3]float64]bool, st.live*2)
	n := 0
	st.forEachSeg(func(s *Segment) {
		for _, p := range [2]core.Point{s.A, s.B} {
			k := [3]float64{p.X, p.Y, p.T}
			if !seen[k] {
				seen[k] = true
				n++
			}
		}
	})
	return n * WireSize
}

func segBox(a, b core.Point) geom.Box {
	minX, maxX := a.X, b.X
	if minX > maxX {
		minX, maxX = maxX, minX
	}
	minY, maxY := a.Y, b.Y
	if minY > maxY {
		minY, maxY = maxY, minY
	}
	return geom.Box{Min: geom.Vec{X: minX, Y: minY}, Max: geom.Vec{X: maxX, Y: maxY}}
}
