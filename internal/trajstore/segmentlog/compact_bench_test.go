package segmentlog

import (
	"fmt"
	"testing"

	"github.com/trajcomp/bqs/internal/trajstore"
)

// chunkedKeys slices one long per-device track into chunks that obey
// the engine's chunking invariant — each chunk restarts from the
// previous chunk's last key — so MergeChunks has real work to do.
func chunkedKeys(d, chunks, perChunk int) [][]trajstore.GeoKey {
	total := chunks*(perChunk-1) + 1
	track := make([]trajstore.GeoKey, total)
	lat0, lon0 := int64(d)*1_000_000, int64(d)*1_000_000
	t := uint32(1000)
	for i := range track {
		track[i] = trajstore.GeoKey{
			Lat: float64(lat0+int64(i*10)) / 1e7,
			Lon: float64(lon0+int64(i*13)) / 1e7,
			T:   t,
		}
		t += uint32(i%3 + 1)
	}
	out := make([][]trajstore.GeoKey, chunks)
	for c := range out {
		out[c] = track[c*(perChunk-1) : c*(perChunk-1)+perChunk]
	}
	return out
}

// BenchmarkCompactThroughput measures one chunk-merge compaction pass
// over a freshly built multi-segment log. Each iteration rebuilds the
// fixture in its own directory outside the timer, so the measured work
// is exactly the streaming compactor: scan, merge, rewrite, publish.
// SetBytes carries the pass's input size, so the MB/s column is
// compacted input bytes per second — the figure the cores axis of the
// benchmark matrix scales, since the compactor fans per-device work to
// a GOMAXPROCS-sized worker pool by default.
func BenchmarkCompactThroughput(b *testing.B) {
	root := b.TempDir()
	var bytesIn int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := fmt.Sprintf("%s/run-%d", root, i)
		l, err := Open(dir, Options{MaxSegmentBytes: 8 << 10})
		if err != nil {
			b.Fatal(err)
		}
		for d := 0; d < 30; d++ {
			for _, chunk := range chunkedKeys(d, 20, 16) {
				if err := l.Append(fmt.Sprintf("dev-%03d", d), chunk); err != nil {
					b.Fatal(err)
				}
			}
		}
		if err := l.Sync(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res, err := l.Compact(CompactionPolicy{MergeChunks: true})
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if res.Gen == 0 || res.Merged == 0 {
			b.Fatalf("compaction did no work: %+v", res)
		}
		bytesIn = res.BytesIn
		l.Close()
		b.StartTimer()
	}
	b.SetBytes(bytesIn)
}
