// Spatio-temporal window queries over the durable log. QueryWindow is
// the cross-device counterpart of the per-device Query: it returns
// every record whose trajectory actually enters an axis-aligned window
// during a time range, pruning with two metadata tiers before touching
// any payload — per-segment summaries (the manifest-level bbox/time
// union of a whole file) and per-record bounding boxes (from the block
// index / v2 record headers). The bounding structures only ever prune:
// a candidate record is decoded and tested exactly, so indexed and
// fallback (pre-index, legacy v1) paths return identical results.
package segmentlog

import (
	"errors"
	"fmt"
	"io/fs"
	"math"

	"github.com/trajcomp/bqs/internal/trajstore"
)

// bbox is a spatial bounding box in the wire format's 1e-7-degree
// integer coordinates: the same quantization DeltaEncode applies, so a
// record's box bounds its decoded key points exactly.
type bbox struct {
	minLat, minLon, maxLat, maxLon int32
}

// emptyBBox is the identity for union: add any point to it.
func emptyBBox() bbox {
	return bbox{minLat: math.MaxInt32, minLon: math.MaxInt32, maxLat: math.MinInt32, maxLon: math.MinInt32}
}

// add grows the box to cover one quantized point.
func (b *bbox) add(lat, lon int32) {
	if lat < b.minLat {
		b.minLat = lat
	}
	if lat > b.maxLat {
		b.maxLat = lat
	}
	if lon < b.minLon {
		b.minLon = lon
	}
	if lon > b.maxLon {
		b.maxLon = lon
	}
}

// union grows the box to cover o.
func (b *bbox) union(o bbox) {
	b.add(o.minLat, o.minLon)
	b.add(o.maxLat, o.maxLon)
}

// intersects reports whether the box overlaps the degree-coordinate
// window [minX, maxX] × [minY, maxY] (X longitude, Y latitude),
// boundaries inclusive — matching trajstore's geom.Box.Intersects.
func (b bbox) intersects(minX, minY, maxX, maxY float64) bool {
	return float64(b.minLon)/1e7 <= maxX && float64(b.maxLon)/1e7 >= minX &&
		float64(b.minLat)/1e7 <= maxY && float64(b.maxLat)/1e7 >= minY
}

// quantizeCoord maps a degree coordinate to the wire format's 1e-7°
// integer, with exactly the rounding DeltaEncode applies.
func quantizeCoord(v float64) int32 { return int32(math.Round(v * 1e7)) }

// keysBBox computes the quantized bounding box of a trajectory. The
// keys must already be range-validated (DeltaEncode does).
func keysBBox(keys []trajstore.GeoKey) bbox {
	bb := emptyBBox()
	for _, k := range keys {
		bb.add(quantizeCoord(k.Lat), quantizeCoord(k.Lon))
	}
	return bb
}

// segSummary is the per-segment metadata union used for segment-level
// pruning: the time bounds and bounding box of every record in the
// file. It is maintained incrementally on append, rebuilt from the
// block index or scan on Open, and published in the MANIFEST for
// sealed segments.
type segSummary struct {
	records int
	t0, t1  uint32 // union of record time bounds; valid when records > 0
	bb      bbox   // union of record bboxes; usable only when bbAll
	bbAll   bool   // every record carries a bbox (false for legacy v1 data)
}

// add folds one record's metadata into the summary.
func (s *segSummary) add(m recordMeta) {
	if s.records == 0 {
		s.t0, s.t1 = m.t0, m.t1
		s.bb = emptyBBox()
		s.bbAll = true
	} else {
		if m.t0 < s.t0 {
			s.t0 = m.t0
		}
		if m.t1 > s.t1 {
			s.t1 = m.t1
		}
	}
	if m.hasBB {
		s.bb.union(m.bb)
	} else {
		s.bbAll = false
	}
	s.records++
}

// WindowStats reports how a window query was answered: how much the
// two pruning tiers saved and how many records had to be decoded. The
// selectivity win of the block index is RecordsDecoded versus the
// total record count a full scan would decode.
type WindowStats struct {
	Segments       int // segments in the snapshot
	SegmentsPruned int // skipped whole via segment summaries
	RecordsIndexed int // records whose metadata was examined
	RecordsPruned  int // records skipped via per-record bbox/time bounds
	RecordsDecoded int // candidate records read and decoded from disk
	RecordsMatched int // records returned
	CacheHits      int // candidate records served from the read cache (not decoded)
}

// windowMatch is the exact predicate: the polyline has at least one
// consecutive key-point pair whose bounding box intersects the window
// and whose time span overlaps [t0, t1] — the same per-segment test
// the in-memory trajstore ground truth (Query ∩ QueryTime) applies.
// Records with fewer than two keys never match.
func windowMatch(keys []trajstore.GeoKey, minX, minY, maxX, maxY float64, t0, t1 uint32) bool {
	for i := 0; i+1 < len(keys); i++ {
		a, b := &keys[i], &keys[i+1]
		loX, hiX := a.Lon, b.Lon
		if loX > hiX {
			loX, hiX = hiX, loX
		}
		if loX > maxX || hiX < minX {
			continue
		}
		loY, hiY := a.Lat, b.Lat
		if loY > hiY {
			loY, hiY = hiY, loY
		}
		if loY > maxY || hiY < minY {
			continue
		}
		loT, hiT := a.T, b.T
		if loT > hiT {
			loT, hiT = hiT, loT
		}
		if loT > t1 || hiT < t0 {
			continue
		}
		return true
	}
	return false
}

// QueryWindow returns the decoded records — across all devices, in log
// order — that enter the window [minX, maxX] × [minY, maxY] (degrees:
// X longitude, Y latitude) during [t0, t1]: records with at least one
// consecutive key-point pair whose bounding box intersects the window
// and whose time span overlaps the range. Segment summaries and
// per-record bounding boxes prune the candidate set; candidates are
// decoded and tested exactly, so legacy (pre-index) segments answer
// identically through the decode-everything fallback. Like Query, a
// call racing a concurrent compaction transparently retries against
// the newly published generation.
func (l *Log) QueryWindow(minX, minY, maxX, maxY float64, t0, t1 uint32) ([]Record, error) {
	recs, _, err := l.QueryWindowStats(minX, minY, maxX, maxY, t0, t1)
	return recs, err
}

// QueryWindowStats is QueryWindow plus pruning statistics.
func (l *Log) QueryWindowStats(minX, minY, maxX, maxY float64, t0, t1 uint32) ([]Record, WindowStats, error) {
	if math.IsNaN(minX) || math.IsNaN(minY) || math.IsNaN(maxX) || math.IsNaN(maxY) {
		return nil, WindowStats{}, errors.New("segmentlog: window bounds must not be NaN")
	}
	if minX > maxX || minY > maxY || t0 > t1 {
		return nil, WindowStats{}, fmt.Errorf("segmentlog: inverted window [%g,%g]×[%g,%g] t[%d,%d]", minX, maxX, minY, maxY, t0, t1)
	}
	for attempt := 0; ; attempt++ {
		out, ws, retry, err := l.queryWindowOnce(minX, minY, maxX, maxY, t0, t1)
		if err != nil && retry && attempt < 4 {
			continue
		}
		if err != nil && retry && l.ro {
			return out, ws, fmt.Errorf("segmentlog: log rewritten by a concurrent compaction; reopen to read the new generation: %w", err)
		}
		return out, ws, err
	}
}

// queryWindowOnce is one snapshot-prune-decode pass; retry is true when
// a segment file vanished under a concurrent compaction.
func (l *Log) queryWindowOnce(minX, minY, maxX, maxY float64, t0, t1 uint32) (out []Record, ws WindowStats, retry bool, err error) {
	cands, segs, gen, ws, err := l.snapshotWindow(minX, minY, maxX, maxY, t0, t1)
	if err != nil {
		return nil, ws, false, err
	}
	files := newSegReader(l.fs, segs)
	defer files.close()
	for _, ref := range cands {
		rec, hit := l.cacheGet(gen, segs[ref.seg].path, ref.off)
		if hit {
			ws.CacheHits++
		} else {
			body, err := files.readRecord(ref)
			if err != nil {
				return nil, ws, errors.Is(err, fs.ErrNotExist), err
			}
			dev, rt0, rt1, _, _, payload, err := splitBody(body, segs[ref.seg].ver)
			if err != nil {
				return nil, ws, false, fmt.Errorf("segmentlog: indexed record unreadable: %w", err)
			}
			keys, err := trajstore.DeltaDecode(payload)
			if err != nil {
				return nil, ws, false, fmt.Errorf("segmentlog: %w", err)
			}
			ws.RecordsDecoded++
			rec = Record{Device: dev, T0: rt0, T1: rt1, Keys: keys}
			// Candidates that fail the exact test below are cached too:
			// they survived the metadata pruning, so the same window (or a
			// neighboring one) will keep re-reading them.
			l.cachePut(gen, segs[ref.seg].path, ref.off, rec)
		}
		if !windowMatch(rec.Keys, minX, minY, maxX, maxY, t0, t1) {
			continue
		}
		ws.RecordsMatched++
		out = append(out, rec)
	}
	return out, ws, false, nil
}

// snapshotWindow collects, under the lock, the candidate records whose
// metadata cannot rule out a window match, flushing pending writes
// first so disk reads observe every indexed record. Candidates come
// back in (segment, offset) order — log order. gen is the manifest
// generation the snapshot belongs to — the cache epoch of every
// candidate returned.
func (l *Log) snapshotWindow(minX, minY, maxX, maxY float64, t0, t1 uint32) ([]refSnap, []segSnap, uint64, WindowStats, error) {
	var ws WindowStats
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, nil, 0, ws, ErrClosed
	}
	// A flush failure poisons the active segment and withdraws the
	// at-risk records from the index, leaving it consistent — window
	// queries keep answering from the durable prefix (see snapshotRefs).
	if err := l.flushLocked(); err != nil && !l.poisoned {
		return nil, nil, 0, ws, err
	}
	var cands []refSnap
	ws.Segments = len(l.segs)
	for si := range l.segs {
		sum := &l.segs[si].sum
		if sum.records == 0 ||
			sum.t0 > t1 || sum.t1 < t0 ||
			(sum.bbAll && !sum.bb.intersects(minX, minY, maxX, maxY)) {
			ws.SegmentsPruned++
			continue
		}
		// Deferred segments carry their manifest summary, so the prune
		// above worked without touching disk; only a segment the window
		// might actually hit pays its load here.
		if err := l.ensureSegLoadedLocked(si); err != nil {
			return nil, nil, 0, ws, err
		}
		for pi := range l.segRecs[si] {
			m := &l.segRecs[si][pi]
			ws.RecordsIndexed++
			if m.t0 > t1 || m.t1 < t0 || (m.hasBB && !m.bb.intersects(minX, minY, maxX, maxY)) {
				ws.RecordsPruned++
				continue
			}
			cands = append(cands, refSnap{seg: si, off: m.off, bodyLen: m.bodyLen})
		}
	}
	segs := make([]segSnap, len(l.segs))
	for i, s := range l.segs {
		segs[i] = segSnap{path: s.path, ver: s.ver}
	}
	return cands, segs, l.gen, ws, nil
}
