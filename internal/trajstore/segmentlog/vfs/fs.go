// Package vfs abstracts the filesystem operations the segment log
// performs, so the entire durable stack — appends, rotation, manifest
// publish, block-index sealing, compaction, sharded migration — can run
// against an injected failing filesystem in tests while production code
// pays nothing for the seam.
//
// Two implementations ship:
//
//   - OS, a zero-overhead passthrough to the os package. *os.File
//     satisfies File directly, so the passthrough adds one interface
//     dispatch per call and no allocation.
//   - FaultFS (fault.go), a deterministic seeded fault injector that
//     fails the Nth operation or every operation matching a pattern
//     with ENOSPC/EIO/short-write/fsync-error, and simulates power
//     loss with fsyncgate semantics: bytes not covered by a successful
//     Sync are gone after a crash, and a failed Sync drops the dirty
//     bytes immediately — retrying it as if the data survived is the
//     bug the model exists to expose.
//
// The interface is intentionally the subset the log uses, not a general
// filesystem: absolute real paths, os-package signatures, fs.DirEntry
// and fs.FileInfo results, so call sites translate one-for-one.
package vfs

import (
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// File is one open file (or directory handle, for directory fsync).
// *os.File satisfies it.
type File interface {
	io.Writer
	io.WriterAt
	io.ReaderAt
	io.Seeker
	io.Closer
	// Sync flushes the file (or directory entry metadata) to stable
	// storage. A failed Sync leaves the durability of every byte
	// written since the last successful Sync unknown — callers must
	// not retry it and assume the data survived.
	Sync() error
	// Truncate changes the file's size.
	Truncate(size int64) error
	// Fd returns the underlying descriptor, for advisory locks
	// (flock). Implementations that have no real descriptor may
	// return ^uintptr(0).
	Fd() uintptr
}

// FS is the filesystem seam. Methods mirror the os package (plus
// filepath.Glob); implementations operate on real paths.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Open(name string) (File, error)
	ReadFile(name string) ([]byte, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	RemoveAll(path string) error
	ReadDir(name string) ([]fs.DirEntry, error)
	Stat(name string) (fs.FileInfo, error)
	MkdirAll(path string, perm os.FileMode) error
	Truncate(name string, size int64) error
	Glob(pattern string) ([]string, error)
}

// OS is the production filesystem: a direct passthrough to the os
// package.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) RemoveAll(path string) error                  { return os.RemoveAll(path) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) Stat(name string) (fs.FileInfo, error)        { return os.Stat(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) Truncate(name string, size int64) error       { return os.Truncate(name, size) }
func (osFS) Glob(pattern string) ([]string, error)        { return filepath.Glob(pattern) }
