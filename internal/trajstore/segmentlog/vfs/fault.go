package vfs

import (
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
)

// Op names one filesystem operation kind for fault-rule matching.
type Op string

// Operation kinds. FS-level and File-level operations share one
// namespace; a Rule with an empty Op matches all of them.
const (
	OpOpenFile  Op = "openfile"
	OpOpen      Op = "open"
	OpReadFile  Op = "readfile"
	OpRename    Op = "rename"
	OpRemove    Op = "remove"
	OpRemoveAll Op = "removeall"
	OpReadDir   Op = "readdir"
	OpStat      Op = "stat"
	OpMkdirAll  Op = "mkdirall"
	OpTruncate  Op = "truncate"
	OpGlob      Op = "glob"
	OpWrite     Op = "write"
	OpWriteAt   Op = "writeat"
	OpReadAt    Op = "readat"
	OpSeek      Op = "seek"
	OpSync      Op = "sync"
	OpClose     Op = "close"
)

// Fault is what happens when a rule fires.
type Fault int

const (
	// FaultEIO fails the operation with syscall.EIO. On a Sync it
	// additionally drops the file's un-synced bytes (fsyncgate
	// semantics — see Rule).
	FaultEIO Fault = iota
	// FaultENOSPC fails the operation with syscall.ENOSPC (same Sync
	// semantics as FaultEIO).
	FaultENOSPC
	// FaultShortWrite writes roughly half the buffer, then fails with
	// EIO. On non-write operations it behaves like FaultEIO.
	FaultShortWrite
	// FaultCrash simulates power loss at this operation: the
	// operation fails, every open handle is closed, all bytes not
	// covered by a successful Sync are lost, files whose directory
	// entries were never fsynced may vanish, and un-fsynced renames
	// may be rolled back (each choice drawn from the seeded RNG).
	// Every further operation on this FaultFS fails with ErrCrashed;
	// reopen the directory through a fresh FS to model restart.
	FaultCrash
)

// ErrCrashed reports an operation attempted after a simulated crash.
var ErrCrashed = errors.New("vfs: filesystem crashed")

// Rule arms one fault. Rules are evaluated in order; the first rule
// matching an operation decides it.
//
// Fsyncgate semantics: when a rule fails a Sync, the real file is
// immediately truncated back to its last durably-synced size — the
// kernel analogue of dirty pages being dropped and marked clean after
// a failed fsync. Code that retries the Sync and trusts a later
// success therefore loses data visibly, which is exactly the bug class
// this models.
type Rule struct {
	// Op restricts the rule to one operation kind; empty matches any.
	Op Op
	// Path, when non-empty, is a filepath.Match pattern tested
	// against the operation's base file name ("seg-*.log", "MANIFEST*").
	Path string
	// Fault is the injected failure.
	Fault Fault
	// After skips the first After matching operations.
	After int
	// Count fires on at most Count matches after the skip; 0 means
	// every one (a sustained fault, e.g. a full disk).
	Count int

	seen int
}

// FaultFS is a deterministic fault-injecting filesystem over real
// paths. The zero value is not usable; construct with NewFaultFS. All
// methods are safe for concurrent use (one internal lock serializes
// them — this is a test filesystem, not a fast one).
type FaultFS struct {
	mu      sync.Mutex
	rng     *rand.Rand
	rules   []*Rule
	ops     int
	crashed bool

	files map[*faultFile]struct{}
	// synced tracks each path's durable byte count: what survives a
	// crash. Files first seen pre-existing count as fully durable.
	synced map[string]int64
	// pendingCreate holds paths created since the last fsync of their
	// parent directory; without that fsync the entry itself may
	// vanish in a crash.
	pendingCreate map[string]bool
	// pendingRename holds renames whose directory was not yet
	// fsynced; a crash may roll each one back.
	pendingRename []renameRec
}

type renameRec struct {
	dir, from, to string
	destSaved     []byte // dest content at rename time (nil if none)
	destExisted   bool
	destSynced    int64
	fromPending   bool // the source entry itself was never dir-synced
}

// NewFaultFS returns a FaultFS whose crash choices (which un-synced
// renames/creates survive) are drawn deterministically from seed.
func NewFaultFS(seed int64) *FaultFS {
	return &FaultFS{
		rng:           rand.New(rand.NewSource(seed)),
		files:         make(map[*faultFile]struct{}),
		synced:        make(map[string]int64),
		pendingCreate: make(map[string]bool),
	}
}

// AddRule arms one fault rule (appended after existing rules).
func (f *FaultFS) AddRule(r Rule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = append(f.rules, &r)
}

// ClearRules disarms every rule — the disk "recovers". Durable-state
// tracking and the op counter continue.
func (f *FaultFS) ClearRules() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = nil
}

// Ops returns the number of operations observed so far, the coordinate
// system of Rule.After. An observer pass with no rules measures a
// workload's op count; a second run can then target any single op.
func (f *FaultFS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Crashed reports whether a simulated crash has happened (by rule or
// explicit Crash call).
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Crash simulates power loss now: see FaultCrash.
func (f *FaultFS) Crash() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashLocked()
}

// step counts one operation and returns the fault to inject, if any.
// Callers hold mu.
func (f *FaultFS) step(op Op, path string) (Fault, error) {
	if f.crashed {
		return 0, &os.PathError{Op: string(op), Path: path, Err: ErrCrashed}
	}
	f.ops++
	for _, r := range f.rules {
		if r.Op != "" && r.Op != op {
			continue
		}
		if r.Path != "" {
			if ok, err := filepath.Match(r.Path, filepath.Base(path)); err != nil || !ok {
				continue
			}
		}
		r.seen++
		if r.seen <= r.After {
			continue
		}
		if r.Count > 0 && r.seen > r.After+r.Count {
			continue
		}
		return r.Fault, errFor(r.Fault, op, path)
	}
	return 0, nil
}

func errFor(fault Fault, op Op, path string) error {
	errno := syscall.EIO
	if fault == FaultENOSPC {
		errno = syscall.ENOSPC
	}
	return &os.PathError{Op: string(op), Path: path, Err: errno}
}

// crashLocked applies the durable-state model: close every handle
// (releasing flocks so the same process can reopen), roll back or keep
// each un-synced rename and create by seeded choice, and truncate
// every tracked file to its synced size.
func (f *FaultFS) crashLocked() {
	if f.crashed {
		return
	}
	f.crashed = true
	for ff := range f.files {
		_ = ff.f.Close() // simulated power loss; errors are the point
		ff.dead = true
	}
	// Renames, newest first, so stacked renames of one path unwind in
	// order.
	for i := len(f.pendingRename) - 1; i >= 0; i-- {
		r := f.pendingRename[i]
		if f.rng.Intn(2) == 0 {
			continue // this rename reached disk
		}
		data, err := os.ReadFile(r.to)
		if err == nil && !r.fromPending {
			os.WriteFile(r.from, data, 0o644)
			f.synced[r.from] = f.synced[r.to]
		}
		if r.destExisted {
			os.WriteFile(r.to, r.destSaved, 0o644)
			f.synced[r.to] = r.destSynced
		} else {
			os.Remove(r.to)
			delete(f.synced, r.to)
		}
	}
	f.pendingRename = nil
	// Creates whose directory entry never became durable.
	creates := make([]string, 0, len(f.pendingCreate))
	for p := range f.pendingCreate {
		creates = append(creates, p)
	}
	sort.Strings(creates)
	for _, p := range creates {
		if f.rng.Intn(2) == 0 {
			continue // the entry happened to reach disk
		}
		os.Remove(p)
		delete(f.synced, p)
	}
	f.pendingCreate = nil
	// Un-synced bytes are gone.
	paths := make([]string, 0, len(f.synced))
	for p := range f.synced {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if fi, err := os.Stat(p); err == nil && !fi.IsDir() && fi.Size() > f.synced[p] {
			os.Truncate(p, f.synced[p])
		}
	}
}

// seedSynced initializes a path's durable baseline on first contact:
// a file that existed before this FS ever touched it predates the
// fault epoch and counts as fully durable.
func (f *FaultFS) seedSynced(path string) {
	if _, ok := f.synced[path]; ok {
		return
	}
	if fi, err := os.Stat(path); err == nil && !fi.IsDir() {
		f.synced[path] = fi.Size()
	}
}

func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if fault, err := f.step(OpOpenFile, name); err != nil {
		if fault == FaultCrash {
			f.crashLocked()
		}
		return nil, err
	}
	_, existed := f.synced[name]
	if !existed {
		if _, err := os.Stat(name); err == nil {
			existed = true
		}
	}
	rf, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	if !existed {
		// Created by this open: no bytes durable, entry pending until
		// the directory is fsynced.
		f.synced[name] = 0
		f.pendingCreate[name] = true
	} else {
		f.seedSynced(name)
		if flag&os.O_TRUNC != 0 {
			// Truncation is modeled as immediately durable: the old
			// content is gone, the new bytes are pending.
			f.synced[name] = 0
		}
	}
	ff := &faultFile{fs: f, f: rf, path: name}
	if fi, err := rf.Stat(); err == nil && fi.IsDir() {
		ff.isDir = true
	}
	f.files[ff] = struct{}{}
	return ff, nil
}

func (f *FaultFS) Open(name string) (File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if fault, err := f.step(OpOpen, name); err != nil {
		if fault == FaultCrash {
			f.crashLocked()
		}
		return nil, err
	}
	rf, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	f.seedSynced(name)
	ff := &faultFile{fs: f, f: rf, path: name}
	if fi, err := rf.Stat(); err == nil && fi.IsDir() {
		ff.isDir = true
	}
	f.files[ff] = struct{}{}
	return ff, nil
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if fault, err := f.step(OpReadFile, name); err != nil {
		if fault == FaultCrash {
			f.crashLocked()
		}
		return nil, err
	}
	return os.ReadFile(name)
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if fault, err := f.step(OpRename, newpath); err != nil {
		if fault == FaultCrash {
			f.crashLocked()
		}
		return err
	}
	f.seedSynced(oldpath)
	f.seedSynced(newpath)
	rec := renameRec{dir: filepath.Dir(newpath), from: oldpath, to: newpath, fromPending: f.pendingCreate[oldpath]}
	if data, err := os.ReadFile(newpath); err == nil {
		rec.destExisted = true
		rec.destSaved = data
		rec.destSynced = f.synced[newpath]
	}
	if err := os.Rename(oldpath, newpath); err != nil {
		return err
	}
	f.synced[newpath] = f.synced[oldpath]
	delete(f.synced, oldpath)
	delete(f.pendingCreate, oldpath)
	f.pendingRename = append(f.pendingRename, rec)
	return nil
}

func (f *FaultFS) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if fault, err := f.step(OpRemove, name); err != nil {
		if fault == FaultCrash {
			f.crashLocked()
		}
		return err
	}
	if err := os.Remove(name); err != nil {
		return err
	}
	// Removal is modeled as immediately durable.
	delete(f.synced, name)
	delete(f.pendingCreate, name)
	return nil
}

func (f *FaultFS) RemoveAll(path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if fault, err := f.step(OpRemoveAll, path); err != nil {
		if fault == FaultCrash {
			f.crashLocked()
		}
		return err
	}
	if err := os.RemoveAll(path); err != nil {
		return err
	}
	for p := range f.synced {
		if p == path || inDir(p, path) {
			delete(f.synced, p)
		}
	}
	for p := range f.pendingCreate {
		if p == path || inDir(p, path) {
			delete(f.pendingCreate, p)
		}
	}
	return nil
}

func inDir(p, dir string) bool {
	rel, err := filepath.Rel(dir, p)
	return err == nil && rel != ".." && !strings.HasPrefix(rel, ".."+string(filepath.Separator))
}

func (f *FaultFS) ReadDir(name string) ([]fs.DirEntry, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if fault, err := f.step(OpReadDir, name); err != nil {
		if fault == FaultCrash {
			f.crashLocked()
		}
		return nil, err
	}
	return os.ReadDir(name)
}

func (f *FaultFS) Stat(name string) (fs.FileInfo, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if fault, err := f.step(OpStat, name); err != nil {
		if fault == FaultCrash {
			f.crashLocked()
		}
		return nil, err
	}
	return os.Stat(name)
}

func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if fault, err := f.step(OpMkdirAll, path); err != nil {
		if fault == FaultCrash {
			f.crashLocked()
		}
		return err
	}
	return os.MkdirAll(path, perm)
}

func (f *FaultFS) Truncate(name string, size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if fault, err := f.step(OpTruncate, name); err != nil {
		if fault == FaultCrash {
			f.crashLocked()
		}
		return err
	}
	if err := os.Truncate(name, size); err != nil {
		return err
	}
	f.seedSynced(name)
	if f.synced[name] > size {
		f.synced[name] = size
	}
	return nil
}

func (f *FaultFS) Glob(pattern string) ([]string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if fault, err := f.step(OpGlob, pattern); err != nil {
		if fault == FaultCrash {
			f.crashLocked()
		}
		return nil, err
	}
	return filepath.Glob(pattern)
}

// faultFile is one open handle through the fault layer.
type faultFile struct {
	fs    *FaultFS
	f     *os.File
	path  string
	isDir bool
	dead  bool // real handle closed by a simulated crash
}

// step counts one file operation; a dead handle (post-crash) always
// fails.
func (ff *faultFile) step(op Op) (Fault, error) {
	if ff.dead {
		return 0, &os.PathError{Op: string(op), Path: ff.path, Err: ErrCrashed}
	}
	return ff.fs.step(op, ff.path)
}

func (ff *faultFile) Write(p []byte) (int, error) {
	ff.fs.mu.Lock()
	defer ff.fs.mu.Unlock()
	fault, err := ff.step(OpWrite)
	if err != nil {
		switch fault {
		case FaultCrash:
			ff.fs.crashLocked()
		case FaultShortWrite:
			n, _ := ff.f.Write(p[:len(p)/2])
			return n, err
		}
		return 0, err
	}
	return ff.f.Write(p)
}

func (ff *faultFile) WriteAt(p []byte, off int64) (int, error) {
	ff.fs.mu.Lock()
	defer ff.fs.mu.Unlock()
	fault, err := ff.step(OpWriteAt)
	if err != nil {
		switch fault {
		case FaultCrash:
			ff.fs.crashLocked()
		case FaultShortWrite:
			n, _ := ff.f.WriteAt(p[:len(p)/2], off)
			return n, err
		}
		return 0, err
	}
	return ff.f.WriteAt(p, off)
}

func (ff *faultFile) ReadAt(p []byte, off int64) (int, error) {
	ff.fs.mu.Lock()
	defer ff.fs.mu.Unlock()
	if fault, err := ff.step(OpReadAt); err != nil {
		if fault == FaultCrash {
			ff.fs.crashLocked()
		}
		return 0, err
	}
	return ff.f.ReadAt(p, off)
}

func (ff *faultFile) Seek(offset int64, whence int) (int64, error) {
	ff.fs.mu.Lock()
	defer ff.fs.mu.Unlock()
	if fault, err := ff.step(OpSeek); err != nil {
		if fault == FaultCrash {
			ff.fs.crashLocked()
		}
		return 0, err
	}
	return ff.f.Seek(offset, whence)
}

func (ff *faultFile) Sync() error {
	ff.fs.mu.Lock()
	defer ff.fs.mu.Unlock()
	fault, err := ff.step(OpSync)
	if err != nil {
		if fault == FaultCrash {
			ff.fs.crashLocked()
			return err
		}
		if !ff.isDir && !ff.dead {
			// Fsyncgate: the failed fsync dropped the dirty pages. The
			// un-synced bytes are gone NOW, not at some future crash —
			// code that retries the Sync and believes a later success
			// covers them is wrong, and this makes it visibly wrong.
			if n, ok := ff.fs.synced[ff.path]; ok {
				os.Truncate(ff.path, n)
			}
		}
		return err
	}
	if err := ff.f.Sync(); err != nil {
		return err
	}
	if ff.isDir {
		// Directory fsync: entries (creates, renames) under this
		// directory become durable.
		for p := range ff.fs.pendingCreate {
			if filepath.Dir(p) == ff.path {
				delete(ff.fs.pendingCreate, p)
			}
		}
		kept := ff.fs.pendingRename[:0]
		for _, r := range ff.fs.pendingRename {
			if r.dir != ff.path {
				kept = append(kept, r)
			}
		}
		ff.fs.pendingRename = kept
	} else if fi, err := ff.f.Stat(); err == nil {
		ff.fs.synced[ff.path] = fi.Size()
	}
	return nil
}

func (ff *faultFile) Truncate(size int64) error {
	ff.fs.mu.Lock()
	defer ff.fs.mu.Unlock()
	if fault, err := ff.step(OpTruncate); err != nil {
		if fault == FaultCrash {
			ff.fs.crashLocked()
		}
		return err
	}
	if err := ff.f.Truncate(size); err != nil {
		return err
	}
	if ff.fs.synced[ff.path] > size {
		ff.fs.synced[ff.path] = size
	}
	return nil
}

func (ff *faultFile) Close() error {
	ff.fs.mu.Lock()
	defer ff.fs.mu.Unlock()
	if ff.dead {
		delete(ff.fs.files, ff)
		return &os.PathError{Op: "close", Path: ff.path, Err: ErrCrashed}
	}
	if fault, err := ff.fs.step(OpClose, ff.path); err != nil {
		if fault == FaultCrash {
			ff.fs.crashLocked()
		}
		return err
	}
	delete(ff.fs.files, ff)
	return ff.f.Close()
}

func (ff *faultFile) Fd() uintptr {
	if ff.dead {
		return ^uintptr(0)
	}
	return ff.f.Fd()
}

// String aids test failure messages.
func (f *FaultFS) String() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return fmt.Sprintf("FaultFS{ops: %d, rules: %d, crashed: %v}", f.ops, len(f.rules), f.crashed)
}
