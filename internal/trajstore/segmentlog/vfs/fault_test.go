package vfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func write(t *testing.T, f File, data string) {
	t.Helper()
	if _, err := f.Write([]byte(data)); err != nil {
		t.Fatalf("write: %v", err)
	}
}

func readBack(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return string(data)
}

func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "a.txt")
	f, err := OS.OpenFile(p, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	write(t, f, "hello")
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := OS.ReadFile(p)
	if err != nil || string(data) != "hello" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	if err := OS.Rename(p, filepath.Join(dir, "b.txt")); err != nil {
		t.Fatal(err)
	}
	ents, err := OS.ReadDir(dir)
	if err != nil || len(ents) != 1 || ents[0].Name() != "b.txt" {
		t.Fatalf("ReadDir = %v, %v", ents, err)
	}
	matches, err := OS.Glob(filepath.Join(dir, "*.txt"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("Glob = %v, %v", matches, err)
	}
}

func TestFaultNthOp(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(1)
	p := filepath.Join(dir, "f")

	// Observer pass: count the ops of the workload.
	f, err := ffs.OpenFile(p, os.O_RDWR|os.O_CREATE, 0o644) // op 1
	if err != nil {
		t.Fatal(err)
	}
	write(t, f, "x") // op 2
	if err := f.Close(); err != nil {
		t.Fatal(err) // op 3
	}
	if got := ffs.Ops(); got != 3 {
		t.Fatalf("Ops = %d, want 3", got)
	}

	// Targeted pass: fail exactly the write (op 2) with ENOSPC.
	ffs2 := NewFaultFS(1)
	ffs2.AddRule(Rule{Fault: FaultENOSPC, After: 1, Count: 1})
	f2, err := ffs2.OpenFile(filepath.Join(dir, "g"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f2.Write([]byte("x")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("write = %v, want ENOSPC", err)
	}
	if _, err := f2.Write([]byte("x")); err != nil {
		t.Fatalf("write after window: %v", err)
	}
	f2.Close()
}

func TestFaultPattern(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(1)
	ffs.AddRule(Rule{Op: OpSync, Path: "seg-*.log", Fault: FaultEIO})
	seg, err := ffs.OpenFile(filepath.Join(dir, "seg-00000001.log"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	other, err := ffs.OpenFile(filepath.Join(dir, "other.log"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := seg.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("seg sync = %v, want EIO", err)
	}
	if err := other.Sync(); err != nil {
		t.Fatalf("other sync = %v", err)
	}
	seg.Close()
	other.Close()
}

// TestFsyncgate pins the headline semantic: bytes written after the
// last successful Sync are DROPPED by a failed Sync — a later
// successful Sync does not resurrect them.
func TestFsyncgate(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(1)
	p := filepath.Join(dir, "f")
	f, err := ffs.OpenFile(p, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	write(t, f, "durable")
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	write(t, f, "-doomed")
	ffs.AddRule(Rule{Op: OpSync, Fault: FaultEIO, Count: 1})
	if err := f.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("sync = %v, want EIO", err)
	}
	// The dirty bytes are already gone; a retried (now passing) Sync
	// must not bring them back.
	if err := f.Sync(); err != nil {
		t.Fatalf("retried sync: %v", err)
	}
	if got := readBack(t, p); got != "durable" {
		t.Fatalf("content = %q, want %q (un-synced bytes must be lost)", got, "durable")
	}
	f.Close()
}

func TestShortWrite(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(1)
	p := filepath.Join(dir, "f")
	f, err := ffs.OpenFile(p, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	ffs.AddRule(Rule{Op: OpWrite, Fault: FaultShortWrite, Count: 1})
	n, err := f.Write([]byte("0123456789"))
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("write = %v, want EIO", err)
	}
	if n != 5 {
		t.Fatalf("short write wrote %d bytes, want 5", n)
	}
	f.Close()
	if got := readBack(t, p); got != "01234" {
		t.Fatalf("content = %q, want the short prefix", got)
	}
}

func TestCrashLosesUnsynced(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(7)
	p := filepath.Join(dir, "f")
	f, err := ffs.OpenFile(p, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	write(t, f, "durable")
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	write(t, f, "-volatile")
	ffs.Crash()
	if got := readBack(t, p); got != "durable" {
		t.Fatalf("content after crash = %q, want %q", got, "durable")
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write after crash = %v, want ErrCrashed", err)
	}
	if _, err := ffs.Open(p); !errors.Is(err, ErrCrashed) {
		t.Fatalf("open after crash = %v, want ErrCrashed", err)
	}
	// A fresh FS (the "restarted process") sees the durable prefix.
	if data, err := NewFaultFS(1).ReadFile(p); err != nil || string(data) != "durable" {
		t.Fatalf("post-restart read = %q, %v", data, err)
	}
}

// TestCrashRenameTornOrAtomic: an un-dir-synced rename either fully
// survives a crash or fully rolls back — never a mix — and a dir-synced
// rename always survives.
func TestCrashRename(t *testing.T) {
	sawOld, sawNew := false, false
	for seed := int64(0); seed < 20; seed++ {
		dir := t.TempDir()
		ffs := NewFaultFS(seed)
		dst := filepath.Join(dir, "MANIFEST")
		if err := os.WriteFile(dst, []byte("old"), 0o644); err != nil {
			t.Fatal(err)
		}
		tmp := filepath.Join(dir, "MANIFEST.tmp")
		f, err := ffs.OpenFile(tmp, os.O_WRONLY|os.O_CREATE, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		write(t, f, "new")
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		f.Close()
		if err := ffs.Rename(tmp, dst); err != nil {
			t.Fatal(err)
		}
		ffs.Crash()
		switch got := readBack(t, dst); got {
		case "old":
			sawOld = true
		case "new":
			sawNew = true
		default:
			t.Fatalf("seed %d: MANIFEST = %q, want old or new", seed, got)
		}
	}
	if !sawOld || !sawNew {
		t.Fatalf("20 seeds never exercised both rename outcomes (old=%v new=%v)", sawOld, sawNew)
	}

	// Dir-synced rename: always the new content.
	for seed := int64(0); seed < 5; seed++ {
		dir := t.TempDir()
		ffs := NewFaultFS(seed)
		dst := filepath.Join(dir, "MANIFEST")
		os.WriteFile(dst, []byte("old"), 0o644)
		tmp := filepath.Join(dir, "MANIFEST.tmp")
		f, _ := ffs.OpenFile(tmp, os.O_WRONLY|os.O_CREATE, 0o644)
		write(t, f, "new")
		f.Sync()
		f.Close()
		if err := ffs.Rename(tmp, dst); err != nil {
			t.Fatal(err)
		}
		d, err := ffs.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Sync(); err != nil {
			t.Fatal(err)
		}
		d.Close()
		ffs.Crash()
		if got := readBack(t, dst); got != "new" {
			t.Fatalf("seed %d: dir-synced rename lost (%q)", seed, got)
		}
	}
}

// TestCrashPendingCreate: a file created and fsynced but whose
// directory entry was never fsynced can vanish wholesale.
func TestCrashPendingCreate(t *testing.T) {
	vanished := false
	for seed := int64(0); seed < 20 && !vanished; seed++ {
		dir := t.TempDir()
		ffs := NewFaultFS(seed)
		p := filepath.Join(dir, "seg-00000001.log")
		f, err := ffs.OpenFile(p, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		write(t, f, "data")
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		f.Close()
		ffs.Crash()
		if _, err := os.Stat(p); errors.Is(err, os.ErrNotExist) {
			vanished = true
		}
	}
	if !vanished {
		t.Fatal("20 seeds never made an un-dir-synced create vanish")
	}

	// With the directory fsynced, the file and its synced bytes persist.
	dir := t.TempDir()
	ffs := NewFaultFS(1)
	p := filepath.Join(dir, "seg-00000001.log")
	f, _ := ffs.OpenFile(p, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	write(t, f, "data")
	f.Sync()
	f.Close()
	d, err := ffs.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	d.Close()
	ffs.Crash()
	if got := readBack(t, p); got != "data" {
		t.Fatalf("dir-synced create lost: %q", got)
	}
}

func TestSustainedENOSPCThenClear(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(1)
	p := filepath.Join(dir, "f")
	f, err := ffs.OpenFile(p, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	ffs.AddRule(Rule{Op: OpWrite, Fault: FaultENOSPC}) // Count 0: every write
	for i := 0; i < 3; i++ {
		if _, err := f.Write([]byte("x")); !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("write %d = %v, want ENOSPC", i, err)
		}
	}
	ffs.ClearRules() // the operator freed disk space
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatalf("write after clear: %v", err)
	}
	f.Close()
}

func TestCrashRule(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(3)
	ffs.AddRule(Rule{Op: OpWrite, Fault: FaultCrash, After: 1, Count: 1})
	p := filepath.Join(dir, "f")
	f, err := ffs.OpenFile(p, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	write(t, f, "first")
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("second")); err == nil {
		t.Fatal("crash-armed write succeeded")
	}
	if !ffs.Crashed() {
		t.Fatal("FS not crashed after FaultCrash rule fired")
	}
	if got := readBack(t, p); got != "first" {
		t.Fatalf("content = %q, want synced prefix", got)
	}
}
