// Block index: the durable form of one sealed segment's record
// metadata. When a segment is sealed — by rotation or written by the
// compactor — its per-record index entries (device, time bounds,
// bounding box, body offset) are serialized into a sibling
// "seg-NNNNNNNN.idx" file, CRC-protected and referenced from the
// MANIFEST. Open then rebuilds a sealed segment's index by reading the
// small .idx file instead of the whole .log file, and window queries
// prune records spatially without touching the payloads.
//
// The index is strictly an accelerator: it never changes results. A
// missing, stale (size-mismatched) or corrupt index falls back to the
// full segment scan, which recovers exactly the same metadata from the
// record headers themselves — FuzzBlockIndex pins the never-wrong,
// never-panic contract.
//
// Layout (little-endian):
//
//	0..5   magic "BQSIDX"
//	6      index format version (1)
//	7      record-format version of the covered segment file
//	body:
//	  uvarint  segSize      valid bytes of the covered .log file
//	  uvarint  recordCount
//	  per record, in file order:
//	    uvarint  deviceLen, device ID bytes
//	    u32 t0, u32 t1      indexed time bounds
//	    u8  flags           bit0: a bounding box follows
//	    [4 × u32]           bbox as int32 1e-7°: minLat, minLon, maxLat, maxLon
//	    uvarint  off        body offset within the segment file
//	    uvarint  bodyLen
//	u32  crc32c over every preceding byte
package segmentlog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"github.com/trajcomp/bqs/internal/trajstore/segmentlog/vfs"
)

const (
	// idxHeaderSize is the fixed index-file header: 6 magic bytes, the
	// index format version and the covered segment's record version.
	idxHeaderSize = 8
	// idxVersion is the current block-index format version.
	idxVersion = 1
	// idxFlagBBox marks an entry that carries a bounding box.
	idxFlagBBox = 1
)

var idxMagic = [6]byte{'B', 'Q', 'S', 'I', 'D', 'X'}

// errBadIndex reports a structurally invalid block-index file; callers
// fall back to scanning the segment itself.
var errBadIndex = errors.New("segmentlog: invalid block index")

// idxName formats the canonical index file name for segment sequence n.
func idxName(n uint64) string { return fmt.Sprintf("seg-%08d.idx", n) }

// parseIdxName extracts the sequence number from a canonical index file
// name; ok is false for anything else.
func parseIdxName(name string) (uint64, bool) {
	const pre, suf = "seg-", ".idx"
	if len(name) < len(pre)+len(suf) || name[:len(pre)] != pre || name[len(name)-len(suf):] != suf {
		return 0, false
	}
	n, ok := parseSegName(name[:len(name)-len(suf)] + ".log")
	if !ok {
		return 0, false
	}
	return n, true
}

// idxPathFor derives the index file path of a segment file path.
func idxPathFor(segPath string) (string, bool) {
	n, ok := parseSegName(filepath.Base(segPath))
	if !ok {
		return "", false
	}
	return filepath.Join(filepath.Dir(segPath), idxName(n)), true
}

// formatBlockIndex renders the index of one sealed segment: its valid
// size, record-format version and per-record metadata in file order.
func formatBlockIndex(segSize int64, segVer byte, metas []recordMeta) []byte {
	out := make([]byte, 0, idxHeaderSize+16+len(metas)*32)
	out = append(out, idxMagic[:]...)
	out = append(out, idxVersion, segVer)
	out = binary.AppendUvarint(out, uint64(segSize))
	out = binary.AppendUvarint(out, uint64(len(metas)))
	for i := range metas {
		m := &metas[i]
		out = binary.AppendUvarint(out, uint64(len(m.device)))
		out = append(out, m.device...)
		out = binary.LittleEndian.AppendUint32(out, m.t0)
		out = binary.LittleEndian.AppendUint32(out, m.t1)
		if m.hasBB {
			out = append(out, idxFlagBBox)
			out = binary.LittleEndian.AppendUint32(out, uint32(m.bb.minLat))
			out = binary.LittleEndian.AppendUint32(out, uint32(m.bb.minLon))
			out = binary.LittleEndian.AppendUint32(out, uint32(m.bb.maxLat))
			out = binary.LittleEndian.AppendUint32(out, uint32(m.bb.maxLon))
		} else {
			out = append(out, 0)
		}
		out = binary.AppendUvarint(out, uint64(m.off))
		out = binary.AppendUvarint(out, uint64(m.bodyLen))
	}
	return binary.LittleEndian.AppendUint32(out, crc32.Checksum(out, castagnoli))
}

// parseBlockIndex validates and decodes a block-index file. Every
// structural defect is an error: entries must be in strictly increasing
// file order, inside the recorded segment size and individually
// plausible, so a loaded index can never address bytes a scan would not
// have indexed. (Queries still CRC-verify each record they read, so
// even a colliding-CRC forgery cannot produce wrong results — only a
// read error.)
func parseBlockIndex(data []byte) (segSize int64, segVer byte, metas []recordMeta, err error) {
	if len(data) < idxHeaderSize+4 {
		return 0, 0, nil, fmt.Errorf("%w: short file", errBadIndex)
	}
	if [6]byte(data[:6]) != idxMagic {
		return 0, 0, nil, fmt.Errorf("%w: bad magic", errBadIndex)
	}
	if data[6] != idxVersion {
		return 0, 0, nil, fmt.Errorf("%w: unsupported index version %d", errBadIndex, data[6])
	}
	segVer = data[7]
	if segVer != versionLegacy && segVer != version {
		return 0, 0, nil, fmt.Errorf("%w: unsupported segment version %d", errBadIndex, segVer)
	}
	covered := data[:len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.Checksum(covered, castagnoli); got != want {
		return 0, 0, nil, fmt.Errorf("%w: crc mismatch (%08x != %08x)", errBadIndex, got, want)
	}
	b := covered[idxHeaderSize:]
	next := func() (uint64, error) {
		v, w := binary.Uvarint(b)
		if w <= 0 {
			return 0, fmt.Errorf("%w: truncated varint", errBadIndex)
		}
		b = b[w:]
		return v, nil
	}
	size, err := next()
	if err != nil {
		return 0, 0, nil, err
	}
	if size < headerSize || size > 1<<62 {
		return 0, 0, nil, fmt.Errorf("%w: implausible segment size %d", errBadIndex, size)
	}
	segSize = int64(size)
	count, err := next()
	if err != nil {
		return 0, 0, nil, err
	}
	// Every entry costs ≥ 12 bytes on the wire; a larger count is a lie.
	if count > uint64(len(b))/12+1 {
		return 0, 0, nil, fmt.Errorf("%w: implausible record count %d", errBadIndex, count)
	}
	metas = make([]recordMeta, 0, count)
	prevEnd := int64(headerSize)
	minBody := int64(minBodySizeFor(segVer))
	for i := uint64(0); i < count; i++ {
		var m recordMeta
		devLen, err := next()
		if err != nil {
			return 0, 0, nil, err
		}
		if devLen > uint64(^uint16(0)) || devLen > uint64(len(b)) {
			return 0, 0, nil, fmt.Errorf("%w: implausible device length %d", errBadIndex, devLen)
		}
		m.device = string(b[:devLen])
		b = b[devLen:]
		if len(b) < 9 {
			return 0, 0, nil, fmt.Errorf("%w: truncated entry", errBadIndex)
		}
		m.t0 = binary.LittleEndian.Uint32(b)
		m.t1 = binary.LittleEndian.Uint32(b[4:])
		flags := b[8]
		b = b[9:]
		if flags&^byte(idxFlagBBox) != 0 {
			return 0, 0, nil, fmt.Errorf("%w: unknown entry flags %#x", errBadIndex, flags)
		}
		if m.t0 > m.t1 {
			return 0, 0, nil, fmt.Errorf("%w: inverted time bounds", errBadIndex)
		}
		if flags&idxFlagBBox != 0 {
			if len(b) < 16 {
				return 0, 0, nil, fmt.Errorf("%w: truncated bbox", errBadIndex)
			}
			m.hasBB = true
			m.bb.minLat = int32(binary.LittleEndian.Uint32(b))
			m.bb.minLon = int32(binary.LittleEndian.Uint32(b[4:]))
			m.bb.maxLat = int32(binary.LittleEndian.Uint32(b[8:]))
			m.bb.maxLon = int32(binary.LittleEndian.Uint32(b[12:]))
			b = b[16:]
			if m.bb.minLat > m.bb.maxLat || m.bb.minLon > m.bb.maxLon {
				return 0, 0, nil, fmt.Errorf("%w: inverted bbox", errBadIndex)
			}
		}
		off, err := next()
		if err != nil {
			return 0, 0, nil, err
		}
		bodyLen, err := next()
		if err != nil {
			return 0, 0, nil, err
		}
		m.off = int64(off)
		m.bodyLen = int(bodyLen)
		if int64(bodyLen) < minBody || bodyLen > MaxRecordBytes {
			return 0, 0, nil, fmt.Errorf("%w: implausible body length %d", errBadIndex, bodyLen)
		}
		if m.off < prevEnd+recordHeaderSize || m.off+int64(m.bodyLen) > segSize {
			return 0, 0, nil, fmt.Errorf("%w: entry outside segment bounds", errBadIndex)
		}
		prevEnd = m.off + int64(m.bodyLen)
		metas = append(metas, m)
	}
	if len(b) != 0 {
		return 0, 0, nil, fmt.Errorf("%w: %d trailing bytes", errBadIndex, len(b))
	}
	return segSize, segVer, metas, nil
}

// writeBlockIndex persists (and fsyncs) the index of one sealed
// segment next to it. The write is not atomic: a torn index fails the
// CRC on load and degrades to a scan, never to wrong results.
func writeBlockIndex(fsys vfs.FS, segPath string, segSize int64, segVer byte, metas []recordMeta) error {
	path, ok := idxPathFor(segPath)
	if !ok {
		return fmt.Errorf("segmentlog: %s is not a canonical segment name", segPath)
	}
	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("segmentlog: block index: %w", err)
	}
	if _, err := f.Write(formatBlockIndex(segSize, segVer, metas)); err != nil {
		_ = f.Close() // publish failed; the write error is the story
		fsys.Remove(path)
		return fmt.Errorf("segmentlog: block index: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close() // publish failed; the fsync error is the story
		fsys.Remove(path)
		return fmt.Errorf("segmentlog: block index: %w", err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(path)
		return fmt.Errorf("segmentlog: block index: %w", err)
	}
	return nil
}

// loadBlockIndex reads and validates the index of segPath, additionally
// requiring the segment file's current size to equal the indexed size —
// a sealed segment never changes, so any difference means the index
// belongs to an earlier life of the file (an unpublished rotation) and
// must not be trusted.
func loadBlockIndex(fsys vfs.FS, segPath string) (segSize int64, segVer byte, metas []recordMeta, err error) {
	path, ok := idxPathFor(segPath)
	if !ok {
		return 0, 0, nil, fmt.Errorf("%w: non-canonical segment name", errBadIndex)
	}
	data, err := fsys.ReadFile(path)
	if err != nil {
		return 0, 0, nil, fmt.Errorf("%w: %v", errBadIndex, err)
	}
	segSize, segVer, metas, err = parseBlockIndex(data)
	if err != nil {
		return 0, 0, nil, err
	}
	fi, err := fsys.Stat(segPath)
	if err != nil {
		return 0, 0, nil, fmt.Errorf("%w: %v", errBadIndex, err)
	}
	if fi.Size() != segSize {
		return 0, 0, nil, fmt.Errorf("%w: segment is %d bytes, index covers %d", errBadIndex, fi.Size(), segSize)
	}
	return segSize, segVer, metas, nil
}
