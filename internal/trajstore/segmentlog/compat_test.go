package segmentlog

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// v1Fixture is a checked-in pre-block-index log directory written by
// the version-1 code: a format-1 MANIFEST and four version-1 segment
// files (no record bounding boxes, no .idx files) holding three
// spatially separated devices — alpha near (10°, 20°), bravo near
// (-5°, 30°), charlie near (48°, 2°).
const v1Fixture = "testdata/v1log"

// copyFixture clones the fixture into a fresh temp dir so writable
// opens cannot touch the checked-in bytes.
func copyFixture(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	entries, err := os.ReadDir(v1Fixture)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		src, err := os.Open(filepath.Join(v1Fixture, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		dst, err := os.Create(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(dst, src); err != nil {
			t.Fatal(err)
		}
		src.Close()
		if err := dst.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// fixtureWindows are the windows the compat test compares across the
// fallback and indexed paths: one per device, one spanning all, one
// empty, one time-restricted.
var fixtureWindows = []struct {
	name                   string
	minX, minY, maxX, maxY float64
	t0, t1                 uint32
}{
	{"alpha", 19.9, 9.9, 20.1, 10.1, 0, math.MaxUint32},
	{"bravo", 29.9, -5.1, 30.1, -4.9, 0, math.MaxUint32},
	{"charlie", 1.9, 47.9, 2.1, 48.1, 0, math.MaxUint32},
	{"all", -180, -90, 180, 90, 0, math.MaxUint32},
	{"empty", 100, 60, 110, 70, 0, math.MaxUint32},
	{"early", -180, -90, 180, 90, 0, 1500},
}

// TestV1FixtureFallbackQueries: the pre-index fixture opens cleanly —
// read-only and writable — and answers window queries through the
// decode-everything fallback, matching the brute-force reference.
func TestV1FixtureFallbackQueries(t *testing.T) {
	dir := copyFixture(t)
	ro := mustOpen(t, dir, Options{ReadOnly: true})
	s := ro.Stats()
	if s.IndexedSegs != 0 {
		t.Fatalf("fixture unexpectedly has block indexes: %+v", s)
	}
	if s.Records != 18 || s.Devices != 3 {
		t.Fatalf("fixture contents changed: %+v", s)
	}
	for _, w := range fixtureWindows {
		got, ws, err := ro.QueryWindowStats(w.minX, w.minY, w.maxX, w.maxY, w.t0, w.t1)
		if err != nil {
			t.Fatalf("%s: %v", w.name, err)
		}
		want := bruteWindow(t, ro, w.minX, w.minY, w.maxX, w.maxY, w.t0, w.t1)
		if !reflect.DeepEqual(byDevice(got), want) {
			t.Fatalf("%s: fallback window results diverge from brute force", w.name)
		}
		// Legacy records carry no bbox: nothing can be spatially pruned,
		// every time-eligible record is decoded.
		if ws.RecordsDecoded != ws.RecordsIndexed-ws.RecordsPruned {
			t.Fatalf("%s: inconsistent stats %+v", w.name, ws)
		}
	}
	if err := ro.Close(); err != nil {
		t.Fatal(err)
	}

	// A writable open seals the legacy active segment (appends must not
	// extend a version-1 file) and answers identically.
	lw := mustOpen(t, dir, Options{})
	defer lw.Close()
	if s := lw.Stats(); s.Records != 18 || s.Truncated != 0 {
		t.Fatalf("writable open changed the fixture: %+v", s)
	}
	for _, w := range fixtureWindows {
		got, err := lw.QueryWindow(w.minX, w.minY, w.maxX, w.maxY, w.t0, w.t1)
		if err != nil {
			t.Fatalf("%s: %v", w.name, err)
		}
		if !reflect.DeepEqual(byDevice(got), bruteWindow(t, lw, w.minX, w.minY, w.maxX, w.maxY, w.t0, w.t1)) {
			t.Fatalf("%s: writable-open window results diverge", w.name)
		}
	}
	if err := lw.Append("delta", cellKeys(3, 0, 8)); err != nil {
		t.Fatalf("append after legacy adoption: %v", err)
	}
}

// TestV1FixtureUpgradeIdentical: compacting the fixture upgrades it to
// the current format (bboxes + block indexes) and the indexed path
// returns byte-identical results to the fallback path, before and
// after a reopen through the block indexes.
func TestV1FixtureUpgradeIdentical(t *testing.T) {
	dir := copyFixture(t)
	l := mustOpen(t, dir, Options{})

	type result map[string][]Record
	snap := func(stage string, l *Log) []result {
		t.Helper()
		var out []result
		for _, w := range fixtureWindows {
			got, err := l.QueryWindow(w.minX, w.minY, w.maxX, w.maxY, w.t0, w.t1)
			if err != nil {
				t.Fatalf("%s/%s: %v", stage, w.name, err)
			}
			out = append(out, byDevice(got))
		}
		return out
	}
	before := snap("fallback", l)

	// A no-op policy still rewrites: legacy segments need the upgrade.
	res, err := l.Compact(CompactionPolicy{NoDedup: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Gen == 0 {
		t.Fatal("compaction skipped the legacy upgrade rewrite")
	}
	if res.RecordsOut != res.RecordsIn {
		t.Fatalf("upgrade pass changed record count: %d → %d", res.RecordsIn, res.RecordsOut)
	}
	if s := l.Stats(); s.IndexedSegs == 0 {
		t.Fatalf("upgrade produced no block indexes: %+v", s)
	}
	if !reflect.DeepEqual(snap("indexed", l), before) {
		t.Fatal("indexed path diverges from the fallback path")
	}
	// The indexed path must actually prune now.
	_, ws, err := l.QueryWindowStats(fixtureWindows[0].minX, fixtureWindows[0].minY,
		fixtureWindows[0].maxX, fixtureWindows[0].maxY, 0, math.MaxUint32)
	if err != nil {
		t.Fatal(err)
	}
	if ws.RecordsDecoded >= 18 {
		t.Fatalf("upgraded log decoded all %d records on a selective window", ws.RecordsDecoded)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen loads sealed segments through the indexes; same answers.
	l2 := mustOpen(t, dir, Options{})
	defer l2.Close()
	if s := l2.Stats(); s.IndexedSegs != s.Segments-1 {
		t.Fatalf("reopen did not use the block indexes: %+v", s)
	}
	if !reflect.DeepEqual(snap("reopened", l2), before) {
		t.Fatal("window results changed across the upgrade reopen")
	}
	// A second compaction tick with the same policy is now a no-op.
	res2, err := l2.Compact(CompactionPolicy{NoDedup: true})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Gen != 0 {
		t.Fatal("upgraded log was rewritten again by an identical policy")
	}
}

// TestParseBlockIndexRejections walks the parser's structural-defect
// branches deterministically (the fuzz target explores them too, but
// its corpus does not travel with the repository).
func TestParseBlockIndexRejections(t *testing.T) {
	metas := []recordMeta{
		{device: "a", off: headerSize + recordHeaderSize, bodyLen: 40, t0: 1, t1: 2,
			bb: bbox{minLat: -1, minLon: -2, maxLat: 3, maxLon: 4}, hasBB: true},
	}
	valid := formatBlockIndex(headerSize+recordHeaderSize+40, version, metas)
	if _, _, _, err := parseBlockIndex(valid); err != nil {
		t.Fatalf("canonical index rejected: %v", err)
	}
	corrupt := func(mutate func([]byte) []byte) []byte {
		mut := mutate(append([]byte(nil), valid...))
		// Re-seal the CRC so the parser reaches the structural checks.
		mut = mut[:len(mut)-4]
		return formatBlockIndexReseal(mut)
	}
	cases := map[string][]byte{
		"short":           {1, 2, 3},
		"bad magic":       append([]byte("NOTIDX\x01\x02"), valid[8:]...),
		"bad idx version": corrupt(func(b []byte) []byte { b[6] = 9; return b }),
		"bad seg version": corrupt(func(b []byte) []byte { b[7] = 7; return b }),
		"crc mismatch":    append(append([]byte(nil), valid[:len(valid)-1]...), valid[len(valid)-1]^0xff),
		"trailing bytes":  corrupt(func(b []byte) []byte { return append(b, 0xaa) }),
	}
	for name, data := range cases {
		if _, _, _, err := parseBlockIndex(data); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Field-level defects, built by formatting metas that violate the
	// invariants (the formatter writes whatever it is given).
	bad := []struct {
		name string
		size int64
		ms   []recordMeta
	}{
		{"tiny segment size", 4, metas},
		{"entry before data start", 64, []recordMeta{{device: "a", off: 2, bodyLen: 20, t0: 1, t1: 2}}},
		{"entry past segment end", 64, []recordMeta{{device: "a", off: 16, bodyLen: 400, t0: 1, t1: 2}}},
		{"overlapping entries", 200, []recordMeta{
			{device: "a", off: 16, bodyLen: 40, t0: 1, t1: 2},
			{device: "a", off: 40, bodyLen: 40, t0: 1, t1: 2}}},
		{"inverted times", 200, []recordMeta{{device: "a", off: 16, bodyLen: 40, t0: 9, t1: 2}}},
		{"inverted bbox", 200, []recordMeta{{device: "a", off: 16, bodyLen: 40, t0: 1, t1: 2,
			bb: bbox{minLat: 5, maxLat: -5}, hasBB: true}}},
		{"implausible bodyLen", 1 << 40, []recordMeta{{device: "a", off: 16, bodyLen: MaxRecordBytes + 1, t0: 1, t1: 2}}},
	}
	for _, c := range bad {
		if _, _, _, err := parseBlockIndex(formatBlockIndex(c.size, version, c.ms)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

// formatBlockIndexReseal re-appends a valid CRC to mutated index bytes.
func formatBlockIndexReseal(b []byte) []byte {
	return binary.LittleEndian.AppendUint32(b, crc32.Checksum(b, castagnoli))
}

// TestParseManifestRejections covers the v2 field grammar: unknown
// fields, malformed summaries, and v1 strictness.
func TestParseManifestRejections(t *testing.T) {
	seal := func(body string) []byte {
		covered := []byte(body)
		return []byte(fmt.Sprintf("%scrc %08x\n", covered, crc32.Checksum(covered, castagnoli)))
	}
	reject := []struct{ name, body string }{
		{"unknown field", "BQSMANIFEST 2\ngen 1\nseg seg-00000001.log bogus\n"},
		{"field after sum", "BQSMANIFEST 2\ngen 1\nseg seg-00000001.log sum=1,2,3 idx\n"},
		{"sum wrong arity", "BQSMANIFEST 2\ngen 1\nseg seg-00000001.log sum=1,2\n"},
		{"sum zero records", "BQSMANIFEST 2\ngen 1\nseg seg-00000001.log sum=0,2,3\n"},
		{"sum inverted time", "BQSMANIFEST 2\ngen 1\nseg seg-00000001.log sum=1,9,3\n"},
		{"sum inverted bbox", "BQSMANIFEST 2\ngen 1\nseg seg-00000001.log sum=1,2,3,5,0,-5,0\n"},
		{"sum non-numeric", "BQSMANIFEST 2\ngen 1\nseg seg-00000001.log sum=1,2,x\n"},
		{"sum bbox overflow", "BQSMANIFEST 2\ngen 1\nseg seg-00000001.log sum=1,2,3,99999999999,0,99999999999,0\n"},
		{"v1 with idx field", "BQSMANIFEST 1\ngen 1\nseg seg-00000001.log idx\n"},
		{"bad magic", "BQSMANIFEST 3\ngen 1\nseg seg-00000001.log\n"},
	}
	for _, c := range reject {
		if _, err := parseManifest(seal(c.body)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	// And the full v2 grammar parses.
	m, err := parseManifest(seal("BQSMANIFEST 2\ngen 4\nseg seg-00000002.log idx sum=3,10,20,-5,-6,7,8\nseg seg-00000001.log\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Segs) != 2 || !m.Segs[0].Idx || m.Segs[0].Sum == nil || m.Segs[0].Sum.records != 3 || !m.Segs[0].Sum.bbAll {
		t.Fatalf("v2 manifest misparsed: %+v", m)
	}
	if m.Segs[1].Idx || m.Segs[1].Sum != nil {
		t.Fatalf("bare seg line misparsed: %+v", m.Segs[1])
	}
}
