package segmentlog

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"github.com/trajcomp/bqs/internal/trajstore"
	"github.com/trajcomp/bqs/internal/trajstore/segmentlog/vfs"
)

// genKeys builds a deterministic trajectory of n key points. Coordinates
// are exact multiples of 1e-7 degrees, so encode→decode equality is
// exact and reflect.DeepEqual works.
func genKeys(seed, n int) []trajstore.GeoKey {
	keys := make([]trajstore.GeoKey, n)
	lat := int64(seed * 1001)
	lon := int64(-seed * 2003)
	t := uint32(seed * 10)
	for i := range keys {
		lat += int64((seed+i)%17 - 8)
		lon += int64((seed*3+i)%23 - 11)
		t += uint32(i%5 + 1)
		keys[i] = trajstore.GeoKey{Lat: float64(lat) / 1e7, Lon: float64(lon) / 1e7, T: t}
	}
	return keys
}

func mustOpen(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// queryAll returns every record of a device.
func queryAll(t *testing.T, l *Log, device string) []Record {
	t.Helper()
	recs, err := l.Query(device, 0, ^uint32(0))
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestAppendQueryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})

	want := map[string][][]trajstore.GeoKey{}
	for d := 0; d < 5; d++ {
		dev := fmt.Sprintf("dev-%d", d)
		for r := 0; r < 4; r++ {
			keys := genKeys(d*10+r+1, 20+r)
			if err := l.Append(dev, keys); err != nil {
				t.Fatal(err)
			}
			want[dev] = append(want[dev], keys)
		}
	}
	// Queries must see unsynced (buffered) records too.
	for dev, trajs := range want {
		recs := queryAll(t, l, dev)
		if len(recs) != len(trajs) {
			t.Fatalf("%s: %d records before sync, want %d", dev, len(recs), len(trajs))
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the index is rebuilt by scanning, contents identical.
	l2 := mustOpen(t, dir, Options{})
	defer l2.Close()
	if s := l2.Stats(); s.Records != 20 || s.Devices != 5 || s.Truncated != 0 {
		t.Fatalf("reopened stats = %+v", s)
	}
	for dev, trajs := range want {
		recs := queryAll(t, l2, dev)
		if len(recs) != len(trajs) {
			t.Fatalf("%s: %d records, want %d", dev, len(recs), len(trajs))
		}
		for i, rec := range recs {
			if rec.Device != dev {
				t.Fatalf("%s[%d]: device %q", dev, i, rec.Device)
			}
			if !reflect.DeepEqual(rec.Keys, trajs[i]) {
				t.Fatalf("%s[%d]: keys differ\nwant %v\ngot  %v", dev, i, trajs[i], rec.Keys)
			}
		}
	}

	// Time-range filtering: a window covering only the first trajectory.
	first := want["dev-0"][0]
	recs, err := l2.Query("dev-0", first[0].T, first[0].T)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("time-window query missed the covering record")
	}
	for _, r := range recs {
		if r.T0 > first[0].T || r.T1 < first[0].T {
			t.Fatalf("record [%d,%d] does not overlap %d", r.T0, r.T1, first[0].T)
		}
	}
	if _, err := l2.Query("dev-0", first[len(first)-1].T+1e6, first[len(first)-1].T+2e6); err != nil {
		t.Fatal(err)
	}
}

func TestRotation(t *testing.T) {
	dir := t.TempDir()
	// Tiny threshold: every append rotates.
	l := mustOpen(t, dir, Options{MaxSegmentBytes: 256})
	const n = 12
	for i := 0; i < n; i++ {
		if err := l.Append("dev", genKeys(i+1, 30)); err != nil {
			t.Fatal(err)
		}
	}
	if s := l.Stats(); s.Segments < 3 {
		t.Fatalf("expected rotation to create several segments, got %d", s.Segments)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := mustOpen(t, dir, Options{MaxSegmentBytes: 256})
	defer l2.Close()
	recs := queryAll(t, l2, "dev")
	if len(recs) != n {
		t.Fatalf("recovered %d records across segments, want %d", len(recs), n)
	}
	for i, rec := range recs {
		if !reflect.DeepEqual(rec.Keys, genKeys(i+1, 30)) {
			t.Fatalf("record %d differs after rotation+reopen", i)
		}
	}
}

// copyDir clones a log directory so destructive edits don't touch the
// original.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestCrashRecoveryArbitraryOffsets is the injected-failure test of the
// acceptance criteria: it builds a synced log, then simulates a crash
// that kills the write at EVERY possible byte offset of the final
// segment, reopens, and checks the prefix property — every record whose
// bytes fully precede the cut decodes byte-identically, the torn tail is
// dropped, and the recovered log accepts new appends.
func TestCrashRecoveryArbitraryOffsets(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	const n = 8
	trajs := make([][]trajstore.GeoKey, n)
	ends := make([]int64, n) // file size after each record: record i ends at ends[i]
	segPath := filepath.Join(dir, "seg-00000001.log")
	for i := range trajs {
		trajs[i] = genKeys(i+1, 10+i)
		if err := l.Append("dev", trajs[i]); err != nil {
			t.Fatal(err)
		}
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
		fi, err := os.Stat(segPath)
		if err != nil {
			t.Fatal(err)
		}
		ends[i] = fi.Size()
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	total := ends[n-1]

	for cut := int64(0); cut <= total; cut++ {
		crashed := copyDir(t, dir)
		if err := os.Truncate(filepath.Join(crashed, "seg-00000001.log"), cut); err != nil {
			t.Fatal(err)
		}
		rl, err := Open(crashed, Options{})
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		survive := 0
		for _, end := range ends {
			if end <= cut {
				survive++
			}
		}
		recs := queryAll(t, rl, "dev")
		if len(recs) != survive {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(recs), survive)
		}
		for i, rec := range recs {
			if !reflect.DeepEqual(rec.Keys, trajs[i]) {
				t.Fatalf("cut %d: record %d corrupted by recovery", cut, i)
			}
		}
		if cut >= headerSize {
			// A cut mid-record drops exactly the bytes past the last
			// complete record.
			keep := int64(headerSize)
			if survive > 0 {
				keep = ends[survive-1]
			}
			if s := rl.Stats(); s.Truncated != cut-keep {
				t.Fatalf("cut %d: Truncated = %d, want %d", cut, s.Truncated, cut-keep)
			}
		}
		// Recovery leaves an appendable log: new records land after the
		// kept prefix and survive another reopen.
		extra := genKeys(99, 7)
		if err := rl.Append("dev", extra); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		if err := rl.Close(); err != nil {
			t.Fatalf("cut %d: close after recovery: %v", cut, err)
		}
		rl2, err := Open(crashed, Options{})
		if err != nil {
			t.Fatalf("cut %d: second reopen: %v", cut, err)
		}
		recs = queryAll(t, rl2, "dev")
		if len(recs) != survive+1 {
			t.Fatalf("cut %d: %d records after post-recovery append, want %d", cut, len(recs), survive+1)
		}
		if !reflect.DeepEqual(recs[len(recs)-1].Keys, extra) {
			t.Fatalf("cut %d: post-recovery append corrupted", cut)
		}
		rl2.Close()
	}
}

// TestCrashRecoveryBitFlip corrupts one byte inside an early record: the
// scan must drop that record and everything after it in the same file
// (sequential recovery cannot trust anything past the first bad CRC) but
// keep prior records.
func TestCrashRecoveryBitFlip(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	var ends []int64
	segPath := filepath.Join(dir, "seg-00000001.log")
	for i := 0; i < 4; i++ {
		if err := l.Append("dev", genKeys(i+1, 12)); err != nil {
			t.Fatal(err)
		}
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
		fi, err := os.Stat(segPath)
		if err != nil {
			t.Fatal(err)
		}
		ends = append(ends, fi.Size())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	crashed := copyDir(t, dir)
	path := filepath.Join(crashed, "seg-00000001.log")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[ends[1]+12] ^= 0x40 // inside record 2's body
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	rl := mustOpen(t, crashed, Options{})
	defer rl.Close()
	recs := queryAll(t, rl, "dev")
	if len(recs) != 2 {
		t.Fatalf("recovered %d records after bit flip, want 2", len(recs))
	}
	for i, rec := range recs {
		if !reflect.DeepEqual(rec.Keys, genKeys(i+1, 12)) {
			t.Fatalf("record %d corrupted", i)
		}
	}
	if s := rl.Stats(); s.Truncated == 0 {
		t.Fatalf("expected truncated bytes after bit flip, stats %+v", s)
	}
}

// TestTornHeader simulates a rotation where the new segment's manifest
// entry became durable but its header bytes did not (the header write is
// not fsync'd at creation): the referenced file is shorter than a
// header and recovery must reset it to an empty appendable segment.
func TestTornHeader(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	if err := l.Append("dev", genKeys(1, 10)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// A second, manifest-referenced segment whose header write was cut
	// short.
	if err := os.WriteFile(filepath.Join(dir, "seg-00000002.log"), []byte("BQS"), 0o644); err != nil {
		t.Fatal(err)
	}
	man, found, err := readManifest(vfs.OS, dir)
	if err != nil || !found {
		t.Fatalf("readManifest: %v found=%v", err, found)
	}
	man.Gen++
	man.Segs = append(man.Segs, manifestSeg{Name: "seg-00000002.log"})
	if err := writeManifest(vfs.OS, dir, man); err != nil {
		t.Fatal(err)
	}
	l2 := mustOpen(t, dir, Options{})
	defer l2.Close()
	if s := l2.Stats(); s.Segments != 2 || s.Records != 1 {
		t.Fatalf("stats after torn-header recovery: %+v", s)
	}
	if recs := queryAll(t, l2, "dev"); len(recs) != 1 {
		t.Fatalf("lost the intact record: %d", len(recs))
	}
	// The rewritten file is appendable.
	if err := l2.Append("dev2", genKeys(2, 5)); err != nil {
		t.Fatal(err)
	}
	if recs := queryAll(t, l2, "dev2"); len(recs) != 1 {
		t.Fatal("append into recovered torn-header segment failed")
	}
}

func TestBadMagicRejected(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "seg-00000001.log"), []byte("NOTALOGFILE!"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted a file with bad magic")
	}
}

func TestClosedSemantics(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal("second Close should be a no-op, got", err)
	}
	if err := l.Append("d", genKeys(1, 3)); err != ErrClosed {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
	if err := l.Sync(); err != ErrClosed {
		t.Fatalf("Sync after Close = %v, want ErrClosed", err)
	}
	if _, err := l.Query("d", 0, 1); err != ErrClosed {
		t.Fatalf("Query after Close = %v, want ErrClosed", err)
	}
}

func TestEmptyAppendIgnored(t *testing.T) {
	l := mustOpen(t, t.TempDir(), Options{})
	defer l.Close()
	if err := l.Append("dev", nil); err != nil {
		t.Fatal(err)
	}
	if s := l.Stats(); s.Records != 0 {
		t.Fatalf("empty append stored a record: %+v", s)
	}
}

func TestDeviceSpan(t *testing.T) {
	l := mustOpen(t, t.TempDir(), Options{})
	defer l.Close()
	if err := l.Append("dev", []trajstore.GeoKey{{Lat: 1e-7, Lon: 2e-7, T: 100}, {Lat: 3e-7, Lon: 4e-7, T: 200}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append("dev", []trajstore.GeoKey{{Lat: 1e-7, Lon: 2e-7, T: 50}, {Lat: 3e-7, Lon: 4e-7, T: 80}}); err != nil {
		t.Fatal(err)
	}
	n, t0, t1, ok := l.DeviceSpan("dev")
	if !ok || n != 2 || t0 != 50 || t1 != 200 {
		t.Fatalf("DeviceSpan = (%d, %d, %d, %v)", n, t0, t1, ok)
	}
	if _, _, _, ok := l.DeviceSpan("nope"); ok {
		t.Fatal("DeviceSpan found an unknown device")
	}
}

// TestConcurrentAppendQuery exercises the locking under -race: many
// goroutines appending distinct devices while others query and sync.
func TestConcurrentAppendQuery(t *testing.T) {
	l := mustOpen(t, t.TempDir(), Options{MaxSegmentBytes: 4096})
	defer l.Close()
	const writers = 8
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dev := fmt.Sprintf("dev-%d", w)
			for i := 0; i < 25; i++ {
				if err := l.Append(dev, genKeys(w*100+i+1, 8)); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
				if i%10 == 0 {
					if _, err := l.Query(dev, 0, ^uint32(0)); err != nil {
						t.Errorf("Query: %v", err)
						return
					}
				}
				if i%7 == 0 {
					if err := l.Sync(); err != nil {
						t.Errorf("Sync: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if s := l.Stats(); s.Records != writers*25 {
		t.Fatalf("Records = %d, want %d", s.Records, writers*25)
	}
	for w := 0; w < writers; w++ {
		recs := queryAll(t, l, fmt.Sprintf("dev-%d", w))
		if len(recs) != 25 {
			t.Fatalf("dev-%d: %d records, want 25", w, len(recs))
		}
		for i, rec := range recs {
			if !reflect.DeepEqual(rec.Keys, genKeys(w*100+i+1, 8)) {
				t.Fatalf("dev-%d record %d corrupted", w, i)
			}
		}
	}
}

// TestRotationFailureKeepsOldActive is the failed-rotation bugfix test:
// when creating the next segment fails, the old segment must stay
// active and writable — previously the old handle was closed first,
// leaving every later Append/Sync failing on a closed fd while the
// record was already indexed. Rotation failures do not fail the append
// (the record is retained either way — see Append's contract), so the
// blocked state is observed through Stats: the log keeps accepting and
// serving records in a single segment until the blocker is removed.
func TestRotationFailureKeepsOldActive(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{MaxSegmentBytes: 256})
	defer l.Close()

	// Block the next segment's path with a directory: O_CREATE|O_EXCL
	// fails deterministically, even running as root.
	blocker := filepath.Join(dir, segName(2))
	if err := os.Mkdir(blocker, 0o755); err != nil {
		t.Fatal(err)
	}

	var appended [][]trajstore.GeoKey
	for i := 0; i < 8; i++ {
		keys := genKeys(i+1, 12)
		if err := l.Append("dev", keys); err != nil {
			t.Fatalf("append %d: %v (rotation failures must not fail the append)", i, err)
		}
		appended = append(appended, keys)
		// The log must remain fully usable after each blocked rotation
		// attempt: the old segment is still active, so Sync keeps working.
		if err := l.Sync(); err != nil {
			t.Fatalf("Sync after failed rotation: %v", err)
		}
	}
	// 8 records × ~12 keys each far exceed MaxSegmentBytes=256, so
	// rotation was attempted and blocked: everything is still in the
	// one writable segment.
	if s := l.Stats(); s.Segments != 1 {
		t.Fatalf("Segments = %d while rotation is blocked, want 1", s.Segments)
	}
	recs := queryAll(t, l, "dev")
	if len(recs) != len(appended) {
		t.Fatalf("%d records after failed rotations, want %d", len(recs), len(appended))
	}
	for i, rec := range recs {
		if !reflect.DeepEqual(rec.Keys, appended[i]) {
			t.Fatalf("record %d corrupted across failed rotation", i)
		}
	}

	// Unblock: the next append retries rotation and succeeds.
	if err := os.Remove(blocker); err != nil {
		t.Fatal(err)
	}
	extra := genKeys(99, 12)
	if err := l.Append("dev", extra); err != nil {
		t.Fatalf("append after unblocking: %v", err)
	}
	if s := l.Stats(); s.Segments < 2 {
		t.Fatalf("rotation did not resume after unblocking: %+v", s)
	}

	// Everything survives a reopen.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2 := mustOpen(t, dir, Options{MaxSegmentBytes: 256})
	defer l2.Close()
	if recs := queryAll(t, l2, "dev"); len(recs) != len(appended)+1 {
		t.Fatalf("recovered %d records, want %d", len(recs), len(appended)+1)
	}
}

// TestLockExcludesSecondWriter is the inter-process-exclusion bugfix
// test: a second writable Open must fail with ErrLocked while the first
// holds the directory, a read-only open must succeed, and the lock must
// be released by Close.
func TestLockExcludesSecondWriter(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	if err := l.Append("dev", genKeys(1, 6)); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(dir, Options{}); !errors.Is(err, ErrLocked) {
		t.Fatalf("second writable Open = %v, want ErrLocked", err)
	}
	ro := mustOpen(t, dir, Options{ReadOnly: true})
	if recs := queryAll(t, ro, "dev"); len(recs) != 1 {
		t.Fatalf("read-only open of a locked dir saw %d records", len(recs))
	}
	ro.Close()

	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open after Close: %v", err)
	}
	l2.Close()
}

// TestReadOnlySemantics: a read-only open never modifies the directory
// — a torn tail is detected but left in place — and mutating operations
// return ErrReadOnly.
func TestReadOnlySemantics(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	if err := l.Append("dev", genKeys(1, 10)); err != nil {
		t.Fatal(err)
	}
	if err := l.Append("dev", genKeys(2, 10)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segName(1))
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	torn := fi.Size() - 3
	if err := os.Truncate(seg, torn); err != nil {
		t.Fatal(err)
	}

	ro := mustOpen(t, dir, Options{ReadOnly: true})
	if s := ro.Stats(); s.Truncated == 0 || s.Records != 1 {
		t.Fatalf("read-only stats on torn log: %+v", s)
	}
	if recs := queryAll(t, ro, "dev"); len(recs) != 1 {
		t.Fatalf("read-only query saw %d records, want the intact one", len(recs))
	}
	if err := ro.Append("dev", genKeys(3, 4)); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Append = %v, want ErrReadOnly", err)
	}
	if err := ro.Sync(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Sync = %v, want ErrReadOnly", err)
	}
	if err := ro.Close(); err != nil {
		t.Fatal(err)
	}
	// Nothing on disk changed: same size, torn tail still present.
	if fi, err := os.Stat(seg); err != nil || fi.Size() != torn {
		t.Fatalf("read-only open modified the segment (size %d, want %d): %v", fi.Size(), torn, err)
	}

	// A read-only open of a missing directory errors instead of
	// creating it.
	missing := filepath.Join(t.TempDir(), "nope")
	if _, err := Open(missing, Options{ReadOnly: true}); err == nil {
		t.Fatal("read-only open conjured a missing directory")
	}
	if _, err := os.Stat(missing); !os.IsNotExist(err) {
		t.Fatal("read-only open created the directory")
	}
}

// TestSealedMidFileCorruptionRefused: a writable Open must not truncate
// a NON-final (sealed, long-lived) segment at a mid-file bad record
// when valid records follow — that would silently destroy durable data.
// A read-only open still salvages the readable prefix, and a genuine
// torn tail (nothing valid after the cut) is still truncated.
func TestSealedMidFileCorruptionRefused(t *testing.T) {
	build := func(t *testing.T) (string, []int64) {
		dir := t.TempDir()
		l := mustOpen(t, dir, Options{MaxSegmentBytes: 1 << 20})
		var ends []int64
		seg := filepath.Join(dir, segName(1))
		for i := 0; i < 4; i++ {
			if err := l.Append("dev", genKeys(i+1, 12)); err != nil {
				t.Fatal(err)
			}
			if err := l.Sync(); err != nil {
				t.Fatal(err)
			}
			fi, err := os.Stat(seg)
			if err != nil {
				t.Fatal(err)
			}
			ends = append(ends, fi.Size())
		}
		// Seal segment 1 by forcing a rotation via a fresh tiny-threshold
		// open cycle: reopen with a small threshold and append once.
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		l2 := mustOpen(t, dir, Options{MaxSegmentBytes: ends[3] + 1})
		// The first append lands in segment 1 and triggers rotation; the
		// second lands in the fresh segment 2.
		if err := l2.Append("dev", genKeys(9, 12)); err != nil {
			t.Fatal(err)
		}
		if err := l2.Append("dev", genKeys(10, 12)); err != nil {
			t.Fatal(err)
		}
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
		return dir, ends
	}

	t.Run("mid-file", func(t *testing.T) {
		dir, ends := build(t)
		seg := filepath.Join(dir, segName(1))
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		data[ends[1]+12] ^= 0x40 // inside record 3 of the sealed segment
		if err := os.WriteFile(seg, data, 0o644); err != nil {
			t.Fatal(err)
		}
		// With the sealed block index live, Open does not re-read the
		// segment bytes, so it succeeds — but nothing is silently lost:
		// reading the rotten record fails loudly with ErrCorrupt (the
		// per-read CRC check), and the intact records stay readable.
		l := mustOpen(t, dir, Options{})
		if _, err := l.Query("dev", 0, ^uint32(0)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Query over a bit-rotted record = %v, want ErrCorrupt", err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		// Without the index the segment must be rescanned. Sealed
		// segments load lazily, so the writable Open itself succeeds —
		// the scan runs at first query touch, and must refuse to
		// truncate a sealed segment mid-file.
		idxPath, ok := idxPathFor(seg)
		if !ok {
			t.Fatal("no index path for segment 1")
		}
		if err := os.Remove(idxPath); err != nil {
			t.Fatal(err)
		}
		lw := mustOpen(t, dir, Options{})
		if _, err := lw.Query("dev", 0, ^uint32(0)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("query forcing scan of mid-file-corrupt sealed segment = %v, want ErrCorrupt", err)
		}
		if err := lw.Close(); err != nil {
			t.Fatal(err)
		}
		// Read-only salvage still works and reports the loss.
		ro := mustOpen(t, dir, Options{ReadOnly: true})
		defer ro.Close()
		if recs := queryAll(t, ro, "dev"); len(recs) < 2 {
			t.Fatalf("read-only salvage lost the valid prefix: %d records", len(recs))
		}
		if s := ro.Stats(); s.Truncated == 0 {
			t.Fatal("read-only open did not report the corrupt span")
		}
	})

	t.Run("torn-tail", func(t *testing.T) {
		dir, ends := build(t)
		seg := filepath.Join(dir, segName(1))
		// Cut mid-record: everything after the cut is garbage, so the
		// sealed segment's tail is legitimately torn (unsynced-rotation
		// crash shape) and may be truncated.
		if err := os.Truncate(seg, ends[2]+5); err != nil {
			t.Fatal(err)
		}
		l := mustOpen(t, dir, Options{})
		defer l.Close()
		if recs := queryAll(t, l, "dev"); len(recs) != 4 { // 3 salvaged + 1 in segment 2
			t.Fatalf("torn-tail recovery kept %d records, want 4", len(recs))
		}
		if s := l.Stats(); s.Truncated == 0 {
			t.Fatal("torn tail not counted")
		}
	})
}
