package segmentlog

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/trajcomp/bqs/internal/trajstore"
	"github.com/trajcomp/bqs/internal/trajstore/segmentlog/vfs"
)

// cellKeys builds record r of device d: a small trajectory confined to
// the 0.01°-wide cell at (0.1·d, 0.1·d) degrees, with timestamps
// 1000+100·r onward shared across devices (so purely spatial windows
// are not accidentally time-pruned). Coordinates are exact multiples of
// 1e-7°, so encode→decode equality is exact.
func cellKeys(d, r, n int) []trajstore.GeoKey {
	lat0 := int64(d) * 1_000_000 // 0.1° in 1e-7 units
	lon0 := int64(d) * 1_000_000
	t := uint32(1000 + 100*r)
	keys := make([]trajstore.GeoKey, n)
	for i := range keys {
		lat := lat0 + int64(r*1000+i*10)
		lon := lon0 + int64(r*700+i*13)
		keys[i] = trajstore.GeoKey{Lat: float64(lat) / 1e7, Lon: float64(lon) / 1e7, T: t}
		t += uint32(i%3 + 1)
	}
	return keys
}

// cellWindow returns a window covering the cells of devices [lo, hi],
// with a margin that keeps boundaries off the coordinate grid.
func cellWindow(lo, hi int) (minX, minY, maxX, maxY float64) {
	min := 0.1*float64(lo) - 0.005
	max := 0.1*float64(hi) + 0.015
	return min, min, max, max
}

// fillCells appends recs records of n keys for each of devs devices.
func fillCells(t *testing.T, l *Log, devs, recs, n int) {
	t.Helper()
	for r := 0; r < recs; r++ {
		for d := 0; d < devs; d++ {
			if err := l.Append(fmt.Sprintf("dev-%03d", d), cellKeys(d, r, n)); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// bruteWindow computes the expected QueryWindow result by decoding
// every record of every device and applying the exact predicate — the
// reference the pruned path must match.
func bruteWindow(t *testing.T, l *Log, minX, minY, maxX, maxY float64, t0, t1 uint32) map[string][]Record {
	t.Helper()
	out := make(map[string][]Record)
	for _, dev := range l.Devices() {
		for _, rec := range queryAll(t, l, dev) {
			if windowMatch(rec.Keys, minX, minY, maxX, maxY, t0, t1) {
				out[dev] = append(out[dev], rec)
			}
		}
	}
	return out
}

// byDevice regroups a QueryWindow result per device, preserving order.
func byDevice(recs []Record) map[string][]Record {
	out := make(map[string][]Record)
	for _, r := range recs {
		out[r.Device] = append(out[r.Device], r)
	}
	return out
}

// checkWindow asserts QueryWindow equals the brute-force reference for
// one window and returns the stats.
func checkWindow(t *testing.T, l *Log, minX, minY, maxX, maxY float64, t0, t1 uint32) WindowStats {
	t.Helper()
	got, ws, err := l.QueryWindowStats(minX, minY, maxX, maxY, t0, t1)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteWindow(t, l, minX, minY, maxX, maxY, t0, t1)
	gotBy := byDevice(got)
	if len(gotBy) != len(want) {
		t.Fatalf("window [%g,%g]×[%g,%g]: devices %d, want %d", minX, maxX, minY, maxY, len(gotBy), len(want))
	}
	for dev, recs := range want {
		if !reflect.DeepEqual(gotBy[dev], recs) {
			t.Fatalf("window results for %s diverge from brute force:\ngot  %+v\nwant %+v", dev, gotBy[dev], recs)
		}
	}
	if ws.RecordsMatched != len(got) {
		t.Fatalf("stats matched %d, returned %d", ws.RecordsMatched, len(got))
	}
	return ws
}

func TestQueryWindowBasic(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{MaxSegmentBytes: 2048}) // several rotations
	fillCells(t, l, 8, 5, 12)
	defer l.Close()

	// Selective, full, empty, and time-restricted windows.
	minX, minY, maxX, maxY := cellWindow(2, 2)
	ws := checkWindow(t, l, minX, minY, maxX, maxY, 0, math.MaxUint32)
	if ws.RecordsMatched != 5 {
		t.Fatalf("device-2 window matched %d records, want 5", ws.RecordsMatched)
	}
	checkWindow(t, l, -1, -1, 1, 1, 0, math.MaxUint32) // covers device 0 only
	checkWindow(t, l, -10, -10, 10, 10, 0, math.MaxUint32)
	checkWindow(t, l, 50, 50, 60, 60, 0, math.MaxUint32) // empty
	checkWindow(t, l, -10, -10, 10, 10, 1000, 1099)      // first record of each device
	checkWindow(t, l, -10, -10, 10, 10, 5000, 6000)      // after every record

	// The unflushed tail must be visible.
	if err := l.Append("dev-002", cellKeys(2, 9, 6)); err != nil {
		t.Fatal(err)
	}
	ws = checkWindow(t, l, minX, minY, maxX, maxY, 0, math.MaxUint32)
	if ws.RecordsMatched != 6 {
		t.Fatalf("pending append invisible to QueryWindow: matched %d, want 6", ws.RecordsMatched)
	}
}

func TestQueryWindowInvalidArgs(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	defer l.Close()
	if _, err := l.QueryWindow(1, 0, 0, 1, 0, 1); err == nil {
		t.Fatal("inverted X window accepted")
	}
	if _, err := l.QueryWindow(0, 1, 1, 0, 0, 1); err == nil {
		t.Fatal("inverted Y window accepted")
	}
	if _, err := l.QueryWindow(0, 0, 1, 1, 2, 1); err == nil {
		t.Fatal("inverted time window accepted")
	}
	if _, err := l.QueryWindow(math.NaN(), 0, 1, 1, 0, 1); err == nil {
		t.Fatal("NaN window accepted")
	}
}

// TestQueryWindowSelectivity pins the acceptance criterion: on a
// selective window (≤ 5% of devices in range), the pruned path decodes
// under 20% of the records a full scan would, with results equal to
// the ground truth.
func TestQueryWindowSelectivity(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{MaxSegmentBytes: 8192})
	defer l.Close()
	// Device-major fill: a fleet's records arrive clustered (sessions
	// evict in bursts), so segments cover distinct spatial regions and
	// the segment-level summaries have something to prune.
	for d := 0; d < 50; d++ {
		for r := 0; r < 8; r++ {
			if err := l.Append(fmt.Sprintf("dev-%03d", d), cellKeys(d, r, 10)); err != nil {
				t.Fatal(err)
			}
		}
	}

	total := l.Stats().Records
	minX, minY, maxX, maxY := cellWindow(10, 11) // 2 of 50 devices = 4%
	ws := checkWindow(t, l, minX, minY, maxX, maxY, 0, math.MaxUint32)
	if ws.RecordsMatched != 16 {
		t.Fatalf("selective window matched %d records, want 16", ws.RecordsMatched)
	}
	if ratio := float64(ws.RecordsDecoded) / float64(total); ratio >= 0.20 {
		t.Fatalf("selective window decoded %d of %d records (%.1f%%), want < 20%%",
			ws.RecordsDecoded, total, 100*ratio)
	}
	if ws.SegmentsPruned == 0 {
		t.Fatal("no segment-level pruning on a selective window")
	}
}

// TestQueryWindowSurvivesReopenAndCompact: identical results through
// the block-index load path and after a compaction rewrite.
func TestQueryWindowSurvivesReopenAndCompact(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{MaxSegmentBytes: 2048})
	fillCells(t, l, 6, 6, 10)
	minX, minY, maxX, maxY := cellWindow(1, 2)
	want := byDevice(mustWindow(t, l, minX, minY, maxX, maxY))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: sealed segments come back through their block indexes.
	l2 := mustOpen(t, dir, Options{MaxSegmentBytes: 2048})
	if s := l2.Stats(); s.IndexedSegs == 0 || s.IndexedSegs != s.Segments-1 {
		t.Fatalf("sealed segments not index-loaded: %+v", s)
	}
	if got := byDevice(mustWindow(t, l2, minX, minY, maxX, maxY)); !reflect.DeepEqual(got, want) {
		t.Fatal("window results changed across reopen")
	}

	// Compaction (merge+dedup, no ageing) preserves the polylines and
	// therefore the exact window results.
	if _, err := l2.Compact(CompactionPolicy{MergeChunks: true}); err != nil {
		t.Fatal(err)
	}
	if got := byDevice(mustWindow(t, l2, minX, minY, maxX, maxY)); !reflect.DeepEqual(got, want) {
		t.Fatal("window results changed across compaction")
	}
	checkWindow(t, l2, minX, minY, maxX, maxY, 0, math.MaxUint32)
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
}

func mustWindow(t *testing.T, l *Log, minX, minY, maxX, maxY float64) []Record {
	t.Helper()
	recs, err := l.QueryWindow(minX, minY, maxX, maxY, 0, math.MaxUint32)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

// TestBlockIndexCorruptionFallsBack flips every byte of a sealed block
// index in turn: the log must open and answer the window query
// identically every time — a bad index degrades to a scan, never to
// wrong results. Read-only mode is used so the open cannot heal the
// index between flips.
func TestBlockIndexCorruptionFallsBack(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{MaxSegmentBytes: 1024})
	fillCells(t, l, 4, 8, 12)
	minX, minY, maxX, maxY := cellWindow(1, 2)
	want := byDevice(mustWindow(t, l, minX, minY, maxX, maxY))
	if s := l.Stats(); s.IndexedSegs == 0 {
		t.Fatalf("no sealed block index to corrupt: %+v", s)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	idxPath := filepath.Join(dir, idxName(1))
	orig, err := os.ReadFile(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	check := func(stage string) {
		t.Helper()
		ro := mustOpen(t, dir, Options{ReadOnly: true})
		defer ro.Close()
		if got := byDevice(mustWindow(t, ro, minX, minY, maxX, maxY)); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: window results diverged", stage)
		}
	}
	for i := 0; i < len(orig); i++ {
		mut := append([]byte(nil), orig...)
		mut[i] ^= 0xff
		if err := os.WriteFile(idxPath, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		check(fmt.Sprintf("flip byte %d", i))
	}
	for _, cut := range []int{0, 1, len(orig) / 2, len(orig) - 1} {
		if err := os.WriteFile(idxPath, orig[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		check(fmt.Sprintf("truncate to %d", cut))
	}
	if err := os.Remove(idxPath); err != nil {
		t.Fatal(err)
	}
	check("missing index")

	// A writable open scans past the damage and reseals the index.
	lw := mustOpen(t, dir, Options{MaxSegmentBytes: 2048})
	if s := lw.Stats(); s.IndexedSegs != s.Segments-1 {
		t.Fatalf("writable open did not heal the block index: %+v", s)
	}
	if got := byDevice(mustWindow(t, lw, minX, minY, maxX, maxY)); !reflect.DeepEqual(got, want) {
		t.Fatal("healed index changed window results")
	}
	if err := lw.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestHealedIndexSurvivesSweep: when the manifest does not reference a
// sealed v2 segment's index (a rotation whose manifest publish failed),
// the writable Open that scans and re-seals the index must not let the
// unreferenced-file sweep — which runs against the OLD manifest —
// delete what it just wrote; the manifest published at the end of Open
// references the healed index, and the next Open loads through it.
func TestHealedIndexSurvivesSweep(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{MaxSegmentBytes: 1024})
	fillCells(t, l, 6, 8, 12)
	minX, minY, maxX, maxY := cellWindow(1, 2)
	want := byDevice(mustWindow(t, l, minX, minY, maxX, maxY))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Strip the idx references (and summaries) from the manifest and
	// remove the index files, as if no rotation ever published them.
	man, found, err := readManifest(vfs.OS, dir)
	if err != nil || !found {
		t.Fatalf("readManifest: %v found=%v", err, found)
	}
	sealed := 0
	for i := range man.Segs {
		if man.Segs[i].Idx {
			sealed++
		}
		man.Segs[i].Idx = false
		man.Segs[i].Sum = nil
	}
	if sealed == 0 {
		t.Fatal("fixture produced no sealed indexes")
	}
	man.Gen++
	if err := writeManifest(vfs.OS, dir, man); err != nil {
		t.Fatal(err)
	}
	idxFiles, _ := filepath.Glob(filepath.Join(dir, "seg-*.idx"))
	for _, p := range idxFiles {
		if err := os.Remove(p); err != nil {
			t.Fatal(err)
		}
	}

	// The healing open must scan, re-seal the indexes, and leave them
	// on disk — referenced by the manifest it publishes.
	l2 := mustOpen(t, dir, Options{MaxSegmentBytes: 2048})
	if s := l2.Stats(); s.IndexedSegs != s.Segments-1 {
		t.Fatalf("healing open did not reseal the indexes: %+v", s)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	left, _ := filepath.Glob(filepath.Join(dir, "seg-*.idx"))
	if len(left) != sealed {
		t.Fatalf("sweep ate the healed indexes: %d on disk, want %d", len(left), sealed)
	}
	// And the next open actually loads through them, with identical
	// query results.
	l3 := mustOpen(t, dir, Options{MaxSegmentBytes: 2048})
	defer l3.Close()
	if s := l3.Stats(); s.IndexedSegs != s.Segments-1 {
		t.Fatalf("healed indexes not loaded on reopen: %+v", s)
	}
	if got := byDevice(mustWindow(t, l3, minX, minY, maxX, maxY)); !reflect.DeepEqual(got, want) {
		t.Fatal("window results changed across index healing")
	}
}

// TestQueryWindowConcurrent exercises QueryWindow racing Append-driven
// rotation and Compact under the race detector: no torn index reads,
// and a query that loses a segment to compaction retries against the
// new generation (the documented reopen-on-ENOENT behavior).
func TestQueryWindowConcurrent(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{MaxSegmentBytes: 1024})
	defer l.Close()
	fillCells(t, l, 4, 2, 10) // some sealed history to compact

	stop := make(chan struct{})
	var wg sync.WaitGroup
	fail := make(chan error, 16)

	wg.Add(1)
	go func() { // writer: appends force rotations
		defer wg.Done()
		for r := 10; ; r++ {
			select {
			case <-stop:
				return
			default:
			}
			for d := 0; d < 4; d++ {
				if err := l.Append(fmt.Sprintf("dev-%03d", d), cellKeys(d, r, 10)); err != nil {
					fail <- err
					return
				}
			}
		}
	}()
	wg.Add(1)
	go func() { // compactor: rewrites sealed segments under the readers
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := l.Compact(CompactionPolicy{MergeChunks: true}); err != nil {
				fail <- err
				return
			}
		}
	}()
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			minX, minY, maxX, maxY := cellWindow(w, w+1)
			for {
				select {
				case <-stop:
					return
				default:
				}
				recs, err := l.QueryWindow(minX, minY, maxX, maxY, 0, math.MaxUint32)
				if err != nil {
					fail <- fmt.Errorf("QueryWindow: %w", err)
					return
				}
				for _, r := range recs {
					if !windowMatch(r.Keys, minX, minY, maxX, maxY, 0, math.MaxUint32) {
						fail <- fmt.Errorf("QueryWindow returned a non-matching record")
						return
					}
				}
			}
		}(w)
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case err := <-fail:
		t.Fatal(err)
	default:
	}
}
