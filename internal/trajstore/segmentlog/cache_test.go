package segmentlog

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"github.com/trajcomp/bqs/internal/cache"
)

// windowCacheStats runs one window query over the whole fixture and
// returns the results with the per-query window stats and the cache
// counters after it.
func windowCacheStats(t *testing.T, l *Log) ([]Record, WindowStats, cache.Stats) {
	t.Helper()
	recs, ws, err := l.QueryWindowStats(-1, -1, 10, 10, 0, math.MaxUint32)
	if err != nil {
		t.Fatal(err)
	}
	return recs, ws, l.CacheStats()
}

// fillChunked appends each device's walk as chunks overlapping by one
// key — the engine's MaxTrailKeys chunking invariant — so a MergeChunks
// compaction has real work to do and therefore publishes a generation.
func fillChunked(t *testing.T, l *Log, devs, n, chunk int) {
	t.Helper()
	for d := 0; d < devs; d++ {
		keys := cellKeys(d, 0, n)
		for lo := 0; lo < len(keys)-1; lo += chunk - 1 {
			hi := min(lo+chunk, len(keys))
			if err := l.Append(fmt.Sprintf("dev-%03d", d), keys[lo:hi]); err != nil {
				t.Fatal(err)
			}
			if hi == len(keys) {
				break
			}
		}
	}
}

// pairSets reduces records to per-device sets of consecutive key pairs
// — the trajectory segments, which chunk-merging preserves exactly even
// though it changes record boundaries.
func pairSets(recs []Record) map[string]map[[6]float64]bool {
	out := make(map[string]map[[6]float64]bool)
	for _, r := range recs {
		m := out[r.Device]
		if m == nil {
			m = make(map[[6]float64]bool)
			out[r.Device] = m
		}
		for i := 0; i+1 < len(r.Keys); i++ {
			a, b := r.Keys[i], r.Keys[i+1]
			m[[6]float64{a.Lat, a.Lon, float64(a.T), b.Lat, b.Lon, float64(b.T)}] = true
		}
	}
	return out
}

// TestCacheHitsAndInvalidationAcrossCompaction is the tentpole's core
// contract: a cold query decodes and populates, a warm repeat serves
// every record from the cache without a single decode, a compaction's
// generation bump invalidates everything at once (no flush call — the
// keys just stop matching), and the post-compaction re-population makes
// the next repeat warm again. Results are bit-identical at every stage.
func TestCacheHitsAndInvalidationAcrossCompaction(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{MaxSegmentBytes: 1024, CacheBytes: 1 << 20})
	defer l.Close()
	fillChunked(t, l, 6, 40, 8)

	// Cold: nothing resident, every candidate is a miss and a decode.
	cold, cws, cs := windowCacheStats(t, l)
	if len(cold) == 0 {
		t.Fatal("fixture produced no window results")
	}
	if cws.CacheHits != 0 {
		t.Fatalf("cold query reported %d cache hits", cws.CacheHits)
	}
	if cws.RecordsDecoded == 0 {
		t.Fatal("cold query decoded nothing")
	}
	if cs.Misses == 0 || cs.Entries == 0 {
		t.Fatalf("cold query did not populate the cache: %+v", cs)
	}

	// Warm: the same query serves entirely from memory.
	warm, wws, ws2 := windowCacheStats(t, l)
	if !reflect.DeepEqual(warm, cold) {
		t.Fatal("warm results diverge from cold results")
	}
	if wws.RecordsDecoded != 0 {
		t.Fatalf("warm query decoded %d records, want 0", wws.RecordsDecoded)
	}
	if wws.CacheHits == 0 {
		t.Fatal("warm query reported no cache hits")
	}
	if ws2.Hits <= cs.Hits {
		t.Fatalf("cache hit counter did not advance: %d -> %d", cs.Hits, ws2.Hits)
	}

	// Compaction publishes a new generation: every resident entry is
	// keyed to the old one and can never be looked up again.
	genBefore := l.Stats().Gen
	res, err := l.Compact(CompactionPolicy{MergeChunks: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Merged == 0 {
		t.Fatalf("fixture gave compaction nothing to merge: %+v", res)
	}
	if l.Stats().Gen <= genBefore {
		t.Fatal("compaction did not bump the manifest generation")
	}
	postCompact, pws, ps := windowCacheStats(t, l)
	if pws.CacheHits != 0 {
		t.Fatalf("first post-compaction query hit the stale generation %d times", pws.CacheHits)
	}
	if pws.RecordsDecoded == 0 {
		t.Fatal("post-compaction query decoded nothing — stale entries served?")
	}
	if ps.Misses <= ws2.Misses {
		t.Fatalf("post-compaction query recorded no misses: %d -> %d", ws2.Misses, ps.Misses)
	}
	// Compaction merges chunks, so record boundaries legitimately change;
	// the trajectory segments (consecutive key pairs) must not.
	if !reflect.DeepEqual(pairSets(postCompact), pairSets(cold)) {
		t.Fatal("post-compaction results diverge from pre-compaction results")
	}

	// And the new generation's entries serve the next repeat warm.
	rewarm, rws, _ := windowCacheStats(t, l)
	if !reflect.DeepEqual(rewarm, postCompact) {
		t.Fatal("re-warmed results diverge")
	}
	if rws.RecordsDecoded != 0 || rws.CacheHits == 0 {
		t.Fatalf("cache did not re-populate after compaction: decoded=%d hits=%d",
			rws.RecordsDecoded, rws.CacheHits)
	}
}

// TestCacheHitResultsIsolated: a caller mutating the Keys slice of a
// cache-served record must not corrupt the cached copy (clone-out), and
// mutating the slice that populated the cache must not either
// (clone-in).
func TestCacheHitResultsIsolated(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{CacheBytes: 1 << 20})
	defer l.Close()
	fillCells(t, l, 2, 2, 8)

	first, _, _ := windowCacheStats(t, l)
	want := make([][]float64, len(first))
	for i, r := range first {
		for _, k := range r.Keys {
			want[i] = append(want[i], k.Lat, k.Lon)
		}
	}
	// Scribble over both the populating query's slices and a warm hit's.
	for pass := 0; pass < 2; pass++ {
		recs, _, _ := windowCacheStats(t, l)
		for _, r := range recs {
			for j := range r.Keys {
				r.Keys[j].Lat = -999
				r.Keys[j].Lon = -999
			}
		}
	}
	again, ws, _ := windowCacheStats(t, l)
	if ws.CacheHits == 0 {
		t.Fatal("verification query was not served from cache")
	}
	for i, r := range again {
		var got []float64
		for _, k := range r.Keys {
			got = append(got, k.Lat, k.Lon)
		}
		if !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("record %d: cached keys were corrupted by caller mutation", i)
		}
	}
}

// TestCacheDisabledByDefault: Options zero value keeps the pre-cache
// behavior exactly — no residency, no hit/miss accounting.
func TestCacheDisabledByDefault(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	defer l.Close()
	fillCells(t, l, 2, 2, 8)
	for i := 0; i < 2; i++ {
		_, ws, cs := windowCacheStats(t, l)
		if ws.CacheHits != 0 {
			t.Fatalf("pass %d: cache hits with caching off", i)
		}
		if ws.RecordsDecoded == 0 {
			t.Fatalf("pass %d: no decodes with caching off", i)
		}
		if cs != (cache.Stats{}) {
			t.Fatalf("pass %d: nonzero cache stats with caching off: %+v", i, cs)
		}
	}
}

// TestShardedCacheSharedBudget: all shards feed one cache; per-shard
// queries populate it and ShardedLog.CacheStats sees the union, while a
// repeated sharded window query is served warm.
func TestShardedCacheSharedBudget(t *testing.T) {
	dir := t.TempDir()
	s := mustOpenSharded(t, dir, 4, Options{CacheBytes: 1 << 20})
	defer s.Close()
	for r := 0; r < 3; r++ {
		for d := 0; d < 8; d++ {
			if err := s.Append(fmt.Sprintf("dev-%03d", d), cellKeys(d, r, 8)); err != nil {
				t.Fatal(err)
			}
		}
	}
	cold, cws, err := s.QueryWindowStats(-1, -1, 10, 10, 0, math.MaxUint32)
	if err != nil {
		t.Fatal(err)
	}
	if cws.CacheHits != 0 {
		t.Fatalf("cold sharded query hit %d times", cws.CacheHits)
	}
	cs := s.CacheStats()
	if cs.Entries == 0 || cs.Misses == 0 {
		t.Fatalf("cold sharded query did not populate the shared cache: %+v", cs)
	}
	warm, wws, err := s.QueryWindowStats(-1, -1, 10, 10, 0, math.MaxUint32)
	if err != nil {
		t.Fatal(err)
	}
	if wws.RecordsDecoded != 0 || wws.CacheHits == 0 {
		t.Fatalf("sharded warm query: decoded=%d hits=%d", wws.RecordsDecoded, wws.CacheHits)
	}
	if len(warm) != len(cold) {
		t.Fatalf("warm sharded query returned %d records, want %d", len(warm), len(cold))
	}
}
