package segmentlog

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"github.com/trajcomp/bqs/internal/trajstore"
	"github.com/trajcomp/bqs/internal/trajstore/segmentlog/vfs"
)

func mustOpenSharded(t *testing.T, dir string, shards int, opts Options) *ShardedLog {
	t.Helper()
	s, err := OpenSharded(dir, shards, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// sortRecs orders records canonically so results from the sharded log
// (shard-order concatenation) compare equal to single-log (log-order)
// results as multisets.
func sortRecs(recs []Record) {
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.Device != b.Device {
			return a.Device < b.Device
		}
		if a.T0 != b.T0 {
			return a.T0 < b.T0
		}
		return a.T1 < b.T1
	})
}

func TestShardedRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpenSharded(t, dir, 3, Options{})
	if s.NumShards() != 3 {
		t.Fatalf("NumShards = %d, want 3", s.NumShards())
	}

	want := map[string][]trajstore.GeoKey{}
	for d := 0; d < 12; d++ {
		dev := fmt.Sprintf("dev-%02d", d)
		keys := genKeys(d+1, 15)
		want[dev] = keys
		if err := s.Append(dev, keys); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A different shards argument must not re-shard: the persisted
	// SHARDS count is authoritative.
	s2 := mustOpenSharded(t, dir, 7, Options{})
	defer s2.Close()
	if s2.NumShards() != 3 {
		t.Fatalf("reopen NumShards = %d, want persisted 3", s2.NumShards())
	}
	devs := s2.Devices()
	if len(devs) != 12 || !sort.StringsAreSorted(devs) {
		t.Fatalf("Devices() = %v", devs)
	}
	if st := s2.Stats(); st.Records != 12 || st.Devices != 12 {
		t.Fatalf("Stats = %+v", st)
	}
	for dev, keys := range want {
		recs, err := s2.Query(dev, 0, math.MaxUint32)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 1 || !reflect.DeepEqual(recs[0].Keys, keys) {
			t.Fatalf("%s: round trip mismatch (%d records)", dev, len(recs))
		}
		n, lo, hi, ok := s2.DeviceSpan(dev)
		if !ok || n != 1 || lo != keys[0].T || hi != keys[len(keys)-1].T {
			t.Fatalf("%s: DeviceSpan = (%d, %d, %d, %v)", dev, n, lo, hi, ok)
		}
	}
}

// TestShardedMigratesLegacy: a single-log directory opened through
// OpenSharded is migrated in place — every record lands in the shard
// its device hashes to, the legacy root files disappear, and the
// migration happens exactly once.
func TestShardedMigratesLegacy(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{MaxSegmentBytes: 2 << 10})
	want := map[string][][]trajstore.GeoKey{}
	for d := 0; d < 9; d++ {
		dev := fmt.Sprintf("dev-%d", d)
		for r := 0; r < 3; r++ {
			keys := genKeys(d*10+r+1, 25)
			want[dev] = append(want[dev], keys)
			if err := l.Append(dev, keys); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	s := mustOpenSharded(t, dir, 4, Options{})
	if s.NumShards() != 4 {
		t.Fatalf("NumShards = %d, want 4", s.NumShards())
	}
	for dev, chunks := range want {
		recs, err := s.Query(dev, 0, math.MaxUint32)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != len(chunks) {
			t.Fatalf("%s: %d records after migration, want %d", dev, len(recs), len(chunks))
		}
		for i, rec := range recs {
			if !reflect.DeepEqual(rec.Keys, chunks[i]) {
				t.Fatalf("%s record %d: keys mutated by migration", dev, i)
			}
		}
		// The device's records really live in the shard it hashes to.
		sh := s.ShardLog(trajstore.ShardIndex(dev, 4))
		if got := queryAll(t, sh, dev); len(got) != len(chunks) {
			t.Fatalf("%s: %d records in its home shard, want %d", dev, len(got), len(chunks))
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The legacy root files are gone; only SHARDS + shard dirs remain.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if name == shardsName || name == lockName || strings.HasPrefix(name, "shard-") {
			continue
		}
		t.Fatalf("legacy file %q survived migration", name)
	}

	// Idempotent: reopening does not migrate again or lose anything.
	s2 := mustOpenSharded(t, dir, 0, Options{})
	defer s2.Close()
	if s2.NumShards() != 4 {
		t.Fatalf("second open NumShards = %d", s2.NumShards())
	}
	if st := s2.Stats(); st.Records != 27 {
		t.Fatalf("second open Stats = %+v", st)
	}
}

// TestShardedMigrationDebris: crash shapes around the migration commit
// point. Before the SHARDS rename the legacy root is authoritative and
// half-built shard dirs are debris; after it, leftover legacy files are
// swept on every open.
func TestShardedMigrationDebris(t *testing.T) {
	t.Run("pre-commit", func(t *testing.T) {
		dir := t.TempDir()
		l := mustOpen(t, dir, Options{})
		if err := l.Append("alpha", genKeys(1, 20)); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		// A crashed migration left shard dirs with bogus contents but no
		// SHARDS file: they must be discarded, not trusted.
		bogus := filepath.Join(dir, shardDirName(0))
		bl := mustOpen(t, bogus, Options{})
		if err := bl.Append("ghost", genKeys(9, 5)); err != nil {
			t.Fatal(err)
		}
		if err := bl.Close(); err != nil {
			t.Fatal(err)
		}

		s := mustOpenSharded(t, dir, 2, Options{})
		defer s.Close()
		devs := s.Devices()
		if !reflect.DeepEqual(devs, []string{"alpha"}) {
			t.Fatalf("Devices after debris cleanup = %v, want [alpha]", devs)
		}
		recs, err := s.Query("alpha", 0, math.MaxUint32)
		if err != nil || len(recs) != 1 {
			t.Fatalf("alpha after re-migration: %d records, err %v", len(recs), err)
		}
	})

	t.Run("post-commit", func(t *testing.T) {
		dir := t.TempDir()
		l := mustOpen(t, dir, Options{})
		if err := l.Append("alpha", genKeys(1, 20)); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		s := mustOpenSharded(t, dir, 2, Options{})
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		// A crash between the SHARDS rename and the legacy sweep left the
		// old files behind; they are dead weight, removed on open.
		stale := filepath.Join(dir, "seg-99999999.log")
		if err := os.WriteFile(stale, []byte("stale"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("stale"), 0o644); err != nil {
			t.Fatal(err)
		}
		s2 := mustOpenSharded(t, dir, 0, Options{})
		defer s2.Close()
		if _, err := os.Stat(stale); !os.IsNotExist(err) {
			t.Fatalf("stale legacy segment not swept: %v", err)
		}
		recs, err := s2.Query("alpha", 0, math.MaxUint32)
		if err != nil || len(recs) != 1 {
			t.Fatalf("alpha after sweep: %d records, err %v", len(recs), err)
		}
	})
}

// TestV1FixtureSharded: the checked-in version-1 single-log fixture
// migrates through OpenSharded with nothing lost — same records, same
// window answers as the single-log open.
func TestV1FixtureSharded(t *testing.T) {
	single := mustOpen(t, copyFixture(t), Options{})
	defer single.Close()

	dir := copyFixture(t)
	s := mustOpenSharded(t, dir, 2, Options{})
	defer s.Close()
	if st := s.Stats(); st.Records != 18 || st.Devices != 3 {
		t.Fatalf("migrated fixture Stats = %+v, want 18 records / 3 devices", st)
	}
	for _, w := range fixtureWindows {
		got, err := s.QueryWindow(w.minX, w.minY, w.maxX, w.maxY, w.t0, w.t1)
		if err != nil {
			t.Fatal(err)
		}
		want, err := single.QueryWindow(w.minX, w.minY, w.maxX, w.maxY, w.t0, w.t1)
		if err != nil {
			t.Fatal(err)
		}
		sortRecs(got)
		sortRecs(want)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("window %s: sharded %d records, single %d", w.name, len(got), len(want))
		}
	}
}

// differentialWindows are the windows the sharded/single comparison
// runs; genKeys trajectories live within ~±0.01° of the origin.
var differentialWindows = []struct {
	name                   string
	minX, minY, maxX, maxY float64
	t0, t1                 uint32
}{
	{"all", -180, -90, 180, 90, 0, math.MaxUint32},
	{"all-early", -180, -90, 180, 90, 0, 300},
	{"ne", 0, 0, 1, 1, 0, math.MaxUint32},
	{"sw", -1, -1, 0, 0, 0, math.MaxUint32},
	{"empty", 50, 50, 60, 60, 0, math.MaxUint32},
}

// diffCompare asserts the sharded and single logs answer every
// per-device Query and every differential window identically at wire
// resolution (decoded records compare exactly; coordinates survive the
// 1e-7 quantization unchanged because genKeys emits exact multiples).
func diffCompare(t *testing.T, stage string, s *ShardedLog, single *Log, devices []string) {
	t.Helper()
	for _, dev := range devices {
		got, err := s.Query(dev, 0, math.MaxUint32)
		if err != nil {
			t.Fatal(err)
		}
		want := queryAll(t, single, dev)
		sortRecs(got)
		sortRecs(want)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: %s: sharded %d records, single %d", stage, dev, len(got), len(want))
		}
	}
	for _, w := range differentialWindows {
		got, err := s.QueryWindow(w.minX, w.minY, w.maxX, w.maxY, w.t0, w.t1)
		if err != nil {
			t.Fatal(err)
		}
		want, err := single.QueryWindow(w.minX, w.minY, w.maxX, w.maxY, w.t0, w.t1)
		if err != nil {
			t.Fatal(err)
		}
		sortRecs(got)
		sortRecs(want)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: window %s: sharded %d records, single %d", stage, w.name, len(got), len(want))
		}
	}
}

// TestShardedDifferential drives the same fleet through a 4-shard log
// and a single log and asserts identical answers — after ingest, after
// a torn-tail crash in one shard's log, and after compaction.
func TestShardedDifferential(t *testing.T) {
	sDir, lDir := t.TempDir(), t.TempDir()
	s := mustOpenSharded(t, sDir, 4, Options{MaxSegmentBytes: 4 << 10})
	single := mustOpen(t, lDir, Options{MaxSegmentBytes: 4 << 10})

	var devices []string
	for d := 0; d < 40; d++ {
		dev := fmt.Sprintf("fleet-%03d", d)
		devices = append(devices, dev)
		for r := 0; r < 3; r++ {
			keys := genKeys(d*7+r+1, 20)
			if err := s.Append(dev, keys); err != nil {
				t.Fatal(err)
			}
			if err := single.Append(dev, keys); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	diffCompare(t, "ingest", s, single, devices)

	// Crash one shard with a torn tail: a record appended only to the
	// sharded log, then cut mid-record. Recovery must drop exactly that
	// record, restoring equality with the single log.
	victim := devices[0]
	shardIdx := trajstore.ShardIndex(victim, 4)
	if err := s.Append(victim, genKeys(999, 30)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	shardDir := filepath.Join(sDir, shardDirName(shardIdx))
	segs, err := filepath.Glob(filepath.Join(shardDir, "seg-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in crashed shard: %v", err)
	}
	sort.Strings(segs)
	last := segs[len(segs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-7); err != nil {
		t.Fatal(err)
	}

	s = mustOpenSharded(t, sDir, 0, Options{MaxSegmentBytes: 4 << 10})
	if st := s.Stats(); st.Truncated == 0 {
		t.Fatalf("torn tail not detected: %+v", st)
	}
	diffCompare(t, "post-crash", s, single, devices)

	// Compaction on both sides preserves the differential.
	if _, err := s.Compact(CompactionPolicy{MergeChunks: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := single.Compact(CompactionPolicy{MergeChunks: true}); err != nil {
		t.Fatal(err)
	}
	diffCompare(t, "post-compact", s, single, devices)

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := single.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedCompactCrashAtEveryStep reruns the compaction crash matrix
// against one shard of a sharded log: a crash at any hook point leaves
// that shard consistent and the sharded open recovers the full fleet.
func TestShardedCompactCrashAtEveryStep(t *testing.T) {
	build := func(t *testing.T) (string, map[string][]trajstore.GeoKey) {
		dir := t.TempDir()
		s := mustOpenSharded(t, dir, 2, Options{MaxSegmentBytes: 512})
		want := map[string][]trajstore.GeoKey{}
		for d := 0; d < 8; d++ {
			dev := fmt.Sprintf("dev-%d", d)
			keys := genKeys(d*11+1, 90)
			want[dev] = keys
			for _, chunk := range chunkKeys(keys, 8) {
				if err := s.Append(dev, chunk); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := s.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		return dir, want
	}

	// Observer pass: measure the op window (n0, n1] one shard's
	// compaction spans. Shard opens are sequential and the fixture is
	// deterministic, so op k is the same operation in every run; the
	// crash is driven through ShardLog(0).Compact directly because the
	// sharded Compact fans out in parallel, which would scramble the
	// global op counter.
	probeDir, _ := build(t)
	obs := vfs.NewFaultFS(0)
	probe := mustOpenSharded(t, probeDir, 0, Options{MaxSegmentBytes: 512, FS: obs})
	n0 := obs.Ops()
	if _, err := probe.ShardLog(0).Compact(CompactionPolicy{MergeChunks: true}); err != nil {
		t.Fatal(err)
	}
	n1 := obs.Ops()
	if err := probe.Close(); err != nil {
		t.Fatal(err)
	}
	if n1-n0 < 10 {
		t.Fatalf("shard compaction spanned only %d fs ops; observer pass broken?", n1-n0)
	}

	for k := n0 + 1; k <= n1; k++ {
		k := k
		t.Run(fmt.Sprintf("op-%03d", k), func(t *testing.T) {
			t.Parallel()
			dir, want := build(t)
			fs := vfs.NewFaultFS(int64(k)) // seed varies the torn-rename coin flips
			fs.AddRule(vfs.Rule{Fault: vfs.FaultCrash, After: k - 1, Count: 1})
			s, err := OpenSharded(dir, 0, Options{MaxSegmentBytes: 512, FS: fs})
			if err != nil {
				t.Fatalf("open died before the crash point: %v", err)
			}
			// The pass usually dies at op k; a crash inside the
			// best-effort delete sweep can still report success.
			_, _ = s.ShardLog(0).Compact(CompactionPolicy{MergeChunks: true})
			if !fs.Crashed() {
				t.Fatalf("schedule never crashed: %s", fs)
			}
			s.Close()

			r := mustOpenSharded(t, dir, 0, Options{MaxSegmentBytes: 512})
			defer r.Close()
			if st := r.Stats(); st.Devices != 8 {
				t.Fatalf("crash at op %d lost devices: %+v", k, st)
			}
			for dev, keys := range want {
				recs, err := r.Query(dev, 0, math.MaxUint32)
				if err != nil {
					t.Fatal(err)
				}
				if got := stitch(recs); !reflect.DeepEqual(got, keys) {
					t.Fatalf("crash at op %d: %s polyline diverged after recovery", k, dev)
				}
			}
		})
	}
}

// TestCompactBoundedMemory pins the streaming compactor's memory bound:
// with W workers, at most W devices' decoded records are live at once —
// the high-water mark stays far under the whole log's record count.
func TestCompactBoundedMemory(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{MaxSegmentBytes: 1 << 10})
	const devices, perDev = 40, 10
	for d := 0; d < devices; d++ {
		dev := fmt.Sprintf("dev-%02d", d)
		for r := 0; r < perDev; r++ {
			if err := l.Append(dev, genKeys(d*perDev+r+1, 20)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	const workers = 2
	res, err := l.Compact(CompactionPolicy{MergeChunks: true, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	if res.RecordsIn < devices*perDev/2 {
		t.Fatalf("compaction saw only %d records; fixture did not seal enough segments", res.RecordsIn)
	}
	hwm := l.compactLiveHWM.Load()
	if hwm == 0 {
		t.Fatal("compaction decoded nothing (high-water mark 0)")
	}
	if max := int64(workers * perDev); hwm > max {
		t.Fatalf("decoded-record high-water mark %d exceeds the %d-worker bound %d (of %d total records)",
			hwm, workers, max, res.RecordsIn)
	}
	if live := l.compactLive.Load(); live != 0 {
		t.Fatalf("live decoded-record count %d after compaction, want 0", live)
	}
}

// TestCompactParallelMatchesSequential: the worker count is a
// performance knob, not a semantic one — 1 and 4 workers produce logs
// with identical query answers and record counts.
func TestCompactParallelMatchesSequential(t *testing.T) {
	build := func(t *testing.T) (*Log, []string) {
		dir := t.TempDir()
		l := mustOpen(t, dir, Options{MaxSegmentBytes: 1 << 10})
		var devices []string
		for d := 0; d < 10; d++ {
			dev := fmt.Sprintf("dev-%d", d)
			devices = append(devices, dev)
			for _, chunk := range chunkedKeys(d, 6, 12) {
				if err := l.Append(dev, chunk); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		return l, devices
	}

	seq, devices := build(t)
	par, _ := build(t)
	rSeq, err := seq.Compact(CompactionPolicy{MergeChunks: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	rPar, err := par.Compact(CompactionPolicy{MergeChunks: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rSeq.Merged == 0 || rSeq.Merged != rPar.Merged || rSeq.RecordsOut != rPar.RecordsOut {
		t.Fatalf("sequential %+v vs parallel %+v", rSeq, rPar)
	}
	for _, dev := range devices {
		a, b := queryAll(t, seq, dev), queryAll(t, par, dev)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: sequential and parallel compaction disagree", dev)
		}
	}
}

// TestLazySegmentLoading pins satellite behaviour: Open defers sealed
// indexed segments entirely, a selective window query loads only the
// segments its manifest summaries cannot prune, and a full-log
// operation loads the rest exactly once.
func TestLazySegmentLoading(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{MaxSegmentBytes: 2 << 10})
	// Spatially separated devices (cellKeys cells), device-major so
	// sealed segments cover distinct regions.
	for d := 0; d < 6; d++ {
		dev := fmt.Sprintf("dev-%d", d)
		for r := 0; r < 20; r++ {
			if err := l.Append(dev, cellKeys(d, r, 16)); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := l.Stats()
	if st.IndexedSegs < 3 {
		t.Fatalf("fixture too small to exercise laziness: %+v", st)
	}
	sealed := st.Segments - 1
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := mustOpen(t, dir, Options{MaxSegmentBytes: 2 << 10})
	defer l2.Close()
	var loads int
	l2.loadHook = func(string) { loads++ }

	// A window over one device's cell: the summaries prune the other
	// cells' segments without touching their bytes.
	minX, minY, maxX, maxY := cellWindow(2, 2)
	recs, err := l2.QueryWindow(minX, minY, maxX, maxY, 0, math.MaxUint32)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("selective window matched nothing")
	}
	if loads == 0 || loads >= sealed {
		t.Fatalf("selective window loaded %d of %d sealed segments; want partial lazy load", loads, sealed)
	}

	// Devices() needs the full device index: everything else loads now,
	// each segment exactly once.
	if got := len(l2.Devices()); got != 6 {
		t.Fatalf("Devices = %d, want 6", got)
	}
	if loads != sealed {
		t.Fatalf("full load touched %d segments, want %d", loads, sealed)
	}
	prev := loads
	if _ = l2.Stats(); loads != prev {
		t.Fatalf("Stats reloaded segments: %d → %d", prev, loads)
	}
}
