package segmentlog

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/trajcomp/bqs/internal/geom"
	"github.com/trajcomp/bqs/internal/trajstore"
	"github.com/trajcomp/bqs/internal/trajstore/segmentlog/vfs"
)

// chunkKeys splits keys into engine-style chunks of at most n keys that
// overlap by exactly one key point (persistTrail's invariant).
func chunkKeys(keys []trajstore.GeoKey, n int) [][]trajstore.GeoKey {
	var out [][]trajstore.GeoKey
	for lo := 0; lo < len(keys); {
		hi := lo + n
		if hi > len(keys) {
			hi = len(keys)
		}
		out = append(out, keys[lo:hi])
		if hi == len(keys) {
			break
		}
		lo = hi - 1 // next chunk restarts from this chunk's last key
	}
	return out
}

// stitch re-joins chunked records by dropping each subsequent record's
// overlap key.
func stitch(recs []Record) []trajstore.GeoKey {
	var out []trajstore.GeoKey
	for i, r := range recs {
		keys := r.Keys
		if i > 0 && len(out) > 0 && len(keys) > 0 && keys[0] == out[len(out)-1] {
			keys = keys[1:]
		}
		out = append(out, keys...)
	}
	return out
}

// TestCompactMergeChunks: chunked records of one device merge back into
// fewer records with the identical polyline, smaller on disk, and the
// result survives a reopen.
func TestCompactMergeChunks(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{MaxSegmentBytes: 256})
	keys := genKeys(3, 120)
	for _, chunk := range chunkKeys(keys, 10) {
		if err := l.Append("dev", chunk); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	before := l.Stats()
	if before.Segments < 3 {
		t.Fatalf("workload too small to seal segments: %+v", before)
	}

	res, err := l.Compact(CompactionPolicy{MergeChunks: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Merged == 0 {
		t.Fatalf("no chunks merged: %+v", res)
	}
	if res.BytesOut >= res.BytesIn {
		t.Fatalf("compaction grew sealed bytes: %+v", res)
	}
	after := l.Stats()
	if after.Bytes >= before.Bytes {
		t.Fatalf("disk bytes did not shrink: %d → %d", before.Bytes, after.Bytes)
	}
	if got := stitch(queryAll(t, l, "dev")); !reflect.DeepEqual(got, keys) {
		t.Fatalf("stitched polyline changed after compaction:\nwant %v\ngot  %v", keys, got)
	}

	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2 := mustOpen(t, dir, Options{MaxSegmentBytes: 256})
	defer l2.Close()
	if got := stitch(queryAll(t, l2, "dev")); !reflect.DeepEqual(got, keys) {
		t.Fatal("compacted log differs after reopen")
	}
	if s := l2.Stats(); s.Truncated != 0 {
		t.Fatalf("reopen truncated a compacted log: %+v", s)
	}
}

// TestCompactDedup: exact duplicates and fully-contained records of the
// same device are dropped; partial overlaps and other devices survive.
func TestCompactDedup(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{MaxSegmentBytes: 256})
	keys := genKeys(5, 40)
	appendAll := func(dev string, trajs ...[]trajstore.GeoKey) {
		for _, tr := range trajs {
			if err := l.Append(dev, tr); err != nil {
				t.Fatal(err)
			}
		}
	}
	appendAll("dup", keys, keys)                           // exact duplicate
	appendAll("sub", keys, keys[10:30])                    // contained run
	appendAll("other", genKeys(9, 12))                     // untouched bystander
	appendAll("rev", keys[5:15], keys)                     // earlier record swallowed by later
	if err := l.Append("dup", genKeys(7, 8)); err != nil { // force a final rotation point
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}

	res, err := l.Compact(CompactionPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deduped < 3 {
		t.Fatalf("expected ≥ 3 deduped records, got %+v", res)
	}
	if l.Dir() != dir {
		t.Fatalf("Dir() = %q", l.Dir())
	}
	if devs := l.Devices(); len(devs) != 4 {
		t.Fatalf("Devices() after dedup = %v", devs)
	}
	if n, _, _, ok := l.DeviceSpan("dup"); !ok || n != 2 {
		t.Fatalf("DeviceSpan(dup) = %d, %v", n, ok)
	}
	for dev, want := range map[string][][]trajstore.GeoKey{
		"dup":   {keys, genKeys(7, 8)},
		"sub":   {keys},
		"other": {genKeys(9, 12)},
		"rev":   {keys},
	} {
		recs := queryAll(t, l, dev)
		if len(recs) != len(want) {
			t.Fatalf("%s: %d records after dedup, want %d", dev, len(recs), len(want))
		}
		for i := range want {
			if !reflect.DeepEqual(recs[i].Keys, want[i]) {
				t.Fatalf("%s record %d corrupted by dedup", dev, i)
			}
		}
	}
	l.Close()
}

// TestCompactAgeingBound is the error-bound acceptance test: every aged
// record's retained keys are a subset of the originals, and every
// dropped original key stays within CoarseTolerance of the aged
// polyline (measured in the same metric plane the compressor ran in).
// Records younger than MinAge are untouched.
func TestCompactAgeingBound(t *testing.T) {
	const (
		mpd     = 1e5  // metres per degree
		coarse  = 50.0 // metres
		nowSec  = 1_000_000
		oldT    = 100_000 // well past MinAge
		youngT  = 999_000 // inside MinAge
		nPoints = 400
	)
	// A wiggly but 1e-7°-exact trajectory: a sine-like walk where many
	// points are within 50 m of the overall path, so ageing has slack to
	// remove.
	mk := func(baseT uint32) []trajstore.GeoKey {
		keys := make([]trajstore.GeoKey, nPoints)
		for i := range keys {
			lat := int64(i) * 30      // 3 µ° steps ≈ 0.3 m northing
			lon := int64(i%7-3) * 100 // ±300 µ° wiggle ≈ ±30 m easting
			keys[i] = trajstore.GeoKey{
				Lat: float64(lat) / 1e7,
				Lon: float64(lon) / 1e7,
				T:   baseT + uint32(i),
			}
		}
		return keys
	}
	oldKeys, youngKeys := mk(oldT), mk(youngT)

	dir := t.TempDir()
	l := mustOpen(t, dir, Options{MaxSegmentBytes: 2048})
	if err := l.Append("old", oldKeys); err != nil {
		t.Fatal(err)
	}
	if err := l.Append("young", youngKeys); err != nil {
		t.Fatal(err)
	}
	// Roll the active segment over so both records are sealed.
	for i := 0; i < 4; i++ {
		if err := l.Append("filler", genKeys(20+i, 40)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}

	res, err := l.Compact(CompactionPolicy{
		MinAge:          100_000 * time.Second, // cutoff = 900 000
		CoarseTolerance: coarse,
		MetersPerDegree: mpd,
		Now:             func() time.Time { return time.Unix(nowSec, 0) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aged == 0 {
		t.Fatalf("nothing aged: %+v", res)
	}

	oldRecs := queryAll(t, l, "old")
	if len(oldRecs) != 1 {
		t.Fatalf("old device has %d records", len(oldRecs))
	}
	aged := oldRecs[0].Keys
	if len(aged) >= len(oldKeys) {
		t.Fatalf("ageing kept all %d keys", len(aged))
	}
	// Retained keys are a subset (bit-identical) of the originals, in order.
	j := 0
	for _, k := range aged {
		for j < len(oldKeys) && oldKeys[j] != k {
			j++
		}
		if j == len(oldKeys) {
			t.Fatalf("aged key %+v is not an original key point", k)
		}
		j++
	}
	// Error bound: every original key is within coarse of the aged
	// polyline in the metric plane.
	toVec := func(k trajstore.GeoKey) geom.Vec { return geom.V(k.Lon*mpd, k.Lat*mpd) }
	for _, k := range oldKeys {
		p := toVec(k)
		best := p.Dist(toVec(aged[0]))
		for i := 0; i+1 < len(aged); i++ {
			if d := geom.DistToSegment(p, toVec(aged[i]), toVec(aged[i+1])); d < best {
				best = d
			}
		}
		if best > coarse+1e-6 {
			t.Fatalf("original key %+v deviates %.3f m from aged polyline (bound %g)", k, best, coarse)
		}
	}
	// Aged record keeps its original indexed time span.
	if oldRecs[0].T0 != oldKeys[0].T || oldRecs[0].T1 != oldKeys[len(oldKeys)-1].T {
		t.Fatalf("aged record time bounds changed: [%d,%d]", oldRecs[0].T0, oldRecs[0].T1)
	}

	// The young record is byte-identical.
	youngRecs := queryAll(t, l, "young")
	if len(youngRecs) != 1 || !reflect.DeepEqual(youngRecs[0].Keys, youngKeys) {
		t.Fatal("record younger than MinAge was modified")
	}
	l.Close()
}

// compactionFixture builds a deterministic chunked multi-device log and
// returns the directory plus the expected per-device stitched polylines.
func compactionFixture(t *testing.T) (string, map[string][]trajstore.GeoKey) {
	t.Helper()
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{MaxSegmentBytes: 512})
	want := map[string][]trajstore.GeoKey{}
	for d := 0; d < 3; d++ {
		dev := fmt.Sprintf("dev-%d", d)
		keys := genKeys(d*11+1, 90)
		want[dev] = keys
		for _, chunk := range chunkKeys(keys, 8) {
			if err := l.Append(dev, chunk); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if s := l.Stats(); s.Segments < 3 {
		t.Fatalf("fixture sealed too few segments: %+v", s)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, want
}

// verifyFixture checks a reopened log holds exactly the fixture content.
func verifyFixture(t *testing.T, dir string, want map[string][]trajstore.GeoKey, ctx string) {
	t.Helper()
	l := mustOpen(t, dir, Options{MaxSegmentBytes: 512})
	defer l.Close()
	for dev, keys := range want {
		if got := stitch(queryAll(t, l, dev)); !reflect.DeepEqual(got, keys) {
			t.Fatalf("%s: %s polyline diverged after recovery", ctx, dev)
		}
	}
	// Recovered log accepts appends and they survive another cycle.
	extra := genKeys(77, 9)
	if err := l.Append("post", extra); err != nil {
		t.Fatalf("%s: append after recovery: %v", ctx, err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("%s: close: %v", ctx, err)
	}
	l2 := mustOpen(t, dir, Options{MaxSegmentBytes: 512})
	defer l2.Close()
	if recs := queryAll(t, l2, "post"); len(recs) != 1 || !reflect.DeepEqual(recs[0].Keys, extra) {
		t.Fatalf("%s: post-recovery append lost", ctx)
	}
}

// TestCompactCrashAtEveryStep power-fails compaction at every single
// filesystem operation it performs — each write, fsync, rename and
// delete — via vfs.FaultFS, and verifies each reopen recovers exactly
// one consistent generation with every committed record intact: the
// old generation before the MANIFEST rename became durable, the new
// one after. The crash model is the hostile one: handles drop their
// un-synced bytes and an un-synced rename may or may not have reached
// the directory (a seeded coin flip), so the sweep crosses the
// crash-after-partial-rename window both ways.
func TestCompactCrashAtEveryStep(t *testing.T) {
	// Observer pass: an identical fixture compacted over a ruleless
	// FaultFS measures the op window (n0, n1] a compaction spans. The
	// fixture content is deterministic and shard-free, so op k lands on
	// the same operation in every run.
	probeDir, _ := compactionFixture(t)
	obs := vfs.NewFaultFS(0)
	probe := mustOpen(t, probeDir, Options{MaxSegmentBytes: 512, FS: obs})
	n0 := obs.Ops()
	if _, err := probe.Compact(CompactionPolicy{MergeChunks: true}); err != nil {
		t.Fatal(err)
	}
	n1 := obs.Ops()
	probe.Close()
	if n1-n0 < 10 {
		t.Fatalf("compaction spanned only %d fs ops; observer pass broken?", n1-n0)
	}

	for k := n0 + 1; k <= n1; k++ {
		k := k
		t.Run(fmt.Sprintf("op-%03d", k), func(t *testing.T) {
			t.Parallel()
			dir, want := compactionFixture(t)
			fs := vfs.NewFaultFS(int64(k)) // seed varies the torn-rename coin flips
			fs.AddRule(vfs.Rule{Fault: vfs.FaultCrash, After: k - 1, Count: 1})
			l, err := Open(dir, Options{MaxSegmentBytes: 512, FS: fs})
			if err != nil {
				t.Fatalf("open died before the crash point: %v", err)
			}
			// The pass usually dies at op k; a crash inside the
			// best-effort delete sweep can still report success. Either
			// way the handle is dead afterwards.
			_, _ = l.Compact(CompactionPolicy{MergeChunks: true})
			if !fs.Crashed() {
				t.Fatalf("schedule never crashed: %s", fs)
			}
			l.Close()
			verifyFixture(t, dir, want, fmt.Sprintf("crash at op %d", k))
		})
	}
}

// TestCompactConcurrentQuery runs merge-only compactions while readers
// hammer Query and a writer appends — the -race acceptance test. Every
// query must observe the full, correct polyline regardless of which
// generation serves it.
func TestCompactConcurrentQuery(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{MaxSegmentBytes: 512})
	defer l.Close()
	keys := genKeys(4, 200)
	for _, chunk := range chunkKeys(keys, 8) {
		if err := l.Append("dev", chunk); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				recs, err := l.Query("dev", 0, ^uint32(0))
				if err != nil {
					t.Errorf("Query during compaction: %v", err)
					return
				}
				if got := stitch(recs); !reflect.DeepEqual(got, keys) {
					t.Errorf("query observed a broken polyline (%d keys)", len(got))
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			if err := l.Append("writer", genKeys(100+i, 12)); err != nil {
				t.Errorf("Append during compaction: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 5; i++ {
		if _, err := l.Compact(CompactionPolicy{MergeChunks: true}); err != nil {
			t.Fatalf("Compact %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	if recs := queryAll(t, l, "writer"); len(recs) != 30 {
		t.Fatalf("writer records lost during compaction: %d", len(recs))
	}
}

// TestCompactReadOnlyRefused: a read-only handle cannot compact.
func TestCompactReadOnlyRefused(t *testing.T) {
	dir, _ := compactionFixture(t)
	l := mustOpen(t, dir, Options{ReadOnly: true})
	defer l.Close()
	if _, err := l.Compact(CompactionPolicy{MergeChunks: true}); err != ErrReadOnly {
		t.Fatalf("Compact on read-only log = %v, want ErrReadOnly", err)
	}
}

// TestCompactNowPolicy: CompactNow applies Options.Compaction and is a
// no-op without one.
func TestCompactNowPolicy(t *testing.T) {
	dir, want := compactionFixture(t)
	l := mustOpen(t, dir, Options{MaxSegmentBytes: 512})
	if err := l.CompactNow(); err != nil { // no policy: no-op
		t.Fatal(err)
	}
	g0 := l.Stats().Gen
	l.Close()

	l = mustOpen(t, dir, Options{
		MaxSegmentBytes: 512,
		Compaction:      &CompactionPolicy{MergeChunks: true},
	})
	defer l.Close()
	if err := l.CompactNow(); err != nil {
		t.Fatal(err)
	}
	if g := l.Stats().Gen; g <= g0 {
		t.Fatalf("CompactNow did not publish a new generation (%d → %d)", g0, g)
	}
	for dev, keys := range want {
		if got := stitch(queryAll(t, l, dev)); !reflect.DeepEqual(got, keys) {
			t.Fatalf("%s polyline diverged after CompactNow", dev)
		}
	}
}

// TestManifestRoundTrip pins format(parse) as the identity on the
// canonical form.
func TestManifestRoundTrip(t *testing.T) {
	m := manifest{Gen: 42, Segs: []manifestSeg{
		{Name: "seg-00000009.log", Idx: true, Sum: &segSummary{
			records: 3, t0: 1000, t1: 2407, bbAll: true,
			bb: bbox{minLat: -386214000, minLon: 1448123000, maxLat: -385900000, maxLon: 1448200000},
		}},
		{Name: "seg-00000005.log", Sum: &segSummary{records: 2, t0: 7, t1: 9, bb: emptyBBox()}},
		{Name: "seg-00000003.log"},
	}}
	got, err := parseManifest(formatManifest(m))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip changed manifest: %+v → %+v", m, got)
	}
	// Corruption of any byte must be detected.
	data := formatManifest(m)
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x01
		if parsed, err := parseManifest(mut); err == nil && !reflect.DeepEqual(parsed, m) {
			t.Fatalf("flipping byte %d yielded a different valid manifest: %+v", i, parsed)
		}
	}
}

// TestManifestLegacyAdopt: a pre-manifest directory is adopted on open,
// and afterwards unreferenced segment files are swept.
func TestManifestLegacyAdopt(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{MaxSegmentBytes: 128})
	for i := 0; i < 8; i++ {
		if err := l.Append("dev", genKeys(i+1, 12)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a legacy directory: no MANIFEST.
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}
	l2 := mustOpen(t, dir, Options{MaxSegmentBytes: 256})
	if recs := queryAll(t, l2, "dev"); len(recs) != 8 {
		t.Fatalf("legacy adopt lost records: %d", len(recs))
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err != nil {
		t.Fatalf("open did not adopt the legacy directory: %v", err)
	}

	// An unreferenced (crashed-compaction) segment file is swept.
	stray := filepath.Join(dir, segName(900))
	if err := os.WriteFile(stray, []byte("BQSLOG\x01\x00"), 0o644); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, manifestTmpName)
	if err := os.WriteFile(tmp, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	l3 := mustOpen(t, dir, Options{MaxSegmentBytes: 256})
	defer l3.Close()
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Fatalf("unreferenced segment not swept: %v", err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("stale MANIFEST.tmp not swept: %v", err)
	}
	if recs := queryAll(t, l3, "dev"); len(recs) != 8 {
		t.Fatalf("sweep lost records: %d", len(recs))
	}
}

// TestManifestCorruptRejected: a damaged manifest must fail the open
// loudly instead of silently reordering the log.
func TestManifestCorruptRejected(t *testing.T) {
	dir, _ := compactionFixture(t)
	path := filepath.Join(dir, manifestName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x20
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("corrupt manifest accepted")
	}
}

// TestCompactBitRotAborts: a sealed record that no longer validates
// (bit rot after Open) must abort the compaction with ErrCorrupt and
// leave the published generation — and every still-readable record —
// untouched, never silently drop the records after it and delete their
// only copy.
func TestCompactBitRotAborts(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{MaxSegmentBytes: 128})
	for i := 0; i < 8; i++ {
		if err := l.Append("dev", genKeys(i+1, 12)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	before := l.Stats()
	if before.Segments < 3 {
		t.Fatalf("fixture sealed too few segments: %+v", before)
	}

	// Flip a byte inside the FIRST sealed segment's record area.
	seg := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+recordHeaderSize+4] ^= 0x10
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := l.Compact(CompactionPolicy{MergeChunks: true}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Compact on bit-rotted segment = %v, want ErrCorrupt", err)
	}
	// Old generation intact: no file was deleted, no manifest bumped.
	if s := l.Stats(); s.Gen != before.Gen || s.Segments != before.Segments {
		t.Fatalf("failed compaction mutated the log: %+v → %+v", before, s)
	}
	l.Close()
}

// TestCompactNoopSkipsRewrite: a pass that merges, dedups and ages
// nothing must not rewrite segments or publish a new generation —
// periodic ticks on an already-compacted log stay cheap.
func TestCompactNoopSkipsRewrite(t *testing.T) {
	dir, want := compactionFixture(t)
	fs := vfs.NewFaultFS(0) // ruleless: pure op observer
	l := mustOpen(t, dir, Options{MaxSegmentBytes: 512, FS: fs})
	defer l.Close()
	if _, err := l.Compact(CompactionPolicy{MergeChunks: true}); err != nil {
		t.Fatal(err)
	}
	g1 := l.Stats().Gen
	before := fs.Ops()
	res, err := l.Compact(CompactionPolicy{MergeChunks: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Gen != 0 || res.Merged+res.Deduped+res.Aged != 0 {
		t.Fatalf("second pass was not a no-op: %+v", res)
	}
	// The second pass must hit the generation memo before touching the
	// filesystem at all — zero ops means even the read+decode phase was
	// skipped, so periodic ticks on an already-compacted log stay free.
	if d := fs.Ops() - before; d != 0 {
		t.Fatalf("no-op pass performed %d fs ops, want 0 (memo fast path)", d)
	}
	if g := l.Stats().Gen; g != g1 {
		t.Fatalf("no-op pass published a generation: %d → %d", g1, g)
	}
	for dev, keys := range want {
		if got := stitch(queryAll(t, l, dev)); !reflect.DeepEqual(got, keys) {
			t.Fatalf("%s polyline diverged across no-op pass", dev)
		}
	}
	// A changed policy invalidates the memo: this pass must hit the disk
	// again (and may legitimately rewrite, since ageing is now enabled).
	before = fs.Ops()
	if _, err := l.Compact(CompactionPolicy{MergeChunks: true, CoarseTolerance: 1}); err != nil {
		t.Fatal(err)
	}
	if fs.Ops() == before {
		t.Fatal("policy change did not invalidate the memo: no fs ops")
	}
}
