// Package segmentlog is the durable persistence layer of the trajectory
// database: an append-only, CRC-checksummed log of finalized compressed
// trajectories in the trajstore delta-varint wire format.
//
// The design follows the constraints of the paper's target platform and
// the ROADMAP's server-side north star at once: writes are single-pass
// and sequential (one buffered append per finalized trajectory, fsync
// only on an explicit Sync barrier), files rotate at a size threshold so
// retention and compaction can operate on whole segments, and recovery
// is a forward scan that rebuilds the in-memory index (device → record
// offsets + time bounds + spatial bounding boxes) and truncates a torn
// tail left by a crash mid-write. Everything before the last completed
// Sync is durable; a torn record after it is detected by length/CRC
// validation and dropped. Sealed segments additionally carry a block
// index file (see blockindex.go) so reopening a large log does not
// re-read every byte, and window queries (see window.go) prune records
// spatially without decoding them.
//
// On-disk layout. A log directory holds a MANIFEST (see manifest.go)
// naming the live segment files in logical order, numbered segment files
// "seg-00000001.log", "seg-00000002.log", ..., their sealed block
// indexes "seg-00000001.idx", and a LOCK file granting the owning
// process exclusive write access. Segment numbers are allocated from a
// monotonic sequence and never reused while referenced; after compaction
// (see compact.go) a low-numbered file may be superseded by a
// higher-numbered one holding older data, which is why the MANIFEST —
// not directory order — defines the log. Each segment file starts with
// an 8-byte header — magic "BQSLOG" plus a version byte and a zero pad —
// followed by length-prefixed records:
//
//	u32  bodyLen   little-endian length of body
//	u32  crc32c    Castagnoli CRC of body
//	body:
//	  u16 deviceLen, device ID bytes
//	  u32 t0, u32 t1       time bounds of the trajectory (seconds)
//	  4 × i32              version ≥ 2: spatial bounding box in 1e-7°
//	                       (minLat, minLon, maxLat, maxLon)
//	  payload              trajstore.DeltaEncode of the key points
//
// Version 1 files (no bounding box in the body) remain fully readable;
// compaction rewrites them into the current format. A record is valid
// iff its length prefix fits in the file, bodyLen is plausible
// (≤ MaxRecordBytes) and the CRC matches; the first invalid record ends
// the scan and the file is truncated there.
package segmentlog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"

	"github.com/trajcomp/bqs/internal/trajstore"
	"github.com/trajcomp/bqs/internal/trajstore/segmentlog/vfs"
)

const (
	// headerSize is the per-file header: 6 magic bytes, version, pad.
	headerSize = 8
	// recordHeaderSize prefixes every record: u32 bodyLen + u32 crc32c.
	recordHeaderSize = 8
	// version is the current format version byte: record bodies carry a
	// spatial bounding box between the time bounds and the payload.
	version = 2
	// versionLegacy is the original format: no bounding box. Legacy
	// files are readable (window queries decode their records instead
	// of pruning them); appends never extend one — a writable Open of a
	// legacy directory seals the old active segment and starts a fresh
	// current-format file.
	versionLegacy = 1
	// MaxRecordBytes caps a single record body. A length prefix above it
	// is treated as corruption, bounding allocation on malicious or
	// damaged input. 16 MiB ≈ 1.5 M key points per trajectory.
	MaxRecordBytes = 16 << 20
	// DefaultMaxSegmentBytes is the rotation threshold when Options
	// leaves it zero.
	DefaultMaxSegmentBytes = 64 << 20
	// lockName is the advisory lock file granting a process exclusive
	// write access to the directory.
	lockName = "LOCK"
)

var magic = [6]byte{'B', 'Q', 'S', 'L', 'O', 'G'}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed reports an operation on a closed log.
var ErrClosed = errors.New("segmentlog: closed")

// ErrReadOnly reports a mutating operation on a log opened with
// Options.ReadOnly.
var ErrReadOnly = errors.New("segmentlog: read-only")

// ErrLocked reports that another process holds the directory's write
// lock (a live engine, another bqsrecover -repair, ...).
var ErrLocked = errors.New("segmentlog: directory locked by another process")

// ErrCorrupt reports a structurally invalid segment file or manifest
// (bad magic, unsupported version, sealed CRC mismatch) that recovery
// cannot interpret at all; torn or checksum-failing records are
// recovered from silently and do not raise it. A corrupt block-index
// file never raises it either — the index is an accelerator and falls
// back to scanning the segment.
var ErrCorrupt = errors.New("segmentlog: corrupt segment file")

// Options parameterizes Open.
type Options struct {
	// MaxSegmentBytes rotates the active segment file once its size
	// reaches this threshold. Default DefaultMaxSegmentBytes.
	MaxSegmentBytes int64
	// SyncOnRotate fsyncs a segment before rotating away from it, so a
	// completed segment file is always fully durable. Default true is
	// expressed inverted so the zero value keeps it on.
	NoSyncOnRotate bool
	// ReadOnly opens the log purely for inspection: no directory lock is
	// taken and nothing on disk is modified — a torn tail is skipped
	// (reported in Stats.Truncated) instead of truncated in place, and
	// Append/Sync/Compact return ErrReadOnly. This is the safe mode for
	// looking at a directory a live engine may own; bqsrecover uses it
	// by default.
	ReadOnly bool
	// Compaction, when non-nil, is the policy CompactNow applies — the
	// engine's periodic compaction hook reaches the log through it.
	// Explicit Compact calls pass their own policy and ignore this
	// field.
	Compaction *CompactionPolicy
	// FS substitutes the filesystem every disk operation goes through.
	// nil means vfs.OS, the zero-overhead passthrough to the os
	// package — production callers never set this. Tests inject
	// vfs.FaultFS to exercise ENOSPC/EIO/fsync-failure/crash schedules
	// against the whole durable stack.
	FS vfs.FS
	// CacheBytes, when positive, enables the read-side record cache
	// with that byte budget: query paths serve repeated reads of the
	// same record from memory, skipping the pread, CRC re-verification
	// and delta decode. Entries are keyed by manifest generation, so
	// compaction (and every other layout change) invalidates them
	// without a flush protocol. Zero disables caching — the default,
	// and the pre-cache behavior exactly.
	CacheBytes int64
	// cache, when non-nil, overrides CacheBytes with an existing cache
	// instance. The sharded layer sets it so all shard logs share one
	// budget; single-log callers leave it nil.
	cache *recordCache
}

// Record is one persisted trajectory, decoded. It is an alias of
// trajstore.PersistedRecord so the storage layer can consume query
// results without importing this package.
type Record = trajstore.PersistedRecord

// recordMeta is the indexed metadata of one record: where it lives in
// its segment file and everything a query can prune on without
// decoding the payload. It is rebuilt on Open from the segment's block
// index (or by scanning the file) and is the unit the block index
// serializes.
type recordMeta struct {
	device  string
	off     int64 // body offset within the segment file
	bodyLen int
	t0, t1  uint32
	bb      bbox
	hasBB   bool // current-format records carry a bbox; legacy ones do not
}

// recordAddr locates one record for the per-device index: the segment
// slot in Log.segs and the position within that segment's meta list.
type recordAddr struct {
	seg, pos int32
}

// segmentFile is one on-disk segment.
type segmentFile struct {
	path string
	size int64 // valid bytes (post-recovery, including header)
	ver  byte  // record-format version of the file (0 while lazy)
	idx  bool  // a sealed block-index file is live for this segment
	lazy bool  // per-record metadata not loaded yet; sum/size come from the manifest/stat
	sum  segSummary
}

// refSnap locates one record for a read outside the lock.
type refSnap struct {
	seg     int
	off     int64
	bodyLen int
}

// segSnap is the per-segment part of a read snapshot.
type segSnap struct {
	path string
	ver  byte
}

// Stats is a point-in-time snapshot of the log's contents.
type Stats struct {
	Segments    int    // segment files
	IndexedSegs int    // sealed segments with a live block index
	Records     int    // records indexed
	Devices     int    // distinct device IDs
	Bytes       int64  // total valid bytes on disk, headers included
	Truncated   int64  // torn/corrupt tail bytes dropped by recovery on Open (detected, not dropped, in read-only mode)
	Gen         uint64 // manifest generation currently published
}

// Log is an open segment log. All methods are safe for concurrent use;
// appends are serialized, queries read committed records directly from
// disk, and Compact rewrites sealed segments concurrently with both.
type Log struct {
	dir  string
	opts Options
	ro   bool
	fs   vfs.FS   // never nil: Options.FS or vfs.OS
	lock vfs.File // flock'd LOCK file handle (nil in read-only mode)

	// compactMu serializes compactions; it is never held together with
	// mu except for the brief publish step.
	compactMu sync.Mutex
	// lastCompact memoizes the previous pass (guarded by compactMu) so
	// a periodic tick on an unchanged log returns without re-reading
	// and re-decoding every sealed segment. gen is the generation the
	// pass left behind; nextAgeT1 is the smallest record timestamp not
	// yet old enough to age (MaxUint32 when none) — a later pass with
	// the same policy can only differ once the cutoff reaches it.
	lastCompact struct {
		valid     bool
		gen       uint64
		policy    CompactionPolicy // Now is ignored in comparisons
		nextAgeT1 uint32
	}

	// compactLive counts decoded sealed records currently held in
	// memory by an in-flight streaming compaction; compactLiveHWM is
	// the high-water mark across passes. They observe the compactor's
	// bounded-memory invariant (tests assert on the HWM).
	compactLive    atomic.Int64
	compactLiveHWM atomic.Int64

	// loadHook, when non-nil, observes every lazy segment load (called
	// under mu with the segment path). Test-only: it pins the "cold
	// segments cost nothing until read" property of lazy opens.
	loadHook func(path string)

	// cache is the read-side record cache (nil when not configured);
	// possibly shared with other shard logs. See cache.go.
	cache *recordCache
	// reclaimed accumulates net disk bytes freed by published
	// compactions (BytesIn − BytesOut per pass) over this handle's
	// lifetime.
	reclaimed atomic.Int64

	mu      sync.Mutex
	closed  bool
	gen     uint64 // last manifest generation written (or read, in RO mode)
	nextSeq uint64 // next segment file number to allocate
	segs    []segmentFile
	segRecs [][]recordMeta          // parallel to segs: record metadata in file order (nil while a segment is lazy)
	index   map[string][]recordAddr // device → records, append order; stale while indexDirty
	// indexDirty is set while at least one lazily deferred segment has
	// not been folded into the per-device index. Per-device paths call
	// ensureAllLoadedLocked, which loads every deferred segment and
	// rebuilds the index; window queries load only the segments their
	// summary pruning cannot skip and leave the flag set.
	indexDirty bool
	active     vfs.File // write handle of segs[len(segs)-1] (nil in RO mode)
	wbuf       []byte   // record assembly buffer, reused across appends
	pend       []byte   // appended but not yet written-through bytes
	off        int64    // logical size of the active segment (incl. pend)
	// syncedOff is the active-segment offset covered by the last
	// successful fsync: everything below it is durable, everything at
	// or above it exists only in the page cache (and in unsynced).
	syncedOff int64
	// unsynced mirrors every byte appended since the last successful
	// fsync of the active segment (flushed or not). After a failed
	// fsync the page-cache state of those bytes is unknown — the
	// kernel may have dropped them — so this buffer is the only copy
	// salvage (healLocked) can rewrite into a fresh segment. Cleared
	// on every successful Sync; bounded by MaxSegmentBytes.
	unsynced []byte
	// poisoned marks the active segment as unusable after a failed
	// write or fsync: no further byte may be appended to it, and the
	// records in atRisk are withheld from the index until healLocked
	// lands them in a fresh segment. poisonErr is the causing error.
	poisoned  bool
	poisonErr error
	// atRisk holds the record metadata of the unsynced region while
	// poisoned: removed from the index (so "indexed ⇒ servable" holds
	// even though their segment bytes may be gone) and re-indexed by a
	// successful heal.
	atRisk []recordMeta
	stats  Stats
}

// compactLiveAdd advances the live decoded-record count and its
// high-water mark.
func (l *Log) compactLiveAdd(n int) {
	live := l.compactLive.Add(int64(n))
	for {
		hwm := l.compactLiveHWM.Load()
		if live <= hwm || l.compactLiveHWM.CompareAndSwap(hwm, live) {
			return
		}
	}
}

// addRecordLocked indexes one record of segment slot seg: the segment's
// meta list, the per-device index and the segment summary all advance
// together. Callers hold mu (or are inside Open).
func (l *Log) addRecordLocked(seg int, m recordMeta) {
	l.index[m.device] = append(l.index[m.device], recordAddr{seg: int32(seg), pos: int32(len(l.segRecs[seg]))})
	l.segRecs[seg] = append(l.segRecs[seg], m)
	l.segs[seg].sum.add(m)
	l.stats.Records++
}

// rebuildIndexLocked reconstructs the per-device index (and the record
// count) from segRecs after compaction replaced the segment list.
// Iterating segments in logical order preserves per-device append
// order, the Query contract.
func (l *Log) rebuildIndexLocked() {
	idx := make(map[string][]recordAddr, len(l.index))
	records := 0
	for si := range l.segRecs {
		for pi := range l.segRecs[si] {
			dev := l.segRecs[si][pi].device
			idx[dev] = append(idx[dev], recordAddr{seg: int32(si), pos: int32(pi)})
		}
		records += len(l.segRecs[si])
	}
	l.index = idx
	l.stats.Records = records
}

// Open opens (creating if necessary) the segment log in dir: it acquires
// the directory's write lock, loads the MANIFEST (falling back to a
// lexical scan for pre-manifest directories, which it then adopts),
// removes files a crashed compaction left unreferenced, rebuilds the
// index of every live segment — from its sealed block index when one
// loads cleanly, by scanning the file otherwise — truncates any torn
// tail, and readies the last segment for appending. With
// Options.ReadOnly it does none of the mutating parts — no lock, no
// cleanup, no truncation, no appending.
func Open(dir string, opts Options) (*Log, error) {
	return open(dir, opts, true)
}

// openNoLock is Open without taking the directory flock: full writable
// recovery semantics, no mutual exclusion. The only legitimate caller
// is the sharded-log layer, whose top-level lock file IS this
// directory's LOCK (the sharded root reuses the legacy single-log lock
// path precisely so legacy and sharded writers exclude each other), so
// the exclusion already holds and flocking twice in one process would
// self-deadlock on some platforms.
func openNoLock(dir string, opts Options) (*Log, error) {
	return open(dir, opts, false)
}

func open(dir string, opts Options, takeLock bool) (*Log, error) {
	if opts.MaxSegmentBytes <= 0 {
		opts.MaxSegmentBytes = DefaultMaxSegmentBytes
	}
	if opts.MaxSegmentBytes < headerSize+recordHeaderSize {
		return nil, fmt.Errorf("segmentlog: MaxSegmentBytes %d too small", opts.MaxSegmentBytes)
	}
	fsys := opts.FS
	if fsys == nil {
		fsys = vfs.OS
	}
	l := &Log{dir: dir, opts: opts, ro: opts.ReadOnly, fs: fsys, index: make(map[string][]recordAddr)}
	if opts.cache != nil {
		l.cache = opts.cache
	} else {
		l.cache = newRecordCache(opts.CacheBytes)
	}
	if l.ro {
		fi, err := l.fs.Stat(dir)
		if err != nil {
			return nil, fmt.Errorf("segmentlog: %w", err)
		}
		if !fi.IsDir() {
			return nil, fmt.Errorf("segmentlog: %s is not a directory", dir)
		}
	} else {
		if err := l.fs.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("segmentlog: %w", err)
		}
		if takeLock {
			lock, err := acquireLock(l.fs, dir)
			if err != nil {
				return nil, err
			}
			l.lock = lock
		}
	}
	ok := false
	defer func() {
		if !ok {
			l.releaseLock()
		}
	}()

	man, found, err := readManifest(l.fs, dir)
	if err != nil {
		return nil, err
	}
	var entries []manifestSeg
	if found {
		l.gen = man.Gen
		entries = man.Segs
	} else {
		// Legacy (pre-manifest) directory: lexical order was logical
		// order back when files were only ever appended in sequence.
		globbed, err := l.fs.Glob(filepath.Join(dir, "seg-*.log"))
		if err != nil {
			return nil, fmt.Errorf("segmentlog: %w", err)
		}
		sort.Strings(globbed)
		for _, p := range globbed {
			if _, ok := parseSegName(filepath.Base(p)); ok {
				entries = append(entries, manifestSeg{Name: filepath.Base(p)})
			}
		}
	}
	for i, ent := range entries {
		path := filepath.Join(dir, ent.Name)
		if err := l.loadSegment(path, ent, i == len(entries)-1); err != nil {
			return nil, err
		}
		if n, ok := parseSegName(ent.Name); ok && n >= l.nextSeq {
			l.nextSeq = n + 1
		}
	}
	if l.nextSeq == 0 {
		l.nextSeq = 1
	}
	// Sweep crashed-compaction leftovers only AFTER the referenced set
	// scanned clean: if a referenced segment turns out unreadable, an
	// unpublished compactor output may be the only intact copy of its
	// data — deleting it first would destroy the salvage option. The
	// sweep's live set is the OLD manifest plus the block indexes
	// loadSegment just (re)built — those are published by the manifest
	// written below, so deleting them here would leave that manifest
	// referencing missing files.
	if found && !l.ro {
		keep := make(map[string]bool)
		for i := range l.segs {
			if l.segs[i].idx {
				if n, ok := parseSegName(filepath.Base(l.segs[i].path)); ok {
					keep[idxName(n)] = true
				}
			}
		}
		if err := cleanUnreferenced(l.fs, dir, man, keep); err != nil {
			return nil, err
		}
	}

	if l.ro {
		ok = true
		return l, nil
	}
	if len(l.segs) == 0 {
		f, seg, err := l.newSegmentFileLocked()
		if err != nil {
			return nil, err
		}
		l.segs = append(l.segs, seg)
		l.segRecs = append(l.segRecs, nil)
		l.active = f
		l.off = headerSize
		l.stats.Bytes += headerSize
	} else if last := &l.segs[len(l.segs)-1]; last.ver != version {
		// Legacy final segment: current-format records must never be
		// appended into a version-1 file, so seal it as recovered and
		// start a fresh segment — the upgrade is just a rotation.
		f, seg, err := l.newSegmentFileLocked()
		if err != nil {
			return nil, err
		}
		l.segs = append(l.segs, seg)
		l.segRecs = append(l.segRecs, nil)
		l.active = f
		l.off = headerSize
		l.stats.Bytes += headerSize
	} else {
		// Reopen the last segment for appending at its recovered size.
		f, err := l.fs.OpenFile(last.path, os.O_RDWR, 0o644)
		if err != nil {
			return nil, fmt.Errorf("segmentlog: %w", err)
		}
		if _, err := f.Seek(last.size, io.SeekStart); err != nil {
			_ = f.Close() // open failed; the seek error is the story
			return nil, fmt.Errorf("segmentlog: %w", err)
		}
		l.active = f
		l.off = last.size
	}
	// Whatever recovery read back from disk is the durable baseline.
	l.syncedOff = l.off
	// Publish the live set: after a successful writable Open the
	// MANIFEST always exists and matches memory (adopting legacy
	// directories and sealing any recovery edits under a fresh
	// generation).
	if err := l.writeManifestLocked(); err != nil {
		_ = l.active.Close() // open failed; the publish error is the story
		return nil, err
	}
	ok = true
	return l, nil
}

// loadSegment rebuilds one live segment's index: a sealed segment whose
// manifest entry carries both a block-index reference and a summary is
// deferred entirely — the CRC-protected manifest already provides the
// size-class metadata (record count, time bounds, bbox union) that
// opens, stats and window-query pruning need, so the segment costs no
// read and no per-record memory until a query actually touches it (see
// ensureSegLoadedLocked). Everything else loads eagerly: from the block
// index when it validates, by a full scan otherwise. On writable opens
// a sealed current-format segment that had to be scanned gets its block
// index (re)built from the scan, so the next Open is cheap again —
// legacy version-1 segments are left as they are (compaction is their
// upgrade path) and keep answering through the scan/decode fallback.
func (l *Log) loadSegment(path string, ent manifestSeg, final bool) error {
	if !final && ent.Idx {
		if ent.Sum != nil {
			fi, err := l.fs.Stat(path)
			if err != nil {
				return fmt.Errorf("segmentlog: %w", err)
			}
			l.segs = append(l.segs, segmentFile{
				path: path, size: fi.Size(), idx: true, lazy: true, sum: *ent.Sum,
			})
			l.segRecs = append(l.segRecs, nil)
			l.stats.Bytes += fi.Size()
			l.stats.Records += ent.Sum.records
			l.indexDirty = true
			return nil
		}
		if l.tryLoadIndex(path, ent) {
			return nil
		}
	}
	if err := l.scanSegment(path, final); err != nil {
		return err
	}
	if !l.ro && !final {
		s := &l.segs[len(l.segs)-1]
		if s.ver == version {
			if err := writeBlockIndex(l.fs, s.path, s.size, s.ver, l.segRecs[len(l.segs)-1]); err == nil {
				s.idx = true
			}
		}
	}
	return nil
}

// sumMatches reports whether the summary computed from metas reproduces
// a manifest summary. Both were sealed from the same metadata, so the
// CRC-protected manifest — the log's source of truth — must agree with
// what the index (or a rescan) claims; a structurally valid index that
// diverges (a stale file from an earlier life of this sequence number,
// a crafted CRC collision) is rejected.
func sumMatches(metas []recordMeta, want segSummary) bool {
	var sum segSummary
	for _, m := range metas {
		sum.add(m)
	}
	if !sum.bbAll {
		sum.bb = emptyBBox() // the manifest omits a partial union
	}
	return sum == want
}

// tryLoadIndex loads a sealed segment through its block index; false
// means the index is missing, corrupt, stale, or in disagreement with
// the manifest's segment summary, and the caller must scan the segment
// file instead.
func (l *Log) tryLoadIndex(path string, ent manifestSeg) bool {
	size, ver, metas, err := loadBlockIndex(l.fs, path)
	if err != nil {
		return false
	}
	if ent.Sum != nil && !sumMatches(metas, *ent.Sum) {
		return false
	}
	seg := len(l.segs)
	l.segs = append(l.segs, segmentFile{path: path, size: size, ver: ver, idx: true})
	l.segRecs = append(l.segRecs, nil)
	if len(metas) > 0 {
		l.segRecs[seg] = make([]recordMeta, 0, len(metas))
	}
	for _, m := range metas {
		l.addRecordLocked(seg, m)
	}
	l.stats.Bytes += size
	return true
}

// ensureSegLoadedLocked materializes a deferred segment's per-record
// metadata: through its block index when it validates against the
// manifest summary, by scanning the segment file otherwise. The loaded
// records are NOT folded into the per-device index here — segments may
// load out of logical order, and the index must list a device's
// records in append order — so the flag indexDirty stays set until
// ensureAllLoadedLocked rebuilds it. Callers hold mu.
func (l *Log) ensureSegLoadedLocked(si int) error {
	s := &l.segs[si]
	if !s.lazy {
		return nil
	}
	if l.loadHook != nil {
		l.loadHook(s.path)
	}
	metas, size, ver, idxOK, err := l.lazySegMetas(s)
	if err != nil {
		return err
	}
	// Re-derive the summary and record count from what actually loaded:
	// a torn-tail truncation in the fallback scan may have salvaged
	// fewer records than the manifest summary credited at Open.
	l.stats.Records += len(metas) - int(s.sum.records)
	var sum segSummary
	for _, m := range metas {
		sum.add(m)
	}
	l.stats.Bytes += size - s.size
	s.sum = sum
	s.size = size
	s.ver = ver
	s.idx = idxOK
	s.lazy = false
	l.segRecs[si] = metas
	l.indexDirty = true
	return nil
}

// lazySegMetas reads a deferred segment's record metadata: through its
// block index when it validates against the manifest summary, by
// scanning the segment file otherwise. The scan applies exactly the
// sealed-segment recovery policy of scanSegment — drop a legitimately
// torn tail, refuse mid-file corruption on writable handles, stay
// lenient read-only — the damage is simply discovered at first touch
// instead of at Open. A writable scan reseals the block index so the
// next load is cheap again.
func (l *Log) lazySegMetas(s *segmentFile) ([]recordMeta, int64, byte, bool, error) {
	if size, ver, metas, err := loadBlockIndex(l.fs, s.path); err == nil && sumMatches(metas, s.sum) {
		return metas, size, ver, true, nil
	}
	data, err := l.fs.ReadFile(s.path)
	if err != nil {
		return nil, 0, 0, false, fmt.Errorf("segmentlog: %w", err)
	}
	if len(data) < headerSize {
		if l.ro {
			l.stats.Truncated += int64(len(data))
			return nil, int64(len(data)), version, false, nil
		}
		return nil, 0, 0, false, fmt.Errorf("%w: %s: sealed segment shorter than its header", ErrCorrupt, filepath.Base(s.path))
	}
	if [6]byte(data[:6]) != magic {
		return nil, 0, 0, false, fmt.Errorf("%w: %s: bad magic", ErrCorrupt, filepath.Base(s.path))
	}
	ver := data[6]
	if ver != versionLegacy && ver != version {
		return nil, 0, 0, false, fmt.Errorf("%w: %s: unsupported version %d", ErrCorrupt, filepath.Base(s.path), ver)
	}
	var metas []recordMeta
	valid := int64(headerSize)
	pos := headerSize
	for {
		body, bodyOff, next, ok := nextRecord(data, pos)
		if !ok {
			break
		}
		dev, t0, t1, bb, hasBB, payload, err := splitBody(body, ver)
		if err != nil || !trajstore.DeltaValidate(payload) {
			break
		}
		metas = append(metas, recordMeta{
			device: dev, off: int64(bodyOff), bodyLen: len(body),
			t0: t0, t1: t1, bb: bb, hasBB: hasBB,
		})
		valid = int64(next)
		pos = next
	}
	if torn := int64(len(data)) - valid; torn > 0 {
		if !l.ro {
			if off := resyncScan(data, int(valid), ver); off >= 0 {
				return nil, 0, 0, false, fmt.Errorf("%w: %s: invalid record at offset %d but valid data at %d — refusing to truncate a sealed segment mid-file",
					ErrCorrupt, filepath.Base(s.path), valid, off)
			}
			if err := l.fs.Truncate(s.path, valid); err != nil {
				return nil, 0, 0, false, fmt.Errorf("segmentlog: truncating torn tail: %w", err)
			}
		}
		l.stats.Truncated += torn
	}
	idxOK := false
	if !l.ro && ver == version {
		if err := writeBlockIndex(l.fs, s.path, valid, ver, metas); err == nil {
			idxOK = true
		}
	}
	return metas, valid, ver, idxOK, nil
}

// ensureAllLoadedLocked materializes every deferred segment and rebuilds
// the per-device index once. Callers hold mu.
func (l *Log) ensureAllLoadedLocked() error {
	if !l.indexDirty {
		return nil
	}
	for si := range l.segs {
		if err := l.ensureSegLoadedLocked(si); err != nil {
			return err
		}
	}
	l.rebuildIndexLocked()
	l.indexDirty = false
	return nil
}

// acquireLock takes the directory's advisory write lock: an flock(2) on
// the LOCK file, which the kernel releases automatically if the process
// dies, so a crashed owner never wedges the directory. The holder's PID
// is written into the file purely as a diagnostic.
func acquireLock(fsys vfs.FS, dir string) (vfs.File, error) {
	f, err := fsys.OpenFile(filepath.Join(dir, lockName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		// Name the directory, not just the LOCK path buried in a
		// *PathError: a bqsd tenant-open failure must say which tenant
		// directory could not be locked.
		return nil, fmt.Errorf("segmentlog: locking %s: %w", dir, err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		if err != syscall.EWOULDBLOCK && err != syscall.EAGAIN {
			// Not contention (e.g. a filesystem without flock support):
			// report the real error, not a phantom lock holder.
			_ = f.Close()
			return nil, fmt.Errorf("segmentlog: flock %s: %w", dir, err)
		}
		pid := make([]byte, 32)
		n, _ := f.ReadAt(pid, 0)
		_ = f.Close()
		holder := strings.TrimSpace(string(pid[:n]))
		if holder == "" {
			return nil, fmt.Errorf("%w: %s", ErrLocked, dir)
		}
		return nil, fmt.Errorf("%w: %s (held by pid %s)", ErrLocked, dir, holder)
	}
	if err := f.Truncate(0); err == nil {
		f.WriteAt([]byte(strconv.Itoa(os.Getpid())+"\n"), 0)
	}
	return f, nil
}

// releaseLock drops the directory lock; a no-op in read-only mode or
// after release.
func (l *Log) releaseLock() {
	if l.lock == nil {
		return
	}
	syscall.Flock(int(l.lock.Fd()), syscall.LOCK_UN)
	_ = l.lock.Close() // the unlock above is what matters; nothing was written
	l.lock = nil
}

// cleanUnreferenced removes files a crashed compaction or rotation left
// behind: a stale manifest temp file, and canonical segment or
// block-index files the manifest does not reference (either a new
// generation that was never published, or a superseded generation whose
// deletion was interrupted). keep names extra files the caller intends
// to publish in the next manifest (freshly rebuilt block indexes). Only
// called on writable opens with a validated manifest in hand.
func cleanUnreferenced(fsys vfs.FS, dir string, man manifest, keep map[string]bool) error {
	live := make(map[string]bool, 2*len(man.Segs)+len(keep))
	for name := range keep {
		live[name] = true
	}
	for _, s := range man.Segs {
		live[s.Name] = true
		if s.Idx {
			if n, ok := parseSegName(s.Name); ok {
				live[idxName(n)] = true
			}
		}
	}
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("segmentlog: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		stale := name == manifestTmpName
		if _, ok := parseSegName(name); ok && !live[name] {
			stale = true
		}
		if _, ok := parseIdxName(name); ok && !live[name] {
			stale = true
		}
		if stale {
			if err := fsys.Remove(filepath.Join(dir, name)); err != nil && !errors.Is(err, fs.ErrNotExist) {
				return fmt.Errorf("segmentlog: removing unreferenced %s: %w", name, err)
			}
		}
	}
	return nil
}

// manifestLocked renders the current live set as a manifest under the
// next generation number. Sealed segments publish their block-index
// reference and bbox/time summary; the last (active) segment's summary
// is still growing, so it is omitted. Callers hold mu (or are inside
// Open/publish).
func (l *Log) manifestLocked() manifest {
	return manifest{Gen: l.gen + 1, Segs: manifestSegs(l.segs)}
}

// manifestSegs builds the manifest entries for a logical segment list;
// the final entry is the active segment and carries no summary.
func manifestSegs(segs []segmentFile) []manifestSeg {
	out := make([]manifestSeg, len(segs))
	for i, s := range segs {
		ms := manifestSeg{Name: filepath.Base(s.path), Idx: s.idx}
		if i < len(segs)-1 && s.sum.records > 0 {
			sum := s.sum
			ms.Sum = &sum
		}
		out[i] = ms
	}
	return out
}

// writeManifestLocked atomically publishes the current live segment list
// under the next generation number. Callers hold mu (or are inside
// Open/publish).
func (l *Log) writeManifestLocked() error {
	m := l.manifestLocked()
	if err := writeManifest(l.fs, l.dir, m); err != nil {
		return err
	}
	l.gen = m.Gen
	return nil
}

// scanSegment reads one segment file, indexes its valid records and
// handles an invalid tail. Dropping bytes after the first invalid
// record is only sound where a crash could actually tear a write: the
// final (active-to-be) segment, or a genuinely record-free tail left by
// an unsynced rotation. A *non-final* segment whose bad record is
// followed by more valid records is mid-file corruption of data that
// was once durable — now that compaction makes sealed segments
// long-lived archives, that must fail the open (ErrCorrupt) rather
// than silently destroy everything after the rotten byte. Read-only
// opens stay lenient throughout: they modify nothing and exist to
// salvage whatever is readable.
func (l *Log) scanSegment(path string, final bool) error {
	data, err := l.fs.ReadFile(path)
	if err != nil {
		return fmt.Errorf("segmentlog: %w", err)
	}
	if len(data) < headerSize {
		// A crash can leave a freshly rotated file with a partial
		// header; rewrite it as empty rather than failing the open.
		if l.ro {
			l.segs = append(l.segs, segmentFile{path: path, size: int64(len(data)), ver: version})
			l.segRecs = append(l.segRecs, nil)
			l.stats.Truncated += int64(len(data))
			return nil
		}
		if !final {
			return fmt.Errorf("%w: %s: sealed segment shorter than its header", ErrCorrupt, filepath.Base(path))
		}
		return l.rewriteEmpty(path)
	}
	if [6]byte(data[:6]) != magic {
		return fmt.Errorf("%w: %s: bad magic", ErrCorrupt, filepath.Base(path))
	}
	ver := data[6]
	if ver != versionLegacy && ver != version {
		return fmt.Errorf("%w: %s: unsupported version %d", ErrCorrupt, filepath.Base(path), ver)
	}
	segIdx := len(l.segs)
	l.segs = append(l.segs, segmentFile{path: path, ver: ver})
	l.segRecs = append(l.segRecs, nil)
	valid := int64(headerSize)
	pos := headerSize
	for {
		body, bodyOff, next, ok := nextRecord(data, pos)
		if !ok {
			break
		}
		dev, t0, t1, bb, hasBB, payload, err := splitBody(body, ver)
		if err != nil || !trajstore.DeltaValidate(payload) {
			break
		}
		l.addRecordLocked(segIdx, recordMeta{
			device: dev, off: int64(bodyOff), bodyLen: len(body),
			t0: t0, t1: t1, bb: bb, hasBB: hasBB,
		})
		valid = int64(next)
		pos = next
	}
	if torn := int64(len(data)) - valid; torn > 0 {
		if !l.ro && !final {
			// Distinguish an unsynced-rotation torn tail (nothing valid
			// after the cut — safe to drop) from mid-file corruption
			// (valid records still follow the bad one — refusing is the
			// only non-destructive option).
			if off := resyncScan(data, int(valid), ver); off >= 0 {
				return fmt.Errorf("%w: %s: invalid record at offset %d but valid data at %d — refusing to truncate a sealed segment mid-file",
					ErrCorrupt, filepath.Base(path), valid, off)
			}
		}
		if !l.ro {
			if err := l.fs.Truncate(path, valid); err != nil {
				return fmt.Errorf("segmentlog: truncating torn tail: %w", err)
			}
		}
		l.stats.Truncated += torn
	}
	l.segs[segIdx].size = valid
	l.stats.Bytes += valid
	return nil
}

// resyncScan looks for a valid, decodable record anywhere after from;
// it returns the offset of the first one, or -1. Used to tell mid-file
// corruption apart from a torn tail (a false positive needs random
// bytes to pass both plausibility checks and CRC-32C, ~2^-32).
func resyncScan(data []byte, from int, ver byte) int {
	for pos := from + 1; pos+recordHeaderSize <= len(data); pos++ {
		if body, _, _, ok := nextRecord(data, pos); ok {
			if _, _, _, _, _, payload, err := splitBody(body, ver); err == nil && trajstore.DeltaValidate(payload) {
				return pos
			}
		}
	}
	return -1
}

// nextRecord validates the record starting at pos and returns its body,
// the body's file offset and the offset just past the record.
func nextRecord(data []byte, pos int) (body []byte, bodyOff, next int, ok bool) {
	if pos+recordHeaderSize > len(data) {
		return nil, 0, 0, false
	}
	bodyLen := int(binary.LittleEndian.Uint32(data[pos:]))
	crc := binary.LittleEndian.Uint32(data[pos+4:])
	if bodyLen < minBodySizeV1 || bodyLen > MaxRecordBytes {
		return nil, 0, 0, false
	}
	bodyOff = pos + recordHeaderSize
	next = bodyOff + bodyLen
	if next > len(data) || next < pos { // overflow-safe upper check
		return nil, 0, 0, false
	}
	body = data[bodyOff:next]
	if crc32.Checksum(body, castagnoli) != crc {
		return nil, 0, 0, false
	}
	return body, bodyOff, next, true
}

// minBodySizeV1 is the smallest legal version-1 body: device length
// prefix (may be zero bytes of ID), both time bounds, and a ≥1-byte
// payload (the delta-varint count). minBodySize adds the current
// format's 16-byte bounding box.
const (
	minBodySizeV1 = 2 + 4 + 4 + 1
	minBodySize   = minBodySizeV1 + 16
)

// minBodySizeFor returns the smallest legal body for a format version.
func minBodySizeFor(ver byte) int {
	if ver == versionLegacy {
		return minBodySizeV1
	}
	return minBodySize
}

// splitBody splits a validated record body into its fields according
// to the file's format version. hasBB is false for legacy bodies.
func splitBody(body []byte, ver byte) (device string, t0, t1 uint32, bb bbox, hasBB bool, payload []byte, err error) {
	if len(body) < minBodySizeFor(ver) {
		return "", 0, 0, bb, false, nil, trajstore.ErrShortBuffer
	}
	devLen := int(binary.LittleEndian.Uint16(body))
	rest := body[2:]
	need := devLen + 8 + 1
	if ver != versionLegacy {
		need += 16
	}
	if len(rest) < need {
		return "", 0, 0, bb, false, nil, trajstore.ErrShortBuffer
	}
	device = string(rest[:devLen])
	rest = rest[devLen:]
	t0 = binary.LittleEndian.Uint32(rest)
	t1 = binary.LittleEndian.Uint32(rest[4:])
	rest = rest[8:]
	if t0 > t1 {
		return "", 0, 0, bb, false, nil, fmt.Errorf("segmentlog: inverted record time bounds")
	}
	if ver != versionLegacy {
		bb.minLat = int32(binary.LittleEndian.Uint32(rest))
		bb.minLon = int32(binary.LittleEndian.Uint32(rest[4:]))
		bb.maxLat = int32(binary.LittleEndian.Uint32(rest[8:]))
		bb.maxLon = int32(binary.LittleEndian.Uint32(rest[12:]))
		rest = rest[16:]
		if bb.minLat > bb.maxLat || bb.minLon > bb.maxLon {
			return "", 0, 0, bbox{}, false, nil, fmt.Errorf("segmentlog: inverted record bounding box")
		}
		hasBB = true
	}
	return device, t0, t1, bb, hasBB, rest, nil
}

// encodeRecord appends the full wire form of one record — length prefix,
// CRC, body — to dst and returns the record's bounding box. Shared by
// the append path and the compactor so the two can never drift apart on
// format.
func encodeRecord(dst []byte, device string, t0, t1 uint32, keys []trajstore.GeoKey) ([]byte, bbox, error) {
	if len(device) > int(^uint16(0)) {
		return dst, bbox{}, fmt.Errorf("segmentlog: device ID longer than %d bytes", ^uint16(0))
	}
	payload, err := trajstore.DeltaEncode(keys)
	if err != nil {
		return dst, bbox{}, fmt.Errorf("segmentlog: %w", err)
	}
	bb := keysBBox(keys) // keys are range-validated by DeltaEncode above
	bodyLen := 2 + len(device) + 8 + 16 + len(payload)
	if bodyLen > MaxRecordBytes {
		return dst, bbox{}, fmt.Errorf("segmentlog: record body %d bytes exceeds MaxRecordBytes", bodyLen)
	}
	start := len(dst)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(bodyLen))
	dst = binary.LittleEndian.AppendUint32(dst, 0) // CRC backpatched below
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(device)))
	dst = append(dst, device...)
	dst = binary.LittleEndian.AppendUint32(dst, t0)
	dst = binary.LittleEndian.AppendUint32(dst, t1)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(bb.minLat))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(bb.minLon))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(bb.maxLat))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(bb.maxLon))
	dst = append(dst, payload...)
	body := dst[start+recordHeaderSize:]
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.Checksum(body, castagnoli))
	return dst, bb, nil
}

// timeBounds returns the min/max timestamps of a non-empty trajectory.
func timeBounds(keys []trajstore.GeoKey) (t0, t1 uint32) {
	t0, t1 = keys[0].T, keys[0].T
	for _, k := range keys[1:] {
		if k.T < t0 {
			t0 = k.T
		}
		if k.T > t1 {
			t1 = k.T
		}
	}
	return t0, t1
}

// rewriteEmpty resets path to a bare header (crash during file creation).
func (l *Log) rewriteEmpty(path string) error {
	f, err := l.fs.OpenFile(path, os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("segmentlog: %w", err)
	}
	defer f.Close()
	if err := writeHeader(f); err != nil {
		return err
	}
	l.segs = append(l.segs, segmentFile{path: path, size: headerSize, ver: version})
	l.segRecs = append(l.segRecs, nil)
	l.stats.Bytes += headerSize
	return nil
}

func writeHeader(f vfs.File) error {
	var hdr [headerSize]byte
	copy(hdr[:], magic[:])
	hdr[6] = version
	if _, err := f.Write(hdr[:]); err != nil {
		return fmt.Errorf("segmentlog: %w", err)
	}
	return nil
}

// newSegmentFileLocked creates the next numbered segment file with a
// header and fsyncs the directory entry. The file is NOT yet published:
// callers append it to l.segs and rewrite the manifest — until then
// recovery treats it as unreferenced garbage, so a crash in between
// loses nothing. Callers hold mu (or are inside Open). The directory
// fsync matters because a file whose directory entry is not durable can
// vanish wholesale in a crash, taking "synced" records with it.
func (l *Log) newSegmentFileLocked() (vfs.File, segmentFile, error) {
	path := filepath.Join(l.dir, segName(l.nextSeq))
	f, err := l.fs.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, segmentFile{}, fmt.Errorf("segmentlog: %w", err)
	}
	if err := writeHeader(f); err != nil {
		_ = f.Close() // creation failed; the file is removed below
		l.fs.Remove(path)
		return nil, segmentFile{}, err
	}
	if err := syncDir(l.fs, l.dir); err != nil {
		_ = f.Close() // creation failed; the file is removed below
		l.fs.Remove(path)
		return nil, segmentFile{}, err
	}
	l.nextSeq++
	return f, segmentFile{path: path, size: headerSize, ver: version}, nil
}

// syncDir fsyncs a directory so entries for newly created files are
// durable. Some platforms/filesystems reject fsync on directories;
// those errors are ignored (matching common WAL implementations).
func syncDir(fsys vfs.FS, dir string) error {
	d, err := fsys.Open(dir)
	if err != nil {
		return fmt.Errorf("segmentlog: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) {
		return fmt.Errorf("segmentlog: fsync dir: %w", err)
	}
	return nil
}

// Append persists one finalized trajectory for device. The record is
// buffered in the process; it reaches the OS on the next flush and is
// durable after the next Sync. Empty trajectories are ignored.
//
// An error means the record was NOT accepted — it is not in the log and
// never will be — so callers may safely retry or re-route it without
// creating duplicates. Conversely nil means accepted: the record is in
// the log (possibly only in the in-process salvage buffer of a poisoned
// segment) and will be durable after the next successful Sync.
//
// When the append fills the active segment, rotation happens inline. A
// failed rotation therefore does not fail the append: in every rotation
// failure mode the record is retained — still pending in the old
// segment (which stays active and writable, rotation retried by the
// next append) or salvaged by the poison path — and any durability
// consequence resurfaces from the next Append or Sync.
func (l *Log) Append(device string, keys []trajstore.GeoKey) error {
	if len(keys) == 0 {
		return nil
	}
	t0, t1 := timeBounds(keys)

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.ro {
		return ErrReadOnly
	}
	if l.poisoned {
		if err := l.healLocked(); err != nil {
			return fmt.Errorf("segmentlog: active segment poisoned (%v); salvage failed: %w", l.poisonErr, err)
		}
	}

	wbuf, bb, err := encodeRecord(l.wbuf[:0], device, t0, t1, keys)
	l.wbuf = wbuf[:0] // keep the (possibly grown) buffer for reuse
	if err != nil {
		return err
	}

	seg := len(l.segs) - 1
	l.addRecordLocked(seg, recordMeta{
		device:  device,
		off:     l.off + recordHeaderSize,
		bodyLen: len(wbuf) - recordHeaderSize,
		t0:      t0,
		t1:      t1,
		bb:      bb,
		hasBB:   true,
	})
	l.pend = append(l.pend, wbuf...)
	l.unsynced = append(l.unsynced, wbuf...) // salvage copy until the next successful fsync
	l.off += int64(len(wbuf))
	l.stats.Bytes += int64(len(wbuf))

	if l.off >= l.opts.MaxSegmentBytes {
		// The record was accepted above; a rotation failure must not
		// un-accept it (see the contract in the doc comment). The failure
		// is not lost: a poisoned segment makes the next Append/Sync
		// report it, and a benign publish failure is retried next append.
		_ = l.rotateLocked()
	}
	return nil
}

// flushLocked writes pending bytes through to the active file. A write
// failure — including a short write, which advances the file offset by
// an unknown amount and corrupts the tail — poisons the active segment:
// its on-disk state past the durable watermark is no longer trusted,
// and salvage (healLocked) must move the at-risk bytes to a fresh file.
func (l *Log) flushLocked() error {
	if len(l.pend) == 0 {
		return nil
	}
	if _, err := l.active.Write(l.pend); err != nil {
		err = fmt.Errorf("segmentlog: %w", err)
		l.poisonLocked(err)
		return err
	}
	l.pend = l.pend[:0]
	l.segs[len(l.segs)-1].size = l.off
	return nil
}

// poisonLocked marks the active segment unusable after a failed write
// or fsync. Everything at or above the durable watermark (syncedOff) is
// of unknown on-disk state — the kernel may have dropped or torn those
// pages — so those records are withdrawn from the index (preserving
// "indexed ⇒ servable"; their bytes live on in l.unsynced, the salvage
// copy) and the segment is logically sealed at the watermark. No
// further byte is appended to the file; healLocked rewrites the
// at-risk region into a fresh segment.
func (l *Log) poisonLocked(cause error) {
	if l.poisoned {
		return
	}
	l.poisoned = true
	l.poisonErr = cause
	cur := len(l.segs) - 1
	// Sync and flush always cover whole records, so the watermark is a
	// record boundary: a meta either starts below it (durable) or at/
	// above it (at risk) — never straddles.
	recs := l.segRecs[cur]
	keep := len(recs)
	for keep > 0 && recs[keep-1].off-recordHeaderSize >= l.syncedOff {
		keep--
	}
	l.atRisk = append(l.atRisk[:0], recs[keep:]...)
	l.segRecs[cur] = recs[:keep]
	l.segs[cur].size = l.syncedOff
	l.segs[cur].sum = segSummary{bb: emptyBBox()}
	for _, m := range l.segRecs[cur] {
		l.segs[cur].sum.add(m)
	}
	// Withdraw the at-risk records from the per-device index. They are
	// the newest entries of their devices (appends only extend the
	// active tail), so popping each device's list tail — newest first —
	// removes exactly them, without a full rebuild that would drop
	// still-lazy sealed segments.
	for i := len(l.atRisk) - 1; i >= 0; i-- {
		dev := l.atRisk[i].device
		lst := l.index[dev]
		l.index[dev] = lst[:len(lst)-1]
		if len(lst) == 1 {
			delete(l.index, dev)
		}
	}
	l.stats.Records -= len(l.atRisk)
	l.off = l.syncedOff
	l.pend = l.pend[:0] // mirrored in unsynced; the old file gets no more writes
	l.recountBytesLocked()
}

// healLocked salvages a poisoned log: it seals the old active segment
// at the durable watermark, rewrites the at-risk bytes into a fresh
// fsync'd segment, publishes the new segment list, and re-indexes the
// at-risk records there. On any failure the log stays poisoned — the
// salvage copy is untouched, so the next Append/Sync retries. After a
// successful heal every previously appended record is durable, so a
// Sync that triggered it may report success.
func (l *Log) healLocked() error {
	f, seg, err := l.newSegmentFileLocked()
	if err != nil {
		return err
	}
	if len(l.unsynced) > 0 {
		if _, err := f.Write(l.unsynced); err != nil {
			_ = f.Close() // salvage failed; the write error is the story
			l.fs.Remove(seg.path)
			return fmt.Errorf("segmentlog: salvage: %w", err)
		}
	}
	if err := f.Sync(); err != nil {
		_ = f.Close() // salvage failed; the fsync error is the story
		l.fs.Remove(seg.path)
		return fmt.Errorf("segmentlog: salvage: %w", err)
	}
	cur := len(l.segs) - 1
	seg.size = headerSize + int64(len(l.unsynced))
	newSeg := cur
	var dropPath string
	if l.syncedOff == headerSize {
		// No fsync ever succeeded on the old active file, so nothing in
		// it is durable — even its 8-byte header may be lost. Sealing it
		// would publish a segment whose on-disk bytes cannot be trusted;
		// instead the salvage file takes its manifest slot and the old
		// file becomes unreferenced debris (removed below, or swept by
		// the next Open).
		prevSeg, prevRecs := l.segs[cur], l.segRecs[cur]
		dropPath = prevSeg.path
		l.segs[cur] = seg
		l.segRecs[cur] = nil
		if err := l.writeManifestLocked(); err != nil {
			// Without the publish the heal has not happened: a crash now
			// must land on the old generation. The salvage file is left
			// on disk (the manifest rename may have landed before the
			// failure; see rotateLocked) and swept later.
			l.segs[cur], l.segRecs[cur] = prevSeg, prevRecs
			_ = f.Close() // heal aborted; the publish error is the story
			return err
		}
	} else {
		// A successful fsync covered everything below the watermark —
		// header included — so the old file can be sealed there. Its
		// bytes beyond the watermark are of unknown content but may
		// well be intact: left in place, a clean reopen would scan them
		// AND the salvaged copies, serving duplicates. The truncate
		// must therefore succeed before the new segment is published.
		if err := l.fs.Truncate(l.segs[cur].path, l.syncedOff); err != nil {
			_ = f.Close() // heal aborted; the truncate error is the story
			l.fs.Remove(seg.path)
			return fmt.Errorf("segmentlog: salvage: truncating poisoned segment: %w", err)
		}
		sealedIdx := false
		if l.segs[cur].ver == version {
			if err := writeBlockIndex(l.fs, l.segs[cur].path, l.syncedOff, l.segs[cur].ver, l.segRecs[cur]); err == nil {
				sealedIdx = true
			}
		}
		l.segs[cur].idx = sealedIdx
		l.segs = append(l.segs, seg)
		l.segRecs = append(l.segRecs, nil)
		if err := l.writeManifestLocked(); err != nil {
			l.segs = l.segs[:len(l.segs)-1]
			l.segRecs = l.segRecs[:len(l.segRecs)-1]
			l.segs[cur].idx = false
			_ = f.Close() // heal aborted; the publish error is the story
			return err
		}
		newSeg = len(l.segs) - 1
	}
	salvaged := l.atRisk
	l.atRisk = nil
	for _, m := range salvaged {
		m.off = m.off - l.syncedOff + headerSize
		l.addRecordLocked(newSeg, m)
	}
	old := l.active
	l.active = f
	l.off = headerSize + int64(len(l.unsynced))
	l.syncedOff = l.off
	l.unsynced = l.unsynced[:0]
	l.poisoned = false
	l.poisonErr = nil
	l.recountBytesLocked()
	_ = old.Close() // best-effort: the handle points at a superseded file
	if dropPath != "" {
		l.fs.Remove(dropPath) // best-effort: unreferenced since the publish
	}
	return nil
}

// recountBytesLocked recomputes Stats.Bytes from the segment list (the
// active segment counts its logical size including buffered appends).
func (l *Log) recountBytesLocked() {
	var bytes int64
	for i, s := range l.segs {
		if i == len(l.segs)-1 && !l.ro {
			bytes += l.off
		} else {
			bytes += s.size
		}
	}
	l.stats.Bytes = bytes
}

// rotateLocked seals the active segment and starts the next one. The
// new segment is created and published in the manifest BEFORE the old
// handle is closed, so a failure at any step leaves the old segment
// active and writable — the log never points at a closed file. The
// sealed segment's block index is written before the manifest
// references it; an index write failure only costs the acceleration
// (the segment scans fine), never the rotation.
func (l *Log) rotateLocked() error {
	if err := l.flushLocked(); err != nil {
		// flushLocked poisoned the segment; a successful salvage IS the
		// rotation (old segment sealed at the watermark, at-risk records
		// re-landed in a fresh fsync'd file), so the append succeeds.
		if healErr := l.healLocked(); healErr == nil {
			return nil
		}
		return err
	}
	if !l.opts.NoSyncOnRotate {
		if err := l.active.Sync(); err != nil {
			// After a failed fsync the dirty pages' fate is unknown —
			// retrying the Sync and trusting the file would be the
			// fsyncgate bug. Poison the segment and salvage instead.
			err = fmt.Errorf("segmentlog: %w", err)
			l.poisonLocked(err)
			if healErr := l.healLocked(); healErr == nil {
				return nil
			}
			return err
		}
	}
	// Either the fsync above succeeded or NoSyncOnRotate explicitly
	// traded durability away; either way the salvage copy must not
	// outlive the segment its offsets index into.
	l.syncedOff = l.off
	l.unsynced = l.unsynced[:0]
	cur := len(l.segs) - 1
	sealedIdx := false
	if l.segs[cur].ver == version {
		if err := writeBlockIndex(l.fs, l.segs[cur].path, l.off, l.segs[cur].ver, l.segRecs[cur]); err == nil {
			sealedIdx = true
		}
	}
	f, seg, err := l.newSegmentFileLocked()
	if err != nil {
		return err
	}
	l.segs[cur].idx = sealedIdx
	l.segs = append(l.segs, seg)
	l.segRecs = append(l.segRecs, nil)
	if err := l.writeManifestLocked(); err != nil {
		// Unpublishable: keep appending to the old segment. The new
		// (empty) file is left on disk — the write may have reached the
		// rename before failing, so deleting it could orphan a manifest
		// entry; whether referenced or not, an empty segment is
		// harmless and the next successful publish or Open sweeps it.
		// Its number is not reused. The just-written block index is
		// likewise unreferenced; further appends into the old segment
		// make it stale, which the size check on load detects.
		l.segs = l.segs[:len(l.segs)-1]
		l.segRecs = l.segRecs[:len(l.segRecs)-1]
		l.segs[cur].idx = false
		_ = f.Close() // rotation aborted; the publish error is the story
		return err
	}
	old := l.active
	l.active = f
	l.off = headerSize
	l.syncedOff = headerSize // the header was fsync'd by newSegmentFileLocked
	l.stats.Bytes += headerSize
	if err := old.Close(); err != nil {
		// The new segment is already active and the old one was flushed
		// and fsync'd above, so nothing is lost; surface the failure.
		return fmt.Errorf("segmentlog: closing rotated segment: %w", err)
	}
	return nil
}

// Sync flushes buffered records and fsyncs the active segment: every
// Append that returned before Sync was called is durable once Sync
// returns. A failed fsync is never retried against the same file —
// the kernel may have dropped the dirty pages, so a later "successful"
// fsync would silently lose them (the fsyncgate bug). Instead the
// active segment is poisoned and the un-synced records are salvaged
// into a fresh file; when that succeeds the data IS durable and Sync
// reports success.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.closed {
		return ErrClosed
	}
	if l.ro {
		return ErrReadOnly
	}
	if l.poisoned {
		if err := l.healLocked(); err != nil {
			return fmt.Errorf("segmentlog: active segment poisoned (%v); salvage failed: %w", l.poisonErr, err)
		}
		return nil // healLocked fsync'd everything previously appended
	}
	if err := l.flushLocked(); err != nil {
		if healErr := l.healLocked(); healErr == nil {
			return nil
		}
		return err
	}
	if err := l.active.Sync(); err != nil {
		err = fmt.Errorf("segmentlog: %w", err)
		l.poisonLocked(err)
		if healErr := l.healLocked(); healErr == nil {
			return nil
		}
		return err
	}
	l.syncedOff = l.off
	l.unsynced = l.unsynced[:0]
	return nil
}

// Close flushes, fsyncs and closes the log, releasing the directory
// lock. It waits for an in-flight Compact to finish first — the lock
// must not be released while a compactor is still creating files in
// the directory, or a new owner could collide with the zombie's
// writes. Further operations return ErrClosed; Close is idempotent.
func (l *Log) Close() error {
	l.compactMu.Lock() // compactMu before mu, matching Compact
	defer l.compactMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.ro {
		return nil
	}
	defer l.releaseLock()
	l.closed = false // syncLocked (and a salvage within it) must still run
	err := l.syncLocked()
	l.closed = true
	// The close error matters even when the sync already failed: a
	// write-path close is when the last buffered bytes reach the
	// kernel, so join both rather than letting either mask the other.
	return errors.Join(err, l.active.Close())
}

// Stats returns a snapshot of the log's bookkeeping. The device count
// comes from the per-device index, so the first call after an Open that
// deferred segments materializes them (best-effort: an unreadable
// deferred segment surfaces on the query paths, not here).
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	_ = l.ensureAllLoadedLocked()
	s := l.stats
	s.Segments = len(l.segs)
	for i := range l.segs {
		if l.segs[i].idx {
			s.IndexedSegs++
		}
	}
	s.Devices = len(l.index)
	s.Gen = l.gen
	return s
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// Devices returns the indexed device IDs, sorted. Deferred segments are
// materialized first (best-effort, as in Stats).
func (l *Log) Devices() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	_ = l.ensureAllLoadedLocked()
	out := make([]string, 0, len(l.index))
	for dev := range l.index {
		out = append(out, dev)
	}
	sort.Strings(out)
	return out
}

// DeviceSpan returns the record count and overall time bounds indexed
// for a device; ok is false for an unknown device.
func (l *Log) DeviceSpan(device string) (records int, t0, t1 uint32, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	_ = l.ensureAllLoadedLocked()
	addrs := l.index[device]
	if len(addrs) == 0 {
		return 0, 0, 0, false
	}
	first := l.metaAt(addrs[0])
	t0, t1 = first.t0, first.t1
	for _, a := range addrs[1:] {
		m := l.metaAt(a)
		if m.t0 < t0 {
			t0 = m.t0
		}
		if m.t1 > t1 {
			t1 = m.t1
		}
	}
	return len(addrs), t0, t1, true
}

// metaAt resolves a record address. Callers hold mu.
func (l *Log) metaAt(a recordAddr) *recordMeta { return &l.segRecs[a.seg][a.pos] }

// Query returns the decoded trajectories of device whose time bounds
// overlap [t0, t1], in append order. Records are read back from disk and
// CRC-verified. A query racing a concurrent compaction may find a
// superseded segment already deleted between snapshotting the index and
// opening the file; it transparently re-snapshots against the newly
// published generation.
func (l *Log) Query(device string, t0, t1 uint32) ([]Record, error) {
	for attempt := 0; ; attempt++ {
		out, retry, err := l.queryOnce(device, t0, t1)
		if err != nil && retry && attempt < 4 {
			continue
		}
		if err != nil && retry && l.ro {
			// A read-only handle's index is a static snapshot: it cannot
			// re-discover the new generation a live writer published, so
			// retrying is futile. Say what actually happened.
			return out, fmt.Errorf("segmentlog: log rewritten by a concurrent compaction; reopen to read the new generation: %w", err)
		}
		return out, err
	}
}

// queryOnce is one snapshot-and-read pass; retry is true when the error
// was a segment file vanishing under a concurrent compaction.
func (l *Log) queryOnce(device string, t0, t1 uint32) (out []Record, retry bool, err error) {
	refs, segs, gen, err := l.snapshotRefs(device, t0, t1)
	if err != nil {
		return nil, false, err
	}
	files := newSegReader(l.fs, segs)
	defer files.close()
	for _, ref := range refs {
		if rec, ok := l.cacheGet(gen, segs[ref.seg].path, ref.off); ok {
			out = append(out, rec)
			continue
		}
		body, err := files.readRecord(ref)
		if err != nil {
			return nil, errors.Is(err, fs.ErrNotExist), err
		}
		dev, rt0, rt1, _, _, payload, err := splitBody(body, segs[ref.seg].ver)
		if err != nil {
			return nil, false, fmt.Errorf("segmentlog: indexed record unreadable: %w", err)
		}
		keys, err := trajstore.DeltaDecode(payload)
		if err != nil {
			return nil, false, fmt.Errorf("segmentlog: %w", err)
		}
		rec := Record{Device: dev, T0: rt0, T1: rt1, Keys: keys}
		l.cachePut(gen, segs[ref.seg].path, ref.off, rec)
		out = append(out, rec)
	}
	return out, false, nil
}

// snapshotRefs collects, under the lock, the matching refs and a
// snapshot of the segments they point into, flushing pending writes
// first so disk reads observe every indexed record. gen is the
// manifest generation the snapshot belongs to — the cache epoch of
// every ref returned.
func (l *Log) snapshotRefs(device string, t0, t1 uint32) ([]refSnap, []segSnap, uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, nil, 0, ErrClosed
	}
	// A flush failure poisons the active segment and withdraws the
	// at-risk records from the index, leaving it consistent — queries
	// keep answering from the durable prefix while the log is degraded.
	if err := l.flushLocked(); err != nil && !l.poisoned {
		return nil, nil, 0, err
	}
	if err := l.ensureAllLoadedLocked(); err != nil {
		return nil, nil, 0, err
	}
	var refs []refSnap
	for _, a := range l.index[device] {
		m := l.metaAt(a)
		if m.t0 <= t1 && m.t1 >= t0 {
			refs = append(refs, refSnap{seg: int(a.seg), off: m.off, bodyLen: m.bodyLen})
		}
	}
	segs := make([]segSnap, len(l.segs))
	for i, s := range l.segs {
		segs[i] = segSnap{path: s.path, ver: s.ver}
	}
	return refs, segs, l.gen, nil
}

// segReader reads CRC-verified record bodies from a segment snapshot,
// caching one open file handle per segment.
type segReader struct {
	fs    vfs.FS
	segs  []segSnap
	files map[int]vfs.File
}

func newSegReader(fsys vfs.FS, segs []segSnap) *segReader {
	return &segReader{fs: fsys, segs: segs, files: make(map[int]vfs.File)}
}

func (r *segReader) close() {
	for _, f := range r.files {
		_ = f.Close() // read-only handles; every read was CRC-checked
	}
}

// readRecord reads ref's record — header and body — and re-verifies the
// length prefix and CRC: the index-time check does not protect against
// bit rot between Open and the read.
func (r *segReader) readRecord(ref refSnap) ([]byte, error) {
	f := r.files[ref.seg]
	if f == nil {
		var err error
		f, err = r.fs.Open(r.segs[ref.seg].path)
		if err != nil {
			return nil, fmt.Errorf("segmentlog: %w", err)
		}
		r.files[ref.seg] = f
	}
	return readRecordAt(f, ref.off, ref.bodyLen)
}

// readRecordAt reads one record — header and body — at a known body
// offset via pread (safe for concurrent use of a shared handle) and
// re-verifies the length prefix and CRC against the indexed metadata.
func readRecordAt(f io.ReaderAt, off int64, bodyLen int) ([]byte, error) {
	rec := make([]byte, recordHeaderSize+bodyLen)
	if _, err := f.ReadAt(rec, off-recordHeaderSize); err != nil {
		return nil, fmt.Errorf("segmentlog: reading record: %w", err)
	}
	body := rec[recordHeaderSize:]
	if got := int(binary.LittleEndian.Uint32(rec)); got != bodyLen {
		return nil, fmt.Errorf("%w: record length changed on disk (%d != %d)", ErrCorrupt, got, bodyLen)
	}
	if crc := binary.LittleEndian.Uint32(rec[4:]); crc32.Checksum(body, castagnoli) != crc {
		return nil, fmt.Errorf("%w: record checksum mismatch at offset %d", ErrCorrupt, off)
	}
	return body, nil
}
