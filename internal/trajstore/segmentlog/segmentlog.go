// Package segmentlog is the durable persistence layer of the trajectory
// database: an append-only, CRC-checksummed log of finalized compressed
// trajectories in the trajstore delta-varint wire format.
//
// The design follows the constraints of the paper's target platform and
// the ROADMAP's server-side north star at once: writes are single-pass
// and sequential (one buffered append per finalized trajectory, fsync
// only on an explicit Sync barrier), files rotate at a size threshold so
// retention and later compaction can operate on whole segments, and
// recovery is a forward scan that rebuilds the sparse in-memory index
// (device → record offsets + time bounds) and truncates a torn tail left
// by a crash mid-write. Everything before the last completed Sync is
// durable; a torn record after it is detected by length/CRC validation
// and dropped.
//
// On-disk layout. A log directory holds numbered segment files
// "seg-00000001.log", "seg-00000002.log", ... Each file starts with an
// 8-byte header — magic "BQSLOG" plus a version byte and a zero pad —
// followed by length-prefixed records:
//
//	u32  bodyLen   little-endian length of body
//	u32  crc32c    Castagnoli CRC of body
//	body:
//	  u16 deviceLen, device ID bytes
//	  u32 t0, u32 t1       time bounds of the trajectory (seconds)
//	  payload              trajstore.DeltaEncode of the key points
//
// A record is valid iff its length prefix fits in the file, bodyLen is
// plausible (≤ MaxRecordBytes) and the CRC matches; the first invalid
// record ends the scan and the file is truncated there.
package segmentlog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"syscall"

	"github.com/trajcomp/bqs/internal/trajstore"
)

const (
	// headerSize is the per-file header: 6 magic bytes, version, pad.
	headerSize = 8
	// recordHeaderSize prefixes every record: u32 bodyLen + u32 crc32c.
	recordHeaderSize = 8
	// version is the current format version byte.
	version = 1
	// MaxRecordBytes caps a single record body. A length prefix above it
	// is treated as corruption, bounding allocation on malicious or
	// damaged input. 16 MiB ≈ 1.5 M key points per trajectory.
	MaxRecordBytes = 16 << 20
	// DefaultMaxSegmentBytes is the rotation threshold when Options
	// leaves it zero.
	DefaultMaxSegmentBytes = 64 << 20
)

var magic = [6]byte{'B', 'Q', 'S', 'L', 'O', 'G'}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed reports an operation on a closed log.
var ErrClosed = errors.New("segmentlog: closed")

// ErrCorrupt reports a structurally invalid segment file (bad magic or
// unsupported version) that recovery cannot interpret at all; torn or
// checksum-failing records are recovered from silently and do not raise
// it.
var ErrCorrupt = errors.New("segmentlog: corrupt segment file")

// Options parameterizes Open.
type Options struct {
	// MaxSegmentBytes rotates the active segment file once its size
	// reaches this threshold. Default DefaultMaxSegmentBytes.
	MaxSegmentBytes int64
	// SyncOnRotate fsyncs a segment before rotating away from it, so a
	// completed segment file is always fully durable. Default true is
	// expressed inverted so the zero value keeps it on.
	NoSyncOnRotate bool
}

// Record is one persisted trajectory, decoded.
type Record struct {
	Device string
	T0, T1 uint32             // observation time bounds, seconds
	Keys   []trajstore.GeoKey // the compressed trajectory's key points
}

// recordRef locates one record in the log for the sparse index: which
// segment, the body offset within its file, and the indexed time bounds.
type recordRef struct {
	seg     int // index into Log.segs
	off     int64
	bodyLen int
	t0, t1  uint32
}

// segmentFile is one on-disk segment.
type segmentFile struct {
	path string
	size int64 // valid bytes (post-recovery, including header)
}

// Stats is a point-in-time snapshot of the log's contents.
type Stats struct {
	Segments  int   // segment files
	Records   int   // records indexed
	Devices   int   // distinct device IDs
	Bytes     int64 // total valid bytes on disk, headers included
	Truncated int64 // torn/corrupt tail bytes dropped by recovery on Open
}

// Log is an open segment log. All methods are safe for concurrent use;
// appends are serialized, queries read committed records directly from
// disk.
type Log struct {
	dir  string
	opts Options

	mu     sync.Mutex
	closed bool
	segs   []segmentFile
	active *os.File // write handle of segs[len(segs)-1]
	wbuf   []byte   // record assembly buffer, reused across appends
	pend   []byte   // appended but not yet written-through bytes
	off    int64    // logical size of the active segment (incl. pend)
	index  map[string][]recordRef
	stats  Stats
}

// Open opens (creating if necessary) the segment log in dir, scans every
// segment to rebuild the index, truncates any torn tail, and readies the
// last segment for appending.
func Open(dir string, opts Options) (*Log, error) {
	if opts.MaxSegmentBytes <= 0 {
		opts.MaxSegmentBytes = DefaultMaxSegmentBytes
	}
	if opts.MaxSegmentBytes < headerSize+recordHeaderSize {
		return nil, fmt.Errorf("segmentlog: MaxSegmentBytes %d too small", opts.MaxSegmentBytes)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("segmentlog: %w", err)
	}
	l := &Log{dir: dir, opts: opts, index: make(map[string][]recordRef)}

	names, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil {
		return nil, fmt.Errorf("segmentlog: %w", err)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := l.scanSegment(name); err != nil {
			return nil, err
		}
	}
	if len(l.segs) == 0 {
		if err := l.createSegmentLocked(); err != nil {
			return nil, err
		}
	} else {
		// Reopen the last segment for appending at its recovered size.
		last := &l.segs[len(l.segs)-1]
		f, err := os.OpenFile(last.path, os.O_RDWR, 0o644)
		if err != nil {
			return nil, fmt.Errorf("segmentlog: %w", err)
		}
		if _, err := f.Seek(last.size, io.SeekStart); err != nil {
			f.Close()
			return nil, fmt.Errorf("segmentlog: %w", err)
		}
		l.active = f
		l.off = last.size
	}
	return l, nil
}

// scanSegment reads one segment file, indexes its valid records and
// truncates it at the first invalid one.
func (l *Log) scanSegment(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("segmentlog: %w", err)
	}
	if len(data) < headerSize {
		// A crash can leave a freshly rotated file with a partial
		// header; rewrite it as empty rather than failing the open.
		return l.rewriteEmpty(path)
	}
	if [6]byte(data[:6]) != magic {
		return fmt.Errorf("%w: %s: bad magic", ErrCorrupt, filepath.Base(path))
	}
	if data[6] != version {
		return fmt.Errorf("%w: %s: unsupported version %d", ErrCorrupt, filepath.Base(path), data[6])
	}
	segIdx := len(l.segs)
	valid := int64(headerSize)
	pos := headerSize
	records := 0
	for {
		body, bodyOff, next, ok := nextRecord(data, pos)
		if !ok {
			break
		}
		dev, t0, t1, _, err := splitBody(body)
		if err != nil {
			break
		}
		l.index[dev] = append(l.index[dev], recordRef{
			seg: segIdx, off: int64(bodyOff), bodyLen: len(body), t0: t0, t1: t1,
		})
		records++
		valid = int64(next)
		pos = next
	}
	if torn := int64(len(data)) - valid; torn > 0 {
		if err := os.Truncate(path, valid); err != nil {
			return fmt.Errorf("segmentlog: truncating torn tail: %w", err)
		}
		l.stats.Truncated += torn
	}
	l.segs = append(l.segs, segmentFile{path: path, size: valid})
	l.stats.Records += records
	l.stats.Bytes += valid
	return nil
}

// nextRecord validates the record starting at pos and returns its body,
// the body's file offset and the offset just past the record.
func nextRecord(data []byte, pos int) (body []byte, bodyOff, next int, ok bool) {
	if pos+recordHeaderSize > len(data) {
		return nil, 0, 0, false
	}
	bodyLen := int(binary.LittleEndian.Uint32(data[pos:]))
	crc := binary.LittleEndian.Uint32(data[pos+4:])
	if bodyLen < minBodySize || bodyLen > MaxRecordBytes {
		return nil, 0, 0, false
	}
	bodyOff = pos + recordHeaderSize
	next = bodyOff + bodyLen
	if next > len(data) || next < pos { // overflow-safe upper check
		return nil, 0, 0, false
	}
	body = data[bodyOff:next]
	if crc32.Checksum(body, castagnoli) != crc {
		return nil, 0, 0, false
	}
	return body, bodyOff, next, true
}

// minBodySize is the smallest legal body: device length prefix (may be
// zero bytes of ID), both time bounds, and a ≥1-byte payload (the
// delta-varint count).
const minBodySize = 2 + 4 + 4 + 1

// splitBody splits a validated record body into its fields.
func splitBody(body []byte) (device string, t0, t1 uint32, payload []byte, err error) {
	if len(body) < minBodySize {
		return "", 0, 0, nil, trajstore.ErrShortBuffer
	}
	devLen := int(binary.LittleEndian.Uint16(body))
	rest := body[2:]
	if len(rest) < devLen+9 {
		return "", 0, 0, nil, trajstore.ErrShortBuffer
	}
	device = string(rest[:devLen])
	rest = rest[devLen:]
	t0 = binary.LittleEndian.Uint32(rest)
	t1 = binary.LittleEndian.Uint32(rest[4:])
	return device, t0, t1, rest[8:], nil
}

// rewriteEmpty resets path to a bare header (crash during file creation).
func (l *Log) rewriteEmpty(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("segmentlog: %w", err)
	}
	defer f.Close()
	if err := writeHeader(f); err != nil {
		return err
	}
	l.segs = append(l.segs, segmentFile{path: path, size: headerSize})
	l.stats.Bytes += headerSize
	return nil
}

func writeHeader(f *os.File) error {
	var hdr [headerSize]byte
	copy(hdr[:], magic[:])
	hdr[6] = version
	if _, err := f.Write(hdr[:]); err != nil {
		return fmt.Errorf("segmentlog: %w", err)
	}
	return nil
}

// createSegmentLocked starts the next numbered segment file and makes it
// active. Callers hold mu (or are inside Open). The directory is fsync'd
// after the create: a file whose directory entry is not durable can
// vanish wholesale in a crash, taking "synced" records with it.
func (l *Log) createSegmentLocked() error {
	path := filepath.Join(l.dir, fmt.Sprintf("seg-%08d.log", len(l.segs)+1))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("segmentlog: %w", err)
	}
	if err := writeHeader(f); err != nil {
		f.Close()
		return err
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.segs = append(l.segs, segmentFile{path: path, size: headerSize})
	l.active = f
	l.off = headerSize
	l.stats.Bytes += headerSize
	return nil
}

// syncDir fsyncs a directory so entries for newly created files are
// durable. Some platforms/filesystems reject fsync on directories;
// those errors are ignored (matching common WAL implementations).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("segmentlog: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) {
		return fmt.Errorf("segmentlog: fsync dir: %w", err)
	}
	return nil
}

// Append persists one finalized trajectory for device. The record is
// buffered in the process; it reaches the OS on the next flush and is
// durable after the next Sync. Empty trajectories are ignored.
func (l *Log) Append(device string, keys []trajstore.GeoKey) error {
	if len(keys) == 0 {
		return nil
	}
	if len(device) > int(^uint16(0)) {
		return fmt.Errorf("segmentlog: device ID longer than %d bytes", ^uint16(0))
	}
	payload, err := trajstore.DeltaEncode(keys)
	if err != nil {
		return fmt.Errorf("segmentlog: %w", err)
	}
	t0, t1 := keys[0].T, keys[0].T
	for _, k := range keys[1:] {
		if k.T < t0 {
			t0 = k.T
		}
		if k.T > t1 {
			t1 = k.T
		}
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}

	bodyLen := 2 + len(device) + 8 + len(payload)
	if bodyLen > MaxRecordBytes {
		return fmt.Errorf("segmentlog: record body %d bytes exceeds MaxRecordBytes", bodyLen)
	}
	l.wbuf = l.wbuf[:0]
	l.wbuf = binary.LittleEndian.AppendUint32(l.wbuf, uint32(bodyLen))
	l.wbuf = binary.LittleEndian.AppendUint32(l.wbuf, 0) // CRC backpatched below
	l.wbuf = binary.LittleEndian.AppendUint16(l.wbuf, uint16(len(device)))
	l.wbuf = append(l.wbuf, device...)
	l.wbuf = binary.LittleEndian.AppendUint32(l.wbuf, t0)
	l.wbuf = binary.LittleEndian.AppendUint32(l.wbuf, t1)
	l.wbuf = append(l.wbuf, payload...)
	body := l.wbuf[recordHeaderSize:]
	binary.LittleEndian.PutUint32(l.wbuf[4:], crc32.Checksum(body, castagnoli))

	ref := recordRef{
		seg:     len(l.segs) - 1,
		off:     l.off + recordHeaderSize,
		bodyLen: bodyLen,
		t0:      t0,
		t1:      t1,
	}
	l.pend = append(l.pend, l.wbuf...)
	l.off += int64(len(l.wbuf))
	l.index[device] = append(l.index[device], ref)
	l.stats.Records++
	l.stats.Bytes += int64(len(l.wbuf))

	if l.off >= l.opts.MaxSegmentBytes {
		return l.rotateLocked()
	}
	return nil
}

// flushLocked writes pending bytes through to the active file.
func (l *Log) flushLocked() error {
	if len(l.pend) == 0 {
		return nil
	}
	if _, err := l.active.Write(l.pend); err != nil {
		return fmt.Errorf("segmentlog: %w", err)
	}
	l.pend = l.pend[:0]
	l.segs[len(l.segs)-1].size = l.off
	return nil
}

// rotateLocked seals the active segment and starts the next one.
func (l *Log) rotateLocked() error {
	if err := l.flushLocked(); err != nil {
		return err
	}
	if !l.opts.NoSyncOnRotate {
		if err := l.active.Sync(); err != nil {
			return fmt.Errorf("segmentlog: %w", err)
		}
	}
	if err := l.active.Close(); err != nil {
		return fmt.Errorf("segmentlog: %w", err)
	}
	return l.createSegmentLocked()
}

// Sync flushes buffered records and fsyncs the active segment: every
// Append that returned before Sync was called is durable once Sync
// returns.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.flushLocked(); err != nil {
		return err
	}
	if err := l.active.Sync(); err != nil {
		return fmt.Errorf("segmentlog: %w", err)
	}
	return nil
}

// Close flushes, fsyncs and closes the log. Further operations return
// ErrClosed; Close is idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.flushLocked(); err != nil {
		l.active.Close()
		return err
	}
	if err := l.active.Sync(); err != nil {
		l.active.Close()
		return fmt.Errorf("segmentlog: %w", err)
	}
	return l.active.Close()
}

// Stats returns a snapshot of the log's bookkeeping.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := l.stats
	s.Segments = len(l.segs)
	s.Devices = len(l.index)
	return s
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// Devices returns the indexed device IDs, sorted.
func (l *Log) Devices() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.index))
	for dev := range l.index {
		out = append(out, dev)
	}
	sort.Strings(out)
	return out
}

// DeviceSpan returns the record count and overall time bounds indexed
// for a device; ok is false for an unknown device.
func (l *Log) DeviceSpan(device string) (records int, t0, t1 uint32, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	refs := l.index[device]
	if len(refs) == 0 {
		return 0, 0, 0, false
	}
	t0, t1 = refs[0].t0, refs[0].t1
	for _, r := range refs[1:] {
		if r.t0 < t0 {
			t0 = r.t0
		}
		if r.t1 > t1 {
			t1 = r.t1
		}
	}
	return len(refs), t0, t1, true
}

// Query returns the decoded trajectories of device whose time bounds
// overlap [t0, t1], in append order. Records are read back from disk and
// CRC-verified.
func (l *Log) Query(device string, t0, t1 uint32) ([]Record, error) {
	refs, paths, err := l.snapshotRefs(device, t0, t1)
	if err != nil {
		return nil, err
	}
	var out []Record
	files := make(map[int]*os.File)
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	for _, ref := range refs {
		f := files[ref.seg]
		if f == nil {
			f, err = os.Open(paths[ref.seg])
			if err != nil {
				return nil, fmt.Errorf("segmentlog: %w", err)
			}
			files[ref.seg] = f
		}
		// Read the record header along with the body and re-verify the
		// CRC: the scan-time check does not protect against bit rot
		// between Open and the read.
		rec := make([]byte, recordHeaderSize+ref.bodyLen)
		if _, err := f.ReadAt(rec, ref.off-recordHeaderSize); err != nil {
			return nil, fmt.Errorf("segmentlog: reading record: %w", err)
		}
		body := rec[recordHeaderSize:]
		if got := int(binary.LittleEndian.Uint32(rec)); got != ref.bodyLen {
			return nil, fmt.Errorf("%w: record length changed on disk (%d != %d)", ErrCorrupt, got, ref.bodyLen)
		}
		if crc := binary.LittleEndian.Uint32(rec[4:]); crc32.Checksum(body, castagnoli) != crc {
			return nil, fmt.Errorf("%w: record checksum mismatch at offset %d", ErrCorrupt, ref.off)
		}
		dev, rt0, rt1, payload, err := splitBody(body)
		if err != nil {
			return nil, fmt.Errorf("segmentlog: indexed record unreadable: %w", err)
		}
		keys, err := trajstore.DeltaDecode(payload)
		if err != nil {
			return nil, fmt.Errorf("segmentlog: %w", err)
		}
		out = append(out, Record{Device: dev, T0: rt0, T1: rt1, Keys: keys})
	}
	return out, nil
}

// snapshotRefs collects, under the lock, the matching refs and the
// segment paths they point into, flushing pending writes first so disk
// reads observe every indexed record.
func (l *Log) snapshotRefs(device string, t0, t1 uint32) ([]recordRef, []string, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, nil, ErrClosed
	}
	if err := l.flushLocked(); err != nil {
		return nil, nil, err
	}
	var refs []recordRef
	for _, r := range l.index[device] {
		if r.t0 <= t1 && r.t1 >= t0 {
			refs = append(refs, r)
		}
	}
	paths := make([]string, len(l.segs))
	for i, s := range l.segs {
		paths[i] = s.path
	}
	return refs, paths, nil
}
