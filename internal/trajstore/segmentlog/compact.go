// Compaction: the paper's Section V-F maintenance procedures applied to
// the durable log. Closed (sealed) segment files are immutable, so a
// compactor can re-read them wholesale, rewrite their contents smaller,
// and atomically swap the result in via the MANIFEST — while appends
// keep flowing into the active segment and queries keep reading either
// generation.
//
// Three error-bounded rewrites run per device, in order:
//
//   - Chunk merging: the engine's MaxTrailKeys chunking splits one long
//     session into consecutive records that overlap by exactly one key
//     point (engine.persistTrail). Merging re-joins them, dropping the
//     duplicated boundary keys — a pure dedup, the polyline is
//     unchanged.
//   - Overlap dedup: a record whose key points appear as a contiguous
//     run inside another record of the same device (a re-ingested
//     historical trajectory, an exact duplicate) is dropped — the
//     paper's merge procedure specialized to the exact-overlap case the
//     wire format can prove.
//   - Ageing: records older than CompactionPolicy.MinAge are decoded
//     and re-run through a registry compressor at CoarseTolerance
//     (Liu et al.'s amnesic compression: fidelity decays with age, but
//     stays error-bounded). The compressor emits a subset of the input
//     points, so retained keys are bit-identical and every dropped key
//     lies within CoarseTolerance of the aged polyline.
//
// Publish protocol (crash-safe at every step):
//
//  1. write new segment files under fresh sequence numbers — they are
//     not in the MANIFEST yet, so a crash leaves garbage that the next
//     Open removes;
//  2. fsync the new files and the directory;
//  3. write MANIFEST.tmp, fsync, rename over MANIFEST, fsync the
//     directory — the atomic commit point;
//  4. delete the superseded files — a crash in between leaves
//     unreferenced old files that the next Open removes.
//
// Recovery therefore always lands on exactly one generation: the old one
// before the rename, the new one after.
package segmentlog

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"github.com/trajcomp/bqs/internal/core"
	"github.com/trajcomp/bqs/internal/stream"
	"github.com/trajcomp/bqs/internal/trajstore"
	"github.com/trajcomp/bqs/internal/trajstore/segmentlog/vfs"
)

// CompactionPolicy parameterizes Compact.
type CompactionPolicy struct {
	// MinAge: only records whose newest key point (T1) is at least this
	// old — relative to Now — are aged. Zero ages every sealed record
	// (when CoarseTolerance enables ageing at all).
	MinAge time.Duration
	// CoarseTolerance, when > 0, enables ageing: qualifying records are
	// re-compressed at this tolerance, in metres of the MetersPerDegree
	// plane. Zero disables ageing.
	CoarseTolerance float64
	// MergeChunks enables re-joining consecutive same-device records
	// that share their boundary key point.
	MergeChunks bool
	// NoDedup disables the overlap-dedup pass. Dedup compares each of a
	// device's records against the kept set — time-window prefiltered
	// but quadratic per device in the worst case — so a deployment with
	// huge per-device record counts and no duplicated history can turn
	// it off.
	NoDedup bool
	// AgeCompressor names the registry compressor used for ageing;
	// empty means "fbqs".
	AgeCompressor string
	// MetersPerDegree maps wire-format degrees to the metric plane the
	// ageing compressor runs in. Default 1e5, matching the engine.
	MetersPerDegree float64
	// Now substitutes the ageing clock; nil means time.Now. Tests use
	// it to age deterministically.
	Now func() time.Time
	// Workers is the number of goroutines decoding and rewriting devices
	// concurrently. It also bounds the pass's peak memory: at most
	// Workers devices' decoded records are alive at once (see Compact).
	// ≤ 0 means GOMAXPROCS. Like Now, it does not affect the output, so
	// the memo fast path ignores it.
	Workers int
}

// CompactionResult reports what one Compact call did.
type CompactionResult struct {
	SegmentsIn  int    // sealed segments consumed
	SegmentsOut int    // segments written in their place
	RecordsIn   int    // records read from sealed segments
	RecordsOut  int    // records written
	BytesIn     int64  // on-disk bytes of the consumed segments, headers included
	BytesOut    int64  // on-disk bytes of the written segments
	Merged      int    // records removed by chunk-merging
	Deduped     int    // records dropped as fully overlapped
	Aged        int    // records re-compressed at CoarseTolerance
	Gen         uint64 // generation published (0 when there was nothing to do)
}

// compactRecord is one logical record flowing through the rewrite.
type compactRecord struct {
	device string
	t0, t1 uint32
	keys   []trajstore.GeoKey
}

// CompactNow runs Compact with the policy configured in
// Options.Compaction; a no-op when none was configured. It is the
// entry point for the engine's periodic compaction hook
// (trajstore.Compacter).
func (l *Log) CompactNow() error {
	p := l.opts.Compaction
	if p == nil {
		return nil
	}
	_, err := l.Compact(*p)
	return err
}

// devRef locates one sealed record of a device for the streaming
// compactor: enough metadata to read, CRC-verify and decode it without
// holding the log lock.
type devRef struct {
	seg     int // index into the sealed-segment snapshot
	off     int64
	bodyLen int
	t0, t1  uint32
}

// devOut is one device's rewrite result, handed from a compaction
// worker to the ordered writer.
type devOut struct {
	recs                  []compactRecord
	decoded               int // sealed records decoded for this device (memory accounting)
	merged, deduped, aged int
	nextAgeT1             uint32
	err                   error
}

// Compact rewrites every sealed segment (all but the active one) through
// the merge/dedup/ageing pipeline and atomically publishes the result as
// a new manifest generation. Appends and queries proceed concurrently;
// compactions serialize with each other. On any failure — including a
// sealed record that no longer validates (bit rot since open) — the
// published generation is untouched; partially written output files are
// swept by the next Open.
//
// Memory and parallelism: the pass streams — devices are decoded,
// rewritten and re-encoded one at a time by a pool of Workers
// goroutines, and a device's decoded records are released as soon as
// the ordered writer has re-encoded them, so peak usage is bounded by
// the Workers largest devices, never the whole sealed log. Record reads
// go through the per-record offsets the block index recovered (pread,
// CRC-verified), not a whole-file slurp.
func (l *Log) Compact(p CompactionPolicy) (CompactionResult, error) {
	var res CompactionResult
	if p.MetersPerDegree == 0 {
		p.MetersPerDegree = 1e5
	}
	if !(p.MetersPerDegree > 0) || math.IsInf(p.MetersPerDegree, 0) {
		return res, fmt.Errorf("segmentlog: MetersPerDegree must be a finite positive number")
	}
	if math.IsNaN(p.CoarseTolerance) || p.CoarseTolerance < 0 {
		return res, fmt.Errorf("segmentlog: CoarseTolerance must be ≥ 0")
	}
	if p.AgeCompressor == "" {
		p.AgeCompressor = "fbqs"
	}
	if p.CoarseTolerance > 0 {
		// Validate the (name, tolerance) pair up front so a bad policy
		// fails before any IO.
		if _, err := stream.New(p.AgeCompressor, p.CoarseTolerance); err != nil {
			return res, fmt.Errorf("segmentlog: age compressor: %w", err)
		}
	}
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	now := time.Now
	if p.Now != nil {
		now = p.Now
	}

	l.compactMu.Lock()
	defer l.compactMu.Unlock()

	// The sealed prefix is immutable from here on: appends only touch
	// the active segment, rotation only adds files, and competing
	// compactions are excluded by compactMu.
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return res, ErrClosed
	}
	if l.ro {
		l.mu.Unlock()
		return res, ErrReadOnly
	}
	nSealed := len(l.segs) - 1
	genAtSnap := l.gen
	l.mu.Unlock()
	if nSealed == 0 {
		return res, nil
	}

	// Memo fast path: if the previous pass (same policy) already saw
	// this exact generation and no record has aged into eligibility
	// since, this pass is guaranteed to change nothing — skip even the
	// read+decode work, so a periodic tick on a quiet log is O(1).
	cutoff := ageCutoff(now(), p.MinAge)
	m := &l.lastCompact
	if m.valid && m.gen == genAtSnap &&
		m.policy.CoarseTolerance == p.CoarseTolerance &&
		m.policy.MergeChunks == p.MergeChunks &&
		m.policy.NoDedup == p.NoDedup &&
		m.policy.AgeCompressor == p.AgeCompressor &&
		m.policy.MetersPerDegree == p.MetersPerDegree &&
		(p.CoarseTolerance == 0 || cutoff < m.nextAgeT1) {
		return res, nil
	}

	// Metadata scan: snapshot the sealed segments and group their record
	// locations per device in append order — no payload is read or
	// decoded here. A sealed segment in the legacy record format, or one
	// without a live block index, marks the pass as an upgrade: even a
	// record-identical rewrite is then worthwhile, because the output
	// carries bounding boxes and sealed indexes the input lacked.
	l.mu.Lock()
	if err := l.ensureAllLoadedLocked(); err != nil {
		l.mu.Unlock()
		return res, err
	}
	sealed := append([]segmentFile(nil), l.segs[:nSealed]...)
	perDev := make(map[string][]devRef)
	for si := 0; si < nSealed; si++ {
		for _, rm := range l.segRecs[si] {
			perDev[rm.device] = append(perDev[rm.device], devRef{
				seg: si, off: rm.off, bodyLen: rm.bodyLen, t0: rm.t0, t1: rm.t1,
			})
		}
		res.RecordsIn += len(l.segRecs[si])
	}
	l.mu.Unlock()
	upgrade := false
	for _, sf := range sealed {
		res.SegmentsIn++
		res.BytesIn += sf.size
		if sf.ver != version || !sf.idx {
			upgrade = true
		}
	}
	// Open every sealed file once; workers share the handles via pread.
	files := make([]vfs.File, len(sealed))
	for i, sf := range sealed {
		f, err := l.fs.Open(sf.path)
		if err != nil {
			for _, of := range files[:i] {
				_ = of.Close() // unwind of a failed open; the open error is the story
			}
			return res, fmt.Errorf("segmentlog: compact: %w", err)
		}
		files[i] = f
	}
	defer func() {
		for _, f := range files {
			_ = f.Close() // read-only input handles; every read was CRC-checked
		}
	}()

	// Fan the devices out to the worker pool and re-encode the results
	// in sorted device order (deterministic output; per-device record
	// order is preserved — the Query contract). The semaphore is the
	// memory bound: a slot is taken before a device is decoded and
	// released only after the writer has consumed it, so at most
	// `workers` devices' decoded records are alive at any moment.
	devices := make([]string, 0, len(perDev))
	for dev := range perDev {
		devices = append(devices, dev)
	}
	sort.Strings(devices)
	results := make([]chan devOut, len(devices))
	for i := range results {
		results[i] = make(chan devOut, 1)
	}
	work := make(chan int)
	sem := make(chan struct{}, workers)
	go func() {
		for i := range devices {
			sem <- struct{}{}
			work <- i
		}
		close(work)
	}()
	if workers > len(devices) {
		workers = len(devices)
	}
	for w := 0; w < workers; w++ {
		go func() {
			for i := range work {
				results[i] <- l.compactDevice(perDev[devices[i]], sealed, files, p, cutoff)
			}
		}()
	}

	cw := &compactWriter{l: l}
	nextAgeT1 := uint32(math.MaxUint32)
	var firstErr error
	for i := range devices {
		out := <-results[i] //bqslint:ignore lockedsend compactMu serializes compactions and every worker sends exactly once, so this receive under the lock always drains
		if firstErr == nil {
			if out.err != nil {
				firstErr = out.err
			} else {
				res.Merged += out.merged
				res.Deduped += out.deduped
				res.Aged += out.aged
				if out.nextAgeT1 < nextAgeT1 {
					nextAgeT1 = out.nextAgeT1
				}
				for _, r := range out.recs {
					if err := cw.add(r); err != nil {
						firstErr = err
						break
					}
				}
				res.RecordsOut += len(out.recs)
			}
		}
		l.compactLive.Add(-int64(out.decoded))
		<-sem //bqslint:ignore lockedsend the semaphore slot is released by the worker whose result was just received; the receive cannot block
	}
	if firstErr != nil {
		cw.discard()
		return res, firstErr
	}

	// Nothing changed at the record level: discard the (byte-identical)
	// output and skip the publish, so a periodic compaction tick on an
	// already-compacted (or incompressible) log costs one streaming read
	// pass, not a generation bump and fsync storm every interval — and
	// the memo below makes the next tick O(1). (RecordsIn == 0 with
	// sealed segments present still publishes, to drop the empty files;
	// an upgrade pass publishes to gain bboxes and block indexes.)
	if res.Merged == 0 && res.Deduped == 0 && res.Aged == 0 && res.RecordsIn > 0 && !upgrade {
		cw.discard()
		res.RecordsOut = res.RecordsIn
		res.SegmentsOut = res.SegmentsIn
		res.BytesOut = res.BytesIn
		l.lastCompact.valid = true
		l.lastCompact.gen = genAtSnap // a rotation since the snapshot makes this miss: conservative
		l.lastCompact.policy = p
		l.lastCompact.nextAgeT1 = nextAgeT1
		return res, nil
	}

	// Seal the output segments and their block indexes (unreferenced
	// until the manifest rename below).
	newSegs, newRecs, err := cw.finish()
	if err != nil {
		return res, err
	}
	res.SegmentsOut = len(newSegs)
	for _, s := range newSegs {
		res.BytesOut += s.size
	}
	// Publish: swap the sealed prefix for the new segments in one
	// manifest generation, then rebuild the in-memory view to match.
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return res, ErrClosed
	}
	S := len(sealed)
	tail := l.segs[S:] // active segment + any sealed during compaction
	tailRecs := l.segRecs[S:]
	tailOnlyActive := len(tail) == 1
	combined := append(append([]segmentFile(nil), newSegs...), tail...)
	combinedRecs := append(append([][]recordMeta(nil), newRecs...), tailRecs...)
	if err := writeManifest(l.fs, l.dir, manifest{Gen: l.gen + 1, Segs: manifestSegs(combined)}); err != nil {
		l.mu.Unlock()
		return res, err
	}
	l.gen++
	res.Gen = l.gen
	// The generation bump just orphaned every cache entry for the
	// superseded segments; account the net disk reclaim of this pass.
	// BytesOut is complete here even though res is still being built:
	// the output segments were sealed above and the tail was never an
	// input.
	l.reclaimed.Add(res.BytesIn - res.BytesOut)

	l.segs = combined
	l.segRecs = combinedRecs
	l.rebuildIndexLocked()
	var bytes int64
	for i, s := range l.segs {
		if i == len(l.segs)-1 {
			bytes += l.off // active logical size includes buffered appends
		} else {
			bytes += s.size
		}
	}
	l.stats.Bytes = bytes
	l.mu.Unlock()

	// Delete the superseded generation — segment files and their block
	// indexes. Failures (and crashes) here are benign: the files are
	// unreferenced and the next Open sweeps them.
	for _, sf := range sealed {
		if err := l.fs.Remove(sf.path); err != nil && !os.IsNotExist(err) {
			return res, fmt.Errorf("segmentlog: removing superseded %s: %w", sf.path, err)
		}
		if ip, ok := idxPathFor(sf.path); ok {
			if err := l.fs.Remove(ip); err != nil && !os.IsNotExist(err) {
				return res, fmt.Errorf("segmentlog: removing superseded %s: %w", ip, err)
			}
		}
	}
	if err := syncDir(l.fs, l.dir); err != nil {
		return res, err
	}
	// The published generation is now the compactor's own output; if no
	// rotation sealed fresh segments mid-pass, the next same-policy tick
	// can skip until new data (or a newly eligible record) appears.
	if tailOnlyActive {
		l.lastCompact.valid = true
		l.lastCompact.gen = res.Gen
		l.lastCompact.policy = p
		l.lastCompact.nextAgeT1 = nextAgeT1
	} else {
		l.lastCompact.valid = false
	}
	return res, nil
}

// compactDevice is the worker side of the streaming compactor: it
// decodes one device's sealed records (pread through the indexed
// offsets, CRC re-verified) and runs the merge/dedup/ageing pipeline on
// them. Every record was valid when Open indexed it, so anything that
// fails to validate now is bit rot — the pass must abort (leaving the
// old generation untouched) rather than drop the record and then
// delete its only copy. out.decoded is reported even on error so the
// writer's live-memory accounting stays balanced.
func (l *Log) compactDevice(refs []devRef, sealed []segmentFile, files []vfs.File, p CompactionPolicy, cutoff uint32) (out devOut) {
	out.nextAgeT1 = math.MaxUint32
	decoded := 0
	defer func() { out.decoded = decoded }()
	recs := make([]compactRecord, 0, len(refs))
	for _, ref := range refs {
		body, err := readRecordAt(files[ref.seg], ref.off, ref.bodyLen)
		if err != nil {
			out.err = fmt.Errorf("compact: %s: record at offset %d: %w (bit rot since open?)",
				filepath.Base(sealed[ref.seg].path), ref.off, err)
			return out
		}
		dev, t0, t1, _, _, payload, err := splitBody(body, sealed[ref.seg].ver)
		if err != nil {
			out.err = fmt.Errorf("%w: %s: record at offset %d unreadable: %v",
				ErrCorrupt, sealed[ref.seg].path, ref.off, err)
			return out
		}
		keys, err := trajstore.DeltaDecode(payload)
		if err != nil {
			out.err = fmt.Errorf("segmentlog: compact: decoding sealed record: %w", err)
			return out
		}
		recs = append(recs, compactRecord{device: dev, t0: t0, t1: t1, keys: keys})
		decoded++
		l.compactLiveAdd(1)
	}
	if p.MergeChunks {
		recs, out.merged = mergeChunks(recs)
	}
	if !p.NoDedup {
		recs, out.deduped = dedupContained(recs)
	}
	if p.CoarseTolerance > 0 {
		for i := range recs {
			if recs[i].t1 > cutoff && recs[i].t1 < out.nextAgeT1 {
				out.nextAgeT1 = recs[i].t1
			}
			aged, err := ageKeys(recs[i].keys, recs[i].t1, cutoff, p)
			if err != nil {
				out.err = err
				return out
			}
			if aged != nil {
				recs[i].keys = aged
				out.aged++
			}
		}
	}
	out.recs = recs
	return out
}

// mergeChunks re-joins consecutive records that overlap by exactly one
// key point (the engine's chunking invariant: each chunk restarts from
// the previous chunk's last key). Merging stops before a record would
// exceed the record-size cap.
func mergeChunks(recs []compactRecord) (out []compactRecord, merged int) {
	// Conservative per-key bound for the delta-varint encoding: ≤ 5
	// bytes per coordinate delta and timestamp delta, plus slack for
	// the absolute first key and the record header.
	const perKey, slack = 16, 96
	out = recs[:0]
	for _, r := range recs {
		if len(out) > 0 {
			prev := &out[len(out)-1]
			if len(prev.keys) > 0 && len(r.keys) > 0 &&
				prev.keys[len(prev.keys)-1] == r.keys[0] &&
				(len(prev.keys)+len(r.keys))*perKey+slack+len(r.device) <= MaxRecordBytes {
				prev.keys = append(prev.keys, r.keys[1:]...)
				if r.t0 < prev.t0 {
					prev.t0 = r.t0
				}
				if r.t1 > prev.t1 {
					prev.t1 = r.t1
				}
				merged++
				continue
			}
		}
		out = append(out, r)
	}
	return out, merged
}

// dedupContained drops records fully overlapped by another record of the
// same device: the record's key points appear as a contiguous run inside
// the other's. Exact duplicates are the len-equal special case. When an
// already-kept record is contained in a newer one, the kept record is
// replaced instead.
func dedupContained(recs []compactRecord) (out []compactRecord, dropped int) {
	var kept []compactRecord
	for _, r := range recs {
		contained := false
		filtered := kept[:0]
		for _, k := range kept {
			switch {
			case !contained && k.t0 <= r.t0 && r.t1 <= k.t1 && containsRun(k.keys, r.keys):
				contained = true
				filtered = append(filtered, k)
			case r.t0 <= k.t0 && k.t1 <= r.t1 && containsRun(r.keys, k.keys):
				dropped++ // k is swallowed by the newer r
			default:
				filtered = append(filtered, k)
			}
		}
		kept = filtered
		if contained {
			dropped++
		} else {
			kept = append(kept, r)
		}
	}
	return kept, dropped
}

// containsRun reports whether needle appears as a contiguous subsequence
// of hay.
func containsRun(hay, needle []trajstore.GeoKey) bool {
	if len(needle) == 0 || len(needle) > len(hay) {
		return false
	}
	for i := 0; i+len(needle) <= len(hay); i++ {
		if hay[i] != needle[0] {
			continue
		}
		match := true
		for j := 1; j < len(needle); j++ {
			if hay[i+j] != needle[j] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// ageCutoff converts (now, MinAge) to a uint32 seconds threshold:
// records whose t1 ≤ cutoff qualify for ageing.
func ageCutoff(now time.Time, minAge time.Duration) uint32 {
	c := now.Unix() - int64(minAge/time.Second)
	if c < 0 {
		return 0
	}
	if c > math.MaxUint32 {
		return math.MaxUint32
	}
	return uint32(c)
}

// ageKeys re-compresses one record's key points at the coarse tolerance.
// It returns nil (and no error) when the record does not qualify — too
// young, too short, or the compressor kept every key. The compressors
// emit a subset of their input points, so each retained key is returned
// bit-identical to the original (preserving the wire bytes exactly);
// every dropped key is within CoarseTolerance of the aged polyline, the
// bound the compressor guarantees for all input points.
func ageKeys(keys []trajstore.GeoKey, t1, cutoff uint32, p CompactionPolicy) ([]trajstore.GeoKey, error) {
	if t1 > cutoff || len(keys) <= 2 {
		return nil, nil
	}
	comp, err := stream.New(p.AgeCompressor, p.CoarseTolerance)
	if err != nil {
		return nil, fmt.Errorf("segmentlog: age compressor: %w", err)
	}
	m := p.MetersPerDegree
	pts := make([]core.Point, len(keys))
	for i, k := range keys {
		pts[i] = core.Point{X: k.Lon * m, Y: k.Lat * m, T: float64(k.T)}
	}
	kps := stream.Compress(comp, pts)
	if len(kps) >= len(keys) {
		return nil, nil // nothing gained
	}
	out := make([]trajstore.GeoKey, 0, len(kps))
	j := 0
	for _, kp := range kps {
		// Key points are emitted in input order; advance to the source
		// point and keep its exact original GeoKey.
		matched := false
		for j < len(pts) {
			if pts[j] == kp {
				out = append(out, keys[j])
				j++
				matched = true
				break
			}
			j++
		}
		if !matched {
			// Defensive: a compressor that synthesizes points (none of
			// the built-ins do) still round-trips through the plane.
			t := kp.T
			if t < 0 {
				t = 0
			}
			out = append(out, trajstore.GeoKey{Lat: kp.Y / m, Lon: kp.X / m, T: uint32(t)})
		}
	}
	if len(out) < 2 {
		return nil, nil
	}
	return out, nil
}

// compactWriter packs a stream of records into fresh segment files
// (respecting the rotation threshold), fsyncs each on seal, and writes
// a block index next to it. Every output segment is in the current
// record format with a live index — compaction is the upgrade path for
// legacy data. An index write failure aborts the pass: proceeding
// without one would leave the output permanently flagged for
// re-upgrade, turning every periodic tick into a full rewrite. The
// files are unreferenced until the caller publishes a manifest naming
// them, so discard (or a crash) just leaves garbage the next Open
// sweeps.
type compactWriter struct {
	l       *Log
	segs    []segmentFile
	segRecs [][]recordMeta
	cur     []recordMeta
	f       vfs.File
	off     int64
	buf     []byte
}

// closeCurrent seals the open output segment: fsync, close, block
// index, summary.
func (w *compactWriter) closeCurrent() error {
	if w.f == nil {
		return nil
	}
	s := &w.segs[len(w.segs)-1]
	s.size = w.off
	if err := w.f.Sync(); err != nil {
		_ = w.f.Close() // seal failed; the fsync error is the story
		w.f = nil
		return fmt.Errorf("segmentlog: compact: %w", err)
	}
	if err := w.f.Close(); err != nil {
		w.f = nil
		return err
	}
	w.f = nil
	if err := writeBlockIndex(w.l.fs, s.path, s.size, s.ver, w.cur); err != nil {
		return err
	}
	s.idx = true
	for _, m := range w.cur {
		s.sum.add(m)
	}
	w.segRecs = append(w.segRecs, w.cur)
	w.cur = nil
	return nil
}

// add encodes and writes one record, rotating to a fresh segment file
// at the size threshold.
func (w *compactWriter) add(r compactRecord) error {
	var err error
	var bb bbox
	w.buf, bb, err = encodeRecord(w.buf[:0], r.device, r.t0, r.t1, r.keys)
	if err != nil {
		return err
	}
	if w.f != nil && w.off > headerSize && w.off+int64(len(w.buf)) > w.l.opts.MaxSegmentBytes {
		if err := w.closeCurrent(); err != nil {
			return err
		}
	}
	if w.f == nil {
		w.l.mu.Lock()
		seq := w.l.nextSeq
		w.l.nextSeq++
		w.l.mu.Unlock()
		path := filepath.Join(w.l.dir, segName(seq))
		nf, err := w.l.fs.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
		if err != nil {
			return fmt.Errorf("segmentlog: compact: %w", err)
		}
		if err := writeHeader(nf); err != nil {
			_ = nf.Close() // creation failed; discard() sweeps the file
			return err
		}
		w.f = nf
		w.off = headerSize
		w.segs = append(w.segs, segmentFile{path: path, size: headerSize, ver: version})
	}
	if _, err := w.f.Write(w.buf); err != nil {
		w.closeCurrent()
		return fmt.Errorf("segmentlog: compact: %w", err)
	}
	w.cur = append(w.cur, recordMeta{
		device:  r.device,
		off:     w.off + recordHeaderSize,
		bodyLen: len(w.buf) - recordHeaderSize,
		t0:      r.t0,
		t1:      r.t1,
		bb:      bb,
		hasBB:   true,
	})
	w.off += int64(len(w.buf))
	return nil
}

// finish seals the last segment and makes the output set durable.
func (w *compactWriter) finish() ([]segmentFile, [][]recordMeta, error) {
	if err := w.closeCurrent(); err != nil {
		return nil, nil, err
	}
	if len(w.segs) > 0 {
		if err := syncDir(w.l.fs, w.l.dir); err != nil {
			return nil, nil, err
		}
	}
	return w.segs, w.segRecs, nil
}

// discard abandons the output: the files were never referenced by a
// manifest, so removal is best-effort — whatever survives is swept by
// the next Open.
func (w *compactWriter) discard() {
	if w.f != nil {
		_ = w.f.Close() // output was never referenced by a manifest
		w.f = nil
	}
	for _, s := range w.segs {
		w.l.fs.Remove(s.path)
		if ip, ok := idxPathFor(s.path); ok {
			w.l.fs.Remove(ip)
		}
	}
	w.segs, w.segRecs, w.cur = nil, nil, nil
}
