package segmentlog

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"

	"github.com/trajcomp/bqs/internal/trajstore"
	"github.com/trajcomp/bqs/internal/trajstore/segmentlog/vfs"
)

// A ShardedLog fans one logical segment log out over N independent
// shard logs, each in its own subdirectory with its own MANIFEST,
// segment files and block indexes. Devices are routed by
// trajstore.ShardIndex — the same function the ingestion engine uses —
// so when engine and log shard counts agree, each engine shard appends
// into a log shard no other worker touches: appends, flushes, Syncs and
// compactions of different shards share no lock and no file.
//
// On-disk layout:
//
//	dir/SHARDS      CRC-sealed shard count; its existence marks the
//	                directory as sharded and is the migration commit point
//	dir/LOCK        the writer flock — deliberately the same path a
//	                single Log locks, so legacy and sharded writers
//	                exclude each other
//	dir/shard-000/  a complete, self-contained segment log
//	dir/shard-001/  ...
//
// Each shard directory is a full Log: MANIFEST generations,
// crash-at-every-step compaction recovery and bqsrecover all work on it
// unchanged. The shard count is fixed at creation (it determines where
// every already-persisted device lives) and persisted in SHARDS; later
// opens use the persisted count regardless of what the caller asks for.
//
// Opening a legacy single-log directory writable migrates it in place:
// records are re-appended device by device into the shard logs (which
// also upgrades any version-1 records to the current format), SHARDS is
// published atomically, and only then are the legacy root files
// deleted. A crash before the SHARDS rename leaves the legacy log
// intact and the half-built shard directories as debris the next open
// removes; a crash after it leaves at worst legacy files the next open
// finishes deleting. bqsrecover detects SHARDS and recurses.
type ShardedLog struct {
	dir    string
	ro     bool
	fs     vfs.FS // never nil; resolved from Options.FS at open
	lock   vfs.File
	shards []*Log
	// cache is the read-side record cache shared by every shard log
	// (nil when Options.CacheBytes is zero): one byte budget for the
	// whole tree, instead of N independent budgets that would let a
	// hot shard starve while cold shards hold empty reserves.
	cache *recordCache

	mu     sync.Mutex
	closed bool
}

const (
	shardsName    = "SHARDS"
	shardsTmpName = "SHARDS.tmp"
	shardsMagic   = "BQSSHARDS 1"

	// MaxShards bounds the SHARDS count accepted on open; a corrupt or
	// hostile count must not make Open allocate unbounded directories.
	MaxShards = 1024
)

// shardDirName returns the subdirectory name of shard i.
func shardDirName(i int) string { return fmt.Sprintf("shard-%03d", i) }

// formatShards renders the SHARDS file: magic, count, and a CRC-32C
// sealing both — the same self-validation idiom as the MANIFEST.
func formatShards(n int) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s\nshards %d\n", shardsMagic, n)
	fmt.Fprintf(&b, "crc %08x\n", crc32.Checksum(b.Bytes(), castagnoli))
	return b.Bytes()
}

// parseShards decodes and validates a SHARDS file.
func parseShards(data []byte) (int, error) {
	crcAt := bytes.LastIndex(data, []byte("\ncrc "))
	if crcAt < 0 {
		return 0, fmt.Errorf("%w: SHARDS: missing crc line", ErrCorrupt)
	}
	covered := data[:crcAt+1]
	crcLine := string(data[crcAt+1:])
	if !strings.HasSuffix(crcLine, "\n") {
		return 0, fmt.Errorf("%w: SHARDS: truncated crc line", ErrCorrupt)
	}
	crcHex := strings.TrimSuffix(strings.TrimPrefix(crcLine, "crc "), "\n")
	want, err := strconv.ParseUint(crcHex, 16, 32)
	if err != nil || len(crcHex) != 8 {
		return 0, fmt.Errorf("%w: SHARDS: bad crc field", ErrCorrupt)
	}
	if got := crc32.Checksum(covered, castagnoli); got != uint32(want) {
		return 0, fmt.Errorf("%w: SHARDS: crc mismatch (%08x != %08x)", ErrCorrupt, got, want)
	}
	lines := strings.Split(string(covered), "\n")
	if len(lines) != 3 || lines[0] != shardsMagic || lines[2] != "" {
		return 0, fmt.Errorf("%w: SHARDS: bad layout", ErrCorrupt)
	}
	n, err := strconv.Atoi(strings.TrimPrefix(lines[1], "shards "))
	if err != nil || !strings.HasPrefix(lines[1], "shards ") {
		return 0, fmt.Errorf("%w: SHARDS: bad shards line %q", ErrCorrupt, lines[1])
	}
	if n < 1 || n > MaxShards {
		return 0, fmt.Errorf("%w: SHARDS: count %d out of range [1, %d]", ErrCorrupt, n, MaxShards)
	}
	return n, nil
}

// readShards reads dir's SHARDS file; found is false when none exists.
func readShards(fsys vfs.FS, dir string) (n int, found bool, err error) {
	data, err := fsys.ReadFile(filepath.Join(dir, shardsName))
	if os.IsNotExist(err) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, fmt.Errorf("segmentlog: %w", err)
	}
	n, err = parseShards(data)
	if err != nil {
		return 0, true, err
	}
	return n, true, nil
}

// writeShards atomically publishes dir's SHARDS file: temp file, fsync,
// rename, directory fsync. This is the commit point of both fresh
// sharded-log creation and legacy migration.
func writeShards(fsys vfs.FS, dir string, n int) error {
	tmp := filepath.Join(dir, shardsTmpName)
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("segmentlog: SHARDS: %w", err)
	}
	if _, err := f.Write(formatShards(n)); err == nil {
		err = f.Sync()
	}
	if err != nil {
		_ = f.Close() // publish failed; the write/fsync error is the story
		fsys.Remove(tmp)
		return fmt.Errorf("segmentlog: SHARDS: %w", err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("segmentlog: SHARDS: %w", err)
	}
	if err := fsys.Rename(tmp, filepath.Join(dir, shardsName)); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("segmentlog: SHARDS: %w", err)
	}
	return syncDir(fsys, dir)
}

// OpenSharded opens (creating or migrating if necessary) the sharded
// segment log in dir. shards is the shard count for a directory that
// does not hold one yet (≤ 0 means GOMAXPROCS); a directory that does —
// SHARDS exists — keeps its persisted count, since it determines where
// every already-stored device lives. A legacy single-log directory is
// migrated in place (see ShardedLog). With Options.ReadOnly nothing is
// created, locked or migrated: the directory must already be sharded.
func OpenSharded(dir string, shards int, opts Options) (*ShardedLog, error) {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards > MaxShards {
		return nil, fmt.Errorf("segmentlog: shard count %d exceeds MaxShards %d", shards, MaxShards)
	}
	fsys := opts.FS
	if fsys == nil {
		fsys = vfs.OS
	}
	s := &ShardedLog{dir: dir, ro: opts.ReadOnly, fs: fsys}
	if opts.cache == nil {
		opts.cache = newRecordCache(opts.CacheBytes)
	}
	s.cache = opts.cache
	if s.ro {
		n, found, err := readShards(s.fs, dir)
		if err != nil {
			return nil, err
		}
		if !found {
			return nil, fmt.Errorf("segmentlog: %s is not a sharded log (no SHARDS file); open it as a single log", dir)
		}
		return s, s.openShards(n, opts)
	}

	if err := s.fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("segmentlog: %w", err)
	}
	lock, err := acquireLock(s.fs, dir)
	if err != nil {
		return nil, err
	}
	s.lock = lock
	ok := false
	defer func() {
		if !ok {
			s.releaseLock()
		}
	}()

	n, found, err := readShards(s.fs, dir)
	if err != nil {
		return nil, err
	}
	if found {
		// Already sharded. A crash between the SHARDS commit and the end
		// of migration may have left legacy root files behind — finish
		// deleting them before anything else re-reads them.
		if err := removeLegacyFiles(s.fs, dir); err != nil {
			return nil, err
		}
	} else {
		n = shards
		// Shard directories without a SHARDS file are debris of a
		// migration (or creation) that crashed before its commit point;
		// the legacy root files are still the authoritative copy, so
		// rebuild from scratch.
		if err := removeShardDirs(s.fs, dir); err != nil {
			return nil, err
		}
		if hasLegacy, err := hasLegacyLog(s.fs, dir); err != nil {
			return nil, err
		} else if hasLegacy {
			if err := s.migrateLegacy(n, opts); err != nil {
				return nil, err
			}
		} else {
			if err := s.openShards(n, opts); err != nil {
				return nil, err
			}
			if err := writeShards(s.fs, dir, n); err != nil {
				s.closeShards()
				return nil, err
			}
		}
		ok = true
		return s, nil
	}
	if err := s.openShards(n, opts); err != nil {
		return nil, err
	}
	ok = true
	return s, nil
}

// openShards opens the n shard logs. Writable shard opens take no
// per-shard flock: the top-level LOCK already excludes every other
// writer of the tree (including legacy single-log writers, which lock
// the same path).
func (s *ShardedLog) openShards(n int, opts Options) error {
	s.shards = make([]*Log, 0, n)
	for i := 0; i < n; i++ {
		sub := filepath.Join(s.dir, shardDirName(i))
		var (
			lg  *Log
			err error
		)
		if s.ro {
			lg, err = Open(sub, opts)
		} else {
			lg, err = openNoLock(sub, opts)
		}
		if err != nil {
			s.closeShards()
			return fmt.Errorf("segmentlog: shard %d: %w", i, err)
		}
		s.shards = append(s.shards, lg)
	}
	return nil
}

// closeShards closes whatever shards are open, ignoring errors; used on
// failed-open unwind paths.
func (s *ShardedLog) closeShards() {
	for _, lg := range s.shards {
		if lg != nil {
			_ = lg.Close() // unwind of a failed open; the open error is the story
		}
	}
	s.shards = nil
}

// hasLegacyLog reports whether dir's root holds a single-log: a
// MANIFEST, or (pre-manifest layouts) any segment file.
func hasLegacyLog(fsys vfs.FS, dir string) (bool, error) {
	if _, err := fsys.Stat(filepath.Join(dir, manifestName)); err == nil {
		return true, nil
	} else if !errors.Is(err, fs.ErrNotExist) {
		return false, fmt.Errorf("segmentlog: %w", err)
	}
	matches, err := fsys.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil {
		return false, fmt.Errorf("segmentlog: %w", err)
	}
	return len(matches) > 0, nil
}

// removeShardDirs deletes every shard-* subdirectory of dir.
func removeShardDirs(fsys vfs.FS, dir string) error {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("segmentlog: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "shard-") {
			if err := fsys.RemoveAll(filepath.Join(dir, e.Name())); err != nil {
				return fmt.Errorf("segmentlog: removing stale %s: %w", e.Name(), err)
			}
		}
	}
	return nil
}

// removeLegacyFiles deletes the single-log files from dir's root: the
// MANIFEST, its temp file, and every segment and block-index file. Only
// called once SHARDS exists (the shards hold all the data).
func removeLegacyFiles(fsys vfs.FS, dir string) error {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("segmentlog: %w", err)
	}
	removed := false
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		_, isSeg := parseSegName(name)
		_, isIdx := parseIdxName(name)
		if !isSeg && !isIdx && name != manifestName && name != manifestTmpName {
			continue
		}
		if err := fsys.Remove(filepath.Join(dir, name)); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("segmentlog: removing legacy %s: %w", name, err)
		}
		removed = true
	}
	if removed {
		return syncDir(fsys, dir)
	}
	return nil
}

// migrateLegacy converts dir's single log into n shard logs: open the
// legacy log with full recovery semantics (torn tails, manifest
// adoption), re-append every record into the shard it routes to — which
// also re-encodes version-1 records into the current format — sync the
// shards durable, publish SHARDS (the commit point), and delete the
// legacy files. The legacy root stays untouched until SHARDS exists, so
// a crash anywhere before the commit loses nothing.
func (s *ShardedLog) migrateLegacy(n int, opts Options) error {
	legacy, err := openNoLock(s.dir, opts)
	if err != nil {
		return fmt.Errorf("segmentlog: migrating legacy log: %w", err)
	}
	defer legacy.Close()
	if err := s.openShards(n, opts); err != nil {
		return err
	}
	for _, dev := range legacy.Devices() {
		recs, err := legacy.Query(dev, 0, math.MaxUint32)
		if err != nil {
			s.closeShards()
			return fmt.Errorf("segmentlog: migrating %q: %w", dev, err)
		}
		lg := s.shards[trajstore.ShardIndex(dev, n)]
		for _, r := range recs {
			if err := lg.Append(dev, r.Keys); err != nil {
				s.closeShards()
				return fmt.Errorf("segmentlog: migrating %q: %w", dev, err)
			}
		}
	}
	if err := s.each(func(lg *Log) error { return lg.Sync() }); err != nil {
		s.closeShards()
		return err
	}
	if err := writeShards(s.fs, s.dir, n); err != nil {
		s.closeShards()
		return err
	}
	if err := legacy.Close(); err != nil {
		// The migration is already committed; the stale legacy files are
		// removed below regardless.
		_ = err
	}
	return removeLegacyFiles(s.fs, s.dir)
}

// releaseLock drops the top-level directory lock; a no-op in read-only
// mode or after release.
func (s *ShardedLog) releaseLock() {
	if s.lock == nil {
		return
	}
	syscall.Flock(int(s.lock.Fd()), syscall.LOCK_UN)
	_ = s.lock.Close() // the unlock above is what matters; nothing was written
	s.lock = nil
}

// each runs f on every shard concurrently and joins the errors.
func (s *ShardedLog) each(f func(lg *Log) error) error {
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i, lg := range s.shards {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = f(lg)
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Dir returns the sharded log's root directory.
func (s *ShardedLog) Dir() string { return s.dir }

// NumShards returns the shard count (trajstore.ShardedPersister).
func (s *ShardedLog) NumShards() int { return len(s.shards) }

// ShardPersister exposes shard i as a Persister
// (trajstore.ShardedPersister): the engine binds each of its shard
// workers straight to the log shard it owns.
func (s *ShardedLog) ShardPersister(i int) trajstore.Persister { return s.shards[i] }

// ShardLog exposes shard i's underlying Log — for tests and tooling
// (bqsrecover) that need per-shard inspection.
func (s *ShardedLog) ShardLog(i int) *Log { return s.shards[i] }

// shardFor routes a device to its shard.
func (s *ShardedLog) shardFor(device string) *Log {
	return s.shards[trajstore.ShardIndex(device, len(s.shards))]
}

// Append persists one finalized trajectory into the device's shard.
func (s *ShardedLog) Append(device string, keys []trajstore.GeoKey) error {
	return s.shardFor(device).Append(device, keys)
}

// Sync is the durability barrier across all shards; the per-shard
// fsyncs run concurrently.
func (s *ShardedLog) Sync() error {
	return s.each(func(lg *Log) error { return lg.Sync() })
}

// Close syncs and closes every shard, then releases the top-level lock
// — strictly last, so no other writer can enter the tree while any
// shard still has buffered or in-flight state. Each shard's Close
// serializes behind that shard's running compaction, so a concurrent
// CompactNow finishes or aborts cleanly first.
func (s *ShardedLog) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.closed = true
	err := s.each(func(lg *Log) error { return lg.Close() })
	s.releaseLock()
	return err
}

// Query returns the device's records from its shard (same contract as
// Log.Query).
func (s *ShardedLog) Query(device string, t0, t1 uint32) ([]Record, error) {
	return s.shardFor(device).Query(device, t0, t1)
}

// DeviceSpan returns the record count and time bounds indexed for a
// device (same contract as Log.DeviceSpan).
func (s *ShardedLog) DeviceSpan(device string) (records int, t0, t1 uint32, ok bool) {
	return s.shardFor(device).DeviceSpan(device)
}

// Devices returns the device IDs across all shards, sorted. Routing
// assigns each device to exactly one shard, so the union is disjoint.
func (s *ShardedLog) Devices() []string {
	var out []string
	for _, lg := range s.shards {
		out = append(out, lg.Devices()...)
	}
	sort.Strings(out)
	return out
}

// Stats sums the per-shard bookkeeping. Devices is exact (each device
// lives in exactly one shard); Gen is the sum of the shard generations,
// so it is monotonic and moves iff some shard published.
func (s *ShardedLog) Stats() Stats {
	var out Stats
	for _, lg := range s.shards {
		st := lg.Stats()
		out.Segments += st.Segments
		out.IndexedSegs += st.IndexedSegs
		out.Records += st.Records
		out.Devices += st.Devices
		out.Bytes += st.Bytes
		out.Truncated += st.Truncated
		out.Gen += st.Gen
	}
	return out
}

// QueryWindow answers the spatio-temporal window query across all
// shards (same record contract as Log.QueryWindow). Results concatenate
// in shard order: within a shard they are in log order, but there is no
// global order across shards — callers needing one must sort.
func (s *ShardedLog) QueryWindow(minX, minY, maxX, maxY float64, t0, t1 uint32) ([]Record, error) {
	recs, _, err := s.QueryWindowStats(minX, minY, maxX, maxY, t0, t1)
	return recs, err
}

// QueryWindowStats is QueryWindow plus the pruning statistics summed
// over shards. Shards are queried concurrently.
func (s *ShardedLog) QueryWindowStats(minX, minY, maxX, maxY float64, t0, t1 uint32) ([]Record, WindowStats, error) {
	type shardOut struct {
		recs []Record
		ws   WindowStats
	}
	outs := make([]shardOut, len(s.shards))
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i, lg := range s.shards {
		wg.Add(1)
		go func() {
			defer wg.Done()
			outs[i].recs, outs[i].ws, errs[i] = lg.QueryWindowStats(minX, minY, maxX, maxY, t0, t1)
		}()
	}
	wg.Wait()
	err := errors.Join(errs...)
	var recs []Record
	var ws WindowStats
	for _, o := range outs {
		recs = append(recs, o.recs...)
		ws.Segments += o.ws.Segments
		ws.SegmentsPruned += o.ws.SegmentsPruned
		ws.RecordsIndexed += o.ws.RecordsIndexed
		ws.RecordsPruned += o.ws.RecordsPruned
		ws.RecordsDecoded += o.ws.RecordsDecoded
		ws.RecordsMatched += o.ws.RecordsMatched
		ws.CacheHits += o.ws.CacheHits
	}
	if err != nil {
		return nil, ws, err
	}
	return recs, ws, nil
}

// Compact runs the compaction pipeline on every shard concurrently and
// sums the results. Gen is the sum of the generations the shards
// published (0 iff no shard rewrote anything). Policy Workers applies
// within each shard; shard-level parallelism comes on top, so a
// CompactNow over S shards with W workers each may decode S×W devices
// at once.
func (s *ShardedLog) Compact(p CompactionPolicy) (CompactionResult, error) {
	results := make([]CompactionResult, len(s.shards))
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i, lg := range s.shards {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = lg.Compact(p)
		}()
	}
	wg.Wait()
	var out CompactionResult
	for _, r := range results {
		out.SegmentsIn += r.SegmentsIn
		out.SegmentsOut += r.SegmentsOut
		out.RecordsIn += r.RecordsIn
		out.RecordsOut += r.RecordsOut
		out.BytesIn += r.BytesIn
		out.BytesOut += r.BytesOut
		out.Merged += r.Merged
		out.Deduped += r.Deduped
		out.Aged += r.Aged
		out.Gen += r.Gen
	}
	return out, errors.Join(errs...)
}

// CompactNow runs Compact with the policy configured in
// Options.Compaction; a no-op when none was configured
// (trajstore.Compacter, the engine's periodic compaction hook).
func (s *ShardedLog) CompactNow() error {
	if len(s.shards) == 0 {
		return ErrClosed
	}
	if s.shards[0].opts.Compaction == nil {
		return nil
	}
	_, err := s.Compact(*s.shards[0].opts.Compaction)
	return err
}
