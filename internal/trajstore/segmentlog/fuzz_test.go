package segmentlog

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/trajcomp/bqs/internal/trajstore"
)

// FuzzRecover feeds arbitrary bytes to Open as a segment file: recovery
// must never panic, and whatever it salvages must be stable — a second
// open of the recovered directory sees the same records and truncates
// nothing further.
func FuzzRecover(f *testing.F) {
	// Seed: a well-formed file with two records...
	dir := f.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := l.Append("dev", genKeys(i+1, 6)); err != nil {
			f.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(filepath.Join(dir, "seg-00000001.log"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	// ...its truncations...
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:headerSize+3])
	f.Add(valid[:headerSize])
	// ...and degenerate files.
	f.Add([]byte{})
	f.Add([]byte("BQSLOG\x01\x00"))
	f.Add([]byte("garbage that is not a log at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "seg-00000001.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{})
		if err != nil {
			return // structurally rejected (bad magic/version) is fine
		}
		s1 := l.Stats()
		recs1, err := l.Query("dev", 0, ^uint32(0))
		if err != nil {
			t.Fatalf("Query on recovered log: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}

		// Recovery must be idempotent: reopening truncates nothing more.
		l2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("second Open after recovery: %v", err)
		}
		defer l2.Close()
		s2 := l2.Stats()
		if s2.Truncated != 0 {
			t.Fatalf("second open truncated %d more bytes", s2.Truncated)
		}
		if s2.Records != s1.Records {
			t.Fatalf("records changed across reopen: %d → %d", s1.Records, s2.Records)
		}
		recs2, err := l2.Query("dev", 0, ^uint32(0))
		if err != nil {
			t.Fatalf("Query after reopen: %v", err)
		}
		if len(recs1) != len(recs2) {
			t.Fatalf("query results changed across reopen: %d → %d", len(recs1), len(recs2))
		}
		// And the recovered log must accept appends.
		if err := l2.Append("post", []trajstore.GeoKey{{Lat: 1e-7, Lon: 1e-7, T: 1}}); err != nil {
			t.Fatalf("Append after recovery: %v", err)
		}
	})
}

// FuzzBlockIndex feeds arbitrary bytes to the block-index parser: it
// must never panic, anything it accepts must round-trip through the
// formatter (re-rendering and re-parsing yields the identical value —
// a hostile-but-CRC-valid encoding may use non-minimal varints, so
// byte identity is not required), and every accepted entry must lie
// inside the declared segment bounds in strictly increasing order —
// the invariants that let Open trust a loaded index instead of
// scanning. (End-to-end, a corrupt index only ever degrades to a scan;
// see TestBlockIndexCorruptionFallsBack.)
func FuzzBlockIndex(f *testing.F) {
	metas := []recordMeta{
		{device: "alpha", off: headerSize + recordHeaderSize, bodyLen: 40, t0: 10, t1: 20,
			bb: bbox{minLat: -50, minLon: -60, maxLat: 70, maxLon: 80}, hasBB: true},
		{device: "bravo", off: headerSize + 2*recordHeaderSize + 40, bodyLen: 30, t0: 15, t1: 35},
	}
	f.Add(formatBlockIndex(headerSize+2*recordHeaderSize+70, version, metas))
	f.Add(formatBlockIndex(headerSize, version, nil))
	f.Add(formatBlockIndex(headerSize+recordHeaderSize+40, versionLegacy, metas[1:]))
	f.Add([]byte("BQSIDX\x01\x02"))
	f.Add([]byte{})
	f.Add([]byte("garbage that is not an index"))

	f.Fuzz(func(t *testing.T, data []byte) {
		segSize, segVer, metas, err := parseBlockIndex(data)
		if err != nil {
			return // structurally rejected is fine
		}
		re := formatBlockIndex(segSize, segVer, metas)
		segSize2, segVer2, metas2, err := parseBlockIndex(re)
		if err != nil {
			t.Fatalf("re-rendered index rejected: %v", err)
		}
		if segSize2 != segSize || segVer2 != segVer || !reflect.DeepEqual(metas2, metas) {
			t.Fatalf("round trip changed index: (%d,%d,%+v) → (%d,%d,%+v)",
				segSize, segVer, metas, segSize2, segVer2, metas2)
		}
		prevEnd := int64(headerSize)
		for i, m := range metas {
			if m.off < prevEnd+recordHeaderSize || m.off+int64(m.bodyLen) > segSize {
				t.Fatalf("entry %d outside segment bounds: %+v (segSize %d)", i, m, segSize)
			}
			if m.t0 > m.t1 {
				t.Fatalf("entry %d has inverted time bounds", i)
			}
			if m.hasBB && (m.bb.minLat > m.bb.maxLat || m.bb.minLon > m.bb.maxLon) {
				t.Fatalf("entry %d has an inverted bbox", i)
			}
			prevEnd = m.off + int64(m.bodyLen)
		}
	})
}

// FuzzManifest feeds arbitrary bytes to the manifest parser: it must
// never panic, and whatever it accepts must round-trip — re-rendering a
// parsed manifest and parsing it again yields the identical value, the
// invariant Open's "manifest is the source of truth" logic rests on.
func FuzzManifest(f *testing.F) {
	f.Add(formatManifest(manifest{Gen: 1, Segs: []manifestSeg{{Name: "seg-00000001.log"}}}))
	f.Add(formatManifest(manifest{Gen: 7, Segs: []manifestSeg{
		{Name: "seg-00000009.log", Idx: true, Sum: &segSummary{
			records: 2, t0: 10, t1: 90, bbAll: true,
			bb: bbox{minLat: -100, minLon: -200, maxLat: 300, maxLon: 400},
		}},
		{Name: "seg-00000003.log"},
	}}))
	f.Add(formatManifest(manifest{Gen: 0}))
	f.Add([]byte("BQSMANIFEST 2\ngen 3\nseg seg-00000004.log idx sum=1,5,5\ncrc 00000000\n"))
	f.Add([]byte("BQSMANIFEST 1\ngen 1\nseg seg-00000001.log\ncrc 00000000\n"))
	f.Add([]byte("BQSMANIFEST 1\ngen 1\nseg ../escape.log\ncrc 00000000\n"))
	f.Add([]byte(""))
	f.Add([]byte("garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := parseManifest(data)
		if err != nil {
			return // structurally rejected is fine
		}
		re := formatManifest(m)
		m2, err := parseManifest(re)
		if err != nil {
			t.Fatalf("re-rendered manifest rejected: %v\n%q", err, re)
		}
		if m2.Gen != m.Gen || len(m2.Segs) != len(m.Segs) {
			t.Fatalf("round trip changed manifest: %+v → %+v", m, m2)
		}
		for i := range m.Segs {
			if !reflect.DeepEqual(m.Segs[i], m2.Segs[i]) {
				t.Fatalf("round trip changed segment %d: %+v → %+v", i, m.Segs[i], m2.Segs[i])
			}
			// Accepted names must be directory-local canonical segment
			// names (no path traversal).
			if _, ok := parseSegName(m.Segs[i].Name); !ok {
				t.Fatalf("parser accepted non-canonical segment name %q", m.Segs[i].Name)
			}
		}
	})
}
