package segmentlog

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/trajcomp/bqs/internal/trajstore"
)

// FuzzRecover feeds arbitrary bytes to Open as a segment file: recovery
// must never panic, and whatever it salvages must be stable — a second
// open of the recovered directory sees the same records and truncates
// nothing further.
func FuzzRecover(f *testing.F) {
	// Seed: a well-formed file with two records...
	dir := f.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := l.Append("dev", genKeys(i+1, 6)); err != nil {
			f.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(filepath.Join(dir, "seg-00000001.log"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	// ...its truncations...
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:headerSize+3])
	f.Add(valid[:headerSize])
	// ...and degenerate files.
	f.Add([]byte{})
	f.Add([]byte("BQSLOG\x01\x00"))
	f.Add([]byte("garbage that is not a log at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "seg-00000001.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{})
		if err != nil {
			return // structurally rejected (bad magic/version) is fine
		}
		s1 := l.Stats()
		recs1, err := l.Query("dev", 0, ^uint32(0))
		if err != nil {
			t.Fatalf("Query on recovered log: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}

		// Recovery must be idempotent: reopening truncates nothing more.
		l2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("second Open after recovery: %v", err)
		}
		defer l2.Close()
		s2 := l2.Stats()
		if s2.Truncated != 0 {
			t.Fatalf("second open truncated %d more bytes", s2.Truncated)
		}
		if s2.Records != s1.Records {
			t.Fatalf("records changed across reopen: %d → %d", s1.Records, s2.Records)
		}
		recs2, err := l2.Query("dev", 0, ^uint32(0))
		if err != nil {
			t.Fatalf("Query after reopen: %v", err)
		}
		if len(recs1) != len(recs2) {
			t.Fatalf("query results changed across reopen: %d → %d", len(recs1), len(recs2))
		}
		// And the recovered log must accept appends.
		if err := l2.Append("post", []trajstore.GeoKey{{Lat: 1e-7, Lon: 1e-7, T: 1}}); err != nil {
			t.Fatalf("Append after recovery: %v", err)
		}
	})
}
