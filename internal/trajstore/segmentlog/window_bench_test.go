package segmentlog

import (
	"fmt"
	"math"
	"testing"
)

// benchWindowLog builds the window-query benchmark fixture: 50 devices
// in separate spatial cells, 20 records each (device-major, so sealed
// segments cover distinct regions), rotated into multiple sealed
// segments with block indexes.
func benchWindowLog(b *testing.B) (*Log, int) {
	b.Helper()
	dir := b.TempDir()
	l, err := Open(dir, Options{MaxSegmentBytes: 16 << 10})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { l.Close() })
	for d := 0; d < 50; d++ {
		for r := 0; r < 20; r++ {
			if err := l.Append(fmt.Sprintf("dev-%03d", d), cellKeys(d, r, 16)); err != nil {
				b.Fatal(err)
			}
		}
	}
	s := l.Stats()
	if s.IndexedSegs == 0 {
		b.Fatalf("benchmark log has no sealed block indexes: %+v", s)
	}
	return l, s.Records
}

// benchWindow runs one window shape and reports the decode fraction —
// records decoded per query over the records a full scan would decode.
func benchWindow(b *testing.B, minX, minY, maxX, maxY float64, maxDecodeFrac float64) {
	l, total := benchWindowLog(b)
	var ws WindowStats
	var matched int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recs, s, err := l.QueryWindowStats(minX, minY, maxX, maxY, 0, math.MaxUint32)
		if err != nil {
			b.Fatal(err)
		}
		ws, matched = s, len(recs)
	}
	b.StopTimer()
	frac := float64(ws.RecordsDecoded) / float64(total)
	b.ReportMetric(frac, "decode-frac")
	b.ReportMetric(float64(matched), "matched/op")
	if frac > maxDecodeFrac {
		b.Fatalf("decoded %d of %d records (%.1f%%), want ≤ %.0f%%",
			ws.RecordsDecoded, total, 100*frac, 100*maxDecodeFrac)
	}
}

// BenchmarkQueryWindowSelective: a window covering 2 of 50 devices
// (4% of the fleet). The acceptance bound — the pruned path decodes
// under 20% of what a full scan would — is asserted, not just
// reported.
func BenchmarkQueryWindowSelective(b *testing.B) {
	minX, minY, maxX, maxY := cellWindow(10, 11)
	benchWindow(b, minX, minY, maxX, maxY, 0.20)
}

// BenchmarkQueryWindowFull: the whole extent; every record matches, so
// this measures the decode-everything floor the selective case is
// compared against.
func BenchmarkQueryWindowFull(b *testing.B) {
	benchWindow(b, -10, -10, 10, 10, 1.0)
}

// benchWindowCached rebuilds the fixture with a read cache and measures
// the full-extent query either cold (cache flushed by reopening the log
// between iterations is too costly; instead CacheBytes: 0 IS the cold
// configuration — see BenchmarkQueryWindowCold) or warm.
func benchWindowCached(b *testing.B, cacheBytes int64, wantHits bool) {
	dir := b.TempDir()
	l, err := Open(dir, Options{MaxSegmentBytes: 16 << 10, CacheBytes: cacheBytes})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { l.Close() })
	for d := 0; d < 50; d++ {
		for r := 0; r < 20; r++ {
			if err := l.Append(fmt.Sprintf("dev-%03d", d), cellKeys(d, r, 16)); err != nil {
				b.Fatal(err)
			}
		}
	}
	// Populate (a no-op without a cache) so the timed loop measures the
	// steady state of each configuration.
	if _, _, err := l.QueryWindowStats(-10, -10, 10, 10, 0, math.MaxUint32); err != nil {
		b.Fatal(err)
	}
	var ws WindowStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, s, err := l.QueryWindowStats(-10, -10, 10, 10, 0, math.MaxUint32)
		if err != nil {
			b.Fatal(err)
		}
		ws = s
	}
	b.StopTimer()
	b.ReportMetric(float64(ws.CacheHits), "hits/op")
	b.ReportMetric(float64(ws.RecordsDecoded), "decoded/op")
	if wantHits && (ws.CacheHits == 0 || ws.RecordsDecoded != 0) {
		b.Fatalf("warm query not served from cache: hits=%d decoded=%d", ws.CacheHits, ws.RecordsDecoded)
	}
	if !wantHits && ws.CacheHits != 0 {
		b.Fatalf("cold configuration reported %d cache hits", ws.CacheHits)
	}
}

// BenchmarkQueryWindowCold: the full-extent query with caching off —
// every iteration preads, CRC-checks and delta-decodes all 1000
// records. The baseline BenchmarkQueryWindowCached is compared against.
func BenchmarkQueryWindowCold(b *testing.B) { benchWindowCached(b, 0, false) }

// BenchmarkQueryWindowCached: the same query with a warm 16 MiB record
// cache — every record serves from memory (asserted: zero decodes).
func BenchmarkQueryWindowCached(b *testing.B) { benchWindowCached(b, 16<<20, true) }
