// Fault-injection tests: the log driven over vfs.FaultFS. Two shapes
// live here — targeted schedules for the fsync-poison/salvage machinery,
// and TestFaultMatrix, the seeded-schedule acceptance sweep: whatever a
// schedule injects (ENOSPC, EIO, short writes, power loss), the log must
// reopen through a clean filesystem to exactly one consistent generation
// in which every indexed record is servable and every record the API
// rejected is absent.
package segmentlog

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"reflect"
	"strconv"
	"syscall"
	"testing"

	"github.com/trajcomp/bqs/internal/trajstore"
	"github.com/trajcomp/bqs/internal/trajstore/segmentlog/vfs"
)

// TestFsyncPoisonSalvage: a failed fsync must poison the active segment
// — never be retried against the same file (fsyncgate) — and the next
// Sync salvages the at-risk records into a fresh file and reports
// success, because after the salvage everything appended IS durable.
func TestFsyncPoisonSalvage(t *testing.T) {
	dir := t.TempDir()
	fs := vfs.NewFaultFS(1)
	l := mustOpen(t, dir, Options{FS: fs})

	var want [][]trajstore.GeoKey
	for i := 0; i < 3; i++ {
		keys := genKeys(i+1, 10)
		if err := l.Append("dev", keys); err != nil {
			t.Fatal(err)
		}
		want = append(want, keys)
	}
	// The first fsync of the segment fails; FaultFS drops the un-synced
	// bytes on the spot, so only the in-process salvage copy can save
	// the records.
	fs.AddRule(vfs.Rule{Op: vfs.OpSync, Path: "seg-*.log", Fault: vfs.FaultEIO, Count: 1})
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync = %v, want nil: the salvage rewrote everything into a durable fresh file", err)
	}
	for i, keys := range want {
		_ = i
		recs := queryAll(t, l, "dev")
		if len(recs) != len(want) {
			t.Fatalf("query after salvage: %d records, want %d", len(recs), len(want))
		}
		if !reflect.DeepEqual(recs[i].Keys, keys) {
			t.Fatalf("record %d corrupted by salvage", i)
		}
	}
	// The poisoned file must get no further appends: new records land in
	// the salvage segment and another clean cycle works.
	extra := genKeys(99, 10)
	if err := l.Append("dev", extra); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2 := mustOpen(t, dir, Options{})
	defer l2.Close()
	recs := queryAll(t, l2, "dev")
	if len(recs) != len(want)+1 {
		t.Fatalf("reopen: %d records, want %d", len(recs), len(want)+1)
	}
	for i, keys := range append(want, extra) {
		if !reflect.DeepEqual(recs[i].Keys, keys) {
			t.Fatalf("reopen: record %d corrupted", i)
		}
	}
}

// TestFsyncPoisonSealedWatermark drives the salvage's other path: when
// a previous fsync succeeded, the poisoned file is sealed (truncated)
// at the durable watermark and only the at-risk tail moves to the fresh
// segment — nothing below the watermark is rewritten or duplicated.
func TestFsyncPoisonSealedWatermark(t *testing.T) {
	dir := t.TempDir()
	fs := vfs.NewFaultFS(2)
	l := mustOpen(t, dir, Options{FS: fs})

	durable := genKeys(1, 12)
	if err := l.Append("dev", durable); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil { // establishes a watermark > header
		t.Fatal(err)
	}
	atRisk := genKeys(2, 12)
	if err := l.Append("dev", atRisk); err != nil {
		t.Fatal(err)
	}
	fs.AddRule(vfs.Rule{Op: vfs.OpSync, Path: "seg-*.log", Fault: vfs.FaultENOSPC, Count: 1})
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync = %v, want nil via salvage", err)
	}
	if s := l.Stats(); s.Segments != 2 {
		t.Fatalf("Segments = %d after sealed-watermark salvage, want 2 (sealed + fresh)", s.Segments)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2 := mustOpen(t, dir, Options{})
	defer l2.Close()
	recs := queryAll(t, l2, "dev")
	if len(recs) != 2 {
		t.Fatalf("reopen: %d records, want 2", len(recs))
	}
	if !reflect.DeepEqual(recs[0].Keys, durable) || !reflect.DeepEqual(recs[1].Keys, atRisk) {
		t.Fatal("records corrupted or duplicated across sealed-watermark salvage")
	}
}

// TestPoisonedAppendHeals: while the disk stays sick the poisoned log
// rejects appends cleanly (error ⇒ record not in the log); once it
// recovers, the very next Append heals into a fresh file first — the
// poisoned segment never takes another byte.
func TestPoisonedAppendHeals(t *testing.T) {
	dir := t.TempDir()
	fs := vfs.NewFaultFS(3)
	l := mustOpen(t, dir, Options{FS: fs})

	first := genKeys(1, 10)
	if err := l.Append("dev", first); err != nil {
		t.Fatal(err)
	}
	// Sustained failure: the active file's fsync AND the salvage file's
	// fsync both fail, so the heal inside Sync cannot complete.
	fs.AddRule(vfs.Rule{Op: vfs.OpSync, Path: "seg-*.log", Fault: vfs.FaultEIO})
	if err := l.Sync(); err == nil {
		t.Fatal("Sync succeeded while every fsync fails")
	}
	rejected := genKeys(2, 10)
	if err := l.Append("dev", rejected); err == nil {
		t.Fatal("Append on a poisoned log with a sick disk must fail")
	}
	// Disk recovers: the next append heals first, then lands.
	fs.ClearRules()
	second := genKeys(3, 10)
	if err := l.Append("dev", second); err != nil {
		t.Fatalf("Append after recovery: %v", err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2 := mustOpen(t, dir, Options{})
	defer l2.Close()
	recs := queryAll(t, l2, "dev")
	if len(recs) != 2 {
		t.Fatalf("reopen: %d records, want 2 (the rejected append must be absent)", len(recs))
	}
	if !reflect.DeepEqual(recs[0].Keys, first) || !reflect.DeepEqual(recs[1].Keys, second) {
		t.Fatal("surviving records corrupted")
	}
}

// faultSeeds returns how many seeded schedules TestFaultMatrix runs:
// BQS_FAULT_SEEDS overrides (CI runs 32, nightly 256), -short trims.
func faultSeeds(t *testing.T) int {
	t.Helper()
	n := 32
	if s := os.Getenv("BQS_FAULT_SEEDS"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v <= 0 {
			t.Fatalf("BQS_FAULT_SEEDS = %q: want a positive integer", s)
		}
		n = v
	}
	if testing.Short() && n > 8 {
		n = 8
	}
	return n
}

// faultRec tracks one appended record through a schedule: accepted
// means Append returned nil (the record is in the log per its
// contract); durable means a later Sync/Close succeeded, guaranteeing
// it survives anything, including power loss.
type faultRec struct {
	dev      string
	keys     []trajstore.GeoKey
	accepted bool
	durable  bool
}

// TestFaultMatrix is the seeded-schedule acceptance sweep. Each seed
// derives a fault schedule (which ops fail, how, when — including
// crash-after-partial-rename power loss) and drives the same scripted
// ingest→sync→compact→query workload through it, tolerating whatever
// errors surface. The invariants checked are absolute:
//
//   - the directory reopens through a clean filesystem to one
//     consistent generation;
//   - every record covered by a successful Sync is served exactly once,
//     bit-identical;
//   - every record whose Append returned nil appears at most once,
//     bit-identical if at all;
//   - every record whose Append returned an error is absent;
//   - while the filesystem has not crashed, live queries never error
//     (no indexed-but-unservable records).
func TestFaultMatrix(t *testing.T) {
	for seed := 0; seed < faultSeeds(t); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%03d", seed), func(t *testing.T) {
			t.Parallel()
			runFaultSchedule(t, int64(seed))
		})
	}
}

func runFaultSchedule(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	dir := t.TempDir()
	fs := vfs.NewFaultFS(seed)
	faults := []vfs.Fault{vfs.FaultEIO, vfs.FaultENOSPC, vfs.FaultShortWrite, vfs.FaultCrash}
	ops := []vfs.Op{"", vfs.OpWrite, vfs.OpSync, vfs.OpRename, vfs.OpOpenFile, vfs.OpTruncate, vfs.OpRemove}
	for i, n := 0, 1+rng.Intn(3); i < n; i++ {
		fs.AddRule(vfs.Rule{
			Op:    ops[rng.Intn(len(ops))],
			Fault: faults[rng.Intn(len(faults))],
			After: 10 + rng.Intn(500),
			Count: 1 + rng.Intn(3),
		})
	}

	var recs []faultRec
	markDurable := func() {
		for i := range recs {
			if recs[i].accepted {
				recs[i].durable = true
			}
		}
	}
	l, err := Open(dir, Options{MaxSegmentBytes: 600, FS: fs})
	if err != nil {
		// The schedule killed the open itself — a legal outcome; the
		// acceptance below still demands a clean reopen.
		l = nil
	}
	if l != nil {
		step := 0
		for phase := 0; phase < 3; phase++ {
			for i := 0; i < 12; i++ {
				r := faultRec{dev: fmt.Sprintf("dev-%02d", step), keys: genKeys(step+1, 10)}
				r.accepted = l.Append(r.dev, r.keys) == nil
				recs = append(recs, r)
				step++
			}
			if l.Sync() == nil {
				markDurable()
			}
			if phase == 1 {
				l.Compact(CompactionPolicy{}) // a failed pass must leave the published generation intact
			}
			if !fs.Crashed() {
				for _, r := range recs {
					_, err := l.Query(r.dev, 0, math.MaxUint32)
					// An injected errno on the read path is the disk
					// being sick, not the log lying; what must never
					// surface while healthy is corruption or a missing
					// indexed record.
					if err != nil && !fs.Crashed() &&
						!errors.Is(err, syscall.EIO) && !errors.Is(err, syscall.ENOSPC) {
						t.Fatalf("live query %s errored mid-schedule: %v", r.dev, err)
					}
				}
			}
		}
		if closeErr := l.Close(); closeErr == nil && !fs.Crashed() {
			markDurable() // a clean Close is a durability barrier too
		}
	}

	// Acceptance: reopen through the real filesystem.
	l2, err := Open(dir, Options{MaxSegmentBytes: 600})
	if err != nil {
		t.Fatalf("reopen after schedule %s: %v", fs, err)
	}
	defer l2.Close()
	for _, r := range recs {
		got, err := l2.Query(r.dev, 0, math.MaxUint32)
		if err != nil {
			t.Fatalf("%s: query %s after reopen: %v", fs, r.dev, err)
		}
		switch {
		case !r.accepted:
			if len(got) != 0 {
				t.Fatalf("%s: rejected append %s present after reopen", fs, r.dev)
			}
		case r.durable:
			if len(got) != 1 {
				t.Fatalf("%s: synced record %s: %d copies after reopen, want 1", fs, r.dev, len(got))
			}
		default:
			if len(got) > 1 {
				t.Fatalf("%s: record %s duplicated after reopen (%d copies)", fs, r.dev, len(got))
			}
		}
		if len(got) == 1 && !reflect.DeepEqual(got[0].Keys, r.keys) {
			t.Fatalf("%s: record %s corrupted after reopen", fs, r.dev)
		}
	}
}
