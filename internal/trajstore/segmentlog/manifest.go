// Manifest handling: the MANIFEST file is the source of truth for which
// segment files belong to the log and in which logical order. It replaces
// the original Glob-and-sort discovery, which broke down as soon as
// compaction rewrote history — a compacted segment carries a *higher*
// file number than the newer data it supersedes, so lexical order no
// longer equals logical order, and files can legitimately exist on disk
// (a compactor's not-yet-published outputs, a superseded generation not
// yet deleted) without being part of the log.
//
// Format — a short, line-oriented text file, CRC-sealed:
//
//	BQSMANIFEST 2
//	gen 7
//	seg seg-00000009.log idx sum=3,1000,2407,-386214000,1448123000,-385900000,1448200000
//	seg seg-00000003.log
//	crc 5f3a91c2
//
// The first line is magic + format version. "gen" is the generation
// number, incremented on every publish (open adoption, rotation,
// compaction). Each "seg" line names one live segment file, base name
// only, in logical (oldest-first) order; the active segment is last.
// Two optional fields follow the name on sealed segments:
//
//   - "idx" declares the segment's sealed block-index file
//     (seg-NNNNNNNN.idx, see blockindex.go) live — Open loads the
//     segment through it, and the unreferenced-file sweep spares it.
//   - "sum=records,t0,t1[,minLat,minLon,maxLat,maxLon]" is the
//     segment-level summary used for window-query pruning: the record
//     count, the union of record time bounds, and (when every record
//     carries one) the union of record bounding boxes in 1e-7°.
//
// The final "crc" line carries the CRC-32C of every preceding byte, so
// a damaged manifest is detected rather than silently reordering the
// log. Format 1 manifests (bare "seg name" lines only) parse cleanly;
// the first writable Open republishes them in the current format.
//
// The manifest is always replaced atomically: written to MANIFEST.tmp,
// fsync'd, renamed over MANIFEST, directory fsync'd. A reader therefore
// sees either the old or the new generation, never a mixture — the
// invariant the compactor's crash recovery is built on.
package segmentlog

import (
	"bufio"
	"bytes"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"github.com/trajcomp/bqs/internal/trajstore/segmentlog/vfs"
)

const (
	// manifestName is the manifest's file name inside the log directory.
	manifestName = "MANIFEST"
	// manifestTmpName is the staging name for atomic replacement.
	manifestTmpName = "MANIFEST.tmp"
	// manifestMagic is the current first-line magic + version;
	// manifestMagicV1 is the pre-block-index format, still accepted.
	manifestMagic   = "BQSMANIFEST 2"
	manifestMagicV1 = "BQSMANIFEST 1"
	// maxManifestSegs bounds the number of seg lines a parser accepts, so
	// a corrupt or hostile manifest cannot drive unbounded allocation.
	maxManifestSegs = 1 << 20
)

// manifestSeg is one live segment as recorded in the MANIFEST.
type manifestSeg struct {
	Name string      // canonical segment file base name
	Idx  bool        // the derived block-index file is live
	Sum  *segSummary // sealed-segment summary; nil when unknown or active
}

// manifest is the decoded MANIFEST content.
type manifest struct {
	Gen  uint64        // generation number, bumped on every publish
	Segs []manifestSeg // live segments, logical (oldest-first) order
}

// segName formats the canonical file name for segment sequence number n.
func segName(n uint64) string { return fmt.Sprintf("seg-%08d.log", n) }

// parseSegName extracts the sequence number from a canonical segment
// file name; ok is false for anything else (including path separators,
// so a hostile manifest cannot point outside the log directory).
func parseSegName(name string) (uint64, bool) {
	const pre, suf = "seg-", ".log"
	if !strings.HasPrefix(name, pre) || !strings.HasSuffix(name, suf) {
		return 0, false
	}
	digits := name[len(pre) : len(name)-len(suf)]
	if len(digits) < 8 { // canonical names zero-pad to 8; longer is allowed for huge seqs
		return 0, false
	}
	n, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return 0, false
	}
	// Round-trip check rejects non-canonical spellings ("seg-1.log",
	// leading-zero overlong forms) so format(parse(x)) is the identity.
	if segName(n) != name {
		return 0, false
	}
	return n, true
}

// formatManifest renders m in the canonical on-disk form, including the
// trailing CRC line.
func formatManifest(m manifest) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s\ngen %d\n", manifestMagic, m.Gen)
	for _, s := range m.Segs {
		fmt.Fprintf(&b, "seg %s", s.Name)
		if s.Idx {
			b.WriteString(" idx")
		}
		if s.Sum != nil {
			fmt.Fprintf(&b, " sum=%d,%d,%d", s.Sum.records, s.Sum.t0, s.Sum.t1)
			if s.Sum.bbAll {
				fmt.Fprintf(&b, ",%d,%d,%d,%d", s.Sum.bb.minLat, s.Sum.bb.minLon, s.Sum.bb.maxLat, s.Sum.bb.maxLon)
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "crc %08x\n", crc32.Checksum(b.Bytes(), castagnoli))
	return b.Bytes()
}

// parseSum decodes a "sum=" field value. A summary without bounding-box
// fields describes a segment holding legacy records (bbAll false).
func parseSum(v string) (*segSummary, error) {
	parts := strings.Split(v, ",")
	if len(parts) != 3 && len(parts) != 7 {
		return nil, fmt.Errorf("%d fields", len(parts))
	}
	nums := make([]int64, len(parts))
	for i, p := range parts {
		n, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			return nil, err
		}
		nums[i] = n
	}
	s := &segSummary{bb: emptyBBox()}
	if nums[0] < 1 || nums[0] > math.MaxInt32 {
		return nil, fmt.Errorf("bad record count %d", nums[0])
	}
	if nums[1] < 0 || nums[2] < 0 || nums[1] > math.MaxUint32 || nums[2] > math.MaxUint32 || nums[1] > nums[2] {
		return nil, fmt.Errorf("bad time bounds")
	}
	s.records = int(nums[0])
	s.t0, s.t1 = uint32(nums[1]), uint32(nums[2])
	if len(parts) == 7 {
		for _, n := range nums[3:] {
			if n < math.MinInt32 || n > math.MaxInt32 {
				return nil, fmt.Errorf("bbox field out of range")
			}
		}
		s.bb = bbox{minLat: int32(nums[3]), minLon: int32(nums[4]), maxLat: int32(nums[5]), maxLon: int32(nums[6])}
		if s.bb.minLat > s.bb.maxLat || s.bb.minLon > s.bb.maxLon {
			return nil, fmt.Errorf("inverted bbox")
		}
		s.bbAll = true
	}
	return s, nil
}

// parseManifest decodes and validates manifest bytes. Every structural
// defect — wrong magic, bad field, duplicate or non-canonical segment
// name, missing or mismatching CRC, trailing bytes — is an error:
// a manifest is small and fully rewritten on every change, so unlike a
// segment file there is no "valid prefix" to salvage.
func parseManifest(data []byte) (manifest, error) {
	var m manifest
	crcAt := bytes.LastIndex(data, []byte("\ncrc "))
	if crcAt < 0 {
		return m, fmt.Errorf("%w: manifest: missing crc line", ErrCorrupt)
	}
	covered := data[:crcAt+1] // everything the CRC seals, incl. the newline
	crcLine := string(data[crcAt+1:])
	if !strings.HasSuffix(crcLine, "\n") {
		return m, fmt.Errorf("%w: manifest: truncated crc line", ErrCorrupt)
	}
	crcHex := strings.TrimSuffix(strings.TrimPrefix(crcLine, "crc "), "\n")
	want, err := strconv.ParseUint(crcHex, 16, 32)
	if err != nil || len(crcHex) != 8 {
		return m, fmt.Errorf("%w: manifest: bad crc field", ErrCorrupt)
	}
	if got := crc32.Checksum(covered, castagnoli); got != uint32(want) {
		return m, fmt.Errorf("%w: manifest: crc mismatch (%08x != %08x)", ErrCorrupt, got, want)
	}

	sc := bufio.NewScanner(bytes.NewReader(covered))
	legacy := false
	if !sc.Scan() {
		return m, fmt.Errorf("%w: manifest: empty", ErrCorrupt)
	}
	switch sc.Text() {
	case manifestMagic:
	case manifestMagicV1:
		legacy = true
	default:
		return m, fmt.Errorf("%w: manifest: bad magic line", ErrCorrupt)
	}
	if !sc.Scan() || !strings.HasPrefix(sc.Text(), "gen ") {
		return m, fmt.Errorf("%w: manifest: missing gen line", ErrCorrupt)
	}
	gen, err := strconv.ParseUint(strings.TrimPrefix(sc.Text(), "gen "), 10, 64)
	if err != nil {
		return m, fmt.Errorf("%w: manifest: bad gen value", ErrCorrupt)
	}
	m.Gen = gen
	seen := make(map[string]bool)
	for sc.Scan() {
		line := sc.Text()
		rest, ok := strings.CutPrefix(line, "seg ")
		if !ok {
			return m, fmt.Errorf("%w: manifest: unexpected line %q", ErrCorrupt, line)
		}
		fields := strings.Split(rest, " ")
		var ms manifestSeg
		ms.Name = fields[0]
		if _, ok := parseSegName(ms.Name); !ok {
			return m, fmt.Errorf("%w: manifest: bad segment name %q", ErrCorrupt, ms.Name)
		}
		if seen[ms.Name] {
			return m, fmt.Errorf("%w: manifest: duplicate segment %q", ErrCorrupt, ms.Name)
		}
		// Optional fields, fixed order so format∘parse is the identity:
		// "idx", then "sum=...". A format-1 manifest has bare names only.
		i := 1
		if !legacy && i < len(fields) && fields[i] == "idx" {
			ms.Idx = true
			i++
		}
		if !legacy && i < len(fields) {
			v, ok := strings.CutPrefix(fields[i], "sum=")
			if !ok {
				return m, fmt.Errorf("%w: manifest: unexpected field %q", ErrCorrupt, fields[i])
			}
			sum, err := parseSum(v)
			if err != nil {
				return m, fmt.Errorf("%w: manifest: bad summary %q: %v", ErrCorrupt, fields[i], err)
			}
			ms.Sum = sum
			i++
		}
		if i != len(fields) {
			return m, fmt.Errorf("%w: manifest: unexpected field %q", ErrCorrupt, fields[i])
		}
		if len(m.Segs) >= maxManifestSegs {
			return m, fmt.Errorf("%w: manifest: too many segments", ErrCorrupt)
		}
		seen[ms.Name] = true
		m.Segs = append(m.Segs, ms)
	}
	if err := sc.Err(); err != nil {
		return m, fmt.Errorf("%w: manifest: %v", ErrCorrupt, err)
	}
	return m, nil
}

// readManifest loads dir's MANIFEST. found is false when none exists
// (a legacy or empty directory); a present-but-invalid manifest is an
// error — guessing at segment order risks serving records out of order.
func readManifest(fsys vfs.FS, dir string) (m manifest, found bool, err error) {
	data, err := fsys.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return manifest{}, false, nil
	}
	if err != nil {
		return manifest{}, false, fmt.Errorf("segmentlog: %w", err)
	}
	m, err = parseManifest(data)
	if err != nil {
		return manifest{}, true, err
	}
	return m, true, nil
}

// writeManifest atomically replaces dir's MANIFEST with m: temp file,
// fsync, rename, directory fsync. On any error the previous manifest is
// untouched.
func writeManifest(fsys vfs.FS, dir string, m manifest) error {
	tmp := filepath.Join(dir, manifestTmpName)
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("segmentlog: manifest: %w", err)
	}
	if _, err := f.Write(formatManifest(m)); err != nil {
		_ = f.Close() // publish failed; the write error is the story
		fsys.Remove(tmp)
		return fmt.Errorf("segmentlog: manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close() // publish failed; the fsync error is the story
		fsys.Remove(tmp)
		return fmt.Errorf("segmentlog: manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("segmentlog: manifest: %w", err)
	}
	if err := fsys.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("segmentlog: manifest: %w", err)
	}
	return syncDir(fsys, dir)
}
