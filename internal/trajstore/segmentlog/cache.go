// Read-side record cache: decoded records keyed by (manifest
// generation, segment path, record offset). The bytes at a (path, off)
// are immutable for as long as a generation references them — appends
// only extend files, and every layout change (rotation, compaction,
// heal/salvage, recovery truncation) publishes a new manifest
// generation — so a generation bump is the whole invalidation
// protocol: stale entries simply stop being looked up and age out of
// the LRU tail. A cache hit serves from memory and therefore skips the
// pread, the CRC re-verification and the delta-varint decode; the CRC
// was verified when the entry was populated.
//
// One cache may be shared by many Logs (the sharded layer shares a
// single budget across all shard logs); the path component of the key
// includes the shard directory, so keys never collide across shards.
package segmentlog

import (
	"github.com/trajcomp/bqs/internal/cache"
	"github.com/trajcomp/bqs/internal/trajstore"
)

// recKey identifies one immutable record body in one published
// generation of one log.
type recKey struct {
	gen  uint64
	path string
	off  int64
}

// cachedRec is the cached decode of one record. The keys slice is
// owned by the cache: cloned in on put, cloned out on get, so neither
// the populating query's caller nor a later hit's caller can mutate
// the cached copy.
type cachedRec struct {
	device string
	t0, t1 uint32
	keys   []trajstore.GeoKey
}

// recordCache is the concrete cache type the log embeds. A nil
// *recordCache is the configured-off state: every operation no-ops.
type recordCache = cache.Cache[recKey, cachedRec]

// geoKeySize is the charged size of one trajstore.GeoKey (two float64
// coordinates plus a uint32 timestamp, padded): what the decoded slice
// actually costs, not the ~2.5-byte delta-encoded wire form.
const geoKeySize = 24

// recSize charges an entry what its decoded form occupies, plus the
// key strings and a fixed allowance for struct and list overhead.
func recSize(k recKey, v cachedRec) int64 {
	return int64(len(k.path)) + int64(len(v.device)) + geoKeySize*int64(len(v.keys)) + 96
}

// newRecordCache builds a record cache with the given byte budget
// (nil — off — when maxBytes ≤ 0).
func newRecordCache(maxBytes int64) *recordCache {
	return cache.New(maxBytes, recSize)
}

// cacheGet returns a private copy of the cached decode of the record
// at (gen, path, off), if present.
func (l *Log) cacheGet(gen uint64, path string, off int64) (Record, bool) {
	v, ok := l.cache.Get(recKey{gen: gen, path: path, off: off})
	if !ok {
		return Record{}, false
	}
	keys := make([]trajstore.GeoKey, len(v.keys))
	copy(keys, v.keys)
	return Record{Device: v.device, T0: v.t0, T1: v.t1, Keys: keys}, true
}

// cachePut stores a private copy of a freshly decoded record.
func (l *Log) cachePut(gen uint64, path string, off int64, r Record) {
	if l.cache == nil {
		return
	}
	keys := make([]trajstore.GeoKey, len(r.Keys))
	copy(keys, r.Keys)
	l.cache.Put(recKey{gen: gen, path: path, off: off},
		cachedRec{device: r.Device, t0: r.T0, t1: r.T1, keys: keys})
}

// CacheStats snapshots the read cache's counters; all zero when no
// cache is configured. For shard logs sharing one cache, each shard
// reports the same shared snapshot — aggregate through
// ShardedLog.CacheStats instead of summing shards.
func (l *Log) CacheStats() cache.Stats { return l.cache.Stats() }

// ReclaimedBytes is the cumulative net disk space reclaimed by
// compactions published over this open handle's lifetime (BytesIn −
// BytesOut per publish; an upgrade pass that grows the data subtracts).
func (l *Log) ReclaimedBytes() int64 { return l.reclaimed.Load() }

// CacheStats snapshots the read cache shared by all shards.
func (s *ShardedLog) CacheStats() cache.Stats { return s.cache.Stats() }

// ReclaimedBytes sums the shards' cumulative compaction reclaim.
func (s *ShardedLog) ReclaimedBytes() int64 {
	var n int64
	for _, lg := range s.shards {
		n += lg.ReclaimedBytes()
	}
	return n
}
