package trajstore

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

// fuzzSeedKeys are representative valid trajectories used to seed both
// fuzz targets: ordinary values, the poles/antimeridian boundary, tiny
// negative deltas and duplicate timestamps.
func fuzzSeedKeys() [][]GeoKey {
	return [][]GeoKey{
		{{Lat: 0, Lon: 0, T: 0}},
		{{Lat: -37.8136, Lon: 144.9631, T: 1700000000}, {Lat: -37.8140, Lon: 144.9629, T: 1700000060}},
		{{Lat: 90, Lon: 180, T: math.MaxUint32}, {Lat: -90, Lon: -180, T: math.MaxUint32}},
		{{Lat: 1e-7, Lon: -1e-7, T: 5}, {Lat: 0, Lon: 0, T: 5}, {Lat: -1e-7, Lon: 1e-7, T: 4}},
	}
}

// FuzzDeltaDecode checks DeltaDecode never panics or over-allocates on
// arbitrary input, and that accepted input re-encodes losslessly:
// decode→encode→decode must be a fixed point.
func FuzzDeltaDecode(f *testing.F) {
	for _, keys := range fuzzSeedKeys() {
		enc, err := DeltaEncode(keys)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
		for _, cut := range []int{0, 1, len(enc) / 2, len(enc) - 1} {
			f.Add(enc[:cut])
		}
	}
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}) // huge count
	f.Fuzz(func(t *testing.T, data []byte) {
		keys, err := DeltaDecode(data)
		if err != nil {
			return
		}
		// Anything DeltaDecode accepts must re-encode, or be out of the
		// encoder's domain (decode tolerates coordinates past ±90/±180
		// that the encoder rejects — that asymmetry is fine, but the
		// values must still be finite).
		for _, k := range keys {
			if math.IsNaN(k.Lat) || math.IsInf(k.Lat, 0) || math.IsNaN(k.Lon) || math.IsInf(k.Lon, 0) {
				t.Fatalf("decoded non-finite key %+v", k)
			}
		}
		enc, err := DeltaEncode(keys)
		if err != nil {
			return
		}
		again, err := DeltaDecode(enc)
		if err != nil {
			t.Fatalf("re-encoded output failed to decode: %v", err)
		}
		if len(again) != len(keys) {
			t.Fatalf("round trip changed length %d → %d", len(keys), len(again))
		}
		for i := range keys {
			if again[i] != keys[i] {
				t.Fatalf("round trip changed key %d: %+v → %+v", i, keys[i], again[i])
			}
		}
	})
}

// FuzzDecodeTrajectory checks the fixed-width decoder never panics or
// over-allocates, and round-trips what it accepts.
func FuzzDecodeTrajectory(f *testing.F) {
	for _, keys := range fuzzSeedKeys() {
		enc, err := EncodeTrajectory(keys)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
		for _, cut := range []int{0, 3, 4, len(enc) - 1} {
			f.Add(enc[:cut])
		}
	}
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}) // count 2^32-1 with no payload
	f.Fuzz(func(t *testing.T, data []byte) {
		keys, n, err := DecodeTrajectory(data)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if n != 4+len(keys)*WireSize {
			t.Fatalf("consumed %d bytes for %d keys", n, len(keys))
		}
		enc, err := EncodeTrajectory(keys)
		if err != nil {
			// The decoder tolerates raw int32 coordinates past ±90/±180
			// that the encoder's domain check rejects; only that
			// asymmetry may fail here.
			if !errors.Is(err, ErrRange) {
				t.Fatalf("decoded keys failed to re-encode: %v", err)
			}
			return
		}
		if !bytes.Equal(enc, data[:n]) {
			t.Fatalf("re-encode differs from input prefix")
		}
	})
}

// TestDeltaRoundTripQuantizationBoundary is the round-trip property test
// at the wire format's 1e-7-degree quantization boundary: the poles and
// antimeridian, sub-quantum coordinates that round to adjacent quanta,
// negative deltas, and duplicate/decreasing timestamps.
func TestDeltaRoundTripQuantizationBoundary(t *testing.T) {
	cases := []struct {
		name string
		keys []GeoKey
	}{
		{"poles and antimeridian", []GeoKey{
			{Lat: 90, Lon: 180, T: 0},
			{Lat: -90, Lon: -180, T: 1},
			{Lat: 90, Lon: -180, T: math.MaxUint32},
		}},
		{"one quantum below the boundary", []GeoKey{
			{Lat: 90 - 1e-7, Lon: 180 - 1e-7, T: 10},
			{Lat: -90 + 1e-7, Lon: -180 + 1e-7, T: 20},
		}},
		{"sub-quantum values rounding to the boundary", []GeoKey{
			{Lat: 89.99999996, Lon: 179.99999996, T: 1}, // rounds to 90/180
			{Lat: -89.99999996, Lon: -179.99999996, T: 2},
		}},
		{"negative deltas", []GeoKey{
			{Lat: 10, Lon: 20, T: 1000},
			{Lat: 9.9999999, Lon: 19.9999999, T: 1001},
			{Lat: -10, Lon: -20, T: 1002},
		}},
		{"duplicate timestamps", []GeoKey{
			{Lat: 1, Lon: 2, T: 7},
			{Lat: 1.0000001, Lon: 2.0000001, T: 7},
			{Lat: 1.0000002, Lon: 2.0000002, T: 7},
		}},
		{"decreasing timestamps", []GeoKey{
			{Lat: 0, Lon: 0, T: 100},
			{Lat: 0, Lon: 0, T: 50},
			{Lat: 0, Lon: 0, T: 0},
		}},
		{"single key", []GeoKey{{Lat: -45.1234567, Lon: 170.7654321, T: 42}}},
		{"empty", nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			enc, err := DeltaEncode(tc.keys)
			if err != nil {
				t.Fatal(err)
			}
			dec, err := DeltaDecode(enc)
			if err != nil {
				t.Fatal(err)
			}
			if len(dec) != len(tc.keys) {
				t.Fatalf("length %d → %d", len(tc.keys), len(dec))
			}
			for i, k := range tc.keys {
				want := GeoKey{
					Lat: math.Round(k.Lat*1e7) / 1e7,
					Lon: math.Round(k.Lon*1e7) / 1e7,
					T:   k.T,
				}
				if dec[i] != want {
					t.Fatalf("key %d: got %+v, want quantized %+v (original %+v)", i, dec[i], want, k)
				}
				// The quantization error is at most half a quantum.
				if d := math.Abs(dec[i].Lat - k.Lat); d > 0.5e-7 {
					t.Fatalf("key %d: lat quantization error %g", i, d)
				}
				if d := math.Abs(dec[i].Lon - k.Lon); d > 0.5e-7 {
					t.Fatalf("key %d: lon quantization error %g", i, d)
				}
			}
			// Encoding the quantized keys is a fixed point.
			enc2, err := DeltaEncode(dec)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(enc, enc2) {
				t.Fatal("encode(decode(encode(keys))) differs from encode(keys)")
			}
		})
	}

	// Out-of-range and non-finite coordinates must be rejected, not
	// silently wrapped.
	for _, bad := range []GeoKey{
		{Lat: 90 + 1e-6, Lon: 0},
		{Lat: 0, Lon: -180 - 1e-6},
		{Lat: math.NaN(), Lon: 0},
		{Lat: 0, Lon: math.Inf(1)},
	} {
		if _, err := DeltaEncode([]GeoKey{bad}); err == nil {
			t.Errorf("DeltaEncode accepted out-of-range key %+v", bad)
		}
	}
}

// TestDeltaValidateMatchesDecode pins the contract the segment log's
// recovery scan relies on: DeltaValidate accepts exactly the payloads
// DeltaDecode can materialize — over valid encodes, every truncation
// of one, and a sweep of single-byte corruptions.
func TestDeltaValidateMatchesDecode(t *testing.T) {
	check := func(b []byte) {
		t.Helper()
		_, err := DeltaDecode(b)
		if got := DeltaValidate(b); got != (err == nil) {
			t.Fatalf("DeltaValidate=%v but DeltaDecode err=%v for %x", got, err, b)
		}
	}
	keys := []GeoKey{
		{Lat: 1.25, Lon: -2.5, T: 100},
		{Lat: 1.2500001, Lon: -2.4999999, T: 160},
		{Lat: 1.26, Lon: -2.51, T: 160},
		{Lat: -89.9999999, Lon: 179.9999999, T: 4294967295},
	}
	valid, err := DeltaEncode(keys)
	if err != nil {
		t.Fatal(err)
	}
	check(valid)
	for cut := 0; cut <= len(valid); cut++ {
		check(valid[:cut])
	}
	for i := range valid {
		for _, x := range []byte{0x01, 0x80, 0xff} {
			mut := append([]byte(nil), valid...)
			mut[i] ^= x
			check(mut)
		}
	}
	// Negative-time delta underflow and implausible counts.
	check([]byte{0x02, 0x02, 0x02, 0x05, 0x02, 0x02, 0x0b}) // t1=5, dt=-6 → t<0
	check([]byte{0xff, 0xff, 0xff, 0xff, 0x0f})             // count ≫ len
	check(nil)
}
