// Package trajstore is the on-device trajectory database of Section V-F:
// it stores compressed trajectory segments, serializes them in the
// 12-byte-per-sample wire format the paper budgets for ("Each GPS sample
// requires at least 12 bytes storage (latitude, longitude, timestamp)"),
// spatially indexes them, and implements the two maintenance procedures —
// error-bounded merging (deduplicating a new segment against similar
// historical segments) and error-bounded ageing (re-compressing old
// trajectories at a coarser tolerance).
package trajstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"github.com/trajcomp/bqs/internal/core"
)

// WireSize is the encoded size of one key point: int32 latitude and
// longitude in 1e-7 degrees plus a uint32 timestamp in seconds — the
// paper's 12-byte GPS sample.
const WireSize = 12

// ErrShortBuffer reports a truncated wire record.
var ErrShortBuffer = errors.New("trajstore: short buffer")

// ErrRange reports a coordinate outside the encodable range.
var ErrRange = errors.New("trajstore: coordinate outside the wire format's range")

// GeoKey is a key point in geographic coordinates as stored on the wire.
type GeoKey struct {
	Lat, Lon float64 // degrees
	T        uint32  // seconds since the epoch
}

// EncodeGeoKey appends the 12-byte wire form of k to dst.
func EncodeGeoKey(dst []byte, k GeoKey) ([]byte, error) {
	if math.Abs(k.Lat) > 90 || math.Abs(k.Lon) > 180 ||
		math.IsNaN(k.Lat) || math.IsNaN(k.Lon) {
		return dst, ErrRange
	}
	var buf [WireSize]byte
	binary.LittleEndian.PutUint32(buf[0:4], uint32(int32(math.Round(k.Lat*1e7))))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(int32(math.Round(k.Lon*1e7))))
	binary.LittleEndian.PutUint32(buf[8:12], k.T)
	return append(dst, buf[:]...), nil
}

// DecodeGeoKey decodes one wire record from b.
func DecodeGeoKey(b []byte) (GeoKey, error) {
	if len(b) < WireSize {
		return GeoKey{}, ErrShortBuffer
	}
	lat := int32(binary.LittleEndian.Uint32(b[0:4]))
	lon := int32(binary.LittleEndian.Uint32(b[4:8]))
	t := binary.LittleEndian.Uint32(b[8:12])
	return GeoKey{Lat: float64(lat) / 1e7, Lon: float64(lon) / 1e7, T: t}, nil
}

// EncodeTrajectory encodes a compressed trajectory (its key points) into
// the wire format: a uint32 count followed by count records.
func EncodeTrajectory(keys []GeoKey) ([]byte, error) {
	out := make([]byte, 4, 4+len(keys)*WireSize)
	binary.LittleEndian.PutUint32(out, uint32(len(keys)))
	var err error
	for _, k := range keys {
		out, err = EncodeGeoKey(out, k)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// DecodeTrajectory decodes a wire-format trajectory and returns the key
// points and the number of bytes consumed.
func DecodeTrajectory(b []byte) ([]GeoKey, int, error) {
	if len(b) < 4 {
		return nil, 0, ErrShortBuffer
	}
	n := int(binary.LittleEndian.Uint32(b))
	need := 4 + n*WireSize
	if len(b) < need {
		return nil, 0, ErrShortBuffer
	}
	keys := make([]GeoKey, n)
	off := 4
	for i := 0; i < n; i++ {
		k, err := DecodeGeoKey(b[off:])
		if err != nil {
			return nil, 0, err
		}
		keys[i] = k
		off += WireSize
	}
	return keys, off, nil
}

// DeltaEncode encodes key points with varint deltas (an extension beyond
// the paper's fixed 12-byte format): the first record is absolute, then
// each subsequent record stores zig-zag varint deltas of the 1e-7-degree
// coordinates and the timestamp. Typical compressed trajectories shrink by
// another ~40-60%.
func DeltaEncode(keys []GeoKey) ([]byte, error) {
	var out []byte
	out = binary.AppendUvarint(out, uint64(len(keys)))
	var pLat, pLon int64
	var pT uint32
	for i, k := range keys {
		if math.Abs(k.Lat) > 90 || math.Abs(k.Lon) > 180 ||
			math.IsNaN(k.Lat) || math.IsNaN(k.Lon) {
			return nil, ErrRange
		}
		lat := int64(math.Round(k.Lat * 1e7))
		lon := int64(math.Round(k.Lon * 1e7))
		if i == 0 {
			out = binary.AppendVarint(out, lat)
			out = binary.AppendVarint(out, lon)
			out = binary.AppendUvarint(out, uint64(k.T))
		} else {
			out = binary.AppendVarint(out, lat-pLat)
			out = binary.AppendVarint(out, lon-pLon)
			out = binary.AppendVarint(out, int64(k.T)-int64(pT))
		}
		pLat, pLon, pT = lat, lon, k.T
	}
	return out, nil
}

// DeltaDecode inverts DeltaEncode.
func DeltaDecode(b []byte) ([]GeoKey, error) {
	n, off := binary.Uvarint(b)
	if off <= 0 {
		return nil, ErrShortBuffer
	}
	if n > uint64(len(b)) { // a record needs ≥ 3 bytes; cheap sanity cap
		return nil, fmt.Errorf("trajstore: implausible count %d", n)
	}
	keys := make([]GeoKey, 0, n)
	var pLat, pLon int64
	var pT int64
	pos := off
	for i := uint64(0); i < n; i++ {
		lat, w1 := binary.Varint(b[pos:])
		if w1 <= 0 {
			return nil, ErrShortBuffer
		}
		pos += w1
		lon, w2 := binary.Varint(b[pos:])
		if w2 <= 0 {
			return nil, ErrShortBuffer
		}
		pos += w2
		var t int64
		if i == 0 {
			tu, w3 := binary.Uvarint(b[pos:])
			if w3 <= 0 {
				return nil, ErrShortBuffer
			}
			pos += w3
			t = int64(tu)
		} else {
			dt, w3 := binary.Varint(b[pos:])
			if w3 <= 0 {
				return nil, ErrShortBuffer
			}
			pos += w3
			t = pT + dt
			lat += pLat
			lon += pLon
		}
		if t < 0 || t > math.MaxUint32 {
			return nil, ErrRange
		}
		keys = append(keys, GeoKey{Lat: float64(lat) / 1e7, Lon: float64(lon) / 1e7, T: uint32(t)})
		pLat, pLon, pT = lat, lon, t
	}
	return keys, nil
}

// DeltaValidate reports whether b is a structurally valid DeltaEncode
// payload — exactly the checks DeltaDecode applies, without
// materializing the key points. The segment log uses it during
// recovery scans so an indexed record is always servable: a CRC can be
// forged byte-by-byte (coverage-guided fuzzers do), but a record whose
// payload does not parse must be treated as torn, not indexed and then
// failed at read time.
func DeltaValidate(b []byte) bool {
	n, off := binary.Uvarint(b)
	if off <= 0 || n > uint64(len(b)) {
		return false
	}
	pos := off
	var pT int64
	for i := uint64(0); i < n; i++ {
		_, w1 := binary.Varint(b[pos:])
		if w1 <= 0 {
			return false
		}
		pos += w1
		_, w2 := binary.Varint(b[pos:])
		if w2 <= 0 {
			return false
		}
		pos += w2
		var t int64
		if i == 0 {
			tu, w3 := binary.Uvarint(b[pos:])
			if w3 <= 0 {
				return false
			}
			pos += w3
			t = int64(tu)
		} else {
			dt, w3 := binary.Varint(b[pos:])
			if w3 <= 0 {
				return false
			}
			pos += w3
			t = pT + dt
		}
		if t < 0 || t > math.MaxUint32 {
			return false
		}
		pT = t
	}
	return true
}

// PointKeysToGeo is a convenience for tests and tools: it treats projected
// metric points as if they were micro-degree coordinates scaled by the
// given factors. Real deployments should project properly via the geo
// package; the store itself is coordinate-agnostic.
func PointKeysToGeo(keys []core.Point, mPerLat, mPerLon float64) []GeoKey {
	out := make([]GeoKey, len(keys))
	for i, k := range keys {
		t := k.T
		if t < 0 {
			t = 0
		}
		out[i] = GeoKey{Lat: k.Y / mPerLat, Lon: k.X / mPerLon, T: uint32(t)}
	}
	return out
}
