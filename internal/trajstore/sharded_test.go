package trajstore

import (
	"fmt"
	"sync"
	"testing"

	"github.com/trajcomp/bqs/internal/core"
)

func TestShardedValidation(t *testing.T) {
	if _, err := NewSharded(0, Config{}); err == nil {
		t.Fatal("zero shards accepted")
	}
	if _, err := NewSharded(4, Config{MergeTolerance: -1}); err == nil {
		t.Fatal("invalid shard config accepted")
	}
}

func TestShardedMergedStats(t *testing.T) {
	s, err := NewSharded(3, Config{MergeTolerance: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Shard 0 gets a duplicate pair that must merge; shards 1..2 get
	// distinct segments.
	a := core.Point{X: 0, Y: 0, T: 0}
	b := core.Point{X: 100, Y: 0, T: 10}
	s.Shard(0).Insert(a, b)
	if !s.Shard(0).Insert(a, b) {
		t.Fatal("identical segment did not merge")
	}
	s.Shard(1).Insert(core.Point{X: 0, Y: 50, T: 0}, core.Point{X: 100, Y: 50, T: 10})
	s.Shard(2).Insert(core.Point{X: 0, Y: 90, T: 0}, core.Point{X: 100, Y: 90, T: 10})

	st := s.MergedStats()
	if st.Inserted != 4 || st.Merged != 1 || st.Segments != 3 {
		t.Fatalf("MergedStats = %+v, want Inserted 4, Merged 1, Segments 3", st)
	}
	if got := s.StorageBytes(); got != 6*WireSize {
		t.Fatalf("StorageBytes = %d, want %d", got, 6*WireSize)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if got := len(s.Segments()); got != 3 {
		t.Fatalf("Segments() returned %d, want 3", got)
	}

	// Per-shard snapshot agrees with the legacy two-int Stats.
	ins, merged := s.Shard(0).Stats()
	snap := s.Shard(0).Snapshot()
	if snap.Inserted != ins || snap.Merged != merged {
		t.Fatalf("Snapshot %+v disagrees with Stats (%d, %d)", snap, ins, merged)
	}
}

func TestShardedQueryFanOut(t *testing.T) {
	s, err := NewSharded(4, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		y := float64(i * 10)
		s.Shard(i).Insert(core.Point{X: 0, Y: y, T: float64(i)}, core.Point{X: 5, Y: y, T: float64(i) + 1})
	}
	if got := len(s.Query(-1, -1, 6, 35)); got != 4 {
		t.Fatalf("Query spanning all shards returned %d segments, want 4", got)
	}
	if got := len(s.Query(-1, -1, 6, 5)); got != 1 {
		t.Fatalf("Query spanning one shard returned %d segments, want 1", got)
	}
	if got := len(s.QueryTime(1.2, 1.8)); got != 1 {
		t.Fatalf("QueryTime returned %d segments, want 1", got)
	}
}

func TestShardedAge(t *testing.T) {
	s, err := NewSharded(2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// A 3-point near-collinear chain in each shard, old enough to age.
	for i := 0; i < 2; i++ {
		base := float64(i * 100)
		p0 := core.Point{X: base, Y: 0, T: 0}
		p1 := core.Point{X: base + 10, Y: 0.1, T: 1}
		p2 := core.Point{X: base + 20, Y: 0, T: 2}
		s.Shard(i).Insert(p0, p1)
		s.Shard(i).Insert(p1, p2)
	}
	dropped, err := s.Age(100, 5)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 2 {
		t.Fatalf("Age dropped %d points, want 2 (one mid point per shard)", dropped)
	}
	if _, err := s.Age(100, -1); err == nil {
		t.Fatal("invalid ageing tolerance accepted")
	}
}

func TestShardedConcurrentWriters(t *testing.T) {
	s, err := NewSharded(8, Config{MergeTolerance: 1})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sh := s.Shard((w + i) % s.NumShards())
				y := float64((w*200 + i) % 97)
				sh.Insert(core.Point{X: 0, Y: y, T: float64(i)}, core.Point{X: 50, Y: y, T: float64(i + 1)})
				if i%50 == 0 {
					s.MergedStats()
				}
			}
		}(w)
	}
	wg.Wait()
	if st := s.MergedStats(); st.Inserted != 16*200 {
		t.Fatalf("Inserted = %d, want %d", st.Inserted, 16*200)
	}
	_ = fmt.Sprintf("%d", s.Len())
}
