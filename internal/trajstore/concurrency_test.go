package trajstore

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/trajcomp/bqs/internal/core"
)

// The store documents safety for concurrent use; exercise it with parallel
// writers, readers and an ageing pass. Run with -race to verify.
func TestStoreConcurrentAccess(t *testing.T) {
	st := mustStore(t, Config{MergeTolerance: 10})
	var wg sync.WaitGroup
	const writers = 4
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			x := float64(w) * 10000
			for i := 0; i < 200; i++ {
				a := core.Point{X: x + float64(i)*100, Y: rng.Float64() * 50, T: float64(w*1000 + i)}
				b := core.Point{X: x + float64(i+1)*100, Y: rng.Float64() * 50, T: float64(w*1000 + i + 1)}
				st.Insert(a, b)
			}
		}(w)
	}
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 100; i++ {
				st.Query(-1e6, -1e6, 1e6, 1e6)
				st.QueryTime(0, 1e9)
				st.Len()
				st.StorageBytes()
			}
		}()
	}
	wg.Wait()
	if _, err := st.Age(1e9, 50); err != nil {
		t.Fatal(err)
	}
	readers.Wait()
	if st.Len() == 0 {
		t.Fatal("store empty after concurrent inserts")
	}
	ins, _ := st.Stats()
	if ins != writers*200 {
		t.Errorf("inserted = %d, want %d", ins, writers*200)
	}
}
