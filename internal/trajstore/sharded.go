package trajstore

import (
	"errors"
	"fmt"
)

// Stats is a point-in-time snapshot of a store's bookkeeping, usable on
// its own or merged across shards with Add. It is cheap to take (O(1)
// counter reads); the O(segments) wire-size accounting lives in
// StorageBytes so monitoring loops polling stats don't pay for it.
type Stats struct {
	Segments int // segments currently stored
	Inserted int // segments ever offered to Insert
	Merged   int // offered segments folded into an existing one
}

// Add accumulates o into s (shard merging).
func (s *Stats) Add(o Stats) {
	s.Segments += o.Segments
	s.Inserted += o.Inserted
	s.Merged += o.Merged
}

// Snapshot returns the store's current statistics.
func (st *Store) Snapshot() Stats {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return Stats{
		Segments: st.live,
		Inserted: st.inserted,
		Merged:   st.merged,
	}
}

// Sharded is a fixed set of independent Stores. Each shard has its own
// lock and spatial index, so writers hashed to different shards never
// contend; cross-shard reads fan out and concatenate. The caller owns the
// shard assignment (the ingestion engine hashes device IDs), which also
// means merging only deduplicates segments within a shard — the intended
// trade for linear write scaling.
//
// The embedded persistHolder optionally attaches a Persister: the
// ingestion engine calls Persist with every finalized session trajectory
// and SyncPersist as its durability barrier, so the in-memory stores and
// the on-disk log stay behind one storage object.
type Sharded struct {
	persistHolder
	shards []*Store
}

// NewSharded returns n independent stores built from the same Config.
func NewSharded(n int, cfg Config) (*Sharded, error) {
	if n <= 0 {
		return nil, errors.New("trajstore: shard count must be positive")
	}
	s := &Sharded{shards: make([]*Store, n)}
	for i := range s.shards {
		st, err := NewStore(cfg)
		if err != nil {
			return nil, fmt.Errorf("trajstore: shard %d: %w", i, err)
		}
		s.shards[i] = st
	}
	return s, nil
}

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Shard returns the i-th store.
func (s *Sharded) Shard(i int) *Store { return s.shards[i] }

// MergedStats sums the statistics of every shard.
func (s *Sharded) MergedStats() Stats {
	var total Stats
	for _, st := range s.shards {
		total.Add(st.Snapshot())
	}
	return total
}

// StorageBytes sums the wire-format size of every shard's contents.
// O(total segments); see Store.StorageBytes.
func (s *Sharded) StorageBytes() int {
	n := 0
	for _, st := range s.shards {
		n += st.StorageBytes()
	}
	return n
}

// Len returns the total number of stored segments across shards.
func (s *Sharded) Len() int {
	n := 0
	for _, st := range s.shards {
		n += st.Len()
	}
	return n
}

// Segments returns a snapshot of every shard's segments, concatenated.
// Segment IDs are only unique within a shard.
func (s *Sharded) Segments() []Segment {
	var out []Segment
	for _, st := range s.shards {
		out = append(out, st.Segments()...)
	}
	return out
}

// Query fans the rectangle query out to every shard and concatenates the
// results.
func (s *Sharded) Query(minX, minY, maxX, maxY float64) []Segment {
	var out []Segment
	for _, st := range s.shards {
		out = append(out, st.Query(minX, minY, maxX, maxY)...)
	}
	return out
}

// QueryWindow fans the combined spatio-temporal window query out to
// every shard and concatenates the results.
func (s *Sharded) QueryWindow(minX, minY, maxX, maxY, t0, t1 float64) []Segment {
	var out []Segment
	for _, st := range s.shards {
		out = append(out, st.QueryWindow(minX, minY, maxX, maxY, t0, t1)...)
	}
	return out
}

// QueryTime fans the time-window query out to every shard.
func (s *Sharded) QueryTime(t0, t1 float64) []Segment {
	var out []Segment
	for _, st := range s.shards {
		out = append(out, st.QueryTime(t0, t1)...)
	}
	return out
}

// Age runs the ageing procedure on every shard, returning the total key
// points dropped. The first shard error aborts the sweep.
func (s *Sharded) Age(cutoffT, tolerance float64) (dropped int, err error) {
	for i, st := range s.shards {
		d, err := st.Age(cutoffT, tolerance)
		dropped += d
		if err != nil {
			return dropped, fmt.Errorf("trajstore: shard %d: %w", i, err)
		}
	}
	return dropped, nil
}
