package trajstore

import (
	"errors"
	"reflect"
	"sort"
	"testing"

	"github.com/trajcomp/bqs/internal/core"
)

func pt(x, y, t float64) core.Point { return core.Point{X: x, Y: y, T: t} }

// TestStoreQueryWindow: the combined spatio-temporal query equals
// Query ∩ QueryTime, segment by segment.
func TestStoreQueryWindow(t *testing.T) {
	st, err := NewStore(Config{})
	if err != nil {
		t.Fatal(err)
	}
	st.Insert(pt(0, 0, 10), pt(50, 40, 20))
	st.Insert(pt(500, 500, 100), pt(550, 540, 110))
	st.Insert(pt(10, 20, 900), pt(60, 70, 950))

	ids := func(segs []Segment) []uint64 {
		out := make([]uint64, 0, len(segs))
		for _, s := range segs {
			out = append(out, s.ID)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	intersect := func(minX, minY, maxX, maxY, t0, t1 float64) []uint64 {
		inTime := make(map[uint64]bool)
		for _, s := range st.QueryTime(t0, t1) {
			inTime[s.ID] = true
		}
		var out []uint64
		for _, s := range st.Query(minX, minY, maxX, maxY) {
			if inTime[s.ID] {
				out = append(out, s.ID)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	cases := [][6]float64{
		{-10, -10, 100, 100, 0, 1000},   // segments 1 and 3 by space
		{-10, -10, 100, 100, 0, 50},     // segment 1 only
		{-10, -10, 1000, 1000, 0, 1000}, // everything
		{490, 490, 560, 560, 0, 50},     // right box, wrong time
		{2000, 2000, 2100, 2100, 0, 1000},
	}
	for _, c := range cases {
		got := ids(st.QueryWindow(c[0], c[1], c[2], c[3], c[4], c[5]))
		want := intersect(c[0], c[1], c[2], c[3], c[4], c[5])
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("QueryWindow%v = %v, want %v", c, got, want)
		}
	}
}

// TestQueryLargeWindowComplete is the regression for the grid-index
// span clamp: segments further apart than the write-path clamp span
// (1024 cells) must all be visible to one whole-extent query.
func TestQueryLargeWindowComplete(t *testing.T) {
	st, err := NewStore(Config{}) // 100 m cells
	if err != nil {
		t.Fatal(err)
	}
	// Three clusters ~150 km apart: over 1500 cells between them.
	st.Insert(pt(0, 0, 1), pt(10, 10, 2))
	st.Insert(pt(150_000, 0, 3), pt(150_010, 10, 4))
	st.Insert(pt(-150_000, -150_000, 5), pt(-149_990, -149_990, 6))
	if got := len(st.Query(-1e6, -1e6, 1e6, 1e6)); got != 3 {
		t.Fatalf("whole-extent Query returned %d of 3 segments", got)
	}
	if got := len(st.QueryWindow(-1e6, -1e6, 1e6, 1e6, 0, 100)); got != 3 {
		t.Fatalf("whole-extent QueryWindow returned %d of 3 segments", got)
	}
	if got := len(st.Query(149_000, -100, 151_000, 100)); got != 1 {
		t.Fatalf("cluster-2 window returned %d of 1 segments", got)
	}
	// A box whose cell coordinates overflow int32 must saturate, not
	// collapse both corners onto one sentinel cell (the float→int32
	// conversion is implementation-defined out of range).
	if got := len(st.Query(-1e15, -1e15, 1e15, 1e15)); got != 3 {
		t.Fatalf("overflowing window returned %d of 3 segments", got)
	}
	if got := len(st.QueryWindow(-1e15, -1e15, 1e15, 1e15, 0, 100)); got != 3 {
		t.Fatalf("overflowing QueryWindow returned %d of 3 segments", got)
	}
}

// TestShardedQueryWindow: fan-out concatenates per-shard results.
func TestShardedQueryWindow(t *testing.T) {
	sh, err := NewSharded(3, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sh.Shard(0).Insert(pt(0, 0, 10), pt(10, 10, 20))
	sh.Shard(1).Insert(pt(5, 5, 30), pt(15, 15, 40))
	sh.Shard(2).Insert(pt(1000, 1000, 10), pt(1010, 1010, 20))
	if got := len(sh.QueryWindow(-1, -1, 20, 20, 0, 100)); got != 2 {
		t.Fatalf("QueryWindow across shards returned %d, want 2", got)
	}
	if got := len(sh.QueryWindow(-1, -1, 20, 20, 35, 100)); got != 1 {
		t.Fatalf("time-restricted QueryWindow returned %d, want 1", got)
	}
}

// fakeWindowQuerier is a Persister that also answers window queries.
type fakeWindowQuerier struct {
	fakePersister
	lastCall [4]float64
	recs     []PersistedRecord
	err      error
}

type fakePersister struct{}

func (fakePersister) Append(string, []GeoKey) error { return nil }
func (fakePersister) Sync() error                   { return nil }
func (fakePersister) Close() error                  { return nil }

func (f *fakeWindowQuerier) QueryWindow(minX, minY, maxX, maxY float64, t0, t1 uint32) ([]PersistedRecord, error) {
	f.lastCall = [4]float64{minX, minY, maxX, maxY}
	return f.recs, f.err
}

func TestQueryWindowPersist(t *testing.T) {
	sh, err := NewSharded(1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// No persister, and a persister without window support: ok=false.
	if _, ok, err := sh.QueryWindowPersist(0, 0, 1, 1, 0, 1); ok || err != nil {
		t.Fatalf("no persister: ok=%v err=%v", ok, err)
	}
	sh.SetPersister(fakePersister{})
	if _, ok, err := sh.QueryWindowPersist(0, 0, 1, 1, 0, 1); ok || err != nil {
		t.Fatalf("non-window persister: ok=%v err=%v", ok, err)
	}
	// A window-capable persister is consulted and its results returned.
	fq := &fakeWindowQuerier{recs: []PersistedRecord{{Device: "d", T0: 1, T1: 2, Keys: []GeoKey{{Lat: 1, Lon: 2, T: 1}}}}}
	sh.SetPersister(fq)
	recs, ok, err := sh.QueryWindowPersist(1, 2, 3, 4, 0, 9)
	if !ok || err != nil || len(recs) != 1 || recs[0].Device != "d" {
		t.Fatalf("window persister: recs=%v ok=%v err=%v", recs, ok, err)
	}
	if fq.lastCall != [4]float64{1, 2, 3, 4} {
		t.Fatalf("window not forwarded: %v", fq.lastCall)
	}
	// Errors propagate with ok=true.
	fq.err = errors.New("boom")
	if _, ok, err := sh.QueryWindowPersist(0, 0, 1, 1, 0, 1); !ok || err == nil {
		t.Fatalf("error not propagated: ok=%v err=%v", ok, err)
	}
}
