package trajstore

import (
	"math"
	"math/rand"
	"testing"

	"github.com/trajcomp/bqs/internal/core"
)

func TestCodecRoundTrip(t *testing.T) {
	keys := []GeoKey{
		{Lat: -27.4698123, Lon: 153.0251456, T: 1700000000},
		{Lat: 0, Lon: 0, T: 0},
		{Lat: 89.9999999, Lon: -179.9999999, T: math.MaxUint32},
	}
	enc, err := EncodeTrajectory(keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != 4+3*WireSize {
		t.Errorf("encoded size = %d", len(enc))
	}
	dec, n, err := DecodeTrajectory(enc)
	if err != nil || n != len(enc) {
		t.Fatalf("decode: %v n=%d", err, n)
	}
	for i := range keys {
		if math.Abs(dec[i].Lat-keys[i].Lat) > 1e-7 || math.Abs(dec[i].Lon-keys[i].Lon) > 1e-7 || dec[i].T != keys[i].T {
			t.Errorf("key %d: %v vs %v", i, dec[i], keys[i])
		}
	}
}

func TestCodecErrors(t *testing.T) {
	if _, err := EncodeGeoKey(nil, GeoKey{Lat: 91}); err != ErrRange {
		t.Errorf("lat 91: %v", err)
	}
	if _, err := EncodeGeoKey(nil, GeoKey{Lon: 181}); err != ErrRange {
		t.Errorf("lon 181: %v", err)
	}
	if _, err := EncodeGeoKey(nil, GeoKey{Lat: math.NaN()}); err != ErrRange {
		t.Errorf("NaN: %v", err)
	}
	if _, err := DecodeGeoKey(make([]byte, 5)); err != ErrShortBuffer {
		t.Errorf("short: %v", err)
	}
	if _, _, err := DecodeTrajectory(nil); err != ErrShortBuffer {
		t.Errorf("nil: %v", err)
	}
	enc, _ := EncodeTrajectory([]GeoKey{{Lat: 1, Lon: 1, T: 1}})
	if _, _, err := DecodeTrajectory(enc[:len(enc)-1]); err != ErrShortBuffer {
		t.Errorf("truncated: %v", err)
	}
}

func TestDeltaCodecRoundTripAndSize(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	keys := make([]GeoKey, 200)
	lat, lon := -27.5, 153.0
	tt := uint32(1700000000)
	for i := range keys {
		lat += rng.NormFloat64() * 0.001
		lon += rng.NormFloat64() * 0.001
		tt += uint32(60 + rng.Intn(600))
		keys[i] = GeoKey{Lat: lat, Lon: lon, T: tt}
	}
	enc, err := DeltaEncode(keys)
	if err != nil {
		t.Fatal(err)
	}
	fixed, _ := EncodeTrajectory(keys)
	if len(enc) >= len(fixed) {
		t.Errorf("delta %d B not smaller than fixed %d B", len(enc), len(fixed))
	}
	dec, err := DeltaDecode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(keys) {
		t.Fatalf("decoded %d keys", len(dec))
	}
	for i := range keys {
		if math.Abs(dec[i].Lat-keys[i].Lat) > 2e-7 || math.Abs(dec[i].Lon-keys[i].Lon) > 2e-7 || dec[i].T != keys[i].T {
			t.Fatalf("key %d: %v vs %v", i, dec[i], keys[i])
		}
	}
	t.Logf("fixed=%dB delta=%dB (%.0f%%)", len(fixed), len(enc), 100*float64(len(enc))/float64(len(fixed)))
}

func TestDeltaDecodeErrors(t *testing.T) {
	if _, err := DeltaDecode(nil); err == nil {
		t.Error("nil accepted")
	}
	enc, _ := DeltaEncode([]GeoKey{{Lat: 1, Lon: 2, T: 3}, {Lat: 1.1, Lon: 2.1, T: 4}})
	if _, err := DeltaDecode(enc[:len(enc)-1]); err == nil {
		t.Error("truncated accepted")
	}
	if _, err := DeltaEncode([]GeoKey{{Lat: 200}}); err == nil {
		t.Error("range accepted")
	}
}

func mustStore(t *testing.T, cfg Config) *Store {
	t.Helper()
	st, err := NewStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestStoreInsertAndMerge(t *testing.T) {
	st := mustStore(t, Config{MergeTolerance: 10})
	a := core.Point{X: 0, Y: 0, T: 0}
	b := core.Point{X: 1000, Y: 0, T: 600}
	if st.Insert(a, b) {
		t.Error("first insert reported a merge")
	}
	// A near-duplicate segment (shifted 3 m) must merge.
	a2 := core.Point{X: 2, Y: 3, T: 86400}
	b2 := core.Point{X: 1003, Y: 2, T: 87000}
	if !st.Insert(a2, b2) {
		t.Error("duplicate did not merge")
	}
	if st.Len() != 1 {
		t.Errorf("store has %d segments, want 1", st.Len())
	}
	segs := st.Segments()
	if segs[0].Weight != 2 {
		t.Errorf("weight = %d, want 2", segs[0].Weight)
	}
	if segs[0].FirstT != 0 || segs[0].LastT != 87000 {
		t.Errorf("time window = [%v, %v]", segs[0].FirstT, segs[0].LastT)
	}
	// A far-away segment must not merge.
	if st.Insert(core.Point{X: 0, Y: 500, T: 1}, core.Point{X: 1000, Y: 500, T: 2}) {
		t.Error("distant segment merged")
	}
	if st.Len() != 2 {
		t.Errorf("store has %d segments, want 2", st.Len())
	}
	ins, merged := st.Stats()
	if ins != 3 || merged != 1 {
		t.Errorf("stats = (%d,%d)", ins, merged)
	}
}

func TestStoreMergeRespectsTolerance(t *testing.T) {
	st := mustStore(t, Config{MergeTolerance: 5})
	st.Insert(core.Point{X: 0, Y: 0, T: 0}, core.Point{X: 1000, Y: 0, T: 1})
	// Shifted by 8 m > 5 m: no merge.
	if st.Insert(core.Point{X: 0, Y: 8, T: 2}, core.Point{X: 1000, Y: 8, T: 3}) {
		t.Error("segment beyond tolerance merged")
	}
	// Same line but much shorter: the stored segment's endpoints are far
	// from the short one, so the symmetric test must reject it.
	if st.Insert(core.Point{X: 400, Y: 0, T: 4}, core.Point{X: 600, Y: 0, T: 5}) {
		t.Error("sub-segment merged despite symmetric test")
	}
}

func TestStoreMergeDisabled(t *testing.T) {
	st := mustStore(t, Config{})
	st.Insert(core.Point{X: 0, Y: 0, T: 0}, core.Point{X: 100, Y: 0, T: 1})
	if st.Insert(core.Point{X: 0, Y: 0, T: 2}, core.Point{X: 100, Y: 0, T: 3}) {
		t.Error("merge happened with merging disabled")
	}
	if st.Len() != 2 {
		t.Errorf("len = %d", st.Len())
	}
}

func TestStoreQuery(t *testing.T) {
	st := mustStore(t, Config{MergeTolerance: 1})
	st.Insert(core.Point{X: 0, Y: 0, T: 0}, core.Point{X: 100, Y: 0, T: 1})
	st.Insert(core.Point{X: 5000, Y: 5000, T: 2}, core.Point{X: 5100, Y: 5000, T: 3})
	got := st.Query(-10, -10, 200, 10)
	if len(got) != 1 {
		t.Fatalf("query returned %d segments", len(got))
	}
	if got[0].A.X != 0 {
		t.Errorf("wrong segment: %+v", got[0])
	}
	if got := st.Query(-10, -10, 6000, 6000); len(got) != 2 {
		t.Errorf("wide query returned %d", len(got))
	}
	if got := st.QueryTime(2, 2.5); len(got) != 1 {
		t.Errorf("time query returned %d", len(got))
	}
}

func TestStoreInsertTrajectory(t *testing.T) {
	st := mustStore(t, Config{MergeTolerance: 10})
	keys := []core.Point{
		{X: 0, Y: 0, T: 0}, {X: 1000, Y: 0, T: 60}, {X: 1000, Y: 800, T: 120},
	}
	if m := st.InsertTrajectory(keys); m != 0 {
		t.Errorf("first trajectory merged %d", m)
	}
	if st.Len() != 2 {
		t.Errorf("len = %d", st.Len())
	}
	// The same route on another day merges entirely.
	keys2 := []core.Point{
		{X: 1, Y: 2, T: 86400}, {X: 1002, Y: 1, T: 86460}, {X: 999, Y: 801, T: 86520},
	}
	if m := st.InsertTrajectory(keys2); m != 2 {
		t.Errorf("repeat trajectory merged %d of 2", m)
	}
	if st.Len() != 2 {
		t.Errorf("len after merge = %d", st.Len())
	}
}

func TestStoreAge(t *testing.T) {
	st := mustStore(t, Config{MergeTolerance: 0})
	// A gently wiggling chain compressed at 2 m: ageing at 50 m should
	// collapse interior points.
	var keys []core.Point
	for i := 0; i <= 20; i++ {
		y := 0.0
		if i%2 == 1 {
			y = 10
		}
		keys = append(keys, core.Point{X: float64(i) * 500, Y: y, T: float64(i * 60)})
	}
	st.InsertTrajectory(keys)
	before := st.Len()
	dropped, err := st.Age(math.Inf(1), 50)
	if err != nil {
		t.Fatal(err)
	}
	if dropped == 0 {
		t.Error("ageing dropped nothing")
	}
	if st.Len() >= before {
		t.Errorf("segments %d → %d; expected shrink", before, st.Len())
	}
	// The aged chain still spans the same endpoints.
	segs := st.Segments()
	var minX, maxX float64 = math.Inf(1), math.Inf(-1)
	for _, s := range segs {
		minX = math.Min(minX, math.Min(s.A.X, s.B.X))
		maxX = math.Max(maxX, math.Max(s.A.X, s.B.X))
	}
	if minX != 0 || maxX != 10000 {
		t.Errorf("aged chain spans [%v, %v]", minX, maxX)
	}
}

func TestStoreAgeRespectsCutoff(t *testing.T) {
	st := mustStore(t, Config{})
	old := []core.Point{{X: 0, Y: 0, T: 0}, {X: 100, Y: 5, T: 60}, {X: 200, Y: 0, T: 120}}
	recent := []core.Point{{X: 0, Y: 1000, T: 9000}, {X: 100, Y: 1005, T: 9060}, {X: 200, Y: 1000, T: 9120}}
	st.InsertTrajectory(old)
	st.InsertTrajectory(recent)
	if _, err := st.Age(1000, 50); err != nil {
		t.Fatal(err)
	}
	// Recent segments untouched: both remain.
	n := 0
	for _, s := range st.Segments() {
		if s.A.Y >= 999 {
			n++
		}
	}
	if n != 2 {
		t.Errorf("recent segments = %d, want 2", n)
	}
}

func TestStoreAgeValidation(t *testing.T) {
	st := mustStore(t, Config{})
	if _, err := st.Age(0, 0); err == nil {
		t.Error("zero tolerance accepted")
	}
}

func TestStoreStorageBytes(t *testing.T) {
	st := mustStore(t, Config{})
	keys := []core.Point{{X: 0, Y: 0, T: 0}, {X: 100, Y: 0, T: 1}, {X: 200, Y: 0, T: 2}}
	st.InsertTrajectory(keys)
	// 3 distinct points × 12 bytes.
	if got := st.StorageBytes(); got != 3*WireSize {
		t.Errorf("StorageBytes = %d, want %d", got, 3*WireSize)
	}
}

func TestStoreConfigValidation(t *testing.T) {
	if _, err := NewStore(Config{MergeTolerance: -1}); err == nil {
		t.Error("negative tolerance accepted")
	}
	if _, err := NewStore(Config{MergeTolerance: math.NaN()}); err == nil {
		t.Error("NaN tolerance accepted")
	}
}

func TestGridIndexRemove(t *testing.T) {
	g := newGridIndex(100)
	box := segBox(core.Point{X: 0, Y: 0}, core.Point{X: 250, Y: 0})
	g.insert(7, box)
	if got := g.query(box); len(got) != 1 || got[0] != 7 {
		t.Fatalf("query = %v", got)
	}
	g.remove(7, box)
	if got := g.query(box); len(got) != 0 {
		t.Errorf("after remove: %v", got)
	}
}

func TestPointKeysToGeo(t *testing.T) {
	keys := []core.Point{{X: 111320, Y: 110574, T: 100}, {X: 0, Y: 0, T: -5}}
	gk := PointKeysToGeo(keys, 110574, 111320)
	if math.Abs(gk[0].Lat-1) > 1e-9 || math.Abs(gk[0].Lon-1) > 1e-9 || gk[0].T != 100 {
		t.Errorf("gk[0] = %+v", gk[0])
	}
	if gk[1].T != 0 {
		t.Errorf("negative time not clamped: %+v", gk[1])
	}
}
