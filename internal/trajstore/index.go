package trajstore

import (
	"math"

	"github.com/trajcomp/bqs/internal/geom"
)

// gridIndex is a uniform-grid spatial index over segment bounding boxes.
// Cells map to the IDs whose boxes overlap them; queries return candidate
// IDs (callers re-check geometry). Cell coordinates are packed into one
// uint64 key so every map operation takes the runtime's fast 64-bit path —
// the insert is on the engine's per-key-point hot path. It is not safe for
// concurrent use; the Store serializes access.
type gridIndex struct {
	cell  float64
	cells map[uint64][]uint64
}

func newGridIndex(cellSize float64) *gridIndex {
	return &gridIndex{cell: cellSize, cells: make(map[uint64][]uint64)}
}

// cellKey packs a cell coordinate pair into one map key.
func cellKey(cx, cy int32) uint64 {
	return uint64(uint32(cx))<<32 | uint64(uint32(cy))
}

func (g *gridIndex) cellOf(x, y float64) (int32, int32) {
	return int32(math.Floor(x / g.cell)), int32(math.Floor(y / g.cell))
}

// span returns the clamped cell-coordinate range covered by box; ok is
// false for an empty box.
func (g *gridIndex) span(box geom.Box) (lox, loy, hix, hiy int32, ok bool) {
	if box.Empty() {
		return 0, 0, 0, 0, false
	}
	lox, loy = g.cellOf(box.Min.X, box.Min.Y)
	hix, hiy = g.cellOf(box.Max.X, box.Max.Y)
	// Guard against pathological boxes flooding the map.
	const maxSpan = 1 << 10
	if int64(hix)-int64(lox) > maxSpan {
		hix = lox + maxSpan
	}
	if int64(hiy)-int64(loy) > maxSpan {
		hiy = loy + maxSpan
	}
	return lox, loy, hix, hiy, true
}

func (g *gridIndex) insert(id uint64, box geom.Box) {
	lox, loy, hix, hiy, ok := g.span(box)
	if !ok {
		return
	}
	for cx := lox; cx <= hix; cx++ {
		for cy := loy; cy <= hiy; cy++ {
			k := cellKey(cx, cy)
			g.cells[k] = append(g.cells[k], id)
		}
	}
}

func (g *gridIndex) remove(id uint64, box geom.Box) {
	lox, loy, hix, hiy, ok := g.span(box)
	if !ok {
		return
	}
	for cx := lox; cx <= hix; cx++ {
		for cy := loy; cy <= hiy; cy++ {
			k := cellKey(cx, cy)
			ids := g.cells[k]
			for i, v := range ids {
				if v == id {
					ids[i] = ids[len(ids)-1]
					ids = ids[:len(ids)-1]
					break
				}
			}
			if len(ids) == 0 {
				delete(g.cells, k)
			} else {
				g.cells[k] = ids
			}
		}
	}
}

// query returns the deduplicated candidate IDs whose cells overlap box.
// For a single-cell box — the common case for segment-sized queries — the
// cell's slice is returned directly without copying; callers must not
// mutate or retain the result past the Store lock.
func (g *gridIndex) query(box geom.Box) []uint64 {
	lox, loy, hix, hiy, ok := g.span(box)
	if !ok {
		return nil
	}
	if lox == hix && loy == hiy {
		return g.cells[cellKey(lox, loy)]
	}
	seen := make(map[uint64]bool)
	var out []uint64
	for cx := lox; cx <= hix; cx++ {
		for cy := loy; cy <= hiy; cy++ {
			for _, id := range g.cells[cellKey(cx, cy)] {
				if !seen[id] {
					seen[id] = true
					out = append(out, id)
				}
			}
		}
	}
	return out
}
