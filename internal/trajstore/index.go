package trajstore

import (
	"math"

	"github.com/trajcomp/bqs/internal/geom"
)

// gridIndex is a uniform-grid spatial index over segment bounding boxes.
// Cells map to the IDs whose boxes overlap them; queries return candidate
// IDs (callers re-check geometry). Cell coordinates are packed into one
// uint64 key so every map operation takes the runtime's fast 64-bit path —
// the insert is on the engine's per-key-point hot path. It is not safe for
// concurrent use; the Store serializes access.
type gridIndex struct {
	cell  float64
	cells map[uint64][]uint64
}

func newGridIndex(cellSize float64) *gridIndex {
	return &gridIndex{cell: cellSize, cells: make(map[uint64][]uint64)}
}

// cellKey packs a cell coordinate pair into one map key.
func cellKey(cx, cy int32) uint64 {
	return uint64(uint32(cx))<<32 | uint64(uint32(cy))
}

func (g *gridIndex) cellOf(x, y float64) (int32, int32) {
	return clampCell(math.Floor(x / g.cell)), clampCell(math.Floor(y / g.cell))
}

// clampCell saturates a cell coordinate into int32 range. Go's
// out-of-range float→int conversion is implementation-defined (amd64
// collapses both infinities to MinInt32), so without saturation the
// two corners of a huge query box can land on the same sentinel cell
// and take the single-cell fast path — silently returning nothing.
func clampCell(v float64) int32 {
	switch {
	case v >= math.MaxInt32:
		return math.MaxInt32
	case v <= math.MinInt32:
		return math.MinInt32
	case v != v: // NaN: pick a deterministic cell rather than UB
		return 0
	}
	return int32(v)
}

// span returns the clamped cell-coordinate range covered by box; ok is
// false for an empty box. The clamp guards *writes* against a
// pathological box flooding the map with cells; queries must not use
// it — a clamped read would silently drop everything outside the
// clamped corner (see query's map-walk fallback instead).
func (g *gridIndex) span(box geom.Box) (lox, loy, hix, hiy int32, ok bool) {
	if box.Empty() {
		return 0, 0, 0, 0, false
	}
	lox, loy = g.cellOf(box.Min.X, box.Min.Y)
	hix, hiy = g.cellOf(box.Max.X, box.Max.Y)
	// Guard against pathological boxes flooding the map.
	const maxSpan = 1 << 10
	if int64(hix)-int64(lox) > maxSpan {
		hix = lox + maxSpan
	}
	if int64(hiy)-int64(loy) > maxSpan {
		hiy = loy + maxSpan
	}
	return lox, loy, hix, hiy, true
}

func (g *gridIndex) insert(id uint64, box geom.Box) {
	lox, loy, hix, hiy, ok := g.span(box)
	if !ok {
		return
	}
	for cx := lox; cx <= hix; cx++ {
		for cy := loy; cy <= hiy; cy++ {
			k := cellKey(cx, cy)
			g.cells[k] = append(g.cells[k], id)
		}
	}
}

func (g *gridIndex) remove(id uint64, box geom.Box) {
	lox, loy, hix, hiy, ok := g.span(box)
	if !ok {
		return
	}
	for cx := lox; cx <= hix; cx++ {
		for cy := loy; cy <= hiy; cy++ {
			k := cellKey(cx, cy)
			ids := g.cells[k]
			for i, v := range ids {
				if v == id {
					ids[i] = ids[len(ids)-1]
					ids = ids[:len(ids)-1]
					break
				}
			}
			if len(ids) == 0 {
				delete(g.cells, k)
			} else {
				g.cells[k] = ids
			}
		}
	}
}

// query returns the deduplicated candidate IDs whose cells overlap box.
// For a single-cell box — the common case for segment-sized queries — the
// cell's slice is returned directly without copying; callers must not
// mutate or retain the result past the Store lock. A box covering more
// cells than are populated is answered by walking the populated cells
// instead — complete at any query size (the write-path span clamp must
// never truncate a read: a whole-world window query has to see
// everything).
func (g *gridIndex) query(box geom.Box) []uint64 {
	if box.Empty() {
		return nil
	}
	lox, loy := g.cellOf(box.Min.X, box.Min.Y)
	hix, hiy := g.cellOf(box.Max.X, box.Max.Y)
	if lox == hix && loy == hiy {
		return g.cells[cellKey(lox, loy)]
	}
	seen := make(map[uint64]bool)
	var out []uint64
	collect := func(ids []uint64) {
		for _, id := range ids {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	nx, ny := int64(hix)-int64(lox)+1, int64(hiy)-int64(loy)+1
	if nx > int64(len(g.cells)) || ny > int64(len(g.cells)) || nx*ny > int64(len(g.cells)) {
		for k, ids := range g.cells {
			cx, cy := int32(k>>32), int32(uint32(k))
			if cx < lox || cx > hix || cy < loy || cy > hiy {
				continue
			}
			collect(ids)
		}
		return out
	}
	for cx := lox; cx <= hix; cx++ {
		for cy := loy; cy <= hiy; cy++ {
			collect(g.cells[cellKey(cx, cy)])
		}
	}
	return out
}
