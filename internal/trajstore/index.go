package trajstore

import (
	"math"

	"github.com/trajcomp/bqs/internal/geom"
)

// gridIndex is a uniform-grid spatial index over segment bounding boxes.
// Cells map to the IDs whose boxes overlap them; queries return candidate
// IDs (callers re-check geometry). It is not safe for concurrent use; the
// Store serializes access.
type gridIndex struct {
	cell  float64
	cells map[[2]int32][]uint64
}

func newGridIndex(cellSize float64) *gridIndex {
	return &gridIndex{cell: cellSize, cells: make(map[[2]int32][]uint64)}
}

func (g *gridIndex) cellOf(x, y float64) [2]int32 {
	return [2]int32{int32(math.Floor(x / g.cell)), int32(math.Floor(y / g.cell))}
}

// cellRange iterates the grid cells covered by box, calling fn for each.
func (g *gridIndex) cellRange(box geom.Box, fn func([2]int32)) {
	if box.Empty() {
		return
	}
	lo := g.cellOf(box.Min.X, box.Min.Y)
	hi := g.cellOf(box.Max.X, box.Max.Y)
	// Guard against pathological boxes flooding the map.
	const maxSpan = 1 << 10
	if int64(hi[0])-int64(lo[0]) > maxSpan || int64(hi[1])-int64(lo[1]) > maxSpan {
		hi = [2]int32{lo[0] + maxSpan, lo[1] + maxSpan}
	}
	for cx := lo[0]; cx <= hi[0]; cx++ {
		for cy := lo[1]; cy <= hi[1]; cy++ {
			fn([2]int32{cx, cy})
		}
	}
}

func (g *gridIndex) insert(id uint64, box geom.Box) {
	g.cellRange(box, func(c [2]int32) {
		g.cells[c] = append(g.cells[c], id)
	})
}

func (g *gridIndex) remove(id uint64, box geom.Box) {
	g.cellRange(box, func(c [2]int32) {
		ids := g.cells[c]
		for i, v := range ids {
			if v == id {
				ids[i] = ids[len(ids)-1]
				g.cells[c] = ids[:len(ids)-1]
				break
			}
		}
		if len(g.cells[c]) == 0 {
			delete(g.cells, c)
		}
	})
}

// query returns the deduplicated candidate IDs whose cells overlap box.
func (g *gridIndex) query(box geom.Box) []uint64 {
	seen := make(map[uint64]bool)
	var out []uint64
	g.cellRange(box, func(c [2]int32) {
		for _, id := range g.cells[c] {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	})
	return out
}
