package trajstore

import (
	"errors"
	"testing"
)

// recPersister records calls; optionally a Compacter.
type recPersister struct {
	appends, syncs, closes, compacts int
	err                              error
}

func (p *recPersister) Append(string, []GeoKey) error { p.appends++; return p.err }
func (p *recPersister) Sync() error                   { p.syncs++; return p.err }
func (p *recPersister) Close() error                  { p.closes++; return p.err }
func (p *recPersister) CompactNow() error             { p.compacts++; return p.err }

// plainPersister does not implement Compacter.
type plainPersister struct{ recPersister }

func (p *plainPersister) CompactNow() {} // wrong signature: not a Compacter

func TestPersistHolder(t *testing.T) {
	var h persistHolder

	// Detached: every operation is a successful no-op.
	if err := h.Persist("d", []GeoKey{{T: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := h.SyncPersist(); err != nil {
		t.Fatal(err)
	}
	if err := h.CompactPersist(); err != nil {
		t.Fatal(err)
	}
	if err := h.ClosePersist(); err != nil {
		t.Fatal(err)
	}

	p := &recPersister{}
	h.SetPersister(p)
	if h.Persister() != Persister(p) {
		t.Fatal("Persister() did not return the attachment")
	}
	if err := h.Persist("d", nil); err != nil || p.appends != 0 {
		t.Fatalf("empty trajectory reached the persister (%d appends)", p.appends)
	}
	if err := h.Persist("d", []GeoKey{{T: 1}}); err != nil || p.appends != 1 {
		t.Fatalf("Persist: err=%v appends=%d", err, p.appends)
	}
	if err := h.SyncPersist(); err != nil || p.syncs != 1 {
		t.Fatalf("SyncPersist: err=%v syncs=%d", err, p.syncs)
	}
	if err := h.CompactPersist(); err != nil || p.compacts != 1 {
		t.Fatalf("CompactPersist: err=%v compacts=%d", err, p.compacts)
	}

	// Errors propagate.
	boom := errors.New("boom")
	p.err = boom
	if err := h.Persist("d", []GeoKey{{T: 2}}); !errors.Is(err, boom) {
		t.Fatalf("Persist error lost: %v", err)
	}
	if err := h.CompactPersist(); !errors.Is(err, boom) {
		t.Fatalf("CompactPersist error lost: %v", err)
	}

	// Close detaches.
	p.err = nil
	if err := h.ClosePersist(); err != nil || p.closes != 1 {
		t.Fatalf("ClosePersist: err=%v closes=%d", err, p.closes)
	}
	if h.Persister() != nil {
		t.Fatal("ClosePersist did not detach")
	}

	// A non-Compacter persister makes CompactPersist a no-op.
	h.SetPersister(&plainPersister{})
	if err := h.CompactPersist(); err != nil {
		t.Fatal(err)
	}
}
