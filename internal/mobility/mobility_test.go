package mobility

import (
	"math"
	"testing"

	"github.com/trajcomp/bqs/internal/core"
	"github.com/trajcomp/bqs/internal/synth"
)

// compressedBat compresses a generated bat trace for the pipeline tests.
func compressedBat(t *testing.T, days int, seed int64) ([]core.Point, synth.Trace) {
	t.Helper()
	cfg := synth.DefaultBatConfig(seed)
	cfg.Days = days
	tr := synth.Bat(cfg)
	c, err := core.NewCompressor(core.Config{Tolerance: 10, Mode: core.ModeExact, RotationWarmup: -1})
	if err != nil {
		t.Fatal(err)
	}
	return c.CompressBatch(tr.Points()), tr
}

func TestDetectStaysBasic(t *testing.T) {
	keys := []core.Point{
		{X: 0, Y: 0, T: 0},
		{X: 5, Y: 3, T: 3600}, // 1 h near the origin: a stay
		{X: 500, Y: 0, T: 3700},
		{X: 1000, Y: 0, T: 3800},
		{X: 1002, Y: 2, T: 9000}, // long dwell at 1 km
	}
	stays := DetectStays(keys, 50, 1800, 10)
	if len(stays) != 2 {
		t.Fatalf("stays = %+v", stays)
	}
	if stays[0].Duration() < 3599 || math.Hypot(stays[0].X-2.5, stays[0].Y-1.5) > 5 {
		t.Errorf("first stay = %+v", stays[0])
	}
	if stays[1].X < 900 {
		t.Errorf("second stay = %+v", stays[1])
	}
}

func TestDetectStaysDegenerate(t *testing.T) {
	if s := DetectStays(nil, 50, 60, 10); s != nil {
		t.Error("nil keys")
	}
	if s := DetectStays([]core.Point{{X: 0, Y: 0, T: 0}, {X: 1, Y: 0, T: 1}}, 0, 60, 10); s != nil {
		t.Error("zero radius")
	}
	if s := DetectStays([]core.Point{{X: 0, Y: 0, T: 0}, {X: 1, Y: 0, T: 1}}, 50, 60, 0); s != nil {
		t.Error("zero speed")
	}
	// Pure movement: no stays.
	var keys []core.Point
	for i := 0; i < 20; i++ {
		keys = append(keys, core.Point{X: float64(i) * 1000, Y: 0, T: float64(i) * 60})
	}
	if s := DetectStays(keys, 50, 600, 10); len(s) != 0 {
		t.Errorf("movement produced stays: %+v", s)
	}
}

func TestClusterWaypoints(t *testing.T) {
	stays := []Stay{
		{X: 0, Y: 0, Start: 0, End: 3600},
		{X: 20, Y: 10, Start: 7200, End: 10800},   // same place
		{X: 5000, Y: 0, Start: 14400, End: 15000}, // another place
	}
	wps := ClusterWaypoints(stays, 100)
	if len(wps) != 2 {
		t.Fatalf("waypoints = %+v", wps)
	}
	// Sorted by dwell: the origin camp first.
	if wps[0].Visits != 2 || wps[0].TotalDuration != 7200 {
		t.Errorf("top waypoint = %+v", wps[0])
	}
	if wps[0].ID != 0 || wps[1].ID != 1 {
		t.Error("IDs not renumbered")
	}
	if got := ClusterWaypoints(stays, 0); got != nil {
		t.Error("zero cell size")
	}
}

func TestTripsAndPredictorOnBatTrace(t *testing.T) {
	keys, _ := compressedBat(t, 20, 5)
	stays := DetectStays(keys, 150, 30*60, 5)
	if len(stays) < 10 {
		t.Fatalf("only %d stays detected", len(stays))
	}
	wps := ClusterWaypoints(stays, 400)
	if len(wps) < 2 {
		t.Fatalf("only %d waypoints", len(wps))
	}
	// The camp (longest total dwell) must dominate.
	if wps[0].TotalDuration < wps[len(wps)-1].TotalDuration {
		t.Error("waypoints not sorted by dwell")
	}
	camp := wps[0]
	if math.Hypot(camp.X, camp.Y) > 400 {
		t.Errorf("top waypoint should be the camp at the origin, got (%.0f, %.0f)", camp.X, camp.Y)
	}

	trips := ExtractTrips(keys, stays, wps, 400, 300)
	if len(trips) < 5 {
		t.Fatalf("only %d trips", len(trips))
	}
	for _, tr := range trips {
		if tr.Duration() < 0 {
			t.Fatalf("negative trip duration: %+v", tr)
		}
	}

	pred, err := NewPredictor(len(wps))
	if err != nil {
		t.Fatal(err)
	}
	pred.Train(trips)
	// From the camp, something must be predictable.
	next, prob, ok := pred.PredictNext(camp.ID)
	if !ok || prob <= 0 || prob > 1 {
		t.Fatalf("PredictNext(camp) = %d %v %v", next, prob, ok)
	}
	mean, std, ok := pred.EstimateDuration(camp.ID, next)
	if !ok || mean <= 0 || std < 0 {
		t.Fatalf("EstimateDuration = %v %v %v", mean, std, ok)
	}
	// Commutes are ≈ 9 km at ≈ 9.5 m/s plus hops: minutes-to-hours scale.
	if mean < 60 || mean > 6*3600 {
		t.Errorf("trip duration estimate %v s implausible", mean)
	}
}

func TestPredictorValidation(t *testing.T) {
	if _, err := NewPredictor(0); err == nil {
		t.Error("zero waypoints accepted")
	}
	p, _ := NewPredictor(3)
	if _, _, ok := p.PredictNext(0); ok {
		t.Error("untrained predictor predicted")
	}
	if _, _, ok := p.EstimateDuration(0, 1); ok {
		t.Error("untrained duration estimated")
	}
	// Out-of-range trips are ignored.
	p.Train([]Trip{{From: -1, To: 5, Start: 0, End: 10}})
	if _, _, ok := p.PredictNext(0); ok {
		t.Error("invalid trip trained")
	}
	p.Train([]Trip{
		{From: 0, To: 1, Start: 0, End: 100},
		{From: 0, To: 1, Start: 200, End: 320},
		{From: 0, To: 2, Start: 400, End: 500},
	})
	next, prob, ok := p.PredictNext(0)
	if !ok || next != 1 || math.Abs(prob-2.0/3) > 1e-9 {
		t.Errorf("PredictNext = %d %v %v", next, prob, ok)
	}
	mean, std, ok := p.EstimateDuration(0, 1)
	if !ok || math.Abs(mean-110) > 1e-9 || math.Abs(std-10) > 1e-9 {
		t.Errorf("EstimateDuration = %v %v %v", mean, std, ok)
	}
}
