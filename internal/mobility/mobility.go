// Package mobility implements the downstream applications the paper's
// conclusion motivates on top of compressed trajectories: "Individualized
// trajectory and waypoint discovery can also be used to facilitate advanced
// applications like real-time trip prediction or trip-duration estimation."
//
// Everything here consumes *compressed* trajectories (key points), which is
// the point: the error-bounded compression preserves exactly the stays,
// routes and timing anchors these analyses need, at a fraction of the data.
package mobility

import (
	"errors"
	"math"
	"sort"

	"github.com/trajcomp/bqs/internal/core"
)

// Stay is a dwell inferred from the compressed trajectory: a roost, a
// foraging tree, a parking spot.
type Stay struct {
	X, Y       float64 // dwell location estimate
	Start, End float64 // attributed time window (seconds)
	Keys       int     // key points supporting the stay
}

// Duration returns the stay's length in seconds.
func (s Stay) Duration() float64 { return s.End - s.Start }

// DetectStays finds stays in a compressed trajectory. Compression folds
// dwells into their neighbouring segments (a stationary run contributes no
// deviation, so its points rarely survive as key points), which makes the
// reliable dwell signal *time slack*: a segment whose duration exceeds what
// travelling its length at travelSpeed explains must contain a dwell of at
// least the difference.
//
//   - radius: if a slow segment's endpoints are within radius, the whole
//     segment is one stationary dwell at their midpoint;
//   - otherwise the slack is attributed half to each endpoint (the dwell
//     sits at one of them, and recurring locations aggregate correctly in
//     waypoint clustering);
//   - minDur: minimum attributed slack for a stay;
//   - travelSpeed: the platform's typical moving speed in m/s.
func DetectStays(keys []core.Point, radius, minDur, travelSpeed float64) []Stay {
	if radius <= 0 || minDur < 0 || travelSpeed <= 0 || len(keys) < 2 {
		return nil
	}
	var stays []Stay
	for i := 0; i+1 < len(keys); i++ {
		a, b := keys[i], keys[i+1]
		dt := b.T - a.T
		if dt <= 0 {
			continue
		}
		d := math.Hypot(b.X-a.X, b.Y-a.Y)
		slack := dt - d/travelSpeed
		if slack < minDur {
			continue
		}
		if d <= radius {
			stays = append(stays, Stay{
				X: (a.X + b.X) / 2, Y: (a.Y + b.Y) / 2,
				Start: a.T, End: b.T, Keys: 2,
			})
			continue
		}
		// The dwell hides at one endpoint; split the attribution. Waypoint
		// clustering consolidates the recurring real location.
		stays = append(stays,
			Stay{X: a.X, Y: a.Y, Start: a.T, End: a.T + slack/2, Keys: 1},
			Stay{X: b.X, Y: b.Y, Start: b.T - slack/2, End: b.T, Keys: 1},
		)
	}
	return stays
}

// Waypoint is a recurring stay location.
type Waypoint struct {
	ID            int
	X, Y          float64 // visit-weighted centroid
	Visits        int
	TotalDuration float64
}

// ClusterWaypoints merges stays whose anchors fall within cellSize of an
// existing waypoint (greedy leader clustering, deterministic in input
// order). Waypoints are returned sorted by total dwell time, longest
// first, and re-numbered 0..n-1 in that order.
func ClusterWaypoints(stays []Stay, cellSize float64) []Waypoint {
	if cellSize <= 0 {
		return nil
	}
	var wps []Waypoint
	for _, s := range stays {
		best, bestDist := -1, math.Inf(1)
		for i, w := range wps {
			d := math.Hypot(s.X-w.X, s.Y-w.Y)
			if d <= cellSize && d < bestDist {
				best, bestDist = i, d
			}
		}
		if best < 0 {
			wps = append(wps, Waypoint{X: s.X, Y: s.Y, Visits: 1, TotalDuration: s.Duration()})
			continue
		}
		w := &wps[best]
		// Visit-weighted centroid update.
		n := float64(w.Visits)
		w.X = (w.X*n + s.X) / (n + 1)
		w.Y = (w.Y*n + s.Y) / (n + 1)
		w.Visits++
		w.TotalDuration += s.Duration()
	}
	sort.SliceStable(wps, func(i, j int) bool {
		return wps[i].TotalDuration > wps[j].TotalDuration
	})
	for i := range wps {
		wps[i].ID = i
	}
	return wps
}

// Trip is the movement between two consecutive stays.
type Trip struct {
	From, To   int // waypoint IDs
	Start, End float64
	Length     float64 // polyline length of the key points in between, metres
}

// Duration returns the trip's travel time in seconds.
func (t Trip) Duration() float64 { return t.End - t.Start }

// assign returns the waypoint containing (x, y), or -1.
func assign(wps []Waypoint, x, y, cellSize float64) int {
	best, bestDist := -1, math.Inf(1)
	for i, w := range wps {
		d := math.Hypot(x-w.X, y-w.Y)
		if d <= cellSize && d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// ExtractTrips pairs consecutive stays into trips and measures the route
// length over the compressed key points between them. Stays that do not
// map to any waypoint are skipped; consecutive stays at the same waypoint
// separated by less than minTripDur are merged (the slack-attribution in
// DetectStays can split one physical dwell in two), and trips shorter than
// minTripDur are dropped.
func ExtractTrips(keys []core.Point, stays []Stay, wps []Waypoint, cellSize, minTripDur float64) []Trip {
	// Assign and merge.
	type visit struct {
		wp         int
		start, end float64
	}
	var visits []visit
	for _, s := range stays {
		wp := assign(wps, s.X, s.Y, cellSize)
		if wp < 0 {
			continue
		}
		if n := len(visits); n > 0 && visits[n-1].wp == wp && s.Start-visits[n-1].end < minTripDur {
			if s.End > visits[n-1].end {
				visits[n-1].end = s.End
			}
			continue
		}
		visits = append(visits, visit{wp: wp, start: s.Start, end: s.End})
	}

	var trips []Trip
	for i := 0; i+1 < len(visits); i++ {
		start, end := visits[i].end, visits[i+1].start
		if end-start < minTripDur {
			continue
		}
		var length float64
		var prev *core.Point
		for k := range keys {
			if keys[k].T < start || keys[k].T > end {
				continue
			}
			if prev != nil {
				length += math.Hypot(keys[k].X-prev.X, keys[k].Y-prev.Y)
			}
			prev = &keys[k]
		}
		trips = append(trips, Trip{
			From: visits[i].wp, To: visits[i+1].wp,
			Start: start, End: end, Length: length,
		})
	}
	return trips
}

// Predictor is a first-order Markov model over waypoint transitions with
// per-edge trip-duration statistics (streaming mean/variance via Welford's
// recurrence, the same semi-numerical machinery the paper cites for
// reconstruction distributions).
type Predictor struct {
	nWaypoints int
	counts     map[[2]int]int
	durN       map[[2]int]int
	durMean    map[[2]int]float64
	durM2      map[[2]int]float64
	total      map[int]int
}

// NewPredictor returns an empty predictor over n waypoints.
func NewPredictor(n int) (*Predictor, error) {
	if n <= 0 {
		return nil, errors.New("mobility: need at least one waypoint")
	}
	return &Predictor{
		nWaypoints: n,
		counts:     make(map[[2]int]int),
		durN:       make(map[[2]int]int),
		durMean:    make(map[[2]int]float64),
		durM2:      make(map[[2]int]float64),
		total:      make(map[int]int),
	}, nil
}

// Train consumes trips (repeatable; statistics accumulate).
func (p *Predictor) Train(trips []Trip) {
	for _, t := range trips {
		if t.From < 0 || t.From >= p.nWaypoints || t.To < 0 || t.To >= p.nWaypoints {
			continue
		}
		key := [2]int{t.From, t.To}
		p.counts[key]++
		p.total[t.From]++
		p.durN[key]++
		d := t.Duration()
		delta := d - p.durMean[key]
		p.durMean[key] += delta / float64(p.durN[key])
		p.durM2[key] += delta * (d - p.durMean[key])
	}
}

// PredictNext returns the most likely next waypoint from the given one and
// its empirical probability; ok is false when the waypoint was never a
// trip origin.
func (p *Predictor) PredictNext(from int) (to int, prob float64, ok bool) {
	total := p.total[from]
	if total == 0 {
		return 0, 0, false
	}
	best, bestCount := -1, 0
	for key, c := range p.counts {
		if key[0] != from {
			continue
		}
		if c > bestCount || (c == bestCount && (best < 0 || key[1] < best)) {
			best, bestCount = key[1], c
		}
	}
	return best, float64(bestCount) / float64(total), true
}

// EstimateDuration returns the mean and standard deviation of the trip
// duration for an edge; ok is false without observations.
func (p *Predictor) EstimateDuration(from, to int) (mean, std float64, ok bool) {
	key := [2]int{from, to}
	n := p.durN[key]
	if n == 0 {
		return 0, 0, false
	}
	mean = p.durMean[key]
	if n > 1 {
		std = math.Sqrt(p.durM2[key] / float64(n))
	}
	return mean, std, true
}
