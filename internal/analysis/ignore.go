package analysis

import (
	"go/token"
	"strings"
)

// ignorePrefix introduces a suppression directive:
//
//	//bqslint:ignore <analyzer> <reason>
//
// The directive applies to diagnostics from <analyzer> on its own line
// (trailing comment) or on the line directly below it (standalone
// comment above the offending statement).
const ignorePrefix = "//bqslint:ignore"

// directiveAnalyzer is the pseudo analyzer name attached to
// diagnostics about the directives themselves.
const directiveAnalyzer = "bqslint"

type directive struct {
	pos      token.Position
	analyzer string
	reason   string
	used     bool
}

// applyDirectives filters diags through the package's ignore
// directives and appends diagnostics for malformed or unused ones.
// Only directives naming an analyzer in ran are eligible to suppress
// (and to be flagged as unused): the atest harness runs analyzers one
// at a time, and a directive for an analyzer that did not run is not
// dead, merely out of scope. Directive syntax, however, is always
// validated against the full registry, so a typo'd analyzer name never
// silently suppresses nothing.
func applyDirectives(pkg *Package, ran []*Analyzer, diags []Diagnostic) []Diagnostic {
	ranNames := make(map[string]bool, len(ran))
	for _, a := range ran {
		ranNames[a.Name] = true
	}

	var dirs []*directive
	var out []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, ignorePrefix)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				switch {
				case len(fields) == 0:
					out = append(out, Diagnostic{
						Pos:      pos,
						Message:  "malformed //bqslint:ignore directive: missing analyzer name and justification",
						Analyzer: directiveAnalyzer,
					})
					continue
				case !knownAnalyzer(fields[0]):
					out = append(out, Diagnostic{
						Pos:      pos,
						Message:  "//bqslint:ignore names unknown analyzer " + fields[0],
						Analyzer: directiveAnalyzer,
					})
					continue
				case len(fields) == 1:
					out = append(out, Diagnostic{
						Pos:      pos,
						Message:  "//bqslint:ignore " + fields[0] + " is missing its justification: every suppression must say why",
						Analyzer: directiveAnalyzer,
					})
					continue
				}
				dirs = append(dirs, &directive{
					pos:      pos,
					analyzer: fields[0],
					reason:   strings.Join(fields[1:], " "),
				})
			}
		}
	}

diags:
	for _, d := range diags {
		for _, dir := range dirs {
			if dir.analyzer != d.Analyzer || dir.pos.Filename != d.Pos.Filename {
				continue
			}
			if dir.pos.Line == d.Pos.Line || dir.pos.Line == d.Pos.Line-1 {
				dir.used = true
				continue diags
			}
		}
		out = append(out, d)
	}

	for _, dir := range dirs {
		if !dir.used && ranNames[dir.analyzer] {
			out = append(out, Diagnostic{
				Pos:      dir.pos,
				Message:  "unused //bqslint:ignore directive: no " + dir.analyzer + " diagnostic here to suppress",
				Analyzer: directiveAnalyzer,
			})
		}
	}
	return out
}

func knownAnalyzer(name string) bool {
	for _, a := range All() {
		if a.Name == name {
			return true
		}
	}
	return false
}
