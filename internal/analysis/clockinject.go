package analysis

import (
	"go/ast"
	"strings"
)

// ClockInject reports direct time.Now() calls in packages that expose
// an injectable clock. The engine's batch clock (Config.Clock), the
// compactor's ageing clock (CompactionPolicy.Now), and the fault
// injector's deterministic schedules all exist so that eviction,
// compaction memos, and crash matrices replay identically from a
// seed; one stray wall-clock read re-introduces the nondeterminism
// the seams were built to remove.
//
// Referencing time.Now as a value (`clock = time.Now`) is allowed —
// that is the injection point's default wiring, evaluated through the
// seam — only direct calls are flagged. The known deliberate
// exception, the server's SetReadDeadline(time.Now()) reader kick on
// shutdown, carries a //bqslint:ignore: it genuinely wants the wall
// clock, because the deadline is compared by the kernel, not by
// anything a test replays.
var ClockInject = &Analyzer{
	Name: "clockinject",
	Doc:  "no direct time.Now() calls in packages exposing an injectable clock",
	Run:  runClockInject,
}

// clockSeamPackages are the package-path fragments with an injectable
// time source: the engine (Config.Clock), the segment log incl. vfs
// (CompactionPolicy.Now, deterministic fault schedules), and the
// server (drives engine + log and must stay replayable end to end).
var clockSeamPackages = []string{
	"internal/engine",
	"internal/trajstore/segmentlog",
	"internal/server",
}

func runClockInject(pass *Pass) error {
	scoped := false
	for _, frag := range clockSeamPackages {
		if strings.Contains(pass.Pkg.Path(), frag) {
			scoped = true
			break
		}
	}
	if !scoped {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fullName(calleeFunc(pass.TypesInfo, call)) == "time.Now" {
				pass.Reportf(call.Pos(), "direct time.Now() call in a clock-seam package; read the injected clock (Config.Clock / CompactionPolicy.Now) so schedules stay deterministic")
			}
			return true
		})
	}
	return nil
}
