package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// All returns the bqslint analyzer suite in reporting order. Each
// entry guards one load-bearing invariant; see the Doc strings and
// DESIGN.md's "Enforced invariants" section for the incidents behind
// them.
func All() []*Analyzer {
	return []*Analyzer{
		LockedSend,
		VFSSeam,
		ErrDiscard,
		RenameSync,
		ClockInject,
	}
}

// calleeFunc resolves the function or method a call statically
// invokes, or nil for calls through function-typed values, builtins,
// and type conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// fullName renders fn like "(*sync.RWMutex).RLock" or "time.Now" —
// the form the analyzers match on.
func fullName(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	return fn.FullName()
}

// isTestFile reports whether pos lies in a _test.go file. The driver
// never loads test files, but the atest fixture harness does — that is
// how the test-file exemptions themselves get regression coverage.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// inSegmentlogSeam reports whether the package path is inside the
// durable segment-log tree whose filesystem traffic must route through
// vfs.FS — excluding the vfs package itself, which is the seam.
func inSegmentlogSeam(path string) bool {
	i := strings.Index(path, "internal/trajstore/segmentlog")
	if i < 0 {
		return false
	}
	rest := path[i+len("internal/trajstore/segmentlog"):]
	return rest != "/vfs" && !strings.HasPrefix(rest, "/vfs/")
}

// exprString renders an expression as compact source text — the
// identity key for lock receivers ("e.mu", "l.compactMu").
func exprString(e ast.Expr) string {
	return types.ExprString(e)
}

// lastResultIsError reports whether fn's final result is the built-in
// error type.
func lastResultIsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return last.String() == "error"
}
