package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockedSend reports blocking operations performed while a
// sync.Mutex or sync.RWMutex is held: channel sends and receives,
// selects without a default case, sync.WaitGroup.Wait,
// sync.Cond.Wait, time.Sleep, and re-acquiring a mutex that is
// already held (the read-lock-upgrade deadlock).
//
// This is the PR 7 incident class: Engine.Ingest held e.mu.RLock
// across a blocking shard-queue send, so a wedged persister parked
// producers inside the read lock and deadlocked Close's write lock
// behind them. The analyzer tracks lock state per function in source
// order, branch-aware: an Unlock inside an if-branch that returns
// does not release the lock on the fallthrough path, and after a
// conditional the lock is considered held only if every surviving
// path still holds it (so partial unlocks err toward silence, not
// false alarms). Function literals are analyzed as fresh goroutine
// contexts. The analysis is intra-procedural — a helper that sends on
// a channel is not traced through a call — which is exactly the
// granularity the repo's lock helpers (beginSend/send) are shaped
// for.
var LockedSend = &Analyzer{
	Name: "lockedsend",
	Doc:  "report blocking channel operations and unbounded waits while a sync mutex is held",
	Run:  runLockedSend,
}

type lockMode uint8

const (
	lockWrite lockMode = iota
	lockRead
)

// lockState maps a lock's receiver expression (rendered as source,
// e.g. "e.mu") to the mode it is held in.
type lockState map[string]lockMode

func (s lockState) clone() lockState {
	c := make(lockState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// heldNames renders the held set for diagnostics: "e.mu" or
// "e.mu, l.compactMu".
func (s lockState) heldNames() string {
	names := make([]string, 0, len(s))
	for k := range s {
		names = append(names, k)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// intersectStates keeps only locks held on every surviving path.
func intersectStates(states []lockState) lockState {
	if len(states) == 0 {
		return lockState{}
	}
	out := states[0].clone()
	for _, s := range states[1:] {
		for k := range out {
			if _, ok := s[k]; !ok {
				delete(out, k)
			}
		}
	}
	return out
}

func runLockedSend(pass *Pass) error {
	t := &lockTracker{pass: pass}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					t.walkStmts(d.Body.List, lockState{})
				}
			case *ast.GenDecl:
				// Function literals in package-level var initializers.
				for _, spec := range d.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, v := range vs.Values {
							t.checkExpr(v, lockState{})
						}
					}
				}
			}
		}
	}
	return nil
}

type lockTracker struct {
	pass *Pass
}

// walkStmts interprets stmts in source order, threading the held-lock
// state through branches. It returns the state after the block and
// whether the block always terminates flow (return, panic, branch).
func (t *lockTracker) walkStmts(stmts []ast.Stmt, held lockState) (lockState, bool) {
	for _, stmt := range stmts {
		var term bool
		held, term = t.walkStmt(stmt, held)
		if term {
			return held, true
		}
	}
	return held, false
}

func (t *lockTracker) walkStmt(stmt ast.Stmt, held lockState) (lockState, bool) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if t.applyLockOp(call, held) {
				return held, false
			}
			if isTerminalCall(t.pass, call) {
				t.checkExpr(s.X, held)
				return held, true
			}
		}
		t.checkExpr(s.X, held)
		return held, false

	case *ast.SendStmt:
		if len(held) > 0 {
			t.pass.Reportf(s.Arrow, "blocking channel send while holding %s", held.heldNames())
		}
		t.checkExpr(s.Chan, held)
		t.checkExpr(s.Value, held)
		return held, false

	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			t.checkExpr(e, held)
		}
		for _, e := range s.Lhs {
			t.checkExpr(e, held)
		}
		return held, false

	case *ast.DeferStmt:
		// A deferred Unlock releases at return, not here: the lock
		// stays held for the rest of the body. The deferred closure
		// itself runs in an unknown lock context — analyze it fresh.
		if _, op, ok := lockOpOf(t.pass, s.Call); ok && (op == opUnlock || op == opRUnlock) {
			return held, false
		}
		for _, arg := range s.Call.Args {
			t.checkExpr(arg, held)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			t.walkStmts(lit.Body.List, lockState{})
		}
		return held, false

	case *ast.GoStmt:
		// The goroutine body runs concurrently with no inherited lock;
		// only the argument expressions evaluate synchronously here.
		for _, arg := range s.Call.Args {
			t.checkExpr(arg, held)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			t.walkStmts(lit.Body.List, lockState{})
		}
		return held, false

	case *ast.ReturnStmt:
		for _, e := range s.Results {
			t.checkExpr(e, held)
		}
		return held, true

	case *ast.BranchStmt:
		return held, true

	case *ast.BlockStmt:
		return t.walkStmts(s.List, held)

	case *ast.LabeledStmt:
		return t.walkStmt(s.Stmt, held)

	case *ast.IfStmt:
		if s.Init != nil {
			held, _ = t.walkStmt(s.Init, held)
		}
		t.checkExpr(s.Cond, held)
		var outs []lockState
		thenOut, thenTerm := t.walkStmts(s.Body.List, held.clone())
		if !thenTerm {
			outs = append(outs, thenOut)
		}
		if s.Else != nil {
			elseOut, elseTerm := t.walkStmt(s.Else, held.clone())
			if !elseTerm {
				outs = append(outs, elseOut)
			}
			if len(outs) == 0 {
				return held, true
			}
		} else {
			outs = append(outs, held)
		}
		return intersectStates(outs), false

	case *ast.ForStmt:
		if s.Init != nil {
			held, _ = t.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			t.checkExpr(s.Cond, held)
		}
		bodyOut, bodyTerm := t.walkStmts(s.Body.List, held.clone())
		if s.Post != nil {
			t.walkStmt(s.Post, bodyOut)
		}
		outs := []lockState{held}
		if !bodyTerm {
			outs = append(outs, bodyOut)
		}
		return intersectStates(outs), false

	case *ast.RangeStmt:
		t.checkExpr(s.X, held)
		bodyOut, bodyTerm := t.walkStmts(s.Body.List, held.clone())
		outs := []lockState{held}
		if !bodyTerm {
			outs = append(outs, bodyOut)
		}
		return intersectStates(outs), false

	case *ast.SwitchStmt:
		if s.Init != nil {
			held, _ = t.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			t.checkExpr(s.Tag, held)
		}
		return t.walkCaseBodies(s.Body, held)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held, _ = t.walkStmt(s.Init, held)
		}
		t.walkStmt(s.Assign, held)
		return t.walkCaseBodies(s.Body, held)

	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault && len(held) > 0 {
			t.pass.Reportf(s.Select, "blocking select (no default case) while holding %s", held.heldNames())
		}
		var outs []lockState
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			// The comm statements themselves are covered by the
			// select-level report (or non-blocking when a default
			// exists); only the clause bodies need walking.
			out, term := t.walkStmts(cc.Body, held.clone())
			if !term {
				outs = append(outs, out)
			}
		}
		if len(outs) == 0 {
			return held, true
		}
		return intersectStates(outs), false

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						t.checkExpr(v, held)
					}
				}
			}
		}
		return held, false

	case *ast.IncDecStmt:
		t.checkExpr(s.X, held)
		return held, false

	default:
		return held, false
	}
}

// walkCaseBodies merges the lock state across switch case clauses: a
// lock survives only if every non-terminating clause (and the
// no-case-taken fallthrough, absent a default) still holds it.
func (t *lockTracker) walkCaseBodies(body *ast.BlockStmt, held lockState) (lockState, bool) {
	var outs []lockState
	hasDefault := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			t.checkExpr(e, held)
		}
		out, term := t.walkStmts(cc.Body, held.clone())
		if !term {
			outs = append(outs, out)
		}
	}
	if !hasDefault {
		outs = append(outs, held)
	}
	if len(outs) == 0 {
		return held, true
	}
	return intersectStates(outs), false
}

// checkExpr reports blocking operations nested in an expression:
// channel receives and known blocking calls. Function literals are
// analyzed as fresh contexts.
func (t *lockTracker) checkExpr(expr ast.Expr, held lockState) {
	ast.Inspect(expr, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			t.walkStmts(x.Body.List, lockState{})
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && len(held) > 0 {
				t.pass.Reportf(x.OpPos, "blocking channel receive while holding %s", held.heldNames())
			}
		case *ast.CallExpr:
			if len(held) > 0 {
				switch fullName(calleeFunc(t.pass.TypesInfo, x)) {
				case "(*sync.WaitGroup).Wait":
					t.pass.Reportf(x.Pos(), "sync.WaitGroup.Wait while holding %s", held.heldNames())
				case "(*sync.Cond).Wait":
					t.pass.Reportf(x.Pos(), "sync.Cond.Wait while holding %s", held.heldNames())
				case "time.Sleep":
					t.pass.Reportf(x.Pos(), "time.Sleep while holding %s", held.heldNames())
				}
			}
		}
		return true
	})
}

type lockOp uint8

const (
	opLock lockOp = iota
	opRLock
	opUnlock
	opRUnlock
)

// lockOpOf classifies call as a sync.Mutex/RWMutex lock or unlock and
// returns the lock's identity — the receiver expression rendered as
// source. TryLock variants are deliberately not classified: their
// acquisition is conditional, and treating it as unconditional would
// manufacture phantom held state.
func lockOpOf(pass *Pass, call *ast.CallExpr) (key string, op lockOp, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", 0, false
	}
	switch fullName(calleeFunc(pass.TypesInfo, call)) {
	case "(*sync.Mutex).Lock", "(*sync.RWMutex).Lock":
		op = opLock
	case "(*sync.RWMutex).RLock":
		op = opRLock
	case "(*sync.Mutex).Unlock", "(*sync.RWMutex).Unlock":
		op = opUnlock
	case "(*sync.RWMutex).RUnlock":
		op = opRUnlock
	default:
		return "", 0, false
	}
	return exprString(sel.X), op, true
}

// applyLockOp mutates held for a statement-level lock operation and
// reports re-acquisition of a held lock. Returns false if call is not
// a lock operation.
func (t *lockTracker) applyLockOp(call *ast.CallExpr, held lockState) bool {
	key, op, ok := lockOpOf(t.pass, call)
	if !ok {
		return false
	}
	switch op {
	case opLock, opRLock:
		if prev, already := held[key]; already {
			verb := "write"
			if prev == lockRead {
				verb = "read"
			}
			t.pass.Reportf(call.Pos(), "acquiring %s while already holding its %s lock (upgrade or recursive lock deadlocks)", key, verb)
		}
		if op == opLock {
			held[key] = lockWrite
		} else {
			held[key] = lockRead
		}
	case opUnlock, opRUnlock:
		delete(held, key)
	}
	return true
}

// isTerminalCall reports calls that never return: panic and the
// conventional fatal exits.
func isTerminalCall(pass *Pass, call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			return true
		}
	}
	switch fullName(calleeFunc(pass.TypesInfo, call)) {
	case "os.Exit", "log.Fatal", "log.Fatalf", "log.Fatalln":
		return true
	}
	return false
}
