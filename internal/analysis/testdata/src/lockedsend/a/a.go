// Package a exercises the lockedsend analyzer: blocking channel
// operations and unbounded waits while a sync mutex is held.
package a

import (
	"sync"
	"time"
)

type E struct {
	mu     sync.RWMutex
	wmu    sync.Mutex
	ch     chan int
	done   chan struct{}
	wg     sync.WaitGroup
	closed bool
}

// The PR 7 regression shape: a blocking send while holding the read
// lock.
func (e *E) sendUnderRLock() {
	e.mu.RLock()
	e.ch <- 1 // want `blocking channel send while holding e\.mu`
	e.mu.RUnlock()
}

// A deferred Unlock releases at return; the lock is held for the whole
// body.
func (e *E) sendUnderDeferredUnlock() {
	e.wmu.Lock()
	defer e.wmu.Unlock()
	e.ch <- 1 // want `blocking channel send while holding e\.wmu`
}

// The branch-release regression: an RUnlock on an early-return path
// must not clear the lock on the fallthrough path.
func (e *E) branchRelease() {
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return
	}
	e.ch <- 2 // want `blocking channel send while holding e\.mu`
	e.mu.RUnlock()
}

func (e *E) receiveUnderLock() {
	e.wmu.Lock()
	v := <-e.ch // want `blocking channel receive while holding e\.wmu`
	_ = v
	e.wmu.Unlock()
}

func (e *E) selectNoDefault() {
	e.wmu.Lock()
	select { // want `blocking select \(no default case\) while holding e\.wmu`
	case <-e.done:
	case e.ch <- 1:
	}
	e.wmu.Unlock()
}

// A select with a default case never blocks.
func (e *E) selectWithDefault() {
	e.wmu.Lock()
	select {
	case e.ch <- 1:
	default:
	}
	e.wmu.Unlock()
}

// Read-to-write upgrade self-deadlocks.
func (e *E) upgrade() {
	e.mu.RLock()
	defer e.mu.RUnlock()
	e.mu.Lock() // want `acquiring e\.mu while already holding its read lock`
	e.mu.Unlock()
}

func (e *E) waitUnderLock() {
	e.wmu.Lock()
	e.wg.Wait() // want `sync\.WaitGroup\.Wait while holding e\.wmu`
	e.wmu.Unlock()
}

func (e *E) sleepUnderLock() {
	e.wmu.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while holding e\.wmu`
	e.wmu.Unlock()
}

// Blocking operations after release are fine — the PR 7 fix shape:
// snapshot under the lock, send outside it.
func (e *E) sendAfterUnlock() {
	e.mu.RLock()
	closed := e.closed
	e.mu.RUnlock()
	if !closed {
		e.ch <- 3
	}
}

// A function literal is a fresh goroutine context: it does not inherit
// the enclosing held set, and spawning it does not block.
func (e *E) funcLitFresh() {
	e.wmu.Lock()
	go func() {
		e.ch <- 4
	}()
	e.wmu.Unlock()
}

// A deliberate exception carries a directive and is not reported.
func (e *E) suppressed() {
	e.wmu.Lock()
	e.ch <- 5 //bqslint:ignore lockedsend the consumer in this fixture always drains; deliberate exception under test
	e.wmu.Unlock()
}
