// Package seglog exercises the renamesync analyzer: every Rename that
// publishes a file must be followed by a directory fsync in the same
// function. Its fixture import path places it inside
// example.com/internal/trajstore/segmentlog.
package seglog

import "os"

func syncDir(dir string) error { return nil }

// The full publish protocol: rename, then directory fsync.
func publishGood(dir, tmp, final string) error {
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	return syncDir(dir)
}

func publishMissingSync(tmp, final string) error {
	return os.Rename(tmp, final) // want `Rename is not followed by a directory fsync`
}

// The fsync must come after the rename; a prior one proves nothing
// about the directory entry the rename just created.
func publishWrongOrder(dir, tmp, final string) error {
	if err := syncDir(dir); err != nil {
		return err
	}
	return os.Rename(tmp, final) // want `Rename is not followed by a directory fsync`
}

// A function literal is its own protocol scope: the enclosing
// function's syncDir does not complete the goroutine's rename.
func publishInLit(dir, tmp, final string) error {
	go func() {
		_ = os.Rename(tmp, final) // want `Rename is not followed by a directory fsync`
	}()
	return syncDir(dir)
}

// A helper that legitimately splits the protocol says why.
func renameOnly(tmp, final string) error {
	return os.Rename(tmp, final) //bqslint:ignore renamesync the sole caller completes the protocol with syncDir before publishing
}
