// Package other sits outside the clock-seam packages: direct
// time.Now() calls are fine here.
package other

import "time"

func Stamp() time.Time { return time.Now() }
