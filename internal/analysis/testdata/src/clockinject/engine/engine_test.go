// Test files measure real elapsed time as a matter of course; the
// exemption is itself under regression test here.
package engine

import "time"

func elapsed(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}
