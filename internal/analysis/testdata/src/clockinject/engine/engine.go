// Package engine exercises the clockinject analyzer: no direct
// time.Now() calls in a package exposing an injectable clock. Its
// fixture import path places it at example.com/internal/engine.
package engine

import "time"

type Config struct {
	Clock func() time.Time
}

// Referencing time.Now as a value is the seam's default wiring and is
// allowed; only direct calls are flagged.
func (c *Config) defaults() {
	if c.Clock == nil {
		c.Clock = time.Now
	}
}

func stamp() int64 {
	return time.Now().UnixNano() // want `direct time\.Now\(\) call in a clock-seam package`
}

// conn mirrors net.Conn's deadline surface for the known deliberate
// exception: a reader kick genuinely wants the wall clock.
type conn struct{}

func (conn) SetReadDeadline(t time.Time) error { return nil }

func kick(c conn) error {
	return c.SetReadDeadline(time.Now()) //bqslint:ignore clockinject the deadline is compared by the kernel, not replayed by a test
}
