// Package a exercises the errdiscard analyzer: discarded error
// results from durability-critical calls.
package a

type file struct{}

func (file) Close() error { return nil }
func (file) Sync() error  { return nil }
func (file) Flush() error { return nil }

type log struct{ f file }

func (l *log) Append(b []byte) error { return nil }

func publishManifest() error     { return nil }
func writeManifestLocked() error { return nil }

// counter.Append returns no error: nothing to discard, never flagged.
type counter struct{ n int }

func (c *counter) Append(x int) { c.n += x }

func bareCalls(l *log, f file, b []byte) {
	l.Append(b)           // want `error result of Append is dropped`
	f.Sync()              // want `error result of Sync is dropped`
	f.Flush()             // want `error result of Flush is dropped`
	f.Close()             // want `error result of Close is dropped`
	publishManifest()     // want `error result of publishManifest is dropped`
	writeManifestLocked() // want `error result of writeManifestLocked is dropped`
}

func deferred(f file) {
	defer f.Sync() // want `deferred Sync discards its error`
	defer f.Close()
}

func goStmt(l *log, b []byte) {
	go l.Append(b) // want `go Append discards its error`
}

func blanked(f file) {
	_ = f.Sync()          // want `error result of Sync is blanked`
	_ = publishManifest() // want `error result of publishManifest is blanked`
	_ = f.Close()
}

func handled(l *log, f file, b []byte) error {
	if err := l.Append(b); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

func nonCritical(c *counter) {
	c.Append(1)
}

func suppressed(f file) {
	f.Sync() //bqslint:ignore errdiscard fixture exercises the suppression path; the sync result is irrelevant here
}
