// Package a exercises the //bqslint:ignore directive machinery:
// malformed directives and directives that suppress nothing are
// themselves diagnostics.
package a

//bqslint:ignore
func malformedEmpty() {}

//bqslint:ignore nosuchanalyzer because reasons
func unknownName() {}

//bqslint:ignore clockinject
func missingReason() {}

//bqslint:ignore lockedsend there is no lockedsend diagnostic on the next line to suppress
func unused() {}
