// Test files stage fixtures and corrupt files on purpose: the seam
// exemption for _test.go is itself under regression test here.
package seglog

import "os"

func stageFixture(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return os.Remove(path)
}
