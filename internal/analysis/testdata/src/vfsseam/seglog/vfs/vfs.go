// Package vfs is the seam itself: the one place in the segment-log
// tree allowed to touch the real filesystem.
package vfs

import "os"

func Open(name string) (*os.File, error)   { return os.Open(name) }
func Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
