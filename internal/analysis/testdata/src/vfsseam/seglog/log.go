// Package seglog exercises the vfsseam analyzer: direct filesystem
// calls inside the durable segment-log tree. Its fixture import path
// places it at example.com/internal/trajstore/segmentlog.
package seglog

import (
	"os"
	"path/filepath"
)

// vfile mirrors vfs.File: calls through the seam interface are routed
// traffic and never flagged.
type vfile interface {
	Sync() error
	Close() error
}

func direct(dir string) error {
	f, err := os.Open(filepath.Join(dir, "MANIFEST")) // want `direct os\.Open bypasses the vfs\.FS seam`
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil { // want `direct \(\*os\.File\)\.Sync call bypasses the vfs\.FS seam`
		return err
	}
	if err := os.Rename("a", "b"); err != nil { // want `direct os\.Rename bypasses the vfs\.FS seam`
		return err
	}
	if _, err := filepath.Glob(filepath.Join(dir, "*.seg")); err != nil { // want `direct filepath\.Glob bypasses the vfs\.FS seam`
		return err
	}
	return f.Close() // want `direct \(\*os\.File\)\.Close call bypasses the vfs\.FS seam`
}

// Routed traffic and non-filesystem os helpers are fine.
func routed(f vfile) error {
	_ = os.Getenv("HOME")
	_ = os.O_CREATE
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}
