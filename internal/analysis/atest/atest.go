// Package atest is an analysistest-style fixture harness for the
// bqslint analyzers.
//
// Fixtures live under testdata/src/<dir>/ as ordinary Go packages and
// annotate the lines where an analyzer must fire with trailing
// comments of the form
//
//	// want `regexp`
//
// Run loads the fixture packages, applies one analyzer, and fails the
// test on any diagnostic without a matching want and any want without
// a matching diagnostic — so every fixture proves both that the
// analyzer fires where it must and that it stays silent where it
// must.
//
// Unlike the production loader, the harness loads _test.go fixture
// files too: that is how the analyzers' test-file exemptions get
// regression coverage. Fixture packages may import the standard
// library (resolved from compiler export data); they cannot import
// each other or the repo.
package atest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"github.com/trajcomp/bqs/internal/analysis"
)

// A Package maps one fixture directory (relative to the testdata/src
// root passed to Run) to the synthetic import path it is type-checked
// under. The path matters: analyzers scope themselves by package-path
// fragment (internal/trajstore/segmentlog, internal/engine), so
// fixtures claim those fragments under the reserved example.com
// namespace.
type Package struct {
	Dir  string
	Path string
}

// stdPackages are the standard-library imports fixtures may use.
var stdPackages = []string{
	"errors", "fmt", "io", "os", "path/filepath", "strings", "sync", "time",
}

// stdExports caches the import-path → export-data-file map; building
// it shells out to the go tool once per test binary.
var stdExports struct {
	once sync.Once
	m    map[string]string
	err  error
}

func stdImporter(fset *token.FileSet) (types.Importer, error) {
	stdExports.once.Do(func() {
		stdExports.m, stdExports.err = analysis.ExportData(".", stdPackages...)
	})
	if stdExports.err != nil {
		return nil, stdExports.err
	}
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := stdExports.m[path]
		if !ok {
			return nil, fmt.Errorf("fixture imports %q, which is outside the harness's standard-library set", path)
		}
		return os.Open(f)
	}), nil
}

// load parses and type-checks the fixture packages, including their
// _test.go files.
func load(srcRoot string, pkgs []Package) ([]*analysis.Package, error) {
	fset := token.NewFileSet()
	imp, err := stdImporter(fset)
	if err != nil {
		return nil, err
	}
	var out []*analysis.Package
	for _, p := range pkgs {
		dir := filepath.Join(srcRoot, p.Dir)
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		var names []string
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				names = append(names, e.Name())
			}
		}
		sort.Strings(names)
		if len(names) == 0 {
			return nil, fmt.Errorf("no fixture files in %s", dir)
		}
		files := make([]*ast.File, 0, len(names))
		for _, name := range names {
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		tpkg, info, err := analysis.Check(p.Path, fset, files, imp)
		if err != nil {
			return nil, err
		}
		out = append(out, &analysis.Package{
			ImportPath: p.Path,
			Dir:        dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			TypesInfo:  info,
		})
	}
	return out, nil
}

// Run applies one analyzer to the fixture packages and compares its
// diagnostics (after //bqslint:ignore filtering) against the
// fixtures' want comments.
func Run(t *testing.T, a *analysis.Analyzer, srcRoot string, pkgs ...Package) {
	t.Helper()
	loaded, err := load(srcRoot, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.RunAnalyzers(loaded, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	wants := collectWants(t, loaded)
	for _, d := range diags {
		if !wants.match(d) {
			t.Errorf("%s:%d: unexpected diagnostic: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Message, d.Analyzer)
		}
	}
	for _, w := range wants.list {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched `%s`", w.pos.Filename, w.pos.Line, w.re)
		}
	}
}

// Diagnostics loads the fixture packages and returns everything the
// analyzers report, after //bqslint:ignore filtering — the raw entry
// point for testing the directive machinery itself, whose diagnostics
// land on the directive's own line where a want comment cannot sit.
func Diagnostics(t *testing.T, srcRoot string, analyzers []*analysis.Analyzer, pkgs ...Package) []analysis.Diagnostic {
	t.Helper()
	loaded, err := load(srcRoot, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.RunAnalyzers(loaded, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

type want struct {
	pos     token.Position
	re      *regexp.Regexp
	matched bool
}

type wantSet struct {
	list []*want
}

// match consumes the first unmatched want on the diagnostic's line
// whose pattern matches its message.
func (ws *wantSet) match(d analysis.Diagnostic) bool {
	for _, w := range ws.list {
		if w.matched || w.pos.Filename != d.Pos.Filename || w.pos.Line != d.Pos.Line {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// wantPatternRE extracts the backquoted or double-quoted patterns of a
// want comment; a line may carry several.
var wantPatternRE = regexp.MustCompile("`([^`]+)`|\"([^\"]+)\"")

func collectWants(t *testing.T, pkgs []*analysis.Package) *wantSet {
	t.Helper()
	ws := &wantSet{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "// want ")
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					matches := wantPatternRE.FindAllStringSubmatch(rest, -1)
					if len(matches) == 0 {
						t.Fatalf("%s:%d: malformed want comment: no `pattern`", pos.Filename, pos.Line)
					}
					for _, m := range matches {
						pat := m[1]
						if pat == "" {
							pat = m[2]
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern: %v", pos.Filename, pos.Line, err)
						}
						ws.list = append(ws.list, &want{pos: pos, re: re})
					}
				}
			}
		}
	}
	return ws
}
