package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one loaded, parsed, type-checked package ready for
// analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	Dir        string
	ImportPath string
	Export     string
	Standard   bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// Load resolves patterns (e.g. "./...") relative to dir, parses every
// matching non-test Go file, and type-checks each package against
// compiler export data for its dependencies. It shells out to the go
// tool twice — once to enumerate the target packages, once with
// -export -deps to obtain export data — so the type checking is
// byte-for-byte the view the installed toolchain compiles, with no
// third-party loader in between.
//
// Test files are deliberately excluded: the invariants bqslint
// enforces guard production code, and test code exercises raw os
// calls, wall clocks, and intentionally wedged channels as a matter of
// course.
func Load(dir string, patterns ...string) ([]*Package, error) {
	targets, err := goList(dir, append([]string{"list", "-e", "-json=ImportPath,Error"}, patterns...))
	if err != nil {
		return nil, err
	}
	want := make(map[string]bool, len(targets))
	for _, t := range targets {
		if t.Error != nil {
			return nil, fmt.Errorf("%s: %s", t.ImportPath, t.Error.Err)
		}
		want[t.ImportPath] = true
	}

	deps, err := goList(dir, append([]string{
		"list", "-e", "-export", "-deps",
		"-json=Dir,ImportPath,Export,Standard,GoFiles,Error",
	}, patterns...))
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	var load []listedPackage
	for _, p := range deps {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if want[p.ImportPath] {
			if p.Error != nil {
				return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
			}
			load = append(load, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, p := range load {
		if len(p.GoFiles) == 0 {
			continue // test-only or empty package: nothing to analyze
		}
		files := make([]*ast.File, 0, len(p.GoFiles))
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		pkg, info, err := Check(p.ImportPath, fset, files, imp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, &Package{
			ImportPath: p.ImportPath,
			Dir:        p.Dir,
			Fset:       fset,
			Files:      files,
			Types:      pkg,
			TypesInfo:  info,
		})
	}
	return pkgs, nil
}

// Check type-checks one package's parsed files with the full
// types.Info the analyzers rely on. Shared by the loader and the atest
// fixture harness.
func Check(path string, fset *token.FileSet, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return pkg, info, nil
}

// ExportData returns an import-path → export-file map for patterns
// (built on demand by the go tool). The atest harness uses it to
// resolve fixtures' standard-library imports.
func ExportData(dir string, patterns ...string) (map[string]string, error) {
	deps, err := goList(dir, append([]string{
		"list", "-e", "-export", "-deps", "-json=ImportPath,Export",
	}, patterns...))
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(deps))
	for _, p := range deps {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

func goList(dir string, args []string) ([]listedPackage, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, fmt.Errorf("go list: %s", msg)
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decode: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
