package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// VFSSeam reports direct filesystem calls inside the durable
// segment-log tree (internal/trajstore/segmentlog and subpackages):
// os package filesystem functions, filepath.Glob, and any method call
// on an *os.File.
//
// Every filesystem operation the log performs must route through the
// vfs.FS seam introduced in PR 8 — that is what lets FaultFS's
// crash-at-every-op and fsync-poison matrices cover it. A raw os call
// compiles, passes every test, and silently exempts itself from the
// entire fault-injection story; this analyzer turns that silent
// coverage hole into a build failure. The vfs package itself (the
// seam's passthrough implementation) and _test.go files (which stage
// fixtures and corrupt files on purpose) are exempt.
var VFSSeam = &Analyzer{
	Name: "vfsseam",
	Doc:  "segmentlog filesystem traffic must route through vfs.FS so fault injection covers it",
	Run:  runVFSSeam,
}

// osFSFuncs are the os-package entry points that touch the
// filesystem. Process/env helpers (os.Getpid, os.Getenv, ...) and
// plain constants (os.O_CREATE) are not seam traffic.
var osFSFuncs = map[string]bool{
	"Chmod": true, "Chtimes": true, "Create": true, "CreateTemp": true,
	"Link": true, "Lstat": true, "Mkdir": true, "MkdirAll": true,
	"MkdirTemp": true, "Open": true, "OpenFile": true, "ReadDir": true,
	"ReadFile": true, "Remove": true, "RemoveAll": true, "Rename": true,
	"Stat": true, "Symlink": true, "Truncate": true, "WriteFile": true,
}

func runVFSSeam(pass *Pass) error {
	if !inSegmentlogSeam(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil {
				return true
			}
			full := fn.FullName()
			switch {
			case fn.Pkg() != nil && fn.Pkg().Path() == "os" && osFSFuncs[fn.Name()]:
				pass.Reportf(call.Pos(), "direct os.%s bypasses the vfs.FS seam (FaultFS fault matrices cannot cover it); use the log's fs", fn.Name())
			case full == "path/filepath.Glob":
				pass.Reportf(call.Pos(), "direct filepath.Glob bypasses the vfs.FS seam; use fs.Glob")
			case strings.HasPrefix(full, "(*os.File)."):
				if recvIsOSFile(pass.TypesInfo, call) {
					pass.Reportf(call.Pos(), "direct %s call bypasses the vfs.FS seam; hold a vfs.File instead", full)
				}
			}
			return true
		})
	}
	return nil
}

// recvIsOSFile reports whether the call's receiver expression is
// statically an *os.File (as opposed to a vfs.File interface that
// happens to be satisfied by one — those calls are already routed
// through the seam).
func recvIsOSFile(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return false
	}
	t := tv.Type
	if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "os" && named.Obj().Name() == "File"
}
