package analysis_test

import (
	"strings"
	"testing"

	"github.com/trajcomp/bqs/internal/analysis"
	"github.com/trajcomp/bqs/internal/analysis/atest"
)

const src = "testdata/src"

// seglogPath places a fixture inside the segment-log seam scope.
const seglogPath = "example.com/internal/trajstore/segmentlog"

func TestLockedSend(t *testing.T) {
	atest.Run(t, analysis.LockedSend, src,
		atest.Package{Dir: "lockedsend/a", Path: "example.com/lockedsend/a"})
}

func TestVFSSeam(t *testing.T) {
	atest.Run(t, analysis.VFSSeam, src,
		atest.Package{Dir: "vfsseam/seglog", Path: seglogPath},
		atest.Package{Dir: "vfsseam/seglog/vfs", Path: seglogPath + "/vfs"})
}

func TestErrDiscard(t *testing.T) {
	atest.Run(t, analysis.ErrDiscard, src,
		atest.Package{Dir: "errdiscard/a", Path: "example.com/errdiscard/a"})
}

func TestRenameSync(t *testing.T) {
	atest.Run(t, analysis.RenameSync, src,
		atest.Package{Dir: "renamesync/seglog", Path: seglogPath})
}

func TestClockInject(t *testing.T) {
	atest.Run(t, analysis.ClockInject, src,
		atest.Package{Dir: "clockinject/engine", Path: "example.com/internal/engine"},
		atest.Package{Dir: "clockinject/other", Path: "example.com/other"})
}

// TestDirectiveValidation runs the full suite over a fixture of broken
// directives: a missing analyzer name, an unknown analyzer, a missing
// justification, and a well-formed directive with nothing to suppress
// must each produce exactly one diagnostic from the "bqslint" pseudo
// analyzer.
func TestDirectiveValidation(t *testing.T) {
	pkg := atest.Package{Dir: "directives/a", Path: "example.com/directives/a"}
	diags := atest.Diagnostics(t, src, analysis.All(), pkg)

	wants := []string{
		"missing analyzer name",
		"unknown analyzer nosuchanalyzer",
		"missing its justification",
		"unused //bqslint:ignore",
	}
	if len(diags) != len(wants) {
		t.Fatalf("got %d diagnostics, want %d:\n%v", len(diags), len(wants), diags)
	}
	for _, want := range wants {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, want) {
				if d.Analyzer != "bqslint" {
					t.Errorf("diagnostic %q attributed to %q, want the bqslint pseudo analyzer", d.Message, d.Analyzer)
				}
				found = true
			}
		}
		if !found {
			t.Errorf("no diagnostic contains %q in %v", want, diags)
		}
	}
}

// TestUnusedDirectiveScopedToRun reruns the directives fixture with an
// analyzer set that does not include lockedsend: the well-formed but
// unused lockedsend directive is out of scope — not dead — so only the
// three syntax errors remain. This is what lets atest run analyzers
// one at a time without false unused-directive noise.
func TestUnusedDirectiveScopedToRun(t *testing.T) {
	pkg := atest.Package{Dir: "directives/a", Path: "example.com/directives/a"}
	diags := atest.Diagnostics(t, src, []*analysis.Analyzer{analysis.VFSSeam}, pkg)
	if len(diags) != 3 {
		t.Fatalf("got %d diagnostics, want 3 (syntax errors only):\n%v", len(diags), diags)
	}
	for _, d := range diags {
		if strings.Contains(d.Message, "unused") {
			t.Errorf("unused-directive diagnostic %q reported for an analyzer outside the run set", d.Message)
		}
	}
}

// TestRepoClean loads the real module and runs the full suite: the
// tree must be bqslint-clean, with every deliberate exception carrying
// a live, justified //bqslint:ignore. This is the same check CI's lint
// job runs via cmd/bqslint; failing here means a new violation (or a
// directive that no longer suppresses anything) landed in-tree.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := analysis.Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.RunAnalyzers(pkgs, analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
