// Package analysis is bqslint's analyzer framework: a deliberately
// small, stdlib-only mirror of the golang.org/x/tools/go/analysis API.
//
// The repo's worst bugs were invariant violations, not logic errors —
// the PR 7 shutdown deadlock was a blocking channel send under
// Engine.mu.RLock, and the PR 8 fault-injection matrices silently lose
// coverage the moment segmentlog code bypasses the vfs.FS seam with a
// raw os call. Those invariants are precise enough to check
// mechanically, so this package checks them at go-vet speed.
//
// Why not golang.org/x/tools/go/analysis itself: the build environment
// must work with zero third-party modules (no network at build time),
// so the framework re-implements the minimal surface — Analyzer, Pass,
// Diagnostic, a package loader, and an analysistest-style fixture
// harness (see atest) — with the same field names and call shapes.
// Migrating an analyzer to the real framework is a mechanical import
// swap; nothing here depends on anything outside the standard library.
//
// Every analyzer supports suppression via an in-source directive:
//
//	//bqslint:ignore <analyzer> <reason>
//
// placed on the offending line or the line directly above it. The
// reason is mandatory, a directive naming an unknown analyzer is an
// error, and a directive that suppresses nothing is itself reported —
// so every deliberate exception stays visible, justified, and alive
// in-tree.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one invariant checker. The fields mirror
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //bqslint:ignore directives.
	Name string
	// Doc is a one-paragraph description: the invariant enforced and
	// the incident or contract that motivates it.
	Doc string
	// Run applies the analyzer to a single type-checked package,
	// reporting findings via pass.Reportf.
	Run func(*Pass) error
}

// A Pass provides one analyzer run over one package: the syntax, the
// type information, and a sink for diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// A Diagnostic is one finding, with its position already resolved so
// callers need no FileSet to print or filter it.
type Diagnostic struct {
	Pos      token.Position
	Message  string
	Analyzer string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// RunAnalyzers applies every analyzer to every package, filters the
// results through the packages' //bqslint:ignore directives, and
// returns the surviving diagnostics sorted by position. Malformed
// directives (missing reason, unknown analyzer) and directives that
// suppressed nothing are appended as diagnostics from the pseudo
// analyzer "bqslint".
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, pkg := range pkgs {
		diags, err := runPackage(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].Pos, all[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return all[i].Message < all[j].Message
	})
	return all, nil
}

func runPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
		}
	}
	return applyDirectives(pkg, analyzers, diags), nil
}
