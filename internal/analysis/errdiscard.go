package analysis

import (
	"go/ast"
	"strings"
)

// ErrDiscard reports discarded error results from durability-critical
// calls: Append, Sync, SyncPersist, Flush, Close, and the
// publish-shaped helpers (writeManifest*, writeBlockIndex*,
// writeShards*, publish*). These are the calls whose errors ARE the
// durability contract — an Append or Sync whose error vanishes turns
// "the data is on disk" into "the data is probably on disk", which is
// the exact bug class the PR 8 fsync-poisoning work exists to surface.
//
// Policy, from strictest to loosest:
//
//   - Sync/SyncPersist/Flush/Append and the publish-shaped helpers:
//     the error must reach a variable or a caller. A bare call
//     statement, a deferred call, a go statement, and an explicit
//     `_ =` discard are all reported — if a durability error is truly
//     ignorable at a site, say why with //bqslint:ignore.
//   - Close: a bare `x.Close()` statement is reported — on a write
//     path the close is when buffered bytes hit the kernel, so its
//     error is a durability error. `defer x.Close()` and `_ =
//     x.Close()` are accepted as the idiomatic cleanup forms for read
//     handles and close-on-error paths: the blank assignment is the
//     visible, greppable marker distinguishing "decided to drop" from
//     "forgot to check".
var ErrDiscard = &Analyzer{
	Name: "errdiscard",
	Doc:  "error results of durability-critical calls (Append/Sync/Flush/Close/publish) must be consumed",
	Run:  runErrDiscard,
}

// criticalNames are matched against the called function or method
// name.
var criticalNames = map[string]bool{
	"Append": true, "Sync": true, "SyncPersist": true, "Flush": true, "Close": true,
}

// publishShaped reports helper names that implement an atomic-publish
// step.
func publishShaped(name string) bool {
	return strings.HasPrefix(name, "publish") ||
		strings.HasPrefix(name, "writeManifest") ||
		strings.HasPrefix(name, "writeBlockIndex") ||
		strings.HasPrefix(name, "writeShards")
}

// criticalCall classifies call; ok only when the callee matches the
// critical set and its final result is an error that the caller could
// have consumed.
func criticalCall(pass *Pass, call *ast.CallExpr) (name string, ok bool) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return "", false
	}
	n := fn.Name()
	if !criticalNames[n] && !publishShaped(n) {
		return "", false
	}
	if !lastResultIsError(fn) {
		return "", false
	}
	return n, true
}

func runErrDiscard(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, isCall := s.X.(*ast.CallExpr); isCall {
					if name, ok := criticalCall(pass, call); ok {
						pass.Reportf(call.Pos(), "error result of %s is dropped; handle it, or discard explicitly with `_ =` (Close) or //bqslint:ignore", name)
					}
				}
			case *ast.DeferStmt:
				if name, ok := criticalCall(pass, s.Call); ok && name != "Close" {
					pass.Reportf(s.Call.Pos(), "deferred %s discards its error; durability errors must reach a caller", name)
				}
			case *ast.GoStmt:
				if name, ok := criticalCall(pass, s.Call); ok {
					pass.Reportf(s.Call.Pos(), "go %s discards its error; durability errors must reach a caller", name)
				}
			case *ast.AssignStmt:
				if len(s.Rhs) != 1 {
					return true
				}
				call, isCall := s.Rhs[0].(*ast.CallExpr)
				if !isCall {
					return true
				}
				name, ok := criticalCall(pass, call)
				if !ok || name == "Close" {
					return true
				}
				// The call's error is the last value on the left.
				if last, isIdent := s.Lhs[len(s.Lhs)-1].(*ast.Ident); isIdent && last.Name == "_" {
					pass.Reportf(call.Pos(), "error result of %s is blanked; a durability error must be handled, not discarded", name)
				}
			}
			return true
		})
	}
	return nil
}
