package analysis

import (
	"go/ast"
	"go/token"
)

// RenameSync enforces the atomic-publish protocol inside the
// segment-log tree: a function that renames a file into place must
// also fsync the directory afterwards (a call to syncDir, in source
// order after the rename) before it returns.
//
// This is the PR 4 publish protocol — write temp, fsync file, rename,
// fsync directory — that makes MANIFEST/SHARDS replacement and
// compaction generation switches atomic across power loss. A rename
// without the trailing directory fsync survives every test on an
// ordered filesystem and loses the file on a reordering one; the
// ALICE crash-consistency study found exactly this bug in most
// software it examined. The pairing is required within one function
// because that is the repo's publish idiom (writeManifest,
// writeShardsFile); a helper that legitimately splits the protocol
// must carry a //bqslint:ignore with its reasoning.
var RenameSync = &Analyzer{
	Name: "renamesync",
	Doc:  "a Rename publishing a file must be followed by a directory fsync (syncDir) in the same function",
	Run:  runRenameSync,
}

// dirSyncNames are the directory-fsync helpers that complete the
// publish protocol.
var dirSyncNames = map[string]bool{
	"syncDir": true, "SyncDir": true, "fsyncDir": true,
}

func runRenameSync(pass *Pass) error {
	if !inSegmentlogSeam(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkRenamePairing(pass, fd.Body)
		}
	}
	return nil
}

// checkRenamePairing scans one function body in source order and
// reports every Rename call with no later directory-fsync call.
// Function literals are separate protocol scopes and are checked
// independently.
func checkRenamePairing(pass *Pass, body *ast.BlockStmt) {
	var renames []token.Pos
	var lastSync token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			checkRenamePairing(pass, x.Body)
			return false
		case *ast.CallExpr:
			fn := calleeFunc(pass.TypesInfo, x)
			if fn == nil {
				return true
			}
			switch {
			case fn.Name() == "Rename" && len(x.Args) == 2:
				renames = append(renames, x.Pos())
			case dirSyncNames[fn.Name()]:
				if x.Pos() > lastSync {
					lastSync = x.Pos()
				}
			}
		}
		return true
	})
	for _, pos := range renames {
		if pos > lastSync {
			pass.Reportf(pos, "Rename is not followed by a directory fsync (syncDir) in this function; the publish protocol is write+fsync, rename, dir fsync")
		}
	}
}
