// Package benchjson turns `go test -bench` output into the repository's
// machine-readable benchmark record (the committed BENCH_<pr>.json files
// and the CI benchmark artifact). The schema is deliberately small:
//
//	{
//	  "schema": "bqs-bench/1",
//	  "date": "2026-07-26",
//	  "go_version": "go1.22.0",
//	  "goos": "linux", "goarch": "amd64", "cpus": 1,
//	  "note": "free-form environment note",
//	  "benchmarks": [
//	    {
//	      "name": "EngineIngest1kDevices",
//	      "iterations": 8524,
//	      "ns_per_op": 557465,
//	      "mb_per_sec": 43.05,
//	      "bytes_per_op": 152205,
//	      "allocs_per_op": 0,
//	      "fixes_per_sec": 1793750,
//	      "ns_per_fix": 557.5
//	    }, ...
//	  ]
//	}
//
// fixes_per_sec and ns_per_fix are derived for benchmarks that declare
// their throughput via SetBytes with the repository's 24-byte fix payload
// (three float64s per point); they are omitted otherwise. With -count > 1
// the per-name median run (by ns/op) is reported, which is robust against
// the scheduling noise of CI-class containers.
package benchjson

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Schema identifies the report format version.
const Schema = "bqs-bench/1"

// FixBytes is the wire size of one fix (three float64s), the SetBytes
// unit the repository's throughput benchmarks use.
const FixBytes = 24

// Result is one parsed benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	FixesPerSec float64 `json:"fixes_per_sec,omitempty"`
	NsPerFix    float64 `json:"ns_per_fix,omitempty"`
}

// Report is the top-level BENCH_*.json document.
type Report struct {
	Schema     string   `json:"schema"`
	Date       string   `json:"date"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	CPUs       int      `json:"cpus"`
	Note       string   `json:"note,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// benchName matches the leading "BenchmarkXxx[-P]  N" of a result line.
var benchName = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?$`)

// Parse extracts every benchmark result line from r, in order, e.g.
//
//	BenchmarkCorePushFast-8   8966739   131.1 ns/op   183.10 MB/s   0 B/op   0 allocs/op
//
// After the name and iteration count, measurements come as
// (value, unit) pairs in any order — which is how `go test` renders
// them, including custom b.ReportMetric units ("decode-frac", ...)
// that may sit between ns/op and the -benchmem columns. Unknown units
// are skipped; MB/s, B/op and allocs/op are optional. Repeated names
// (from -count > 1) yield repeated entries; see Median.
func Parse(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 {
			continue
		}
		m := benchName.FindStringSubmatch(fields[0])
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // not a result line (e.g. a name echoed mid-output)
		}
		res := Result{Name: strings.TrimPrefix(m[1], "Benchmark"), Iterations: iters}
		sawNs := false
		for i := 2; i+1 < len(fields); i += 2 {
			value, unit := fields[i], fields[i+1]
			switch unit {
			case "ns/op":
				if res.NsPerOp, err = strconv.ParseFloat(value, 64); err != nil {
					return nil, fmt.Errorf("benchjson: %q: %w", sc.Text(), err)
				}
				sawNs = true
			case "MB/s":
				if res.MBPerSec, err = strconv.ParseFloat(value, 64); err != nil {
					return nil, fmt.Errorf("benchjson: %q: %w", sc.Text(), err)
				}
			case "B/op":
				if res.BytesPerOp, err = strconv.ParseInt(value, 10, 64); err != nil {
					return nil, fmt.Errorf("benchjson: %q: %w", sc.Text(), err)
				}
			case "allocs/op":
				if res.AllocsPerOp, err = strconv.ParseInt(value, 10, 64); err != nil {
					return nil, fmt.Errorf("benchjson: %q: %w", sc.Text(), err)
				}
			default:
				// Custom b.ReportMetric units are recorded elsewhere
				// (benchmark source / BENCHMARKS.md); skip them here.
			}
		}
		if !sawNs {
			continue
		}
		res.derive()
		out = append(out, res)
	}
	return out, sc.Err()
}

// derive fills the fix-denominated throughput fields for benchmarks that
// report MB/s over the 24-byte fix payload.
func (r *Result) derive() {
	if r.MBPerSec <= 0 {
		return
	}
	r.FixesPerSec = r.MBPerSec * 1e6 / FixBytes
	r.NsPerFix = 1e9 / r.FixesPerSec
}

// Median collapses repeated measurements (from -count > 1) to one entry
// per benchmark name — the run with the median ns/op — preserving the
// first-seen name order.
func Median(runs []Result) []Result {
	byName := make(map[string][]Result)
	var order []string
	for _, r := range runs {
		if _, seen := byName[r.Name]; !seen {
			order = append(order, r.Name)
		}
		byName[r.Name] = append(byName[r.Name], r)
	}
	out := make([]Result, 0, len(order))
	for _, name := range order {
		group := byName[name]
		sort.Slice(group, func(i, j int) bool { return group[i].NsPerOp < group[j].NsPerOp })
		out = append(out, group[(len(group)-1)/2])
	}
	return out
}
