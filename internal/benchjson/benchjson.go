// Package benchjson turns `go test -bench` output into the repository's
// machine-readable benchmark record (the committed BENCH_<pr>.json files
// and the CI benchmark artifact). The schema is deliberately small:
//
//	{
//	  "schema": "bqs-bench/1",
//	  "date": "2026-07-26",
//	  "go_version": "go1.22.0",
//	  "goos": "linux", "goarch": "amd64", "cpus": 1,
//	  "note": "free-form environment note",
//	  "benchmarks": [
//	    {
//	      "name": "EngineIngest1kDevices",
//	      "cpus": 4,
//	      "iterations": 8524,
//	      "ns_per_op": 557465,
//	      "mb_per_sec": 43.05,
//	      "bytes_per_op": 152205,
//	      "allocs_per_op": 0,
//	      "fixes_per_sec": 1793750,
//	      "ns_per_fix": 557.5
//	    }, ...
//	  ]
//	}
//
// Each entry's cpus is the GOMAXPROCS the measurement ran under (parsed
// from the -N suffix `go test -cpu` appends to benchmark names; absent
// suffix means 1), so one report can hold a scaling matrix — one entry
// per (benchmark, cpus) pair. The top-level cpus remains the machine's
// CPU count. fixes_per_sec and ns_per_fix are derived for benchmarks
// that declare their throughput via SetBytes with the repository's
// 24-byte fix payload (three float64s per point); they are omitted
// otherwise. With -count > 1 the per-(name, cpus) median run (by ns/op)
// is reported, which is robust against the scheduling noise of CI-class
// containers.
package benchjson

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Schema identifies the report format version.
const Schema = "bqs-bench/1"

// FixBytes is the wire size of one fix (three float64s), the SetBytes
// unit the repository's throughput benchmarks use.
const FixBytes = 24

// Result is one parsed benchmark measurement. Cpus is the GOMAXPROCS
// the run used; 0 in a decoded document means the file predates the
// field (see Validate).
type Result struct {
	Name        string  `json:"name"`
	Cpus        int     `json:"cpus,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	FixesPerSec float64 `json:"fixes_per_sec,omitempty"`
	NsPerFix    float64 `json:"ns_per_fix,omitempty"`
}

// Report is the top-level BENCH_*.json document.
type Report struct {
	Schema     string   `json:"schema"`
	Date       string   `json:"date"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	CPUs       int      `json:"cpus"`
	Note       string   `json:"note,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// benchName matches the leading "BenchmarkXxx[-P]" of a result line,
// capturing the -P GOMAXPROCS suffix go test appends when it is not 1.
var benchName = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?$`)

// Parse extracts every benchmark result line from r, in order, e.g.
//
//	BenchmarkCorePushFast-8   8966739   131.1 ns/op   183.10 MB/s   0 B/op   0 allocs/op
//
// After the name and iteration count, measurements come as
// (value, unit) pairs in any order — which is how `go test` renders
// them, including custom b.ReportMetric units ("decode-frac", ...)
// that may sit between ns/op and the -benchmem columns. Unknown units
// are skipped; MB/s, B/op and allocs/op are optional. Repeated names
// (from -count > 1) yield repeated entries; see Median.
func Parse(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 {
			continue
		}
		m := benchName.FindStringSubmatch(fields[0])
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // not a result line (e.g. a name echoed mid-output)
		}
		res := Result{Name: strings.TrimPrefix(m[1], "Benchmark"), Cpus: 1, Iterations: iters}
		if m[2] != "" {
			if res.Cpus, err = strconv.Atoi(m[2]); err != nil || res.Cpus < 1 {
				continue
			}
		}
		sawNs := false
		for i := 2; i+1 < len(fields); i += 2 {
			value, unit := fields[i], fields[i+1]
			switch unit {
			case "ns/op":
				if res.NsPerOp, err = strconv.ParseFloat(value, 64); err != nil {
					return nil, fmt.Errorf("benchjson: %q: %w", sc.Text(), err)
				}
				sawNs = true
			case "MB/s":
				if res.MBPerSec, err = strconv.ParseFloat(value, 64); err != nil {
					return nil, fmt.Errorf("benchjson: %q: %w", sc.Text(), err)
				}
			case "B/op":
				if res.BytesPerOp, err = strconv.ParseInt(value, 10, 64); err != nil {
					return nil, fmt.Errorf("benchjson: %q: %w", sc.Text(), err)
				}
			case "allocs/op":
				if res.AllocsPerOp, err = strconv.ParseInt(value, 10, 64); err != nil {
					return nil, fmt.Errorf("benchjson: %q: %w", sc.Text(), err)
				}
			default:
				// Custom b.ReportMetric units are recorded elsewhere
				// (benchmark source / BENCHMARKS.md); skip them here.
			}
		}
		if !sawNs {
			continue
		}
		res.derive()
		out = append(out, res)
	}
	return out, sc.Err()
}

// derive fills the fix-denominated throughput fields for benchmarks that
// report MB/s over the 24-byte fix payload.
func (r *Result) derive() {
	if r.MBPerSec <= 0 {
		return
	}
	r.FixesPerSec = r.MBPerSec * 1e6 / FixBytes
	r.NsPerFix = 1e9 / r.FixesPerSec
}

// Median collapses repeated measurements (from -count > 1) to one entry
// per (benchmark name, cpus) pair — the run with the median ns/op —
// preserving the first-seen order of pairs, so a `-cpu 1,2,4,8` matrix
// survives as one entry per cpu count.
func Median(runs []Result) []Result {
	type key struct {
		name string
		cpus int
	}
	byKey := make(map[key][]Result)
	var order []key
	for _, r := range runs {
		k := key{r.Name, r.Cpus}
		if _, seen := byKey[k]; !seen {
			order = append(order, k)
		}
		byKey[k] = append(byKey[k], r)
	}
	out := make([]Result, 0, len(order))
	for _, k := range order {
		group := byKey[k]
		sort.Slice(group, func(i, j int) bool { return group[i].NsPerOp < group[j].NsPerOp })
		out = append(out, group[(len(group)-1)/2])
	}
	return out
}

// TrajectoryPoint is one report's measurement of a benchmark within a
// TrajectorySeries.
type TrajectoryPoint struct {
	Label       string // the report's label (e.g. "BENCH_3.json")
	Date        string // the report's date
	NsPerOp     float64
	FixesPerSec float64 // 0 when the benchmark doesn't report throughput
}

// TrajectorySeries is one benchmark's performance across reports: the
// cross-PR line the committed BENCH_*.json files exist to draw.
type TrajectorySeries struct {
	Name   string
	Cpus   int
	Points []TrajectoryPoint
}

// Trajectory joins a sequence of reports (oldest first, one label per
// report) into per-(benchmark, cpus) series. Entries whose cpus field
// is absent (0 — files predating the scaling-matrix schema change) are
// normalized to cpus=1: those reports were single-GOMAXPROCS runs, and
// without the normalization the join silently drops every legacy/tagged
// pair and the trajectory comes out empty. Series order follows first
// appearance; a benchmark missing from a report simply has no point for
// that label.
func Trajectory(labels []string, reports []Report) []TrajectorySeries {
	type key struct {
		name string
		cpus int
	}
	index := make(map[key]int)
	var out []TrajectorySeries
	for i, rep := range reports {
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		for _, b := range rep.Benchmarks {
			cpus := b.Cpus
			if cpus == 0 {
				cpus = 1
			}
			k := key{b.Name, cpus}
			idx, ok := index[k]
			if !ok {
				idx = len(out)
				index[k] = idx
				out = append(out, TrajectorySeries{Name: b.Name, Cpus: cpus})
			}
			out[idx].Points = append(out[idx].Points, TrajectoryPoint{
				Label:       label,
				Date:        rep.Date,
				NsPerOp:     b.NsPerOp,
				FixesPerSec: b.FixesPerSec,
			})
		}
	}
	return out
}

// Validate rejects a report whose benchmark entries cannot be
// interpreted unambiguously as a cpu matrix: if any entry omits the
// cpus field (0 — a pre-matrix file) while the named benchmark appears
// more than once, the duplicates cannot be told apart. Single-cpu
// legacy files (every name unique, cpus absent) remain valid.
func Validate(rep Report) error {
	if rep.Schema != Schema {
		return fmt.Errorf("benchjson: unknown schema %q (want %q)", rep.Schema, Schema)
	}
	seen := make(map[string]int)
	missing := false
	for _, b := range rep.Benchmarks {
		seen[b.Name]++
		if b.Cpus == 0 {
			missing = true
		}
	}
	if missing {
		for name, n := range seen {
			if n > 1 {
				return fmt.Errorf("benchjson: %q appears %d times but entries lack the cpus field; mixed-cpus reports require it", name, n)
			}
		}
	}
	return nil
}
