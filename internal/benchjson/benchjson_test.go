package benchjson

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: github.com/trajcomp/bqs
cpu: Intel(R) Xeon(R) CPU @ 2.10GHz
BenchmarkCorePushFast   	 8966739	       131.1 ns/op	 183.10 MB/s	       0 B/op	       0 allocs/op
BenchmarkCorePushFast   	 9066739	       135.0 ns/op	 177.80 MB/s	       0 B/op	       0 allocs/op
BenchmarkCorePushFast   	 8866739	       128.9 ns/op	 186.20 MB/s	       0 B/op	       0 allocs/op
BenchmarkQuadrantBounds-8 	26194077	        40.02 ns/op	       0 B/op	       0 allocs/op
BenchmarkEngineIngest1kDevices 	    8524	    557465 ns/op	  43.05 MB/s	  152205 B/op	       0 allocs/op
BenchmarkQueryWindowSelective 	   12236	     46614 ns/op	         0.04000 decode-frac	        40.00 matched/op	   31040 B/op	     138 allocs/op
PASS
ok  	github.com/trajcomp/bqs	18.369s
`

func TestParse(t *testing.T) {
	runs, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 6 {
		t.Fatalf("parsed %d runs, want 6", len(runs))
	}
	first := runs[0]
	if first.Name != "CorePushFast" || first.Iterations != 8966739 || first.NsPerOp != 131.1 {
		t.Errorf("first run = %+v", first)
	}
	if first.MBPerSec != 183.10 {
		t.Errorf("MBPerSec = %v", first.MBPerSec)
	}
	// -8 GOMAXPROCS suffix is stripped; missing MB/s leaves the derived
	// fields unset.
	qb := runs[3]
	if qb.Name != "QuadrantBounds" || qb.MBPerSec != 0 || qb.FixesPerSec != 0 || qb.NsPerFix != 0 {
		t.Errorf("quadrant run = %+v", qb)
	}
	if qb.NsPerOp != 40.02 {
		t.Errorf("NsPerOp = %v", qb.NsPerOp)
	}
	eng := runs[4]
	if eng.BytesPerOp != 152205 || eng.AllocsPerOp != 0 {
		t.Errorf("engine run = %+v", eng)
	}
	// 43.05 MB/s over 24-byte fixes.
	wantFixes := 43.05 * 1e6 / 24
	if math.Abs(eng.FixesPerSec-wantFixes) > 1e-6 {
		t.Errorf("FixesPerSec = %v, want %v", eng.FixesPerSec, wantFixes)
	}
	if math.Abs(eng.NsPerFix-1e9/wantFixes) > 1e-9 {
		t.Errorf("NsPerFix = %v", eng.NsPerFix)
	}
	// Custom b.ReportMetric columns between ns/op and the -benchmem
	// pair are skipped without losing B/op and allocs/op.
	qw := runs[5]
	if qw.Name != "QueryWindowSelective" || qw.NsPerOp != 46614 || qw.BytesPerOp != 31040 || qw.AllocsPerOp != 138 {
		t.Errorf("custom-metric run = %+v", qw)
	}
}

func TestMedian(t *testing.T) {
	runs, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	med := Median(runs)
	if len(med) != 4 {
		t.Fatalf("median groups = %d, want 4", len(med))
	}
	// First-seen order is preserved.
	if med[0].Name != "CorePushFast" || med[1].Name != "QuadrantBounds" || med[2].Name != "EngineIngest1kDevices" {
		t.Errorf("order = %v %v %v", med[0].Name, med[1].Name, med[2].Name)
	}
	// Median of 131.1, 135.0, 128.9 is 131.1.
	if med[0].NsPerOp != 131.1 {
		t.Errorf("median ns/op = %v, want 131.1", med[0].NsPerOp)
	}
	// Singleton groups pass through.
	if med[2].NsPerOp != 557465 {
		t.Errorf("singleton = %v", med[2].NsPerOp)
	}
}

func TestReportJSONSchema(t *testing.T) {
	runs, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	rep := Report{
		Schema: Schema, Date: "2026-07-26", GoVersion: "go1.22.0",
		GOOS: "linux", GOARCH: "amd64", CPUs: 1,
		Benchmarks: Median(runs),
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"schema":"bqs-bench/1"`, `"ns_per_op"`, `"allocs_per_op"`, `"fixes_per_sec"`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("marshalled report missing %s: %s", key, data)
		}
	}
	// Round-trip.
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Benchmarks) != 4 || back.Schema != Schema {
		t.Errorf("round-trip = %+v", back)
	}
}

// cpuMatrix mimics a `go test -cpu 1,2,4` run: the same benchmark at
// three GOMAXPROCS values (suffix absent at 1), twice each.
const cpuMatrix = `BenchmarkEngineIngest 	 100	  1000 ns/op	  24.00 MB/s
BenchmarkEngineIngest-2 	 100	   600 ns/op	  40.00 MB/s
BenchmarkEngineIngest-4 	 100	   400 ns/op	  60.00 MB/s
BenchmarkEngineIngest 	 100	  1100 ns/op	  22.00 MB/s
BenchmarkEngineIngest-2 	 100	   620 ns/op	  39.00 MB/s
BenchmarkEngineIngest-4 	 100	   380 ns/op	  62.00 MB/s
PASS
`

func TestParseCpusMatrix(t *testing.T) {
	runs, err := Parse(strings.NewReader(cpuMatrix))
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 6 {
		t.Fatalf("parsed %d runs, want 6", len(runs))
	}
	wantCpus := []int{1, 2, 4, 1, 2, 4}
	for i, r := range runs {
		if r.Name != "EngineIngest" || r.Cpus != wantCpus[i] {
			t.Errorf("run %d = %q cpus %d, want EngineIngest cpus %d", i, r.Name, r.Cpus, wantCpus[i])
		}
	}

	// Median groups by (name, cpus): one entry per cpu count, in
	// first-seen order — the scaling matrix survives collapsing.
	med := Median(runs)
	if len(med) != 3 {
		t.Fatalf("median groups = %d, want 3", len(med))
	}
	for i, want := range []struct {
		cpus int
		ns   float64
	}{{1, 1000}, {2, 600}, {4, 380}} {
		if med[i].Cpus != want.cpus || med[i].NsPerOp != want.ns {
			t.Errorf("median[%d] = cpus %d, %v ns/op; want cpus %d, %v",
				i, med[i].Cpus, med[i].NsPerOp, want.cpus, want.ns)
		}
	}
}

func TestValidate(t *testing.T) {
	base := Report{Schema: Schema}
	if err := Validate(base); err != nil {
		t.Errorf("empty report: %v", err)
	}
	if err := Validate(Report{Schema: "nonsense/9"}); err == nil {
		t.Error("unknown schema accepted")
	}
	// A matrix with the cpus field everywhere is fine.
	base.Benchmarks = []Result{
		{Name: "X", Cpus: 1}, {Name: "X", Cpus: 4}, {Name: "Y", Cpus: 1},
	}
	if err := Validate(base); err != nil {
		t.Errorf("tagged matrix: %v", err)
	}
	// A legacy single-cpu file (no cpus field, unique names) is fine.
	base.Benchmarks = []Result{{Name: "X"}, {Name: "Y"}}
	if err := Validate(base); err != nil {
		t.Errorf("legacy file: %v", err)
	}
	// Duplicate names without the cpus field are ambiguous: rejected.
	base.Benchmarks = []Result{{Name: "X"}, {Name: "X", Cpus: 4}}
	if err := Validate(base); err == nil {
		t.Error("ambiguous mixed-cpus report accepted")
	}
}

func TestParseGarbage(t *testing.T) {
	runs, err := Parse(strings.NewReader("no benchmarks here\njust noise\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 0 {
		t.Errorf("parsed %d runs from garbage", len(runs))
	}
}

func TestTrajectoryJoinsLegacyAndTagged(t *testing.T) {
	// A legacy report (cpus field absent, decoded as 0) and a tagged
	// matrix report (cpus:1 explicit) must join into one series per
	// shared benchmark — the exact pair the committed BENCH_3/5 vs
	// BENCH_6 files form.
	legacy := Report{
		Schema: Schema, Date: "2026-07-01",
		Benchmarks: []Result{
			{Name: "CorePushFast", NsPerOp: 133, FixesPerSec: 7.6e6},
			{Name: "OnlyInLegacy", NsPerOp: 50},
		},
	}
	tagged := Report{
		Schema: Schema, Date: "2026-07-20",
		Benchmarks: []Result{
			{Name: "CorePushFast", Cpus: 1, NsPerOp: 118, FixesPerSec: 8.5e6},
			{Name: "CorePushFast", Cpus: 4, NsPerOp: 40},
		},
	}
	series := Trajectory([]string{"a.json", "b.json"}, []Report{legacy, tagged})
	if len(series) != 3 {
		t.Fatalf("got %d series, want 3: %+v", len(series), series)
	}
	// First appearance order: CorePushFast cpu=1 (from the legacy file,
	// normalized 0→1), OnlyInLegacy, then the cpu=4 entry.
	s := series[0]
	if s.Name != "CorePushFast" || s.Cpus != 1 {
		t.Fatalf("series[0] = %s cpu=%d", s.Name, s.Cpus)
	}
	if len(s.Points) != 2 {
		t.Fatalf("joined series has %d points, want 2: %+v", len(s.Points), s.Points)
	}
	if s.Points[0].Label != "a.json" || s.Points[0].NsPerOp != 133 ||
		s.Points[1].Label != "b.json" || s.Points[1].NsPerOp != 118 {
		t.Errorf("joined points = %+v", s.Points)
	}
	if s.Points[1].Date != "2026-07-20" {
		t.Errorf("point date = %q", s.Points[1].Date)
	}
	if series[1].Name != "OnlyInLegacy" || len(series[1].Points) != 1 {
		t.Errorf("series[1] = %+v", series[1])
	}
	if series[2].Cpus != 4 || len(series[2].Points) != 1 {
		t.Errorf("series[2] = %+v", series[2])
	}
}

func TestTrajectoryDisjointReports(t *testing.T) {
	// Reports sharing no (name, cpus) pair produce only single-point
	// series — the condition `benchjson -check` fails on.
	a := Report{Schema: Schema, Benchmarks: []Result{{Name: "Old", NsPerOp: 1}}}
	b := Report{Schema: Schema, Benchmarks: []Result{{Name: "New", Cpus: 1, NsPerOp: 2}}}
	for _, s := range Trajectory([]string{"a", "b"}, []Report{a, b}) {
		if len(s.Points) > 1 {
			t.Errorf("disjoint reports produced a joined series: %+v", s)
		}
	}
}
