package interp

import (
	"math"
	"math/rand"
	"testing"

	"github.com/trajcomp/bqs/internal/core"
)

func TestUniformProgress(t *testing.T) {
	u := Uniform{}
	for _, c := range []struct{ in, want float64 }{
		{0, 0}, {0.25, 0.25}, {1, 1}, {-0.5, 0}, {1.5, 1},
	} {
		if got := u.Progress(c.in); got != c.want {
			t.Errorf("Progress(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestGaussianProgressMonotoneAndNormalized(t *testing.T) {
	g := Gaussian{Mu: 0.5, Sigma: 0.2}
	if got := g.Progress(0); math.Abs(got) > 1e-9 {
		t.Errorf("Progress(0) = %v", got)
	}
	if got := g.Progress(1); math.Abs(got-1) > 1e-9 {
		t.Errorf("Progress(1) = %v", got)
	}
	prev := -1.0
	for u := 0.0; u <= 1.0; u += 0.01 {
		p := g.Progress(u)
		if p < prev-1e-12 {
			t.Fatalf("not monotone at %v", u)
		}
		prev = p
	}
	// Mass concentrates near Mu: progress moves fastest there.
	dMid := g.Progress(0.55) - g.Progress(0.45)
	dEdge := g.Progress(0.1) - g.Progress(0.0)
	if dMid <= dEdge {
		t.Errorf("Gaussian progress not concentrated: mid %v edge %v", dMid, dEdge)
	}
}

func TestGaussianDegenerateSigma(t *testing.T) {
	g := Gaussian{Mu: 0.5, Sigma: 0}
	if g.Progress(0.4) != 0 || g.Progress(0.6) != 1 {
		t.Error("zero-sigma Gaussian should be a step at Mu")
	}
}

func TestOnlineGaussianMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var o OnlineGaussian
	var xs []float64
	for i := 0; i < 10000; i++ {
		u := 0.5 + rng.NormFloat64()*0.15
		o.Add(u)
		xs = append(xs, clamp01(u))
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	var v float64
	for _, x := range xs {
		v += (x - mean) * (x - mean)
	}
	v /= float64(len(xs))
	if math.Abs(o.Mean()-mean) > 1e-9 {
		t.Errorf("online mean %v vs batch %v", o.Mean(), mean)
	}
	if math.Abs(o.Variance()-v) > 1e-9 {
		t.Errorf("online variance %v vs batch %v", o.Variance(), v)
	}
	if _, ok := o.Fit().(Gaussian); !ok {
		t.Error("Fit with many samples should be Gaussian")
	}
	var empty OnlineGaussian
	if _, ok := empty.Fit().(Uniform); !ok {
		t.Error("Fit with no samples should fall back to Uniform")
	}
}

func keysLine() []core.Point {
	return []core.Point{
		{X: 0, Y: 0, T: 0},
		{X: 100, Y: 0, T: 100},
		{X: 100, Y: 50, T: 200},
	}
}

func TestAtUniform(t *testing.T) {
	keys := keysLine()
	p, err := At(keys, 50, Uniform{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.X-50) > 1e-9 || math.Abs(p.Y) > 1e-9 {
		t.Errorf("At(50) = %v", p)
	}
	p, err = At(keys, 150, nil) // nil distribution defaults to uniform
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.X-100) > 1e-9 || math.Abs(p.Y-25) > 1e-9 {
		t.Errorf("At(150) = %v", p)
	}
	// Exactly on a key point.
	p, err = At(keys, 100, Uniform{})
	if err != nil || p.X != 100 || p.Y != 0 {
		t.Errorf("At(100) = %v, %v", p, err)
	}
}

func TestAtErrors(t *testing.T) {
	keys := keysLine()
	if _, err := At(keys, -1, Uniform{}); err != ErrOutOfRange {
		t.Errorf("before span: %v", err)
	}
	if _, err := At(keys, 201, Uniform{}); err != ErrOutOfRange {
		t.Errorf("after span: %v", err)
	}
	if _, err := At(nil, 0, Uniform{}); err != ErrTooFewPoints {
		t.Errorf("empty keys: %v", err)
	}
	// Single point: only its own timestamp is reconstructable.
	one := []core.Point{{X: 5, Y: 5, T: 10}}
	p, err := At(one, 10, Uniform{})
	if err != nil || p.X != 5 {
		t.Errorf("single point: %v %v", p, err)
	}
}

func TestAtDuplicateTimestamps(t *testing.T) {
	keys := []core.Point{{X: 0, Y: 0, T: 0}, {X: 10, Y: 0, T: 0}, {X: 20, Y: 0, T: 10}}
	p, err := At(keys, 5, Uniform{})
	if err != nil {
		t.Fatal(err)
	}
	if p.X < 10 || p.X > 20 {
		t.Errorf("At over zero-span segment = %v", p)
	}
}

func TestSeries(t *testing.T) {
	keys := keysLine()
	got := Series(keys, []float64{-5, 0, 50, 100, 250}, Uniform{})
	if len(got) != 3 {
		t.Fatalf("Series kept %d points, want 3", len(got))
	}
}

func TestSpatialErrorBoundedOnCompressedWalk(t *testing.T) {
	// Compress a trace and verify the reconstruction error at original
	// timestamps stays finite and small relative to the trajectory scale.
	rng := rand.New(rand.NewSource(7))
	var pts []core.Point
	x := 0.0
	for i := 0; i < 500; i++ {
		x += 10 + rng.Float64()*5
		pts = append(pts, core.Point{X: x, Y: rng.NormFloat64() * 2, T: float64(i)})
	}
	c, err := core.NewCompressor(core.Config{Tolerance: 8})
	if err != nil {
		t.Fatal(err)
	}
	keys := c.CompressBatch(pts)
	maxE, meanE := SpatialError(pts, keys, Uniform{})
	if maxE <= 0 || meanE <= 0 {
		t.Errorf("degenerate errors: max %v mean %v", maxE, meanE)
	}
	if meanE > maxE {
		t.Error("mean exceeds max")
	}
	// Near-constant speed: uniform reconstruction should stay within a few
	// multiples of the spatial tolerance.
	if maxE > 60 {
		t.Errorf("reconstruction error %v implausibly large", maxE)
	}
	if mE, _ := SpatialError(nil, keys, nil); mE != 0 {
		t.Error("empty originals should yield 0")
	}
}
