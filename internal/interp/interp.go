// Package interp reconstructs positions from a compressed trajectory. A
// compressed segment keeps only its two key points and their timestamps;
// the location at an intermediate time t is interpolated with a
// distribution function P (Equations 1-3 of the paper):
//
//	v_t = < h(P, vs, ve, t).lat, h(P, vs, ve, t).lon, t >
//
// where P maps elapsed time to progress along the segment. The paper's
// default P reconstructs the uniform distribution; it also suggests
// deriving P online "to fit the distribution of the actual data", e.g. a
// Gaussian fitted with the semi-numerical updates of Knuth TAOCP vol. 2 —
// both are provided here.
package interp

import (
	"errors"
	"math"
	"sort"

	"github.com/trajcomp/bqs/internal/core"
	"github.com/trajcomp/bqs/internal/geom"
)

// P maps normalized elapsed time u ∈ [0, 1] within a segment to normalized
// progress ∈ [0, 1] along the segment's straight path. It must be
// monotonically non-decreasing with P(0) = 0 and P(1) = 1.
type P interface {
	Progress(u float64) float64
}

// Uniform is the paper's default distribution: progress equals elapsed
// time (Equation 2).
type Uniform struct{}

// Progress implements P.
func (Uniform) Progress(u float64) float64 { return clamp01(u) }

// Gaussian reconstructs a truncated-Gaussian progress profile: movement
// mass concentrates around Mu (normalized time) with width Sigma. It
// models segments where the object accelerates mid-segment (e.g. a bat
// leaving its roost).
type Gaussian struct {
	Mu    float64
	Sigma float64
}

// Progress implements P: the CDF of N(Mu, Sigma²) truncated to [0, 1].
func (g Gaussian) Progress(u float64) float64 {
	u = clamp01(u)
	if g.Sigma <= 0 {
		if u < g.Mu {
			return 0
		}
		return 1
	}
	cdf := func(x float64) float64 {
		return 0.5 * (1 + math.Erf((x-g.Mu)/(g.Sigma*math.Sqrt2)))
	}
	lo, hi := cdf(0), cdf(1)
	if hi-lo < 1e-12 {
		return u
	}
	return (cdf(u) - lo) / (hi - lo)
}

// OnlineGaussian fits a Gaussian to observed progress samples with the
// numerically stable streaming mean/variance recurrence (Welford's method,
// from the semi-numerical algorithms the paper cites). Feed it the
// normalized times at which movement was observed within past segments,
// then use Fit to obtain a P for reconstruction.
type OnlineGaussian struct {
	n    int
	mean float64
	m2   float64
}

// Add consumes one normalized-time observation u ∈ [0, 1].
func (o *OnlineGaussian) Add(u float64) {
	u = clamp01(u)
	o.n++
	d := u - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (u - o.mean)
}

// N returns the number of observations.
func (o *OnlineGaussian) N() int { return o.n }

// Mean returns the fitted mean.
func (o *OnlineGaussian) Mean() float64 { return o.mean }

// Variance returns the fitted (population) variance.
func (o *OnlineGaussian) Variance() float64 {
	if o.n == 0 {
		return 0
	}
	return o.m2 / float64(o.n)
}

// Fit returns the fitted Gaussian distribution; with fewer than two
// observations it falls back to Uniform.
func (o *OnlineGaussian) Fit() P {
	if o.n < 2 {
		return Uniform{}
	}
	return Gaussian{Mu: o.mean, Sigma: math.Sqrt(o.Variance())}
}

// ErrOutOfRange reports a reconstruction query outside the compressed
// trajectory's time span.
var ErrOutOfRange = errors.New("interp: timestamp outside the trajectory's time span")

// ErrTooFewPoints reports a trajectory with fewer than one point.
var ErrTooFewPoints = errors.New("interp: need at least one key point")

// At reconstructs the position at time t from the compressed trajectory
// keys (ordered by time) under distribution p (Equation 1).
func At(keys []core.Point, t float64, p P) (core.Point, error) {
	if len(keys) == 0 {
		return core.Point{}, ErrTooFewPoints
	}
	if p == nil {
		p = Uniform{}
	}
	if t < keys[0].T || t > keys[len(keys)-1].T {
		return core.Point{}, ErrOutOfRange
	}
	// Binary search for the segment containing t.
	i := sort.Search(len(keys), func(i int) bool { return keys[i].T >= t })
	if i < len(keys) && keys[i].T == t {
		return keys[i], nil
	}
	s, e := keys[i-1], keys[i]
	span := e.T - s.T
	if span <= 0 {
		return s, nil
	}
	u := p.Progress((t - s.T) / span)
	pos := geom.Lerp(s.Vec(), e.Vec(), u)
	return core.Point{X: pos.X, Y: pos.Y, T: t}, nil
}

// Series reconstructs positions at the timestamps of ts; timestamps
// outside the trajectory span are skipped.
func Series(keys []core.Point, ts []float64, p P) []core.Point {
	out := make([]core.Point, 0, len(ts))
	for _, t := range ts {
		if pt, err := At(keys, t, p); err == nil {
			out = append(out, pt)
		}
	}
	return out
}

// SpatialError returns the maximum and mean distance between each original
// point and its reconstruction at the same timestamp. Under the uniform P
// and the paper's spatial deviation metric this is bounded by the
// along-track freedom plus the tolerance; it is the end-to-end quality
// metric applications experience.
func SpatialError(orig, keys []core.Point, p P) (maxErr, meanErr float64) {
	if len(orig) == 0 {
		return 0, 0
	}
	var sum float64
	n := 0
	for _, o := range orig {
		r, err := At(keys, o.T, p)
		if err != nil {
			continue
		}
		d := r.Vec().Dist(o.Vec())
		sum += d
		n++
		if d > maxErr {
			maxErr = d
		}
	}
	if n > 0 {
		meanErr = sum / float64(n)
	}
	return maxErr, meanErr
}

func clamp01(u float64) float64 {
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}
