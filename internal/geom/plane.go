package geom

import "math"

// Plane is the set of points p with N·p = D, oriented by its normal N.
// The half-space "below" the plane is N·p ≤ D.
type Plane struct {
	N Vec3
	D float64
}

// PlaneFromPoints builds the plane through three points, oriented by the
// right-hand rule a→b→c. ok is false when the points are (nearly) collinear.
func PlaneFromPoints(a, b, c Vec3) (Plane, bool) {
	n := b.Sub(a).Cross(c.Sub(a))
	if n.Norm() < Eps {
		return Plane{}, false
	}
	n = n.Unit()
	return Plane{N: n, D: n.Dot(a)}, true
}

// Eval returns the signed distance of p from the plane (positive on the
// normal side) assuming a unit normal.
func (pl Plane) Eval(p Vec3) float64 { return pl.N.Dot(p) - pl.D }

// InclinationToXY returns the dihedral angle between the plane and the XY
// plane, in [0, π/2].
func (pl Plane) InclinationToXY() float64 {
	cos := math.Abs(pl.N.Unit().Z)
	cos = math.Max(-1, math.Min(1, cos))
	return math.Acos(cos)
}

// Box3 is an axis-aligned box in 3-space (the paper's "bounding right
// rectangular prism"). Like Box it must be created with EmptyBox3.
type Box3 struct {
	Min, Max Vec3
}

// EmptyBox3 returns a 3-D box containing no points.
func EmptyBox3() Box3 {
	inf := math.Inf(1)
	return Box3{Vec3{inf, inf, inf}, Vec3{-inf, -inf, -inf}}
}

// Empty reports whether the box contains no points.
func (b Box3) Empty() bool {
	return b.Min.X > b.Max.X || b.Min.Y > b.Max.Y || b.Min.Z > b.Max.Z
}

// Extend grows the box to include p.
func (b *Box3) Extend(p Vec3) {
	b.Min.X = math.Min(b.Min.X, p.X)
	b.Min.Y = math.Min(b.Min.Y, p.Y)
	b.Min.Z = math.Min(b.Min.Z, p.Z)
	b.Max.X = math.Max(b.Max.X, p.X)
	b.Max.Y = math.Max(b.Max.Y, p.Y)
	b.Max.Z = math.Max(b.Max.Z, p.Z)
}

// Contains reports whether p is inside the closed box (Eps slack).
func (b Box3) Contains(p Vec3) bool {
	return !b.Empty() &&
		p.X >= b.Min.X-Eps && p.X <= b.Max.X+Eps &&
		p.Y >= b.Min.Y-Eps && p.Y <= b.Max.Y+Eps &&
		p.Z >= b.Min.Z-Eps && p.Z <= b.Max.Z+Eps
}

// Corners returns the eight corners of the box.
func (b Box3) Corners() [8]Vec3 {
	return [8]Vec3{
		{b.Min.X, b.Min.Y, b.Min.Z},
		{b.Max.X, b.Min.Y, b.Min.Z},
		{b.Max.X, b.Max.Y, b.Min.Z},
		{b.Min.X, b.Max.Y, b.Min.Z},
		{b.Min.X, b.Min.Y, b.Max.Z},
		{b.Max.X, b.Min.Y, b.Max.Z},
		{b.Max.X, b.Max.Y, b.Max.Z},
		{b.Min.X, b.Max.Y, b.Max.Z},
	}
}

// Faces returns the six faces of the box as quadrilaterals (each a 4-vertex
// planar polygon).
func (b Box3) Faces() [6][]Vec3 {
	c := b.Corners()
	return [6][]Vec3{
		{c[0], c[1], c[2], c[3]}, // z = min
		{c[4], c[5], c[6], c[7]}, // z = max
		{c[0], c[1], c[5], c[4]}, // y = min
		{c[3], c[2], c[6], c[7]}, // y = max
		{c[0], c[3], c[7], c[4]}, // x = min
		{c[1], c[2], c[6], c[5]}, // x = max
	}
}

// ClipPolygonPlane3 clips a convex planar polygon against the half-space
// N·p ≤ D (Sutherland–Hodgman against one plane). The result may be empty.
func ClipPolygonPlane3(poly []Vec3, pl Plane) []Vec3 {
	if len(poly) == 0 {
		return nil
	}
	inside := func(p Vec3) bool { return pl.Eval(p) <= Eps }
	var out []Vec3
	n := len(poly)
	for i := 0; i < n; i++ {
		cur, next := poly[i], poly[(i+1)%n]
		curIn, nextIn := inside(cur), inside(next)
		if curIn {
			out = append(out, cur)
		}
		if curIn != nextIn {
			ec, en := pl.Eval(cur), pl.Eval(next)
			den := ec - en
			if math.Abs(den) > Eps {
				t := ec / den
				out = append(out, cur.Add(next.Sub(cur).Scale(t)))
			}
		}
	}
	return out
}

// LinePolygonDist3 returns the minimum distance between the infinite 3-D
// line (la, lb) and the closed planar convex polygon poly. If the line
// pierces the polygon the distance is 0.
func LinePolygonDist3(poly []Vec3, la, lb Vec3) float64 {
	n := len(poly)
	switch n {
	case 0:
		return math.Inf(1)
	case 1:
		return DistToLine3(poly[0], la, lb)
	case 2:
		return SegmentLineDist3(poly[0], poly[1], la, lb)
	}
	// Piercing test: does the line cross the polygon's plane inside it?
	if pl, ok := PlaneFromPoints(poly[0], poly[1], poly[2]); ok {
		dir := lb.Sub(la)
		den := pl.N.Dot(dir)
		if math.Abs(den) > Eps {
			t := (pl.D - pl.N.Dot(la)) / den
			hit := la.Add(dir.Scale(t))
			if pointInPlanarPolygon(hit, poly, pl.N) {
				return 0
			}
		}
	}
	minD := math.Inf(1)
	for i := 0; i < n; i++ {
		d := SegmentLineDist3(poly[i], poly[(i+1)%n], la, lb)
		if d < minD {
			minD = d
		}
	}
	return minD
}

// pointInPlanarPolygon reports whether p (assumed on the polygon's plane)
// lies inside the convex polygon with the given plane normal.
func pointInPlanarPolygon(p Vec3, poly []Vec3, normal Vec3) bool {
	n := len(poly)
	sign := 0.0
	for i := 0; i < n; i++ {
		a, b := poly[i], poly[(i+1)%n]
		c := b.Sub(a).Cross(p.Sub(a)).Dot(normal)
		if math.Abs(c) < Eps {
			continue
		}
		if sign == 0 {
			sign = c
		} else if sign*c < 0 {
			return false
		}
	}
	return true
}

// LineRectDist3 returns the minimum distance between the infinite line
// (la, lb) and the axis-aligned rectangle given as a 4-vertex polygon.
// It is a convenience wrapper over LinePolygonDist3 used for prism faces.
func LineRectDist3(rect []Vec3, la, lb Vec3) float64 {
	return LinePolygonDist3(rect, la, lb)
}
