package geom

import "math"

// Vec3 is a point or displacement in 3-space. In the 3-D BQS the z axis
// carries either altitude (metres) or scaled time, as chosen by the caller.
type Vec3 struct {
	X, Y, Z float64
}

// V3 is shorthand for Vec3{x, y, z}.
func V3(x, y, z float64) Vec3 { return Vec3{x, y, z} }

// Add returns v + o.
func (v Vec3) Add(o Vec3) Vec3 { return Vec3{v.X + o.X, v.Y + o.Y, v.Z + o.Z} }

// Sub returns v - o.
func (v Vec3) Sub(o Vec3) Vec3 { return Vec3{v.X - o.X, v.Y - o.Y, v.Z - o.Z} }

// Scale returns v scaled by k.
func (v Vec3) Scale(k float64) Vec3 { return Vec3{v.X * k, v.Y * k, v.Z * k} }

// Dot returns the dot product v · o.
func (v Vec3) Dot(o Vec3) float64 { return v.X*o.X + v.Y*o.Y + v.Z*o.Z }

// Cross returns the cross product v × o.
func (v Vec3) Cross(o Vec3) Vec3 {
	return Vec3{
		v.Y*o.Z - v.Z*o.Y,
		v.Z*o.X - v.X*o.Z,
		v.X*o.Y - v.Y*o.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Norm2 returns the squared length of v.
func (v Vec3) Norm2() float64 { return v.Dot(v) }

// Dist returns the distance between v and o.
func (v Vec3) Dist(o Vec3) float64 { return v.Sub(o).Norm() }

// Unit returns v normalized to unit length (zero vector unchanged).
func (v Vec3) Unit() Vec3 {
	n := v.Norm()
	if n < Eps {
		return v
	}
	return v.Scale(1 / n)
}

// XY projects v onto the XY plane.
func (v Vec3) XY() Vec { return Vec{v.X, v.Y} }

// IsFinite reports whether all components are finite.
func (v Vec3) IsFinite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0) &&
		!math.IsNaN(v.Z) && !math.IsInf(v.Z, 0)
}

// DistToLine3 returns the distance from p to the infinite 3-D line through
// a and b; for a degenerate line it returns the distance to a.
func DistToLine3(p, a, b Vec3) float64 {
	d := b.Sub(a)
	n := d.Norm()
	if n < Eps {
		return p.Dist(a)
	}
	return d.Cross(p.Sub(a)).Norm() / n
}

// DistToSegment3 returns the distance from p to the closed 3-D segment [a,b].
func DistToSegment3(p, a, b Vec3) float64 {
	d := b.Sub(a)
	n2 := d.Norm2()
	if n2 < Eps*Eps {
		return p.Dist(a)
	}
	t := p.Sub(a).Dot(d) / n2
	switch {
	case t <= 0:
		return p.Dist(a)
	case t >= 1:
		return p.Dist(b)
	default:
		return p.Dist(a.Add(d.Scale(t)))
	}
}

// SegmentLineDist3 returns the minimum distance between the closed segment
// [a, b] and the infinite line through la, lb.
func SegmentLineDist3(a, b, la, lb Vec3) float64 {
	u := b.Sub(a)   // segment direction
	v := lb.Sub(la) // line direction
	if v.Norm() < Eps {
		return DistToSegment3(la, a, b)
	}
	if u.Norm() < Eps {
		return DistToLine3(a, la, lb)
	}
	w := a.Sub(la)
	uu := u.Dot(u)
	uv := u.Dot(v)
	vv := v.Dot(v)
	uw := u.Dot(w)
	vw := v.Dot(w)
	den := uu*vv - uv*uv
	var s float64 // parameter along segment, clamped to [0,1]
	if math.Abs(den) < Eps {
		s = 0 // parallel: any point of the segment works; take a.
	} else {
		s = (uv*vw - vv*uw) / den
		s = math.Max(0, math.Min(1, s))
	}
	p := a.Add(u.Scale(s))
	return DistToLine3(p, la, lb)
}

// MaxDistToLine3 returns the maximum distance from pts to the 3-D line and
// the attaining index, or (0, -1) for no points.
func MaxDistToLine3(pts []Vec3, a, b Vec3) (float64, int) {
	maxD, arg := 0.0, -1
	for i, p := range pts {
		if d := DistToLine3(p, a, b); d > maxD {
			maxD, arg = d, i
		}
	}
	return maxD, arg
}
