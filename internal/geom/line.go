package geom

import "math"

// Line is an infinite line through two points A and B. When A == B the line
// is degenerate and distance queries fall back to point distance, which is
// the behaviour the compression algorithms want: the deviation from a
// zero-length path line is the distance to its single anchor point.
type Line struct {
	A, B Vec
}

// Dir returns the (non-normalized) direction B - A.
func (l Line) Dir() Vec { return l.B.Sub(l.A) }

// IsDegenerate reports whether the two defining points coincide.
func (l Line) IsDegenerate() bool { return l.Dir().Norm() < Eps }

// DistToLine returns the perpendicular distance from p to the infinite
// line l. For a degenerate line it returns the distance to l.A.
func DistToLine(p Vec, l Line) float64 {
	d := l.Dir()
	n := d.Norm()
	if n < Eps {
		return p.Dist(l.A)
	}
	return math.Abs(d.Cross(p.Sub(l.A))) / n
}

// DistToSegment returns the distance from p to the closed segment [a, b].
func DistToSegment(p, a, b Vec) float64 {
	d := b.Sub(a)
	n2 := d.Norm2()
	if n2 < Eps*Eps {
		return p.Dist(a)
	}
	t := p.Sub(a).Dot(d) / n2
	switch {
	case t <= 0:
		return p.Dist(a)
	case t >= 1:
		return p.Dist(b)
	default:
		return p.Dist(a.Add(d.Scale(t)))
	}
}

// ClosestOnSegment returns the point of [a, b] closest to p.
func ClosestOnSegment(p, a, b Vec) Vec {
	d := b.Sub(a)
	n2 := d.Norm2()
	if n2 < Eps*Eps {
		return a
	}
	t := p.Sub(a).Dot(d) / n2
	if t <= 0 {
		return a
	}
	if t >= 1 {
		return b
	}
	return a.Add(d.Scale(t))
}

// SideOfLine classifies p against the directed line a→b:
// +1 left, -1 right, 0 on the line (within Eps of it).
func SideOfLine(p Vec, a, b Vec) int {
	c := b.Sub(a).Cross(p.Sub(a))
	switch {
	case c > Eps:
		return 1
	case c < -Eps:
		return -1
	default:
		return 0
	}
}

// LineIntersection returns the intersection point of two infinite lines and
// true, or the zero vector and false when they are parallel (or either is
// degenerate).
func LineIntersection(l1, l2 Line) (Vec, bool) {
	d1 := l1.Dir()
	d2 := l2.Dir()
	den := d1.Cross(d2)
	if math.Abs(den) < Eps {
		return Vec{}, false
	}
	t := l2.A.Sub(l1.A).Cross(d2) / den
	return l1.A.Add(d1.Scale(t)), true
}

// SegmentsIntersect reports whether the closed segments [a,b] and [c,d]
// share at least one point.
func SegmentsIntersect(a, b, c, d Vec) bool {
	d1 := SideOfLine(c, a, b)
	d2 := SideOfLine(d, a, b)
	d3 := SideOfLine(a, c, d)
	d4 := SideOfLine(b, c, d)
	if d1 != d2 && d3 != d4 && d1 != 0 && d2 != 0 && d3 != 0 && d4 != 0 {
		return true
	}
	onSeg := func(p, a, b Vec) bool {
		return SideOfLine(p, a, b) == 0 &&
			p.X >= math.Min(a.X, b.X)-Eps && p.X <= math.Max(a.X, b.X)+Eps &&
			p.Y >= math.Min(a.Y, b.Y)-Eps && p.Y <= math.Max(a.Y, b.Y)+Eps
	}
	return onSeg(c, a, b) || onSeg(d, a, b) || onSeg(a, c, d) || onSeg(b, c, d)
}

// MaxDistToLine returns the maximum perpendicular distance from any point in
// pts to the line l, along with the index of the attaining point. It returns
// (0, -1) for an empty slice.
func MaxDistToLine(pts []Vec, l Line) (float64, int) {
	maxD, arg := 0.0, -1
	for i, p := range pts {
		if d := DistToLine(p, l); d > maxD {
			maxD, arg = d, i
		}
	}
	return maxD, arg
}

// MaxDistToSegment is MaxDistToLine with the point-to-segment metric.
func MaxDistToSegment(pts []Vec, a, b Vec) (float64, int) {
	maxD, arg := 0.0, -1
	for i, p := range pts {
		if d := DistToSegment(p, a, b); d > maxD {
			maxD, arg = d, i
		}
	}
	return maxD, arg
}
