package geom

import "math"

// Box is an axis-aligned rectangle. An empty box (no points added yet) is
// represented by Min > Max and reports Empty() == true; the zero Box value
// is NOT empty (it is the degenerate rectangle at the origin), so new boxes
// must be created with EmptyBox.
type Box struct {
	Min, Max Vec
}

// EmptyBox returns a box containing no points.
func EmptyBox() Box {
	return Box{
		Min: Vec{math.Inf(1), math.Inf(1)},
		Max: Vec{math.Inf(-1), math.Inf(-1)},
	}
}

// BoxOf returns the minimal box containing all pts (EmptyBox for none).
func BoxOf(pts []Vec) Box {
	b := EmptyBox()
	for _, p := range pts {
		b.Extend(p)
	}
	return b
}

// Empty reports whether the box contains no points.
func (b Box) Empty() bool { return b.Min.X > b.Max.X || b.Min.Y > b.Max.Y }

// Extend grows the box to include p.
func (b *Box) Extend(p Vec) {
	b.Min.X = math.Min(b.Min.X, p.X)
	b.Min.Y = math.Min(b.Min.Y, p.Y)
	b.Max.X = math.Max(b.Max.X, p.X)
	b.Max.Y = math.Max(b.Max.Y, p.Y)
}

// ExtendBox grows the box to include the whole of o.
func (b *Box) ExtendBox(o Box) {
	if o.Empty() {
		return
	}
	b.Extend(o.Min)
	b.Extend(o.Max)
}

// Contains reports whether p lies inside the closed box (with Eps slack).
func (b Box) Contains(p Vec) bool {
	return !b.Empty() &&
		p.X >= b.Min.X-Eps && p.X <= b.Max.X+Eps &&
		p.Y >= b.Min.Y-Eps && p.Y <= b.Max.Y+Eps
}

// Intersects reports whether the two closed boxes overlap.
func (b Box) Intersects(o Box) bool {
	if b.Empty() || o.Empty() {
		return false
	}
	return b.Min.X <= o.Max.X+Eps && o.Min.X <= b.Max.X+Eps &&
		b.Min.Y <= o.Max.Y+Eps && o.Min.Y <= b.Max.Y+Eps
}

// Inflate returns the box grown by r on every side.
func (b Box) Inflate(r float64) Box {
	if b.Empty() {
		return b
	}
	return Box{Vec{b.Min.X - r, b.Min.Y - r}, Vec{b.Max.X + r, b.Max.Y + r}}
}

// Width returns the x extent (0 for empty boxes).
func (b Box) Width() float64 {
	if b.Empty() {
		return 0
	}
	return b.Max.X - b.Min.X
}

// Height returns the y extent (0 for empty boxes).
func (b Box) Height() float64 {
	if b.Empty() {
		return 0
	}
	return b.Max.Y - b.Min.Y
}

// Center returns the box center (zero vector for empty boxes).
func (b Box) Center() Vec {
	if b.Empty() {
		return Vec{}
	}
	return Vec{(b.Min.X + b.Max.X) / 2, (b.Min.Y + b.Max.Y) / 2}
}

// Corners returns the four corners in counter-clockwise order starting from
// Min: (minX,minY), (maxX,minY), (maxX,maxY), (minX,maxY).
func (b Box) Corners() [4]Vec {
	return [4]Vec{
		{b.Min.X, b.Min.Y},
		{b.Max.X, b.Min.Y},
		{b.Max.X, b.Max.Y},
		{b.Min.X, b.Max.Y},
	}
}

// ClipRay clips the ray origin + t*dir (t ≥ 0) against the closed box using
// the slab method. It returns the parameter interval [t0, t1] of the portion
// inside the box and ok=false when the ray misses the box entirely.
// A zero direction yields ok=false.
func (b Box) ClipRay(origin, dir Vec) (t0, t1 float64, ok bool) {
	// Norm2 spares the Hypot: |dir| < Eps ⟺ |dir|² < Eps², and the clip
	// runs on the hot bound-refresh path.
	if b.Empty() || dir.Norm2() < Eps*Eps {
		return 0, 0, false
	}
	t0, t1 = 0, math.Inf(1)
	// x slab
	if math.Abs(dir.X) < Eps {
		if origin.X < b.Min.X-Eps || origin.X > b.Max.X+Eps {
			return 0, 0, false
		}
	} else {
		ta := (b.Min.X - origin.X) / dir.X
		tb := (b.Max.X - origin.X) / dir.X
		if ta > tb {
			ta, tb = tb, ta
		}
		t0 = math.Max(t0, ta)
		t1 = math.Min(t1, tb)
	}
	// y slab
	if math.Abs(dir.Y) < Eps {
		if origin.Y < b.Min.Y-Eps || origin.Y > b.Max.Y+Eps {
			return 0, 0, false
		}
	} else {
		ta := (b.Min.Y - origin.Y) / dir.Y
		tb := (b.Max.Y - origin.Y) / dir.Y
		if ta > tb {
			ta, tb = tb, ta
		}
		t0 = math.Max(t0, ta)
		t1 = math.Min(t1, tb)
	}
	if t0 > t1+Eps {
		return 0, 0, false
	}
	return t0, t1, true
}

// ClipLineThroughOrigin clips the ray from the origin in direction dir
// against the box and returns the entry and exit points. This is the
// operation BQS uses to turn a bounding line into its two intersection
// points with the bounding box (the points called l1/l2 and u1/u2 in the
// paper). ok is false when the ray misses the box.
func (b Box) ClipLineThroughOrigin(dir Vec) (entry, exit Vec, ok bool) {
	t0, t1, ok := b.ClipRay(Vec{}, dir)
	if !ok {
		return Vec{}, Vec{}, false
	}
	return dir.Scale(t0), dir.Scale(t1), true
}
