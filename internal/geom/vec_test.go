package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVecBasicOps(t *testing.T) {
	a := V(3, 4)
	b := V(-1, 2)
	if got := a.Add(b); got != V(2, 6) {
		t.Errorf("Add = %v, want (2,6)", got)
	}
	if got := a.Sub(b); got != V(4, 2) {
		t.Errorf("Sub = %v, want (4,2)", got)
	}
	if got := a.Scale(2); got != V(6, 8) {
		t.Errorf("Scale = %v, want (6,8)", got)
	}
	if got := a.Dot(b); got != 5 {
		t.Errorf("Dot = %v, want 5", got)
	}
	if got := a.Cross(b); got != 10 {
		t.Errorf("Cross = %v, want 10", got)
	}
	if got := a.Norm(); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := a.Norm2(); got != 25 {
		t.Errorf("Norm2 = %v, want 25", got)
	}
	if got := a.Dist(b); !almostEq(got, math.Sqrt(16+4), 1e-12) {
		t.Errorf("Dist = %v", got)
	}
}

func TestVecUnit(t *testing.T) {
	u := V(3, 4).Unit()
	if !almostEq(u.Norm(), 1, 1e-12) {
		t.Errorf("Unit norm = %v, want 1", u.Norm())
	}
	z := V(0, 0).Unit()
	if z != V(0, 0) {
		t.Errorf("Unit of zero = %v, want zero", z)
	}
}

func TestVecAngle(t *testing.T) {
	cases := []struct {
		v    Vec
		want float64
	}{
		{V(1, 0), 0},
		{V(0, 1), math.Pi / 2},
		{V(-1, 0), math.Pi},
		{V(0, -1), 3 * math.Pi / 2},
		{V(1, 1), math.Pi / 4},
		{V(-1, -1), 5 * math.Pi / 4},
	}
	for _, c := range cases {
		if got := c.v.Angle(); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Angle(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestVecRotate(t *testing.T) {
	v := V(1, 0).Rotate(math.Pi / 2)
	if !almostEq(v.X, 0, 1e-12) || !almostEq(v.Y, 1, 1e-12) {
		t.Errorf("Rotate(π/2) = %v, want (0,1)", v)
	}
}

func TestRotatePreservesNorm(t *testing.T) {
	f := func(x, y, phi float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsNaN(phi) ||
			math.IsInf(x, 0) || math.IsInf(y, 0) || math.IsInf(phi, 0) {
			return true
		}
		x = math.Mod(x, 1e6)
		y = math.Mod(y, 1e6)
		v := V(x, y)
		r := v.Rotate(phi)
		return almostEq(v.Norm(), r.Norm(), 1e-6*(1+v.Norm()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRotateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		v := V(rng.NormFloat64()*1000, rng.NormFloat64()*1000)
		phi := rng.Float64() * 2 * math.Pi
		back := v.Rotate(phi).Rotate(-phi)
		if v.Dist(back) > 1e-9*(1+v.Norm()) {
			t.Fatalf("round trip failed: %v -> %v", v, back)
		}
	}
}

func TestIsFinite(t *testing.T) {
	if !V(1, 2).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if V(math.NaN(), 0).IsFinite() {
		t.Error("NaN vector reported finite")
	}
	if V(0, math.Inf(1)).IsFinite() {
		t.Error("Inf vector reported finite")
	}
}

func TestLerp(t *testing.T) {
	a, b := V(0, 0), V(10, 20)
	if got := Lerp(a, b, 0); got != a {
		t.Errorf("Lerp t=0 = %v", got)
	}
	if got := Lerp(a, b, 1); got != b {
		t.Errorf("Lerp t=1 = %v", got)
	}
	if got := Lerp(a, b, 0.5); got != V(5, 10) {
		t.Errorf("Lerp t=0.5 = %v", got)
	}
}

func TestCentroid(t *testing.T) {
	if got := Centroid(nil); got != V(0, 0) {
		t.Errorf("Centroid(nil) = %v", got)
	}
	pts := []Vec{{0, 0}, {2, 0}, {2, 2}, {0, 2}}
	if got := Centroid(pts); got != V(1, 1) {
		t.Errorf("Centroid = %v, want (1,1)", got)
	}
}

func TestNormalizeAngle(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{2 * math.Pi, 0},
		{-math.Pi / 2, 3 * math.Pi / 2},
		{5 * math.Pi, math.Pi},
	}
	for _, c := range cases {
		if got := NormalizeAngle(c.in); !almostEq(got, c.want, 1e-12) {
			t.Errorf("NormalizeAngle(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestAngleDiff(t *testing.T) {
	if got := AngleDiff(0.1, 2*math.Pi-0.1); !almostEq(got, 0.2, 1e-12) {
		t.Errorf("AngleDiff wraparound = %v, want 0.2", got)
	}
	if got := AngleDiff(0, math.Pi); !almostEq(got, math.Pi, 1e-12) {
		t.Errorf("AngleDiff opposite = %v, want π", got)
	}
}
