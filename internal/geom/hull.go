package geom

import "sort"

// ConvexHull returns the convex hull of pts in counter-clockwise order using
// Andrew's monotone chain. Collinear boundary points are dropped. The input
// slice is not modified. Degenerate inputs return what is available:
// 0 or 1 points unchanged, 2 distinct points as a segment.
func ConvexHull(pts []Vec) []Vec {
	n := len(pts)
	if n < 3 {
		out := make([]Vec, n)
		copy(out, pts)
		return out
	}
	sorted := make([]Vec, n)
	copy(sorted, pts)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].X != sorted[j].X {
			return sorted[i].X < sorted[j].X
		}
		return sorted[i].Y < sorted[j].Y
	})
	// Deduplicate.
	uniq := sorted[:1]
	for _, p := range sorted[1:] {
		last := uniq[len(uniq)-1]
		if p.Sub(last).Norm() > Eps {
			uniq = append(uniq, p)
		}
	}
	if len(uniq) < 3 {
		return uniq
	}

	hull := make([]Vec, 0, 2*len(uniq))
	// Lower hull.
	for _, p := range uniq {
		for len(hull) >= 2 && hull[len(hull)-1].Sub(hull[len(hull)-2]).Cross(p.Sub(hull[len(hull)-2])) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	// Upper hull.
	lower := len(hull) + 1
	for i := len(uniq) - 2; i >= 0; i-- {
		p := uniq[i]
		for len(hull) >= lower && hull[len(hull)-1].Sub(hull[len(hull)-2]).Cross(p.Sub(hull[len(hull)-2])) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	return hull[:len(hull)-1]
}

// InConvexPolygon reports whether p lies inside or on the boundary of the
// convex polygon poly (vertices in counter-clockwise order, tolerance tol).
func InConvexPolygon(p Vec, poly []Vec, tol float64) bool {
	n := len(poly)
	switch n {
	case 0:
		return false
	case 1:
		return p.Dist(poly[0]) <= tol
	case 2:
		return DistToSegment(p, poly[0], poly[1]) <= tol
	}
	for i := 0; i < n; i++ {
		a, b := poly[i], poly[(i+1)%n]
		d := b.Sub(a)
		if d.Cross(p.Sub(a)) < -tol*d.Norm() {
			return false
		}
	}
	return true
}

// ClipPolygonHalfPlane clips a convex polygon (CCW) against the half-plane
// on the left side of the directed line a→b (Sutherland–Hodgman, one edge).
// The result is again convex and CCW; it may be empty.
func ClipPolygonHalfPlane(poly []Vec, a, b Vec) []Vec {
	if len(poly) == 0 {
		return nil
	}
	dir := b.Sub(a)
	inside := func(p Vec) bool { return dir.Cross(p.Sub(a)) >= -Eps }
	var out []Vec
	n := len(poly)
	for i := 0; i < n; i++ {
		cur, next := poly[i], poly[(i+1)%n]
		curIn, nextIn := inside(cur), inside(next)
		if curIn {
			out = append(out, cur)
		}
		if curIn != nextIn {
			if p, ok := LineIntersection(Line{cur, next}, Line{a, b}); ok {
				out = append(out, p)
			}
		}
	}
	return out
}

// PolygonArea returns the signed area of the polygon (positive when CCW).
func PolygonArea(poly []Vec) float64 {
	var s float64
	n := len(poly)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		s += poly[i].Cross(poly[j])
	}
	return s / 2
}
