package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestVec3BasicOps(t *testing.T) {
	a := V3(1, 2, 3)
	b := V3(4, -5, 6)
	if got := a.Add(b); got != V3(5, -3, 9) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != V3(-3, 7, -3) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Dot(b); got != 1*4-2*5+3*6 {
		t.Errorf("Dot = %v", got)
	}
	c := a.Cross(b)
	if !almostEq(c.Dot(a), 0, 1e-12) || !almostEq(c.Dot(b), 0, 1e-12) {
		t.Errorf("Cross not orthogonal: %v", c)
	}
	if got := V3(3, 4, 0).Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	if got := a.XY(); got != V(1, 2) {
		t.Errorf("XY = %v", got)
	}
}

func TestVec3Unit(t *testing.T) {
	if n := V3(1, 2, 3).Unit().Norm(); !almostEq(n, 1, 1e-12) {
		t.Errorf("unit norm = %v", n)
	}
	if got := V3(0, 0, 0).Unit(); got != V3(0, 0, 0) {
		t.Errorf("unit of zero = %v", got)
	}
}

func TestDistToLine3(t *testing.T) {
	// Line along z axis: distance is the XY norm.
	a, b := V3(0, 0, 0), V3(0, 0, 10)
	if got := DistToLine3(V3(3, 4, 7), a, b); !almostEq(got, 5, 1e-12) {
		t.Errorf("DistToLine3 = %v, want 5", got)
	}
	// Degenerate.
	if got := DistToLine3(V3(3, 4, 0), a, a); !almostEq(got, 5, 1e-12) {
		t.Errorf("degenerate DistToLine3 = %v, want 5", got)
	}
}

func TestDistToSegment3(t *testing.T) {
	a, b := V3(0, 0, 0), V3(10, 0, 0)
	if got := DistToSegment3(V3(5, 3, 4), a, b); !almostEq(got, 5, 1e-12) {
		t.Errorf("mid = %v, want 5", got)
	}
	if got := DistToSegment3(V3(-3, 0, 4), a, b); !almostEq(got, 5, 1e-12) {
		t.Errorf("before a = %v, want 5", got)
	}
	if got := DistToSegment3(V3(13, 4, 0), a, b); !almostEq(got, 5, 1e-12) {
		t.Errorf("after b = %v, want 5", got)
	}
}

func TestSegmentLineDist3(t *testing.T) {
	// Segment parallel to the line at distance 2.
	d := SegmentLineDist3(V3(0, 2, 0), V3(5, 2, 0), V3(0, 0, 0), V3(1, 0, 0))
	if !almostEq(d, 2, 1e-9) {
		t.Errorf("parallel = %v, want 2", d)
	}
	// Crossing (skew at 0 distance in projection).
	d = SegmentLineDist3(V3(-1, 0, 0), V3(1, 0, 0), V3(0, -1, 0), V3(0, 1, 0))
	if !almostEq(d, 0, 1e-9) {
		t.Errorf("crossing = %v, want 0", d)
	}
	// Skew lines: segment above the line by 3 in z.
	d = SegmentLineDist3(V3(-1, 0, 3), V3(1, 0, 3), V3(0, -1, 0), V3(0, 1, 0))
	if !almostEq(d, 3, 1e-9) {
		t.Errorf("skew = %v, want 3", d)
	}
}

func TestSegmentLineDist3BruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		a := V3(rng.NormFloat64()*10, rng.NormFloat64()*10, rng.NormFloat64()*10)
		b := V3(rng.NormFloat64()*10, rng.NormFloat64()*10, rng.NormFloat64()*10)
		la := V3(rng.NormFloat64()*10, rng.NormFloat64()*10, rng.NormFloat64()*10)
		lb := V3(rng.NormFloat64()*10, rng.NormFloat64()*10, rng.NormFloat64()*10)
		got := SegmentLineDist3(a, b, la, lb)
		// Brute force: sample the segment densely.
		minD := math.Inf(1)
		for k := 0; k <= 500; k++ {
			p := a.Add(b.Sub(a).Scale(float64(k) / 500))
			if d := DistToLine3(p, la, lb); d < minD {
				minD = d
			}
		}
		if got > minD+1e-6 {
			t.Fatalf("SegmentLineDist3 = %v > sampled min %v", got, minD)
		}
		if got < minD-0.15 { // sampling resolution slack
			t.Fatalf("SegmentLineDist3 = %v way below sampled min %v", got, minD)
		}
	}
}

func TestPlaneFromPoints(t *testing.T) {
	pl, ok := PlaneFromPoints(V3(0, 0, 1), V3(1, 0, 1), V3(0, 1, 1))
	if !ok {
		t.Fatal("plane construction failed")
	}
	if !almostEq(pl.Eval(V3(5, 5, 1)), 0, 1e-9) {
		t.Error("point on plane has nonzero eval")
	}
	if !almostEq(math.Abs(pl.Eval(V3(0, 0, 3))), 2, 1e-9) {
		t.Errorf("signed distance = %v, want ±2", pl.Eval(V3(0, 0, 3)))
	}
	if _, ok := PlaneFromPoints(V3(0, 0, 0), V3(1, 1, 1), V3(2, 2, 2)); ok {
		t.Error("collinear points produced a plane")
	}
}

func TestPlaneInclination(t *testing.T) {
	horizontal, _ := PlaneFromPoints(V3(0, 0, 0), V3(1, 0, 0), V3(0, 1, 0))
	if got := horizontal.InclinationToXY(); !almostEq(got, 0, 1e-9) {
		t.Errorf("horizontal inclination = %v", got)
	}
	vertical, _ := PlaneFromPoints(V3(0, 0, 0), V3(1, 0, 0), V3(0, 0, 1))
	if got := vertical.InclinationToXY(); !almostEq(got, math.Pi/2, 1e-9) {
		t.Errorf("vertical inclination = %v", got)
	}
}

func TestBox3Basics(t *testing.T) {
	b := EmptyBox3()
	if !b.Empty() {
		t.Fatal("EmptyBox3 not empty")
	}
	b.Extend(V3(1, 2, 3))
	b.Extend(V3(-1, 0, 5))
	if b.Empty() {
		t.Fatal("box empty after extends")
	}
	if !b.Contains(V3(0, 1, 4)) {
		t.Error("box misses interior point")
	}
	if b.Contains(V3(0, 1, 9)) {
		t.Error("box contains outside point")
	}
	c := b.Corners()
	for _, p := range c {
		if !b.Contains(p) {
			t.Errorf("box misses own corner %v", p)
		}
	}
}

func TestBox3Faces(t *testing.T) {
	b := Box3{V3(0, 0, 0), V3(1, 2, 3)}
	faces := b.Faces()
	if len(faces) != 6 {
		t.Fatalf("faces = %d", len(faces))
	}
	for _, f := range faces {
		if len(f) != 4 {
			t.Fatalf("face with %d vertices", len(f))
		}
		for _, p := range f {
			if !b.Contains(p) {
				t.Errorf("face vertex %v outside box", p)
			}
		}
	}
}

func TestClipPolygonPlane3(t *testing.T) {
	// Unit square in z=0 plane clipped by x ≤ 0.5.
	poly := []Vec3{{0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {0, 1, 0}}
	pl := Plane{N: V3(1, 0, 0), D: 0.5}
	got := ClipPolygonPlane3(poly, pl)
	if len(got) != 4 {
		t.Fatalf("clip result = %v", got)
	}
	for _, p := range got {
		if p.X > 0.5+1e-9 {
			t.Errorf("kept point %v beyond plane", p)
		}
	}
	// Clip everything away.
	pl = Plane{N: V3(1, 0, 0), D: -1}
	if got := ClipPolygonPlane3(poly, pl); len(got) != 0 {
		t.Errorf("full clip left %v", got)
	}
}

func TestLinePolygonDist3(t *testing.T) {
	square := []Vec3{{-1, -1, 2}, {1, -1, 2}, {1, 1, 2}, {-1, 1, 2}}
	// Vertical line through the square: pierces it, distance 0.
	if d := LinePolygonDist3(square, V3(0, 0, 0), V3(0, 0, 1)); !almostEq(d, 0, 1e-9) {
		t.Errorf("piercing distance = %v, want 0", d)
	}
	// Vertical line off to the side: distance 1 in x.
	if d := LinePolygonDist3(square, V3(2, 0, 0), V3(2, 0, 1)); !almostEq(d, 1, 1e-9) {
		t.Errorf("side distance = %v, want 1", d)
	}
	// Horizontal line above the square plane: vertical gap of 3.
	if d := LinePolygonDist3(square, V3(-5, 0, 5), V3(5, 0, 5)); !almostEq(d, 3, 1e-9) {
		t.Errorf("above distance = %v, want 3", d)
	}
	if d := LinePolygonDist3(nil, V3(0, 0, 0), V3(1, 0, 0)); !math.IsInf(d, 1) {
		t.Errorf("empty polygon distance = %v, want +Inf", d)
	}
}

func TestVec3IsFinite(t *testing.T) {
	if !V3(1, 2, 3).IsFinite() {
		t.Error("finite reported non-finite")
	}
	if V3(math.NaN(), 0, 0).IsFinite() || V3(0, math.Inf(1), 0).IsFinite() {
		t.Error("non-finite reported finite")
	}
}

func TestMaxDistToLine3(t *testing.T) {
	pts := []Vec3{{0, 1, 0}, {0, -7, 3}, {0, 2, 1}}
	d, i := MaxDistToLine3(pts, V3(0, 0, 0), V3(1, 0, 0))
	want := math.Sqrt(49 + 9)
	if i != 1 || !almostEq(d, want, 1e-9) {
		t.Errorf("MaxDistToLine3 = (%v,%d), want (%v,1)", d, i, want)
	}
}
