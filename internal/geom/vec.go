// Package geom provides the plane and solid geometry primitives the BQS
// compression algorithms are built on: vectors, point-to-line and
// point-to-segment distances, minimal bounding boxes, ray/box clipping,
// convex hulls and convex polygon clipping.
//
// Everything operates on projected metric coordinates (metres); the geo
// package is responsible for getting GPS fixes into that space.
package geom

import "math"

// Eps is the absolute tolerance used for degenerate-case decisions
// (parallel lines, zero-length directions, on-boundary classification).
// Coordinates are metres, so 1e-9 m is far below GPS noise.
const Eps = 1e-9

// Vec is a point or displacement in the plane.
type Vec struct {
	X, Y float64
}

// V is shorthand for Vec{x, y}.
func V(x, y float64) Vec { return Vec{x, y} }

// Add returns v + o.
func (v Vec) Add(o Vec) Vec { return Vec{v.X + o.X, v.Y + o.Y} }

// Sub returns v - o.
func (v Vec) Sub(o Vec) Vec { return Vec{v.X - o.X, v.Y - o.Y} }

// Scale returns v scaled by k.
func (v Vec) Scale(k float64) Vec { return Vec{v.X * k, v.Y * k} }

// Dot returns the dot product v · o.
func (v Vec) Dot(o Vec) float64 { return v.X*o.X + v.Y*o.Y }

// Cross returns the z component of the cross product v × o.
// Positive when o is counter-clockwise from v.
func (v Vec) Cross(o Vec) float64 { return v.X*o.Y - v.Y*o.X }

// Norm returns the Euclidean length of v.
func (v Vec) Norm() float64 { return math.Hypot(v.X, v.Y) }

// Norm2 returns the squared Euclidean length of v.
func (v Vec) Norm2() float64 { return v.X*v.X + v.Y*v.Y }

// Dist returns the Euclidean distance between v and o.
func (v Vec) Dist(o Vec) float64 { return v.Sub(o).Norm() }

// Unit returns v scaled to length 1. The zero vector is returned unchanged.
func (v Vec) Unit() Vec {
	n := v.Norm()
	if n < Eps {
		return v
	}
	return v.Scale(1 / n)
}

// Angle returns the angle of v measured counter-clockwise from the +x axis,
// normalized to [0, 2π).
func (v Vec) Angle() float64 {
	a := math.Atan2(v.Y, v.X)
	if a < 0 {
		a += 2 * math.Pi
	}
	return a
}

// Rotate returns v rotated counter-clockwise by phi radians.
func (v Vec) Rotate(phi float64) Vec {
	s, c := math.Sincos(phi)
	return Vec{v.X*c - v.Y*s, v.X*s + v.Y*c}
}

// IsFinite reports whether both components are finite numbers.
func (v Vec) IsFinite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0)
}

// Lerp returns the linear interpolation between a and b at parameter t,
// with t = 0 yielding a and t = 1 yielding b.
func Lerp(a, b Vec, t float64) Vec {
	return Vec{a.X + (b.X-a.X)*t, a.Y + (b.Y-a.Y)*t}
}

// Centroid returns the arithmetic mean of pts. It returns the zero vector
// for an empty slice.
func Centroid(pts []Vec) Vec {
	if len(pts) == 0 {
		return Vec{}
	}
	var c Vec
	for _, p := range pts {
		c = c.Add(p)
	}
	return c.Scale(1 / float64(len(pts)))
}

// NormalizeAngle maps an angle in radians into [0, 2π).
func NormalizeAngle(a float64) float64 {
	a = math.Mod(a, 2*math.Pi)
	if a < 0 {
		a += 2 * math.Pi
	}
	return a
}

// AngleDiff returns the absolute smallest difference between two angles,
// in [0, π].
func AngleDiff(a, b float64) float64 {
	d := math.Abs(NormalizeAngle(a) - NormalizeAngle(b))
	if d > math.Pi {
		d = 2*math.Pi - d
	}
	return d
}
