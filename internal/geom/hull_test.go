package geom

import (
	"math/rand"
	"testing"
)

func TestConvexHullSquare(t *testing.T) {
	pts := []Vec{{0, 0}, {2, 0}, {2, 2}, {0, 2}, {1, 1}, {0.5, 0.5}}
	h := ConvexHull(pts)
	if len(h) != 4 {
		t.Fatalf("hull size = %d, want 4: %v", len(h), h)
	}
	for _, p := range pts {
		if !InConvexPolygon(p, h, 1e-9) {
			t.Errorf("hull misses %v", p)
		}
	}
}

func TestConvexHullDegenerate(t *testing.T) {
	if h := ConvexHull(nil); len(h) != 0 {
		t.Errorf("hull of nothing = %v", h)
	}
	if h := ConvexHull([]Vec{{1, 1}}); len(h) != 1 {
		t.Errorf("hull of one point = %v", h)
	}
	// All identical points.
	h := ConvexHull([]Vec{{1, 1}, {1, 1}, {1, 1}})
	if len(h) != 1 {
		t.Errorf("hull of identical points = %v", h)
	}
	// Collinear points: hull is the extreme pair.
	h = ConvexHull([]Vec{{0, 0}, {1, 1}, {2, 2}, {3, 3}})
	if len(h) != 2 {
		t.Errorf("hull of collinear points = %v", h)
	}
}

func TestConvexHullIsConvexAndContainsAll(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 3 + rng.Intn(50)
		pts := make([]Vec, n)
		for i := range pts {
			pts[i] = V(rng.NormFloat64()*100, rng.NormFloat64()*100)
		}
		h := ConvexHull(pts)
		// CCW convexity: every turn is a left turn.
		for i := 0; i < len(h) && len(h) >= 3; i++ {
			a, b, c := h[i], h[(i+1)%len(h)], h[(i+2)%len(h)]
			if b.Sub(a).Cross(c.Sub(b)) < -1e-9 {
				t.Fatalf("hull not convex at %d: %v %v %v", i, a, b, c)
			}
		}
		for _, p := range pts {
			if !InConvexPolygon(p, h, 1e-6) {
				t.Fatalf("hull misses input point %v (hull %v)", p, h)
			}
		}
	}
}

func TestInConvexPolygonEdgeCases(t *testing.T) {
	if InConvexPolygon(V(0, 0), nil, 1e-9) {
		t.Error("empty polygon contains a point")
	}
	if !InConvexPolygon(V(1, 1), []Vec{{1, 1}}, 1e-9) {
		t.Error("single-vertex polygon should contain itself")
	}
	seg := []Vec{{0, 0}, {2, 0}}
	if !InConvexPolygon(V(1, 0), seg, 1e-9) {
		t.Error("segment polygon should contain midpoint")
	}
	if InConvexPolygon(V(1, 1), seg, 1e-9) {
		t.Error("segment polygon should not contain off-segment point")
	}
}

func TestClipPolygonHalfPlane(t *testing.T) {
	square := []Vec{{0, 0}, {4, 0}, {4, 4}, {0, 4}}
	// Keep the half-plane left of the upward vertical line x = 2
	// (direction (0,1) has "left" = x < 2... direction a=(2,0) b=(2,4):
	// left of a→b is the x<2 side).
	got := ClipPolygonHalfPlane(square, V(2, 0), V(2, 4))
	if len(got) != 4 {
		t.Fatalf("clip result = %v", got)
	}
	area := PolygonArea(got)
	if !almostEq(area, 8, 1e-9) {
		t.Errorf("clipped area = %v, want 8", area)
	}
	for _, p := range got {
		if p.X > 2+1e-9 {
			t.Errorf("clip kept point %v beyond the line", p)
		}
	}
}

func TestClipPolygonHalfPlaneNoOp(t *testing.T) {
	square := []Vec{{0, 0}, {4, 0}, {4, 4}, {0, 4}}
	got := ClipPolygonHalfPlane(square, V(100, 0), V(100, 1))
	if !almostEq(PolygonArea(got), 16, 1e-9) {
		t.Errorf("no-op clip changed area: %v", got)
	}
	got = ClipPolygonHalfPlane(square, V(-100, 0), V(-100, 1))
	if len(got) != 0 {
		t.Errorf("full clip left %v", got)
	}
	if got := ClipPolygonHalfPlane(nil, V(0, 0), V(1, 0)); got != nil {
		t.Errorf("clip of empty polygon = %v", got)
	}
}

func TestPolygonArea(t *testing.T) {
	ccw := []Vec{{0, 0}, {2, 0}, {2, 2}, {0, 2}}
	if a := PolygonArea(ccw); !almostEq(a, 4, 1e-12) {
		t.Errorf("CCW area = %v, want 4", a)
	}
	cw := []Vec{{0, 0}, {0, 2}, {2, 2}, {2, 0}}
	if a := PolygonArea(cw); !almostEq(a, -4, 1e-12) {
		t.Errorf("CW area = %v, want -4", a)
	}
}
