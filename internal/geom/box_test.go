package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestEmptyBox(t *testing.T) {
	b := EmptyBox()
	if !b.Empty() {
		t.Fatal("EmptyBox not empty")
	}
	if b.Contains(V(0, 0)) {
		t.Error("empty box contains origin")
	}
	if b.Width() != 0 || b.Height() != 0 {
		t.Error("empty box has nonzero extent")
	}
	b.Extend(V(1, 2))
	if b.Empty() {
		t.Fatal("box empty after Extend")
	}
	if !b.Contains(V(1, 2)) {
		t.Error("box does not contain its only point")
	}
}

func TestBoxOfAndContains(t *testing.T) {
	pts := []Vec{{1, 5}, {-2, 3}, {4, -1}}
	b := BoxOf(pts)
	for _, p := range pts {
		if !b.Contains(p) {
			t.Errorf("box %v misses member %v", b, p)
		}
	}
	if b.Min != V(-2, -1) || b.Max != V(4, 5) {
		t.Errorf("box = %v, want [(-2,-1),(4,5)]", b)
	}
	if b.Contains(V(10, 10)) {
		t.Error("box contains far point")
	}
}

func TestBoxCorners(t *testing.T) {
	b := Box{V(0, 0), V(2, 3)}
	c := b.Corners()
	want := [4]Vec{{0, 0}, {2, 0}, {2, 3}, {0, 3}}
	if c != want {
		t.Errorf("Corners = %v, want %v", c, want)
	}
}

func TestBoxIntersectsInflate(t *testing.T) {
	a := Box{V(0, 0), V(2, 2)}
	b := Box{V(3, 3), V(4, 4)}
	if a.Intersects(b) {
		t.Error("disjoint boxes intersect")
	}
	if !a.Inflate(1).Intersects(b) {
		t.Error("inflated box should intersect")
	}
	if a.Intersects(EmptyBox()) {
		t.Error("intersects empty box")
	}
}

func TestBoxCenterWidthHeight(t *testing.T) {
	b := Box{V(1, 2), V(5, 8)}
	if b.Center() != V(3, 5) {
		t.Errorf("Center = %v", b.Center())
	}
	if b.Width() != 4 || b.Height() != 6 {
		t.Errorf("extent = (%v,%v)", b.Width(), b.Height())
	}
}

func TestClipRayBasic(t *testing.T) {
	b := Box{V(1, 1), V(3, 2)}
	// Ray along the diagonal y = x enters at (1,1), exits at (2,2).
	t0, t1, ok := b.ClipRay(V(0, 0), V(1, 1))
	if !ok {
		t.Fatal("expected hit")
	}
	entry := V(1, 1).Scale(t0)
	exit := V(1, 1).Scale(t1)
	if !almostEq(entry.X, 1, 1e-9) || !almostEq(entry.Y, 1, 1e-9) {
		t.Errorf("entry = %v, want (1,1)", entry)
	}
	if !almostEq(exit.X, 2, 1e-9) || !almostEq(exit.Y, 2, 1e-9) {
		t.Errorf("exit = %v, want (2,2)", exit)
	}
}

func TestClipRayMiss(t *testing.T) {
	b := Box{V(1, 1), V(3, 2)}
	if _, _, ok := b.ClipRay(V(0, 0), V(0, 1)); ok { // straight up misses box at x∈[1,3]
		t.Error("vertical ray at x=0 should miss")
	}
	if _, _, ok := b.ClipRay(V(0, 0), V(1, -1)); ok { // heads away
		t.Error("downward ray should miss")
	}
	if _, _, ok := b.ClipRay(V(0, 0), V(0, 0)); ok {
		t.Error("zero direction should miss")
	}
}

func TestClipRayVerticalInside(t *testing.T) {
	b := Box{V(-1, 1), V(1, 3)}
	t0, t1, ok := b.ClipRay(V(0, 0), V(0, 1))
	if !ok {
		t.Fatal("vertical ray through box missed")
	}
	if !almostEq(t0, 1, 1e-9) || !almostEq(t1, 3, 1e-9) {
		t.Errorf("t0,t1 = %v,%v, want 1,3", t0, t1)
	}
}

func TestClipLineThroughOrigin(t *testing.T) {
	b := Box{V(1, 0.5), V(4, 3)}
	entry, exit, ok := b.ClipLineThroughOrigin(V(1, 1))
	if !ok {
		t.Fatal("missed")
	}
	if !b.Contains(entry) || !b.Contains(exit) {
		t.Errorf("clip points outside box: %v %v", entry, exit)
	}
	if exit.Norm() < entry.Norm() {
		t.Error("exit closer to origin than entry")
	}
}

// Property: for random boxes in the first quadrant and rays through a random
// interior point, the clip interval endpoints lie on the box boundary.
func TestClipRayEndpointsOnBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		minX := rng.Float64() * 100
		minY := rng.Float64() * 100
		b := Box{V(minX, minY), V(minX+rng.Float64()*100+0.1, minY+rng.Float64()*100+0.1)}
		// Direction towards a random interior point guarantees a hit.
		p := V(
			b.Min.X+rng.Float64()*b.Width(),
			b.Min.Y+rng.Float64()*b.Height(),
		)
		if p.Norm() < 1e-6 {
			continue
		}
		entry, exit, ok := b.ClipLineThroughOrigin(p)
		if !ok {
			t.Fatalf("ray through interior point %v of %v missed", p, b)
		}
		onBoundary := func(q Vec) bool {
			return almostEq(q.X, b.Min.X, 1e-6) || almostEq(q.X, b.Max.X, 1e-6) ||
				almostEq(q.Y, b.Min.Y, 1e-6) || almostEq(q.Y, b.Max.Y, 1e-6)
		}
		if !onBoundary(entry) || !onBoundary(exit) {
			// The origin may be inside the box, in which case entry is the origin.
			if !(b.Contains(V(0, 0)) && entry.Norm() < 1e-9) {
				t.Fatalf("clip endpoints not on boundary: %v %v box %v", entry, exit, b)
			}
		}
		if !b.Contains(entry) || !b.Contains(exit) {
			t.Fatalf("clip endpoints outside box: %v %v box %v", entry, exit, b)
		}
	}
}

func TestExtendBox(t *testing.T) {
	b := EmptyBox()
	b.ExtendBox(Box{V(0, 0), V(1, 1)})
	b.ExtendBox(EmptyBox())
	b.ExtendBox(Box{V(-1, 4), V(0, 5)})
	if b.Min != V(-1, 0) || b.Max != V(1, 5) {
		t.Errorf("ExtendBox = %v", b)
	}
}

func TestClipRayDegenerateBox(t *testing.T) {
	// Box collapsed to a point on the ray.
	b := Box{V(2, 2), V(2, 2)}
	t0, t1, ok := b.ClipRay(V(0, 0), V(1, 1))
	if !ok {
		t.Fatal("ray through point-box missed")
	}
	p0, p1 := V(1, 1).Scale(t0), V(1, 1).Scale(t1)
	if p0.Dist(V(2, 2)) > 1e-9 || p1.Dist(V(2, 2)) > 1e-9 {
		t.Errorf("clip of point box = %v %v, want (2,2)", p0, p1)
	}
	inf := math.Inf(1)
	_ = inf
}
