package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestDistToLine(t *testing.T) {
	l := Line{V(0, 0), V(10, 0)} // x axis
	cases := []struct {
		p    Vec
		want float64
	}{
		{V(5, 3), 3},
		{V(5, -3), 3},
		{V(-100, 7), 7}, // infinite line: x position irrelevant
		{V(0, 0), 0},
	}
	for _, c := range cases {
		if got := DistToLine(c.p, l); !almostEq(got, c.want, 1e-12) {
			t.Errorf("DistToLine(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestDistToLineDegenerate(t *testing.T) {
	l := Line{V(2, 2), V(2, 2)}
	if got := DistToLine(V(5, 6), l); !almostEq(got, 5, 1e-12) {
		t.Errorf("degenerate DistToLine = %v, want 5", got)
	}
}

func TestDistToSegment(t *testing.T) {
	a, b := V(0, 0), V(10, 0)
	cases := []struct {
		p    Vec
		want float64
	}{
		{V(5, 3), 3},
		{V(-3, 4), 5},  // beyond a: distance to a
		{V(13, -4), 5}, // beyond b: distance to b
		{V(10, 0), 0},
	}
	for _, c := range cases {
		if got := DistToSegment(c.p, a, b); !almostEq(got, c.want, 1e-12) {
			t.Errorf("DistToSegment(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestSegmentDistAtLeastLineDist(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		a := V(rng.NormFloat64()*100, rng.NormFloat64()*100)
		b := V(rng.NormFloat64()*100, rng.NormFloat64()*100)
		p := V(rng.NormFloat64()*100, rng.NormFloat64()*100)
		dl := DistToLine(p, Line{a, b})
		ds := DistToSegment(p, a, b)
		if ds < dl-1e-9 {
			t.Fatalf("segment dist %v < line dist %v for p=%v a=%v b=%v", ds, dl, p, a, b)
		}
	}
}

func TestClosestOnSegment(t *testing.T) {
	a, b := V(0, 0), V(10, 0)
	if got := ClosestOnSegment(V(5, 3), a, b); got != V(5, 0) {
		t.Errorf("ClosestOnSegment = %v, want (5,0)", got)
	}
	if got := ClosestOnSegment(V(-5, 3), a, b); got != a {
		t.Errorf("ClosestOnSegment beyond a = %v, want a", got)
	}
	if got := ClosestOnSegment(V(50, 3), a, b); got != b {
		t.Errorf("ClosestOnSegment beyond b = %v, want b", got)
	}
}

func TestSideOfLine(t *testing.T) {
	a, b := V(0, 0), V(10, 0)
	if got := SideOfLine(V(5, 1), a, b); got != 1 {
		t.Errorf("left point side = %d, want 1", got)
	}
	if got := SideOfLine(V(5, -1), a, b); got != -1 {
		t.Errorf("right point side = %d, want -1", got)
	}
	if got := SideOfLine(V(5, 0), a, b); got != 0 {
		t.Errorf("on-line point side = %d, want 0", got)
	}
}

func TestLineIntersection(t *testing.T) {
	p, ok := LineIntersection(Line{V(0, 0), V(10, 10)}, Line{V(0, 10), V(10, 0)})
	if !ok {
		t.Fatal("expected intersection")
	}
	if !almostEq(p.X, 5, 1e-9) || !almostEq(p.Y, 5, 1e-9) {
		t.Errorf("intersection = %v, want (5,5)", p)
	}
	if _, ok := LineIntersection(Line{V(0, 0), V(1, 0)}, Line{V(0, 1), V(1, 1)}); ok {
		t.Error("parallel lines reported intersecting")
	}
}

func TestSegmentsIntersect(t *testing.T) {
	cases := []struct {
		a, b, c, d Vec
		want       bool
	}{
		{V(0, 0), V(10, 10), V(0, 10), V(10, 0), true},
		{V(0, 0), V(1, 1), V(2, 2), V(3, 3), false},    // collinear disjoint
		{V(0, 0), V(2, 2), V(1, 1), V(3, 3), true},     // collinear overlap
		{V(0, 0), V(1, 0), V(0.5, 0), V(0.5, 5), true}, // T junction
		{V(0, 0), V(1, 0), V(2, 1), V(3, 1), false},
	}
	for i, c := range cases {
		if got := SegmentsIntersect(c.a, c.b, c.c, c.d); got != c.want {
			t.Errorf("case %d: SegmentsIntersect = %v, want %v", i, got, c.want)
		}
	}
}

func TestMaxDistToLine(t *testing.T) {
	pts := []Vec{{1, 1}, {2, -5}, {3, 2}}
	d, i := MaxDistToLine(pts, Line{V(0, 0), V(10, 0)})
	if i != 1 || !almostEq(d, 5, 1e-12) {
		t.Errorf("MaxDistToLine = (%v,%d), want (5,1)", d, i)
	}
	d, i = MaxDistToLine(nil, Line{V(0, 0), V(10, 0)})
	if i != -1 || d != 0 {
		t.Errorf("empty MaxDistToLine = (%v,%d)", d, i)
	}
}

func TestMaxDistToSegment(t *testing.T) {
	pts := []Vec{{-10, 0}, {5, 1}}
	d, i := MaxDistToSegment(pts, V(0, 0), V(10, 0))
	if i != 0 || !almostEq(d, 10, 1e-12) {
		t.Errorf("MaxDistToSegment = (%v,%d), want (10,0)", d, i)
	}
}

func TestDistToLineRotationInvariant(t *testing.T) {
	// The data-centric rotation step relies on distances being invariant
	// under rotation about the origin.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		p := V(rng.NormFloat64()*50, rng.NormFloat64()*50)
		e := V(rng.NormFloat64()*50, rng.NormFloat64()*50)
		phi := rng.Float64() * 2 * math.Pi
		d1 := DistToLine(p, Line{V(0, 0), e})
		d2 := DistToLine(p.Rotate(phi), Line{V(0, 0), e.Rotate(phi)})
		if !almostEq(d1, d2, 1e-7*(1+d1)) {
			t.Fatalf("rotation changed distance: %v vs %v", d1, d2)
		}
	}
}
