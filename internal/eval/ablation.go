package eval

import (
	"fmt"
	"math"
	"strings"

	"github.com/trajcomp/bqs/internal/baseline"
	"github.com/trajcomp/bqs/internal/core"
)

// AblationRow is one configuration's outcome.
type AblationRow struct {
	Name    string
	Rate    float64
	Pruning float64
	Keys    int
}

// AblationResult collects the design-choice ablations DESIGN.md calls out:
// data-centric rotation on/off and warmup size, deviation metric, and the
// SQUISH-E comparison at matched compression.
type AblationResult struct {
	Dataset   string
	Tolerance float64
	Rows      []AblationRow
	// SquishSEDWorst is the worst SED of SQUISH-E(λ) matched to BQS's
	// compression rate — demonstrating the unbounded error the paper
	// criticizes.
	SquishSEDWorst float64
	// BQSDevWorst is BQS's worst deviation at the same rate (≤ tolerance).
	BQSDevWorst float64
}

// Ablation runs the ablation suite on one dataset.
func Ablation(ds Dataset, tolerance float64) (AblationResult, error) {
	res := AblationResult{Dataset: ds.Name, Tolerance: tolerance}

	type variant struct {
		name string
		cfg  core.Config
	}
	variants := []variant{
		{"BQS (rotation 5)", core.Config{Tolerance: tolerance, Mode: core.ModeExact, RotationWarmup: 5}},
		{"BQS (no rotation)", core.Config{Tolerance: tolerance, Mode: core.ModeExact, RotationWarmup: 0}},
		{"BQS (rotation 3)", core.Config{Tolerance: tolerance, Mode: core.ModeExact, RotationWarmup: 3}},
		{"BQS (rotation 10)", core.Config{Tolerance: tolerance, Mode: core.ModeExact, RotationWarmup: 10}},
		{"FBQS (rotation 5)", core.Config{Tolerance: tolerance, Mode: core.ModeFast, RotationWarmup: 5}},
		{"FBQS (no rotation)", core.Config{Tolerance: tolerance, Mode: core.ModeFast, RotationWarmup: 0}},
		{"BQS (segment metric)", core.Config{Tolerance: tolerance, Mode: core.ModeExact, RotationWarmup: 5, Metric: core.MetricSegment}},
		{"BQS (buffer capped 32)", core.Config{Tolerance: tolerance, Mode: core.ModeExact, RotationWarmup: 5, MaxBuffer: 32}},
	}
	var bqsKeys []core.Point
	for _, v := range variants {
		c, err := core.NewCompressor(v.cfg)
		if err != nil {
			return res, err
		}
		keys := c.CompressBatch(ds.Points)
		if v.name == "BQS (rotation 5)" {
			bqsKeys = keys
		}
		res.Rows = append(res.Rows, AblationRow{
			Name:    v.name,
			Rate:    float64(len(keys)) / float64(len(ds.Points)),
			Pruning: c.Stats().PruningPower(),
			Keys:    len(keys),
		})
	}

	// SQUISH-E(λ) at BQS's compression ratio: same point budget, no bound.
	if len(bqsKeys) > 0 {
		lambda := float64(len(ds.Points)) / float64(len(bqsKeys))
		sq, err := baseline.SquishELambda(ds.Points, lambda)
		if err != nil {
			return res, err
		}
		res.SquishSEDWorst = worstSED(ds.Points, sq)
		res.BQSDevWorst, _ = validateBound(ds.Points, bqsKeys, tolerance)
		res.Rows = append(res.Rows, AblationRow{
			Name: fmt.Sprintf("SQUISH-E(λ=%.0f)", lambda),
			Rate: float64(len(sq)) / float64(len(ds.Points)),
			Keys: len(sq),
		})
	}
	return res, nil
}

// worstSED returns the worst synchronized Euclidean distance of any
// original point from the compressed trajectory.
func worstSED(orig, keys []core.Point) float64 {
	var worst float64
	ki := 0
	for _, p := range orig {
		for ki+1 < len(keys) && keys[ki+1].T < p.T {
			ki++
		}
		if ki+1 >= len(keys) {
			break
		}
		s, e := keys[ki], keys[ki+1]
		if p.T <= s.T || p.T >= e.T {
			continue
		}
		f := (p.T - s.T) / (e.T - s.T)
		dx := p.X - (s.X + f*(e.X-s.X))
		dy := p.Y - (s.Y + f*(e.Y-s.Y))
		if d := dx*dx + dy*dy; d > worst {
			worst = d
		}
	}
	return math.Sqrt(worst)
}

// String renders the ablation results.
func (r AblationResult) String() string {
	t := &textTable{header: []string{"configuration", "rate", "pruning", "keys"}}
	for _, row := range r.Rows {
		pr := "—"
		if row.Pruning > 0 {
			pr = f3(row.Pruning)
		}
		t.addRow(row.Name, pc(row.Rate), pr, fmt.Sprintf("%d", row.Keys))
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ablations — %s data, d = %.0f m\n%s", r.Dataset, r.Tolerance, t.String())
	fmt.Fprintf(&sb, "error at matched budget: BQS worst deviation %.1f m (bounded) vs SQUISH-E worst SED %.1f m (unbounded)\n",
		r.BQSDevWorst, r.SquishSEDWorst)
	return sb.String()
}
