// Package eval regenerates every table and figure of the paper's
// evaluation (Section VI) against the generated stand-in datasets, plus
// the ablation studies listed in DESIGN.md. Each experiment is a function
// returning a typed result with a text rendering, so the cmd/bqsbench tool
// and the benchmark suite share one implementation.
package eval

import (
	"fmt"
	"sync"

	"github.com/trajcomp/bqs/internal/core"
	"github.com/trajcomp/bqs/internal/synth"
)

// Dataset is an evaluation workload: observed points plus ground truth.
type Dataset struct {
	Name    string
	Samples []synth.Sample
	Points  []core.Point
}

// Scale selects dataset sizes: ScaleFull approximates the paper's volumes
// (≈ 100k bat samples from five nodes, tens of thousands of vehicle
// samples, the 30,000-point synthetic walk); ScaleQuick shrinks everything
// for unit tests.
type Scale int

const (
	// ScaleFull approximates the paper's dataset sizes.
	ScaleFull Scale = iota
	// ScaleQuick is a fast subset for tests.
	ScaleQuick
)

// Suite holds the canonical datasets and shared evaluation parameters.
type Suite struct {
	Bat      Dataset
	Vehicle  Dataset
	Walk     Dataset
	Combined Dataset // bat + vehicle merged into one stream (Table III)
	BufSize  int     // windowed baselines' buffer (the paper uses 32)
}

var (
	suiteOnce sync.Once
	suiteFull *Suite
)

// FullSuite returns the cached full-scale suite (generation takes a few
// seconds the first time).
func FullSuite() *Suite {
	suiteOnce.Do(func() { suiteFull = NewSuite(ScaleFull) })
	return suiteFull
}

// NewSuite generates a fresh suite at the given scale.
func NewSuite(scale Scale) *Suite {
	batNodes, batDays := 5, 40
	vehDays := 28
	walkN := 30000
	if scale == ScaleQuick {
		batNodes, batDays = 2, 4
		vehDays = 3
		walkN = 4000
	}

	var batSamples []synth.Sample
	tOffset := 0.0
	for node := 0; node < batNodes; node++ {
		cfg := synth.DefaultBatConfig(1000 + int64(node))
		cfg.Days = batDays
		tr := synth.Bat(cfg)
		for _, s := range tr.Samples {
			s.P.T += tOffset
			batSamples = append(batSamples, s)
		}
		if n := len(tr.Samples); n > 0 {
			tOffset = batSamples[len(batSamples)-1].P.T + 3600
		}
	}
	bat := makeDataset("bat", batSamples)

	vcfg := synth.DefaultVehicleConfig(2000)
	vcfg.Days = vehDays
	vehicle := makeDataset("vehicle", synth.Vehicle(vcfg).Samples)

	wcfg := synth.DefaultWalkConfig(3000)
	wcfg.N = walkN
	walk := makeDataset("walk", synth.Walk(wcfg).Samples)

	// Combined stream: bat then vehicle with continuous timestamps, as the
	// paper does ("we combine all the data points into a single data
	// stream"). The run-time experiment uses 87,704 points of it.
	combined := make([]synth.Sample, 0, len(bat.Samples)+len(vehicle.Samples))
	combined = append(combined, bat.Samples...)
	off := 0.0
	if len(bat.Samples) > 0 {
		off = bat.Samples[len(bat.Samples)-1].P.T + 3600
	}
	for _, s := range vehicle.Samples {
		s.P.T += off
		combined = append(combined, s)
	}
	return &Suite{
		Bat:      bat,
		Vehicle:  vehicle,
		Walk:     walk,
		Combined: makeDataset("combined", combined),
		BufSize:  32,
	}
}

func makeDataset(name string, samples []synth.Sample) Dataset {
	pts := make([]core.Point, len(samples))
	for i, s := range samples {
		pts[i] = s.P
	}
	return Dataset{Name: name, Samples: samples, Points: pts}
}

// Describe summarizes the suite's datasets.
func (s *Suite) Describe() string {
	return fmt.Sprintf(
		"datasets: bat=%d pts, vehicle=%d pts, walk=%d pts, combined=%d pts (buffer=%d)",
		len(s.Bat.Points), len(s.Vehicle.Points), len(s.Walk.Points),
		len(s.Combined.Points), s.BufSize)
}

// BatTolerances is the paper's bat-data tolerance sweep (Figures 6a, 7a).
func BatTolerances() []float64 { return []float64{2, 4, 6, 8, 10, 12, 14, 16, 18, 20} }

// VehicleTolerances is the vehicle-data sweep (Figures 6b, 7b).
func VehicleTolerances() []float64 { return []float64{5, 10, 15, 20, 25, 30, 35, 40, 45, 50} }
