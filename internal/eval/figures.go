package eval

import (
	"fmt"
	"math"
	"strings"

	"github.com/trajcomp/bqs/internal/core"
)

// ---------------------------------------------------------------------------
// Figure 3: lower/upper bounds vs. actual deviation.

// Fig3Row is one traced point of Figure 3.
type Fig3Row struct {
	Index  int
	LB, UB float64
	Actual float64
}

// Fig3Result reproduces Figure 3: the bound pair and the actual deviation
// for a window of points from the bat dataset at d = 5 m, plus the
// fraction of decisions the bounds resolved on their own.
type Fig3Result struct {
	Tolerance float64
	Rows      []Fig3Row
	Decisive  float64 // fraction of traced points with d outside [lb, ub]
}

// Fig3 runs the bounds-trace experiment. maxRows limits the emitted rows
// (the paper plots ≈ 100 points).
func Fig3(ds Dataset, tolerance float64, maxRows int) (Fig3Result, error) {
	res := Fig3Result{Tolerance: tolerance}
	decisive, traced := 0, 0
	cfg := core.Config{
		Tolerance:      tolerance,
		Mode:           core.ModeExact,
		RotationWarmup: -1,
		Trace: func(tp core.TracePoint) {
			traced++
			if tp.LB > tolerance || tp.UB <= tolerance {
				decisive++
			}
			if len(res.Rows) < maxRows {
				res.Rows = append(res.Rows, Fig3Row{
					Index: tp.Index, LB: tp.LB, UB: tp.UB, Actual: tp.Actual,
				})
			}
		},
	}
	c, err := core.NewCompressor(cfg)
	if err != nil {
		return res, err
	}
	c.CompressBatch(ds.Points)
	if traced > 0 {
		res.Decisive = float64(decisive) / float64(traced)
	}
	return res, nil
}

// String renders the figure data as a table.
func (r Fig3Result) String() string {
	t := &textTable{header: []string{"point", "lower", "upper", "actual"}}
	for _, row := range r.Rows {
		t.addRow(fmt.Sprintf("%d", row.Index), f3(row.LB), f3(row.UB), f3(row.Actual))
	}
	return fmt.Sprintf("Figure 3 — bounds vs. actual deviation (d = %.0f m)\n%s"+
		"bounds decided %.1f%% of traced points without a full computation\n",
		r.Tolerance, t.String(), 100*r.Decisive)
}

// ---------------------------------------------------------------------------
// Figure 6: pruning power.

// Fig6Row is one tolerance's pruning power.
type Fig6Row struct {
	Tolerance float64
	Pruning   float64
}

// Fig6Result reproduces Figure 6 for one dataset.
type Fig6Result struct {
	Dataset string
	Rows    []Fig6Row
}

// Fig6 sweeps the pruning power of exact BQS over tolerances.
func Fig6(ds Dataset, tolerances []float64) (Fig6Result, error) {
	res := Fig6Result{Dataset: ds.Name}
	for _, tol := range tolerances {
		r, err := Run(AlgoBQS, ds, tol, 0)
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, Fig6Row{Tolerance: tol, Pruning: r.Pruning})
	}
	return res, nil
}

// String renders the figure data.
func (r Fig6Result) String() string {
	t := &textTable{header: []string{"tolerance (m)", "pruning power"}}
	for _, row := range r.Rows {
		t.addRow(f1(row.Tolerance), f3(row.Pruning))
	}
	return fmt.Sprintf("Figure 6 — pruning power, %s data\n%s", r.Dataset, t.String())
}

// ---------------------------------------------------------------------------
// Figure 7: compression rate comparison.

// Fig7Algos is the paper's Figure 7 line-up.
var Fig7Algos = []Algo{AlgoBQS, AlgoFBQS, AlgoBDP, AlgoBGD, AlgoDP}

// Fig7Row is one tolerance's compression rates per algorithm.
type Fig7Row struct {
	Tolerance float64
	Rate      map[Algo]float64
}

// Fig7Result reproduces Figure 7 for one dataset.
type Fig7Result struct {
	Dataset string
	BufSize int
	Rows    []Fig7Row
	BoundOK bool // every error-bounded run validated
}

// Fig7 sweeps compression rates for the five algorithms.
func Fig7(ds Dataset, tolerances []float64, bufSize int) (Fig7Result, error) {
	res := Fig7Result{Dataset: ds.Name, BufSize: bufSize, BoundOK: true}
	for _, tol := range tolerances {
		row := Fig7Row{Tolerance: tol, Rate: make(map[Algo]float64, len(Fig7Algos))}
		for _, algo := range Fig7Algos {
			r, err := Run(algo, ds, tol, bufSize)
			if err != nil {
				return res, err
			}
			row.Rate[algo] = r.Rate
			if !r.BoundOK {
				res.BoundOK = false
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String renders the figure data.
func (r Fig7Result) String() string {
	header := []string{"tolerance (m)"}
	for _, a := range Fig7Algos {
		header = append(header, string(a))
	}
	t := &textTable{header: header}
	for _, row := range r.Rows {
		cells := []string{f1(row.Tolerance)}
		for _, a := range Fig7Algos {
			cells = append(cells, pc(row.Rate[a]))
		}
		t.addRow(cells...)
	}
	return fmt.Sprintf("Figure 7 — compression rate, %s data (buffer %d)\n%s",
		r.Dataset, r.BufSize, t.String())
}

// ---------------------------------------------------------------------------
// Figure 8: synthetic data and Dead Reckoning comparison.

// Fig8Row is one tolerance's point counts.
type Fig8Row struct {
	Tolerance    float64
	FBQS, DR     int
	DROverheadPc float64 // (DR-FBQS)/FBQS × 100
}

// Fig8Result reproduces Figure 8: the synthetic dataset's extent (8a) and
// the FBQS vs. DR point counts (8b).
type Fig8Result struct {
	Points                 int
	MinX, MinY, MaxX, MaxY float64
	Rows                   []Fig8Row
}

// Fig8 runs the synthetic comparison.
func Fig8(ds Dataset, tolerances []float64) (Fig8Result, error) {
	res := Fig8Result{Points: len(ds.Points)}
	res.MinX, res.MinY = math.Inf(1), math.Inf(1)
	res.MaxX, res.MaxY = math.Inf(-1), math.Inf(-1)
	for _, p := range ds.Points {
		res.MinX = math.Min(res.MinX, p.X)
		res.MinY = math.Min(res.MinY, p.Y)
		res.MaxX = math.Max(res.MaxX, p.X)
		res.MaxY = math.Max(res.MaxY, p.Y)
	}
	for _, tol := range tolerances {
		rf, err := Run(AlgoFBQS, ds, tol, 0)
		if err != nil {
			return res, err
		}
		rd, err := Run(AlgoDR, ds, tol, 0)
		if err != nil {
			return res, err
		}
		row := Fig8Row{Tolerance: tol, FBQS: rf.Keys, DR: rd.Keys}
		if rf.Keys > 0 {
			row.DROverheadPc = 100 * float64(rd.Keys-rf.Keys) / float64(rf.Keys)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String renders the figure data.
func (r Fig8Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 8(a) — synthetic dataset: %d points, extent [%.0f, %.0f] × [%.0f, %.0f] m\n",
		r.Points, r.MinX, r.MaxX, r.MinY, r.MaxY)
	t := &textTable{header: []string{"tolerance (m)", "FBQS pts", "DR pts", "DR overhead"}}
	for _, row := range r.Rows {
		t.addRow(f1(row.Tolerance), fmt.Sprintf("%d", row.FBQS),
			fmt.Sprintf("%d", row.DR), fmt.Sprintf("%.0f%%", row.DROverheadPc))
	}
	fmt.Fprintf(&sb, "Figure 8(b) — points kept on synthetic data\n%s", t.String())
	return sb.String()
}
