package eval

import (
	"fmt"
	"strings"
)

// textTable renders rows of cells with left-aligned headers and
// right-aligned values, matching the plain-text tables in EXPERIMENTS.md.
type textTable struct {
	header []string
	rows   [][]string
}

func (t *textTable) addRow(cells ...string) { t.rows = append(t.rows, cells) }

func (t *textTable) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func pc(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }
