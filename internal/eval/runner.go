package eval

import (
	"fmt"
	"math"
	"time"

	"github.com/trajcomp/bqs/internal/baseline"
	"github.com/trajcomp/bqs/internal/core"
)

// Algo names one of the evaluated algorithms.
type Algo string

// The algorithms of the paper's comparative study.
const (
	AlgoBQS  Algo = "BQS"
	AlgoFBQS Algo = "FBQS"
	AlgoBDP  Algo = "BDP"
	AlgoBGD  Algo = "BGD"
	AlgoDP   Algo = "DP"
	AlgoDR   Algo = "DR"
)

// RunResult is one (algorithm, dataset, tolerance) evaluation.
type RunResult struct {
	Algo      Algo
	Dataset   string
	Tolerance float64
	Points    int
	Keys      int
	Rate      float64 // Keys/Points, the paper's compression rate
	Pruning   float64 // pruning power (BQS family; NaN otherwise)
	Duration  time.Duration
	WorstDev  float64 // worst observed deviation of the output (NaN for DR)
	BoundOK   bool
}

// Run evaluates one algorithm at one tolerance over a dataset. bufSize
// applies to the windowed baselines. Deviation validation uses the line
// metric, matching the compressors' configuration.
func Run(algo Algo, ds Dataset, tolerance float64, bufSize int) (RunResult, error) {
	res := RunResult{
		Algo: algo, Dataset: ds.Name, Tolerance: tolerance,
		Points: len(ds.Points), Pruning: math.NaN(), WorstDev: math.NaN(),
	}
	start := time.Now()
	var keys []core.Point
	switch algo {
	case AlgoBQS, AlgoFBQS:
		mode := core.ModeExact
		if algo == AlgoFBQS {
			mode = core.ModeFast
		}
		c, err := core.NewCompressor(core.Config{Tolerance: tolerance, Mode: mode, RotationWarmup: -1})
		if err != nil {
			return res, err
		}
		keys = c.CompressBatch(ds.Points)
		res.Pruning = c.Stats().PruningPower()
	case AlgoBDP:
		c, err := baseline.NewBufferedDP(tolerance, bufSize, core.MetricLine)
		if err != nil {
			return res, err
		}
		for _, p := range ds.Points {
			keys = append(keys, c.Push(p)...)
		}
		keys = append(keys, c.Flush()...)
	case AlgoBGD:
		c, err := baseline.NewBufferedGreedy(tolerance, bufSize, core.MetricLine)
		if err != nil {
			return res, err
		}
		for _, p := range ds.Points {
			if kp, ok := c.Push(p); ok {
				keys = append(keys, kp)
			}
		}
		if kp, ok := c.Flush(); ok {
			keys = append(keys, kp)
		}
	case AlgoDP:
		var err error
		keys, err = baseline.DouglasPeucker(ds.Points, tolerance, core.MetricLine)
		if err != nil {
			return res, err
		}
	case AlgoDR:
		c, err := baseline.NewDeadReckoning(tolerance)
		if err != nil {
			return res, err
		}
		for _, s := range ds.Samples {
			if kp, ok := c.PushV(s.P, s.VX, s.VY); ok {
				keys = append(keys, kp)
			}
		}
	default:
		return res, fmt.Errorf("eval: unknown algorithm %q", algo)
	}
	res.Duration = time.Since(start)
	res.Keys = len(keys)
	if res.Points > 0 {
		res.Rate = float64(res.Keys) / float64(res.Points)
	}
	if algo != AlgoDR {
		res.WorstDev, res.BoundOK = validateBound(ds.Points, keys, tolerance)
	} else {
		res.BoundOK = true // DR's guarantee is on the prediction error
	}
	return res, nil
}

// validateBound checks the deviation of every original point against its
// compressed segment (matched by timestamp).
func validateBound(orig, keys []core.Point, tolerance float64) (worst float64, ok bool) {
	ki := 0
	for _, p := range orig {
		for ki+1 < len(keys) && keys[ki+1].T < p.T {
			ki++
		}
		if ki+1 >= len(keys) {
			break
		}
		if p.T <= keys[ki].T || p.T >= keys[ki+1].T {
			continue
		}
		if d := core.MaxDeviation([]core.Point{p}, keys[ki], keys[ki+1], core.MetricLine); d > worst {
			worst = d
		}
	}
	return worst, worst <= tolerance*(1+1e-9)
}
